// Package renonfs is a from-scratch reproduction of the system described
// in Rick Macklem's "Lessons Learned Tuning the 4.3BSD Reno Implementation
// of the NFS Protocol" (USENIX Summer 1991): an NFS v2 client and server
// with Reno's caching machinery, three interchangeable RPC transports
// (fixed-RTO UDP, dynamic-RTO UDP with a congestion window, and TCP), a
// deterministic network/host simulator calibrated to the paper's testbed,
// and the benchmarks and experiment drivers that regenerate every table
// and figure in the paper's evaluation.
//
// The top-level entry points are:
//
//   - NewRig: build a client/server testbed on one of the paper's three
//     internetwork topologies;
//   - Rig.Mount / Rig.DialTransport: attach clients with chosen transport
//     and caching personalities;
//   - Experiments / RunExperiment: regenerate a specific table or figure;
//   - internal/nfsnet (via cmd/nfsd): the same server over real sockets.
package renonfs

import (
	"time"

	"renonfs/internal/client"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/tcpsim"
	"renonfs/internal/transport"
)

// Topology re-exports the paper's three interconnects.
type Topology = netsim.Topology

// The three internetwork configurations of §4, plus the Future Directions
// long-fat-pipe testbed.
const (
	TopoLAN  = netsim.TopoLAN
	TopoRing = netsim.TopoRing
	TopoSlow = netsim.TopoSlow
	TopoLFN  = netsim.TopoLFN
)

// TransportKind selects one of the three §4 transports.
type TransportKind int

const (
	// UDPFixed is classic NFS/UDP: fixed mount RTO, exponential backoff.
	UDPFixed TransportKind = iota
	// UDPDynamic is the tuned transport: per-class A+4D/A+2D estimation,
	// per-tick RTO recalculation, congestion window without slow start.
	UDPDynamic
	// TCP is the reliable virtual circuit transport.
	TCP
)

func (k TransportKind) String() string {
	switch k {
	case UDPFixed:
		return "udp-fixed"
	case UDPDynamic:
		return "udp-dyn"
	case TCP:
		return "tcp"
	default:
		return "unknown"
	}
}

// RigConfig describes a testbed.
type RigConfig struct {
	// Seed drives all randomness; equal seeds give identical runs.
	Seed int64
	// Topology is one of the §4 interconnects (default TopoLAN).
	Topology Topology
	// ServerOpts selects the server personality (default server.Reno()).
	ServerOpts server.Options
	// ClientMIPS and ServerMIPS set host speeds (default MicroVAXII).
	ClientMIPS float64
	ServerMIPS float64
	// ServerDisk attaches an RD53 so writes cost disk time.
	ServerDisk bool
	// ServerPageRemap / ServerNoTxIntr apply the §3 NIC tuning to the
	// server host.
	ServerPageRemap bool
	ServerNoTxIntr  bool
}

// Rig is a built testbed: simulated network, NFS server (serving both UDP
// and TCP), and factories for transports and client mounts.
type Rig struct {
	Env    *sim.Env
	Net    *netsim.Testbed
	Server *server.Server
	FS     *memfs.FS
	// Metrics aggregates RPC lifecycle events from every transport the rig
	// dials, the server core, and the IP reassemblers: rpc.* counters and
	// latency histograms, nfs.* server-side counters and service times,
	// ip.frag_timeouts. Snapshot it (or Snapshot().Delta(prev)) to read.
	Metrics *metrics.Registry
	tracer  metrics.Tracer
	nextUDP int
}

// NewRig builds and starts a testbed.
func NewRig(cfg RigConfig) *Rig {
	if cfg.Topology == 0 {
		cfg.Topology = TopoLAN
	}
	if cfg.ServerOpts.Name == "" {
		cfg.ServerOpts = server.Reno()
	}
	env := sim.New(cfg.Seed)
	tb := netsim.Build(env, cfg.Topology,
		netsim.NodeConfig{Name: "client", MIPS: cfg.ClientMIPS},
		netsim.NodeConfig{
			Name: "server", MIPS: cfg.ServerMIPS,
			PageRemapTx: cfg.ServerPageRemap, NoTxInterrupts: cfg.ServerNoTxIntr,
		})
	var disk *memfs.Disk
	if cfg.ServerDisk {
		disk = memfs.NewRD53(env, "server.rd53")
	}
	fs := memfs.New(1, disk, func() nfsproto.Time {
		now := env.Now()
		return nfsproto.Time{
			Sec:  uint32(now / time.Second),
			USec: uint32(now % time.Second / time.Microsecond),
		}
	})
	srv := server.New(fs, cfg.ServerOpts)
	srv.AttachNode(tb.Server)
	srv.ServeUDP(server.NFSPort)
	srv.ServeTCP(tcpsim.NewStack(tb.Server), server.NFSPort)
	// One registry observes the whole testbed: the server's own registry
	// doubles as the rig-wide one, and a MetricsTracer folds the lifecycle
	// events from transports and reassemblers into it.
	tracer := &metrics.MetricsTracer{R: srv.Metrics, ProcName: nfsproto.ProcName}
	srv.Tracer = tracer
	tb.Net.SetFragTracer(tracer)
	return &Rig{Env: env, Net: tb, Server: srv, FS: fs,
		Metrics: srv.Metrics, tracer: tracer, nextUDP: 1000}
}

// DialTransport creates a transport of the given kind from the client
// host to the server. TCP dials a connection, so a simulated process is
// required; UDP kinds accept a nil proc.
func (r *Rig) DialTransport(p *sim.Proc, kind TransportKind) (transport.Transport, error) {
	switch kind {
	case UDPFixed:
		cfg := transport.FixedUDP()
		cfg.Tracer = r.tracer
		r.nextUDP++
		return transport.NewUDP(r.Net.Client, r.nextUDP, r.Net.Server.ID, server.NFSPort, cfg), nil
	case UDPDynamic:
		cfg := transport.DynamicUDP()
		cfg.Tracer = r.tracer
		r.nextUDP++
		return transport.NewUDP(r.Net.Client, r.nextUDP, r.Net.Server.ID, server.NFSPort, cfg), nil
	case TCP:
		t, err := transport.NewTCP(p, tcpsim.NewStack(r.Net.Client), r.Net.Server.ID, server.NFSPort)
		if t != nil {
			t.Tracer = r.tracer
		}
		return t, err
	default:
		panic("renonfs: unknown transport kind")
	}
}

// DialUDPConfig creates a UDP transport with an explicit configuration
// (for the ablation experiments). The rig tracer is installed unless the
// config brings its own.
func (r *Rig) DialUDPConfig(cfg transport.UDPConfig) *transport.UDP {
	if cfg.Tracer == nil {
		cfg.Tracer = r.tracer
	}
	r.nextUDP++
	return transport.NewUDP(r.Net.Client, r.nextUDP, r.Net.Server.ID, server.NFSPort, cfg)
}

// Mount attaches a client mount using the given transport kind and client
// personality.
func (r *Rig) Mount(p *sim.Proc, kind TransportKind, opts client.Options) (*client.Mount, error) {
	tr, err := r.DialTransport(p, kind)
	if err != nil {
		return nil, err
	}
	return client.NewMount(r.Net.Client, tr, r.Server.RootFH(), opts), nil
}

// Tracer returns the rig-wide lifecycle tracer, so callers can compose it
// with their own (e.g. the invariant auditor in internal/check) via
// metrics.MultiTracer when wiring transports by hand.
func (r *Rig) Tracer() metrics.Tracer { return r.tracer }

// Run advances the simulation to the horizon.
func (r *Rig) Run(d sim.Time) sim.Time { return r.Env.Run(d) }

// Close shuts the simulation down.
func (r *Rig) Close() { r.Env.Close() }

// Re-exported client personalities, so downstream users need only this
// package for the common cases.

// RenoClient is the tuned 4.3BSD Reno client personality.
func RenoClient() client.Options { return client.Reno() }

// UltrixClient is the Sun-reference-port client personality.
func UltrixClient() client.Options { return client.Ultrix() }

// NoConsistClient is Reno with the experimental no-consistency mount flag.
func NoConsistClient() client.Options { return client.RenoNoConsist() }

// RenoServer is the tuned server personality.
func RenoServer() server.Options { return server.Reno() }

// UltrixServer is the reference-port server personality.
func UltrixServer() server.Options { return server.Ultrix() }
