package renonfs_test

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"renonfs"
	"renonfs/internal/check"
	"renonfs/internal/client"
	"renonfs/internal/faultplan"
	"renonfs/internal/metrics"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/tcpsim"
	"renonfs/internal/transport"
)

// The chaos suite sweeps seeded fault schedules over every (transport,
// topology) combination, runs a client workload against a model
// filesystem, and checks the protocol invariants in internal/check plus
// final-state equivalence. Every run is exactly reproducible: the seed
// fixes the schedule, the topology's event interleaving and the workload.
//
// Replay one failing case with the subtest path printed in its failure,
// or directly:
//
//	go test -run 'TestChaosSweep' -chaos.combo=udp-dyn/ring -chaos.seed=5 .
var (
	chaosSeed  = flag.Int64("chaos.seed", -1, "run only this chaos seed")
	chaosCombo = flag.String("chaos.combo", "", "run only this transport/topology combo, e.g. tcp/slow")
)

var chaosTransports = []renonfs.TransportKind{renonfs.UDPFixed, renonfs.UDPDynamic, renonfs.TCP}

var chaosTopos = []struct {
	name string
	topo renonfs.Topology
}{
	{"lan", renonfs.TopoLAN},
	{"ring", renonfs.TopoRing},
	{"slow", renonfs.TopoSlow},
}

// chaosSeedsPerCombo gives 9 combos x 12 seeds = 108 runs in the full
// sweep (the CI chaos job); -short keeps a 2-seed smoke per combo.
func chaosSeeds() []int64 {
	n := int64(12)
	if testing.Short() {
		n = 2
	}
	if *chaosSeed >= 0 {
		return []int64{*chaosSeed}
	}
	seeds := make([]int64, 0, n)
	for s := int64(1); s <= n; s++ {
		seeds = append(seeds, s)
	}
	return seeds
}

// chaosClientOpts is a write-through Reno personality: every write RPC
// completes inside the op that issued it, so the model filesystem can be
// compared op-by-op without delayed-write reordering.
func chaosClientOpts() client.Options {
	opts := client.Reno()
	opts.Name = "chaos"
	opts.Policy = client.WriteThrough
	opts.EagerWriteBack = false
	opts.UpdateFlush = false
	opts.ReadAhead = 0
	return opts
}

// chaosLeaseClientOpts is the lease-coherent personality under chaos: full
// Reno write-behind with NQNFS leases, so dirty data rides out faults in
// the client cache and only moves on eviction, expiry or unmount. Read-ahead
// is off so the op-by-op model comparison never races a prefetch.
func chaosLeaseClientOpts() client.Options {
	opts := client.Reno()
	opts.Name = "chaos-lease"
	opts.UseLeases = true
	opts.ReadAhead = 0
	return opts
}

// chaosResult is everything one run produces, for reporting and for the
// determinism fingerprint.
type chaosResult struct {
	schedule string
	model    map[string][]byte
	doneAt   time.Duration
	errs     []string
	counts   map[string]int
}

func (r *chaosResult) fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "sched:%s;done:%v;", r.schedule, r.doneAt)
	names := make([]string, 0, len(r.model))
	for n := range r.model {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(h, "file:%s:%x;", n, sha256.Sum256(r.model[n]))
	}
	keys := make([]string, 0, len(r.counts))
	for k := range r.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "count:%s=%d;", k, r.counts[k])
	}
	for _, e := range r.errs {
		fmt.Fprintf(h, "err:%s;", e)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

var chaosFileNames = []string{"f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7"}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(256))
	}
	return b
}

// replace applies client Create-then-write semantics to the model: the
// client's CREATE carries size=0 in its sattr, so creating an existing
// file truncates it before the new data goes down.
func replace(model map[string][]byte, name string, data []byte) {
	model[name] = append([]byte(nil), data...)
}

func readAll(p *sim.Proc, f *client.File) ([]byte, error) {
	var out []byte
	buf := make([]byte, 1024)
	for {
		n, err := f.Read(p, buf)
		if err != nil {
			return out, err
		}
		if n == 0 {
			return out, nil
		}
		out = append(out, buf[:n]...)
	}
}

// pickPresent returns a deterministic random name present in the model.
func pickPresent(rng *rand.Rand, model map[string][]byte) (string, bool) {
	present := make([]string, 0, len(model))
	for _, n := range chaosFileNames { // fixed order, not map order
		if _, ok := model[n]; ok {
			present = append(present, n)
		}
	}
	if len(present) == 0 {
		return "", false
	}
	return present[rng.Intn(len(present))], true
}

// runOps drives ~80 operations against the mount, mirroring them into the
// model. Returned strings are correctness failures (not fault-induced
// slowness — the transports are configured to ride out every outage).
func runOps(p *sim.Proc, mnt *client.Mount, rng *rand.Rand, model map[string][]byte) []string {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	writeFile := func(name string) {
		data := randBytes(rng, 1+rng.Intn(2048))
		f, err := mnt.Create(p, "/"+name, 0644)
		if err != nil {
			fail("create %s: %v", name, err)
			return
		}
		if _, err := f.Write(p, data); err != nil {
			fail("write %s: %v", name, err)
		}
		f.Close(p)
		replace(model, name, data)
	}
	for op := 0; op < 80; op++ {
		// Pace the workload across the schedule's fault span (the first
		// ~6 of 10 minutes): back-to-back ops would finish before the
		// first burst even starts.
		p.Sleep(sim.Time(3+rng.Intn(5)) * time.Second)
		switch k := rng.Intn(8); k {
		case 0, 1, 2: // create/overwrite
			writeFile(chaosFileNames[rng.Intn(len(chaosFileNames))])
		case 3: // append
			name, ok := pickPresent(rng, model)
			if !ok {
				writeFile(chaosFileNames[rng.Intn(len(chaosFileNames))])
				continue
			}
			data := randBytes(rng, 1+rng.Intn(1024))
			f, err := mnt.Open(p, "/"+name)
			if err != nil {
				fail("open %s for append: %v", name, err)
				continue
			}
			f.Seek(uint32(len(model[name])))
			if _, err := f.Write(p, data); err != nil {
				fail("append %s: %v", name, err)
			}
			f.Close(p)
			model[name] = append(model[name], data...)
		case 4: // remove
			name, ok := pickPresent(rng, model)
			if !ok {
				continue
			}
			// A non-idempotent retransmission straddling a server reboot
			// re-executes (the dupcache is volatile), so a REMOVE whose
			// first execution succeeded can come back NOENT — the §1
			// statelessness wart. Either way the file is gone.
			if err := mnt.Remove(p, "/"+name); err != nil && !client.IsNoEnt(err) {
				fail("remove %s: %v", name, err)
				continue
			}
			delete(model, name)
		case 5: // rename (same replay wart as remove)
			from, ok := pickPresent(rng, model)
			if !ok {
				continue
			}
			to := chaosFileNames[rng.Intn(len(chaosFileNames))]
			if to == from {
				continue
			}
			if err := mnt.Rename(p, "/"+from, "/"+to); err != nil && !client.IsNoEnt(err) {
				fail("rename %s -> %s: %v", from, to, err)
				continue
			}
			model[to] = model[from]
			delete(model, from)
		default: // read-verify
			name, ok := pickPresent(rng, model)
			if !ok {
				continue
			}
			f, err := mnt.Open(p, "/"+name)
			if err != nil {
				fail("open %s: %v", name, err)
				continue
			}
			got, err := readAll(p, f)
			f.Close(p)
			if err != nil {
				fail("read %s: %v", name, err)
				continue
			}
			if !bytes.Equal(got, model[name]) {
				fail("read %s: got %d bytes, want %d (content mismatch)", name, len(got), len(model[name]))
			}
		}
	}
	return errs
}

// verifyFinalState walks the model with a fresh mount (fresh caches, fresh
// transport) and compares every file and the directory listing.
func verifyFinalState(p *sim.Proc, mnt *client.Mount, model map[string][]byte) []string {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	names := make([]string, 0, len(model))
	for n := range model {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := mnt.Open(p, "/"+name)
		if err != nil {
			fail("final: open %s: %v", name, err)
			continue
		}
		got, err := readAll(p, f)
		f.Close(p)
		if err != nil {
			fail("final: read %s: %v", name, err)
			continue
		}
		if !bytes.Equal(got, model[name]) {
			fail("final: %s has %d bytes, want %d (content mismatch)", name, len(got), len(model[name]))
		}
	}
	ents, err := mnt.ReadDir(p, "/")
	if err != nil {
		fail("final: readdir: %v", err)
		return errs
	}
	listed := map[string]bool{}
	for _, de := range ents {
		if de.Name != "." && de.Name != ".." {
			listed[de.Name] = true
		}
	}
	for _, name := range names {
		if !listed[name] {
			fail("final: %s missing from directory listing", name)
		}
	}
	for name := range listed {
		if _, ok := model[name]; !ok {
			fail("final: unexpected %s in directory listing", name)
		}
	}
	return errs
}

// runChaos executes one full chaos run and returns its result plus the
// auditor's violations. With leases set the server grants NQNFS leases and
// the workload client caches under them (write-behind, no push-on-close);
// the final-state verify mount stays leaseless, so it reaches the server's
// durable state only through the eviction/expiry machinery.
func runChaos(kind renonfs.TransportKind, topo renonfs.Topology, seed int64, leases bool) (*chaosResult, []check.Violation) {
	srvOpts := server.Reno()
	if leases {
		srvOpts.Leases = true
	}
	rig := renonfs.NewRig(renonfs.RigConfig{Seed: seed, Topology: topo, ServerOpts: srvOpts})
	defer rig.Close()
	env := rig.Env
	aud := check.New(func() time.Duration { return time.Duration(env.Now()) })
	rig.Server.Tracer = metrics.MultiTracer{rig.Tracer(), aud.Tracer("server")}
	sched := faultplan.Generate(seed, faultplan.Options{})
	sched.Apply(rig.Net, rig.Server)

	// One TCP stack for the whole run: each transport.NewTCP connection
	// (including reconnects) draws a fresh ephemeral port from it.
	var stack *tcpsim.Stack
	dial := func(p *sim.Proc, source string) (transport.Transport, error) {
		tracer := metrics.MultiTracer{rig.Tracer(), aud.Tracer(source)}
		switch kind {
		case renonfs.UDPFixed, renonfs.UDPDynamic:
			var cfg transport.UDPConfig
			if kind == renonfs.UDPFixed {
				cfg = transport.FixedUDP()
			} else {
				cfg = transport.DynamicUDP()
			}
			// Hard-mount behaviour: ride out every outage the schedule
			// can produce rather than surfacing spurious timeouts.
			cfg.Retrans = 200
			cfg.Tracer = tracer
			return rig.DialUDPConfig(cfg), nil
		default:
			if stack == nil {
				stack = tcpsim.NewStack(rig.Net.Client)
			}
			tr, err := transport.NewTCP(p, stack, rig.Net.Server.ID, server.NFSPort)
			if tr != nil {
				tr.Tracer = tracer
			}
			return tr, err
		}
	}

	res := &chaosResult{
		schedule: sched.String(),
		model:    make(map[string][]byte),
	}
	wrng := rand.New(rand.NewSource(seed*7919 + int64(kind)))
	drive := func(horizon sim.Time, done *bool) {
		for !*done && env.Now() < horizon {
			env.Run(env.Now() + 10*time.Second)
		}
	}

	workloadDone := false
	env.Spawn("chaos-workload", func(p *sim.Proc) {
		defer func() { workloadDone = true }()
		tr, err := dial(p, "client")
		if err != nil {
			res.errs = append(res.errs, fmt.Sprintf("dial: %v", err))
			return
		}
		copts := chaosClientOpts()
		if leases {
			copts = chaosLeaseClientOpts()
		}
		mnt := client.NewMount(rig.Net.Client, tr, rig.Server.RootFH(), copts)
		res.errs = append(res.errs, runOps(p, mnt, wrng, res.model)...)
		mnt.Close(p)
	})
	drive(40*time.Minute, &workloadDone)
	if !workloadDone {
		res.errs = append(res.errs, fmt.Sprintf("workload did not complete by %v", time.Duration(env.Now())))
		res.counts = aud.Counts()
		return res, aud.Violations()
	}
	res.doneAt = time.Duration(env.Now())

	verifyDone := false
	env.Spawn("chaos-verify", func(p *sim.Proc) {
		defer func() { verifyDone = true }()
		tr, err := dial(p, "client-verify")
		if err != nil {
			res.errs = append(res.errs, fmt.Sprintf("verify dial: %v", err))
			return
		}
		opts := chaosClientOpts()
		opts.Name = "chaos-verify"
		mnt := client.NewMount(rig.Net.Client, tr, rig.Server.RootFH(), opts)
		res.errs = append(res.errs, verifyFinalState(p, mnt, res.model)...)
		mnt.Close(p)
	})
	drive(env.Now()+20*time.Minute, &verifyDone)
	if !verifyDone {
		res.errs = append(res.errs, "final-state verification did not complete")
	}
	violations := aud.Finish()
	res.counts = aud.Counts()
	return res, violations
}

func TestChaosSweep(t *testing.T) {
	for _, kind := range chaosTransports {
		for _, tp := range chaosTopos {
			combo := fmt.Sprintf("%s/%s", kind, tp.name)
			if *chaosCombo != "" && combo != *chaosCombo {
				continue
			}
			kind, tp := kind, tp
			for _, seed := range chaosSeeds() {
				seed := seed
				t.Run(fmt.Sprintf("%s/seed=%d", combo, seed), func(t *testing.T) {
					t.Parallel()
					res, violations := runChaos(kind, tp.topo, seed, false)
					t.Logf("done=%v calls=%d replies=%d retransmits=%d failures=%d crashes=%d",
						res.doneAt, res.counts["event.call_sent"], res.counts["event.reply"],
						res.counts["event.retransmit"], res.counts["event.call_failed"],
						res.counts["event.server_crash"])
					if len(res.errs) == 0 && len(violations) == 0 {
						return
					}
					t.Errorf("chaos failure on %s seed=%d\nschedule: %s\nreplay: go test -run 'TestChaosSweep' -chaos.combo=%s -chaos.seed=%d .",
						combo, seed, res.schedule, combo, seed)
					for _, e := range res.errs {
						t.Errorf("  error: %s", e)
					}
					for _, v := range violations {
						t.Errorf("  violation: %s", v)
					}
				})
			}
		}
	}
}

// TestChaosLeaseSweep reruns the fault sweep with the lease extension on:
// the workload mount holds write leases and dirty data across bursts,
// crashes and partitions, and the leaseless verify mount must still find
// exactly the model's bytes — the eviction handshake, the expiry backstop
// and the post-crash no-grant window all get exercised under loss. UDP
// transports only: lease callbacks ride the UDP callback socket, and the
// sweep keeps the peer addressing a callback resolves to.
//
// Replay: go test -run 'TestChaosLeaseSweep' -chaos.combo=udp-dyn/ring -chaos.seed=5 .
func TestChaosLeaseSweep(t *testing.T) {
	for _, kind := range []renonfs.TransportKind{renonfs.UDPFixed, renonfs.UDPDynamic} {
		for _, tp := range chaosTopos {
			combo := fmt.Sprintf("%s/%s", kind, tp.name)
			if *chaosCombo != "" && combo != *chaosCombo {
				continue
			}
			kind, tp := kind, tp
			for _, seed := range chaosSeeds() {
				seed := seed
				t.Run(fmt.Sprintf("%s/seed=%d", combo, seed), func(t *testing.T) {
					t.Parallel()
					res, violations := runChaos(kind, tp.topo, seed, true)
					t.Logf("done=%v calls=%d replies=%d retransmits=%d lease_grants=%d evictions=%d",
						res.doneAt, res.counts["event.call_sent"], res.counts["event.reply"],
						res.counts["event.retransmit"], res.counts["event.lease_grant"],
						res.counts["event.lease_vacate"])
					if len(res.errs) == 0 && len(violations) == 0 {
						return
					}
					t.Errorf("lease chaos failure on %s seed=%d\nschedule: %s\nreplay: go test -run 'TestChaosLeaseSweep' -chaos.combo=%s -chaos.seed=%d .",
						combo, seed, res.schedule, combo, seed)
					for _, e := range res.errs {
						t.Errorf("  error: %s", e)
					}
					for _, v := range violations {
						t.Errorf("  violation: %s", v)
					}
				})
			}
		}
	}
}

// TestChaosDeterminism re-runs one combo and requires a bit-identical
// fingerprint: same schedule, same event counts, same final files, same
// completion time. This is what makes every sweep failure replayable.
func TestChaosDeterminism(t *testing.T) {
	cases := []struct {
		kind renonfs.TransportKind
		topo renonfs.Topology
		seed int64
	}{
		{renonfs.UDPDynamic, renonfs.TopoRing, 5},
	}
	if !testing.Short() {
		cases = append(cases,
			struct {
				kind renonfs.TransportKind
				topo renonfs.Topology
				seed int64
			}{renonfs.TCP, renonfs.TopoLAN, 3})
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/seed=%d", c.kind, c.seed), func(t *testing.T) {
			t.Parallel()
			r1, v1 := runChaos(c.kind, c.topo, c.seed, false)
			r2, v2 := runChaos(c.kind, c.topo, c.seed, false)
			if f1, f2 := r1.fingerprint(), r2.fingerprint(); f1 != f2 {
				t.Fatalf("same seed diverged:\nrun1 %s (%d violations)\nrun2 %s (%d violations)\nschedule: %s",
					f1, len(v1), f2, len(v2), r1.schedule)
			}
		})
	}
}
