package renonfs

import (
	"fmt"
	"time"

	"renonfs/internal/client"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/workload"
)

// runAndrew runs the Modified Andrew Benchmark against a fresh rig and
// returns the result. clientMIPS selects the client host speed, srvOpts
// the server personality, kind the transport, and opts the client
// personality.
func runAndrew(seed int64, clientMIPS float64, srvOpts server.Options, kind TransportKind, opts client.Options) (*workload.AndrewResult, error) {
	r := NewRig(RigConfig{
		Seed: seed, Topology: TopoLAN,
		ServerOpts: srvOpts, ClientMIPS: clientMIPS, ServerDisk: true,
	})
	defer r.Close()
	files := workload.AndrewTree()
	if err := workload.PreloadServerTree(r.FS, files); err != nil {
		return nil, err
	}
	var res *workload.AndrewResult
	var runErr error
	r.Env.Spawn("mab", func(p *sim.Proc) {
		m, err := r.Mount(p, kind, opts)
		if err != nil {
			runErr = err
			return
		}
		res, runErr = workload.RunAndrew(p, m, files)
	})
	r.Env.Run(12 * time.Hour)
	if runErr != nil {
		return nil, runErr
	}
	if res == nil {
		return nil, fmt.Errorf("renonfs: andrew benchmark did not complete")
	}
	return res, nil
}

func secs(d sim.Time) string { return fmt.Sprintf("%.0f", float64(d)/1e9) }

// expTable2 reproduces Table #2: MAB elapsed times on a MicroVAXII client
// for the four client configurations, against the Reno server.
func expTable2(cfg ExpConfig) []*stats.Table {
	t := stats.NewTable("Table #2: Mod Andrew Bench, MicroVAXII client (sec)",
		"OS/Phase", "I-IV", "V")
	nopush := client.Reno()
	nopush.Name = "reno-nopush"
	nopush.PushOnClose = false
	rows := []struct {
		name string
		kind TransportKind
		opts client.Options
	}{
		{"Reno", UDPDynamic, client.Reno()},
		{"Reno-TCP", TCP, client.Reno()},
		{"Reno-nopush", UDPDynamic, nopush},
		{"Ultrix2.2", UDPDynamic, client.Ultrix()},
	}
	for i, row := range rows {
		res, err := runAndrew(cfg.seed()+int64(i), 0 /* MicroVAXII default */, server.Reno(), row.kind, row.opts)
		if err != nil {
			t.AddRow(row.name, "-", "-")
			continue
		}
		t.AddRow(row.name, secs(res.PhaseI_IV()), secs(res.PhaseTimes[4]))
	}
	return []*stats.Table{t}
}

// expTable3 reproduces Table #3: MAB RPC counts for Reno, Reno-noconsist
// and Ultrix clients.
func expTable3(cfg ExpConfig) []*stats.Table {
	t := stats.NewTable("Table #3: Mod Andrew Bench RPC counts, MicroVAXII client",
		"RPC", "Reno", "Reno-noconsist", "Ultrix2.2")
	configs := []client.Options{client.Reno(), client.RenoNoConsist(), client.Ultrix()}
	var results []*workload.AndrewResult
	for i, opts := range configs {
		res, err := runAndrew(cfg.seed()+int64(i), 0, server.Reno(), UDPDynamic, opts)
		if err != nil {
			return []*stats.Table{t}
		}
		results = append(results, res)
	}
	rows := []struct {
		name string
		proc uint32
	}{
		{"Getattr", nfsproto.ProcGetattr},
		{"Setattr", nfsproto.ProcSetattr},
		{"Read", nfsproto.ProcRead},
		{"Write", nfsproto.ProcWrite},
		{"Lookup", nfsproto.ProcLookup},
		{"Readdir", nfsproto.ProcReaddir},
	}
	other := make([]int, len(results))
	total := make([]int, len(results))
	counted := map[uint32]bool{}
	for _, row := range rows {
		counted[row.proc] = true
	}
	for i, res := range results {
		for proc, n := range res.RPC.Calls {
			total[i] += n
			if !counted[uint32(proc)] {
				other[i] += n
			}
		}
	}
	for _, row := range rows {
		t.AddRow(row.name,
			results[0].RPC.Calls[row.proc],
			results[1].RPC.Calls[row.proc],
			results[2].RPC.Calls[row.proc])
	}
	t.AddRow("Other", other[0], other[1], other[2])
	t.AddRow("Total", total[0], total[1], total[2])
	return []*stats.Table{t}
}

// expTable4 reproduces Table #4: MAB on a DS3100-class client against the
// Reno and Ultrix servers.
func expTable4(cfg ExpConfig) []*stats.Table {
	t := stats.NewTable("Table #4: Mod Andrew Bench, DS3100 client (sec)",
		"OS/Phase", "I-IV", "V")
	for i, srv := range []struct {
		name string
		opts server.Options
	}{
		{"Reno", server.Reno()},
		{"Ultrix2.2", server.Ultrix()},
	} {
		// The DS3100 runs DEC's own client (Ultrix), as it did in the
		// paper; only the server varies.
		res, err := runAndrew(cfg.seed()+int64(i), 12.0 /* DS3100 MIPS */, srv.opts, UDPDynamic, client.Ultrix())
		if err != nil {
			t.AddRow(srv.name, "-", "-")
			continue
		}
		t.AddRow(srv.name, secs(res.PhaseI_IV()), secs(res.PhaseTimes[4]))
	}
	return []*stats.Table{t}
}

// expTable5 reproduces Table #5: the Create-Delete benchmark across write
// policies and file sizes, including the local-filesystem baseline.
func expTable5(cfg ExpConfig) []*stats.Table {
	sizes := []int{0, 10 * 1024, 100 * 1024}
	iters := 10
	if cfg.Quick {
		iters = 4
	}
	t := stats.NewTable("Table #5: Create-Delete Bench, 4.3BSD Reno client (msec)",
		"Config", "No data", "10Kbytes", "100Kbytes")

	type rowSpec struct {
		name  string
		local bool
		opts  client.Options
	}
	wt := client.Reno()
	wt.Name = "write-thru"
	wt.Policy = client.WriteThrough
	async4 := client.Reno()
	async4.Name = "async-4biod"
	async4.Policy = client.WriteAsync
	async4.Biods = 4
	async16 := client.Reno()
	async16.Name = "async-16biod"
	async16.Policy = client.WriteAsync
	async16.Biods = 16
	delayed := client.Reno()
	delayed.Name = "delay-wrt"
	delayed.Policy = client.WriteDelayed
	rows := []rowSpec{
		{name: "Local", local: true},
		{name: "write thru", opts: wt},
		{name: "async,4biod", opts: async4},
		{name: "async,16biod", opts: async16},
		{name: "delay wrt.", opts: delayed},
		{name: "no consist", opts: client.RenoNoConsist()},
	}
	for ri, row := range rows {
		cells := []any{row.name}
		for si, size := range sizes {
			r := NewRig(RigConfig{Seed: cfg.seed() + int64(ri*10+si), Topology: TopoLAN, ServerDisk: true})
			var mean float64
			ok := false
			r.Env.Spawn("cd", func(p *sim.Proc) {
				var fs workload.BenchFS
				if row.local {
					disk := memfs.NewRD53(r.Env, "client.rd53")
					lfs := workload.NewLocalFS(r.Env, memfs.New(2, disk, nil))
					fs = lfs
				} else {
					m, err := r.Mount(p, UDPDynamic, row.opts)
					if err != nil {
						return
					}
					fs = workload.MountFS{M: m}
				}
				res, err := workload.RunCreateDelete(p, fs, row.name, size, iters)
				if err != nil {
					return
				}
				mean = res.MeanMS
				ok = true
			})
			r.Env.Run(8 * time.Hour)
			r.Close()
			if ok {
				cells = append(cells, fmt.Sprintf("%.0f", mean))
			} else {
				cells = append(cells, "-")
			}
		}
		t.AddRow(cells...)
	}
	return []*stats.Table{t}
}

// expAppendixA reproduces the two Nhfsstone caveats from the appendix:
// long names defeating the server name cache, and the empty-file read
// bias.
func expAppendixA(cfg ExpConfig) []*stats.Table {
	// Caveat 1: lookup benchmark with short vs long names against a
	// server with the name cache on and off.
	t1 := stats.NewTable("Appendix caveat 1: server name cache vs Nhfsstone name length",
		"names", "server cache", "lookup RTT(ms)", "cache hits")
	for _, long := range []bool{false, true} {
		for _, cacheOn := range []bool{true, false} {
			r := NewRig(RigConfig{Seed: cfg.seed(), Topology: TopoLAN})
			if !cacheOn {
				r.Server.SetNameCache(false)
			}
			var rtt float64
			hits := 0
			r.Env.Spawn("bench", func(p *sim.Proc) {
				tr, _ := r.DialTransport(p, UDPDynamic)
				nh := &workload.Nhfsstone{
					Cfg: workload.NhfsstoneConfig{
						Mix: workload.DefaultLookupMix(), Rate: 25, Procs: 4,
						Duration: cfg.window(), Warmup: cfg.warmup(),
						NumFiles: 40, FileSize: 2048, LongNames: long,
					},
					Tr:   tr,
					Root: r.Server.RootFH(),
				}
				if err := nh.Preload(p); err != nil {
					return
				}
				res := nh.Run(p)
				rtt = res.RTT[nfsproto.ProcLookup].Mean()
				hits = r.Server.NameCacheStats().Hits
			})
			r.Env.Run(cfg.warmup() + cfg.window() + 20*time.Minute)
			r.Close()
			names := "short"
			if long {
				names = "long(>31)"
			}
			cache := "on"
			if !cacheOn {
				cache = "off"
			}
			t1.AddRow(names, cache, rtt, hits)
		}
	}

	// Caveat 2: reads against empty vs preloaded files.
	t2 := stats.NewTable("Appendix caveat 2: read RTT vs file preloading",
		"subtree", "read RTT(ms)")
	for _, preload := range []bool{false, true} {
		r := NewRig(RigConfig{Seed: cfg.seed(), Topology: TopoLAN})
		var rtt float64
		r.Env.Spawn("bench", func(p *sim.Proc) {
			tr, _ := r.DialTransport(p, UDPDynamic)
			size := 0
			if preload {
				size = 8192
			}
			nh := &workload.Nhfsstone{
				Cfg: workload.NhfsstoneConfig{
					Mix: workload.ReadLookupMix(), Rate: 12, Procs: 4,
					Duration: cfg.window(), Warmup: cfg.warmup(),
					NumFiles: 30, FileSize: size,
				},
				Tr:   tr,
				Root: r.Server.RootFH(),
			}
			if size == 0 {
				nh.Cfg.FileSize = 1 // create non-empty handles but ~empty data
			}
			if err := nh.Preload(p); err != nil {
				return
			}
			res := nh.Run(p)
			rtt = res.RTT[nfsproto.ProcRead].Mean()
		})
		r.Env.Run(cfg.warmup() + cfg.window() + 20*time.Minute)
		r.Close()
		name := "empty files"
		if preload {
			name = "preloaded 8K files"
		}
		t2.AddRow(name, rtt)
	}
	return []*stats.Table{t1, t2}
}
