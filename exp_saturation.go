package renonfs

import (
	"fmt"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/transport"
	"renonfs/internal/workload"
)

// expSaturation characterizes the server the way [Keith90] (which the
// paper's intro cites) does: several clients offer an aggregate load of
// the full nhfsstone mix and the curve of achieved throughput, response
// time and server CPU shows where the CPU-bound server saturates — the
// premise of §3's "most current NFS servers tend to be CPU bound".
func expSaturation(cfg ExpConfig) []*stats.Table {
	loads := []float64{40, 80, 120, 160, 200, 240}
	if cfg.Quick {
		loads = []float64{40, 120, 240}
	}
	const nClients = 4
	t := stats.NewTable("Server characterization: 4 clients, full nhfsstone mix (Reno server)",
		"offered/s", "achieved/s", "lookup RTT(ms)", "lookup p99(ms)", "server CPU %", "disk util %")
	for _, load := range loads {
		env := sim.New(cfg.seed() + int64(load))
		mt := netsim.BuildMulti(env, nClients, netsim.NodeConfig{}, netsim.NodeConfig{})
		disk := memfs.NewRD53(env, "server.rd53")
		fs := memfs.New(1, disk, func() nfsproto.Time {
			now := env.Now()
			return nfsproto.Time{Sec: uint32(now / time.Second), USec: uint32(now % time.Second / time.Microsecond)}
		})
		srv := server.New(fs, server.Reno())
		srv.AttachNode(mt.Server)
		srv.ServeUDP(server.NFSPort)

		results := make([]*workload.NhfsstoneResult, nClients)
		done := sim.NewEvent(env)
		remaining := nClients
		for ci, c := range mt.Clients {
			ci, c := ci, c
			env.Spawn(fmt.Sprintf("load%d", ci), func(p *sim.Proc) {
				defer func() {
					remaining--
					if remaining == 0 {
						done.Set()
					}
				}()
				tr := transport.NewUDP(c, 1001, mt.Server.ID, server.NFSPort, transport.DynamicUDP())
				nh := &workload.Nhfsstone{
					Cfg: workload.NhfsstoneConfig{
						Mix:  workload.FullMix(),
						Rate: load / nClients, Procs: 12,
						Duration: cfg.window(), Warmup: cfg.warmup(),
						NumFiles: 30, FileSize: 8192,
						OnMeasure: func() {
							if ci == 0 {
								mt.Server.ResetProfile()
								disk.ResetStats()
							}
						},
					},
					Tr:   tr,
					Root: srv.RootFH(),
				}
				if err := nh.Preload(p); err != nil {
					return
				}
				results[ci] = nh.Run(p)
			})
		}
		// Read utilizations the moment the load ends, not after the idle
		// run-out (which would dilute the window).
		var cpuUtil, diskUtil float64
		env.Spawn("wait", func(p *sim.Proc) {
			done.Wait(p)
			cpuUtil = mt.Server.CPU.Utilization()
			diskUtil = disk.Utilization()
		})
		env.Run(cfg.warmup() + cfg.window() + 30*time.Minute)
		achieved := 0.0
		rtt := stats.NewSummary(0)
		var lookupHist metrics.HistogramSnapshot
		for _, res := range results {
			if res == nil {
				continue
			}
			achieved += res.Achieved
			if s := res.RTT[nfsproto.ProcLookup]; s != nil && s.Count > 0 {
				rtt.Add(s.Mean())
			}
			if h := res.Hist[nfsproto.ProcLookup]; h != nil {
				lookupHist = lookupHist.Add(h.Snapshot())
			}
		}
		t.AddRow(load, fmt.Sprintf("%.1f", achieved), rtt.Mean(),
			lookupHist.Quantile(99),
			fmt.Sprintf("%.0f", cpuUtil*100),
			fmt.Sprintf("%.0f", diskUtil*100))
		env.Close()
	}
	return []*stats.Table{t}
}
