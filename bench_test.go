package renonfs_test

// The benchmark harness: one testing.B entry per table and figure of the
// paper (each runs the corresponding experiment in Quick mode and reports
// its headline number as a custom metric), the ablation benches DESIGN.md
// calls out, and micro-benchmarks of the hot substrate paths.
//
// Regenerate everything at full scale with: go run ./cmd/nfsbench -exp all

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"renonfs"
	"renonfs/internal/client"
	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/transport"
	"renonfs/internal/workload"
	"renonfs/internal/xdr"
)

// cellF extracts a float cell from a rendered experiment table.
func cellF(b *testing.B, tb *stats.Table, row, col int) float64 {
	b.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		return 0
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(tb.Rows[row][col]), 64)
	if err != nil {
		return 0
	}
	return v
}

// benchExperiment runs one experiment per iteration and reports a metric
// extracted from its first table.
func benchExperiment(b *testing.B, id string, metric string, extract func(*stats.Table) float64) {
	var last float64
	for i := 0; i < b.N; i++ {
		tabs, err := renonfs.RunExperiment(id, renonfs.ExpConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		last = extract(tabs[0])
	}
	b.ReportMetric(last, metric)
}

// --- One bench per table/figure -------------------------------------------

func BenchmarkGraph1LANLookup(b *testing.B) {
	benchExperiment(b, "graph1", "tcp-premium-ms", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 3) - cellF(b, tb, 0, 2)
	})
}

func BenchmarkGraph2LANReadMix(b *testing.B) {
	benchExperiment(b, "graph2", "read-rtt-udpdyn-ms", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 2)
	})
}

func BenchmarkGraph3RingLookup(b *testing.B) {
	benchExperiment(b, "graph3", "lookup-rtt-tcp-ms", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 3)
	})
}

func BenchmarkGraph4RingReadMix(b *testing.B) {
	benchExperiment(b, "graph4", "read-rtt-udpdyn-ms", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 2)
	})
}

func BenchmarkGraph5SlowLookup(b *testing.B) {
	benchExperiment(b, "graph5", "lookup-rtt-tcp-ms", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 3)
	})
}

func BenchmarkTable1ReadRates(b *testing.B) {
	benchExperiment(b, "table1", "ring-udpdyn-reads-per-s", func(tb *stats.Table) float64 {
		return cellF(b, tb, 1, 3)
	})
}

func BenchmarkGraph6ServerCPU(b *testing.B) {
	benchExperiment(b, "graph6", "tcp-over-udp-cpu-ratio", func(tb *stats.Table) float64 {
		return cellF(b, tb, 1, 3)
	})
}

func BenchmarkGraph7RTTTrace(b *testing.B) {
	benchExperiment(b, "graph7", "trace-points", func(tb *stats.Table) float64 {
		return float64(len(tb.Rows))
	})
}

func BenchmarkGraph8ServerLookupCompare(b *testing.B) {
	benchExperiment(b, "graph8", "ultrix-over-reno-rtt", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 3)
	})
}

func BenchmarkGraph9ServerReadCompare(b *testing.B) {
	benchExperiment(b, "graph9", "ultrix-over-reno-rtt", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 3)
	})
}

func BenchmarkProfile3NICTuning(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		tabs, err := renonfs.RunExperiment("profile3", renonfs.ExpConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		saving = cellF(b, tabs[2], 2, 1)
	}
	b.ReportMetric(saving, "cpu-saving-%")
}

func BenchmarkTable2AndrewTimes(b *testing.B) {
	benchExperiment(b, "table2", "reno-phaseI-IV-s", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 1)
	})
}

func BenchmarkTable3AndrewRPCCounts(b *testing.B) {
	benchExperiment(b, "table3", "ultrix-over-reno-lookups", func(tb *stats.Table) float64 {
		// Lookup row: Reno col 1, Ultrix col 3.
		for i, r := range tb.Rows {
			if r[0] == "Lookup" {
				return cellF(b, tb, i, 3) / cellF(b, tb, i, 1)
			}
		}
		return 0
	})
}

func BenchmarkTable4DS3100(b *testing.B) {
	benchExperiment(b, "table4", "ultrix-over-reno-I-IV", func(tb *stats.Table) float64 {
		return cellF(b, tb, 1, 1) / cellF(b, tb, 0, 1)
	})
}

func BenchmarkTable5CreateDelete(b *testing.B) {
	benchExperiment(b, "table5", "wthru-over-noconsist-100K", func(tb *stats.Table) float64 {
		return cellF(b, tb, 1, 3) / cellF(b, tb, 5, 3)
	})
}

func BenchmarkAppendixA(b *testing.B) {
	benchExperiment(b, "appendixA", "namecache-hits-short-names", func(tb *stats.Table) float64 {
		return cellF(b, tb, 0, 3)
	})
}

// --- Ablation benches (DESIGN.md §6) ---------------------------------------

// ablationPoint runs one read-heavy load point against a disk-backed
// server — the high-RTT-variance regime where the paper's timer policies
// differ — and reports the read-class retry count and mean read RTT.
func ablationPoint(b *testing.B, mutate func(*transport.UDPConfig), nodeMutate func(*renonfs.RigConfig)) (rtt float64, retries int) {
	cfg := transport.DynamicUDP()
	if mutate != nil {
		mutate(&cfg)
	}
	rigCfg := renonfs.RigConfig{Seed: 1991, Topology: renonfs.TopoLAN, ServerDisk: true}
	if nodeMutate != nil {
		nodeMutate(&rigCfg)
	}
	r := renonfs.NewRig(rigCfg)
	defer r.Close()
	done := false
	r.Env.Spawn("bench", func(p *sim.Proc) {
		tr := r.DialUDPConfig(cfg)
		nh := &workload.Nhfsstone{
			Cfg: workload.NhfsstoneConfig{
				Mix:  map[uint32]float64{nfsproto.ProcRead: 0.9, nfsproto.ProcLookup: 0.1},
				Rate: 28, Procs: 8,
				Duration: 2 * time.Minute, Warmup: 20 * time.Second,
				NumFiles: 320, FileSize: 8192,
			},
			Tr:   tr,
			Root: r.Server.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			return
		}
		res := nh.Run(p)
		if s := res.RTT[nfsproto.ProcRead]; s != nil {
			rtt = s.Mean()
		}
		retries = tr.Stats().RetryClass[transport.ClassRead]
		done = true
	})
	r.Env.Run(2 * time.Hour)
	if !done {
		b.Fatal("ablation point did not complete")
	}
	return rtt, retries
}

// The timer-policy ablations run the full §4 ablation experiment (long
// windows, both regimes) and report its headline deltas; single short
// points are too noisy to show the 2-4x retry-rate effect reliably.
func BenchmarkAblationRTOFactor(b *testing.B) {
	var extra, atSend float64
	for i := 0; i < b.N; i++ {
		tabs, err := renonfs.RunExperiment("ablations", renonfs.ExpConfig{})
		if err != nil {
			b.Fatal(err)
		}
		lan := tabs[0]
		extra = cellF(b, lan, 1, 3) - cellF(b, lan, 0, 3)  // A+2D vs A+4D read retries
		atSend = cellF(b, lan, 2, 3) - cellF(b, lan, 0, 3) // at-send vs per-tick
	}
	b.ReportMetric(extra, "extra-retries-A+2D")
	b.ReportMetric(atSend, "extra-retries-at-send")
}

// BenchmarkAblationSlowStart reports the 56K-path throughput cost of the
// classic fixed RTO versus the tuned transport (the slow-start row itself
// is indistinguishable at steady state, as EXPERIMENTS.md discusses).
func BenchmarkAblationSlowStart(b *testing.B) {
	var fixedPenalty float64
	for i := 0; i < b.N; i++ {
		tabs, err := renonfs.RunExperiment("ablations", renonfs.ExpConfig{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		slow := tabs[1]
		fixedPenalty = cellF(b, slow, 4, 1) - cellF(b, slow, 0, 1)
	}
	b.ReportMetric(fixedPenalty/1000, "fixed-rto-rtt-penalty-s")
}

func BenchmarkAblationPageRemap(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		before, _ := ablationPoint(b, nil, nil)
		after, _ := ablationPoint(b, nil, func(rc *renonfs.RigConfig) {
			rc.ServerPageRemap = true
		})
		saving = before - after
	}
	b.ReportMetric(saving, "rtt-saving-ms")
}

func BenchmarkAblationTxInterrupt(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		before, _ := ablationPoint(b, nil, nil)
		after, _ := ablationPoint(b, nil, func(rc *renonfs.RigConfig) {
			rc.ServerNoTxIntr = true
		})
		saving = before - after
	}
	b.ReportMetric(saving, "rtt-saving-ms")
}

// --- Micro-benchmarks of the substrate hot paths ---------------------------

func BenchmarkXDRFattrRoundTrip(b *testing.B) {
	attr := &nfsproto.Fattr{Type: nfsproto.TypeReg, Size: 8192, BlockSize: 8192, FileID: 42}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := &mbuf.Chain{}
		e := xdr.NewEncoder(c)
		attr.Encode(e)
		if _, err := nfsproto.DecodeFattr(xdr.NewDecoder(c)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMbufBuildDissect8K(b *testing.B) {
	payload := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		c := &mbuf.Chain{}
		bd := mbuf.NewBuilder(c)
		bd.WriteBytes(payload)
		d := mbuf.NewDissector(c)
		for d.Remaining() > 0 {
			n := d.Remaining()
			if n > 2048 {
				n = 2048
			}
			if _, err := d.Next(n); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRecordScanner(b *testing.B) {
	msg := mbuf.FromBytes(make([]byte, 600))
	rpc.AddRecordMark(msg)
	wire := msg.Bytes()
	var s rpc.RecordScanner
	b.SetBytes(int64(len(wire)))
	for i := 0; i < b.N; i++ {
		recs, err := s.Feed(wire)
		if err != nil || len(recs) != 1 {
			b.Fatal("bad scan")
		}
	}
}

func BenchmarkServerLookupDispatch(b *testing.B) {
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	fs.Create(nil, fs.Root(), "target", 0644)
	root := srv.RootFH()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: uint32(i + 1), Prog: nfsproto.Program, Vers: 2, Proc: nfsproto.ProcLookup})
		(&nfsproto.DiropArgs{Dir: root, Name: "target"}).Encode(xdr.NewEncoder(req))
		if rep := srv.HandleCall(nil, "b", req); rep == nil {
			b.Fatal("nil reply")
		}
	}
}

// fastpathWire encodes one call to the flat bytes the ingest readers peek.
func fastpathWire(xid, proc uint32, args func(e *xdr.Encoder)) []byte {
	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: 2, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(req))
	}
	wire := append([]byte(nil), req.Bytes()...)
	req.Free()
	return wire
}

// BenchmarkServerLookupFastpath measures the shallow dispatch path against
// BenchmarkServerLookupDispatch above: peek, classify and service the same
// LOOKUP into reused scratch, the way an ingest reader does per datagram.
// The CI gate (TestFastpathLookupGate) holds this below the generic path.
func BenchmarkServerLookupFastpath(b *testing.B) {
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	fs.Create(nil, fs.Root(), "target", 0644)
	root := srv.RootFH()
	wire := fastpathWire(1, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: root, Name: "target"}).Encode(e)
	})
	out := make([]byte, 0, server.FastReplyMax)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var h rpc.PeekedCall
		argOff, ok := rpc.PeekCallHeader(wire, &h)
		if !ok || !server.FastEligible(&h) {
			b.Fatal("bench wire not fast-eligible")
		}
		rep, ok := srv.HandleCallFast("b", wire, &h, argOff, out, nil)
		if !ok || len(rep) == 0 {
			b.Fatal("fast path refused the bench call")
		}
	}
}

func BenchmarkServerGetattrFastpath(b *testing.B) {
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	f, _ := fs.Create(nil, fs.Root(), "target", 0644)
	wire := fastpathWire(1, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: fs.FH(f)}).Encode(e)
	})
	out := make([]byte, 0, server.FastReplyMax)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var h rpc.PeekedCall
		argOff, ok := rpc.PeekCallHeader(wire, &h)
		if !ok || !server.FastEligible(&h) {
			b.Fatal("bench wire not fast-eligible")
		}
		rep, ok := srv.HandleCallFast("b", wire, &h, argOff, out, nil)
		if !ok || len(rep) == 0 {
			b.Fatal("fast path refused the bench call")
		}
	}
}

func BenchmarkServerRead8K(b *testing.B) {
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	f, _ := fs.Create(nil, fs.Root(), "data", 0644)
	fs.WriteAt(nil, f, 0, make([]byte, 8192), 0)
	fh := fs.FH(f)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: uint32(i + 1), Prog: nfsproto.Program, Vers: 2, Proc: nfsproto.ProcRead})
		(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: 8192}).Encode(xdr.NewEncoder(req))
		if rep := srv.HandleCall(nil, "b", req); rep == nil || rep.Len() < 8192 {
			b.Fatal("bad read reply")
		}
	}
}

func BenchmarkSimEventThroughput(b *testing.B) {
	env := sim.New(1)
	defer env.Close()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			env.After(time.Microsecond, tick)
		}
	}
	b.ResetTimer()
	env.After(time.Microsecond, tick)
	env.RunAll()
}

// --- Future Directions extension benches ------------------------------------

func BenchmarkFutureWork(b *testing.B) {
	var boundRatio float64
	for i := 0; i < b.N; i++ {
		tabs, err := renonfs.RunExperiment("futurework", renonfs.ExpConfig{Quick: true, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		// How close leases get to the unsafe noconsist bound on
		// Create-Delete 100K (1.0 = exactly the bound).
		cd := tabs[1]
		boundRatio = cellF(b, cd, 1, 1) / cellF(b, cd, 2, 1)
	}
	b.ReportMetric(boundRatio, "leases-vs-bound")
}

// BenchmarkAblationReadAhead sweeps the read-ahead depth the Future
// Directions section suggests raising from 1 to 2-4 blocks.
func BenchmarkAblationReadAhead(b *testing.B) {
	seqReadTime := func(depth int) time.Duration {
		// Read-ahead pays off on the long fat pipe, where the
		// bandwidth-delay product dwarfs one block (Future Directions).
		r := renonfs.NewRig(renonfs.RigConfig{Seed: 11, Topology: renonfs.TopoLFN, ServerDisk: true})
		defer r.Close()
		var elapsed time.Duration
		done := false
		r.Env.Spawn("reader", func(p *sim.Proc) {
			opts := renonfs.RenoClient()
			opts.ReadAhead = depth
			opts.Biods = 4
			m, err := r.Mount(p, renonfs.UDPDynamic, opts)
			if err != nil {
				return
			}
			f, err := m.Create(p, "big", 0644)
			if err != nil {
				return
			}
			f.Write(p, make([]byte, 64*8192))
			f.Close(p)
			p.Sleep(6 * time.Second)
			g, err := m.Open(p, "big")
			if err != nil {
				return
			}
			start := p.Now()
			buf := make([]byte, 8192)
			for {
				n, err := g.Read(p, buf)
				if err != nil || n == 0 {
					break
				}
			}
			elapsed = time.Duration(p.Now() - start)
			done = true
		})
		r.Env.Run(time.Hour)
		if !done {
			b.Fatal("sequential read did not finish")
		}
		return elapsed
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		t1 := seqReadTime(1)
		t4 := seqReadTime(4)
		speedup = float64(t1) / float64(t4)
	}
	b.ReportMetric(speedup, "readahead4-speedup")
}

// BenchmarkAblationLendPages measures the §3 "further work" option that
// lends buffer-cache pages to the network code (skipping the third
// bottleneck's copy).
func BenchmarkAblationLendPages(b *testing.B) {
	cpuFor := func(lend bool) float64 {
		srv := renonfs.RenoServer()
		srv.LendPages = lend
		r := renonfs.NewRig(renonfs.RigConfig{Seed: 3, ServerOpts: srv})
		defer r.Close()
		var cpu float64
		done := false
		r.Env.Spawn("load", func(p *sim.Proc) {
			tr, err := r.DialTransport(p, renonfs.UDPDynamic)
			if err != nil {
				return
			}
			root := r.Server.RootFH()
			attr := nfsproto.NewSattr()
			attr.Mode = 0644
			d, err := tr.Call(p, nfsproto.ProcCreate, func(e *xdr.Encoder) {
				(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: root, Name: "f"}, Attr: attr}).Encode(e)
			})
			if err != nil {
				return
			}
			res, _ := nfsproto.DecodeDiropRes(d)
			tr.Call(p, nfsproto.ProcWrite, func(e *xdr.Encoder) {
				(&nfsproto.WriteArgs{File: res.File, Offset: 0, Data: mbuf.FromBytes(make([]byte, 8192))}).Encode(e)
			})
			r.Net.Server.ResetProfile()
			for i := 0; i < 100; i++ {
				tr.Call(p, nfsproto.ProcRead, func(e *xdr.Encoder) {
					(&nfsproto.ReadArgs{File: res.File, Offset: 0, Count: 8192}).Encode(e)
				})
			}
			cpu = float64(r.Net.Server.CPU.BusyTime())
			done = true
		})
		r.Env.Run(10 * time.Minute)
		if !done {
			b.Fatal("lend-pages load did not finish")
		}
		return cpu
	}
	var saving float64
	for i := 0; i < b.N; i++ {
		base := cpuFor(false)
		lend := cpuFor(true)
		saving = 100 * (1 - lend/base)
	}
	b.ReportMetric(saving, "cpu-saving-%")
}

// BenchmarkAblationWriteGathering measures the [Juszczak89] nfsd
// optimization the paper cites: batching metadata disk writes across a
// biod burst.
func BenchmarkAblationWriteGathering(b *testing.B) {
	cdTime := func(gather bool) float64 {
		srv := renonfs.RenoServer()
		srv.WriteGathering = gather
		r := renonfs.NewRig(renonfs.RigConfig{Seed: 13, ServerOpts: srv, ServerDisk: true})
		defer r.Close()
		var mean float64
		done := false
		r.Env.Spawn("cd", func(p *sim.Proc) {
			opts := renonfs.RenoClient()
			opts.Policy = client.WriteAsync
			m, err := r.Mount(p, renonfs.UDPDynamic, opts)
			if err != nil {
				return
			}
			res, err := workload.RunCreateDelete(p, workload.MountFS{M: m}, "wg", 100*1024, 5)
			if err != nil {
				return
			}
			mean = res.MeanMS
			done = true
		})
		r.Env.Run(2 * time.Hour)
		if !done {
			b.Fatal("create-delete did not finish")
		}
		return mean
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		off := cdTime(false)
		on := cdTime(true)
		speedup = off / on
	}
	b.ReportMetric(speedup, "gathering-speedup")
}
