package renonfs_test

import (
	"fmt"
	"time"

	"renonfs"
	"renonfs/internal/sim"
)

// Example shows the five-line path from nothing to NFS file I/O on the
// simulated testbed.
func Example() {
	r := renonfs.NewRig(renonfs.RigConfig{Seed: 1})
	defer r.Close()
	r.Env.Spawn("app", func(p *sim.Proc) {
		m, err := r.Mount(p, renonfs.UDPDynamic, renonfs.RenoClient())
		if err != nil {
			return
		}
		f, _ := m.Create(p, "hello.txt", 0644)
		f.Write(p, []byte("hello, 1991"))
		f.Close(p)
		g, _ := m.Open(p, "hello.txt")
		buf := make([]byte, 32)
		n, _ := g.Read(p, buf)
		fmt.Printf("%s\n", buf[:n])
	})
	r.Env.Run(time.Minute)
	// Output: hello, 1991
}

// ExampleRig_DialTransport compares a lookup's round trip over the three
// §4 transports on the same network.
func ExampleRig_DialTransport() {
	for _, kind := range []renonfs.TransportKind{renonfs.UDPFixed, renonfs.UDPDynamic, renonfs.TCP} {
		r := renonfs.NewRig(renonfs.RigConfig{Seed: 1})
		ok := false
		r.Env.Spawn("probe", func(p *sim.Proc) {
			m, err := r.Mount(p, kind, renonfs.RenoClient())
			if err != nil {
				return
			}
			if _, err := m.Statfs(p); err == nil {
				ok = true
			}
		})
		r.Env.Run(time.Minute)
		r.Close()
		fmt.Printf("%s ok=%v\n", kind, ok)
	}
	// Output:
	// udp-fixed ok=true
	// udp-dyn ok=true
	// tcp ok=true
}

// ExampleRunExperiment regenerates one of the paper's figures.
func ExampleRunExperiment() {
	tabs, err := renonfs.RunExperiment("graph7", renonfs.ExpConfig{Quick: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("%d table(s); first has columns %v\n", len(tabs), tabs[0].Columns)
	// Output: 1 table(s); first has columns [t(s) rtt(ms) rto(ms)]
}
