// Leases: the paper's Future Directions, running. §5 ends by asking
// whether NFS needs full cache coherency "or simply a mechanism for doing
// a delayed write without push on close policy safely" — this example runs
// that mechanism (NQNFS-style leases) and shows it reaching the unsafe
// no-consistency bound while staying coherent under sharing.
package main

import (
	"fmt"
	"time"

	"renonfs"
	"renonfs/internal/client"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/workload"
)

func createDelete(name string, srvOpts renonfs.RigConfig, opts client.Options) (float64, int) {
	r := renonfs.NewRig(srvOpts)
	defer r.Close()
	var mean float64
	writes := 0
	r.Env.Spawn("cd", func(p *sim.Proc) {
		m, err := r.Mount(p, renonfs.UDPDynamic, opts)
		if err != nil {
			return
		}
		res, err := workload.RunCreateDelete(p, workload.MountFS{M: m}, name, 100*1024, 6)
		if err != nil {
			return
		}
		mean = res.MeanMS
		writes = m.Stats.RPCCount(nfsproto.ProcWrite)
	})
	r.Env.Run(2 * time.Hour)
	return mean, writes
}

func main() {
	fmt.Println("Create-Delete of a 100KB file, three consistency regimes:")
	table := stats.NewTable("", "client", "mean ms", "write RPCs", "coherent under sharing?")

	plainRig := renonfs.RigConfig{Seed: 1, ServerDisk: true}
	leaseRig := renonfs.RigConfig{Seed: 1, ServerDisk: true, ServerOpts: renonfs.LeaseServer()}

	mean, wr := createDelete("reno", plainRig, renonfs.RenoClient())
	table.AddRow("Reno (push-on-close)", fmt.Sprintf("%.0f", mean), wr, "yes")
	mean, wr = createDelete("leases", leaseRig, renonfs.LeaseClient())
	table.AddRow("Reno + leases", fmt.Sprintf("%.0f", mean), wr, "yes (evict on conflict)")
	mean, wr = createDelete("noconsist", plainRig, renonfs.NoConsistClient())
	table.AddRow("noconsist (unsafe)", fmt.Sprintf("%.0f", mean), wr, "NO")
	fmt.Println(table.String())

	// And the coherence proof: a second client always sees leased writes.
	fmt.Println("sharing check: writer holds a write lease, reader opens the file...")
	r := renonfs.NewRig(renonfs.RigConfig{Seed: 2, ServerOpts: renonfs.LeaseServer()})
	defer r.Close()
	r.Env.Spawn("share", func(p *sim.Proc) {
		writer, err := r.Mount(p, renonfs.UDPDynamic, renonfs.LeaseClient())
		if err != nil {
			return
		}
		reader, err := r.Mount(p, renonfs.UDPDynamic, renonfs.LeaseClient())
		if err != nil {
			return
		}
		f, err := writer.Create(p, "notes.txt", 0644)
		if err != nil {
			return
		}
		f.Write(p, []byte("written under a lease, never pushed at close"))
		f.Close(p)
		fmt.Printf("  writer: %d write RPCs after close (delayed, leased)\n",
			writer.Stats.RPCCount(nfsproto.ProcWrite))
		g, err := reader.Open(p, "notes.txt")
		if err != nil {
			fmt.Println("  reader open:", err)
			return
		}
		buf := make([]byte, 128)
		n, _ := g.Read(p, buf)
		g.Close(p)
		fmt.Printf("  reader sees: %q\n", buf[:n])
		fmt.Printf("  writer was evicted %d time(s); server sent %d notice(s)\n",
			writer.Stats.LeaseEvictions, r.Server.Stats.Evictions.Load())
	})
	r.Env.Run(10 * time.Minute)
}
