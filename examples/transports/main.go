// Transports: the paper's headline experiment in miniature. Run the same
// lookup workload over the 56 Kbit/s internetwork with all three RPC
// transports and watch fixed-RTO UDP fall apart while TCP and dynamic-RTO
// UDP hold up — "the notion that TCP transport would provide unacceptable
// performance for NFS RPCs is shown to be unfounded."
package main

import (
	"fmt"
	"time"

	"renonfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/workload"
)

func main() {
	fmt.Println("Nhfsstone 100% lookup mix across the 56Kbps link (3 IP routers)")
	table := stats.NewTable("", "transport", "offered/s", "achieved/s", "mean RTT(ms)", "p95(ms)", "retries")
	for _, kind := range []renonfs.TransportKind{renonfs.UDPFixed, renonfs.UDPDynamic, renonfs.TCP} {
		r := renonfs.NewRig(renonfs.RigConfig{Seed: 7, Topology: renonfs.TopoSlow})
		var res *workload.NhfsstoneResult
		r.Env.Spawn("load", func(p *sim.Proc) {
			tr, err := r.DialTransport(p, kind)
			if err != nil {
				return
			}
			nh := &workload.Nhfsstone{
				Cfg: workload.NhfsstoneConfig{
					Mix:  workload.DefaultLookupMix(),
					Rate: 4, Procs: 4,
					Duration: 60 * time.Second, Warmup: 10 * time.Second,
					NumFiles: 10, FileSize: 2048,
				},
				Tr:   tr,
				Root: r.Server.RootFH(),
			}
			if err := nh.Preload(p); err != nil {
				return
			}
			res = nh.Run(p)
		})
		r.Env.Run(30 * time.Minute)
		if res != nil {
			s := res.RTT[nfsproto.ProcLookup]
			table.AddRow(kind.String(), 4.0, fmt.Sprintf("%.1f", res.Achieved),
				s.Mean(), s.Percentile(95), res.Retries)
		}
		r.Close()
	}
	fmt.Println(table.String())
	fmt.Println("The paper's §4: with a fixed 1s RTO, every lost fragment costs a")
	fmt.Println("full timeout; dynamic RTO estimation plus a congestion window — or")
	fmt.Println("simply running over TCP — keeps the slow path usable.")
}
