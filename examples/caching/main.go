// Caching: make §5's client-side caching effects visible. The same
// edit-and-rebuild style workload (write files, read them back) runs under
// the Reno, Ultrix and no-consistency client personalities, and the RPC
// bill is printed for each — the mechanism behind Table #3.
package main

import (
	"fmt"
	"time"

	"renonfs"
	"renonfs/internal/client"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
)

// workset edits 8 files and then "rebuilds": reads every file twice.
func workset(p *sim.Proc, m *client.Mount) error {
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("mod%d.c", i)
		f, err := m.Create(p, name, 0644)
		if err != nil {
			return err
		}
		// Edited in four 3 KB pieces, like a text editor's save.
		for j := 0; j < 4; j++ {
			if _, err := f.Write(p, make([]byte, 3072)); err != nil {
				return err
			}
		}
		if err := f.Close(p); err != nil {
			return err
		}
	}
	buf := make([]byte, 4096)
	for round := 0; round < 2; round++ {
		for i := 0; i < 8; i++ {
			f, err := m.Open(p, fmt.Sprintf("mod%d.c", i))
			if err != nil {
				return err
			}
			for {
				n, err := f.Read(p, buf)
				if err != nil {
					return err
				}
				if n == 0 {
					break
				}
			}
			f.Close(p)
		}
	}
	return nil
}

func main() {
	fmt.Println("edit-and-rebuild workload: 8 files x 12KB written, then read twice")
	table := stats.NewTable("", "client", "lookup", "getattr", "read", "write", "total RPCs")
	for _, opts := range []client.Options{
		renonfs.RenoClient(),
		renonfs.UltrixClient(),
		renonfs.NoConsistClient(),
	} {
		r := renonfs.NewRig(renonfs.RigConfig{Seed: 42})
		ok := false
		var st client.Stats
		r.Env.Spawn("work", func(p *sim.Proc) {
			m, err := r.Mount(p, renonfs.UDPDynamic, opts)
			if err != nil {
				return
			}
			if err := workset(p, m); err != nil {
				return
			}
			st = m.Stats
			ok = true
		})
		r.Env.Run(time.Hour)
		r.Close()
		if !ok {
			continue
		}
		table.AddRow(opts.Name,
			st.Calls[nfsproto.ProcLookup],
			st.Calls[nfsproto.ProcGetattr],
			st.Calls[nfsproto.ProcRead],
			st.Calls[nfsproto.ProcWrite],
			st.TotalCalls())
	}
	fmt.Println(table.String())
	fmt.Println("reno:       name cache cuts lookups; flush-before-read re-fetches")
	fmt.Println("            its own writes (the client can't tell whose mtime moved)")
	fmt.Println("ultrix:     no name cache (more lookups); eager write-back sends")
	fmt.Println("            every editor save chunk (more writes); trusts its own")
	fmt.Println("            mtime changes (fewer reads)")
	fmt.Println("noconsist:  the optimistic bound a cache consistency protocol chases")
}
