// Andrew: run the Modified-Andrew-style benchmark end to end on the
// simulated testbed, once on a MicroVAXII-class client and once on a
// DS3100-class client, printing phase times and the RPC bill (Tables 2-4).
package main

import (
	"fmt"
	"time"

	"renonfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/workload"
)

func run(clientMIPS float64, label string) {
	r := renonfs.NewRig(renonfs.RigConfig{
		Seed: 1991, ClientMIPS: clientMIPS, ServerDisk: true,
	})
	defer r.Close()
	files := workload.AndrewTree()
	if err := workload.PreloadServerTree(r.FS, files); err != nil {
		fmt.Println("preload:", err)
		return
	}
	var res *workload.AndrewResult
	r.Env.Spawn("mab", func(p *sim.Proc) {
		m, err := r.Mount(p, renonfs.UDPDynamic, renonfs.RenoClient())
		if err != nil {
			return
		}
		res, err = workload.RunAndrew(p, m, files)
		if err != nil {
			fmt.Println("andrew:", err)
		}
	})
	r.Env.Run(12 * time.Hour)
	if res == nil {
		fmt.Println("benchmark did not complete")
		return
	}
	fmt.Printf("\n%s (%.1f MIPS client), Reno client + Reno server:\n", label, clientMIPS)
	t := stats.NewTable("", "phase", "what", "seconds")
	names := []string{"I", "II", "III", "IV", "V"}
	what := []string{"mkdir tree", "copy files", "stat all", "read all", "compile+link"}
	for i, d := range res.PhaseTimes {
		t.AddRow(names[i], what[i], fmt.Sprintf("%.0f", float64(d)/1e9))
	}
	t.AddRow("I-IV", "", fmt.Sprintf("%.0f", float64(res.PhaseI_IV())/1e9))
	fmt.Println(t.String())
	fmt.Printf("RPCs: lookup=%d getattr=%d read=%d write=%d total=%d\n",
		res.RPC.Calls[nfsproto.ProcLookup], res.RPC.Calls[nfsproto.ProcGetattr],
		res.RPC.Calls[nfsproto.ProcRead], res.RPC.Calls[nfsproto.ProcWrite],
		res.RPC.TotalCalls())
}

func main() {
	fmt.Println("Modified Andrew Benchmark on the simulated testbed")
	run(netsim.MIPSMicroVAXII, "MicroVAXII")
	run(netsim.MIPSDS3100, "DECstation 3100")
	fmt.Println("\nNote how phase V dominates on the slow client (compiles are CPU")
	fmt.Println("bound) while the fast client exposes the I/O path — the paper's")
	fmt.Println("motivation for studying client caching on faster hardware.")
}
