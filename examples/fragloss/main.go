// Fragloss: watch the paper's central transport argument happen, packet by
// packet. An 8 KB NFS read over the 56 Kbit/s path is ~9 IP fragments;
// lose any one and the whole datagram is gone, and a fixed-RTO client just
// sits through a full timeout before resending all of it ("fragmentation
// considered harmful", [Kent87b]). The simulator's tcpdump-style tracer
// shows the fragments, the loss, the silence, and the retransmission.
package main

import (
	"fmt"
	"time"

	"renonfs"
	"renonfs/internal/mbuf"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
	"renonfs/internal/xdr"
)

func main() {
	r := renonfs.NewRig(renonfs.RigConfig{Seed: 11, Topology: renonfs.TopoSlow})
	defer r.Close()

	var trace netsim.CollectTracer
	var events []netsim.TraceEvent
	r.Env.Spawn("demo", func(p *sim.Proc) {
		cfg := transport.FixedUDP() // the classic client: 1s RTO
		tr := r.DialUDPConfig(cfg)
		root := r.Server.RootFH()
		// Create an 8 KB file first (untraced).
		attr := nfsproto.NewSattr()
		attr.Mode = 0644
		d, err := tr.Call(p, nfsproto.ProcCreate, func(e *xdr.Encoder) {
			(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: root, Name: "big"}, Attr: attr}).Encode(e)
		})
		if err != nil {
			fmt.Println("create:", err)
			return
		}
		res, _ := nfsproto.DecodeDiropRes(d)
		tr.Call(p, nfsproto.ProcWrite, func(e *xdr.Encoder) {
			(&nfsproto.WriteArgs{File: res.File, Offset: 0, Data: chain8K()}).Encode(e)
		})

		// Now trace 8K reads until we catch one that loses a fragment.
		r.Net.Net.SetTracer(&trace)
		for attempt := 0; attempt < 60; attempt++ {
			before := len(trace.Events)
			retriesBefore := tr.Stats().Retries
			tr.Call(p, nfsproto.ProcRead, func(e *xdr.Encoder) {
				(&nfsproto.ReadArgs{File: res.File, Offset: 0, Count: 8192}).Encode(e)
			})
			if tr.Stats().Retries > retriesBefore {
				events = append([]netsim.TraceEvent(nil), trace.Events[before:]...)
				break
			}
		}
	})
	r.Env.Run(30 * time.Minute)

	if len(events) == 0 {
		fmt.Println("no fragment loss observed this run (try another seed)")
		return
	}
	fmt.Println("one unlucky 8K read over the 56Kbps path, as the wire saw it:")
	fmt.Println()
	losses := 0
	shown := 0
	for _, ev := range events {
		// Show the serial-link hops and any losses; elide the quiet
		// Ethernet/router legs so the story stays readable.
		if ev.Kind == netsim.TraceLoss || ev.Kind == netsim.TraceQDrop ||
			ev.Where == "serial" || ev.Where == "client" || ev.Where == "server" {
			fmt.Println(" ", ev)
			shown++
		}
		if ev.Kind == netsim.TraceLoss || ev.Kind == netsim.TraceQDrop {
			losses++
		}
		if shown > 60 {
			fmt.Println("  ...")
			break
		}
	}
	fmt.Println()
	fmt.Printf("%d fragment(s) lost; every surviving fragment of that datagram was wasted,\n", losses)
	fmt.Println("and the fixed-RTO client waited out a full 1s timeout before resending the")
	fmt.Println("entire 8K read — the §4 case for congestion control or TCP.")
}

func chain8K() *mbuf.Chain { return mbuf.FromBytes(make([]byte, 8192)) }
