// Quickstart: start the user-space NFS server on real loopback sockets,
// mount it with both the UDP and TCP clients, and do ordinary file work.
// This is the five-minute tour of the public API over genuine sockets.
package main

import (
	"fmt"
	"log"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsnet"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
)

func main() {
	// 1. An in-memory filesystem and a Reno-personality server.
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	s, err := nfsnet.Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	fmt.Printf("serving NFS v2 on udp %s and tcp %s\n", s.UDPAddr(), s.TCPAddr())

	// 2. A UDP client creates a directory tree and a file.
	udp, err := nfsnet.DialUDP(s.UDPAddr())
	if err != nil {
		log.Fatal(err)
	}
	defer udp.Close()
	// Bootstrap the way a real client does: ask mountd for the root handle.
	mnt, err := udp.Mnt("/")
	if err != nil || mnt.Status != 0 {
		log.Fatalf("mount: %v %v", mnt, err)
	}
	root := mnt.File
	fmt.Println("mounted / via the MOUNT protocol")

	dir, err := udp.Mkdir(root, "notes", 0755)
	if err != nil || dir.Status != nfsproto.OK {
		log.Fatalf("mkdir: %v %v", dir, err)
	}
	file, err := udp.Create(dir.File, "today.txt", 0644)
	if err != nil || file.Status != nfsproto.OK {
		log.Fatalf("create: %v %v", file, err)
	}
	msg := []byte("TCP turns out to be a perfectly good NFS transport.\n")
	if _, err := udp.Write(file.File, 0, msg); err != nil {
		log.Fatalf("write: %v", err)
	}
	fmt.Printf("wrote %d bytes over UDP\n", len(msg))

	// 3. A TCP client reads the same file back — same server state,
	// different transport (the paper's §2 independence claim, live).
	tcp, err := nfsnet.DialTCP(s.TCPAddr())
	if err != nil {
		log.Fatal(err)
	}
	defer tcp.Close()
	look, err := tcp.Lookup(dir.File, "today.txt")
	if err != nil || look.Status != nfsproto.OK {
		log.Fatalf("lookup: %v %v", look, err)
	}
	rd, err := tcp.Read(look.File, 0, 1024)
	if err != nil || rd.Status != nfsproto.OK {
		log.Fatalf("read: %v %v", rd, err)
	}
	fmt.Printf("read back over TCP: %s", rd.Data.Bytes())

	// 4. Directory listing and cleanup.
	ls, err := tcp.Readdir(dir.File, 0, 4096)
	if err != nil || ls.Status != nfsproto.OK {
		log.Fatalf("readdir: %v %v", ls, err)
	}
	fmt.Print("notes/ contains:")
	for _, e := range ls.Entries {
		fmt.Printf(" %s", e.Name)
	}
	fmt.Println()
	if _, err := udp.Remove(dir.File, "today.txt"); err != nil {
		log.Fatalf("remove: %v", err)
	}
	fmt.Printf("server handled %d RPCs\n", srv.Stats.Total())
}
