# Developer entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: build test race chaos fuzz-smoke vet bench bench-smoke profile scaling scaling-smoke fleet fleet-smoke

build:
	$(GO) build ./...

# Fast tier: every package's unit/integration tests plus a 2-seed chaos
# smoke (the -short sweep).
test:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

# Full chaos tier: the complete seed x transport x topology sweep
# (>= 100 combinations) with invariant auditing, plus determinism replays.
# A failure prints the fault schedule and the exact one-command repro.
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# 30-second native-fuzz smoke over the two network-facing decoders.
fuzz-smoke:
	$(GO) test -fuzz=FuzzRPCDecode -fuzztime=30s ./internal/rpc
	$(GO) test -fuzz=FuzzXDRDecode -fuzztime=30s ./internal/xdr

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -benchtime 1x ./...

# One iteration of every benchmark plus the allocation-budget tests and the
# regression gates: per-call allocation or copy regressions against
# BENCH_baseline.json, a fast-path LOOKUP slower than the generic dispatch
# it bypasses (BENCH_fastpath.json), and a leased Create-Delete falling
# below 3x the full-consistency time or losing write-RPC parity with the
# no-consistency bound (BENCH_leases.json).
bench-smoke:
	$(GO) test -run 'TestAllocBudget|TestReadReplyZeroCopy|TestFastpathLookupGate|TestLeaseCreateDeleteGate' -bench=. -benchmem -benchtime 1x .

# The lease-coherence sweep: the two-client close-to-open model, the
# randomized-IO model under the lease personality, the concurrent
# callback-storm race test, and the lease chaos sweep (every UDP
# transport/topology combo under seeded fault schedules, verified by the
# invariant auditor).
lease-sweep:
	$(GO) test -race -run 'TestLeaseCloseToOpenModel|TestRandomizedIOAgainstModel' ./internal/client
	$(GO) test -race -run 'TestLeaseCallbackStormRace|TestLeaseWorkloadCleanUnderAuditor' ./internal/server
	$(GO) test -run 'TestChaosLeaseSweep' .

# Real-socket scaling curves: GOMAXPROCS 1/2/4/8 x 1/2/4/8 concurrent
# clients against the parallel nfsd worker pool — each GOMAXPROCS setting
# measured with 1 ingest reader (the legacy single-socket baseline) and
# with readers=GOMAXPROCS (the sharded frontend) — with per-stage p99
# breakdowns, recorded in BENCH_scaling.json (each run carries a "readers"
# field). Needs real cores to show real parallelism (the JSON carries
# num_cpu so a 1-core record is identifiable).
scaling:
	$(GO) run ./cmd/nfsbench -scaling

# The CI multicore gate: measures both ingest configurations — readers=1
# (legacy baseline, reported) and readers=GOMAXPROCS (sharded, gated) —
# printing the per-stage p99 table for each. Fails if the sharded config's
# 4-client throughput < 2.5x 1-client, and (with RENONFS_SCALING_REQUIRE=1,
# as CI sets) fails rather than skips on a runner with fewer than 4 cores.
scaling-smoke:
	RENONFS_SCALING=1 $(GO) test -run TestScalingSmoke -v ./internal/nfsnet

# Open-loop fleet rig (DESIGN.md §10): 10k simulated mounts sweeping
# offered RPS for the latency-vs-load curve, then the hostile scenario
# scripts (flash crowd, remount herd, retransmit storm) under the strict
# exactly-once auditor. Writes BENCH_fleet.json; audit violations fail.
fleet:
	$(GO) run ./cmd/nfsbench -fleet -dur 3s

# CI-sized fleet run: 1k simulated clients for 2s — exercises the SLO
# parser, both curve and scenario paths, and exits nonzero if any scenario
# breaks the exactly-once audit. No JSON artifact.
fleet-smoke:
	$(GO) run ./cmd/nfsbench -fleet -fleet-clients 1000 -fleet-shards 8 \
		-fleet-rps 150,300 -dur 2s -fleet-slo p50=250ms,p99=2s,p999=5s,timeouts=0.25 \
		-fleet-out ""

# Profile a representative experiment run with pprof; start perf work here,
# the way the paper's tuning started from kernel profiles. Alongside the
# CPU/allocation profiles this collects the runtime's mutex-contention and
# blocking profiles from a real-socket load, the lock-serialization view.
PROFILE_EXP ?= graph2
profile:
	$(GO) run ./cmd/nfsbench -exp $(PROFILE_EXP) -quick \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	$(GO) run ./cmd/nfsbench -clients 4 -dur 2s \
		-mutexprofile mutex.pprof -blockprofile block.pprof -trace trace.json
	@echo "view with: go tool pprof cpu.pprof (or mem.pprof, mutex.pprof, block.pprof)"
	@echo "open trace.json at chrome://tracing"
