package renonfs

import (
	"fmt"
	"time"

	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/transport"
	"renonfs/internal/workload"
)

// ExpConfig scales the experiment harness.
type ExpConfig struct {
	// Quick shrinks durations and point counts for tests and benches. The
	// full configuration uses longer windows (the paper's points are
	// 30-minute runs; virtual minutes are cheap but not free).
	Quick bool
	// Seed drives all randomness.
	Seed int64
}

func (c ExpConfig) seed() int64 {
	if c.Seed == 0 {
		return 1991
	}
	return c.Seed
}

// window returns the per-point measurement duration.
func (c ExpConfig) window() sim.Time {
	if c.Quick {
		return 20 * time.Second
	}
	return 2 * time.Minute
}

func (c ExpConfig) warmup() sim.Time {
	if c.Quick {
		return 5 * time.Second
	}
	return 20 * time.Second
}

// Experiment regenerates one table or figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg ExpConfig) []*stats.Table
}

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"graph1", "Graph #1: avg lookup RTT vs load, same LAN, 100% lookup mix", expGraphRTT(TopoLAN, workload.DefaultLookupMix(), nfsproto.ProcLookup, lanLookupLoads)},
		{"graph2", "Graph #2: avg RTT vs load, same LAN, 50/50 read/lookup mix", expGraphRTT(TopoLAN, workload.ReadLookupMix(), nfsproto.ProcRead, lanReadLoads)},
		{"graph3", "Graph #3: avg lookup RTT vs load, token ring + 2 routers", expGraphRTT(TopoRing, workload.DefaultLookupMix(), nfsproto.ProcLookup, ringLookupLoads)},
		{"graph4", "Graph #4: avg RTT vs load, token ring, 50/50 read/lookup mix", expGraphRTT(TopoRing, workload.ReadLookupMix(), nfsproto.ProcRead, ringReadLoads)},
		{"graph5", "Graph #5: avg lookup RTT vs load, 56Kbps link + 3 routers", expGraphRTT(TopoSlow, workload.DefaultLookupMix(), nfsproto.ProcLookup, slowLookupLoads)},
		{"table1", "Table #1: achieved read rates per transport and topology", expTable1},
		{"graph6", "Graph #6: server CPU utilization, UDP vs TCP, read mix", expGraph6},
		{"graph7", "Graph #7: sample RTT and RTO=A+4D trace for read RPCs", expGraph7},
		{"graph8", "Graph #8: Reno vs Ultrix server, 100% lookup mix", expServerCompare(workload.DefaultLookupMix(), nfsproto.ProcLookup)},
		{"graph9", "Graph #9: Reno vs Ultrix server, 50/50 read/lookup mix", expServerCompare(workload.ReadLookupMix(), nfsproto.ProcRead)},
		{"profile3", "§3: server CPU profile and NIC-path tuning savings", expProfile3},
		{"table2", "Table #2: Modified Andrew Benchmark, MicroVAXII client (sec)", expTable2},
		{"table3", "Table #3: Modified Andrew Benchmark RPC counts", expTable3},
		{"table4", "Table #4: Modified Andrew Benchmark, DS3100 client vs servers (sec)", expTable4},
		{"table5", "Table #5: Create-Delete benchmark (msec)", expTable5},
		{"appendixA", "Appendix: Nhfsstone caveats (long names, empty files)", expAppendixA},
		{"ablations", "§4 ablations: RTO factor, slow start, per-tick recalculation", expAblations},
		{"futurework", "Future Directions: leases, readdir+lookup, adaptive transfer size", expFutureWork},
		{"saturation", "Server characterization: multi-client load to CPU saturation [Keith90]", expSaturation},
	}
}

// RunExperiment runs one experiment by id.
func RunExperiment(id string, cfg ExpConfig) ([]*stats.Table, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(cfg), nil
		}
	}
	return nil, fmt.Errorf("renonfs: unknown experiment %q", id)
}

// Load points per topology (aggregate RPC/s offered).
var (
	lanLookupLoads  = []float64{10, 20, 30, 40, 50}
	lanReadLoads    = []float64{4, 8, 12, 16, 20}
	ringLookupLoads = []float64{5, 10, 15, 20, 25}
	ringReadLoads   = []float64{2, 4, 6, 8, 10}
	slowLookupLoads = []float64{1, 2, 3, 4, 5}
)

func quickLoads(loads []float64) []float64 {
	return []float64{loads[0], loads[len(loads)/2], loads[len(loads)-1]}
}

// runNhfsstone runs one load point on a fresh rig and returns the result
// plus the rig (for CPU inspection). The rig is closed before returning.
func runNhfsstone(cfg ExpConfig, topo Topology, kind TransportKind, mix map[uint32]float64,
	rate float64, srvOpts RigConfig, tune func(*workload.NhfsstoneConfig)) (*workload.NhfsstoneResult, float64) {

	rigCfg := srvOpts
	rigCfg.Topology = topo
	if rigCfg.Seed == 0 {
		rigCfg.Seed = cfg.seed() + int64(kind)*101 + int64(rate*7)
	}
	r := NewRig(rigCfg)
	defer r.Close()
	var res *workload.NhfsstoneResult
	var cpu float64
	r.Env.Spawn("bench", func(p *sim.Proc) {
		tr, err := r.DialTransport(p, kind)
		if err != nil {
			return
		}
		nh := &workload.Nhfsstone{
			Cfg: workload.NhfsstoneConfig{
				Mix: mix, Rate: rate, Procs: 4,
				Duration: cfg.window(), Warmup: cfg.warmup(),
				NumFiles: 40, FileSize: 8192,
				OnMeasure: func() { r.Net.Server.ResetProfile() },
			},
			Tr:   tr,
			Root: r.Server.RootFH(),
		}
		if tune != nil {
			tune(&nh.Cfg)
		}
		if err := nh.Preload(p); err != nil {
			return
		}
		res = nh.Run(p)
		cpu = r.Net.Server.CPU.Utilization()
	})
	r.Env.Run(cfg.warmup() + cfg.window() + 20*time.Minute)
	return res, cpu
}

// expGraphRTT builds the Graphs 1-5 runner: avg RTT of the probe proc vs
// offered load, one column per transport.
func expGraphRTT(topo Topology, mix map[uint32]float64, probe uint32, loads []float64) func(ExpConfig) []*stats.Table {
	return func(cfg ExpConfig) []*stats.Table {
		pts := loads
		if cfg.Quick {
			pts = quickLoads(loads)
		}
		kinds := []TransportKind{UDPFixed, UDPDynamic, TCP}
		t := stats.NewTable(fmt.Sprintf("avg %s RTT (ms) vs offered load (RPC/s) — %v", nfsproto.ProcName(probe), topo),
			"load", "udp-fixed", "udp-dyn", "tcp",
			"p99(fixed)", "p99(dyn)", "p99(tcp)", "retries(fixed/dyn/tcp)")
		for _, load := range pts {
			row := []any{load}
			// Tail latency from the log-bucket histograms: under loss the
			// retransmitted calls live orders of magnitude past the mean.
			p99 := []any{}
			var retries [3]int
			for i, k := range kinds {
				res, _ := runNhfsstone(cfg, topo, k, mix, load, RigConfig{}, nil)
				if res == nil || res.RTT[probe] == nil || res.RTT[probe].Count == 0 {
					row = append(row, "-")
					p99 = append(p99, "-")
					continue
				}
				row = append(row, res.RTT[probe].Mean())
				p99 = append(p99, res.Hist[probe].Quantile(99))
				retries[i] = res.Retries
			}
			row = append(row, p99...)
			row = append(row, fmt.Sprintf("%d/%d/%d", retries[0], retries[1], retries[2]))
			t.AddRow(row...)
		}
		return []*stats.Table{t}
	}
}

// expTable1 measures achieved read rates per (transport, topology) under a
// read-heavy offered load.
func expTable1(cfg ExpConfig) []*stats.Table {
	t := stats.NewTable("Table #1: achieved read RPC rates (reads/s)",
		"topology", "offered", "udp-fixed", "udp-dyn", "tcp")
	mix := workload.ReadLookupMix()
	for _, tc := range []struct {
		topo    Topology
		offered float64
	}{
		{TopoLAN, 24},
		{TopoRing, 16},
		{TopoSlow, 4},
	} {
		row := []any{tc.topo.String(), tc.offered}
		for _, k := range []TransportKind{UDPFixed, UDPDynamic, TCP} {
			res, _ := runNhfsstone(cfg, tc.topo, k, mix, tc.offered, RigConfig{}, func(nc *workload.NhfsstoneConfig) {
				if tc.topo == TopoSlow {
					nc.NumFiles = 10 // preload over 56K is slow
					nc.Procs = 10    // saturate the link, not the generator
				}
			})
			if res == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, fmt.Sprintf("%.2f", res.ReadRate()))
		}
		t.AddRow(row...)
	}
	return []*stats.Table{t}
}

// expGraph6 compares server CPU utilization for UDP vs TCP under the read
// mix.
func expGraph6(cfg ExpConfig) []*stats.Table {
	loads := lanReadLoads
	if cfg.Quick {
		loads = quickLoads(loads)
	}
	t := stats.NewTable("Graph #6: server CPU utilization (%) vs read-mix load",
		"load", "udp", "tcp", "tcp/udp")
	for _, load := range loads {
		_, cpuUDP := runNhfsstone(cfg, TopoLAN, UDPDynamic, workload.ReadLookupMix(), load, RigConfig{}, nil)
		_, cpuTCP := runNhfsstone(cfg, TopoLAN, TCP, workload.ReadLookupMix(), load, RigConfig{}, nil)
		ratio := 0.0
		if cpuUDP > 0 {
			ratio = cpuTCP / cpuUDP
		}
		t.AddRow(load, cpuUDP*100, cpuTCP*100, fmt.Sprintf("%.2f", ratio))
	}
	return []*stats.Table{t}
}

// expGraph7 traces per-request RTT and the RTO=A+4D estimate for reads
// over the 56 Kbit/s path, where RTTs range over seconds and the estimator
// has real work to do (the paper's trace shows read peaks near 1 s).
func expGraph7(cfg ExpConfig) []*stats.Table {
	rigCfg := RigConfig{Seed: cfg.seed(), Topology: TopoSlow}
	r := NewRig(rigCfg)
	defer r.Close()
	var trace []transport.TracePoint
	var start sim.Time
	r.Env.Spawn("bench", func(p *sim.Proc) {
		ucfg := transport.DynamicUDP()
		ucfg.TraceProc = nfsproto.ProcRead
		tr := r.DialUDPConfig(ucfg)
		nh := &workload.Nhfsstone{
			Cfg: workload.NhfsstoneConfig{
				Mix:  workload.ReadLookupMix(),
				Rate: 1.5, Procs: 4,
				Duration: 4 * cfg.window(), Warmup: cfg.warmup(),
				NumFiles: 10, FileSize: 8192,
			},
			Tr:   tr,
			Root: r.Server.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			return
		}
		start = p.Now()
		nh.Run(p)
		trace = tr.Stats().Trace
	})
	r.Env.Run(cfg.warmup() + cfg.window() + 20*time.Minute)
	t := stats.NewTable("Graph #7: read RPC trace (RTT and RTO = A+4D)",
		"t(s)", "rtt(ms)", "rto(ms)")
	maxRows := 60
	if len(trace) < maxRows {
		maxRows = len(trace)
	}
	for i := 0; i < maxRows; i++ {
		tp := trace[i]
		t.AddRow(fmt.Sprintf("%.1f", float64(tp.At-start)/1e9), tp.RTT, tp.RTO)
	}
	return []*stats.Table{t}
}

// expServerCompare builds the Graphs 8-9 runner: Reno vs Ultrix server
// under the same load and transport.
func expServerCompare(mix map[uint32]float64, probe uint32) func(ExpConfig) []*stats.Table {
	return func(cfg ExpConfig) []*stats.Table {
		loads := ringLookupLoads // same magnitudes work on the LAN
		if probe == nfsproto.ProcRead {
			loads = lanReadLoads
		} else {
			loads = lanLookupLoads
		}
		if cfg.Quick {
			loads = quickLoads(loads)
		}
		t := stats.NewTable(fmt.Sprintf("Reno vs Ultrix server: avg %s RTT (ms), same LAN", nfsproto.ProcName(probe)),
			"load", "reno", "ultrix", "ultrix/reno")
		for _, load := range loads {
			// A deep subtree keeps the server buffer cache populated so
			// the linear-scan discipline has something to scan through.
			deep := func(nc *workload.NhfsstoneConfig) { nc.NumFiles = 120 }
			resR, _ := runNhfsstone(cfg, TopoLAN, UDPDynamic, mix, load, RigConfig{ServerOpts: RenoServer()}, deep)
			resU, _ := runNhfsstone(cfg, TopoLAN, UDPDynamic, mix, load, RigConfig{ServerOpts: UltrixServer()}, deep)
			if resR == nil || resU == nil {
				continue
			}
			rr := resR.RTT[probe].Mean()
			ru := resU.RTT[probe].Mean()
			ratio := 0.0
			if rr > 0 {
				ratio = ru / rr
			}
			t.AddRow(load, rr, ru, fmt.Sprintf("%.2f", ratio))
		}
		return []*stats.Table{t}
	}
}

// expProfile3 reproduces the §3 study: the server CPU profile under a
// read-heavy load, before and after the NIC-path tuning (page-remap TX and
// no TX interrupts), with the total saving.
func expProfile3(cfg ExpConfig) []*stats.Table {
	run := func(tuned bool) (map[string]sim.Time, sim.Time, []netsim.ProfileBucket) {
		rigCfg := RigConfig{
			Seed: cfg.seed(), Topology: TopoLAN,
			ServerPageRemap: tuned, ServerNoTxIntr: tuned,
		}
		r := NewRig(rigCfg)
		defer r.Close()
		var buckets []netsim.ProfileBucket
		var busy sim.Time
		r.Env.Spawn("bench", func(p *sim.Proc) {
			tr, _ := r.DialTransport(p, UDPDynamic)
			nh := &workload.Nhfsstone{
				Cfg: workload.NhfsstoneConfig{
					Mix:  workload.ReadLookupMix(),
					Rate: 16, Procs: 4,
					Duration: cfg.window(), Warmup: cfg.warmup(),
					NumFiles: 30, FileSize: 8192,
					OnMeasure: func() { r.Net.Server.ResetProfile() },
				},
				Tr:   tr,
				Root: r.Server.RootFH(),
			}
			if err := nh.Preload(p); err != nil {
				return
			}
			nh.Run(p)
			buckets = r.Net.Server.Profile()
			busy = r.Net.Server.CPU.BusyTime()
		})
		r.Env.Run(cfg.warmup() + cfg.window() + 20*time.Minute)
		m := make(map[string]sim.Time)
		for _, b := range buckets {
			m[b.Name] = b.Time
		}
		return m, busy, buckets
	}
	_, busyBefore, bucketsBefore := run(false)
	_, busyAfter, bucketsAfter := run(true)

	t1 := stats.NewTable("§3: server CPU profile before tuning (read mix)", "bucket", "ms", "% of busy")
	for _, b := range bucketsBefore {
		t1.AddRow(b.Name, b.Time, fmt.Sprintf("%.1f", 100*float64(b.Time)/float64(busyBefore)))
	}
	t2 := stats.NewTable("§3: server CPU profile after page-remap TX + no TX interrupts", "bucket", "ms", "% of busy")
	for _, b := range bucketsAfter {
		t2.AddRow(b.Name, b.Time, fmt.Sprintf("%.1f", 100*float64(b.Time)/float64(busyAfter)))
	}
	saving := 0.0
	if busyBefore > 0 {
		saving = 100 * (1 - float64(busyAfter)/float64(busyBefore))
	}
	t3 := stats.NewTable("§3: tuning summary", "metric", "value")
	t3.AddRow("CPU busy before (ms)", busyBefore)
	t3.AddRow("CPU busy after (ms)", busyAfter)
	t3.AddRow("saving (%)", fmt.Sprintf("%.1f", saving))
	t3.AddRow("paper reports", "~12%")
	return []*stats.Table{t1, t2, t3}
}

// expAblations turns the §4 tuning knobs one at a time on the 56 Kbit/s
// path with the read mix — the regime where RTT variance is large and the
// timer policy decides everything — and reports retry rates and RTTs.
func expAblations(cfg ExpConfig) []*stats.Table {
	// Two regimes: the loaded LAN (where the paper first saw A+2D's 2-4x
	// read retry rate) and the 56K path (where the timer policy decides
	// throughput).
	lan := stats.NewTable("§4 ablations: loaded LAN, read-heavy mix",
		"variant", "read RTT(ms)", "read rate/s", "read retries", "all retries")
	for _, v := range rtoVariants() {
		lan.AddRow(ablationRun(cfg, TopoLAN, v.name, v.cfg, 28, 8)...)
	}
	slow := stats.NewTable("§4 ablations: 56Kbps link, read-heavy mix",
		"variant", "read RTT(ms)", "read rate/s", "read retries", "all retries")
	for _, v := range rtoVariants() {
		slow.AddRow(ablationRun(cfg, TopoSlow, v.name, v.cfg, 1.5, 6)...)
	}
	return []*stats.Table{lan, slow}
}

// rtoVariant names one §4 transport configuration under ablation.
type rtoVariant struct {
	name string
	cfg  transport.UDPConfig
}

func rtoVariants() []rtoVariant {
	mk := func(f func(*transport.UDPConfig)) transport.UDPConfig {
		c := transport.DynamicUDP()
		f(&c)
		return c
	}
	return []rtoVariant{
		{"A+4D, per-tick recalc (paper)", transport.DynamicUDP()},
		{"A+2D for big RPCs", mk(func(c *transport.UDPConfig) { c.BigFactor = 2 })},
		{"RTO fixed at send time", mk(func(c *transport.UDPConfig) { c.RecalcAtSendOnly = true })},
		{"slow start enabled", mk(func(c *transport.UDPConfig) {
			c.SlowStart = true
			c.CwndInit = 1
		})},
		{"fixed 1s RTO (classic)", transport.FixedUDP()},
	}
}

// ablationRun executes one read-heavy Nhfsstone point and returns a table
// row: name, read RTT, read rate, read retries, total retries.
func ablationRun(cfg ExpConfig, topo Topology, name string, ucfg transport.UDPConfig, rate float64, procs int) []any {
	// The server gets a disk and a working set larger than its buffer
	// cache: read RTTs then mix cache hits with 30-100 ms disk reads, the
	// high-variance distribution whose tails the RTO factor has to cover
	// (the paper's trace data showed read peaks near 1 s for this reason).
	rigCfg := RigConfig{Seed: cfg.seed(), Topology: topo, ServerDisk: true}
	r := NewRig(rigCfg)
	defer r.Close()
	numFiles := 320
	if topo == TopoSlow {
		numFiles = 8 // preloading hundreds of files over 56K is hopeless
	}
	var res *workload.NhfsstoneResult
	var readRetries int
	r.Env.Spawn("bench", func(p *sim.Proc) {
		tr := r.DialUDPConfig(ucfg)
		nh := &workload.Nhfsstone{
			Cfg: workload.NhfsstoneConfig{
				Mix:  map[uint32]float64{nfsproto.ProcRead: 0.9, nfsproto.ProcLookup: 0.1},
				Rate: rate, Procs: procs,
				Duration: 3 * cfg.window(), Warmup: cfg.warmup(),
				NumFiles: numFiles, FileSize: 8192,
			},
			Tr:   tr,
			Root: r.Server.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			return
		}
		res = nh.Run(p)
		readRetries = tr.Stats().RetryClass[transport.ClassRead]
	})
	r.Env.Run(cfg.warmup() + 3*cfg.window() + 40*time.Minute)
	if res == nil || res.RTT[nfsproto.ProcRead] == nil {
		return []any{name, "-", "-", "-", "-"}
	}
	return []any{name, res.RTT[nfsproto.ProcRead].Mean(),
		fmt.Sprintf("%.2f", res.ReadRate()), readRetries, res.Retries}
}
