module renonfs

go 1.22
