package renonfs_test

// The bench-smoke regression gate for the shallow dispatch path: the fast
// LOOKUP must stay measurably below the generic zero-copy dispatch it
// bypasses (928 ns/op at the time the path landed — BENCH_baseline.json's
// zero_copy record; BENCH_fastpath.json holds the before/after pair). A
// fast path slower than the path it shortcuts is a regression even if every
// reply is still byte-identical, so this fails CI rather than aging quietly.

import (
	"testing"
	"time"

	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/xdr"
)

// bestOf3 times iters calls of f three times and returns the best ns/op —
// min-of-N is the standard defense against scheduler noise in a gate that
// compares two absolute timings.
func bestOf3(iters int, f func()) float64 {
	best := time.Duration(1 << 62)
	for r := 0; r < 3; r++ {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(iters)
}

func TestFastpathLookupGate(t *testing.T) {
	s, root, _ := warmServer(t)
	wire := encodeFastWire(t, 1, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: root, Name: "data"}).Encode(e)
	})
	out := make([]byte, 0, server.FastReplyMax)
	xid := uint32(1000)
	for i := 0; i < 64; i++ { // steady-state pools and name cache
		xid++
		lookupOnce(t, s, root, xid)
		fastOnce(t, s, wire, out)
	}
	const iters = 5000
	generic := bestOf3(iters, func() { xid++; lookupOnce(t, s, root, xid) })
	fast := bestOf3(iters, func() { fastOnce(t, s, wire, out) })
	t.Logf("LOOKUP dispatch: generic %.0f ns/op, fast %.0f ns/op (%.2fx)",
		generic, fast, generic/fast)
	if fast >= generic {
		t.Errorf("fast-path LOOKUP (%.0f ns/op) regressed above the generic baseline (%.0f ns/op)",
			fast, generic)
	}
}
