package renonfs_test

// The bench-smoke regression gate for the lease fast path: §5's most
// dramatic number is Create-Delete of a 100 KB file, where full
// consistency (push-on-close) pays every data block synchronously before
// close returns and the "no consistency" mount bounds the win at about
// 7x. Leases must buy most of that bound back while staying coherent —
// this gate fails CI if the leased run drops below 3x the full-consistency
// time, drifts past 2x the no-consistency bound, or starts paying write
// RPCs the no-consistency mount does not (write-behind parity is the whole
// point of the write lease).
//
// RENONFS_BENCH_LEASES=1 additionally records the ladder in
// BENCH_leases.json.

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"renonfs"
	"renonfs/internal/client"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/workload"
)

// leaseGateRow is one rung of the Create-Delete ladder.
type leaseGateRow struct {
	Name      string  `json:"name"`
	MeanMS    float64 `json:"mean_ms"`
	WriteRPCs int     `json:"write_rpcs"`
	TotalRPCs int     `json:"total_rpcs"`
	Coherent  bool    `json:"coherent"`
}

// runLeaseGateRung runs the 100 KB Create-Delete workload under one
// (server, client) pairing and reports its mean latency and RPC bill.
func runLeaseGateRung(t *testing.T, seed int64, iters int, srv server.Options, opts client.Options) leaseGateRow {
	t.Helper()
	rig := renonfs.NewRig(renonfs.RigConfig{
		Seed: seed, Topology: renonfs.TopoLAN,
		ServerOpts: srv, ServerDisk: true,
	})
	defer rig.Close()
	row := leaseGateRow{Name: opts.Name}
	ok := false
	rig.Env.Spawn("cd", func(p *sim.Proc) {
		m, err := rig.Mount(p, renonfs.UDPDynamic, opts)
		if err != nil {
			t.Errorf("%s: mount: %v", opts.Name, err)
			return
		}
		res, err := workload.RunCreateDelete(p, workload.MountFS{M: m}, opts.Name, 100*1024, iters)
		if err != nil {
			t.Errorf("%s: create-delete: %v", opts.Name, err)
			return
		}
		row.MeanMS = res.MeanMS
		row.WriteRPCs = m.Stats.RPCCount(nfsproto.ProcWrite)
		row.TotalRPCs = m.Stats.TotalCalls()
		ok = true
	})
	rig.Env.Run(4 * time.Hour)
	if !ok {
		t.Fatalf("%s: create-delete rung did not finish", opts.Name)
	}
	return row
}

func TestLeaseCreateDeleteGate(t *testing.T) {
	const iters = 8
	full := runLeaseGateRung(t, 1, iters, server.Reno(), client.Reno())
	full.Coherent = true
	leased := runLeaseGateRung(t, 2, iters, renonfs.LeaseServer(), renonfs.LeaseClient())
	leased.Coherent = true
	unsafe := runLeaseGateRung(t, 3, iters, server.Reno(), client.RenoNoConsist())

	t.Logf("Create-Delete 100KB: full %.0f ms (%d write RPCs), leased %.0f ms (%d), noconsist %.0f ms (%d)",
		full.MeanMS, full.WriteRPCs, leased.MeanMS, leased.WriteRPCs, unsafe.MeanMS, unsafe.WriteRPCs)

	if leased.MeanMS*3 > full.MeanMS {
		t.Errorf("leased Create-Delete %.0f ms is not 3x faster than full consistency's %.0f ms",
			leased.MeanMS, full.MeanMS)
	}
	if leased.MeanMS > 2*unsafe.MeanMS {
		t.Errorf("leased Create-Delete %.0f ms fell past 2x the no-consistency bound %.0f ms",
			leased.MeanMS, unsafe.MeanMS)
	}
	if leased.WriteRPCs != unsafe.WriteRPCs {
		t.Errorf("leased run paid %d write RPCs, no-consistency paid %d: write-behind parity lost",
			leased.WriteRPCs, unsafe.WriteRPCs)
	}

	if os.Getenv("RENONFS_BENCH_LEASES") == "" {
		return
	}
	out := struct {
		Bench string         `json:"bench"`
		SizeB int            `json:"size_bytes"`
		Iters int            `json:"iters"`
		Rows  []leaseGateRow `json:"rows"`
	}{
		Bench: "create_delete_100k",
		SizeB: 100 * 1024,
		Iters: iters,
		Rows:  []leaseGateRow{full, leased, unsafe},
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_leases.json", append(b, '\n'), 0644); err != nil {
		t.Fatal(err)
	}
}
