package renonfs_test

// Allocation-budget regression tests: the zero-copy buffer path (pooled
// mbufs, loaned file blocks, view-based dissection) is only worth having if
// it stays zero-copy. These tests lock in the per-call allocation counts for
// the two hot RPCs and the no-copy property of the contiguous Read-reply
// path, so a regression fails CI instead of quietly re-inflating the
// per-call garbage the paper's §3 profile complains about.

import (
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/xdr"
)

// Budgets are measured steady-state counts plus one alloc of headroom.
// For reference, the pre-pooling substrate measured 15 allocs/op for the
// LOOKUP dispatch and 17 for the 8 KB READ round trip (see
// BENCH_baseline.json), so these budgets also document the win.
const (
	lookupAllocBudget = 8
	read8KAllocBudget = 8
	// The shallow dispatch path decodes from and encodes into flat caller
	// scratch — its only steady-state allocation is the LOOKUP name string
	// (GETATTR has none). One alloc of headroom, like the budgets above.
	fastLookupAllocBudget  = 2
	fastGetattrAllocBudget = 2
)

// warmServer builds a server with one 8 KB file, runs a few calls of each
// kind to fill the mbuf pools and the dup-cache LRU to steady state, and
// returns the handles the measurement loops need.
func warmServer(t testing.TB) (s *server.Server, rootFH, fileFH nfsproto.FH) {
	fs := memfs.New(1, nil, nil)
	s = server.New(fs, server.Reno())
	f, err := fs.Create(nil, fs.Root(), "data", 0644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteAt(nil, f, 0, make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	return s, s.RootFH(), fs.FH(f)
}

// lookupOnce runs one LOOKUP build/dispatch/dissect round trip and frees the
// chains so pooled storage recycles.
func lookupOnce(t testing.TB, s *server.Server, root nfsproto.FH, xid uint32) {
	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcLookup})
	(&nfsproto.DiropArgs{Dir: root, Name: "data"}).Encode(xdr.NewEncoder(req))
	rep := s.HandleCall(nil, "alloc-peer", req)
	if rep == nil {
		t.Fatal("nil LOOKUP reply")
	}
	d := xdr.NewDecoder(rep)
	if _, err := rpc.DecodeReply(d); err != nil {
		t.Fatal(err)
	}
	res, err := nfsproto.DecodeDiropRes(d)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("LOOKUP: status %v err %v", res.Status, err)
	}
	req.Free()
	rep.Free()
}

// readOnce runs one 8 KB READ build/dispatch/dissect round trip, returning
// the payload length seen by the dissected reply.
func readOnce(t testing.TB, s *server.Server, fh nfsproto.FH, xid uint32) {
	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcRead})
	(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: 8192}).Encode(xdr.NewEncoder(req))
	rep := s.HandleCall(nil, "alloc-peer", req)
	if rep == nil {
		t.Fatal("nil READ reply")
	}
	d := xdr.NewDecoder(rep)
	if _, err := rpc.DecodeReply(d); err != nil {
		t.Fatal(err)
	}
	res, err := nfsproto.DecodeReadRes(d)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("READ: status %v err %v", res.Status, err)
	}
	if res.Data.Len() != 8192 {
		t.Fatalf("READ returned %d bytes, want 8192", res.Data.Len())
	}
	res.Data.Free()
	req.Free()
	rep.Free()
}

func TestAllocBudgetLookupDispatch(t *testing.T) {
	s, root, _ := warmServer(t)
	xid := uint32(0)
	for i := 0; i < 32; i++ { // fill pools and dup-cache before measuring
		xid++
		lookupOnce(t, s, root, xid)
	}
	got := testing.AllocsPerRun(200, func() {
		xid++
		lookupOnce(t, s, root, xid)
	})
	t.Logf("LOOKUP round trip: %.1f allocs/op (budget %d)", got, lookupAllocBudget)
	if got > lookupAllocBudget {
		t.Errorf("LOOKUP round trip allocates %.1f/op, budget is %d", got, lookupAllocBudget)
	}
}

func TestAllocBudgetRead8K(t *testing.T) {
	s, _, fh := warmServer(t)
	xid := uint32(0)
	for i := 0; i < 32; i++ {
		xid++
		readOnce(t, s, fh, xid)
	}
	got := testing.AllocsPerRun(200, func() {
		xid++
		readOnce(t, s, fh, xid)
	})
	t.Logf("8 KB READ round trip: %.1f allocs/op (budget %d)", got, read8KAllocBudget)
	if got > read8KAllocBudget {
		t.Errorf("8 KB READ round trip allocates %.1f/op, budget is %d", got, read8KAllocBudget)
	}
}

// TestAllocBudgetSpanRecording pins the stage-telemetry contract: running
// the same hot RPCs through HandleCallSpan with a live span — stamps,
// histogram recording, slow-ring offer and all — must allocate exactly what
// the span-free path allocates. The span is a per-worker value reused across
// calls (the nfsd pool's discipline); a fresh span per call would escape and
// cost an allocation each.
func TestAllocBudgetSpanRecording(t *testing.T) {
	s, root, fh := warmServer(t)
	stats := metrics.NewStageStats(s.Metrics, metrics.DefaultSlowSpans)
	var sp metrics.Span
	spannedLookup := func(xid uint32) {
		sp.Reset(time.Now())
		sp.Worker = 0
		sp.Peer = "alloc-peer"
		sp.Stamp(metrics.StageRead)
		sp.Stamp(metrics.StageQueue)
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcLookup})
		(&nfsproto.DiropArgs{Dir: root, Name: "data"}).Encode(xdr.NewEncoder(req))
		rep := s.HandleCallSpan(nil, "alloc-peer", req, &sp)
		if rep == nil {
			t.Fatal("nil LOOKUP reply")
		}
		sp.Stamp(metrics.StageEncode)
		sp.Stamp(metrics.StageSend)
		stats.Record(&sp)
		req.Free()
		rep.Free()
	}
	spannedRead := func(xid uint32) {
		sp.Reset(time.Now())
		sp.Worker = 0
		sp.Peer = "alloc-peer"
		sp.Stamp(metrics.StageRead)
		sp.Stamp(metrics.StageQueue)
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcRead})
		(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: 8192}).Encode(xdr.NewEncoder(req))
		rep := s.HandleCallSpan(nil, "alloc-peer", req, &sp)
		if rep == nil {
			t.Fatal("nil READ reply")
		}
		sp.Stamp(metrics.StageEncode)
		sp.Stamp(metrics.StageSend)
		stats.Record(&sp)
		req.Free()
		rep.Free()
	}
	xid := uint32(0)
	for i := 0; i < 32; i++ {
		xid++
		spannedLookup(xid)
		spannedRead(xid)
	}
	baseLookup := testing.AllocsPerRun(200, func() { xid++; lookupOnce(t, s, root, xid) })
	gotLookup := testing.AllocsPerRun(200, func() { xid++; spannedLookup(xid) })
	t.Logf("LOOKUP: %.1f allocs/op without span, %.1f with (budget %d)", baseLookup, gotLookup, lookupAllocBudget)
	if gotLookup > baseLookup {
		t.Errorf("span recording added %.1f allocs/op to LOOKUP (%.1f -> %.1f)", gotLookup-baseLookup, baseLookup, gotLookup)
	}
	if gotLookup > lookupAllocBudget {
		t.Errorf("spanned LOOKUP allocates %.1f/op, budget is %d", gotLookup, lookupAllocBudget)
	}
	baseRead := testing.AllocsPerRun(200, func() { xid++; readOnce(t, s, fh, xid) })
	gotRead := testing.AllocsPerRun(200, func() { xid++; spannedRead(xid) })
	t.Logf("8 KB READ: %.1f allocs/op without span, %.1f with (budget %d)", baseRead, gotRead, read8KAllocBudget)
	if gotRead > baseRead {
		t.Errorf("span recording added %.1f allocs/op to READ (%.1f -> %.1f)", gotRead-baseRead, baseRead, gotRead)
	}
	if gotRead > read8KAllocBudget {
		t.Errorf("spanned 8 KB READ allocates %.1f/op, budget is %d", gotRead, read8KAllocBudget)
	}
}

// encodeFastWire flattens one call for the shallow path's flat-byte entry.
func encodeFastWire(t testing.TB, xid, proc uint32, args func(e *xdr.Encoder)) []byte {
	t.Helper()
	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(req))
	}
	wire := append([]byte(nil), req.Bytes()...)
	req.Free()
	return wire
}

// fastOnce services one pre-encoded datagram through HandleCallFast the way
// an ingest reader would: peek, classify, service into reused scratch.
func fastOnce(t testing.TB, s *server.Server, wire, out []byte) {
	var h rpc.PeekedCall
	argOff, ok := rpc.PeekCallHeader(wire, &h)
	if !ok || !server.FastEligible(&h) {
		t.Fatal("alloc probe datagram not fast-eligible")
	}
	rep, ok := s.HandleCallFast("alloc-peer", wire, &h, argOff, out, nil)
	if !ok || len(rep) == 0 {
		t.Fatal("fast path refused the alloc probe")
	}
}

// TestAllocBudgetFastPath pins the shallow path's headline economy: a fast
// LOOKUP allocates at most its name string, a fast GETATTR nothing at all —
// against the 10 allocs/op the generic LOOKUP dispatch costs (and pins
// above). The reply scratch is reused across calls, as the reader's send
// batch arena reuses its.
func TestAllocBudgetFastPath(t *testing.T) {
	s, root, fileFH := warmServer(t)
	lookupWire := encodeFastWire(t, 1, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: root, Name: "data"}).Encode(e)
	})
	getattrWire := encodeFastWire(t, 2, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: fileFH}).Encode(e)
	})
	out := make([]byte, 0, server.FastReplyMax)
	for i := 0; i < 32; i++ { // warm the name cache to steady state
		fastOnce(t, s, lookupWire, out)
		fastOnce(t, s, getattrWire, out)
	}
	gotLookup := testing.AllocsPerRun(200, func() { fastOnce(t, s, lookupWire, out) })
	t.Logf("fast LOOKUP: %.1f allocs/op (budget %d)", gotLookup, fastLookupAllocBudget)
	if gotLookup > fastLookupAllocBudget {
		t.Errorf("fast LOOKUP allocates %.1f/op, budget is %d", gotLookup, fastLookupAllocBudget)
	}
	gotGetattr := testing.AllocsPerRun(200, func() { fastOnce(t, s, getattrWire, out) })
	t.Logf("fast GETATTR: %.1f allocs/op (budget %d)", gotGetattr, fastGetattrAllocBudget)
	if gotGetattr > fastGetattrAllocBudget {
		t.Errorf("fast GETATTR allocates %.1f/op, budget is %d", gotGetattr, fastGetattrAllocBudget)
	}
}

// TestReadReplyZeroCopy pins the headline property: serving a contiguous
// 8 KB READ moves no payload bytes on the server side. The reply loans the
// file's blocks into the chain (AppendExt) and the XDR layer reserves header
// fields in place, so mbuf.Stats.CopiedBytes must not advance across
// HandleCall. (The client-side CopyTo/Bytes of the payload still copies, as
// a real NIC DMA would; only the server path is required to be copy-free.)
func TestReadReplyZeroCopy(t *testing.T) {
	s, _, fh := warmServer(t)
	for xid := uint32(1); xid <= 4; xid++ { // warm caches outside the window
		readOnce(t, s, fh, xid)
	}

	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: 99, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcRead})
	(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: 8192}).Encode(xdr.NewEncoder(req))

	before := mbuf.Stats.CopiedBytes.Load()
	rep := s.HandleCall(nil, "zero-copy-peer", req)
	copied := mbuf.Stats.CopiedBytes.Load() - before

	if rep == nil {
		t.Fatal("nil READ reply")
	}
	if copied != 0 {
		t.Errorf("server copied %d bytes serving a contiguous 8 KB READ, want 0", copied)
	}
	d := xdr.NewDecoder(rep)
	if _, err := rpc.DecodeReply(d); err != nil {
		t.Fatal(err)
	}
	res, err := nfsproto.DecodeReadRes(d)
	if err != nil || res.Status != nfsproto.OK || res.Data.Len() != 8192 {
		t.Fatalf("READ: err %v status %v len %d", err, res.Status, res.Data.Len())
	}
	loaned := mbuf.Stats.LoanedBytes.Load()
	if loaned == 0 {
		t.Error("READ reply loaned no bytes; expected the file blocks on loan")
	}
	res.Data.Free()
	req.Free()
	rep.Free()
}
