// Command nfsstat is the reproduction's equivalent of the 4.3BSD nfsstat
// utility: it polls a running nfsd's stats endpoint and renders the
// per-procedure call counts and service-time percentiles.
//
// Usage:
//
//	nfsstat                          one cumulative snapshot and exit
//	nfsstat -i 1s                    re-render cumulative totals every second
//	nfsstat -i 1s -z                 interval deltas (the classic `nfsstat -z`
//	                                 zero-the-counters workflow, done client
//	                                 side so concurrent observers don't fight)
//	nfsstat -json                    dump the raw JSON snapshot
//
// Besides the per-procedure table it renders the parallel-dispatch view:
// the sharded UDP ingest frontend (rpc.reader.<id>.reads/.fast/.wakeups and
// the socket strategy), the shallow-dispatch and reply-coalescing counters
// (rpc.fastpath.calls/.fallbacks, rpc.send.batches/.batched_msgs — the
// batches/msgs ratio is send syscalls per reply), the lease extension's
// traffic when any were granted (lease.grants/.piggy_grants/.renewals,
// the trylater/eviction/vacate/expiry conflict counters and the live
// lease.active gauge), the nfsd worker pool
// (rpc.nfsd.busy, per-worker calls
// and busy time), the sharded duplicate-request-cache counters
// (server.dupc.*), the
// stage-level "where the microsecond goes" pipeline breakdown
// (rpc.stage.<name>.us percentiles — with -z these delta per interval,
// so a latency regression shows up in the stage where it happens), and
// any lock sites that saw contention (lock.<site>.*).
//
// The endpoint address must match nfsd's -stats flag.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"renonfs/internal/metrics"
	"renonfs/internal/stats"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:12050", "nfsd stats endpoint (host:port)")
		interval = flag.Duration("i", 0, "poll interval (0: print once and exit)")
		count    = flag.Int("n", 0, "number of polls when -i is set (0: forever)")
		zero     = flag.Bool("z", false, "show interval deltas instead of cumulative totals")
		raw      = flag.Bool("json", false, "print the raw JSON snapshot")
	)
	flag.Parse()

	var prev *metrics.Snapshot
	for n := 0; ; n++ {
		snap, err := fetch(*addr, *raw)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsstat: %v\n", err)
			os.Exit(1)
		}
		if !*raw {
			view := snap
			if *zero {
				view = snap.Delta(prev)
				prev = snap
			}
			render(view, *zero && n > 0)
		}
		if *interval <= 0 || (*count > 0 && n+1 >= *count) {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch GETs one snapshot; with raw it also echoes the body to stdout.
func fetch(addr string, raw bool) (*metrics.Snapshot, error) {
	resp, err := http.Get("http://" + addr + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("endpoint returned %s", resp.Status)
	}
	if raw {
		os.Stdout.Write(body)
		fmt.Println()
	}
	snap := &metrics.Snapshot{}
	if err := json.Unmarshal(body, snap); err != nil {
		return nil, fmt.Errorf("bad snapshot: %v", err)
	}
	return snap, nil
}

// render prints the per-procedure table (calls, errors via counters;
// latency from the service-time histograms) plus the remaining counters.
func render(snap *metrics.Snapshot, delta bool) {
	title := "nfs server per-procedure (cumulative)"
	if delta {
		title = "nfs server per-procedure (interval delta)"
	}
	tb := stats.NewTable(title, "proc", "calls", "svc mean ms", "p50", "p95", "p99", "max")
	procs := make([]string, 0, 8)
	for name := range snap.Counters {
		if p, ok := strings.CutPrefix(name, "nfs.calls."); ok {
			procs = append(procs, p)
		}
	}
	sort.Strings(procs)
	for _, p := range procs {
		calls := snap.Counters["nfs.calls."+p]
		if calls == 0 {
			continue
		}
		h := snap.Histograms["nfs.service_ms."+p]
		tb.AddRow(p, calls,
			fmt.Sprintf("%.3f", h.Mean()),
			fmt.Sprintf("%.3f", h.Quantile(50)),
			fmt.Sprintf("%.3f", h.Quantile(95)),
			fmt.Sprintf("%.3f", h.Quantile(99)),
			fmt.Sprintf("%.3f", h.Max))
	}
	fmt.Print(tb.String())
	fmt.Printf("calls %d  errors %d  dup hits %d  bytes in %d  bytes out %d\n",
		snap.Counters["nfs.calls"], snap.Counters["nfs.errors"],
		snap.Counters["nfs.dup_hits"], snap.Counters["nfs.bytes_in"],
		snap.Counters["nfs.bytes_out"])
	if msgs := snap.Counters["rpc.send.batched_msgs"]; msgs > 0 {
		fmt.Printf("fastpath %d calls  %d fallbacks  batched sends %d syscalls / %d replies (%.3f per reply)\n",
			snap.Counters["rpc.fastpath.calls"], snap.Counters["rpc.fastpath.fallbacks"],
			snap.Counters["rpc.send.batches"], msgs,
			float64(snap.Counters["rpc.send.batches"])/float64(msgs))
	}
	renderLeases(snap)
	renderStages(snap, delta)
	renderReaders(snap)
	renderWorkers(snap)
	renderLocks(snap)
	fmt.Println()
}

// stageOrder is the pipeline in wire order (matching metrics.StageNames),
// then the cross-stage aggregates.
var stageOrder = []string{"read", "queue", "decode", "dupcheck", "service", "encode", "send", "lockwait", "total"}

// renderStages prints the per-stage latency table: where inside the server
// each request's microseconds went. Under -z the histograms are interval
// deltas, so the percentiles describe just the last polling window.
func renderStages(snap *metrics.Snapshot, delta bool) {
	title := "where the microsecond goes (per-stage, µs, cumulative)"
	if delta {
		title = "where the microsecond goes (per-stage, µs, interval delta)"
	}
	tb := stats.NewTable(title, "stage", "count", "p50", "p95", "p99", "max")
	shown := false
	for _, st := range stageOrder {
		h, ok := snap.Histograms["rpc.stage."+st+".us"]
		if !ok || h.Count == 0 {
			continue
		}
		shown = true
		tb.AddRow(st, h.Count,
			fmt.Sprintf("%.1f", h.Quantile(50)),
			fmt.Sprintf("%.1f", h.Quantile(95)),
			fmt.Sprintf("%.1f", h.Quantile(99)),
			fmt.Sprintf("%.1f", h.Max))
	}
	if shown {
		fmt.Print(tb.String())
	}
}

// renderLeases prints the NQNFS lease extension's traffic when the server
// has granted any: total and piggybacked grants, renewals, the conflict
// side (trylater refusals, evictions, vacates, expiries) and the live
// table size (lease.active, refreshed by the stats endpoint per poll).
func renderLeases(snap *metrics.Snapshot) {
	grants := snap.Counters["lease.grants"]
	if grants == 0 {
		return
	}
	fmt.Printf("leases: %d grants (%d piggybacked, %d renewals)  %d trylater  %d evictions  %d vacates  %d expiries  %.0f active\n",
		grants, snap.Counters["lease.piggy_grants"], snap.Counters["lease.renewals"],
		snap.Counters["lease.trylater"], snap.Counters["lease.evictions"],
		snap.Counters["lease.vacates"], snap.Counters["lease.expiries"],
		snap.Gauges["lease.active"])
}

// renderLocks prints the lock.<site>.* contention counters, busiest first.
func renderLocks(snap *metrics.Snapshot) {
	type row struct {
		name   string
		waits  int64
		waitUS int64
	}
	rows := []row{}
	for name, v := range snap.Counters {
		if site, ok := strings.CutPrefix(name, "lock."); ok {
			if site, ok := strings.CutSuffix(site, ".contended"); ok && v > 0 {
				rows = append(rows, row{site, v, snap.Counters["lock."+site+".wait_us"]})
			}
		}
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].waitUS > rows[j].waitUS })
	tb := stats.NewTable("lock contention", "site", "waits", "wait ms")
	for _, r := range rows {
		tb.AddRow(r.name, r.waits, fmt.Sprintf("%.3f", float64(r.waitUS)/1000))
	}
	fmt.Print(tb.String())
}

// renderReaders prints the sharded UDP ingest view: one row per reader
// (rpc.reader.<id>.reads / .fast / .wakeups), showing how evenly datagrams
// spread across the frontend and how many each reader consumed inline on
// the shallow dispatch path — with SO_REUSEPORT sockets the kernel's
// 4-tuple hash does the spreading; on a shared socket the readers rotate on
// the fd read lock (and the fast path is off).
func renderReaders(snap *metrics.Snapshot) {
	ids := make([]string, 0, 8)
	for name := range snap.Counters {
		if rest, ok := strings.CutPrefix(name, "rpc.reader."); ok {
			if id, ok := strings.CutSuffix(rest, ".reads"); ok {
				ids = append(ids, id)
			}
		}
	}
	if len(ids) == 0 {
		return
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j]) // numeric order for numeric ids
		}
		return ids[i] < ids[j]
	})
	mode := "shared socket"
	if snap.Counters["rpc.reader.reuseport"] != 0 {
		mode = "SO_REUSEPORT"
	}
	tb := stats.NewTable(fmt.Sprintf("udp ingest (%d readers, %s)", len(ids), mode),
		"reader", "reads", "fast", "wakeups")
	for _, id := range ids {
		tb.AddRow("reader."+id,
			snap.Counters["rpc.reader."+id+".reads"],
			snap.Counters["rpc.reader."+id+".fast"],
			snap.Counters["rpc.reader."+id+".wakeups"])
	}
	fmt.Print(tb.String())
}

// renderWorkers prints the parallel-dispatch view: the nfsd pool's busy
// gauge and per-worker tallies (how evenly the queue spreads load), plus
// the sharded duplicate-request-cache counters.
func renderWorkers(snap *metrics.Snapshot) {
	workers := make([]string, 0, 8)
	for name := range snap.Counters {
		if rest, ok := strings.CutPrefix(name, "rpc.nfsd."); ok {
			if id, ok := strings.CutSuffix(rest, ".calls"); ok {
				workers = append(workers, id)
			}
		}
	}
	if len(workers) > 0 {
		sort.Slice(workers, func(i, j int) bool {
			if len(workers[i]) != len(workers[j]) {
				return len(workers[i]) < len(workers[j]) // numeric order for numeric ids
			}
			return workers[i] < workers[j]
		})
		tb := stats.NewTable(fmt.Sprintf("nfsd worker pool (%d workers, %.0f busy now)",
			len(workers), snap.Gauges["rpc.nfsd.busy"]),
			"nfsd", "calls", "busy ms")
		for _, id := range workers {
			tb.AddRow("nfsd."+id,
				snap.Counters["rpc.nfsd."+id+".calls"],
				fmt.Sprintf("%.1f", float64(snap.Counters["rpc.nfsd."+id+".busy_us"])/1000))
		}
		fmt.Print(tb.String())
	}
	if hits, ok := snap.Counters["server.dupc.shard_hits"]; ok {
		fmt.Printf("dupcache shards: %d hits  %d lock contentions  %d in-flight drops\n",
			hits, snap.Counters["server.dupc.contended"],
			snap.Counters["server.dupc.inflight_drops"])
	}
}
