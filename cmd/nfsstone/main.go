// Command nfsstone runs the Nhfsstone-style load generator against the
// simulated testbed, one (transport, topology, mix, rate) point per
// invocation — the raw material of the paper's Graphs 1-5.
//
// Usage:
//
//	nfsstone -topo ring -transport udp-dyn -mix read -rate 12 -duration 60s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"renonfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/workload"
)

func main() {
	var (
		topoName  = flag.String("topo", "lan", "topology: lan, ring, slow")
		trName    = flag.String("transport", "udp-dyn", "transport: udp-fixed, udp-dyn, tcp")
		mixName   = flag.String("mix", "lookup", "load mix: lookup, read, full")
		rate      = flag.Float64("rate", 20, "offered load, RPC/s")
		duration  = flag.Duration("duration", 60*time.Second, "measurement window (virtual)")
		warmup    = flag.Duration("warmup", 10*time.Second, "warmup (virtual)")
		seed      = flag.Int64("seed", 1, "random seed")
		longNames = flag.Bool("longnames", false, "use >31-char names (defeats server name cache)")
		procs     = flag.Int("procs", 4, "load-generating processes")
	)
	flag.Parse()

	topos := map[string]renonfs.Topology{"lan": renonfs.TopoLAN, "ring": renonfs.TopoRing, "slow": renonfs.TopoSlow}
	topo, ok := topos[*topoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "nfsstone: unknown topology %q\n", *topoName)
		os.Exit(1)
	}
	kinds := map[string]renonfs.TransportKind{
		"udp-fixed": renonfs.UDPFixed, "udp-dyn": renonfs.UDPDynamic, "tcp": renonfs.TCP,
	}
	kind, ok := kinds[*trName]
	if !ok {
		fmt.Fprintf(os.Stderr, "nfsstone: unknown transport %q\n", *trName)
		os.Exit(1)
	}
	var mix map[uint32]float64
	switch *mixName {
	case "lookup":
		mix = workload.DefaultLookupMix()
	case "read":
		mix = workload.ReadLookupMix()
	case "full":
		mix = workload.FullMix()
	default:
		fmt.Fprintf(os.Stderr, "nfsstone: unknown mix %q\n", *mixName)
		os.Exit(1)
	}

	r := renonfs.NewRig(renonfs.RigConfig{Seed: *seed, Topology: topo})
	defer r.Close()
	var res *workload.NhfsstoneResult
	var cpu float64
	r.Env.Spawn("nfsstone", func(p *sim.Proc) {
		tr, err := r.DialTransport(p, kind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsstone: dial: %v\n", err)
			return
		}
		nh := &workload.Nhfsstone{
			Cfg: workload.NhfsstoneConfig{
				Mix: mix, Rate: *rate, Procs: *procs,
				Duration: *duration, Warmup: *warmup,
				NumFiles: 40, FileSize: 8192, LongNames: *longNames,
				OnMeasure: func() { r.Net.Server.ResetProfile() },
			},
			Tr:   tr,
			Root: r.Server.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			fmt.Fprintf(os.Stderr, "nfsstone: preload: %v\n", err)
			return
		}
		res = nh.Run(p)
		cpu = r.Net.Server.CPU.Utilization()
	})
	r.Env.Run(*warmup + *duration + 30*time.Minute)
	if res == nil {
		fmt.Fprintln(os.Stderr, "nfsstone: run did not complete")
		os.Exit(1)
	}

	fmt.Printf("topology=%v transport=%v mix=%s offered=%.1f/s achieved=%.1f/s retries=%d failures=%d server-cpu=%.0f%%\n",
		topo, kind, *mixName, *rate, res.Achieved, res.Retries, res.Failures, cpu*100)
	t := stats.NewTable("per-procedure round trip times", "proc", "calls/s", "mean(ms)", "p95(ms)", "max(ms)")
	for proc := uint32(0); proc < nfsproto.NumProcs; proc++ {
		s := res.RTT[proc]
		if s == nil || s.Count == 0 {
			continue
		}
		t.AddRow(nfsproto.ProcName(proc), fmt.Sprintf("%.1f", res.ProcRate[proc]),
			s.Mean(), s.Percentile(95), s.Max)
	}
	fmt.Println(t.String())
}
