// Command nfsstone runs the Nhfsstone-style load generator, one
// (transport, topology, mix, rate) point per invocation — the raw material
// of the paper's Graphs 1-5.
//
// By default it drives the simulated testbed:
//
//	nfsstone -topo ring -transport udp-dyn -mix read -rate 12 -duration 60s
//
// With -server it instead drives a running cmd/nfsd over a real UDP socket
// (wall-clock time, same mix and pacing), which is the partner of the
// nfsd + nfsstat observability workflow:
//
//	nfsd &
//	nfsstone -server 127.0.0.1:12049 -rate 200 -duration 10s &
//	nfsstat -addr 127.0.0.1:12050 -i 1s -z
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"renonfs"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsnet"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/workload"
)

func main() {
	var (
		topoName  = flag.String("topo", "lan", "topology: lan, ring, slow")
		trName    = flag.String("transport", "udp-dyn", "transport: udp-fixed, udp-dyn, tcp")
		mixName   = flag.String("mix", "lookup", "load mix: lookup, read, full")
		rate      = flag.Float64("rate", 20, "offered load, RPC/s")
		duration  = flag.Duration("duration", 60*time.Second, "measurement window (virtual)")
		warmup    = flag.Duration("warmup", 10*time.Second, "warmup (virtual)")
		seed      = flag.Int64("seed", 1, "random seed")
		longNames = flag.Bool("longnames", false, "use >31-char names (defeats server name cache)")
		procs     = flag.Int("procs", 4, "load-generating processes")
		server    = flag.String("server", "", "drive a real nfsd at this UDP address instead of the simulator")
	)
	flag.Parse()

	var mix map[uint32]float64
	switch *mixName {
	case "lookup":
		mix = workload.DefaultLookupMix()
	case "read":
		mix = workload.ReadLookupMix()
	case "full":
		mix = workload.FullMix()
	default:
		fmt.Fprintf(os.Stderr, "nfsstone: unknown mix %q\n", *mixName)
		os.Exit(1)
	}

	if *server != "" {
		runReal(*server, mix, *rate, *procs, *duration, *seed)
		return
	}

	topos := map[string]renonfs.Topology{"lan": renonfs.TopoLAN, "ring": renonfs.TopoRing, "slow": renonfs.TopoSlow}
	topo, ok := topos[*topoName]
	if !ok {
		fmt.Fprintf(os.Stderr, "nfsstone: unknown topology %q\n", *topoName)
		os.Exit(1)
	}
	kinds := map[string]renonfs.TransportKind{
		"udp-fixed": renonfs.UDPFixed, "udp-dyn": renonfs.UDPDynamic, "tcp": renonfs.TCP,
	}
	kind, ok := kinds[*trName]
	if !ok {
		fmt.Fprintf(os.Stderr, "nfsstone: unknown transport %q\n", *trName)
		os.Exit(1)
	}

	r := renonfs.NewRig(renonfs.RigConfig{Seed: *seed, Topology: topo})
	defer r.Close()
	var res *workload.NhfsstoneResult
	var cpu float64
	r.Env.Spawn("nfsstone", func(p *sim.Proc) {
		tr, err := r.DialTransport(p, kind)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsstone: dial: %v\n", err)
			return
		}
		nh := &workload.Nhfsstone{
			Cfg: workload.NhfsstoneConfig{
				Mix: mix, Rate: *rate, Procs: *procs,
				Duration: *duration, Warmup: *warmup,
				NumFiles: 40, FileSize: 8192, LongNames: *longNames,
				OnMeasure: func() { r.Net.Server.ResetProfile() },
			},
			Tr:   tr,
			Root: r.Server.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			fmt.Fprintf(os.Stderr, "nfsstone: preload: %v\n", err)
			return
		}
		res = nh.Run(p)
		cpu = r.Net.Server.CPU.Utilization()
	})
	r.Env.Run(*warmup + *duration + 30*time.Minute)
	if res == nil {
		fmt.Fprintln(os.Stderr, "nfsstone: run did not complete")
		os.Exit(1)
	}

	fmt.Printf("topology=%v transport=%v mix=%s offered=%.1f/s achieved=%.1f/s retries=%d failures=%d server-cpu=%.0f%%\n",
		topo, kind, *mixName, *rate, res.Achieved, res.Retries, res.Failures, cpu*100)
	t := stats.NewTable("per-procedure round trip times", "proc", "calls/s", "mean(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	for proc := uint32(0); proc < nfsproto.NumProcs; proc++ {
		s := res.RTT[proc]
		if s == nil || s.Count == 0 {
			continue
		}
		t.AddRow(nfsproto.ProcName(proc), fmt.Sprintf("%.1f", res.ProcRate[proc]),
			s.Mean(), s.Percentile(95), res.Hist[proc].Quantile(99), s.Max)
	}
	fmt.Println(t.String())
}

// runReal drives a live nfsd over real UDP sockets: each worker gets its
// own socket (and so its own XID stream), Poisson-paces the mix, and
// records wall-clock RTTs into a shared metrics registry. The server's own
// counters are meanwhile visible to a concurrent nfsstat.
func runReal(addr string, mix map[uint32]float64, rate float64, procs int, duration time.Duration, seed int64) {
	const numFiles = 40

	// One setup connection: mount the export and preload target files.
	setup, err := nfsnet.DialUDP(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsstone: dial %s: %v\n", addr, err)
		os.Exit(1)
	}
	mnt, err := setup.Mnt("/")
	if err != nil || mnt.Status != 0 {
		fmt.Fprintf(os.Stderr, "nfsstone: mount failed: %v\n", err)
		os.Exit(1)
	}
	root := mnt.File
	scratch, err := setup.Mkdir(root, "stone", 0755)
	if err != nil || (scratch.Status != nfsproto.OK && scratch.Status != nfsproto.ErrExist) {
		fmt.Fprintf(os.Stderr, "nfsstone: mkdir scratch: %v (status %v)\n", err, scratch.Status)
		os.Exit(1)
	}
	if scratch.Status == nfsproto.ErrExist {
		res, err := setup.Lookup(root, "stone")
		if err != nil || res.Status != nfsproto.OK {
			fmt.Fprintf(os.Stderr, "nfsstone: lookup scratch: %v\n", err)
			os.Exit(1)
		}
		scratch = res
	}
	data := make([]byte, 8192)
	names := make([]string, numFiles)
	fhs := make([]nfsproto.FH, numFiles)
	for i := range names {
		names[i] = fmt.Sprintf("f%03d", i)
		res, err := setup.Create(scratch.File, names[i], 0644)
		if err != nil || res.Status != nfsproto.OK {
			fmt.Fprintf(os.Stderr, "nfsstone: preload create: %v\n", err)
			os.Exit(1)
		}
		fhs[i] = res.File
		if _, err := setup.Write(res.File, 0, data); err != nil {
			fmt.Fprintf(os.Stderr, "nfsstone: preload write: %v\n", err)
			os.Exit(1)
		}
	}
	setup.Close()

	// Deterministic mix order, cumulative weights for sampling.
	var mixProcs []uint32
	for proc := range mix {
		mixProcs = append(mixProcs, proc)
	}
	for i := 0; i < len(mixProcs); i++ {
		for j := i + 1; j < len(mixProcs); j++ {
			if mixProcs[j] < mixProcs[i] {
				mixProcs[i], mixProcs[j] = mixProcs[j], mixProcs[i]
			}
		}
	}
	var cum []float64
	acc := 0.0
	for _, proc := range mixProcs {
		acc += mix[proc]
		cum = append(cum, acc)
	}

	reg := metrics.NewRegistry()
	perProcRate := rate / float64(procs)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := nfsnet.DialUDP(addr)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nfsstone: worker dial: %v\n", err)
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for time.Since(start) < duration {
				time.Sleep(time.Duration(rng.ExpFloat64() / perProcRate * 1e9))
				proc := mixProcs[len(mixProcs)-1]
				r := rng.Float64() * acc
				for i, cw := range cum {
					if r < cw {
						proc = mixProcs[i]
						break
					}
				}
				i := rng.Intn(numFiles)
				t0 := time.Now()
				err := issueReal(c, rng, proc, root, scratch.File, names[i], fhs[i])
				if err != nil {
					reg.Counter("client.call_errors").Add(1)
					continue
				}
				name := nfsproto.ProcName(proc)
				reg.Counter("client.calls").Add(1)
				reg.Counter("client.calls." + name).Add(1)
				reg.Histogram("client.call_ms." + name).ObserveDuration(time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := reg.Snapshot()
	secs := elapsed.Seconds()
	fmt.Printf("server=%s mix-driven real run: %d calls in %.1fs (%.1f/s achieved, %.1f/s offered), %d errors\n",
		addr, snap.Counters["client.calls"], secs,
		float64(snap.Counters["client.calls"])/secs, rate,
		snap.Counters["client.call_errors"])
	t := stats.NewTable("per-procedure round trip times (wall clock)",
		"proc", "calls/s", "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	for proc := uint32(0); proc < nfsproto.NumProcs; proc++ {
		name := nfsproto.ProcName(proc)
		h, ok := snap.Histograms["client.call_ms."+name]
		if !ok || h.Count == 0 {
			continue
		}
		t.AddRow(name, fmt.Sprintf("%.1f", float64(h.Count)/secs),
			h.Mean(), h.Quantile(50), h.Quantile(95), h.Quantile(99), h.Max)
	}
	fmt.Println(t.String())
}

// issueReal performs one RPC of the given procedure against the live
// server, mapping mix entries onto the synchronous client's operations.
func issueReal(c *nfsnet.Client, rng *rand.Rand, proc uint32, root, scratch nfsproto.FH, name string, fh nfsproto.FH) error {
	// Transport errors fail the call; NFS-level statuses still count as
	// served RPCs, matching the simulator generator's accounting.
	switch proc {
	case nfsproto.ProcLookup:
		_, err := c.Lookup(scratch, name)
		return err
	case nfsproto.ProcRead:
		_, err := c.Read(fh, uint32(rng.Intn(2))*4096, 4096)
		return err
	case nfsproto.ProcWrite:
		buf := make([]byte, 4096)
		_, err := c.Write(fh, uint32(rng.Intn(2))*4096, buf)
		return err
	case nfsproto.ProcCreate:
		tmp := fmt.Sprintf("t%06d", rng.Intn(1000000))
		if res, err := c.Create(scratch, tmp, 0644); err != nil {
			return err
		} else if res.Status == nfsproto.OK {
			c.Remove(scratch, tmp)
		}
		return nil
	case nfsproto.ProcRemove:
		tmp := fmt.Sprintf("t%06d", rng.Intn(1000000))
		if _, err := c.Create(scratch, tmp, 0644); err != nil {
			return err
		}
		_, err := c.Remove(scratch, tmp)
		return err
	case nfsproto.ProcReaddir:
		_, err := c.Readdir(scratch, 0, 4096)
		return err
	case nfsproto.ProcNull:
		_, err := c.Call(nfsproto.ProcNull, nil)
		return err
	default:
		// Getattr stands in for attribute-class procedures the synchronous
		// client has no dedicated helper for (setattr, statfs, readlink...).
		_, err := c.Getattr(fh)
		return err
	}
}
