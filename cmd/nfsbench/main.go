// Command nfsbench regenerates the tables and figures of Macklem's USENIX
// 1991 NFS tuning paper on the simulated testbed.
//
// Usage:
//
//	nfsbench -list
//	nfsbench -exp graph1            # one experiment
//	nfsbench -exp all               # everything, paper order
//	nfsbench -exp table5 -quick     # scaled-down run
//
// Output is plain text, one table per experiment, in the same shape as the
// paper's tables/graph data. EXPERIMENTS.md records how each compares to
// the published numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"renonfs"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick = flag.Bool("quick", false, "scaled-down durations and point counts")
		seed  = flag.Int64("seed", 1991, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range renonfs.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := renonfs.ExpConfig{Quick: *quick, Seed: *seed}
	run := func(e renonfs.Experiment) {
		start := time.Now()
		fmt.Printf("== %s: %s\n\n", e.ID, e.Title)
		for _, tb := range e.Run(cfg) {
			fmt.Println(tb.String())
		}
		fmt.Printf("(%s in %.1fs wall)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range renonfs.Experiments() {
			run(e)
		}
		return
	}
	for _, e := range renonfs.Experiments() {
		if e.ID == *exp {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "nfsbench: unknown experiment %q (try -list)\n", *exp)
	os.Exit(1)
}
