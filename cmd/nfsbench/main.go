// Command nfsbench regenerates the tables and figures of Macklem's USENIX
// 1991 NFS tuning paper on the simulated testbed.
//
// Usage:
//
//	nfsbench -list
//	nfsbench -exp graph1            # one experiment
//	nfsbench -exp all               # everything, paper order
//	nfsbench -exp table5 -quick     # scaled-down run
//	nfsbench -exp graph1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	nfsbench -clients 4 -mutexprofile mutex.pprof -blockprofile block.pprof
//	nfsbench -clients 4             # real-socket load: 4 concurrent clients
//	nfsbench -scaling               # 1/2/4/8-client curve -> BENCH_scaling.json
//
// Output is plain text, one table per experiment, in the same shape as the
// paper's tables/graph data. EXPERIMENTS.md records how each compares to
// the published numbers. The -cpuprofile/-memprofile flags write pprof
// profiles of the run (`make profile` wraps this), so perf work starts from
// a profile the way the paper's did.
//
// -clients and -scaling leave the simulator entirely: they drive the
// real-socket frontend (internal/nfsnet) with concurrent UDP clients to
// measure how the parallel nfsd worker pool scales with offered
// concurrency. -scaling sweeps GOMAXPROCS 1/2/4/8 × 1/2/4/8 clients and
// records the curves — with per-stage p99 breakdowns — in
// BENCH_scaling.json (`make scaling` wraps this). -trace FILE dumps the
// slowest spans of the last point as Chrome trace JSON, and
// -mutexprofile/-blockprofile enable the Go runtime's contention profilers
// (the lock-serialization view `make profile` starts from).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"renonfs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick      = flag.Bool("quick", false, "scaled-down durations and point counts")
		seed       = flag.Int64("seed", 1991, "random seed")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		clients    = flag.Int("clients", 0, "real-socket mode: this many concurrent clients (0: simulated experiments)")
		scaling    = flag.Bool("scaling", false, "real-socket mode: 1/2/4/8-client scaling curve")
		nfsds      = flag.Int("nfsds", 8, "size of the nfsd worker pool in the real-socket modes")
		readers    = flag.Int("readers", 0, "sharded UDP ingest readers in -clients mode (0 = one per GOMAXPROCS; -scaling sweeps 1 and GOMAXPROCS itself)")
		dur        = flag.Duration("dur", 2*time.Second, "per-point measurement duration in the real-socket modes")
		scalingOut = flag.String("scaling-out", "BENCH_scaling.json", "where -scaling writes its JSON curve (empty: don't write)")
		tracePath  = flag.String("trace", "", "write the slowest spans as Chrome trace JSON to this file (socket modes)")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockProf  = flag.String("blockprofile", "", "write a blocking profile to this file on exit")
	)
	flag.Parse()

	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProf)
	}

	if *scaling {
		runScaling(*nfsds, *dur, *scalingOut, *tracePath)
		return
	}
	if *clients > 0 {
		runClients(*clients, *nfsds, *readers, *dur, *tracePath)
		return
	}

	if *list {
		for _, e := range renonfs.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	cfg := renonfs.ExpConfig{Quick: *quick, Seed: *seed}
	run := func(e renonfs.Experiment) {
		start := time.Now()
		fmt.Printf("== %s: %s\n\n", e.ID, e.Title)
		for _, tb := range e.Run(cfg) {
			fmt.Println(tb.String())
		}
		fmt.Printf("(%s in %.1fs wall)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range renonfs.Experiments() {
			run(e)
		}
		return
	}
	for _, e := range renonfs.Experiments() {
		if e.ID == *exp {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "nfsbench: unknown experiment %q (try -list)\n", *exp)
	os.Exit(1)
}

// writeProfile dumps a named runtime profile (mutex, block).
func writeProfile(kind, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -%sprofile: %v\n", kind, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(kind).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -%sprofile: %v\n", kind, err)
	}
}

// writeMemProfile dumps an up-to-date heap/allocation profile, if requested.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final allocation state
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -memprofile: %v\n", err)
	}
}
