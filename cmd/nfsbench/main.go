// Command nfsbench regenerates the tables and figures of Macklem's USENIX
// 1991 NFS tuning paper on the simulated testbed.
//
// Usage:
//
//	nfsbench -list
//	nfsbench -exp graph1            # one experiment
//	nfsbench -exp all               # everything, paper order
//	nfsbench -exp table5 -quick     # scaled-down run
//	nfsbench -exp graph1 -cpuprofile cpu.pprof -memprofile mem.pprof
//	nfsbench -clients 4 -mutexprofile mutex.pprof -blockprofile block.pprof
//	nfsbench -clients 4             # real-socket load: 4 concurrent clients
//	nfsbench -scaling               # 1/2/4/8-client curve -> BENCH_scaling.json
//	nfsbench -fleet                 # open-loop 10k-client rig -> BENCH_fleet.json
//	nfsbench -fleet -fleet-real -fleet-clients 1000   # same, over real sockets
//
// Output is plain text, one table per experiment, in the same shape as the
// paper's tables/graph data. EXPERIMENTS.md records how each compares to
// the published numbers. The -cpuprofile/-memprofile flags write pprof
// profiles of the run (`make profile` wraps this), so perf work starts from
// a profile the way the paper's did.
//
// -clients and -scaling leave the simulator entirely: they drive the
// real-socket frontend (internal/nfsnet) with concurrent UDP clients to
// measure how the parallel nfsd worker pool scales with offered
// concurrency. -scaling sweeps GOMAXPROCS 1/2/4/8 × 1/2/4/8 clients and
// records the curves — with per-stage p99 breakdowns — in
// BENCH_scaling.json (`make scaling` wraps this). Each point runs -warmup
// of unmeasured traffic first; ops/s and the stage percentiles cover only
// the measurement window. -trace FILE dumps the slowest spans of the last
// point as Chrome trace JSON, and -mutexprofile/-blockprofile enable the
// Go runtime's contention profilers (the lock-serialization view
// `make profile` starts from).
//
// -fleet is the open-loop load rig (internal/fleet, DESIGN.md §10): it
// sweeps -fleet-rps to produce the latency-vs-offered-load curve, replays
// the -fleet-scenarios hostile scripts under the strict exactly-once
// auditor, and records everything in BENCH_fleet.json (`make fleet`;
// `make fleet-smoke` is the CI-sized run). Scenario audit violations exit
// nonzero; SLO misses on curve points are reported but don't fail the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"renonfs"
	"renonfs/internal/fleet"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		quick      = flag.Bool("quick", false, "scaled-down durations and point counts")
		seed       = flag.Int64("seed", 1991, "random seed")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		clients    = flag.Int("clients", 0, "real-socket mode: this many concurrent clients (0: simulated experiments)")
		scaling    = flag.Bool("scaling", false, "real-socket mode: 1/2/4/8-client scaling curve")
		nfsds      = flag.Int("nfsds", 8, "size of the nfsd worker pool in the real-socket modes")
		fastpath   = flag.String("fastpath", "on", "shallow dispatch path in the real-socket modes: on or off (the escape hatch, and the 'before' leg of fast-path comparisons)")
		readers    = flag.Int("readers", 0, "sharded UDP ingest readers in -clients mode (0 = one per GOMAXPROCS; -scaling sweeps 1 and GOMAXPROCS itself)")
		dur        = flag.Duration("dur", 2*time.Second, "per-point measurement duration in the real-socket and fleet modes")
		warmup     = flag.Duration("warmup", 500*time.Millisecond, "per-point warmup excluded from ops/s and percentiles (real-socket and fleet modes)")
		scalingOut = flag.String("scaling-out", "BENCH_scaling.json", "where -scaling writes its JSON curve (empty: don't write)")
		tracePath  = flag.String("trace", "", "write the slowest spans as Chrome trace JSON to this file (socket modes)")
		mutexProf  = flag.String("mutexprofile", "", "write a mutex contention profile to this file on exit")
		blockProf  = flag.String("blockprofile", "", "write a blocking profile to this file on exit")

		fleetMode      = flag.Bool("fleet", false, "open-loop fleet mode: latency-vs-offered-load curve plus hostile scenarios")
		fleetClients   = flag.Int("fleet-clients", 10000, "simulated mounts in -fleet mode")
		fleetShards    = flag.Int("fleet-shards", 16, "sockets/timing wheels the fleet is split across")
		fleetRPS       = flag.String("fleet-rps", "150,250,350,500,750,1000,2000", "comma list of offered aggregate RPS (the load curve's x axis)")
		fleetScenarios = flag.String("fleet-scenarios", "flashcrowd,remountherd,retransmitstorm", "comma list of hostile scenario scripts (empty: curve only)")
		fleetReal      = flag.Bool("fleet-real", false, "drive real UDP sockets (internal/nfsnet) instead of the simulator")
		fleetStrict    = flag.Bool("fleet-strict", true, "strict exactly-once audit; violations exit 1")
		fleetTimeout   = flag.Duration("fleet-timeout", time.Second, "pending-call expiry in -fleet mode")
		fleetSLO       = flag.String("fleet-slo", "", "SLO spec, e.g. p50=5ms,p99=50ms,p999=250ms,timeouts=0.01 (empty: knee-finding defaults)")
		fleetOut       = flag.String("fleet-out", "BENCH_fleet.json", "where -fleet writes its JSON report (empty: don't write)")
	)
	flag.Parse()

	fatalf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "nfsbench: "+format+"\n", args...)
		os.Exit(2)
	}
	// Mode flags are mutually exclusive, and shared knobs must be sane, so a
	// typo'd invocation dies with a message instead of measuring the wrong
	// thing.
	modes := 0
	for _, on := range []bool{*fleetMode, *scaling, *clients > 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		fatalf("-fleet, -scaling and -clients are mutually exclusive (pick one mode)")
	}
	if *clients < 0 {
		fatalf("-clients %d: must be >= 0", *clients)
	}
	if *readers < 0 {
		fatalf("-readers %d: must be >= 0", *readers)
	}
	if *nfsds <= 0 {
		fatalf("-nfsds %d: must be > 0", *nfsds)
	}
	if *dur <= 0 {
		fatalf("-dur %v: must be > 0", *dur)
	}
	if *warmup < 0 {
		fatalf("-warmup %v: must be >= 0", *warmup)
	}
	if *fastpath != "on" && *fastpath != "off" {
		fatalf("-fastpath %q: must be on or off", *fastpath)
	}
	noFast := *fastpath == "off"

	if *mutexProf != "" {
		runtime.SetMutexProfileFraction(1)
		defer writeProfile("mutex", *mutexProf)
	}
	if *blockProf != "" {
		runtime.SetBlockProfileRate(1)
		defer writeProfile("block", *blockProf)
	}

	if *fleetMode {
		if *fleetClients <= 0 {
			fatalf("-fleet-clients %d: must be > 0", *fleetClients)
		}
		if *fleetShards <= 0 {
			fatalf("-fleet-shards %d: must be > 0", *fleetShards)
		}
		if *fleetTimeout <= 0 {
			fatalf("-fleet-timeout %v: must be > 0", *fleetTimeout)
		}
		rates, err := parseFleetRPS(*fleetRPS)
		if err != nil {
			fatalf("%v", err)
		}
		kinds, err := parseFleetScenarios(*fleetScenarios)
		if err != nil {
			fatalf("%v", err)
		}
		slo, err := fleet.ParseSLO(*fleetSLO)
		if err != nil {
			fatalf("-fleet-slo: %v", err)
		}
		ok := runFleet(fleetOpts{
			clients: *fleetClients, shards: *fleetShards,
			rps: rates, scenarios: kinds,
			real: *fleetReal, strict: *fleetStrict, seed: *seed, noFastPath: noFast,
			warmup: *warmup, horizon: *dur, timeout: *fleetTimeout,
			slo: slo, sloSpec: *fleetSLO, out: *fleetOut,
		})
		if !ok {
			os.Exit(1)
		}
		return
	}
	if *scaling {
		runScaling(*nfsds, noFast, *warmup, *dur, *scalingOut, *tracePath)
		return
	}
	if *clients > 0 {
		runClients(*clients, *nfsds, *readers, noFast, *warmup, *dur, *tracePath)
		return
	}

	if *list {
		for _, e := range renonfs.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	defer writeMemProfile(*memprofile)

	cfg := renonfs.ExpConfig{Quick: *quick, Seed: *seed}
	run := func(e renonfs.Experiment) {
		start := time.Now()
		fmt.Printf("== %s: %s\n\n", e.ID, e.Title)
		for _, tb := range e.Run(cfg) {
			fmt.Println(tb.String())
		}
		fmt.Printf("(%s in %.1fs wall)\n\n", e.ID, time.Since(start).Seconds())
	}

	if *exp == "all" {
		for _, e := range renonfs.Experiments() {
			run(e)
		}
		return
	}
	for _, e := range renonfs.Experiments() {
		if e.ID == *exp {
			run(e)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "nfsbench: unknown experiment %q (try -list)\n", *exp)
	os.Exit(1)
}

// writeProfile dumps a named runtime profile (mutex, block).
func writeProfile(kind, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -%sprofile: %v\n", kind, err)
		return
	}
	defer f.Close()
	if err := pprof.Lookup(kind).WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -%sprofile: %v\n", kind, err)
	}
}

// writeMemProfile dumps an up-to-date heap/allocation profile, if requested.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -memprofile: %v\n", err)
		return
	}
	defer f.Close()
	runtime.GC() // materialize the final allocation state
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -memprofile: %v\n", err)
	}
}
