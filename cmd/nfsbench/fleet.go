package main

// The -fleet mode: the open-loop 10k-client rig (internal/fleet). One run
// sweeps the offered-RPS list against a steady scenario to produce the
// latency-vs-offered-load curve, then replays each requested hostile
// scenario (flash crowd, remount herd, retransmit storm, ...) at the
// first RPS of the list under the strict exactly-once auditor. Everything
// — curve points, scenario fingerprints, SLO verdicts, audit outcomes —
// is printed as a table and recorded in BENCH_fleet.json (`make fleet`
// wraps this; `make fleet-smoke` is the CI-sized run).
//
// SLO failures are reported per point but do not fail the run (the curve
// is supposed to find the knee, which means driving points past it);
// auditor violations in a scenario run do, because those are correctness
// bugs, not saturation.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"renonfs/internal/fleet"
)

// fleetOpts carries the parsed -fleet* flags.
type fleetOpts struct {
	clients    int
	shards     int
	rps        []float64
	scenarios  []fleet.Kind
	real       bool
	strict     bool
	noFastPath bool
	seed       int64
	warmup     time.Duration
	horizon    time.Duration
	timeout    time.Duration
	slo        fleet.SLO
	sloSpec    string
	out        string
}

// fleetPoint is one row of the latency-vs-offered-load curve.
type fleetPoint struct {
	OfferedRPS  float64  `json:"offered_rps"`
	AchievedRPS float64  `json:"achieved_rps"`
	GoodputRPS  float64  `json:"goodput_rps"`
	P50MS       float64  `json:"p50_ms"`
	P99MS       float64  `json:"p99_ms"`
	P999MS      float64  `json:"p999_ms"`
	WSent       int64    `json:"window_sent"`
	WReplies    int64    `json:"window_replies"`
	WTimeouts   int64    `json:"window_timeouts"`
	TimeoutFrac float64  `json:"timeout_frac"`
	SLOFails    []string `json:"slo_fails,omitempty"`
}

// fleetScenario is one hostile-script verdict.
type fleetScenario struct {
	Kind         string   `json:"kind"`
	Schedule     string   `json:"schedule"`
	ScheduleFP   string   `json:"schedule_fp"`
	ResultFP     string   `json:"result_fp"`
	Sent         int64    `json:"sent"`
	Replies      int64    `json:"replies"`
	Timeouts     int64    `json:"timeouts"`
	Late         int64    `json:"late"`
	Mounts       int64    `json:"mounts"`
	Retransmits  int      `json:"retransmits"`
	DupCacheHits int      `json:"dupcache_hits"`
	Violations   int      `json:"violations"`
	ViolationSam []string `json:"violation_samples,omitempty"`
	SLOFails     []string `json:"slo_fails,omitempty"`
}

// fleetReport is the BENCH_fleet.json document.
type fleetReport struct {
	Engine    string          `json:"engine"` // "sim" or "sock"
	Clients   int             `json:"clients"`
	Shards    int             `json:"shards"`
	Seed      int64           `json:"seed"`
	WarmupS   float64         `json:"warmup_s"`
	HorizonS  float64         `json:"horizon_s"`
	SLO       string          `json:"slo"`
	Curve     []fleetPoint    `json:"curve"`
	Scenarios []fleetScenario `json:"scenarios"`
}

// parseFleetRPS parses the -fleet-rps comma list into positive rates.
func parseFleetRPS(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("-fleet-rps: %q is not a positive rate", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-fleet-rps: no rates given")
	}
	return out, nil
}

// parseFleetScenarios parses the -fleet-scenarios comma list.
func parseFleetScenarios(s string) ([]fleet.Kind, error) {
	var out []fleet.Kind
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, err := fleet.ParseKind(part)
		if err != nil {
			return nil, fmt.Errorf("-fleet-scenarios: %w", err)
		}
		out = append(out, k)
	}
	return out, nil
}

// runFleet serves the -fleet mode. Returns false if any scenario violated
// the exactly-once audit (main turns that into exit 1).
func runFleet(o fleetOpts) bool {
	engine := "sim"
	run := fleet.RunSim
	if o.real {
		engine = "sock"
		run = fleet.RunSock
	}
	rep := fleetReport{Engine: engine, Clients: o.clients, Shards: o.shards,
		Seed: o.seed, WarmupS: o.warmup.Seconds(), HorizonS: o.horizon.Seconds(),
		SLO: o.sloSpec}
	base := fleet.Config{
		Seed: o.seed, Clients: o.clients, Shards: o.shards,
		Warmup: o.warmup, Horizon: o.horizon, Timeout: o.timeout,
		Readers: 0, Strict: o.strict, NoFastPath: o.noFastPath,
	}

	fmt.Printf("== fleet: open-loop latency vs offered load (%s engine, %d clients, %d shards, %v horizon)\n\n",
		engine, o.clients, o.shards, o.horizon)
	fmt.Printf("  %9s %9s %9s %9s %9s %9s %8s  %s\n",
		"offered", "achieved", "goodput", "p50ms", "p99ms", "p999ms", "timeout%", "slo")
	for _, rps := range o.rps {
		cfg := base
		cfg.OfferedRPS = rps
		r, err := run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -fleet (%g rps): %v\n", rps, err)
			os.Exit(1)
		}
		fails := o.slo.Check(r)
		verdict := "ok"
		if len(fails) > 0 {
			verdict = strings.Join(fails, "; ")
		}
		fmt.Printf("  %9.0f %9.0f %9.0f %9.2f %9.2f %9.2f %8.2f  %s\n",
			r.Offered, r.AchievedRPS, r.GoodputRPS, r.P50, r.P99, r.P999,
			100*r.TimeoutFrac(), verdict)
		rep.Curve = append(rep.Curve, fleetPoint{
			OfferedRPS: r.Offered, AchievedRPS: r.AchievedRPS, GoodputRPS: r.GoodputRPS,
			P50MS: r.P50, P99MS: r.P99, P999MS: r.P999,
			WSent: r.WSent, WReplies: r.WReplies, WTimeouts: r.WTimeouts,
			TimeoutFrac: r.TimeoutFrac(), SLOFails: fails,
		})
	}

	clean := true
	if len(o.scenarios) > 0 {
		scenarioRPS := o.rps[0]
		fmt.Printf("\n== fleet scenarios (seed %d, %g rps, strict=%v)\n\n", o.seed, scenarioRPS, o.strict)
		for _, kind := range o.scenarios {
			sc := fleet.GenerateScenario(kind, o.seed, o.horizon)
			cfg := base
			cfg.OfferedRPS = scenarioRPS
			cfg.Scenario = sc
			r, err := run(cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "nfsbench: -fleet scenario %s: %v\n", kind, err)
				os.Exit(1)
			}
			fails := o.slo.Check(r)
			verdict := "audit clean"
			if n := len(r.Violations); n > 0 {
				verdict = fmt.Sprintf("AUDIT FAILED (%d violations; first: %v)", n, r.Violations[0])
				clean = false
			}
			fmt.Printf("  %-16s sched=%s run=%s sent=%d replies=%d timeouts=%d late=%d mounts=%d  %s\n",
				kind, sc.Fingerprint(), r.Fingerprint(), r.Sent, r.Replies, r.Timeouts,
				r.Late, r.Mounts, verdict)
			if len(fails) > 0 {
				fmt.Printf("  %-16s slo: %s\n", "", strings.Join(fails, "; "))
			}
			fs := fleetScenario{
				Kind: kind.String(), Schedule: sc.String(),
				ScheduleFP: sc.Fingerprint(), ResultFP: r.Fingerprint(),
				Sent: r.Sent, Replies: r.Replies, Timeouts: r.Timeouts,
				Late: r.Late, Mounts: r.Mounts,
				Retransmits:  r.AuditCounts["event.retransmit"],
				DupCacheHits: r.AuditCounts["event.dup_hit"],
				Violations:   len(r.Violations), SLOFails: fails,
			}
			for i, v := range r.Violations {
				if i == 4 {
					break
				}
				fs.ViolationSam = append(fs.ViolationSam, v.String())
			}
			rep.Scenarios = append(rep.Scenarios, fs)
		}
	}

	if o.out != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -fleet: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(o.out, append(data, '\n'), 0644); err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -fleet: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", o.out)
	}
	return clean
}
