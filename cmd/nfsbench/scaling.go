package main

// The -clients/-scaling modes: real-socket multiclient load against the
// parallel nfsd pool (internal/nfsnet), as opposed to the simulated
// experiments. One point measures N concurrent UDP clients hammering
// READ(8K)+LOOKUP; the curve sweeps GOMAXPROCS 1/2/4/8 × 1/2/4/8 clients —
// each GOMAXPROCS setting measured with one ingest reader (the legacy
// single-socket baseline) and again with readers=GOMAXPROCS (the sharded
// frontend) — and writes BENCH_scaling.json with the per-stage p99
// breakdown for every point, so a flat curve names the stage that refuses
// to scale — the record `make scaling` and CI compare against.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsnet"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
)

// scalingPoint is one row of the curve: throughput plus where the p99
// microsecond went at that concurrency.
type scalingPoint struct {
	Clients int     `json:"clients"`
	OpsPerS float64 `json:"ops_per_s"`
	Speedup float64 `json:"speedup"` // vs the 1-client point at the same GOMAXPROCS
	// StageP99US breaks the tail down by pipeline stage (µs).
	StageP99US map[string]float64 `json:"stage_p99_us"`
	// LockWaitP99US is the p99 of per-request lock wait (µs; 0 when no
	// request ever blocked on an instrumented lock).
	LockWaitP99US float64 `json:"lockwait_p99_us"`
}

// scalingRun is the curve at one GOMAXPROCS × readers setting. Readers is
// the size of the sharded UDP ingest frontend: 1 is the legacy
// single-reader baseline, GOMAXPROCS is the sharded configuration.
type scalingRun struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Readers    int            `json:"readers"`
	Points     []scalingPoint `json:"points"`
}

// scalingReport is the BENCH_scaling.json document. NumCPU records the
// machine the curve came from: on a single-core host every GOMAXPROCS
// setting shares one core and the runs cannot diverge, which the consumer
// (CI's multicore gate) must account for.
type scalingReport struct {
	NFSDs     int          `json:"nfsds"`
	NumCPU    int          `json:"num_cpu"`
	DurationS float64      `json:"duration_s"`
	Runs      []scalingRun `json:"runs"`
}

// pointResult carries one measured point plus its telemetry.
type pointResult struct {
	opsPerS  float64
	stageP99 map[string]float64
	lockP99  float64
	spans    []metrics.Span
}

// measureClients runs one point: n concurrent UDP clients against a fresh
// real-socket server with the given ingest reader count, each looping
// READ(8K)+LOOKUP for warmup+dur. Only the final dur is measured: ops
// completed during warmup are not counted toward ops/s, and the stage
// histograms are reported as the delta over the measurement window, so
// cold caches and socket setup never pollute the curve.
func measureClients(n, nfsds, readers int, noFast bool, warmup, dur time.Duration) (*pointResult, error) {
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = nfsds
	opts.Readers = readers
	opts.NoFastPath = noFast
	srv := server.New(fs, opts)
	s, err := nfsnet.Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer s.Close()
	root := srv.RootFH()

	setup, err := nfsnet.DialUDP(s.UDPAddr())
	if err != nil {
		return nil, err
	}
	cr, err := setup.Create(root, "bench.dat", 0644)
	if err != nil || cr.Status != nfsproto.OK {
		setup.Close()
		return nil, fmt.Errorf("create bench.dat: %v (res %+v)", err, cr)
	}
	if _, err := setup.Write(cr.File, 0, make([]byte, nfsproto.MaxData)); err != nil {
		setup.Close()
		return nil, err
	}
	setup.Close()

	var ops atomic.Int64
	errc := make(chan error, n)
	var wg sync.WaitGroup
	measStart := time.Now().Add(warmup)
	stop := measStart.Add(dur)
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := nfsnet.DialUDP(s.UDPAddr())
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for {
				now := time.Now()
				if !now.Before(stop) {
					return
				}
				if _, err := cl.Read(cr.File, 0, nfsproto.MaxData); err != nil {
					errc <- fmt.Errorf("read: %w", err)
					return
				}
				if _, err := cl.Lookup(root, "bench.dat"); err != nil {
					errc <- fmt.Errorf("lookup: %w", err)
					return
				}
				// Warmup ops run but are never counted.
				if now.After(measStart) {
					ops.Add(2)
				}
			}
		}()
	}
	// Baseline snapshot at the start of the measurement window; the stage
	// percentiles below come from the delta, not the whole run.
	if d := time.Until(measStart); d > 0 {
		time.Sleep(d)
	}
	baseline := srv.Metrics.Snapshot()
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}
	res := &pointResult{
		opsPerS:  float64(ops.Load()) / dur.Seconds(),
		stageP99: map[string]float64{},
		spans:    s.Stages().Ring().Slowest(),
	}
	snap := srv.Metrics.Snapshot().Delta(baseline)
	names := metrics.StageNames()
	for _, st := range append(names[:], "total") {
		if h, ok := snap.Histograms["rpc.stage."+st+".us"]; ok && h.Count > 0 {
			res.stageP99[st] = h.Quantile(99)
		}
	}
	if h, ok := snap.Histograms["rpc.stage.lockwait.us"]; ok && h.Count > 0 {
		res.lockP99 = h.Quantile(99)
	}
	return res, nil
}

// runClients serves the -clients N mode: one point, printed with its stage
// breakdown; with tracePath the slowest spans dump as Chrome trace JSON.
func runClients(n, nfsds, readers int, noFast bool, warmup, dur time.Duration, tracePath string) {
	res, err := measureClients(n, nfsds, readers, noFast, warmup, dur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -clients: %v\n", err)
		os.Exit(1)
	}
	rdesc := fmt.Sprintf("%d reader(s)", readers)
	if readers == 0 {
		rdesc = fmt.Sprintf("%d reader(s) [GOMAXPROCS]", runtime.GOMAXPROCS(0))
	}
	if noFast {
		rdesc += ", fastpath off"
	}
	fmt.Printf("%d client(s) x %v (+%v warmup) against %d nfsds, %s: %.0f ops/s (READ 8K + LOOKUP)\n",
		n, dur, warmup, nfsds, rdesc, res.opsPerS)
	printStageP99(res)
	writeTrace(tracePath, res.spans)
}

// printStageP99 renders one point's stage breakdown as a single line.
func printStageP99(res *pointResult) {
	fmt.Printf("  p99 by stage (µs):")
	names := metrics.StageNames()
	for _, st := range append(names[:], "total") {
		if v, ok := res.stageP99[st]; ok {
			fmt.Printf(" %s=%.0f", st, v)
		}
	}
	if res.lockP99 > 0 {
		fmt.Printf(" lockwait=%.0f", res.lockP99)
	}
	fmt.Println()
}

// writeTrace dumps spans as Chrome trace-event JSON (no-op for empty path).
func writeTrace(path string, spans []metrics.Span) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := metrics.WriteChromeTrace(f, spans, nfsproto.ProcName); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -trace: %v\n", err)
		return
	}
	fmt.Printf("wrote %s (%d spans; open at chrome://tracing)\n", path, len(spans))
}

// runScaling serves the -scaling mode: GOMAXPROCS 1/2/4/8 × 1/2/4/8
// clients, printed and written to out as JSON. GOMAXPROCS settings beyond
// the machine's cores still run (the OS just time-slices) so the record is
// comparable across hosts, but the report carries NumCPU so consumers know
// whether parallel speedup was physically possible.
func runScaling(nfsds int, noFast bool, warmup, dur time.Duration, out, tracePath string) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	ncpu := runtime.NumCPU()
	fmt.Printf("== scaling: real-socket throughput vs clients x GOMAXPROCS (%d nfsds, %d CPUs)\n\n",
		nfsds, ncpu)
	if ncpu < 4 {
		fmt.Printf("  note: only %d CPU(s) — GOMAXPROCS settings above that share cores,\n", ncpu)
		fmt.Printf("  so the curves below measure dispatch overhead, not parallel speedup\n\n")
	}
	rep := scalingReport{NFSDs: nfsds, NumCPU: ncpu, DurationS: dur.Seconds()}
	var lastSpans []metrics.Span
	for _, procs := range []int{1, 2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		// Each GOMAXPROCS setting is measured twice: with a single ingest
		// reader (the pre-sharding baseline, so the record still shows the
		// single-socket ceiling) and with readers=procs (the sharded
		// frontend). At procs=1 the two configurations are identical, so
		// only one run is recorded.
		readerConfigs := []int{1, procs}
		if procs == 1 {
			readerConfigs = readerConfigs[:1]
		}
		for _, readers := range readerConfigs {
			fmt.Printf("  GOMAXPROCS=%d readers=%d\n", procs, readers)
			run := scalingRun{GOMAXPROCS: procs, Readers: readers}
			var base float64
			for _, n := range []int{1, 2, 4, 8} {
				res, err := measureClients(n, nfsds, readers, noFast, warmup, dur)
				if err != nil {
					fmt.Fprintf(os.Stderr, "nfsbench: -scaling (%d procs, %d readers, %d clients): %v\n",
						procs, readers, n, err)
					os.Exit(1)
				}
				if n == 1 {
					base = res.opsPerS
				}
				speedup := 0.0
				if base > 0 {
					speedup = res.opsPerS / base
				}
				fmt.Printf("    %d clients: %8.0f ops/s  (%.2fx)\n", n, res.opsPerS, speedup)
				printStageP99(res)
				run.Points = append(run.Points, scalingPoint{
					Clients: n, OpsPerS: res.opsPerS, Speedup: speedup,
					StageP99US: res.stageP99, LockWaitP99US: res.lockP99,
				})
				lastSpans = res.spans
			}
			rep.Runs = append(rep.Runs, run)
			fmt.Println()
		}
	}
	writeTrace(tracePath, lastSpans)
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -scaling: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0644); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -scaling: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
