package main

// The -clients/-scaling modes: real-socket multiclient load against the
// parallel nfsd pool (internal/nfsnet), as opposed to the simulated
// experiments. One point measures N concurrent UDP clients hammering
// READ(8K)+LOOKUP; the curve sweeps 1/2/4/8 clients and writes
// BENCH_scaling.json, the record `make scaling` and CI compare against.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsnet"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
)

// scalingPoint is one row of the curve.
type scalingPoint struct {
	Clients int     `json:"clients"`
	OpsPerS float64 `json:"ops_per_s"`
	Speedup float64 `json:"speedup"` // vs the 1-client point
}

// scalingReport is the BENCH_scaling.json document.
type scalingReport struct {
	NFSDs     int            `json:"nfsds"`
	GOMAXPROC int            `json:"gomaxprocs"`
	DurationS float64        `json:"duration_s"`
	Points    []scalingPoint `json:"points"`
}

// measureClients runs one point: n concurrent UDP clients against a fresh
// real-socket server, each looping READ(8K)+LOOKUP for dur. Returns
// aggregate ops/s.
func measureClients(n, nfsds int, dur time.Duration) (float64, error) {
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = nfsds
	srv := server.New(fs, opts)
	s, err := nfsnet.Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer s.Close()
	root := srv.RootFH()

	setup, err := nfsnet.DialUDP(s.UDPAddr())
	if err != nil {
		return 0, err
	}
	cr, err := setup.Create(root, "bench.dat", 0644)
	if err != nil || cr.Status != nfsproto.OK {
		setup.Close()
		return 0, fmt.Errorf("create bench.dat: %v (res %+v)", err, cr)
	}
	if _, err := setup.Write(cr.File, 0, make([]byte, nfsproto.MaxData)); err != nil {
		setup.Close()
		return 0, err
	}
	setup.Close()

	var ops atomic.Int64
	errc := make(chan error, n)
	var wg sync.WaitGroup
	stop := time.Now().Add(dur)
	for c := 0; c < n; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := nfsnet.DialUDP(s.UDPAddr())
			if err != nil {
				errc <- err
				return
			}
			defer cl.Close()
			for time.Now().Before(stop) {
				if _, err := cl.Read(cr.File, 0, nfsproto.MaxData); err != nil {
					errc <- fmt.Errorf("read: %w", err)
					return
				}
				if _, err := cl.Lookup(root, "bench.dat"); err != nil {
					errc <- fmt.Errorf("lookup: %w", err)
					return
				}
				ops.Add(2)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errc:
		return 0, err
	default:
	}
	return float64(ops.Load()) / dur.Seconds(), nil
}

// runClients serves the -clients N mode: one point, printed.
func runClients(n, nfsds int, dur time.Duration) {
	tput, err := measureClients(n, nfsds, dur)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -clients: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%d client(s) x %v against %d nfsds: %.0f ops/s (READ 8K + LOOKUP)\n",
		n, dur, nfsds, tput)
}

// runScaling serves the -scaling mode: the 1/2/4/8-client curve, printed
// and written to out as JSON.
func runScaling(nfsds int, dur time.Duration, out string) {
	fmt.Printf("== scaling: real-socket throughput vs concurrent clients (%d nfsds, GOMAXPROCS %d)\n\n",
		nfsds, runtime.GOMAXPROCS(0))
	rep := scalingReport{NFSDs: nfsds, GOMAXPROC: runtime.GOMAXPROCS(0), DurationS: dur.Seconds()}
	var base float64
	for _, n := range []int{1, 2, 4, 8} {
		tput, err := measureClients(n, nfsds, dur)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nfsbench: -scaling (%d clients): %v\n", n, err)
			os.Exit(1)
		}
		if n == 1 {
			base = tput
		}
		speedup := 0.0
		if base > 0 {
			speedup = tput / base
		}
		fmt.Printf("  %d clients: %8.0f ops/s  (%.2fx)\n", n, tput, speedup)
		rep.Points = append(rep.Points, scalingPoint{Clients: n, OpsPerS: tput, Speedup: speedup})
	}
	fmt.Println()
	if out == "" {
		return
	}
	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -scaling: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0644); err != nil {
		fmt.Fprintf(os.Stderr, "nfsbench: -scaling: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
