// Command nfsd runs the user-space NFS v2 server over real UDP and TCP
// sockets — the same protocol core (mbuf/XDR codec, dispatch, caches,
// duplicate-request cache) the simulator exercises, demonstrating the
// implementation's transport independence on genuine sockets.
//
// Usage:
//
//	nfsd -udp 127.0.0.1:12049 -tcp 127.0.0.1:12049 -stats 127.0.0.1:12050
//
// -nfsds sizes the parallel worker pool: UDP requests and every TCP
// connection dispatch concurrently into the server core, so NFSDs means
// real parallelism here, not just simulated daemons.
//
// The exported filesystem is in-memory and seeded with a small demo tree.
// The root file handle is printed in hex; cmd/nfsstone and the quickstart
// example show a client side.
//
// The -stats listener serves the live metrics registry (per-procedure call
// counters and service-time histograms):
//
//	GET /stats       JSON snapshot (the cmd/nfsstat wire format)
//	GET /stats.txt   the same snapshot as aligned text
//
// On ^C the server prints a per-procedure summary table before exiting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsnet"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/stats"
)

func main() {
	var (
		udpAddr   = flag.String("udp", "127.0.0.1:12049", "UDP listen address")
		tcpAddr   = flag.String("tcp", "127.0.0.1:12049", "TCP listen address")
		statsAddr = flag.String("stats", "127.0.0.1:12050", "stats HTTP listen address (empty disables)")
		ultrix    = flag.Bool("ultrix", false, "serve with the Ultrix (reference-port) personality")
		nfsds     = flag.Int("nfsds", 8, "parallel nfsd worker goroutines (the UDP dispatch pool)")
		exports   = flag.String("exports", "/,/etc,/home", "comma-separated export paths")
		rdlook    = flag.Bool("readdirlook", true, "serve the readdir_and_lookup_files extension")
	)
	flag.Parse()

	fs := memfs.New(1, nil, nil)
	root := fs.Root()
	etc, _ := fs.Mkdir(nil, root, "etc", 0755)
	motd, _ := fs.Create(nil, etc, "motd", 0644)
	fs.WriteAt(nil, motd, 0, []byte("welcome to renonfs: a 4.3BSD Reno NFS reproduction\n"), 0)
	fs.Mkdir(nil, root, "home", 0755)

	opts := server.Reno()
	if *ultrix {
		opts = server.Ultrix()
	}
	opts.ReaddirLook = *rdlook
	if *nfsds > 0 {
		opts.NFSDs = *nfsds
	}
	srv := server.New(fs, opts)
	for _, path := range strings.Split(*exports, ",") {
		if path != "" {
			srv.Export(path)
		}
	}
	s, err := nfsnet.Serve(srv, *udpAddr, *tcpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsd: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()
	rootFH := srv.RootFH()
	fmt.Printf("nfsd (%s personality) serving\n  udp %s\n  tcp %s\n  exports %s\n  root fh %x (or MNT \"/\" via the MOUNT protocol)\n",
		opts.Name, s.UDPAddr(), s.TCPAddr(), *exports, rootFH[:12])
	if *statsAddr != "" {
		go serveStats(*statsAddr, srv)
		fmt.Printf("  stats http://%s/stats (poll with cmd/nfsstat)\n", *statsAddr)
	}
	fmt.Println("^C to stop")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println()
	printFinal(srv)
}

// serveStats exposes the registry over HTTP. Snapshots read atomics only,
// so serving concurrently with request handling needs no locking; the mbuf
// pool/copy counters are mirrored into the registry on each request so
// nfsstat sees the live copy-avoidance numbers.
func serveStats(addr string, srv *server.Server) {
	reg := srv.Metrics
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		srv.PublishMbufStats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.HandleFunc("/stats.txt", func(w http.ResponseWriter, r *http.Request) {
		srv.PublishMbufStats()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "nfsd: stats endpoint: %v\n", err)
	}
}

// printFinal renders the shutdown summary: one row per procedure that was
// called, with its service-time distribution, then the totals.
func printFinal(srv *server.Server) {
	srv.PublishMbufStats()
	snap := srv.Metrics.Snapshot()
	tb := stats.NewTable("per-procedure totals",
		"proc", "calls", "svc mean ms", "p50", "p99", "max")
	for proc := uint32(0); proc < nfsproto.NumProcsExt; proc++ {
		n := srv.Stats.Calls[proc].Load()
		if n == 0 {
			continue
		}
		h := snap.Histograms["nfs.service_ms."+nfsproto.ProcName(proc)]
		tb.AddRow(nfsproto.ProcName(proc), n,
			fmt.Sprintf("%.3f", h.Mean()),
			fmt.Sprintf("%.3f", h.Quantile(50)),
			fmt.Sprintf("%.3f", h.Quantile(99)),
			fmt.Sprintf("%.3f", h.Max))
	}
	fmt.Print(tb.String())
	fmt.Printf("totals: %d calls, %d errors, %d duplicate replays suppressed, %d bytes in, %d bytes out\n",
		srv.Stats.Total(), srv.Stats.Errors.Load(), srv.Stats.DupHits.Load(),
		srv.Stats.BytesIn.Load(), srv.Stats.BytesOut.Load())
	fmt.Printf("mbuf: %d bytes copied, %d bytes loaned, pool %d hits / %d misses\n",
		snap.Counters["mbuf.copied_bytes"], snap.Counters["mbuf.loaned_bytes"],
		snap.Counters["mbuf.pool_hits"], snap.Counters["mbuf.pool_misses"])
}
