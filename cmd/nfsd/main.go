// Command nfsd runs the user-space NFS v2 server over real UDP and TCP
// sockets — the same protocol core (mbuf/XDR codec, dispatch, caches,
// duplicate-request cache) the simulator exercises, demonstrating the
// implementation's transport independence on genuine sockets.
//
// Usage:
//
//	nfsd -udp 127.0.0.1:12049 -tcp 127.0.0.1:12049 -stats 127.0.0.1:12050
//
// -nfsds sizes the parallel worker pool: UDP requests and every TCP
// connection dispatch concurrently into the server core, so NFSDs means
// real parallelism here, not just simulated daemons. -readers sizes the
// sharded UDP ingest frontend (SO_REUSEPORT sockets where the platform
// supports it, shared-socket reader goroutines elsewhere); 0 runs one
// reader per GOMAXPROCS.
//
// The exported filesystem is in-memory and seeded with a small demo tree.
// The root file handle is printed in hex; cmd/nfsstone and the quickstart
// example show a client side.
//
// The -stats listener serves the live metrics registry (per-procedure call
// counters and service-time histograms):
//
//	GET /stats       JSON snapshot (the cmd/nfsstat wire format)
//	GET /stats.txt   the same snapshot as aligned text
//	GET /trace       the slowest-span ring as Chrome trace-event JSON
//	                 (load at chrome://tracing or ui.perfetto.dev)
//
// -tracedump FILE writes the same Chrome trace JSON to FILE at shutdown.
//
// On ^C the server prints a per-procedure summary table, the stage-level
// "where the microsecond goes" breakdown, and the lock-contention sites
// before exiting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"

	"renonfs/internal/lockstat"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsnet"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/stats"
)

func main() {
	var (
		udpAddr   = flag.String("udp", "127.0.0.1:12049", "UDP listen address")
		tcpAddr   = flag.String("tcp", "127.0.0.1:12049", "TCP listen address")
		statsAddr = flag.String("stats", "127.0.0.1:12050", "stats HTTP listen address (empty disables)")
		ultrix    = flag.Bool("ultrix", false, "serve with the Ultrix (reference-port) personality")
		nfsds     = flag.Int("nfsds", 8, "parallel nfsd worker goroutines (the UDP dispatch pool)")
		readers   = flag.Int("readers", 0, "sharded UDP ingest readers (0 = one per GOMAXPROCS; clamped to -nfsds)")
		exports   = flag.String("exports", "/,/etc,/home", "comma-separated export paths")
		rdlook    = flag.Bool("readdirlook", true, "serve the readdir_and_lookup_files extension")
		leases    = flag.Bool("leases", false, "serve the NQNFS-style lease extension (grants need the simulator's peer addressing for callbacks; real-socket clients fall back to plain consistency)")
		traceDump = flag.String("tracedump", "", "write the slowest-span Chrome trace JSON here at shutdown")
	)
	flag.Parse()

	fs := memfs.New(1, nil, nil)
	root := fs.Root()
	etc, _ := fs.Mkdir(nil, root, "etc", 0755)
	motd, _ := fs.Create(nil, etc, "motd", 0644)
	fs.WriteAt(nil, motd, 0, []byte("welcome to renonfs: a 4.3BSD Reno NFS reproduction\n"), 0)
	fs.Mkdir(nil, root, "home", 0755)

	opts := server.Reno()
	if *ultrix {
		opts = server.Ultrix()
	}
	opts.ReaddirLook = *rdlook
	opts.Leases = *leases
	if *nfsds > 0 {
		opts.NFSDs = *nfsds
	}
	opts.Readers = *readers
	srv := server.New(fs, opts)
	for _, path := range strings.Split(*exports, ",") {
		if path != "" {
			srv.Export(path)
		}
	}
	s, err := nfsnet.Serve(srv, *udpAddr, *tcpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsd: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()
	rootFH := srv.RootFH()
	ingest := "shared socket"
	if s.ReusePort() {
		ingest = "SO_REUSEPORT sockets"
	}
	fmt.Printf("nfsd (%s personality) serving\n  udp %s (%d readers, %s)\n  tcp %s\n  exports %s\n  root fh %x (or MNT \"/\" via the MOUNT protocol)\n",
		opts.Name, s.UDPAddr(), s.Readers(), ingest, s.TCPAddr(), *exports, rootFH[:12])
	if *statsAddr != "" {
		go serveStats(*statsAddr, s)
		fmt.Printf("  stats http://%s/stats (poll with cmd/nfsstat; /trace for a span dump)\n", *statsAddr)
	}
	fmt.Println("^C to stop")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Println()
	printFinal(s)
	if *traceDump != "" {
		if err := writeTrace(*traceDump, s); err != nil {
			fmt.Fprintf(os.Stderr, "nfsd: trace dump: %v\n", err)
		} else {
			fmt.Printf("slow-span trace written to %s (open at chrome://tracing)\n", *traceDump)
		}
	}
}

// writeTrace dumps the slowest-span ring as Chrome trace JSON.
func writeTrace(path string, s *nfsnet.Server) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return metrics.WriteChromeTrace(f, s.Stages().Ring().Slowest(), nfsproto.ProcName)
}

// serveStats exposes the registry over HTTP. Snapshots read atomics only,
// so serving concurrently with request handling needs no locking; the mbuf
// pool/copy counters, the lazily published nfsd-pool gauge and the lockstat
// site counters are refreshed on each request so nfsstat sees live numbers.
func serveStats(addr string, s *nfsnet.Server) {
	srv := s.Core()
	reg := srv.Metrics
	refresh := func() {
		srv.PublishMbufStats()
		srv.PublishLeaseStats()
		s.PublishStats()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(reg.Snapshot())
	})
	mux.HandleFunc("/stats.txt", func(w http.ResponseWriter, r *http.Request) {
		refresh()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reg.Snapshot().WriteText(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		metrics.WriteChromeTrace(w, s.Stages().Ring().Slowest(), nfsproto.ProcName)
	})
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "nfsd: stats endpoint: %v\n", err)
	}
}

// printFinal renders the shutdown summary: one row per procedure that was
// called, with its service-time distribution, the stage-level latency
// breakdown, the lock-contention sites and the totals.
func printFinal(s *nfsnet.Server) {
	srv := s.Core()
	srv.PublishMbufStats()
	srv.PublishLeaseStats()
	s.PublishStats()
	snap := srv.Metrics.Snapshot()
	tb := stats.NewTable("per-procedure totals",
		"proc", "calls", "svc mean ms", "p50", "p99", "max")
	for proc := uint32(0); proc < nfsproto.NumProcsExt; proc++ {
		n := srv.Stats.Calls[proc].Load()
		if n == 0 {
			continue
		}
		h := snap.Histograms["nfs.service_ms."+nfsproto.ProcName(proc)]
		tb.AddRow(nfsproto.ProcName(proc), n,
			fmt.Sprintf("%.3f", h.Mean()),
			fmt.Sprintf("%.3f", h.Quantile(50)),
			fmt.Sprintf("%.3f", h.Quantile(99)),
			fmt.Sprintf("%.3f", h.Max))
	}
	fmt.Print(tb.String())
	fmt.Printf("totals: %d calls, %d errors, %d duplicate replays suppressed, %d bytes in, %d bytes out\n",
		srv.Stats.Total(), srv.Stats.Errors.Load(), srv.Stats.DupHits.Load(),
		srv.Stats.BytesIn.Load(), srv.Stats.BytesOut.Load())
	fmt.Printf("mbuf: %d bytes copied, %d bytes loaned, pool %d hits / %d misses\n",
		snap.Counters["mbuf.copied_bytes"], snap.Counters["mbuf.loaned_bytes"],
		snap.Counters["mbuf.pool_hits"], snap.Counters["mbuf.pool_misses"])
	if msgs := snap.Counters["rpc.send.batched_msgs"]; msgs > 0 {
		fmt.Printf("fastpath: %d calls, %d fallbacks; batched sends: %d syscalls / %d replies (%.3f per reply)\n",
			snap.Counters["rpc.fastpath.calls"], snap.Counters["rpc.fastpath.fallbacks"],
			snap.Counters["rpc.send.batches"], msgs,
			float64(snap.Counters["rpc.send.batches"])/float64(msgs))
	}
	if grants := snap.Counters["lease.grants"]; grants > 0 {
		fmt.Printf("leases: %d grants (%d piggybacked, %d renewals), %d trylater, %d evictions, %d vacates, %d expiries, %.0f active\n",
			grants, snap.Counters["lease.piggy_grants"], snap.Counters["lease.renewals"],
			snap.Counters["lease.trylater"], snap.Counters["lease.evictions"],
			snap.Counters["lease.vacates"], snap.Counters["lease.expiries"],
			snap.Gauges["lease.active"])
	}
	printReaders(snap, s)
	printStages(snap)
	printLocks()
}

// printReaders renders the per-reader ingest spread: how many datagrams
// each sharded reader staged, how many it consumed inline on the shallow
// dispatch path, and how often it woke from a blocking read.
func printReaders(snap *metrics.Snapshot, s *nfsnet.Server) {
	n := s.Readers()
	if n <= 1 {
		return
	}
	mode := "shared socket"
	if s.ReusePort() {
		mode = "SO_REUSEPORT"
	}
	tb := stats.NewTable(fmt.Sprintf("udp ingest (%d readers, %s)", n, mode),
		"reader", "reads", "fast", "wakeups")
	for i := 0; i < n; i++ {
		tb.AddRow(i,
			snap.Counters[fmt.Sprintf("rpc.reader.%d.reads", i)],
			snap.Counters[fmt.Sprintf("rpc.reader.%d.fast", i)],
			snap.Counters[fmt.Sprintf("rpc.reader.%d.wakeups", i)])
	}
	fmt.Print(tb.String())
}

// printStages renders the per-stage pipeline latency table from the
// rpc.stage.* histograms.
func printStages(snap *metrics.Snapshot) {
	tb := stats.NewTable("where the microsecond goes (per-stage, µs)",
		"stage", "count", "p50", "p95", "p99", "max")
	names := metrics.StageNames()
	rows := append(names[:], "lockwait", "total")
	shown := false
	for _, st := range rows {
		h, ok := snap.Histograms["rpc.stage."+st+".us"]
		if !ok || h.Count == 0 {
			continue
		}
		shown = true
		tb.AddRow(st, h.Count,
			fmt.Sprintf("%.1f", h.Quantile(50)),
			fmt.Sprintf("%.1f", h.Quantile(95)),
			fmt.Sprintf("%.1f", h.Quantile(99)),
			fmt.Sprintf("%.1f", h.Max))
	}
	if shown {
		fmt.Print(tb.String())
	}
}

// printLocks renders the lockstat sites that saw contention.
func printLocks() {
	shown := false
	for _, st := range lockstat.Stats() {
		if st.Contended == 0 {
			continue
		}
		if !shown {
			fmt.Println("lock contention (waits/total wait):")
			shown = true
		}
		fmt.Printf("  %-20s %8d waits  %10.3f ms\n", st.Name, st.Contended, float64(st.WaitNS)/1e6)
	}
}
