// Command nfsd runs the user-space NFS v2 server over real UDP and TCP
// sockets — the same protocol core (mbuf/XDR codec, dispatch, caches,
// duplicate-request cache) the simulator exercises, demonstrating the
// implementation's transport independence on genuine sockets.
//
// Usage:
//
//	nfsd -udp 127.0.0.1:12049 -tcp 127.0.0.1:12049
//
// The exported filesystem is in-memory and seeded with a small demo tree.
// The root file handle is printed in hex; cmd/nfsstone and the quickstart
// example show a client side.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsnet"
	"renonfs/internal/server"
)

func main() {
	var (
		udpAddr = flag.String("udp", "127.0.0.1:12049", "UDP listen address")
		tcpAddr = flag.String("tcp", "127.0.0.1:12049", "TCP listen address")
		ultrix  = flag.Bool("ultrix", false, "serve with the Ultrix (reference-port) personality")
		exports = flag.String("exports", "/,/etc,/home", "comma-separated export paths")
		rdlook  = flag.Bool("readdirlook", true, "serve the readdir_and_lookup_files extension")
	)
	flag.Parse()

	fs := memfs.New(1, nil, nil)
	root := fs.Root()
	etc, _ := fs.Mkdir(nil, root, "etc", 0755)
	motd, _ := fs.Create(nil, etc, "motd", 0644)
	fs.WriteAt(nil, motd, 0, []byte("welcome to renonfs: a 4.3BSD Reno NFS reproduction\n"), 0)
	fs.Mkdir(nil, root, "home", 0755)

	opts := server.Reno()
	if *ultrix {
		opts = server.Ultrix()
	}
	opts.ReaddirLook = *rdlook
	srv := server.New(fs, opts)
	for _, path := range strings.Split(*exports, ",") {
		if path != "" {
			srv.Export(path)
		}
	}
	s, err := nfsnet.Serve(srv, *udpAddr, *tcpAddr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nfsd: %v\n", err)
		os.Exit(1)
	}
	defer s.Close()
	rootFH := srv.RootFH()
	fmt.Printf("nfsd (%s personality) serving\n  udp %s\n  tcp %s\n  exports %s\n  root fh %x (or MNT \"/\" via the MOUNT protocol)\n",
		opts.Name, s.UDPAddr(), s.TCPAddr(), *exports, rootFH[:12])
	fmt.Println("^C to stop")

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	fmt.Printf("\nserved %d calls (%d duplicate replays suppressed)\n",
		srv.Stats.Total(), srv.Stats.DupHits)
}
