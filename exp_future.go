package renonfs

import (
	"fmt"
	"time"

	"renonfs/internal/client"
	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/transport"
	"renonfs/internal/workload"
)

// LeaseClient is the Reno client with the NQNFS-style lease extension:
// delayed writes without push-on-close, made safe by server leases.
func LeaseClient() client.Options {
	o := client.Reno()
	o.Name = "reno-leases"
	o.UseLeases = true
	return o
}

// LeaseServer is the Reno server with the lease and readdirlook
// extensions enabled.
func LeaseServer() server.Options {
	o := server.Reno()
	o.Leases = true
	o.ReaddirLook = true
	return o
}

// expFutureWork quantifies the three Future Directions features built on
// top of the paper's system:
//
//  1. NQNFS-style leases: the write-RPC bill of the Andrew benchmark with
//     full consistency, compared against plain Reno (push-on-close) and
//     the unsafe noconsist bound the paper measured;
//  2. readdir_and_lookup_files: the RPC bill of an ls -lR;
//  3. adaptive transfer sizing: read success over a lossy link.
func expFutureWork(cfg ExpConfig) []*stats.Table {
	return []*stats.Table{
		futureLeases(cfg),
		futureCreateDelete(cfg),
		futureReaddirLook(cfg),
		futureAdaptive(cfg),
	}
}

// futureLeases runs the Andrew benchmark under the three consistency
// regimes.
func futureLeases(cfg ExpConfig) *stats.Table {
	t := stats.NewTable("Future work: leases vs push-on-close (Andrew benchmark, MicroVAXII)",
		"client", "write RPCs", "total RPCs", "I-IV (s)", "coherent?")
	rows := []struct {
		name     string
		srv      server.Options
		opts     client.Options
		coherent string
	}{
		{"Reno (push-on-close)", server.Reno(), client.Reno(), "yes"},
		{"Reno + leases", LeaseServer(), LeaseClient(), "yes (lease protocol)"},
		{"Reno-noconsist (bound)", server.Reno(), client.RenoNoConsist(), "NO"},
	}
	for i, row := range rows {
		res, err := runAndrew(cfg.seed()+int64(i), 0, row.srv, UDPDynamic, row.opts)
		if err != nil {
			t.AddRow(row.name, "-", "-", "-", row.coherent)
			continue
		}
		t.AddRow(row.name,
			res.RPC.Calls[nfsproto.ProcWrite],
			res.RPC.TotalCalls(),
			secs(res.PhaseI_IV()),
			row.coherent)
	}
	return t
}

// futureCreateDelete shows leases approaching the noconsist bound on the
// paper's most dramatic number: Create-Delete of a 100 KB file.
func futureCreateDelete(cfg ExpConfig) *stats.Table {
	t := stats.NewTable("Future work: Create-Delete 100KB (msec)", "client", "mean ms")
	iters := 8
	if cfg.Quick {
		iters = 4
	}
	rows := []struct {
		name string
		srv  server.Options
		opts client.Options
	}{
		{"Reno (push-on-close)", server.Reno(), client.Reno()},
		{"Reno + leases", LeaseServer(), LeaseClient()},
		{"Reno-noconsist (bound)", server.Reno(), client.RenoNoConsist()},
	}
	for i, row := range rows {
		r := NewRig(RigConfig{Seed: cfg.seed() + int64(i), Topology: TopoLAN,
			ServerOpts: row.srv, ServerDisk: true})
		var mean float64
		ok := false
		r.Env.Spawn("cd", func(p *sim.Proc) {
			m, err := r.Mount(p, UDPDynamic, row.opts)
			if err != nil {
				return
			}
			res, err := workload.RunCreateDelete(p, workload.MountFS{M: m}, row.opts.Name, 100*1024, iters)
			if err != nil {
				return
			}
			mean = res.MeanMS
			ok = true
		})
		r.Env.Run(4 * time.Hour)
		r.Close()
		if ok {
			t.AddRow(row.name, fmt.Sprintf("%.0f", mean))
		} else {
			t.AddRow(row.name, "-")
		}
	}
	return t
}

// futureReaddirLook measures an ls -lR (list + stat every file) with and
// without the readdir_and_lookup_files RPC.
func futureReaddirLook(cfg ExpConfig) *stats.Table {
	t := stats.NewTable("Future work: ls -lR RPC bill, 120 files in 4 directories",
		"client", "lookup", "getattr", "readdir(+look)", "total")
	for _, useExt := range []bool{false, true} {
		r := NewRig(RigConfig{Seed: cfg.seed(), Topology: TopoLAN, ServerOpts: LeaseServer()})
		opts := client.Reno()
		opts.ReaddirLook = useExt
		name := "Reno (lookup per file)"
		if useExt {
			name = "Reno + readdirlook"
		}
		var st client.Stats
		ok := false
		r.Env.Spawn("ls", func(p *sim.Proc) {
			m, err := r.Mount(p, UDPDynamic, opts)
			if err != nil {
				return
			}
			// Build the tree.
			for d := 0; d < 4; d++ {
				dir := fmt.Sprintf("d%d", d)
				if err := m.Mkdir(p, dir, 0755); err != nil {
					return
				}
				for i := 0; i < 30; i++ {
					f, err := m.Create(p, fmt.Sprintf("%s/file%02d", dir, i), 0644)
					if err != nil {
						return
					}
					f.Write(p, []byte("contents"))
					f.Close(p)
				}
			}
			p.Sleep(6 * time.Second) // age every cache
			base := m.Stats
			for d := 0; d < 4; d++ {
				dir := fmt.Sprintf("d%d", d)
				ents, err := m.ReadDirLook(p, dir)
				if err != nil {
					return
				}
				for _, ent := range ents {
					if ent.Name == "." || ent.Name == ".." {
						continue
					}
					if _, err := m.Getattr(p, dir+"/"+ent.Name); err != nil {
						return
					}
				}
			}
			for i := range st.Calls {
				st.Calls[i] = m.Stats.Calls[i] - base.Calls[i]
			}
			ok = true
		})
		r.Env.Run(time.Hour)
		r.Close()
		if !ok {
			t.AddRow(name, "-", "-", "-", "-")
			continue
		}
		total := 0
		for _, c := range st.Calls {
			total += c
		}
		t.AddRow(name,
			st.Calls[nfsproto.ProcLookup],
			st.Calls[nfsproto.ProcGetattr],
			st.Calls[nfsproto.ProcReaddir]+st.Calls[nfsproto.ProcReaddirLook],
			total)
	}
	return t
}

// futureAdaptive measures sequential read throughput over a lossy link
// with and without dynamic transfer sizing.
func futureAdaptive(cfg ExpConfig) *stats.Table {
	t := stats.NewTable("Future work: adaptive read size on a lossy Ethernet (8% frame loss)",
		"client", "elapsed (s)", "read RPCs", "final rsize")
	for _, adaptive := range []bool{false, true} {
		env := sim.New(cfg.seed())
		nt := netsim.New(env)
		cl := nt.AddNode(netsim.NodeConfig{Name: "client"})
		sv := nt.AddNode(netsim.NodeConfig{Name: "server"})
		lk := netsim.Ethernet("eth")
		lk.LossProb = 0.08
		nt.Connect(cl, sv, lk)
		nt.ComputeRoutes()
		fs := memfs.New(1, nil, nil)
		srv := server.New(fs, server.Reno())
		srv.AttachNode(sv)
		srv.ServeUDP(server.NFSPort)
		// Preload a 256 KB file directly.
		ino, _ := fs.Create(nil, fs.Root(), "big", 0644)
		fs.WriteAt(nil, ino, 0, make([]byte, 256*1024), 0)

		opts := client.Reno()
		opts.AdaptiveRsize = adaptive
		opts.ReadAhead = 0
		name := "fixed 8K reads"
		if adaptive {
			name = "adaptive reads"
		}
		tr := transport.NewUDP(cl, 9100, sv.ID, server.NFSPort, transport.DynamicUDP())
		m := client.NewMount(cl, tr, srv.RootFH(), opts)
		var elapsed sim.Time
		ok := false
		env.Spawn("reader", func(p *sim.Proc) {
			start := p.Now()
			f, err := m.Open(p, "big")
			if err != nil {
				return
			}
			buf := make([]byte, 8192)
			total := 0
			for {
				n, err := f.Read(p, buf)
				if err != nil {
					return
				}
				if n == 0 {
					break
				}
				total += n
			}
			if total != 256*1024 {
				return
			}
			elapsed = p.Now() - start
			ok = true
		})
		env.Run(time.Hour)
		env.Close()
		if !ok {
			t.AddRow(name, "-", "-", "-")
			continue
		}
		rsize := 8192
		if adaptive {
			rsize = m.Rsize()
		}
		t.AddRow(name, fmt.Sprintf("%.1f", float64(elapsed)/1e9),
			m.Stats.RPCCount(nfsproto.ProcRead), rsize)
	}
	return t
}
