package transport

import (
	"fmt"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/tcpsim"
	"renonfs/internal/xdr"
)

// DefaultReplyTimeout is how long a TCP call may stay outstanding before
// the transport concludes the reply was lost along with the server's
// connection state (a reboot whose RST never arrived) and aborts the
// connection to force a reconnect and replay. TCP keeps the data stream
// reliable, but it cannot resurrect a reply the server forgot it owed us.
const DefaultReplyTimeout = 30 * time.Second

// tcpReconnectAttempts bounds redial attempts after a connection loss
// before pending calls are failed (each attempt itself waits out the
// 75 s connect timeout, so this is a generous hard-mount budget).
const tcpReconnectAttempts = 8

// TCP is the stream transport: one connection per mount, record marks
// between messages, reliability delegated to TCP itself. If the connection
// drops, the transport reconnects and re-sends every pending request (the
// server's duplicate request cache absorbs any replays of non-idempotent
// calls).
type TCP struct {
	env    *sim.Env
	stack  *tcpsim.Stack
	server netsim.NodeID
	port   int
	conn   *tcpsim.Conn

	xid     uint32
	pending map[uint32]*tcpPending
	closed  bool
	stats   Stats
	// TraceProc mirrors UDPConfig.TraceProc.
	TraceProc int
	// Tracer mirrors UDPConfig.Tracer: typed RPC lifecycle events (calls,
	// replies, replays after a reconnect).
	Tracer metrics.Tracer
	// ReplyTimeout overrides DefaultReplyTimeout when set.
	ReplyTimeout sim.Time
}

type tcpPending struct {
	xid    uint32
	prog   uint32
	vers   uint32
	proc   uint32
	args   func(e *xdr.Encoder)
	sentAt sim.Time
	done   *sim.Event
	reply  *xdr.Decoder
	err    error
}

// NewTCP creates the transport and dials the server; it blocks the calling
// process for the handshake.
func NewTCP(p *sim.Proc, stack *tcpsim.Stack, server netsim.NodeID, port int) (*TCP, error) {
	t := &TCP{
		env:          stack.Node().Net().Env,
		stack:        stack,
		server:       server,
		port:         port,
		pending:      make(map[uint32]*tcpPending),
		TraceProc:    -1,
		ReplyTimeout: DefaultReplyTimeout,
	}
	if err := t.connect(p); err != nil {
		return nil, err
	}
	t.env.Spawn(fmt.Sprintf("%s.tcprpc-watchdog", stack.Node().Name), t.watchdog)
	return t, nil
}

// watchdog aborts the connection when a call has been outstanding past
// ReplyTimeout. That covers the one loss TCP's reliability cannot: the
// server rebooted after acking our request, its RST to us was lost, and
// with no unacked data on the wire neither side will ever transmit again.
// Aborting wakes rxLoop, which reconnects and replays the pending calls.
func (t *TCP) watchdog(p *sim.Proc) {
	for {
		p.Sleep(t.ReplyTimeout / 4)
		if t.closed {
			return
		}
		overdue := false
		for _, pc := range t.pending {
			if !pc.done.IsSet() && p.Now()-pc.sentAt > t.ReplyTimeout {
				overdue = true
				break
			}
		}
		if overdue && t.conn != nil {
			t.conn.Abort()
		}
	}
}

func (t *TCP) connect(p *sim.Proc) error {
	conn, err := t.stack.Dial(p, t.server, t.port)
	if err != nil {
		return err
	}
	t.conn = conn
	t.env.Spawn(fmt.Sprintf("%s.tcprpc-rx", t.stack.Node().Name), func(rp *sim.Proc) {
		t.rxLoop(rp, conn)
	})
	return nil
}

// Stats returns transport counters.
func (t *TCP) Stats() *Stats { return &t.stats }

// Close tears the connection down.
func (t *TCP) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, pc := range t.pending {
		if pc.done.IsSet() {
			continue
		}
		pc.err = ErrClosed
		metrics.Emit(t.Tracer, metrics.CallFailed{Proc: pc.proc, XID: pc.xid, Reason: "closed"})
		pc.done.Set()
	}
	t.pending = make(map[uint32]*tcpPending)
	if t.conn != nil {
		t.conn.Close()
	}
}

// Call implements Transport.
func (t *TCP) Call(p *sim.Proc, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	return t.CallProgram(p, nfsproto.Program, nfsproto.Version, proc, args)
}

// CallProgram implements ProgramCaller (used by the MOUNT protocol).
func (t *TCP) CallProgram(p *sim.Proc, prog, vers, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	if t.closed {
		return nil, ErrClosed
	}
	t.xid++
	pc := &tcpPending{
		xid: t.xid, prog: prog, vers: vers, proc: proc, args: args,
		sentAt: p.Now(), done: sim.NewEvent(t.env),
	}
	t.pending[pc.xid] = pc
	t.stats.Calls++
	t.stats.ByClass[ClassOf(proc)]++
	metrics.Emit(t.Tracer, metrics.CallSent{Proc: proc, XID: pc.xid})
	if err := t.sendOne(p, pc); err != nil {
		delete(t.pending, pc.xid)
		t.stats.Failures++
		metrics.Emit(t.Tracer, metrics.CallFailed{Proc: proc, XID: pc.xid, Reason: "send"})
		return nil, err
	}
	pc.done.Wait(p)
	delete(t.pending, pc.xid)
	if pc.err != nil {
		t.stats.Failures++
		return nil, pc.err
	}
	return pc.reply, nil
}

func (t *TCP) sendOne(p *sim.Proc, pc *tcpPending) error {
	msg := buildCall(pc.xid, pc.prog, pc.vers, pc.proc, pc.args)
	rpc.AddRecordMark(msg)
	return t.conn.Send(p, msg)
}

// rxLoop reassembles record-marked replies and matches them to callers.
// On EOF it reconnects and replays everything pending.
func (t *TCP) rxLoop(p *sim.Proc, conn *tcpsim.Conn) {
	var scan rpc.RecordScanner
	for {
		b, ok := conn.Recv(p)
		if !ok {
			break
		}
		recs, err := scan.Feed(b)
		if err != nil {
			conn.Abort()
			break
		}
		for _, rec := range recs {
			msg := mbuf.FromBytes(rec)
			xid, err := rpc.PeekXID(msg)
			if err != nil {
				continue
			}
			pc := t.pending[xid]
			if pc == nil || pc.done.IsSet() {
				continue
			}
			dec, err := decodeReply(msg)
			if err != nil {
				continue
			}
			if int(pc.proc) == t.TraceProc {
				t.stats.Trace = append(t.stats.Trace, TracePoint{
					At: p.Now(), Proc: pc.proc, RTT: p.Now() - pc.sentAt,
				})
			}
			t.stats.Replies++
			metrics.Emit(t.Tracer, metrics.Reply{Proc: pc.proc, XID: xid, RTT: p.Now() - pc.sentAt})
			pc.reply = dec
			pc.done.Set()
		}
	}
	if t.closed {
		return
	}
	// Connection lost: reconnect and replay pending requests. A hard
	// mount rides out long outages, so redial a few times before giving
	// up on the calls in flight.
	var connErr error
	for attempt := 0; ; attempt++ {
		if t.closed {
			return
		}
		if connErr = t.connect(p); connErr == nil {
			break
		}
		if attempt+1 >= tcpReconnectAttempts {
			for _, pc := range t.pending {
				if pc.done.IsSet() {
					continue
				}
				pc.err = connErr
				metrics.Emit(t.Tracer, metrics.CallFailed{Proc: pc.proc, XID: pc.xid, Reason: "reconnect-failed"})
				pc.done.Set()
			}
			return
		}
		p.Sleep(time.Second)
	}
	for _, pc := range t.pending {
		if !pc.done.IsSet() {
			t.stats.Retries++
			metrics.Emit(t.Tracer, metrics.Retransmit{Proc: pc.proc, XID: pc.xid, Backoff: 1})
			// Restart the reply clock: RTT then measures the replay's
			// round trip, and the watchdog times the new transmission.
			pc.sentAt = p.Now()
			if err := t.sendOne(p, pc); err != nil {
				pc.err = err
				metrics.Emit(t.Tracer, metrics.CallFailed{Proc: pc.proc, XID: pc.xid, Reason: "send"})
				pc.done.Set()
			}
		}
	}
}
