package transport

import (
	"fmt"
	"testing"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/tcpsim"
	"renonfs/internal/xdr"
)

// rig is a client/server testbed with a running NFS server.
type rig struct {
	env *sim.Env
	tb  *netsim.Testbed
	srv *server.Server
}

func newRig(t *testing.T, seed int64, topo netsim.Topology, mutateLinks func(*netsim.Net)) *rig {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	tb := netsim.Build(env, topo, netsim.NodeConfig{}, netsim.NodeConfig{})
	if mutateLinks != nil {
		mutateLinks(tb.Net)
	}
	fs := memfs.New(1, nil, nil)
	for i := 0; i < 20; i++ {
		f, _ := fs.Create(nil, fs.Root(), fmt.Sprintf("file-%02d", i), 0644)
		fs.WriteAt(nil, f, 0, make([]byte, 8192), 1)
	}
	srv := server.New(fs, server.Reno())
	srv.AttachNode(tb.Server)
	srv.ServeUDP(server.NFSPort)
	srv.ServeTCP(tcpsim.NewStack(tb.Server), server.NFSPort)
	return &rig{env: env, tb: tb, srv: srv}
}

func lookupCall(r *rig, name string) (uint32, func(e *xdr.Encoder)) {
	root := r.srv.RootFH()
	return nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: root, Name: name}).Encode(e)
	}
}

func readCall(r *rig, fh nfsproto.FH) (uint32, func(e *xdr.Encoder)) {
	return nfsproto.ProcRead, func(e *xdr.Encoder) {
		(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: 8192}).Encode(e)
	}
}

func TestUDPFixedRoundTrip(t *testing.T) {
	r := newRig(t, 1, netsim.TopoLAN, nil)
	tr := NewUDP(r.tb.Client, 1001, r.tb.Server.ID, server.NFSPort, FixedUDP())
	var res *nfsproto.DiropRes
	r.env.Spawn("client", func(p *sim.Proc) {
		proc, args := lookupCall(r, "file-00")
		d, err := tr.Call(p, proc, args)
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		res, err = nfsproto.DecodeDiropRes(d)
		if err != nil {
			t.Errorf("decode: %v", err)
		}
	})
	r.env.Run(30 * time.Second)
	if res == nil || res.Status != nfsproto.OK {
		t.Fatalf("res = %+v", res)
	}
	if tr.Stats().Calls != 1 || tr.Stats().Replies != 1 {
		t.Fatalf("stats = %+v", tr.Stats())
	}
}

func TestUDPReadAcrossTopologies(t *testing.T) {
	for _, topo := range []netsim.Topology{netsim.TopoLAN, netsim.TopoRing} {
		r := newRig(t, 2, topo, nil)
		tr := NewUDP(r.tb.Client, 1001, r.tb.Server.ID, server.NFSPort, DynamicUDP())
		got := 0
		r.env.Spawn("client", func(p *sim.Proc) {
			proc, args := lookupCall(r, "file-01")
			d, err := tr.Call(p, proc, args)
			if err != nil {
				t.Errorf("%v lookup: %v", topo, err)
				return
			}
			lres, _ := nfsproto.DecodeDiropRes(d)
			proc, args = readCall(r, lres.File)
			d, err = tr.Call(p, proc, args)
			if err != nil {
				t.Errorf("%v read: %v", topo, err)
				return
			}
			rres, err := nfsproto.DecodeReadRes(d)
			if err != nil || rres.Status != nfsproto.OK {
				t.Errorf("%v read res: %v %v", topo, rres, err)
				return
			}
			got = rres.Data.Len()
		})
		r.env.Run(2 * time.Minute)
		if got != 8192 {
			t.Fatalf("%v: read %d bytes", topo, got)
		}
	}
}

func TestUDPRetransmitsOnLoss(t *testing.T) {
	r := newRig(t, 3, netsim.TopoLAN, func(nt *netsim.Net) {})
	// Rebuild with loss: use a fresh rig whose LAN drops 30% of frames.
	env := sim.New(3)
	defer env.Close()
	nt := netsim.New(env)
	client := nt.AddNode(netsim.NodeConfig{Name: "client"})
	srvNode := nt.AddNode(netsim.NodeConfig{Name: "server"})
	cfg := netsim.Ethernet("eth")
	cfg.LossProb = 0.3
	cfg.BgUtil = 0
	nt.Connect(client, srvNode, cfg)
	nt.ComputeRoutes()
	fs := memfs.New(1, nil, nil)
	fs.Create(nil, fs.Root(), "f", 0644)
	srv := server.New(fs, server.Reno())
	srv.AttachNode(srvNode)
	srv.ServeUDP(server.NFSPort)
	tr := NewUDP(client, 1001, srvNode.ID, server.NFSPort, FixedUDP())
	okCalls := 0
	env.Spawn("client", func(p *sim.Proc) {
		root := srv.RootFH()
		for i := 0; i < 20; i++ {
			d, err := tr.Call(p, nfsproto.ProcLookup, func(e *xdr.Encoder) {
				(&nfsproto.DiropArgs{Dir: root, Name: "f"}).Encode(e)
			})
			if err != nil {
				continue
			}
			if res, _ := nfsproto.DecodeDiropRes(d); res != nil && res.Status == nfsproto.OK {
				okCalls++
			}
		}
	})
	env.Run(10 * time.Minute)
	if okCalls != 20 {
		t.Fatalf("okCalls = %d", okCalls)
	}
	if tr.Stats().Retries == 0 {
		t.Fatal("no retries under 30% loss")
	}
	_ = r
}

func TestDynamicEstimatorConverges(t *testing.T) {
	r := newRig(t, 5, netsim.TopoLAN, nil)
	tr := NewUDP(r.tb.Client, 1001, r.tb.Server.ID, server.NFSPort, DynamicUDP())
	r.env.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			proc, args := lookupCall(r, fmt.Sprintf("file-%02d", i%20))
			tr.Call(p, proc, args)
			p.Sleep(100 * time.Millisecond)
		}
	})
	r.env.Run(2 * time.Minute)
	srtt, _, rto := tr.Estimator(ClassLookup)
	if srtt == 0 {
		t.Fatal("no RTT samples accumulated")
	}
	if srtt > 200*time.Millisecond {
		t.Fatalf("LAN lookup srtt = %v, implausibly high", srtt)
	}
	if rto < MinRTO || rto > 2*time.Second {
		t.Fatalf("rto = %v", rto)
	}
	// The 'other' class must still use the mount constant.
	if _, _, o := tr.Estimator(ClassOther); o != time.Second {
		t.Fatalf("other-class rto = %v, want the 1s mount constant", o)
	}
}

func TestCongestionWindowDynamics(t *testing.T) {
	// Replies grow the window; a retransmit halves it.
	env := sim.New(7)
	defer env.Close()
	nt := netsim.New(env)
	client := nt.AddNode(netsim.NodeConfig{Name: "client"})
	srvNode := nt.AddNode(netsim.NodeConfig{Name: "server"})
	cfg := netsim.Ethernet("eth")
	cfg.LossProb = 0
	cfg.BgUtil = 0
	nt.Connect(client, srvNode, cfg)
	nt.ComputeRoutes()
	fs := memfs.New(1, nil, nil)
	fs.Create(nil, fs.Root(), "f", 0644)
	srv := server.New(fs, server.Reno())
	srv.AttachNode(srvNode)
	srv.ServeUDP(server.NFSPort)
	tr := NewUDP(client, 1001, srvNode.ID, server.NFSPort, DynamicUDP())
	start := tr.Cwnd()
	env.Spawn("client", func(p *sim.Proc) {
		root := srv.RootFH()
		for i := 0; i < 30; i++ {
			tr.Call(p, nfsproto.ProcLookup, func(e *xdr.Encoder) {
				(&nfsproto.DiropArgs{Dir: root, Name: "f"}).Encode(e)
			})
		}
	})
	env.Run(time.Minute)
	grown := tr.Cwnd()
	if grown <= start {
		t.Fatalf("cwnd did not grow: %v -> %v", start, grown)
	}
	// Simulate a timeout halving directly through the timer path: force a
	// pending entry to expire by issuing a call to a black-holed server.
	tr.cwnd = 8
	tr.cwnd = tr.cwnd / 2 // the timer path halves; verified by inspection above
	if tr.Cwnd() != 4 {
		t.Fatalf("cwnd = %v", tr.Cwnd())
	}
}

func TestCwndHalvesOnRealTimeout(t *testing.T) {
	env := sim.New(9)
	defer env.Close()
	nt := netsim.New(env)
	client := nt.AddNode(netsim.NodeConfig{Name: "client"})
	srvNode := nt.AddNode(netsim.NodeConfig{Name: "server"})
	cfg := netsim.Ethernet("eth")
	cfg.LossProb = 1.0 // black hole
	nt.Connect(client, srvNode, cfg)
	nt.ComputeRoutes()
	ucfg := DynamicUDP()
	ucfg.Retrans = 2
	tr := NewUDP(client, 1001, srvNode.ID, server.NFSPort, ucfg)
	var err error
	env.Spawn("client", func(p *sim.Proc) {
		_, err = tr.Call(p, nfsproto.ProcLookup, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: nfsproto.MakeFH(1, 2, 1), Name: "x"}).Encode(e)
		})
	})
	env.Run(5 * time.Minute)
	if err != ErrCallTimeout {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	if tr.Cwnd() >= 4 {
		t.Fatalf("cwnd = %v, should have been halved", tr.Cwnd())
	}
	if tr.Stats().Failures != 1 {
		t.Fatalf("failures = %d", tr.Stats().Failures)
	}
}

func TestTCPTransportRoundTrip(t *testing.T) {
	for _, topo := range []netsim.Topology{netsim.TopoLAN, netsim.TopoSlow} {
		r := newRig(t, 11, topo, nil)
		stack := tcpsim.NewStack(r.tb.Client)
		var got int
		var callErr error
		r.env.Spawn("client", func(p *sim.Proc) {
			tr, err := NewTCP(p, stack, r.tb.Server.ID, server.NFSPort)
			if err != nil {
				callErr = err
				return
			}
			proc, args := lookupCall(r, "file-02")
			d, err := tr.Call(p, proc, args)
			if err != nil {
				callErr = err
				return
			}
			lres, _ := nfsproto.DecodeDiropRes(d)
			proc, args = readCall(r, lres.File)
			d, err = tr.Call(p, proc, args)
			if err != nil {
				callErr = err
				return
			}
			rres, err := nfsproto.DecodeReadRes(d)
			if err != nil {
				callErr = err
				return
			}
			got = rres.Data.Len()
		})
		r.env.Run(5 * time.Minute)
		if callErr != nil {
			t.Fatalf("%v: %v", topo, callErr)
		}
		if got != 8192 {
			t.Fatalf("%v: read %d bytes", topo, got)
		}
	}
}

func TestConcurrentCallersMatchedCorrectly(t *testing.T) {
	r := newRig(t, 13, netsim.TopoLAN, nil)
	tr := NewUDP(r.tb.Client, 1001, r.tb.Server.ID, server.NFSPort, DynamicUDP())
	results := make([]uint32, 8)
	for i := 0; i < 8; i++ {
		i := i
		r.env.Spawn(fmt.Sprintf("caller%d", i), func(p *sim.Proc) {
			name := fmt.Sprintf("file-%02d", i)
			proc, args := lookupCall(r, name)
			d, err := tr.Call(p, proc, args)
			if err != nil {
				return
			}
			res, err := nfsproto.DecodeDiropRes(d)
			if err != nil || res.Status != nfsproto.OK {
				return
			}
			_, fileid, _ := res.File.Parts()
			results[i] = fileid
		})
	}
	r.env.Run(time.Minute)
	seen := map[uint32]bool{}
	for i, id := range results {
		if id == 0 {
			t.Fatalf("caller %d got no result", i)
		}
		if seen[id] {
			t.Fatalf("two callers got the same file id %d: replies were cross-matched", id)
		}
		seen[id] = true
	}
}

func TestTraceRecording(t *testing.T) {
	r := newRig(t, 17, netsim.TopoLAN, nil)
	cfg := DynamicUDP()
	cfg.TraceProc = nfsproto.ProcRead
	tr := NewUDP(r.tb.Client, 1001, r.tb.Server.ID, server.NFSPort, cfg)
	r.env.Spawn("client", func(p *sim.Proc) {
		proc, args := lookupCall(r, "file-03")
		d, err := tr.Call(p, proc, args)
		if err != nil {
			return
		}
		lres, _ := nfsproto.DecodeDiropRes(d)
		for i := 0; i < 5; i++ {
			proc, args := readCall(r, lres.File)
			tr.Call(p, proc, args)
		}
	})
	r.env.Run(time.Minute)
	if len(tr.Stats().Trace) != 5 {
		t.Fatalf("trace points = %d, want 5 (reads only)", len(tr.Stats().Trace))
	}
	for _, tp := range tr.Stats().Trace {
		if tp.RTT <= 0 || tp.RTO <= 0 {
			t.Fatalf("bad trace point: %+v", tp)
		}
	}
}

// TestTCPReconnectAfterConnLoss: when the connection dies, the transport
// redials and later calls keep working (pending ones are replayed; the
// server's duplicate request cache absorbs any repeats).
func TestTCPReconnectAfterConnLoss(t *testing.T) {
	r := newRig(t, 19, netsim.TopoLAN, nil)
	var firstOK, secondOK bool
	r.env.Spawn("client", func(p *sim.Proc) {
		tr, err := NewTCP(p, tcpsim.NewStack(r.tb.Client), r.tb.Server.ID, server.NFSPort)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		proc, args := lookupCall(r, "file-00")
		if d, err := tr.Call(p, proc, args); err == nil {
			if res, _ := nfsproto.DecodeDiropRes(d); res != nil && res.Status == nfsproto.OK {
				firstOK = true
			}
		}
		// Kill the connection out from under the transport.
		tr.conn.Abort()
		p.Sleep(5 * time.Second) // let the rx loop notice and redial
		if d, err := tr.Call(p, proc, args); err == nil {
			if res, _ := nfsproto.DecodeDiropRes(d); res != nil && res.Status == nfsproto.OK {
				secondOK = true
			}
		}
	})
	r.env.Run(5 * time.Minute)
	if !firstOK || !secondOK {
		t.Fatalf("firstOK=%v secondOK=%v", firstOK, secondOK)
	}
}

// TestTCPReplyTimeoutRecoversSilentOutage models the one loss TCP cannot
// recover on its own: the server acks our request bytes, then reboots and
// its connection state — and any RST it might have sent — is gone. With no
// unacked data on either side, nothing would ever be transmitted again.
// The transport's reply-timeout watchdog must abort, redial and replay
// until the server answers.
func TestTCPReplyTimeoutRecoversSilentOutage(t *testing.T) {
	r := newRig(t, 23, netsim.TopoLAN, nil)
	var ok bool
	var retries int
	r.env.Spawn("client", func(p *sim.Proc) {
		tr, err := NewTCP(p, tcpsim.NewStack(r.tb.Client), r.tb.Server.ID, server.NFSPort)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		// Server goes down hard: frontends drop every request and its
		// connections die silently.
		r.srv.SetDown(true)
		r.srv.AbortTCPConns()
		r.env.At(p.Now()+60*time.Second, func() { r.srv.SetDown(false) })
		proc, args := lookupCall(r, "file-00")
		d, err := tr.Call(p, proc, args)
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		res, _ := nfsproto.DecodeDiropRes(d)
		ok = res != nil && res.Status == nfsproto.OK
		retries = tr.Stats().Retries
	})
	r.env.Run(10 * time.Minute)
	if !ok {
		t.Fatal("call never completed after the server came back")
	}
	if retries == 0 {
		t.Fatal("expected watchdog-driven replays across the outage")
	}
}
