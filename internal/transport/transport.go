// Package transport implements the client-side RPC transports §4 compares:
//
//   - UDP with a fixed retransmit timeout from the mount, backed off
//     exponentially (the classic Sun NFS scheme);
//   - UDP with dynamic per-class RTO estimation (A+4D for the big RPCs,
//     A+2D for the small ones), RTO recalculated on every NFS clock tick,
//     and a TCP-style congestion window on outstanding requests with slow
//     start deliberately removed — the paper's tuned transport;
//   - TCP with record marking, one connection per mount, and replay of
//     pending requests after a reconnect.
//
// A Transport owns XIDs, matching, retransmission and tracing; callers
// supply encoded procedure arguments and decode results.
package transport

import (
	"errors"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

// ErrCallTimeout is returned when a call exhausts its retransmit budget
// (the soft-mount failure mode).
var ErrCallTimeout = errors.New("transport: call timed out")

// ErrClosed is returned for calls on a closed transport.
var ErrClosed = errors.New("transport: closed")

// Class is an RTO timer class. The paper keeps separate estimators for the
// four most frequent RPCs and a conservative fixed timeout for the rest
// (most of which are non-idempotent).
type Class int

const (
	ClassOther Class = iota
	ClassGetattr
	ClassLookup
	ClassRead
	ClassWrite
	NumClasses
)

// ClassOf maps an NFS procedure to its timer class.
func ClassOf(proc uint32) Class {
	switch proc {
	case nfsproto.ProcGetattr:
		return ClassGetattr
	case nfsproto.ProcLookup:
		return ClassLookup
	case nfsproto.ProcRead:
		return ClassRead
	case nfsproto.ProcWrite:
		return ClassWrite
	default:
		return ClassOther
	}
}

// Big reports whether the class is one of the large-transfer RPCs whose
// RTT variance demanded A+4D instead of A+2D.
func (c Class) Big() bool { return c == ClassRead || c == ClassWrite }

func (c Class) String() string {
	switch c {
	case ClassGetattr:
		return "getattr"
	case ClassLookup:
		return "lookup"
	case ClassRead:
		return "read"
	case ClassWrite:
		return "write"
	default:
		return "other"
	}
}

// TracePoint is one sample for the Graph 7 style RTT/RTO trace.
type TracePoint struct {
	At   sim.Time
	Proc uint32
	RTT  sim.Time
	RTO  sim.Time
}

// Stats counts transport behaviour.
type Stats struct {
	Calls      int
	Replies    int
	Retries    int
	Failures   int
	ByClass    [NumClasses]int
	RetryClass [NumClasses]int
	// Trace collects per-reply samples for procedures in TraceProcs.
	Trace []TracePoint
}

// Transport issues NFS RPCs. Call blocks the calling process until the
// reply arrives (retransmitting under the hood) and returns a decoder
// positioned at the procedure results.
type Transport interface {
	// Call issues procedure proc with arguments encoded by args (which may
	// be nil for void arguments). The closure may be invoked several times
	// — once per (re)transmission — so it must be repeatable: bulk data
	// must be encoded from stable storage, not from a consumable chain.
	Call(p *sim.Proc, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error)
	// Stats exposes counters; the pointer stays valid for the transport's
	// lifetime.
	Stats() *Stats
	// Close shuts the transport down.
	Close()
}

// estimator is the Jacobson mean/deviation pair (A and D in the paper)
// for one RPC class.
type estimator struct {
	srtt   sim.Time
	rttvar sim.Time
	valid  bool
	factor sim.Time // RTO = A + factor*D
}

// sample folds in one round-trip measurement.
func (e *estimator) sample(rtt sim.Time) {
	if !e.valid {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.valid = true
		return
	}
	delta := rtt - e.srtt
	e.srtt += delta / 8
	if delta < 0 {
		delta = -delta
	}
	e.rttvar += (delta - e.rttvar) / 4
}

// sampleTraced folds in one measurement and returns the estimator's new
// state (smoothed RTT and the RTO it now implies) so callers can emit an
// RTTSample lifecycle event without re-deriving it.
func (e *estimator) sampleTraced(rtt, def, min, max sim.Time) (srtt, rto sim.Time) {
	e.sample(rtt)
	return e.srtt, e.rto(def, min, max)
}

// rto returns A + factor*D, or def before any sample, clamped.
func (e *estimator) rto(def, min, max sim.Time) sim.Time {
	r := def
	if e.valid {
		r = e.srtt + e.factor*e.rttvar
	}
	if r < min {
		r = min
	}
	if r > max {
		r = max
	}
	return r
}

// ProgramCaller is implemented by transports that can call RPC programs
// other than NFS — the MOUNT protocol in particular.
type ProgramCaller interface {
	CallProgram(p *sim.Proc, prog, vers, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error)
}

// buildCall encodes a full RPC CALL message.
func buildCall(xid, prog, vers, proc uint32, args func(e *xdr.Encoder)) *mbuf.Chain {
	c := &mbuf.Chain{}
	rpc.EncodeCall(c, &rpc.Call{XID: xid, Prog: prog, Vers: vers, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(c))
	}
	return c
}

// decodeReply validates the RPC reply header and returns a decoder at the
// results.
func decodeReply(msg *mbuf.Chain) (*xdr.Decoder, error) {
	d := xdr.NewDecoder(msg)
	r, err := rpc.DecodeReply(d)
	if err != nil {
		return nil, err
	}
	if r.Denied {
		return nil, errors.New("transport: rpc denied")
	}
	if r.AcceptStat != rpc.Success {
		return nil, errors.New("transport: rpc error status")
	}
	return d, nil
}

// Timing constants.
const (
	// NFSTick is the client NFS timer granularity (NFS_HZ = 10 in the
	// BSD code); the tuned code recomputes RTOs on every tick rather than
	// at send time.
	NFSTick = 100 * time.Millisecond
	// MinRTO/MaxRTO clamp dynamic timeouts (2 ticks .. 30 s).
	MinRTO = 200 * time.Millisecond
	MaxRTO = 30 * time.Second
)
