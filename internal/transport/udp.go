package transport

import (
	"fmt"
	"time"

	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

// UDPConfig selects between the classic fixed-RTO scheme and the paper's
// tuned dynamic scheme, and exposes the knobs the §4 ablations turn.
type UDPConfig struct {
	// Dynamic enables per-class RTO estimation and the congestion window.
	Dynamic bool
	// Timeo is the mount's initial/fixed RTO (default 1s, the value the
	// paper found could not safely be lowered).
	Timeo sim.Time
	// Retrans bounds retransmissions per call before failing (soft mount);
	// 0 means effectively hard-mount (a large bound).
	Retrans int
	// BigFactor is the deviation multiplier for read/write (paper: 4,
	// after finding 2 caused 2-4x the retry rate).
	BigFactor int
	// SmallFactor is the multiplier for getattr/lookup (2).
	SmallFactor int
	// SlowStart re-enables the slow start the paper removed (for the
	// ablation; found to hurt).
	SlowStart bool
	// RecalcAtSendOnly computes each request's deadline once at transmit
	// time instead of refreshing it every NFS tick (ablation of the second
	// §4 change).
	RecalcAtSendOnly bool
	// CwndInit and CwndMax bound the congestion window (requests).
	CwndInit float64
	CwndMax  float64
	// TraceProc records TracePoints for this procedure (e.g. ProcRead for
	// Graph 7); negative disables tracing.
	TraceProc int
	// Tracer, when set, receives typed RPC lifecycle events (call sent,
	// retransmit, RTT sample with the new SRTT/RTO, cwnd changes, reply).
	Tracer metrics.Tracer
}

// FixedUDP returns the classic configuration.
func FixedUDP() UDPConfig {
	return UDPConfig{Dynamic: false, Timeo: time.Second, BigFactor: 4, SmallFactor: 2, TraceProc: -1}
}

// DynamicUDP returns the paper's tuned configuration.
func DynamicUDP() UDPConfig {
	return UDPConfig{Dynamic: true, Timeo: time.Second, BigFactor: 4, SmallFactor: 2,
		CwndInit: 4, CwndMax: 32, TraceProc: -1}
}

// udpPending is one in-flight request. Retransmission re-encodes from the
// recorded argument closure (reqChain), which is cheaper than cloning
// chains whose payload views are consumed by the send path.
type udpPending struct {
	xid      uint32
	class    Class
	sentAt   sim.Time
	deadline sim.Time
	backoff  int
	retried  bool
	rtoAtTx  sim.Time
	done     *sim.Event
	reply    *xdr.Decoder
	err      error
}

// UDP is the datagram transport.
type UDP struct {
	cfg    UDPConfig
	sock   *netsim.UDPSocket
	server netsim.NodeID
	port   int
	env    *sim.Env

	xid     uint32
	pending map[uint32]*udpPending
	chains  map[uint32]*reqChain
	est     [NumClasses]estimator
	cwnd    float64
	waiters *sim.Cond
	closed  bool
	stats   Stats
}

type reqChain struct {
	prog uint32
	vers uint32
	proc uint32
	args func(e *xdr.Encoder)
}

// NewUDP creates a UDP transport from the client node to (server, port).
func NewUDP(node *netsim.Node, localPort int, server netsim.NodeID, port int, cfg UDPConfig) *UDP {
	if cfg.Timeo == 0 {
		cfg.Timeo = time.Second
	}
	if cfg.Retrans == 0 {
		cfg.Retrans = 50
	}
	if cfg.BigFactor == 0 {
		cfg.BigFactor = 4
	}
	if cfg.SmallFactor == 0 {
		cfg.SmallFactor = 2
	}
	if cfg.CwndInit == 0 {
		cfg.CwndInit = 4
	}
	if cfg.CwndMax == 0 {
		cfg.CwndMax = 32
	}
	env := node.Net().Env
	t := &UDP{
		cfg:     cfg,
		sock:    node.UDPSocket(localPort),
		server:  server,
		port:    port,
		env:     env,
		pending: make(map[uint32]*udpPending),
		chains:  make(map[uint32]*reqChain),
		cwnd:    cfg.CwndInit,
		waiters: sim.NewCond(env),
	}
	for c := Class(0); c < NumClasses; c++ {
		f := sim.Time(cfg.SmallFactor)
		if c.Big() {
			f = sim.Time(cfg.BigFactor)
		}
		t.est[c].factor = f
	}
	env.Spawn(fmt.Sprintf("%s.udprpc-rx", node.Name), t.rxLoop)
	env.Spawn(fmt.Sprintf("%s.udprpc-timer", node.Name), t.timerLoop)
	return t
}

// Stats returns the transport counters.
func (t *UDP) Stats() *Stats { return &t.stats }

// Estimator exposes (A, D, RTO) for a class, for traces and tests.
func (t *UDP) Estimator(c Class) (srtt, rttvar, rto sim.Time) {
	e := &t.est[c]
	return e.srtt, e.rttvar, e.rto(t.cfg.Timeo, MinRTO, MaxRTO)
}

// Cwnd returns the current congestion window (requests).
func (t *UDP) Cwnd() float64 { return t.cwnd }

// Close shuts the transport down; pending calls fail.
func (t *UDP) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, pc := range t.pending {
		if pc.done.IsSet() {
			continue
		}
		pc.err = ErrClosed
		metrics.Emit(t.cfg.Tracer, metrics.CallFailed{Proc: dgProc(t, pc.xid), XID: pc.xid, Reason: "closed"})
		pc.done.Set()
	}
	t.pending = make(map[uint32]*udpPending)
	t.sock.Close()
	t.waiters.Broadcast()
}

// rtoFor returns the current timeout for a class under the configuration.
func (t *UDP) rtoFor(c Class) sim.Time {
	if !t.cfg.Dynamic {
		return t.cfg.Timeo
	}
	switch c {
	case ClassGetattr, ClassLookup, ClassRead, ClassWrite:
		return t.est[c].rto(t.cfg.Timeo, MinRTO, MaxRTO)
	default:
		// Infrequent, mostly non-idempotent RPCs keep the conservative
		// mount constant.
		return t.cfg.Timeo
	}
}

// Call implements Transport.
func (t *UDP) Call(p *sim.Proc, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	return t.CallProgram(p, nfsproto.Program, nfsproto.Version, proc, args)
}

// CallProgram implements ProgramCaller (used by the MOUNT protocol).
func (t *UDP) CallProgram(p *sim.Proc, prog, vers, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	if t.closed {
		return nil, ErrClosed
	}
	// Congestion window: cap outstanding requests (dynamic mode only).
	if t.cfg.Dynamic {
		for !t.closed && float64(len(t.pending)) >= t.cwnd {
			t.waiters.Wait(p)
		}
		if t.closed {
			return nil, ErrClosed
		}
	}
	t.xid++
	xid := t.xid
	class := ClassOf(proc)
	t.stats.Calls++
	t.stats.ByClass[class]++
	metrics.Emit(t.cfg.Tracer, metrics.CallSent{Proc: proc, XID: xid})
	pc := &udpPending{
		xid:    xid,
		class:  class,
		sentAt: p.Now(),
		done:   sim.NewEvent(t.env),
	}
	t.pending[xid] = pc
	t.chains[xid] = &reqChain{prog: prog, vers: vers, proc: proc, args: args}
	t.send(p, pc)
	pc.done.Wait(p)
	delete(t.pending, xid)
	delete(t.chains, xid)
	if t.cfg.Dynamic {
		t.waiters.Broadcast()
	}
	if pc.err != nil {
		t.stats.Failures++
		return nil, pc.err
	}
	return pc.reply, nil
}

// send (re)transmits a request and stamps its deadline.
func (t *UDP) send(p *sim.Proc, pc *udpPending) {
	rc := t.chains[pc.xid]
	if rc == nil {
		return
	}
	rto := t.rtoFor(pc.class)
	if pc.backoff > 0 {
		rto *= sim.Time(uint(1) << uint(min(pc.backoff, 10)))
		if rto > MaxRTO {
			rto = MaxRTO
		}
	}
	pc.rtoAtTx = rto
	pc.deadline = t.env.Now() + rto
	msg := buildCall(pc.xid, rc.prog, rc.vers, rc.proc, rc.args)
	t.sock.Send(p, t.server, t.port, msg)
}

// rxLoop matches replies to pending calls.
func (t *UDP) rxLoop(p *sim.Proc) {
	for {
		dg, ok := t.sock.Recv(p)
		if !ok {
			return
		}
		xid, err := rpc.PeekXID(dg.Payload)
		if err != nil {
			continue
		}
		pc := t.pending[xid]
		if pc == nil || pc.done.IsSet() {
			continue // late duplicate reply
		}
		dec, err := decodeReply(dg.Payload)
		if err != nil {
			continue
		}
		rtt := p.Now() - pc.sentAt
		if t.cfg.Dynamic {
			// Karn's rule: only time unambiguous (non-retried) replies.
			if !pc.retried {
				switch pc.class {
				case ClassGetattr, ClassLookup, ClassRead, ClassWrite:
					srtt, newRTO := t.est[pc.class].sampleTraced(rtt, t.cfg.Timeo, MinRTO, MaxRTO)
					metrics.Emit(t.cfg.Tracer, metrics.RTTSample{
						Proc: dgProc(t, xid), Class: pc.class.String(),
						RTT: rtt, SRTT: srtt, RTO: newRTO,
					})
				}
			}
			// Congestion window opens by one request per window's worth of
			// replies (linear growth; slow start removed per the paper).
			if t.cfg.SlowStart && t.cwnd < 8 {
				t.cwnd++
			} else {
				t.cwnd += 1 / t.cwnd
			}
			if t.cwnd > t.cfg.CwndMax {
				t.cwnd = t.cfg.CwndMax
			}
			metrics.Emit(t.cfg.Tracer, metrics.CwndChange{Cwnd: t.cwnd})
			t.waiters.Broadcast()
		}
		if int(dgProc(t, xid)) == t.cfg.TraceProc {
			t.stats.Trace = append(t.stats.Trace, TracePoint{
				At: p.Now(), Proc: uint32(t.cfg.TraceProc), RTT: rtt, RTO: pc.rtoAtTx,
			})
		}
		t.stats.Replies++
		metrics.Emit(t.cfg.Tracer, metrics.Reply{Proc: dgProc(t, xid), XID: xid, RTT: rtt})
		pc.reply = dec
		pc.done.Set()
	}
}

// dgProc recovers the procedure of a pending xid for tracing.
func dgProc(t *UDP, xid uint32) uint32 {
	if rc := t.chains[xid]; rc != nil {
		return rc.proc
	}
	return ^uint32(0)
}

// timerLoop is the NFS client timer: every tick it scans pending requests
// and retransmits the expired, recomputing deadlines from the freshest
// estimates (unless the ablation pins them at send time).
func (t *UDP) timerLoop(p *sim.Proc) {
	for !t.closed {
		p.Sleep(NFSTick)
		now := p.Now()
		for _, pc := range t.pending {
			if pc.done.IsSet() {
				continue
			}
			deadline := pc.deadline
			if t.cfg.Dynamic && !t.cfg.RecalcAtSendOnly {
				// Refresh from the current estimator so the newest A and D
				// are used (§4's second retry-rate fix).
				rto := t.rtoFor(pc.class)
				if pc.backoff > 0 {
					rto *= sim.Time(uint(1) << uint(min(pc.backoff, 10)))
					if rto > MaxRTO {
						rto = MaxRTO
					}
				}
				deadline = pc.sentAt + rto
			}
			if now < deadline {
				continue
			}
			if pc.backoff >= t.cfg.Retrans {
				pc.err = ErrCallTimeout
				metrics.Emit(t.cfg.Tracer, metrics.CallFailed{Proc: dgProc(t, pc.xid), XID: pc.xid, Reason: "timeout"})
				pc.done.Set()
				continue
			}
			pc.retried = true
			pc.backoff++
			pc.sentAt = now
			t.stats.Retries++
			t.stats.RetryClass[pc.class]++
			if t.cfg.Dynamic {
				t.cwnd = t.cwnd / 2
				if t.cwnd < 1 {
					t.cwnd = 1
				}
				metrics.Emit(t.cfg.Tracer, metrics.CwndChange{Cwnd: t.cwnd})
			}
			t.send(p, pc)
			proc := dgProc(t, pc.xid)
			metrics.Emit(t.cfg.Tracer, metrics.Retransmit{
				Proc: proc, XID: pc.xid, Backoff: pc.backoff, RTO: pc.rtoAtTx,
			})
			if pc.backoff > 1 {
				// The exponential timer backoff only bites from the second
				// retransmission on (backoff 1 retransmits at the base RTO).
				metrics.Emit(t.cfg.Tracer, metrics.RTOBackoff{
					Proc: proc, Backoff: pc.backoff, RTO: pc.rtoAtTx,
				})
			}
		}
	}
}
