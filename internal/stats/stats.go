// Package stats provides the small measurement toolkit the experiments
// use: streaming summaries, sampled percentiles, time series for the
// paper's graphs, and a plain-text table writer for the harness output.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Summary accumulates a stream of values.
type Summary struct {
	Count   int
	Sum     float64
	Min     float64
	Max     float64
	samples []float64
	cap     int
	rng     *rand.Rand
}

// NewSummary returns a summary retaining up to capacity samples for
// percentile queries (0 keeps everything).
func NewSummary(capacity int) *Summary {
	// The reservoir RNG is seeded with a fixed constant so experiment runs
	// stay reproducible; independence between summaries is irrelevant here.
	return &Summary{
		Min: math.Inf(1), Max: math.Inf(-1), cap: capacity,
		rng: rand.New(rand.NewSource(0x4e4653)),
	}
}

// Add folds in one observation.
func (s *Summary) Add(v float64) {
	s.Count++
	s.Sum += v
	if v < s.Min {
		s.Min = v
	}
	if v > s.Max {
		s.Max = v
	}
	if s.cap == 0 || len(s.samples) < s.cap {
		s.samples = append(s.samples, v)
		return
	}
	// Vitter's Algorithm R: keep the n-th observation with probability
	// cap/n, evicting a uniformly random resident. Every observation ends
	// up retained with equal probability cap/n, so the percentile queries
	// see an unbiased sample of the whole stream. (The previous
	// Count%len(samples) replacement was deterministic and overweighted the
	// tail of the stream.)
	if s.rng == nil { // zero-value Summary, not via NewSummary
		s.rng = rand.New(rand.NewSource(0x4e4653))
	}
	if j := s.rng.Intn(s.Count); j < len(s.samples) {
		s.samples[j] = v
	}
}

// AddDuration folds in a duration in milliseconds.
func (s *Summary) AddDuration(d time.Duration) {
	s.Add(float64(d) / float64(time.Millisecond))
}

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Percentile returns the p-th percentile (0 < p <= 100) of retained
// samples.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	sorted := append([]float64(nil), s.samples...)
	sort.Float64s(sorted)
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String summarizes for logs.
func (s *Summary) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f p95=%.2f max=%.2f",
		s.Count, s.Mean(), s.Min, s.Percentile(95), s.Max)
}

// Point is one (x, y) sample of a graph series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points — one line on one of the paper's
// graphs.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Table renders rows of labelled columns as aligned text, the harness's
// output format for the paper's tables and graph data.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case time.Duration:
			row[i] = fmt.Sprintf("%.1f", float64(v)/float64(time.Millisecond))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
