package stats

import (
	"strings"
	"testing"
	"time"
)

func TestSummaryBasics(t *testing.T) {
	s := NewSummary(0)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		s.Add(v)
	}
	if s.Count != 5 || s.Mean() != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if p := s.Percentile(50); p != 3 {
		t.Fatalf("p50 = %v", p)
	}
	if p := s.Percentile(100); p != 5 {
		t.Fatalf("p100 = %v", p)
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary(4)
	if s.Mean() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary not zero")
	}
	if !strings.Contains(s.String(), "n=0") {
		t.Fatal("bad empty string")
	}
}

func TestSummaryReservoirBounded(t *testing.T) {
	s := NewSummary(10)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	if len(s.samples) != 10 {
		t.Fatalf("samples = %d", len(s.samples))
	}
	if s.Count != 1000 || s.Max != 999 {
		t.Fatalf("stats lost: %+v", s)
	}
}

func TestSummarySingleSample(t *testing.T) {
	s := NewSummary(8)
	s.Add(3.7)
	for _, p := range []float64{1, 50, 99, 100} {
		if got := s.Percentile(p); got != 3.7 {
			t.Fatalf("p%v = %v, want 3.7", p, got)
		}
	}
	if s.Min != 3.7 || s.Max != 3.7 || s.Mean() != 3.7 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummaryReservoirUnbiased(t *testing.T) {
	// Feed a stream whose first half is 0 and second half is 1. An
	// unbiased reservoir retains roughly half of each; the old
	// Count%len(samples) replacement kept only the tail of the stream.
	s := NewSummary(100)
	for i := 0; i < 10000; i++ {
		v := 0.0
		if i >= 5000 {
			v = 1.0
		}
		s.Add(v)
	}
	ones := 0
	for _, v := range s.samples {
		if v == 1.0 {
			ones++
		}
	}
	// Binomial(100, 0.5): outside [20, 80] is astronomically unlikely.
	if ones < 20 || ones > 80 {
		t.Fatalf("reservoir kept %d/100 tail samples, want ~50", ones)
	}
}

func TestSummaryReservoirDeterministic(t *testing.T) {
	run := func() []float64 {
		s := NewSummary(16)
		for i := 0; i < 1000; i++ {
			s.Add(float64(i))
		}
		return append([]float64(nil), s.samples...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSummaryZeroValue(t *testing.T) {
	// A zero-value Summary (not via NewSummary) with a capacity set by
	// hand must not crash when the reservoir overflows.
	s := Summary{cap: 4}
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	if len(s.samples) != 4 || s.Count != 100 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestAddDuration(t *testing.T) {
	s := NewSummary(0)
	s.AddDuration(250 * time.Millisecond)
	if s.Mean() != 250 {
		t.Fatalf("mean = %v ms", s.Mean())
	}
}

func TestSeries(t *testing.T) {
	var sr Series
	sr.Name = "tcp"
	sr.Add(1, 10)
	sr.Add(2, 20)
	if len(sr.Points) != 2 || sr.Points[1].Y != 20 {
		t.Fatalf("series = %+v", sr)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table #1", "transport", "rate", "rtt")
	tb.AddRow("udp-fixed", 3.5, 150*time.Millisecond)
	tb.AddRow("tcp", 11.0, 42*time.Millisecond)
	out := tb.String()
	if !strings.Contains(out, "Table #1") || !strings.Contains(out, "udp-fixed") {
		t.Fatalf("output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "150.0") || !strings.Contains(out, "11.0") {
		t.Fatalf("formatting wrong:\n%s", out)
	}
}
