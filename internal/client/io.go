package client

import (
	"fmt"
	"sort"
	"time"

	"renonfs/internal/transport"

	"renonfs/internal/mbuf"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/vfs"
	"renonfs/internal/xdr"
)

// File is an open file: a vnode plus a cursor.
type File struct {
	m      *Mount
	vn     *vnode
	Offset uint32
	closed bool
}

// Path-level operations ----------------------------------------------------

// Getattr stats a path.
func (m *Mount) Getattr(p *sim.Proc, path string) (nfsproto.Fattr, error) {
	vn, err := m.walk(p, path)
	if err != nil {
		return nfsproto.Fattr{}, err
	}
	if err := m.freshAttrs(p, vn); err != nil {
		return nfsproto.Fattr{}, err
	}
	a := vn.attr
	a.Size = vn.size
	return a, nil
}

// Setattr applies attributes to a path.
func (m *Mount) Setattr(p *sim.Proc, path string, attr nfsproto.Sattr) error {
	vn, err := m.walk(p, path)
	if err != nil {
		return err
	}
	d, err := m.call(p, nfsproto.ProcSetattr, func(e *xdr.Encoder) {
		(&nfsproto.SetattrArgs{File: vn.fh, Attr: attr}).Encode(e)
	})
	if err != nil {
		return err
	}
	res, err := nfsproto.DecodeAttrRes(d)
	if err != nil {
		return err
	}
	if res.Status != nfsproto.OK {
		return res.Status.Error()
	}
	m.updateAttrs(vn, res.Attr, true)
	if attr.Size != nfsproto.NoValue {
		vn.size = attr.Size
		m.invalidate(vn)
		vn.cachedMtime = res.Attr.Mtime
	}
	return nil
}

// Open opens an existing file, performing the close/open consistency check.
func (m *Mount) Open(p *sim.Proc, path string) (*File, error) {
	vn, err := m.walk(p, path)
	if err != nil {
		return nil, err
	}
	if vn.attrValid && vn.attr.Type == nfsproto.TypeDir {
		return nil, ErrIsDir
	}
	// Under a lease the cache is valid by contract — no getattr, no purge.
	if !m.getLease(p, vn, nfsproto.LeaseRead) {
		if err := m.checkConsistency(p, vn); err != nil {
			return nil, err
		}
	}
	return &File{m: m, vn: vn}, nil
}

// Create creates (or truncates) a file and opens it.
func (m *Mount) Create(p *sim.Proc, path string, mode uint32) (*File, error) {
	dir, name, err := m.walkParent(p, path)
	if err != nil {
		return nil, err
	}
	attr := nfsproto.NewSattr()
	attr.Mode = mode
	attr.Size = 0
	// A truncating create must not race the target's own write-behind:
	// discard the doomed dirty blocks and wait out any flush already in
	// flight, or a stale WRITE landing after the truncate resurrects the
	// old bytes. (Without leases push-on-close drains this at close; with
	// a write lease the dirty data legitimately outlives the close.)
	if vid, vgen, neg, found := m.namec.Lookup(dir.fileid, dir.gen, name); found && !neg {
		if old := m.vns[vnKey{vid, vgen}]; old != nil {
			m.bufc.InvalidateVnode(old.fileid, old.gen)
			m.dropLease(old)
			for old.pendingFlushes > 0 {
				old.flushDone.Wait(p)
			}
		}
	}
	var d *xdr.Decoder
	var res *nfsproto.DiropRes
	for attempt := 0; ; attempt++ {
		var err error
		d, err = m.call(p, nfsproto.ProcCreate, func(e *xdr.Encoder) {
			(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: dir.fh, Name: name}, Attr: attr}).Encode(e)
			// A create is almost always followed by writes: ask for the write
			// lease up front so the data path never needs an explicit LEASE RPC.
			if m.wantHint() {
				m.leaseHint(e, nfsproto.LeaseWrite)
			}
		})
		if err != nil {
			return nil, err
		}
		if res, err = nfsproto.DecodeDiropRes(d); err != nil {
			return nil, err
		}
		if res.Status == nfsproto.ErrTryLater && attempt < 8 {
			// Truncating a foreign-leased file: the server is evicting the
			// holder for us.
			tryLaterBackoff(p, attempt)
			continue
		}
		break
	}
	if res.Status != nfsproto.OK {
		return nil, res.Status.Error()
	}
	vn := m.getVnode(res.File)
	m.updateAttrs(vn, res.Attr, true)
	m.absorbPiggy(p, d, vn)
	vn.cachedMtime = res.Attr.Mtime // our own create: cache (empty) is valid
	vn.size = 0
	m.bufc.InvalidateVnode(vn.fileid, vn.gen)
	m.namec.Enter(dir.fileid, dir.gen, name, vn.fileid, vn.gen)
	// The create changed the directory; keep its cached mtime honest so the
	// next consistency check does not purge the whole directory cache.
	dir.attrValid = false
	return &File{m: m, vn: vn}, nil
}

// Mkdir creates a directory.
func (m *Mount) Mkdir(p *sim.Proc, path string, mode uint32) error {
	dir, name, err := m.walkParent(p, path)
	if err != nil {
		return err
	}
	attr := nfsproto.NewSattr()
	attr.Mode = mode
	d, err := m.call(p, nfsproto.ProcMkdir, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: dir.fh, Name: name}, Attr: attr}).Encode(e)
	})
	if err != nil {
		return err
	}
	res, err := nfsproto.DecodeDiropRes(d)
	if err != nil {
		return err
	}
	if res.Status != nfsproto.OK {
		return res.Status.Error()
	}
	vn := m.getVnode(res.File)
	m.updateAttrs(vn, res.Attr, false)
	m.namec.Enter(dir.fileid, dir.gen, name, vn.fileid, vn.gen)
	dir.attrValid = false
	return nil
}

// Remove unlinks a file.
func (m *Mount) Remove(p *sim.Proc, path string) error {
	dir, name, err := m.walkParent(p, path)
	if err != nil {
		return err
	}
	// Discard any dirty blocks for the victim: they will never be needed.
	// The lease goes too — renewing a lease on an unlinked file is wasted
	// work at best. Wait out in-flight flushes so no stale WRITE chases
	// the REMOVE onto the server.
	if vid, vgen, neg, found := m.namec.Lookup(dir.fileid, dir.gen, name); found && !neg {
		if vn := m.vns[vnKey{vid, vgen}]; vn != nil {
			m.bufc.InvalidateVnode(vn.fileid, vn.gen)
			m.dropLease(vn)
			for vn.pendingFlushes > 0 {
				vn.flushDone.Wait(p)
			}
		}
	}
	for attempt := 0; ; attempt++ {
		d, err := m.call(p, nfsproto.ProcRemove, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: dir.fh, Name: name}).Encode(e)
		})
		if err != nil {
			return err
		}
		res, err := nfsproto.DecodeStatusRes(d)
		if err != nil {
			return err
		}
		if res.Status == nfsproto.ErrTryLater && attempt < 8 {
			tryLaterBackoff(p, attempt)
			continue
		}
		m.namec.Remove(dir.fileid, dir.gen, name)
		dir.attrValid = false
		return res.Status.Error()
	}
}

// Rmdir removes a directory.
func (m *Mount) Rmdir(p *sim.Proc, path string) error {
	dir, name, err := m.walkParent(p, path)
	if err != nil {
		return err
	}
	d, err := m.call(p, nfsproto.ProcRmdir, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: dir.fh, Name: name}).Encode(e)
	})
	if err != nil {
		return err
	}
	res, err := nfsproto.DecodeStatusRes(d)
	if err != nil {
		return err
	}
	m.namec.Remove(dir.fileid, dir.gen, name)
	dir.attrValid = false
	return res.Status.Error()
}

// Rename moves a file or directory.
func (m *Mount) Rename(p *sim.Proc, fromPath, toPath string) error {
	fromDir, fromName, err := m.walkParent(p, fromPath)
	if err != nil {
		return err
	}
	toDir, toName, err := m.walkParent(p, toPath)
	if err != nil {
		return err
	}
	d, err := m.call(p, nfsproto.ProcRename, func(e *xdr.Encoder) {
		(&nfsproto.RenameArgs{
			From: nfsproto.DiropArgs{Dir: fromDir.fh, Name: fromName},
			To:   nfsproto.DiropArgs{Dir: toDir.fh, Name: toName},
		}).Encode(e)
	})
	if err != nil {
		return err
	}
	res, err := nfsproto.DecodeStatusRes(d)
	if err != nil {
		return err
	}
	m.namec.Remove(fromDir.fileid, fromDir.gen, fromName)
	m.namec.Remove(toDir.fileid, toDir.gen, toName)
	fromDir.attrValid = false
	toDir.attrValid = false
	return res.Status.Error()
}

// Symlink creates a symbolic link.
func (m *Mount) Symlink(p *sim.Proc, path, target string) error {
	dir, name, err := m.walkParent(p, path)
	if err != nil {
		return err
	}
	d, err := m.call(p, nfsproto.ProcSymlink, func(e *xdr.Encoder) {
		(&nfsproto.SymlinkArgs{From: nfsproto.DiropArgs{Dir: dir.fh, Name: name}, To: target, Attr: nfsproto.NewSattr()}).Encode(e)
	})
	if err != nil {
		return err
	}
	res, err := nfsproto.DecodeStatusRes(d)
	if err != nil {
		return err
	}
	dir.attrValid = false
	return res.Status.Error()
}

// Readlink reads a symlink target.
func (m *Mount) Readlink(p *sim.Proc, path string) (string, error) {
	vn, err := m.walk(p, path)
	if err != nil {
		return "", err
	}
	d, err := m.call(p, nfsproto.ProcReadlink, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: vn.fh}).Encode(e)
	})
	if err != nil {
		return "", err
	}
	res, err := nfsproto.DecodeReadlinkRes(d)
	if err != nil {
		return "", err
	}
	if res.Status != nfsproto.OK {
		return "", res.Status.Error()
	}
	return res.Path, nil
}

// ReadDir lists a directory, serving repeats from the cached listing while
// the directory's mtime holds.
func (m *Mount) ReadDir(p *sim.Proc, path string) ([]nfsproto.DirEntry, error) {
	vn, err := m.walk(p, path)
	if err != nil {
		return nil, err
	}
	if err := m.checkConsistency(p, vn); err != nil {
		return nil, err
	}
	if vn.dirCache != nil && vn.dirCacheMtime == vn.attr.Mtime {
		return vn.dirCache, nil
	}
	var all []nfsproto.DirEntry
	cookie := uint32(0)
	for {
		d, err := m.call(p, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
			(&nfsproto.ReaddirArgs{Dir: vn.fh, Cookie: cookie, Count: nfsproto.MaxData}).Encode(e)
		})
		if err != nil {
			return nil, err
		}
		res, err := nfsproto.DecodeReaddirRes(d)
		if err != nil {
			return nil, err
		}
		if res.Status != nfsproto.OK {
			return nil, res.Status.Error()
		}
		all = append(all, res.Entries...)
		if res.EOF || len(res.Entries) == 0 {
			break
		}
		cookie = res.Entries[len(res.Entries)-1].Cookie
	}
	vn.dirCache = all
	vn.dirCacheMtime = vn.attr.Mtime
	return all, nil
}

// Statfs queries filesystem capacity.
func (m *Mount) Statfs(p *sim.Proc) (*nfsproto.StatfsRes, error) {
	d, err := m.call(p, nfsproto.ProcStatfs, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: m.root.fh}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	res, err := nfsproto.DecodeStatfsRes(d)
	if err != nil {
		return nil, err
	}
	if res.Status != nfsproto.OK {
		return nil, res.Status.Error()
	}
	return res, nil
}

// File I/O ------------------------------------------------------------------

// Rsize returns the current adaptive read transfer size.
func (m *Mount) Rsize() int { return m.curRsize() }

// curRsize returns the current read transfer size (a power of two within
// [1K, BlockSize]); without AdaptiveRsize it is always a full block.
func (m *Mount) curRsize() int {
	if !m.Opts.AdaptiveRsize {
		return vfs.BlockSize
	}
	if m.rsize < 1024 {
		m.rsize = 1024
	}
	if m.rsize > vfs.BlockSize {
		m.rsize = vfs.BlockSize
	}
	return m.rsize
}

// adaptRead updates the transfer-size controller after one read RPC: any
// retransmission (fragment loss) halves the size; a clean streak doubles
// it back toward the full block (§4's "adjust the size dynamically, based
// on the IP fragment drop rate").
func (m *Mount) adaptRead(retried bool) {
	if !m.Opts.AdaptiveRsize {
		return
	}
	if retried {
		m.rsize = m.curRsize() / 2
		if m.rsize < 1024 {
			m.rsize = 1024
		}
		m.goodReads = 0
		return
	}
	m.goodReads++
	if m.goodReads >= 25 && m.rsize < vfs.BlockSize {
		m.rsize *= 2
		m.goodReads = 0
	}
}

// readRPC fetches one block-aligned extent from the server into the
// cache, in curRsize-sized transfers. TRYLATER answers (a lease being
// vacated for us) are retried with backoff.
func (m *Mount) readRPC(p *sim.Proc, vn *vnode, block uint32) error {
	var page [vfs.BlockSize]byte
	base := block * vfs.BlockSize
	got := 0
	for off := 0; off < vfs.BlockSize; {
		size := m.curRsize()
		if off+size > vfs.BlockSize {
			size = vfs.BlockSize - off
		}
		var res *nfsproto.ReadRes
		for attempt := 0; ; attempt++ {
			before := m.tr.Stats().RetryClass[transport.ClassRead]
			off32 := base + uint32(off)
			d, err := m.call(p, nfsproto.ProcRead, func(e *xdr.Encoder) {
				(&nfsproto.ReadArgs{File: vn.fh, Offset: off32, Count: uint32(size)}).Encode(e)
			})
			if err != nil {
				m.adaptRead(true)
				return err
			}
			m.adaptRead(m.tr.Stats().RetryClass[transport.ClassRead] > before)
			if res, err = nfsproto.DecodeReadRes(d); err != nil {
				return err
			}
			if res.Status != nfsproto.ErrTryLater {
				break
			}
			if attempt >= 8 {
				return res.Status.Error()
			}
			tryLaterBackoff(p, attempt)
		}
		if res.Status != nfsproto.OK {
			return res.Status.Error()
		}
		m.updateAttrs(vn, res.Attr, false)
		n := res.Data.CopyTo(page[off:])
		m.Stats.ReadBytes += n
		got = off + n
		off += size
		if n < size {
			break // EOF inside the block
		}
	}
	key := vfs.BufKey{Vnode: vn.fileid, Gen: vn.gen, Block: block}
	b := m.bufc.Peek(key)
	if b == nil {
		var victim *vfs.Buf
		b, victim = m.bufc.Insert(key)
		if victim != nil && victim.Dirty {
			// Async: this path can run inside a biod (read-ahead), where
			// waiting for another queued job could deadlock.
			m.flushBufAsync(p, victim)
		}
	}
	// Merge around the buffer's valid region: those bytes are at least as
	// new as the server's (local writes, possibly extracted for an async
	// flush that is still in flight), so the fetch only fills the gaps.
	// Overwriting them with the server's copy would lose data.
	data := b.EnsureData()
	if b.ValidEnd > b.ValidOff {
		copy(data[:b.ValidOff], page[:b.ValidOff])
		copy(data[b.ValidEnd:], page[b.ValidEnd:])
	} else {
		copy(data, page[:])
	}
	m.charge(p, "usercopy", costUserCopyByte*float64(got))
	b.SetValid(0, vfs.BlockSize) // short reads mean EOF; the tail is zeros
	return nil
}

// Read reads from the file at its cursor.
func (f *File) Read(p *sim.Proc, dst []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	m := f.m
	vn := f.vn
	m.charge(p, "syscall", costSyscall)
	if m.Opts.UseLeases && m.leaseFor(vn, nfsproto.LeaseRead) != nil {
		// Leased: the cache is coherent by contract; skip both the
		// flush-before-read and the mtime check.
	} else {
		// Reno pushes the file's dirty blocks to the server before
		// reading (§5) — after which the mtime check below purges and
		// re-reads.
		if m.Opts.FlushBeforeRead && m.Opts.Consistency {
			m.flushVnode(p, vn, true)
		}
		if err := m.checkConsistency(p, vn); err != nil {
			return 0, err
		}
	}
	if f.Offset >= vn.size {
		return 0, nil // EOF
	}
	want := uint32(len(dst))
	if f.Offset+want > vn.size {
		want = vn.size - f.Offset
	}
	got := uint32(0)
	for got < want {
		off := f.Offset + got
		block := off / vfs.BlockSize
		bo := off % vfs.BlockSize
		n := uint32(vfs.BlockSize) - bo
		if n > want-got {
			n = want - got
		}
		key := vfs.BufKey{Vnode: vn.fileid, Gen: vn.gen, Block: block}
		b, _ := m.bufc.Lookup(key)
		if b == nil || !b.Covers(int(bo), int(bo+n)) {
			m.Stats.CacheReadMisses++
			if err := m.readRPC(p, vn, block); err != nil {
				return int(got), err
			}
			b = m.bufc.Peek(key)
			if b == nil {
				return int(got), fmt.Errorf("client: block %d vanished", block)
			}
		} else {
			m.Stats.CacheReadHits++
		}
		copy(dst[got:got+n], b.Data[bo:bo+n])
		m.charge(p, "usercopy", costUserCopyByte*float64(n))
		got += n
		// Read-ahead: prefetch the next blocks on sequential access.
		if m.Opts.ReadAhead > 0 && (!vn.hasLastRead || vn.lastReadBlock+1 == block || vn.lastReadBlock == block) {
			for ra := uint32(1); ra <= uint32(m.Opts.ReadAhead); ra++ {
				next := block + ra
				if next*vfs.BlockSize >= vn.size {
					break
				}
				nkey := vfs.BufKey{Vnode: vn.fileid, Gen: vn.gen, Block: next}
				if m.bufc.Peek(nkey) == nil {
					m.scheduleReadAhead(vn, next)
				}
			}
		}
		vn.lastReadBlock = block
		vn.hasLastRead = true
	}
	f.Offset += got
	return int(got), nil
}

// scheduleReadAhead queues an asynchronous block fetch on the biods.
func (m *Mount) scheduleReadAhead(vn *vnode, block uint32) {
	if len(m.biodQs) == 0 || m.closed {
		return
	}
	m.biodQs[int(block)%len(m.biodQs)].Send(flushJob{vn: vn, block: block, offset: block * vfs.BlockSize})
}

// Write writes at the file cursor through the cache under the mount's
// write policy.
func (f *File) Write(p *sim.Proc, src []byte) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	m := f.m
	vn := f.vn
	m.charge(p, "syscall", costSyscall)
	m.charge(p, "usercopy", costUserCopyByte*float64(len(src)))
	if m.Opts.UseLeases {
		m.getLease(p, vn, nfsproto.LeaseWrite)
	}
	done := uint32(0)
	for done < uint32(len(src)) {
		off := f.Offset + done
		block := off / vfs.BlockSize
		bo := off % vfs.BlockSize
		n := uint32(vfs.BlockSize) - bo
		if n > uint32(len(src))-done {
			n = uint32(len(src)) - done
		}
		key := vfs.BufKey{Vnode: vn.fileid, Gen: vn.gen, Block: block}
		b, _ := m.bufc.Lookup(key)
		if b == nil {
			// Without dirty-region tracking a partial write into the
			// middle of existing data must preread the block.
			partial := bo != 0 || n != vfs.BlockSize
			inFile := block*vfs.BlockSize < vn.size
			if !m.Opts.DirtyRegionTracking && partial && inFile && off < vn.size {
				m.Stats.Prereads++
				if err := m.readRPC(p, vn, block); err != nil {
					return int(done), err
				}
				b = m.bufc.Peek(key)
			}
			if b == nil {
				var victim *vfs.Buf
				b, victim = m.bufc.Insert(key)
				if victim != nil && victim.Dirty {
					m.flushBufAsync(p, victim)
				}
			}
		}
		if b.Write(int(bo), src[done:done+n]) {
			// Discontiguous dirty region: push the old one first, the way
			// the Reno client does, then retry.
			m.flushBufSync(p, b)
			b.Write(int(bo), src[done:done+n])
		}
		done += n
		if off+n > vn.size {
			vn.size = off + n
		}
		m.Stats.WriteBytes += int(n)
		// Policy decides when the block goes to the server.
		full := b.ValidEnd-b.ValidOff >= vfs.BlockSize
		switch {
		case m.Opts.Policy == WriteThrough:
			m.flushBufSync(p, b)
		case m.Opts.EagerWriteBack:
			m.flushBufAsync(p, b)
		case m.Opts.Policy == WriteAsync && full:
			m.flushBufAsync(p, b)
		}
	}
	f.Offset += done
	return int(done), nil
}

// Close pushes delayed writes (close/open consistency) unless the mount
// disabled it, and waits for the file's outstanding asynchronous writes.
func (f *File) Close(p *sim.Proc) error {
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	m := f.m
	vn := f.vn
	m.charge(p, "syscall", costSyscall)
	if m.Opts.PushOnClose {
		// The whole point of the lease extension: delayed writes survive
		// close safely, because the server will evict us before letting
		// anyone else see the file.
		if !(m.Opts.UseLeases && m.leaseFor(vn, nfsproto.LeaseWrite) != nil) {
			m.flushVnode(p, vn, true)
		}
	}
	return nil
}

// Fsync flushes the file's dirty blocks and waits.
func (f *File) Fsync(p *sim.Proc) error {
	f.m.flushVnode(p, f.vn, true)
	return nil
}

// Size returns the client's view of the file size.
func (f *File) Size() uint32 { return f.vn.size }

// Seek sets the cursor.
func (f *File) Seek(off uint32) { f.Offset = off }

// Flushing ------------------------------------------------------------------

// writeRPC sends one write RPC and updates attributes, retrying through
// TRYLATER while the server vacates a conflicting lease.
func (m *Mount) writeRPC(p *sim.Proc, vn *vnode, offset uint32, data []byte) error {
	for attempt := 0; ; attempt++ {
		d, err := m.call(p, nfsproto.ProcWrite, func(e *xdr.Encoder) {
			// Re-encodable for retransmission: the chain is rebuilt from
			// the stable byte slice on every invocation.
			(&nfsproto.WriteArgs{File: vn.fh, Offset: offset, Data: mbuf.FromBytes(data)}).Encode(e)
			// Keeps the write lease fresh while a long flush streams.
			if m.wantHint() {
				m.leaseHint(e, nfsproto.LeaseWrite)
			}
		})
		if err != nil {
			return err
		}
		res, err := nfsproto.DecodeAttrRes(d)
		if err != nil {
			return err
		}
		if res.Status == nfsproto.ErrTryLater && attempt < 8 {
			tryLaterBackoff(p, attempt)
			continue
		}
		if res.Status != nfsproto.OK {
			return res.Status.Error()
		}
		m.updateAttrs(vn, res.Attr, true)
		m.absorbPiggy(p, d, vn)
		return nil
	}
}

// extractDirty snapshots and cleans a buffer's dirty region.
func extractDirty(b *vfs.Buf) (offset int, data []byte) {
	if !b.Dirty {
		return 0, nil
	}
	off, end := b.DirtyOff, b.DirtyEnd
	data = make([]byte, end-off)
	copy(data, b.Data[off:end])
	b.MarkClean()
	return off, data
}

// enqueueFlush extracts a buffer's dirty region and queues it on the
// block's affinity biod; per-block FIFO order keeps overlapping writes to
// one block from reordering on the wire (the B_BUSY discipline). It
// reports whether anything was queued.
func (m *Mount) enqueueFlush(b *vfs.Buf) bool {
	off, data := extractDirty(b)
	if data == nil {
		return false
	}
	vn := m.vns[vnKey{b.Key.Vnode, b.Key.Gen}]
	if vn == nil {
		return false
	}
	block := b.Key.Block
	vn.pendingFlushes++
	vn.inFlight[block]++
	m.biodQs[int(block)%len(m.biodQs)].Send(flushJob{
		vn: vn, block: block, offset: block*vfs.BlockSize + uint32(off), data: data,
	})
	return true
}

// flushBufDirect writes the dirty region in the calling process (the
// no-biod configuration; everything is sequential, so ordering is free).
func (m *Mount) flushBufDirect(p *sim.Proc, b *vfs.Buf) {
	off, data := extractDirty(b)
	if data == nil {
		return
	}
	vn := m.vns[vnKey{b.Key.Vnode, b.Key.Gen}]
	if vn == nil {
		return
	}
	m.writeRPC(p, vn, b.Key.Block*vfs.BlockSize+uint32(off), data)
}

// flushBufSync pushes a buffer's dirty region and waits until every write
// for that block (including earlier asynchronous ones) has reached the
// server.
func (m *Mount) flushBufSync(p *sim.Proc, b *vfs.Buf) {
	if len(m.biodQs) == 0 {
		m.flushBufDirect(p, b)
		return
	}
	vn := m.vns[vnKey{b.Key.Vnode, b.Key.Gen}]
	if vn == nil {
		return
	}
	block := b.Key.Block
	m.enqueueFlush(b)
	for vn.inFlight[block] > 0 {
		vn.flushDone.Wait(p)
	}
}

// flushBufAsync hands a buffer's dirty region to the biods (or flushes
// directly when there are none).
func (m *Mount) flushBufAsync(p *sim.Proc, b *vfs.Buf) {
	if len(m.biodQs) == 0 {
		m.flushBufDirect(p, b)
		return
	}
	m.enqueueFlush(b)
}

// flushVnode pushes all dirty blocks of a vnode sequentially (nfs_flush
// walks the buffer list and bwrites each — which is why the paper's Table
// 5 shows "delayed write" costing about the same as write-through for a
// large file); wait also blocks until previously queued asynchronous
// writes complete.
func (m *Mount) flushVnode(p *sim.Proc, vn *vnode, wait bool) {
	for _, b := range m.bufc.DirtyBufs(vn.fileid, vn.gen) {
		if len(m.biodQs) == 0 {
			m.flushBufDirect(p, b)
		} else {
			m.flushBufSync(p, b)
		}
	}
	if wait {
		for vn.pendingFlushes > 0 {
			vn.flushDone.Wait(p)
		}
	}
}

// SyncAll pushes every dirty block in the cache (the update daemon's job
// and unmount's), in deterministic vnode order.
func (m *Mount) SyncAll(p *sim.Proc) {
	for _, vn := range m.sortedVnodes() {
		m.flushVnode(p, vn, true)
	}
}

// sortedVnodes returns the vnode table in fileid order so that flush
// sweeps do not depend on map iteration order.
func (m *Mount) sortedVnodes() []*vnode {
	out := make([]*vnode, 0, len(m.vns))
	for _, vn := range m.vns {
		out = append(out, vn)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].fileid != out[j].fileid {
			return out[i].fileid < out[j].fileid
		}
		return out[i].gen < out[j].gen
	})
	return out
}

// biod is one asynchronous I/O daemon draining its own queue: it serves
// both write-behind and read-ahead. Same-block jobs always land on the
// same biod, so writes to one block never reorder.
func (m *Mount) biod(p *sim.Proc, q *sim.Queue[flushJob]) {
	for {
		j, ok := q.Recv(p)
		if !ok {
			return
		}
		if j.data == nil {
			// Read-ahead.
			if m.bufc.Peek(vfs.BufKey{Vnode: j.vn.fileid, Gen: j.vn.gen, Block: j.block}) == nil {
				m.readRPC(p, j.vn, j.block)
			}
			continue
		}
		m.writeRPC(p, j.vn, j.offset, j.data)
		j.vn.inFlight[j.block]--
		if j.vn.inFlight[j.block] == 0 {
			delete(j.vn.inFlight, j.block)
		}
		j.vn.pendingFlushes--
		j.vn.flushDone.Broadcast()
	}
}

// updateDaemon is the 30-second delayed-write push (§1: delayed writes
// "are also pushed every 30sec for most Unix implementations").
func (m *Mount) updateDaemon(p *sim.Proc) {
	for !m.closed {
		p.Sleep(30 * time.Second)
		if m.closed {
			return
		}
		for _, vn := range m.sortedVnodes() {
			m.flushVnode(p, vn, false)
		}
	}
}
