package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
)

// rig wires a client node and a Reno server over a clean LAN.
type rig struct {
	env *sim.Env
	tb  *netsim.Testbed
	srv *server.Server
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	tb := netsim.Build(env, netsim.TopoLAN, netsim.NodeConfig{}, netsim.NodeConfig{})
	// Deterministic: remove the random loss/背景 jitter from the LAN.
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	srv.AttachNode(tb.Server)
	srv.ServeUDP(server.NFSPort)
	return &rig{env: env, tb: tb, srv: srv}
}

var portCounter = 1000

func (r *rig) mount(opts Options) *Mount {
	portCounter++
	tr := transport.NewUDP(r.tb.Client, portCounter, r.tb.Server.ID, server.NFSPort, transport.DynamicUDP())
	return NewMount(r.tb.Client, tr, r.srv.RootFH(), opts)
}

// run executes fn as a simulated process and drives the sim to completion.
func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	errc := make(chan any, 1)
	r.env.Spawn("test", func(p *sim.Proc) {
		fn(p)
		select {
		case errc <- nil:
		default:
		}
	})
	r.env.Run(30 * time.Minute)
	select {
	case <-errc:
	default:
		t.Fatal("test process did not finish (deadlock in sim?)")
	}
}

func writeFile(t *testing.T, p *sim.Proc, m *Mount, path string, data []byte) {
	t.Helper()
	f, err := m.Create(p, path, 0644)
	if err != nil {
		t.Fatalf("create %s: %v", path, err)
	}
	if _, err := f.Write(p, data); err != nil {
		t.Fatalf("write %s: %v", path, err)
	}
	if err := f.Close(p); err != nil {
		t.Fatalf("close %s: %v", path, err)
	}
}

func readFile(t *testing.T, p *sim.Proc, m *Mount, path string) []byte {
	t.Helper()
	f, err := m.Open(p, path)
	if err != nil {
		t.Fatalf("open %s: %v", path, err)
	}
	var out []byte
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(p, buf)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if n == 0 {
			break
		}
		out = append(out, buf[:n]...)
	}
	f.Close(p)
	return out
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i/255)
	}
	return b
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newRig(t, 1)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		data := pattern(20000)
		writeFile(t, p, m, "f.dat", data)
		got := readFile(t, p, m, "f.dat")
		if !bytes.Equal(got, data) {
			t.Errorf("roundtrip mismatch: %d vs %d bytes", len(got), len(data))
		}
	})
}

func TestMkdirTreeAndRename(t *testing.T) {
	r := newRig(t, 2)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		if err := m.Mkdir(p, "src", 0755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := m.Mkdir(p, "src/lib", 0755); err != nil {
			t.Fatalf("mkdir nested: %v", err)
		}
		writeFile(t, p, m, "src/lib/a.c", []byte("int main(){}"))
		if err := m.Rename(p, "src/lib/a.c", "src/b.c"); err != nil {
			t.Fatalf("rename: %v", err)
		}
		if _, err := m.Open(p, "src/lib/a.c"); !IsNoEnt(err) {
			t.Fatalf("old name open: %v", err)
		}
		if got := readFile(t, p, m, "src/b.c"); string(got) != "int main(){}" {
			t.Fatalf("renamed content: %q", got)
		}
		ents, err := m.ReadDir(p, "src")
		if err != nil {
			t.Fatalf("readdir: %v", err)
		}
		names := map[string]bool{}
		for _, e := range ents {
			names[e.Name] = true
		}
		if !names["lib"] || !names["b.c"] {
			t.Fatalf("entries: %v", ents)
		}
	})
}

func TestNameCacheCutsLookups(t *testing.T) {
	lookups := func(opts Options) int {
		r := newRig(t, 3)
		m := r.mount(opts)
		var count int
		r.run(t, func(p *sim.Proc) {
			m.Mkdir(p, "d", 0755)
			for i := 0; i < 5; i++ {
				writeFile(t, p, m, fmt.Sprintf("d/f%d", i), []byte("x"))
			}
			for round := 0; round < 10; round++ {
				for i := 0; i < 5; i++ {
					m.Getattr(p, fmt.Sprintf("d/f%d", i))
				}
			}
			count = m.Stats.RPCCount(nfsproto.ProcLookup)
		})
		return count
	}
	noCache := Reno()
	noCache.Name = "reno-nonamecache"
	noCache.NameCache = false
	with := lookups(Reno())
	without := lookups(noCache)
	if without < 2*with {
		t.Fatalf("lookup RPCs: namecache=%d none=%d; want at least 2x reduction", with, without)
	}
}

func TestAttrCacheTimeout(t *testing.T) {
	r := newRig(t, 4)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, m, "f", []byte("hello"))
		m.Getattr(p, "f")
		base := m.Stats.RPCCount(nfsproto.ProcGetattr)
		// Within the 5s attribute timeout: no new getattr RPC.
		m.Getattr(p, "f")
		m.Getattr(p, "f")
		if got := m.Stats.RPCCount(nfsproto.ProcGetattr); got != base {
			t.Errorf("getattr RPCs within timeout: %d -> %d", base, got)
		}
		p.Sleep(6 * time.Second)
		m.Getattr(p, "f")
		if got := m.Stats.RPCCount(nfsproto.ProcGetattr); got <= base {
			t.Errorf("no getattr RPC after timeout expiry")
		}
	})
}

// TestRenoRereadsOwnWrites verifies the §5 mechanism behind Table 3's read
// counts: Reno cannot attribute its own mtime changes, so write-then-read
// re-fetches from the server; Ultrix trusts its own writes and reads from
// cache; noconsist skips it all.
func TestRenoRereadsOwnWrites(t *testing.T) {
	readsAfterWrite := func(opts Options) int {
		r := newRig(t, 5)
		m := r.mount(opts)
		var count int
		r.run(t, func(p *sim.Proc) {
			data := pattern(3 * 8192)
			writeFile(t, p, m, "f", data)
			got := readFile(t, p, m, "f")
			if !bytes.Equal(got, data) {
				t.Errorf("%s: corrupted roundtrip", opts.Name)
			}
			count = m.Stats.RPCCount(nfsproto.ProcRead)
		})
		return count
	}
	reno := readsAfterWrite(Reno())
	ultrix := readsAfterWrite(Ultrix())
	noc := readsAfterWrite(RenoNoConsist())
	if reno < 3 {
		t.Errorf("reno reads = %d, want >= 3 (re-read after own writes)", reno)
	}
	if ultrix != 0 {
		t.Errorf("ultrix reads = %d, want 0 (own writes keep cache valid)", ultrix)
	}
	if noc != 0 {
		t.Errorf("noconsist reads = %d, want 0", noc)
	}
}

// TestDirtyRegionCoalescing: sub-block writes coalesce into one write RPC
// under Reno's delayed policy, but Ultrix's eager write-back sends one RPC
// per dirtying write call.
func TestDirtyRegionCoalescing(t *testing.T) {
	writesFor := func(opts Options) int {
		r := newRig(t, 6)
		m := r.mount(opts)
		var count int
		r.run(t, func(p *sim.Proc) {
			f, err := m.Create(p, "f", 0644)
			if err != nil {
				t.Fatalf("create: %v", err)
			}
			for i := 0; i < 4; i++ {
				if _, err := f.Write(p, pattern(2048)); err != nil {
					t.Fatalf("write: %v", err)
				}
			}
			f.Close(p)
			count = m.Stats.RPCCount(nfsproto.ProcWrite)
		})
		return count
	}
	reno := writesFor(Reno())
	ultrix := writesFor(Ultrix())
	if reno != 1 {
		t.Errorf("reno writes = %d, want 1 (coalesced 8K block)", reno)
	}
	if ultrix != 4 {
		t.Errorf("ultrix writes = %d, want 4 (eager write-back per call)", ultrix)
	}
}

func TestNoConsistSkipsPushOnClose(t *testing.T) {
	r := newRig(t, 7)
	m := r.mount(RenoNoConsist())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, m, "f", pattern(2*8192))
		if got := m.Stats.RPCCount(nfsproto.ProcWrite); got != 0 {
			t.Errorf("write RPCs at close = %d, want 0 (no push on close)", got)
		}
		// The data is still readable (from cache).
		got := readFile(t, p, m, "f")
		if !bytes.Equal(got, pattern(2*8192)) {
			t.Error("cached readback corrupted")
		}
		// Explicit sync pushes the dirty blocks.
		m.SyncAll(p)
		if got := m.Stats.RPCCount(nfsproto.ProcWrite); got != 2 {
			t.Errorf("write RPCs after sync = %d, want 2", got)
		}
	})
}

func TestWritePolicies(t *testing.T) {
	writeRPCsDuring := func(policy WritePolicy) (during, after int) {
		r := newRig(t, 8)
		opts := Reno()
		opts.Policy = policy
		m := r.mount(opts)
		r.run(t, func(p *sim.Proc) {
			f, _ := m.Create(p, "f", 0644)
			for i := 0; i < 3; i++ {
				f.Write(p, pattern(8192))
			}
			during = m.Stats.RPCCount(nfsproto.ProcWrite)
			f.Close(p)
			after = m.Stats.RPCCount(nfsproto.ProcWrite)
		})
		return during, after
	}
	d, a := writeRPCsDuring(WriteThrough)
	if d != 3 || a != 3 {
		t.Errorf("write-through: during=%d after=%d, want 3,3", d, a)
	}
	d, a = writeRPCsDuring(WriteDelayed)
	if d != 0 || a != 3 {
		t.Errorf("delayed: during=%d after=%d, want 0,3", d, a)
	}
	d, a = writeRPCsDuring(WriteAsync)
	if d < 1 || a != 3 {
		t.Errorf("async: during=%d after=%d, want >=1,3 (full blocks go to the biods eagerly)", d, a)
	}
}

func TestUltrixPrereadsPartialWrites(t *testing.T) {
	r := newRig(t, 9)
	m := r.mount(Ultrix())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, m, "f", pattern(8192))
		p.Sleep(6 * time.Second) // let attrs age out
		// Overwrite 100 bytes mid-block; the block is no longer cached
		// after... force a cold cache by invalidating.
		m.invalidate(m.vns[vnKey{m.root.fileid, m.root.gen}])
		f, err := m.Open(p, "f")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		m.bufc.InvalidateVnode(f.vn.fileid, f.vn.gen)
		f.Seek(1000)
		if _, err := f.Write(p, []byte("patch")); err != nil {
			t.Fatalf("write: %v", err)
		}
		f.Close(p)
		if m.Stats.Prereads == 0 {
			t.Error("no preread for a partial write without dirty-region tracking")
		}
		got := readFile(t, p, m, "f")
		want := pattern(8192)
		copy(want[1000:], "patch")
		if !bytes.Equal(got, want) {
			t.Error("partial overwrite corrupted the block")
		}
	})
}

func TestRenoPartialWriteNoPreread(t *testing.T) {
	r := newRig(t, 10)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, m, "f", pattern(8192))
		f, _ := m.Open(p, "f")
		m.bufc.InvalidateVnode(f.vn.fileid, f.vn.gen)
		readsBefore := m.Stats.RPCCount(nfsproto.ProcRead)
		f.Seek(1000)
		f.Write(p, []byte("patch"))
		if m.Stats.RPCCount(nfsproto.ProcRead) != readsBefore {
			t.Error("Reno prereads despite dirty-region tracking")
		}
		if m.Stats.Prereads != 0 {
			t.Errorf("prereads = %d", m.Stats.Prereads)
		}
		f.Close(p)
		// The partial flush plus server state must still yield the right
		// bytes.
		got := readFile(t, p, m, "f")
		want := pattern(8192)
		copy(want[1000:], "patch")
		if !bytes.Equal(got, want) {
			t.Error("dirty-region flush corrupted the block")
		}
	})
}

func TestReadAheadPrefetches(t *testing.T) {
	r := newRig(t, 11)
	opts := Reno()
	opts.ReadAhead = 2
	m := r.mount(opts)
	r.run(t, func(p *sim.Proc) {
		data := pattern(6 * 8192)
		writeFile(t, p, m, "big", data)
		f, _ := m.Open(p, "big")
		buf := make([]byte, 8192)
		f.Read(p, buf) // first block; read-ahead for 2 more kicks off
		p.Sleep(2 * time.Second)
		hitsBefore := m.Stats.CacheReadHits
		f.Read(p, buf) // second block should be prefetched
		if m.Stats.CacheReadHits <= hitsBefore {
			t.Error("sequential read missed despite read-ahead")
		}
		f.Close(p)
	})
}

func TestExternalModificationDetected(t *testing.T) {
	r := newRig(t, 12)
	m1 := r.mount(Reno())
	m2 := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, m1, "shared", []byte("version-1"))
		if got := readFile(t, p, m2, "shared"); string(got) != "version-1" {
			t.Fatalf("m2 read: %q", got)
		}
		// m2 rewrites the file (push on close per close/open consistency).
		writeFile(t, p, m2, "shared", []byte("version-2"))
		// After m1's attribute cache expires it must see the new data.
		p.Sleep(6 * time.Second)
		if got := readFile(t, p, m1, "shared"); string(got) != "version-2" {
			t.Errorf("m1 read stale data: %q", got)
		}
	})
}

func TestReadDirCachedUntilChange(t *testing.T) {
	r := newRig(t, 13)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		m.Mkdir(p, "d", 0755)
		writeFile(t, p, m, "d/a", []byte("x"))
		m.ReadDir(p, "d")
		base := m.Stats.RPCCount(nfsproto.ProcReaddir)
		m.ReadDir(p, "d")
		if got := m.Stats.RPCCount(nfsproto.ProcReaddir); got != base {
			t.Errorf("cached readdir issued RPCs: %d -> %d", base, got)
		}
		// Changing the directory invalidates the listing.
		writeFile(t, p, m, "d/b", []byte("y"))
		p.Sleep(6 * time.Second)
		ents, _ := m.ReadDir(p, "d")
		if got := m.Stats.RPCCount(nfsproto.ProcReaddir); got == base {
			t.Error("readdir served stale cache after directory change")
		}
		if len(ents) != 4 { // . .. a b
			t.Errorf("entries = %d", len(ents))
		}
	})
}

func TestUpdateDaemonFlushes(t *testing.T) {
	r := newRig(t, 14)
	m := r.mount(RenoNoConsist()) // no push on close: only update flushes
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, m, "f", pattern(8192))
		if m.Stats.RPCCount(nfsproto.ProcWrite) != 0 {
			t.Fatal("premature flush")
		}
		p.Sleep(40 * time.Second) // beyond the 30s update interval
		if m.Stats.RPCCount(nfsproto.ProcWrite) == 0 {
			t.Error("update daemon never pushed the delayed writes")
		}
	})
}

func TestSymlinkPathOps(t *testing.T) {
	r := newRig(t, 15)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		if err := m.Symlink(p, "ln", "/target"); err != nil {
			t.Fatalf("symlink: %v", err)
		}
		got, err := m.Readlink(p, "ln")
		if err != nil || got != "/target" {
			t.Fatalf("readlink = %q, %v", got, err)
		}
	})
}

func TestStatfsViaMount(t *testing.T) {
	r := newRig(t, 16)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		res, err := m.Statfs(p)
		if err != nil || res.BSize != 8192 {
			t.Fatalf("statfs: %+v %v", res, err)
		}
	})
}

func TestSparseWriteReadBack(t *testing.T) {
	r := newRig(t, 17)
	m := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		f, _ := m.Create(p, "sparse", 0644)
		f.Seek(3 * 8192)
		f.Write(p, []byte("tail"))
		f.Close(p)
		got := readFile(t, p, m, "sparse")
		if len(got) != 3*8192+4 {
			t.Fatalf("size = %d", len(got))
		}
		for i := 0; i < 3*8192; i++ {
			if got[i] != 0 {
				t.Fatal("hole not zero")
			}
		}
		if string(got[3*8192:]) != "tail" {
			t.Fatalf("tail = %q", got[3*8192:])
		}
	})
}

// TestSoftMountSurfacesErrors: a bounded-retry ("soft") transport makes
// client operations fail cleanly instead of hanging when the server is
// unreachable.
func TestSoftMountSurfacesErrors(t *testing.T) {
	env := sim.New(31)
	defer env.Close()
	nt := netsim.New(env)
	clientNode := nt.AddNode(netsim.NodeConfig{Name: "client"})
	serverNode := nt.AddNode(netsim.NodeConfig{Name: "server"})
	cfg := netsim.Ethernet("eth")
	cfg.LossProb = 1.0 // server unreachable
	nt.Connect(clientNode, serverNode, cfg)
	nt.ComputeRoutes()
	tcfg := transport.FixedUDP()
	tcfg.Retrans = 2 // soft mount
	tr := transport.NewUDP(clientNode, 8801, serverNode.ID, server.NFSPort, tcfg)
	m := NewMount(clientNode, tr, nfsproto.MakeFH(1, 2, 1), Reno())
	var openErr error
	done := false
	env.Spawn("app", func(p *sim.Proc) {
		_, openErr = m.Open(p, "anything")
		done = true
	})
	env.Run(5 * time.Minute)
	if !done {
		t.Fatal("soft mount hung")
	}
	if openErr == nil {
		t.Fatal("open against a dead server succeeded")
	}
}
