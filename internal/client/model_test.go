package client

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
)

// TestRandomizedIOAgainstModel drives random file operations through the
// client under each personality (including leases and a lossy network) and
// checks the server's final state against a shadow model. This is the
// system-level invariant everything else exists to preserve: after a sync,
// the server holds exactly the bytes the applications wrote.
func TestRandomizedIOAgainstModel(t *testing.T) {
	personalities := []Options{Reno(), Ultrix(), RenoNoConsist(), leaseClient()}
	seeds := []int64{100, 2025, 777}
	for pi, opts := range personalities {
		for si, seed := range seeds {
			opts, seed := opts, seed
			t.Run(fmt.Sprintf("%s/seed%d", opts.Name, seed), func(t *testing.T) {
				runModel(t, opts, seed+int64(pi), int64(7+pi*31+si*7))
			})
		}
	}
}

// TestLeaseCloseToOpenModel drives two lease-mounted clients through
// alternating write-close / open-read rounds and pins close-to-open
// consistency: whatever one client wrote before close is exactly what the
// other reads after open, even though write leases suppress push-on-close
// — the eviction handshake must make the flush happen before the reader's
// open completes. Occasional sleeps past the lease term exercise the
// expiry backstop between rounds.
func TestLeaseCloseToOpenModel(t *testing.T) {
	env := sim.New(42)
	defer env.Close()
	nt := netsim.New(env)
	nodeA := nt.AddNode(netsim.NodeConfig{Name: "a"})
	nodeB := nt.AddNode(netsim.NodeConfig{Name: "b"})
	serverNode := nt.AddNode(netsim.NodeConfig{Name: "server"})
	lk := netsim.Ethernet("eth")
	nt.Connect(nodeA, serverNode, lk)
	nt.Connect(nodeB, serverNode, lk)
	nt.ComputeRoutes()
	fs := memfs.New(1, nil, nil)
	srvOpts := server.Reno()
	srvOpts.Leases = true
	srvOpts.LeaseDuration = 10 * time.Second
	srv := server.New(fs, srvOpts)
	srv.AttachNode(serverNode)
	srv.ServeUDP(server.NFSPort)

	opts := leaseClient()
	opts.LeaseDuration = 10 * time.Second
	mounts := [2]*Mount{}
	for i, node := range []*netsim.Node{nodeA, nodeB} {
		o := opts
		o.Name = fmt.Sprintf("lease%d", i)
		tr := transport.NewUDP(node, node.EphemeralPort(), serverNode.ID, server.NFSPort, transport.DynamicUDP())
		mounts[i] = NewMount(node, tr, srv.RootFH(), o)
	}

	ok := false
	env.Spawn("c2o", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(7))
		for round := 0; round < 40; round++ {
			writer, reader := mounts[round%2], mounts[(round+1)%2]
			want := make([]byte, 1+rng.Intn(20000))
			rng.Read(want)
			f, err := writer.Create(p, "shared", 0644)
			if err != nil {
				t.Errorf("round %d create: %v", round, err)
				return
			}
			if _, err := f.Write(p, want); err != nil {
				t.Errorf("round %d write: %v", round, err)
				return
			}
			if err := f.Close(p); err != nil {
				t.Errorf("round %d close: %v", round, err)
				return
			}
			if rng.Intn(5) == 0 {
				p.Sleep(15 * time.Second) // past the lease term: expiry path
			}
			g, err := reader.Open(p, "shared")
			if err != nil {
				t.Errorf("round %d open: %v", round, err)
				return
			}
			got := make([]byte, 0, len(want))
			buf := make([]byte, 8192)
			for {
				n, err := g.Read(p, buf)
				if err != nil {
					t.Errorf("round %d read: %v", round, err)
					return
				}
				if n == 0 {
					break
				}
				got = append(got, buf[:n]...)
			}
			g.Close(p)
			if !bytes.Equal(got, want) {
				t.Errorf("round %d: reader saw %d bytes diverging from the %d written before close",
					round, len(got), len(want))
				return
			}
		}
		ok = true
	})
	env.Run(4 * time.Hour)
	if !ok {
		t.Fatal("close-to-open run did not finish")
	}
	if mounts[0].Stats.LeasesGranted == 0 || mounts[1].Stats.LeasesGranted == 0 {
		t.Error("a mount ran leaseless: the round-trip proved nothing about leases")
	}
}

// runModel drives one randomized-op session and verifies the server's
// final state against the shadow.
func runModel(t *testing.T, opts Options, envSeed, opSeed int64) {
	{
		{
			env := sim.New(envSeed)
			defer env.Close()
			nt := netsim.New(env)
			clientNode := nt.AddNode(netsim.NodeConfig{Name: "client"})
			serverNode := nt.AddNode(netsim.NodeConfig{Name: "server"})
			lk := netsim.Ethernet("eth")
			lk.LossProb = 0.01 // force occasional retransmission
			nt.Connect(clientNode, serverNode, lk)
			nt.ComputeRoutes()
			fs := memfs.New(1, nil, nil)
			srvOpts := server.Reno()
			srvOpts.Leases = true
			srvOpts.ReaddirLook = true
			srv := server.New(fs, srvOpts)
			srv.AttachNode(serverNode)
			srv.ServeUDP(server.NFSPort)

			tr := transport.NewUDP(clientNode, 2001, serverNode.ID, server.NFSPort, transport.DynamicUDP())
			m := NewMount(clientNode, tr, srv.RootFH(), opts)

			const nfiles = 4
			shadow := make(map[string][]byte)
			ok := false
			env.Spawn("chaos", func(p *sim.Proc) {
				rng := rand.New(rand.NewSource(opSeed))
				open := map[string]*File{}
				for step := 0; step < 300; step++ {
					name := fmt.Sprintf("f%d", rng.Intn(nfiles))
					switch rng.Intn(6) {
					case 0: // create (truncate)
						if f := open[name]; f != nil {
							f.Close(p)
						}
						f, err := m.Create(p, name, 0644)
						if err != nil {
							t.Errorf("create %s: %v", name, err)
							return
						}
						open[name] = f
						shadow[name] = nil
					case 1, 2: // write at a random offset
						f := open[name]
						if f == nil {
							var err error
							if _, exists := shadow[name]; !exists {
								continue
							}
							f, err = m.Open(p, name)
							if err != nil {
								t.Errorf("open %s: %v", name, err)
								return
							}
							open[name] = f
						}
						off := uint32(rng.Intn(40000))
						n := 1 + rng.Intn(9000)
						data := make([]byte, n)
						rng.Read(data)
						f.Seek(off)
						if _, err := f.Write(p, data); err != nil {
							t.Errorf("write %s: %v", name, err)
							return
						}
						sh := shadow[name]
						if int(off)+n > len(sh) {
							grown := make([]byte, int(off)+n)
							copy(grown, sh)
							sh = grown
						}
						copy(sh[off:], data)
						shadow[name] = sh
					case 3: // read back a random range through the cache
						f := open[name]
						if f == nil {
							continue
						}
						sh := shadow[name]
						if len(sh) == 0 {
							continue
						}
						off := rng.Intn(len(sh))
						f.Seek(uint32(off))
						buf := make([]byte, 1+rng.Intn(8000))
						n, err := f.Read(p, buf)
						if err != nil {
							t.Errorf("read %s: %v", name, err)
							return
						}
						want := sh[off:]
						if n > len(want) {
							t.Errorf("read %s returned %d bytes past shadow EOF", name, n)
							return
						}
						if !bytes.Equal(buf[:n], want[:n]) {
							t.Errorf("step %d: read %s@%d mismatch", step, name, off)
							return
						}
					case 4: // close
						if f := open[name]; f != nil {
							if err := f.Close(p); err != nil {
								t.Errorf("close %s: %v", name, err)
								return
							}
							delete(open, name)
						}
					case 5: // let timers fire (attr timeouts, leases, update)
						p.Sleep(time.Duration(rng.Intn(4000)) * time.Millisecond)
					}
				}
				for _, f := range open {
					f.Close(p)
				}
				m.SyncAll(p)
				ok = true
			})
			env.Run(4 * time.Hour)
			if !ok {
				t.Fatal("chaos run did not finish")
			}
			// Verify the server's durable state against the shadow.
			for name, want := range shadow {
				ino, err := fs.Lookup(fs.Root(), name)
				if err != nil {
					if len(want) == 0 && err == memfs.ErrNoEnt {
						continue
					}
					t.Fatalf("server lookup %s: %v", name, err)
				}
				if ino.Size != uint32(len(want)) {
					t.Fatalf("%s: server size %d, shadow %d", name, ino.Size, len(want))
				}
				got := make([]byte, len(want))
				fs.ReadAt(nil, ino, 0, got, true)
				if !bytes.Equal(got, want) {
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("%s: server diverges from shadow at byte %d (size %d)", name, i, len(want))
						}
					}
				}
			}
		}
	}
}
