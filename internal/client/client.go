// Package client implements the NFS client with the caching machinery §5
// of the paper studies:
//
//   - a VFS name lookup cache (halves lookup RPCs, Table 3);
//   - file attribute caching with a 5-second timeout;
//   - data caching in an 8 KB buffer cache with dirty-region tracking, so
//     partial-block writes need no preread;
//   - modify-time cache consistency: cached data is purged when the
//     server's mtime differs from the mtime the cache was loaded under.
//     Because a client cannot tell its own writes' mtime changes from
//     other clients', the Reno personality re-reads files it just wrote
//     (the +50% read RPCs of Table 3) while the Ultrix personality assumes
//     its own writes keep the cache valid;
//   - write policies: write-through, asynchronous (biods), and delayed,
//     with push-on-close for close/open consistency — plus the
//     experimental "no consistency" mount flag that disables it all and
//     bounds what a cache consistency protocol could win (Table 5).
package client

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
	"renonfs/internal/vfs"
	"renonfs/internal/xdr"
)

// Client CPU cost table, µs at 1 MIPS.
const (
	costSyscall      = 250.0 // syscall entry/exit + vnode layer
	costUserCopyByte = 0.5   // user space <-> buffer cache copy
)

// WritePolicy selects what a write system call does (§1 footnote 4).
type WritePolicy int

const (
	// WriteThrough: the write RPC completes before the syscall returns.
	WriteThrough WritePolicy = iota
	// WriteAsync: full blocks are handed to biods as they complete.
	WriteAsync
	// WriteDelayed: blocks stay dirty in the cache until pushed (close,
	// the 30 s update flush, or eviction).
	WriteDelayed
)

func (w WritePolicy) String() string {
	switch w {
	case WriteThrough:
		return "write-through"
	case WriteAsync:
		return "async"
	default:
		return "delayed"
	}
}

// Options configures a mount's personality.
type Options struct {
	Name string
	// NameCache enables the VFS name lookup cache.
	NameCache bool
	// NameCacheCap bounds the name cache (0 = the Reno default); the
	// Ultrix personality models the weaker 4.2BSD-era cache with a small
	// capacity and a short name limit.
	NameCacheCap int
	// NameCacheMaxLen bounds cacheable component length (0 = Reno's 31).
	NameCacheMaxLen int
	// AttrTimeout is the attribute cache lifetime (5 s in Reno).
	AttrTimeout sim.Time
	// Consistency enables mtime-based cache consistency; false is the
	// experimental "noconsist" mount flag.
	Consistency bool
	// PushOnClose flushes delayed writes at close for close/open
	// consistency. Disabling it is the main effect of noconsist.
	PushOnClose bool
	// FlushBeforeRead pushes a file's dirty blocks before reading it (the
	// Reno behaviour that inflates read RPC counts).
	FlushBeforeRead bool
	// SelfMtimeValid makes the client treat the mtime movement caused by
	// its own write RPCs as keeping the cache valid (the Ultrix
	// assumption).
	SelfMtimeValid bool
	// DirtyRegionTracking uses the Reno buf fields to write partial blocks
	// without prereading; without it, a partial write to an uncached block
	// inside the file prereads the block first.
	DirtyRegionTracking bool
	// EagerWriteBack queues every dirtied block to the biods immediately
	// (reference-port behaviour; inflates write RPC counts on files
	// written in sub-block chunks).
	EagerWriteBack bool
	// Policy is the write policy.
	Policy WritePolicy
	// Biods is the number of asynchronous I/O daemons (0 degrades async
	// and delayed flushes to synchronous).
	Biods int
	// ReadAhead is how many blocks to prefetch past a sequential read.
	ReadAhead int
	// CacheBufs sizes the data cache.
	CacheBufs int
	// UpdateFlush enables the 30-second dirty-block push.
	UpdateFlush bool
	// UseLeases enables the NQNFS-style lease extension: with a write
	// lease held, delayed writes are safe without push-on-close.
	UseLeases bool
	// LeaseDuration is the requested lease term (default 30s).
	LeaseDuration sim.Time
	// ReaddirLook lists directories with the readdir_and_lookup_files
	// extension when the server offers it.
	ReaddirLook bool
	// AdaptiveRsize shrinks the read transfer size when big RPCs keep
	// timing out (fragment loss) and grows it back on success — the §4
	// "adjust the size dynamically, based on the IP fragment drop rate"
	// further-work item.
	AdaptiveRsize bool
	// Tracer, when set, receives a ClientCall lifecycle event per RPC the
	// mount issues (syscall-level latency, including transport queueing
	// and retransmissions).
	Tracer metrics.Tracer
}

// Reno returns the tuned 4.3BSD Reno client personality.
func Reno() Options {
	return Options{
		Name: "reno", NameCache: true, AttrTimeout: 5 * time.Second,
		Consistency: true, PushOnClose: true, FlushBeforeRead: true,
		DirtyRegionTracking: true, Policy: WriteDelayed, Biods: 4,
		ReadAhead: 1, CacheBufs: 256, UpdateFlush: true,
	}
}

// RenoNoConsist returns Reno with the experimental mount flag that
// disables all cache consistency (the optimistic bound of §5).
func RenoNoConsist() Options {
	o := Reno()
	o.Name = "reno-noconsist"
	o.Consistency = false
	o.PushOnClose = false
	o.FlushBeforeRead = false
	return o
}

// Ultrix returns the Sun-reference-port client personality. Its name
// cache is the weak 4.2BSD-era one: tiny and limited to short names, which
// is what leaves it with roughly twice Reno's lookup RPCs in Table 3.
func Ultrix() Options {
	return Options{
		Name: "ultrix", NameCache: true, NameCacheCap: 12, NameCacheMaxLen: 14,
		AttrTimeout: 5 * time.Second,
		Consistency: true, PushOnClose: true, FlushBeforeRead: false,
		SelfMtimeValid: true, DirtyRegionTracking: false,
		EagerWriteBack: true, Policy: WriteAsync, Biods: 4,
		ReadAhead: 1, CacheBufs: 256, UpdateFlush: true,
	}
}

// Stats counts client activity.
type Stats struct {
	Calls                          [nfsproto.NumProcsExt]int
	ReadBytes                      int
	WriteBytes                     int
	CacheReadHits, CacheReadMisses int
	Prereads                       int
	Invalidates                    int
	// Lease extension counters. LeasePiggyGrants counts the subset of
	// LeasesGranted that arrived piggybacked on ordinary replies rather
	// than through an explicit LEASE call.
	LeasesGranted    int
	LeasePiggyGrants int
	LeaseTryLater    int
	LeaseEvictions   int
}

// TotalCalls sums all RPCs issued.
func (s *Stats) TotalCalls() int {
	n := 0
	for _, c := range s.Calls {
		n += c
	}
	return n
}

// RPCCount returns the count for one procedure.
func (s *Stats) RPCCount(proc uint32) int { return s.Calls[proc] }

var (
	// ErrNotDir is returned when a path component is not a directory.
	ErrNotDir = errors.New("client: not a directory")
	// ErrIsDir is returned for file I/O on a directory.
	ErrIsDir = errors.New("client: is a directory")
	// ErrClosed is returned for I/O on a closed file.
	ErrClosed = errors.New("client: file closed")
)

type vnKey struct {
	fileid uint32
	gen    uint32
}

// vnode is the client's in-core file object.
type vnode struct {
	fh     nfsproto.FH
	fileid uint32
	gen    uint32

	attr      nfsproto.Fattr
	attrValid bool
	attrTime  sim.Time

	// cachedMtime is the server mtime the cached data corresponds to.
	cachedMtime    nfsproto.Time
	hasCachedMtime bool

	// size as the client believes it (local writes extend it before the
	// server hears about them).
	size uint32

	// dirCache caches a full READDIR listing, valid while mtime holds.
	dirCache      []nfsproto.DirEntry
	dirCacheMtime nfsproto.Time

	lastReadBlock uint32
	hasLastRead   bool

	pendingFlushes int
	// inFlight counts queued-or-executing async writes per block, so
	// same-block writes stay ordered (the B_BUSY discipline).
	inFlight  map[uint32]int
	flushDone *sim.Cond
}

// Mount is one mounted NFS filesystem.
type Mount struct {
	Opts   Options
	Node   *netsim.Node
	tr     transport.Transport
	env    *sim.Env
	root   *vnode
	vns    map[vnKey]*vnode
	bufc   *vfs.BufCache
	namec  *vfs.NameCache
	biodQs []*sim.Queue[flushJob] // per-biod queues; write jobs hash by block
	Stats  Stats
	closed bool

	// Lease extension state (lease.go).
	leases       map[vnKey]*clientLease
	cbSock       *netsim.UDPSocket
	cbPort       int
	leasesBroken bool
	rdlBroken    bool

	// Adaptive transfer size state (io.go).
	rsize     int
	goodReads int
}

// flushJob is one block write (or, with nil data, a read-ahead) handed to
// a biod.
type flushJob struct {
	vn     *vnode
	block  uint32
	offset uint32
	data   []byte
}

// NewMount creates a mount over the transport with the server's root
// handle.
func NewMount(node *netsim.Node, tr transport.Transport, rootFH nfsproto.FH, opts Options) *Mount {
	if opts.AttrTimeout == 0 {
		opts.AttrTimeout = 5 * time.Second
	}
	if opts.CacheBufs == 0 {
		opts.CacheBufs = 256
	}
	env := node.Net().Env
	m := &Mount{
		Opts:  opts,
		Node:  node,
		tr:    tr,
		env:   env,
		vns:   make(map[vnKey]*vnode),
		bufc:  vfs.NewBufCache(opts.CacheBufs, true),
		namec: vfs.NewNameCache(),
	}
	m.namec.Enabled = opts.NameCache
	if opts.NameCacheCap > 0 {
		m.namec.Capacity = opts.NameCacheCap
	}
	if opts.NameCacheMaxLen > 0 {
		m.namec.MaxNameLen = opts.NameCacheMaxLen
	}
	_, fileid, gen := rootFH.Parts()
	m.root = &vnode{fh: rootFH, fileid: fileid, gen: gen,
		inFlight: make(map[uint32]int), flushDone: sim.NewCond(env)}
	m.root.attr.Type = nfsproto.TypeDir
	m.vns[vnKey{fileid, gen}] = m.root
	m.rsize = vfs.BlockSize
	for i := 0; i < opts.Biods; i++ {
		q := sim.NewQueue[flushJob](env, fmt.Sprintf("%s.biodq%d", opts.Name, i))
		m.biodQs = append(m.biodQs, q)
		env.Spawn(fmt.Sprintf("%s.biod%d", opts.Name, i), func(p *sim.Proc) { m.biod(p, q) })
	}
	if opts.UseLeases {
		m.initLeases()
	}
	if opts.UpdateFlush {
		env.Spawn(opts.Name+".update", m.updateDaemon)
	}
	return m
}

// Transport exposes the underlying transport (for its stats).
func (m *Mount) Transport() transport.Transport { return m.tr }

// NameCacheStats exposes client name-cache counters.
func (m *Mount) NameCacheStats() vfs.NameCacheStats { return m.namec.Stats }

// Close flushes everything and shuts the mount down.
func (m *Mount) Close(p *sim.Proc) {
	if m.closed {
		return
	}
	m.SyncAll(p)
	m.vacateAll(p)
	m.closed = true
	for _, q := range m.biodQs {
		q.Close()
	}
	m.tr.Close()
}

// charge bills client CPU.
func (m *Mount) charge(p *sim.Proc, bucket string, us float64) {
	if p == nil {
		return
	}
	m.Node.ChargeCPU(p, bucket, m.Node.Model.Cost(us))
}

// call issues one RPC, counting it.
func (m *Mount) call(p *sim.Proc, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	m.Stats.Calls[proc]++
	if m.Opts.Tracer == nil || p == nil {
		return m.tr.Call(p, proc, args)
	}
	start := p.Now()
	d, err := m.tr.Call(p, proc, args)
	metrics.Emit(m.Opts.Tracer, metrics.ClientCall{Proc: proc, RTT: p.Now() - start, Err: err != nil})
	return d, err
}

// getVnode interns a vnode for a handle.
func (m *Mount) getVnode(fh nfsproto.FH) *vnode {
	_, fileid, gen := fh.Parts()
	k := vnKey{fileid, gen}
	if vn := m.vns[k]; vn != nil {
		return vn
	}
	vn := &vnode{fh: fh, fileid: fileid, gen: gen,
		inFlight: make(map[uint32]int), flushDone: sim.NewCond(m.env)}
	m.vns[k] = vn
	return vn
}

// updateAttrs folds a server-provided fattr into the attribute cache.
// selfWrite marks attrs returned by our own write RPCs: under the Ultrix
// assumption those keep the cache valid.
func (m *Mount) updateAttrs(vn *vnode, a *nfsproto.Fattr, selfWrite bool) {
	vn.attr = *a
	vn.attrValid = true
	vn.attrTime = m.env.Now()
	// The local size only grows from server attributes: unflushed delayed
	// writes may extend the file beyond what the server knows. It shrinks
	// only when the cache is invalidated (server authoritative again).
	if a.Size > vn.size {
		vn.size = a.Size
	}
	if !vn.hasCachedMtime {
		vn.cachedMtime = a.Mtime
		vn.hasCachedMtime = true
	} else if selfWrite && m.Opts.SelfMtimeValid {
		vn.cachedMtime = a.Mtime
	}
}

// freshAttrs ensures the attribute cache is within its timeout, issuing a
// GETATTR when it is not. Attribute caching is independent of the
// experimental no-consistency flag: that flag disables *data* consistency
// (purges, flush-before-read, push-on-close), but stat-style attribute
// traffic continues, which is why the paper's Reno-noconsist run still
// shows ~780 getattr RPCs (Table 3).
func (m *Mount) freshAttrs(p *sim.Proc, vn *vnode) error {
	// Under a live lease the attributes are coherent by contract — the
	// server evicts us before letting them change — so even a timed-out
	// attribute cache is served RPC-free.
	if m.Opts.UseLeases && vn.attrValid && m.leaseFor(vn, nfsproto.LeaseRead) != nil {
		return nil
	}
	if vn.attrValid && m.env.Now()-vn.attrTime <= m.Opts.AttrTimeout {
		return nil
	}
	for attempt := 0; ; attempt++ {
		d, err := m.call(p, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: vn.fh}).Encode(e)
			if m.wantHint() {
				m.leaseHint(e, nfsproto.LeaseRead)
			}
		})
		if err != nil {
			return err
		}
		res, err := nfsproto.DecodeAttrRes(d)
		if err != nil {
			return err
		}
		if res.Status == nfsproto.ErrTryLater && attempt < 8 {
			// A write-lease holder is being evicted for us.
			tryLaterBackoff(p, attempt)
			continue
		}
		if res.Status != nfsproto.OK {
			return res.Status.Error()
		}
		m.updateAttrs(vn, res.Attr, false)
		m.absorbPiggy(p, d, vn)
		return nil
	}
}

// checkConsistency validates cached data against the server mtime and
// purges it when the file changed (§2: "cached data is flushed whenever
// the modify time changes").
func (m *Mount) checkConsistency(p *sim.Proc, vn *vnode) error {
	if err := m.freshAttrs(p, vn); err != nil {
		return err
	}
	if !m.Opts.Consistency {
		return nil // attributes refreshed, but cached data is never purged
	}
	if !vn.hasCachedMtime {
		vn.cachedMtime = vn.attr.Mtime
		vn.hasCachedMtime = true
		return nil
	}
	if vn.attr.Mtime != vn.cachedMtime {
		// Our own unflushed delayed writes are newer than anything the
		// server has; push them before purging, or the purge loses data
		// (vinvalbuf with V_SAVE semantics).
		m.flushVnode(p, vn, true)
		m.invalidate(vn)
		vn.cachedMtime = vn.attr.Mtime
	}
	return nil
}

// invalidate purges the vnode's cached blocks, directory cache and name
// cache entries. Dirty blocks are discarded — callers flush first when the
// data must survive.
func (m *Mount) invalidate(vn *vnode) {
	m.Stats.Invalidates++
	m.bufc.InvalidateVnode(vn.fileid, vn.gen)
	vn.dirCache = nil
	if vn.attrValid {
		vn.size = vn.attr.Size
	}
	if vn.attr.Type == nfsproto.TypeDir {
		m.namec.PurgeDir(vn.fileid, vn.gen)
	}
	vn.hasLastRead = false
}

// lookupComponent resolves one path component.
func (m *Mount) lookupComponent(p *sim.Proc, dir *vnode, name string) (*vnode, error) {
	if dir.attrValid && dir.attr.Type != nfsproto.TypeDir {
		return nil, ErrNotDir
	}
	if name == "." || name == "" {
		return dir, nil
	}
	// Keep the directory's cached translations honest before using them.
	if err := m.checkConsistency(p, dir); err != nil {
		return nil, err
	}
	if vid, vgen, neg, found := m.namec.Lookup(dir.fileid, dir.gen, name); found {
		if neg {
			return nil, (&nfsproto.StatusError{Status: nfsproto.ErrNoEnt})
		}
		if vn := m.vns[vnKey{vid, vgen}]; vn != nil {
			return vn, nil
		}
		m.namec.Remove(dir.fileid, dir.gen, name)
	}
	var res *nfsproto.DiropRes
	var piggy *xdr.Decoder
	for attempt := 0; ; attempt++ {
		d, err := m.call(p, nfsproto.ProcLookup, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: dir.fh, Name: name}).Encode(e)
			if m.wantHint() {
				m.leaseHint(e, nfsproto.LeaseRead)
			}
		})
		if err != nil {
			return nil, err
		}
		if res, err = nfsproto.DecodeDiropRes(d); err != nil {
			return nil, err
		}
		if res.Status == nfsproto.ErrTryLater && attempt < 8 {
			tryLaterBackoff(p, attempt)
			continue
		}
		piggy = d
		break
	}
	if res.Status != nfsproto.OK {
		if res.Status == nfsproto.ErrNoEnt {
			m.namec.EnterNegative(dir.fileid, dir.gen, name)
		}
		return nil, res.Status.Error()
	}
	vn := m.getVnode(res.File)
	m.updateAttrs(vn, res.Attr, false)
	m.absorbPiggy(p, piggy, vn)
	m.namec.Enter(dir.fileid, dir.gen, name, vn.fileid, vn.gen)
	return vn, nil
}

// walk resolves a slash-separated path from the root.
func (m *Mount) walk(p *sim.Proc, path string) (*vnode, error) {
	m.charge(p, "syscall", costSyscall)
	vn := m.root
	for _, comp := range strings.Split(path, "/") {
		if comp == "" {
			continue
		}
		next, err := m.lookupComponent(p, vn, comp)
		if err != nil {
			return nil, err
		}
		vn = next
	}
	return vn, nil
}

// walkParent resolves all but the last component, returning the parent
// vnode and the final name.
func (m *Mount) walkParent(p *sim.Proc, path string) (*vnode, string, error) {
	path = strings.Trim(path, "/")
	i := strings.LastIndex(path, "/")
	if i < 0 {
		return m.root, path, nil
	}
	dir, err := m.walk(p, path[:i])
	if err != nil {
		return nil, "", err
	}
	return dir, path[i+1:], nil
}

// IsNoEnt reports whether err is the NFS no-such-entry error.
func IsNoEnt(err error) bool {
	var se *nfsproto.StatusError
	return errors.As(err, &se) && se.Status == nfsproto.ErrNoEnt
}
