package client

import (
	"testing"

	"renonfs/internal/sim"
	"renonfs/internal/tcpsim"
	"renonfs/internal/transport"
)

func TestMountProtocolBootstrap(t *testing.T) {
	r := newRig(t, 21)
	r.srv.Export("/exports/src")
	r.run(t, func(p *sim.Proc) {
		// Build the exported subtree server-side through a root mount.
		setup := r.mount(Reno())
		if err := setup.Mkdir(p, "exports", 0755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := setup.Mkdir(p, "exports/src", 0755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		writeFile(t, p, setup, "exports/src/hello.c", []byte("int main;"))

		// A second client mounts the export by path, the real way.
		portCounter++
		tr := transport.NewUDP(r.tb.Client, portCounter, r.tb.Server.ID, 2049, transport.DynamicUDP())
		exports, err := Exports(p, tr)
		if err != nil {
			t.Fatalf("exports: %v", err)
		}
		found := false
		for _, e := range exports {
			if e.Dir == "/exports/src" {
				found = true
			}
		}
		if !found {
			t.Fatalf("export table missing /exports/src: %+v", exports)
		}
		m, err := MountExport(p, r.tb.Client, tr, "/exports/src", Reno())
		if err != nil {
			t.Fatalf("mount export: %v", err)
		}
		// Paths are now relative to the export root, not the server root.
		got := readFile(t, p, m, "hello.c")
		if string(got) != "int main;" {
			t.Fatalf("read via export mount = %q", got)
		}
		// The server's rmtab knows about us until UMNT.
		if len(r.srv.MountsFor()) == 0 {
			t.Fatal("mountd recorded no mounts")
		}
		if err := Unmount(p, tr, "/exports/src"); err != nil {
			t.Fatalf("umnt: %v", err)
		}
		if n := len(r.srv.MountsFor()); n != 0 {
			t.Fatalf("rmtab still has %d entries after UMNT", n)
		}
	})
}

func TestMountProtocolRefusals(t *testing.T) {
	r := newRig(t, 22)
	r.run(t, func(p *sim.Proc) {
		portCounter++
		tr := transport.NewUDP(r.tb.Client, portCounter, r.tb.Server.ID, 2049, transport.DynamicUDP())
		// Not exported: EACCES.
		if _, err := MountProtocolRoot(p, tr, "/secret"); err == nil {
			t.Fatal("unexported path mounted")
		}
		// Exported but nonexistent: ENOENT.
		r.srv.Export("/ghost")
		if _, err := MountProtocolRoot(p, tr, "/ghost"); err == nil {
			t.Fatal("nonexistent path mounted")
		}
		// Root is exported by default.
		fh, err := MountProtocolRoot(p, tr, "/")
		if err != nil {
			t.Fatalf("mount /: %v", err)
		}
		if fh != r.srv.RootFH() {
			t.Fatal("mount / returned a different handle than RootFH")
		}
	})
}

func TestMountProtocolOverTCP(t *testing.T) {
	// The MOUNT program is transport-independent too: bootstrap a mount
	// over the TCP transport and use it end to end.
	r := newRig(t, 23)
	r.srv.ServeTCP(tcpsim.NewStack(r.tb.Server), 2049)
	done := false
	r.run(t, func(p *sim.Proc) {
		tr, err := transport.NewTCP(p, tcpsim.NewStack(r.tb.Client), r.tb.Server.ID, 2049)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		m, err := MountExport(p, r.tb.Client, tr, "/", Reno())
		if err != nil {
			t.Fatalf("mount export over tcp: %v", err)
		}
		writeFile(t, p, m, "over-tcp", []byte("mounted via MNT on a stream"))
		if got := readFile(t, p, m, "over-tcp"); string(got) != "mounted via MNT on a stream" {
			t.Fatalf("got %q", got)
		}
		done = true
	})
	if !done {
		t.Fatal("did not finish")
	}
}
