package client

import (
	"errors"
	"fmt"

	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
	"renonfs/internal/xdr"
)

// ErrNoMountProtocol is returned when the transport cannot reach other RPC
// programs.
var ErrNoMountProtocol = errors.New("client: transport cannot call the MOUNT protocol")

// MountProtocolRoot obtains the file handle of an exported directory via
// the MOUNT protocol (MNT), the way every real NFS mount begins.
func MountProtocolRoot(p *sim.Proc, tr transport.Transport, path string) (nfsproto.FH, error) {
	var fh nfsproto.FH
	pc, ok := tr.(transport.ProgramCaller)
	if !ok {
		return fh, ErrNoMountProtocol
	}
	d, err := pc.CallProgram(p, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcMnt,
		func(e *xdr.Encoder) { (&nfsproto.MntArgs{DirPath: path}).Encode(e) })
	if err != nil {
		return fh, err
	}
	res, err := nfsproto.DecodeMntRes(d)
	if err != nil {
		return fh, err
	}
	if res.Status != 0 {
		return fh, fmt.Errorf("client: mount %q refused (errno %d)", path, res.Status)
	}
	return res.File, nil
}

// MountExport dials the MOUNT protocol for path and returns a Mount rooted
// at the returned handle.
func MountExport(p *sim.Proc, node *netsim.Node, tr transport.Transport, path string, opts Options) (*Mount, error) {
	fh, err := MountProtocolRoot(p, tr, path)
	if err != nil {
		return nil, err
	}
	return NewMount(node, tr, fh, opts), nil
}

// Unmount tells the server's mountd this client is done with the export
// (bookkeeping only; NFS itself is stateless).
func Unmount(p *sim.Proc, tr transport.Transport, path string) error {
	pc, ok := tr.(transport.ProgramCaller)
	if !ok {
		return ErrNoMountProtocol
	}
	_, err := pc.CallProgram(p, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcUmnt,
		func(e *xdr.Encoder) { (&nfsproto.MntArgs{DirPath: path}).Encode(e) })
	return err
}

// Exports lists the server's export table.
func Exports(p *sim.Proc, tr transport.Transport) ([]nfsproto.ExportEntry, error) {
	pc, ok := tr.(transport.ProgramCaller)
	if !ok {
		return nil, ErrNoMountProtocol
	}
	d, err := pc.CallProgram(p, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcExport, nil)
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeExportList(d)
}
