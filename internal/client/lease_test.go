package client

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
)

// leaseRig builds a LAN testbed with the extension-enabled server.
type leaseRig struct {
	env *sim.Env
	tb  *netsim.Testbed
	srv *server.Server
}

func newLeaseRig(t *testing.T, seed int64, mutate func(*server.Options)) *leaseRig {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	tb := netsim.Build(env, netsim.TopoLAN, netsim.NodeConfig{}, netsim.NodeConfig{})
	opts := server.Reno()
	opts.Leases = true
	opts.ReaddirLook = true
	opts.LeaseDuration = 30 * time.Second
	if mutate != nil {
		mutate(&opts)
	}
	fs := memfs.New(1, nil, func() nfsproto.Time {
		now := env.Now()
		return nfsproto.Time{Sec: uint32(now / time.Second), USec: uint32(now % time.Second / time.Microsecond)}
	})
	srv := server.New(fs, opts)
	srv.AttachNode(tb.Server)
	srv.ServeUDP(server.NFSPort)
	return &leaseRig{env: env, tb: tb, srv: srv}
}

func (r *leaseRig) mount(opts Options) *Mount {
	tr := transport.NewUDP(r.tb.Client, r.tb.Client.EphemeralPort(), r.tb.Server.ID, server.NFSPort, transport.DynamicUDP())
	return NewMount(r.tb.Client, tr, r.srv.RootFH(), opts)
}

func leaseClient() Options {
	o := Reno()
	o.Name = "reno-leases"
	o.UseLeases = true
	o.LeaseDuration = 30 * time.Second
	return o
}

func (r *leaseRig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	r.env.Spawn("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	r.env.Run(30 * time.Minute)
	if !done {
		t.Fatal("test process did not finish")
	}
}

func TestWriteLeaseSkipsPushOnClose(t *testing.T) {
	r := newLeaseRig(t, 1, nil)
	m := r.mount(leaseClient())
	r.run(t, func(p *sim.Proc) {
		data := pattern(2 * 8192)
		writeFile(t, p, m, "f", data)
		if got := m.Stats.RPCCount(nfsproto.ProcWrite); got != 0 {
			t.Errorf("write RPCs after leased close = %d, want 0", got)
		}
		if m.Stats.LeasesGranted == 0 {
			t.Error("no lease was granted")
		}
		// The file reads back from the local cache, coherently.
		if got := readFile(t, p, m, "f"); !bytes.Equal(got, data) {
			t.Error("leased readback corrupted")
		}
		if got := m.Stats.RPCCount(nfsproto.ProcRead); got != 0 {
			t.Errorf("read RPCs under lease = %d, want 0", got)
		}
	})
}

func TestPiggybackGrantsSkipExplicitLease(t *testing.T) {
	r := newLeaseRig(t, 11, nil)
	m := r.mount(leaseClient())
	r.run(t, func(p *sim.Proc) {
		// Create carries a write-lease hint, so the whole create-write-close
		// sequence needs no explicit LEASE RPC and no write push.
		data := pattern(2 * 8192)
		writeFile(t, p, m, "f", data)
		if got := m.Stats.RPCCount(nfsproto.ProcLease); got != 0 {
			t.Errorf("explicit LEASE RPCs = %d, want 0 (grant should piggyback on CREATE)", got)
		}
		if m.Stats.LeasePiggyGrants == 0 {
			t.Error("no piggybacked grant absorbed")
		}
		if got := m.Stats.RPCCount(nfsproto.ProcWrite); got != 0 {
			t.Errorf("write RPCs = %d, want 0 under the piggybacked write lease", got)
		}
		// Re-stat the file long after the attribute timeout: the live lease
		// serves its attributes RPC-free. (A path walk would still refresh
		// the parent directory — directories are deliberately unleased — so
		// probe the file vnode itself.)
		vn, err := m.walk(p, "f")
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		p.Sleep(8 * time.Second)
		base := m.Stats.RPCCount(nfsproto.ProcGetattr)
		if err := m.freshAttrs(p, vn); err != nil {
			t.Fatalf("freshAttrs: %v", err)
		}
		if got := m.Stats.RPCCount(nfsproto.ProcGetattr) - base; got != 0 {
			t.Errorf("getattr RPCs under live lease = %d, want 0", got)
		}
	})
}

func TestGetattrPiggybackGrantsReadLease(t *testing.T) {
	// A plain stat of a foreign file on a lease mount picks up a read
	// lease from the GETATTR piggyback; repeat stats are then RPC-free
	// even past the attribute timeout.
	r := newLeaseRig(t, 12, nil)
	writerOpts := Reno()
	writer := r.mount(writerOpts)
	m := r.mount(leaseClient())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, writer, "f", []byte("v1"))
		if _, err := m.Getattr(p, "f"); err != nil {
			t.Fatalf("getattr: %v", err)
		}
		if m.Stats.LeasePiggyGrants == 0 {
			t.Fatal("stat absorbed no piggybacked read lease")
		}
		vn, err := m.walk(p, "f")
		if err != nil {
			t.Fatalf("walk: %v", err)
		}
		p.Sleep(8 * time.Second) // well past the 5s attribute timeout
		base := m.Stats.TotalCalls()
		if err := m.freshAttrs(p, vn); err != nil {
			t.Fatalf("freshAttrs: %v", err)
		}
		if got := m.Stats.TotalCalls() - base; got != 0 {
			t.Errorf("repeat stat under read lease cost %d RPCs, want 0", got)
		}
	})
}

func TestLeaseSharingEvictsWriter(t *testing.T) {
	r := newLeaseRig(t, 2, nil)
	writer := r.mount(leaseClient())
	reader := r.mount(leaseClient())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, writer, "shared", []byte("leased-version-1"))
		if writer.Stats.RPCCount(nfsproto.ProcWrite) != 0 {
			t.Fatal("writer pushed despite write lease")
		}
		// A second client opens the file: the server must evict the
		// writer (who flushes) before the reader's lease is granted.
		got := readFile(t, p, reader, "shared")
		if string(got) != "leased-version-1" {
			t.Errorf("reader saw %q", got)
		}
		if writer.Stats.LeaseEvictions == 0 {
			t.Error("writer was never evicted")
		}
		if writer.Stats.RPCCount(nfsproto.ProcWrite) == 0 {
			t.Error("eviction did not flush the writer's dirty data")
		}
		if r.srv.Stats.Evictions.Load() == 0 {
			t.Error("server sent no eviction notices")
		}
	})
}

func TestLeaseWriteAfterReaderEvicted(t *testing.T) {
	r := newLeaseRig(t, 3, nil)
	a := r.mount(leaseClient())
	b := r.mount(leaseClient())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, a, "f", []byte("v1"))
		// b reads (lease conflict evicts a's write lease; read leases can
		// then be shared).
		if got := readFile(t, p, b, "f"); string(got) != "v1" {
			t.Fatalf("b read %q", got)
		}
		// a rewrites: needs the write lease back, which evicts b.
		writeFile(t, p, a, "f", []byte("v2"))
		p.Sleep(2 * time.Second)
		if got := readFile(t, p, b, "f"); string(got) != "v2" {
			t.Errorf("b read %q after rewrite, want v2", got)
		}
	})
}

func TestPlainClientGetsTryLaterThenData(t *testing.T) {
	r := newLeaseRig(t, 4, nil)
	leased := r.mount(leaseClient())
	plain := r.mount(Reno())
	r.run(t, func(p *sim.Proc) {
		writeFile(t, p, leased, "f", pattern(8192))
		if leased.Stats.RPCCount(nfsproto.ProcWrite) != 0 {
			t.Fatal("leased writer pushed at close")
		}
		// The plain client's read RPC hits the write lease: TRYLATER,
		// eviction, retry — and then coherent data.
		got := readFile(t, p, plain, "f")
		if !bytes.Equal(got, pattern(8192)) {
			t.Error("plain client read incoherent data")
		}
		if leased.Stats.LeaseEvictions == 0 {
			t.Error("write lease survived a foreign read")
		}
	})
}

func TestLeaseRenewalProtectsDirtyData(t *testing.T) {
	r := newLeaseRig(t, 5, func(o *server.Options) {
		o.LeaseDuration = 10 * time.Second
	})
	opts := leaseClient()
	opts.LeaseDuration = 10 * time.Second
	opts.UpdateFlush = false // isolate the lease machinery from the 30s push
	m := r.mount(opts)
	r.run(t, func(p *sim.Proc) {
		f, err := m.Create(p, "f", 0644)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		f.Write(p, pattern(8192))
		f.Close(p)
		vn := f.vn
		// Long after several lease terms, the data must be safe on the
		// server: either still leased (renewals) or flushed before lapse.
		p.Sleep(60 * time.Second)
		dirty := m.bufc.DirtyBufs(vn.fileid, vn.gen)
		stillLeased := m.leaseFor(vn, nfsproto.LeaseWrite) != nil
		if len(dirty) > 0 && !stillLeased {
			t.Error("dirty data with no live lease: unsafe")
		}
		if !stillLeased && m.Stats.RPCCount(nfsproto.ProcWrite) == 0 {
			t.Error("lease lapsed without flushing")
		}
	})
}

func TestLeaseFallbackOnOldServer(t *testing.T) {
	// Server without the extension: the client must degrade to ordinary
	// consistency, transparently.
	r := newLeaseRig(t, 6, func(o *server.Options) {
		o.Leases = false
		o.ReaddirLook = false
	})
	m := r.mount(leaseClient())
	r.run(t, func(p *sim.Proc) {
		data := pattern(8192)
		writeFile(t, p, m, "f", data)
		if m.Stats.RPCCount(nfsproto.ProcWrite) == 0 {
			t.Error("no push-on-close despite lease fallback")
		}
		if got := readFile(t, p, m, "f"); !bytes.Equal(got, data) {
			t.Error("fallback roundtrip corrupted")
		}
		if !m.leasesBroken {
			t.Error("client did not notice the missing extension")
		}
	})
}

func TestReadDirLookPrimesCaches(t *testing.T) {
	rpcsFor := func(useExt bool) (int, int) {
		r := newLeaseRig(t, 7, nil)
		opts := Reno()
		opts.ReaddirLook = useExt
		m := r.mount(opts)
		var getattrs, lookups int
		r.run(t, func(p *sim.Proc) {
			m.Mkdir(p, "d", 0755)
			for i := 0; i < 20; i++ {
				writeFile(t, p, m, fmt.Sprintf("d/f%02d", i), []byte("x"))
			}
			p.Sleep(6 * time.Second) // age the attribute caches
			base := m.Stats
			// ls -l: list, then stat every entry.
			ents, err := m.ReadDirLook(p, "d")
			if err != nil {
				t.Errorf("readdirlook: %v", err)
				return
			}
			for _, ent := range ents {
				if ent.Name == "." || ent.Name == ".." {
					continue
				}
				if _, err := m.Getattr(p, "d/"+ent.Name); err != nil {
					t.Errorf("getattr %s: %v", ent.Name, err)
				}
			}
			getattrs = m.Stats.RPCCount(nfsproto.ProcGetattr) - base.Calls[nfsproto.ProcGetattr]
			lookups = m.Stats.RPCCount(nfsproto.ProcLookup) - base.Calls[nfsproto.ProcLookup]
		})
		return getattrs, lookups
	}
	gExt, lExt := rpcsFor(true)
	gStd, lStd := rpcsFor(false)
	if gExt+lExt >= gStd+lStd {
		t.Fatalf("readdirlook did not reduce RPCs: ext=%d+%d std=%d+%d", gExt, lExt, gStd, lStd)
	}
	// Directory-level attribute refreshes remain (the walk validates the
	// parent), but per-entry getattrs must be gone.
	if gExt > 3 {
		t.Errorf("ls -l after readdirlook issued %d getattrs, want <= 3 (dir-level only)", gExt)
	}
}

func TestAdaptiveRsizeShrinksUnderLoss(t *testing.T) {
	env := sim.New(8)
	defer env.Close()
	nt := netsim.New(env)
	clientNode := nt.AddNode(netsim.NodeConfig{Name: "client"})
	serverNode := nt.AddNode(netsim.NodeConfig{Name: "server"})
	cfg := netsim.Ethernet("eth")
	cfg.LossProb = 0.08 // 8K reads (6 fragments) rarely survive
	nt.Connect(clientNode, serverNode, cfg)
	nt.ComputeRoutes()
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	srv.AttachNode(serverNode)
	srv.ServeUDP(server.NFSPort)

	opts := Reno()
	opts.AdaptiveRsize = true
	opts.ReadAhead = 0
	tr := transport.NewUDP(clientNode, 9001, serverNode.ID, server.NFSPort, transport.DynamicUDP())
	m := NewMount(clientNode, tr, srv.RootFH(), opts)
	done := false
	env.Spawn("test", func(p *sim.Proc) {
		data := pattern(8 * 8192)
		f, err := m.Create(p, "big", 0644)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		f.Write(p, data)
		f.Close(p)
		m.invalidate(f.vn)
		g, err := m.Open(p, "big")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		buf := make([]byte, 4096)
		var got []byte
		for {
			n, err := g.Read(p, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, data) {
			t.Error("adaptive read corrupted data")
		}
		done = true
	})
	env.Run(30 * time.Minute)
	if !done {
		t.Fatal("did not finish")
	}
	if m.rsize >= 8192 {
		t.Errorf("rsize = %d; should have shrunk under fragment loss", m.rsize)
	}
}

func TestAdaptiveRsizeStaysFullOnCleanLAN(t *testing.T) {
	r := newLeaseRig(t, 9, nil)
	opts := Reno()
	opts.AdaptiveRsize = true
	m := r.mount(opts)
	r.run(t, func(p *sim.Proc) {
		data := pattern(6 * 8192)
		writeFile(t, p, m, "big", data)
		got := readFile(t, p, m, "big")
		if !bytes.Equal(got, data) {
			t.Error("roundtrip corrupted")
		}
	})
	if m.rsize != 8192 {
		t.Errorf("rsize = %d on a clean LAN, want 8192", m.rsize)
	}
}

func TestServerLeaseTableExpiry(t *testing.T) {
	r := newLeaseRig(t, 10, func(o *server.Options) {
		o.LeaseDuration = 5 * time.Second
	})
	opts := leaseClient()
	opts.LeaseDuration = 5 * time.Second
	opts.UpdateFlush = false
	m := r.mount(opts)
	r.run(t, func(p *sim.Proc) {
		f, _ := m.Create(p, "f", 0644)
		f.Write(p, []byte("x"))
		f.Close(p)
		if r.srv.Leases() == 0 {
			t.Error("no lease on the server after leased write")
		}
		// Stop renewing (drop the client's lease record) and let it lapse.
		m.flushVnode(p, f.vn, true)
		m.dropLease(f.vn)
		p.Sleep(20 * time.Second)
		if r.srv.Leases() != 0 {
			t.Errorf("%d leases survive long past expiry", r.srv.Leases())
		}
	})
}
