package client

import (
	"fmt"
	"sort"
	"time"

	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

// Client side of the NQNFS-style lease extension (Future Directions): with
// a write lease held, delayed writes need no push-on-close — the server
// guarantees nobody else caches the file, and evicts us (callback + flush
// + VACATED) if somebody asks. Close/open consistency is preserved with
// the write RPC count of the "no consistency" mount, which is exactly the
// bound §5 measures.

// clientLease is one held lease.
type clientLease struct {
	vn     *vnode
	mode   uint32
	expiry sim.Time
}

// leaseMargin is how close to expiry a lease may be and still be relied
// upon; within the margin it is renewed (or the data flushed).
const leaseMargin = 3 * time.Second

// initLeases binds the callback socket and starts the callback and
// renewal processes. Called from NewMount when UseLeases is set. The
// callback port comes from the node's ephemeral range, so many mounts —
// and many simulated environments — coexist without a shared global.
func (m *Mount) initLeases() {
	m.leases = make(map[vnKey]*clientLease)
	m.cbPort = m.Node.EphemeralPort()
	m.cbSock = m.Node.UDPSocket(m.cbPort)
	m.env.Spawn(m.Opts.Name+".lease-cb", m.leaseCallbackProc)
	m.env.Spawn(m.Opts.Name+".lease-renew", m.leaseRenewProc)
}

// leaseFor returns the live lease covering (vn, mode), nil otherwise.
func (m *Mount) leaseFor(vn *vnode, mode uint32) *clientLease {
	l := m.leases[vnKey{vn.fileid, vn.gen}]
	if l == nil {
		return nil
	}
	if m.env.Now()+leaseMargin >= l.expiry {
		return nil // too close to expiry to trust
	}
	if mode == nfsproto.LeaseWrite && l.mode != nfsproto.LeaseWrite {
		return nil
	}
	return l
}

// getLease acquires or renews a lease, retrying through TRYLATER while the
// server evicts a conflicting holder. It returns false when leases are
// unavailable (old server) or cannot be granted; callers fall back to
// ordinary consistency.
func (m *Mount) getLease(p *sim.Proc, vn *vnode, mode uint32) bool {
	if !m.Opts.UseLeases || m.leasesBroken {
		return false
	}
	if m.leaseFor(vn, mode) != nil {
		return true
	}
	durSec := uint32(m.leaseDuration() / time.Second)
	for attempt := 0; attempt < 10; attempt++ {
		d, err := m.call(p, nfsproto.ProcLease, func(e *xdr.Encoder) {
			(&nfsproto.LeaseArgs{
				File: vn.fh, Mode: mode,
				Duration: durSec, CallbackPort: uint32(m.cbPort),
			}).Encode(e)
		})
		if err != nil {
			// PROC_UNAVAIL from a server without the extension surfaces
			// as an RPC-level error: stop asking.
			m.leasesBroken = true
			return false
		}
		res, err := nfsproto.DecodeLeaseRes(d)
		if err != nil {
			m.leasesBroken = true
			return false
		}
		switch res.Status {
		case nfsproto.OK:
			// The grant carries fresh attributes: validate the cache now,
			// then trust it for the lease term. Dirty data survives the
			// purge: it is flushed first (it is newer by definition).
			// Attributes fold in before the purge so invalidate resets
			// vn.size from the server's current size — a foreign truncation
			// must shrink our view, which updateAttrs alone never does.
			changed := vn.hasCachedMtime && res.Attr.Mtime != vn.cachedMtime
			m.updateAttrs(vn, res.Attr, false)
			if changed {
				m.flushVnode(p, vn, true)
				m.invalidate(vn)
			}
			vn.cachedMtime = res.Attr.Mtime
			vn.hasCachedMtime = true
			m.leases[vnKey{vn.fileid, vn.gen}] = &clientLease{
				vn: vn, mode: mode,
				expiry: m.env.Now() + sim.Time(res.Duration)*time.Second,
			}
			m.Stats.LeasesGranted++
			return true
		case nfsproto.ErrTryLater:
			m.Stats.LeaseTryLater++
			p.Sleep(time.Second)
		default:
			return false
		}
	}
	return false
}

// wantHint reports whether RPCs should carry lease piggyback hints.
func (m *Mount) wantHint() bool {
	return m.Opts.UseLeases && !m.leasesBroken
}

// leaseHint appends a piggyback lease request to an RPC's arguments.
// Servers without the extension ignore the trailing bytes.
func (m *Mount) leaseHint(e *xdr.Encoder, mode uint32) {
	(&nfsproto.LeaseHint{
		Mode:         mode,
		Duration:     uint32(m.leaseDuration() / time.Second),
		CallbackPort: uint32(m.cbPort),
	}).Encode(e)
}

// absorbPiggy records a lease grant piggybacked on a reply. Callers fold
// the reply's attributes in first; a fresh read grant over a cache loaded
// under an older mtime purges it (dirty data flushed first — it is newer
// by definition) before the lease starts vouching for it. Write grants
// skip the check: they arrive on our own CREATE/WRITE, whose data the
// cache is authoritative for.
func (m *Mount) absorbPiggy(p *sim.Proc, d *xdr.Decoder, vn *vnode) {
	if !m.wantHint() {
		return
	}
	g := nfsproto.DecodeLeasePiggy(d)
	if g == nil {
		return
	}
	k := vnKey{vn.fileid, vn.gen}
	if g.Mode == nfsproto.LeaseRead && m.leases[k] == nil &&
		vn.hasCachedMtime && vn.attr.Mtime != vn.cachedMtime {
		m.flushVnode(p, vn, true)
		m.invalidate(vn)
	}
	m.leases[k] = &clientLease{
		vn: vn, mode: g.Mode,
		expiry: m.env.Now() + sim.Time(g.Duration)*time.Second,
	}
	// Coherent by contract from here: the server evicts us before the file
	// changes under the lease, so the cache's mtime baseline is current.
	vn.cachedMtime = vn.attr.Mtime
	vn.hasCachedMtime = true
	m.Stats.LeasesGranted++
	m.Stats.LeasePiggyGrants++
}

func (m *Mount) leaseDuration() sim.Time {
	if m.Opts.LeaseDuration > 0 {
		return m.Opts.LeaseDuration
	}
	return 30 * time.Second
}

// vacateAll surrenders every held lease at unmount. Without this, the
// server-side records linger until expiry and the next mount's first
// conflicting access eats a full TRYLATER-until-expiry wait. Dirty data is
// already on the server (Close syncs before calling).
func (m *Mount) vacateAll(p *sim.Proc) {
	if len(m.leases) == 0 || p == nil {
		return
	}
	keys := make([]vnKey, 0, len(m.leases))
	for k := range m.leases {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].fileid != keys[j].fileid {
			return keys[i].fileid < keys[j].fileid
		}
		return keys[i].gen < keys[j].gen
	})
	for _, k := range keys {
		vn := m.leases[k].vn
		delete(m.leases, k)
		m.call(p, nfsproto.ProcVacated, func(e *xdr.Encoder) {
			(&nfsproto.VacatedArgs{File: vn.fh}).Encode(e)
		})
	}
}

// dropLease forgets a lease without telling the server (expiry handles
// the server side).
func (m *Mount) dropLease(vn *vnode) {
	delete(m.leases, vnKey{vn.fileid, vn.gen})
}

// surrender flushes a leased file and answers the server's eviction.
func (m *Mount) surrender(p *sim.Proc, vn *vnode) {
	m.flushVnode(p, vn, true)
	m.invalidate(vn)
	vn.attrValid = false
	m.dropLease(vn)
	m.call(p, nfsproto.ProcVacated, func(e *xdr.Encoder) {
		(&nfsproto.VacatedArgs{File: vn.fh}).Encode(e)
	})
	m.Stats.LeaseEvictions++
}

// leaseCallbackProc handles the server's eviction notices.
func (m *Mount) leaseCallbackProc(p *sim.Proc) {
	for {
		dg, ok := m.cbSock.Recv(p)
		if !ok {
			return
		}
		d := xdr.NewDecoder(dg.Payload)
		magic, err := d.Uint32()
		if err != nil || magic != nfsproto.EvictionMagic {
			continue
		}
		raw, err := d.FixedOpaque(nfsproto.FHSize)
		if err != nil {
			continue
		}
		var fh nfsproto.FH
		copy(fh[:], raw)
		_, fileid, gen := fh.Parts()
		l := m.leases[vnKey{fileid, gen}]
		if l == nil {
			continue // already expired or surrendered
		}
		m.surrender(p, l.vn)
	}
}

// leaseRenewProc keeps leases on dirty files alive and flushes before any
// lease is allowed to lapse, so the server never re-grants while we hold
// unwritten data.
func (m *Mount) leaseRenewProc(p *sim.Proc) {
	interval := m.leaseDuration() / 6
	if interval < time.Second {
		interval = time.Second
	}
	for !m.closed {
		p.Sleep(interval)
		if m.closed {
			return
		}
		now := m.env.Now()
		// Deterministic order: map iteration order must not leak into
		// simulated behaviour.
		keys := make([]vnKey, 0, len(m.leases))
		for k := range m.leases {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].fileid != keys[j].fileid {
				return keys[i].fileid < keys[j].fileid
			}
			return keys[i].gen < keys[j].gen
		})
		for _, k := range keys {
			l := m.leases[k]
			remaining := l.expiry - now
			if remaining > 2*interval+leaseMargin {
				continue
			}
			dirty := len(m.bufc.DirtyBufs(l.vn.fileid, l.vn.gen)) > 0
			if dirty && m.getLease(p, l.vn, l.mode) {
				continue // renewed
			}
			if dirty {
				m.flushVnode(p, l.vn, true)
			}
			delete(m.leases, k)
		}
	}
}

// tryLaterBackoff sleeps before retrying an operation refused with
// NFSERR_TRYLATER (the server is evicting a conflicting lease holder).
func tryLaterBackoff(p *sim.Proc, attempt int) {
	d := time.Duration(attempt+1) * 500 * time.Millisecond
	if d > 3*time.Second {
		d = 3 * time.Second
	}
	p.Sleep(d)
}

// ReadDirLook lists a directory with the readdir_and_lookup_files
// extension, priming the attribute and name caches from the entries so a
// following per-file stat pass costs no RPCs. It falls back to ReadDir on
// servers without the extension.
func (m *Mount) ReadDirLook(p *sim.Proc, path string) ([]nfsproto.DirEntry, error) {
	if !m.Opts.ReaddirLook || m.rdlBroken {
		return m.ReadDir(p, path)
	}
	vn, err := m.walk(p, path)
	if err != nil {
		return nil, err
	}
	if err := m.checkConsistency(p, vn); err != nil {
		return nil, err
	}
	if vn.dirCache != nil && vn.dirCacheMtime == vn.attr.Mtime {
		return vn.dirCache, nil
	}
	var all []nfsproto.DirEntry
	cookie := uint32(0)
	for {
		d, err := m.call(p, nfsproto.ProcReaddirLook, func(e *xdr.Encoder) {
			(&nfsproto.ReaddirArgs{Dir: vn.fh, Cookie: cookie, Count: nfsproto.MaxData}).Encode(e)
		})
		if err != nil {
			m.rdlBroken = true
			return m.ReadDir(p, path)
		}
		res, err := nfsproto.DecodeReaddirLookRes(d)
		if err != nil {
			m.rdlBroken = true
			return m.ReadDir(p, path)
		}
		if res.Status != nfsproto.OK {
			return nil, res.Status.Error()
		}
		for i := range res.Entries {
			ent := &res.Entries[i]
			child := m.getVnode(ent.File)
			m.updateAttrs(child, &ent.Attr, false)
			m.namec.Enter(vn.fileid, vn.gen, ent.Entry.Name, child.fileid, child.gen)
			all = append(all, ent.Entry)
		}
		if res.EOF || len(res.Entries) == 0 {
			break
		}
		cookie = res.Entries[len(res.Entries)-1].Entry.Cookie
	}
	vn.dirCache = all
	vn.dirCacheMtime = vn.attr.Mtime
	return all, nil
}

// leaseString summarizes lease state for debugging.
func (m *Mount) leaseString() string {
	return fmt.Sprintf("%d leases held", len(m.leases))
}
