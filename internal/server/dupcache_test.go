package server

import (
	"fmt"
	"testing"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/xdr"
)

// TestDupCacheChurnStaysBounded hammers the cache with far more distinct
// (peer, xid) keys than it can hold and checks the size invariant after
// every insertion: the cache must never exceed its capacity no matter how
// fast clients burn through xids.
func TestDupCacheChurnStaysBounded(t *testing.T) {
	const cap = 128
	c := newDupCache(cap)
	reply := &mbuf.Chain{}
	for peer := 0; peer < 16; peer++ {
		for xid := 0; xid < 2000; xid++ {
			c.put(dupKey{peer: fmt.Sprintf("p%d", peer), xid: uint32(xid), proc: 10}, reply)
			if c.len() > cap {
				t.Fatalf("cache grew to %d entries (cap %d) at peer %d xid %d",
					c.len(), cap, peer, xid)
			}
		}
	}
	if c.len() != cap {
		t.Fatalf("cache len = %d after churn, want %d", c.len(), cap)
	}
}

// TestDupCacheLRUKeepsHotEntries: an entry that keeps getting hit (a
// client stuck retransmitting one call) must survive churn that evicts
// colder entries.
func TestDupCacheLRUKeepsHotEntries(t *testing.T) {
	c := newDupCache(8)
	hot := &mbuf.Chain{}
	hotKey := dupKey{peer: "hot", xid: 1, proc: 10}
	c.put(hotKey, hot)
	for i := 0; i < 100; i++ {
		c.put(dupKey{peer: "cold", xid: uint32(i), proc: 10}, &mbuf.Chain{})
		if c.get(hotKey) != hot {
			t.Fatalf("hot entry evicted after %d cold insertions", i+1)
		}
	}
	if c.get(dupKey{peer: "cold", xid: 0, proc: 10}) != nil {
		t.Fatal("cold0 should have been evicted long ago")
	}
	// Overwriting an existing key must not grow the cache.
	n := c.len()
	c.put(hotKey, &mbuf.Chain{})
	if c.len() != n {
		t.Fatalf("overwrite grew cache from %d to %d", n, c.len())
	}
}

// TestDupCacheReplayAcrossChurn drives churn through the server's own
// frontend: a replayed REMOVE is answered from cache while its entry is
// warm, and re-executed (returning ErrNoEnt — the §1 wart) once enough
// intervening non-idempotent calls from other xids have evicted it.
func TestDupCacheReplayAcrossChurn(t *testing.T) {
	opts := Reno()
	opts.DupCacheSize = 16
	s := New(memfs.New(1, nil, nil), opts)
	mustCreate(t, s, s.RootFH(), "victim")
	rmArgs := func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: s.RootFH(), Name: "victim"}).Encode(e)
	}
	_, d := callPeer(t, s, "churner", 5000, nfsproto.ProcRemove, rmArgs)
	if res, _ := nfsproto.DecodeStatusRes(d); res.Status != nfsproto.OK {
		t.Fatalf("remove: %v", res.Status)
	}
	// Warm replay: answered from cache with the original OK.
	_, d = callPeer(t, s, "churner", 5000, nfsproto.ProcRemove, rmArgs)
	if res, _ := nfsproto.DecodeStatusRes(d); res.Status != nfsproto.OK {
		t.Fatalf("warm replay not served from cache: %v", res.Status)
	}
	if s.Stats.DupHits.Load() != 1 {
		t.Fatalf("DupHits = %d, want 1", s.Stats.DupHits.Load())
	}
	// Churn the cache full of other xids.
	for i := 0; i < opts.DupCacheSize; i++ {
		_, d = callPeer(t, s, "churner", uint32(6000+i), nfsproto.ProcCreate, func(e *xdr.Encoder) {
			(&nfsproto.CreateArgs{
				Where: nfsproto.DiropArgs{Dir: s.RootFH(), Name: fmt.Sprintf("churn%d", i)},
				Attr:  nfsproto.NewSattr(),
			}).Encode(e)
		})
		if res, _ := nfsproto.DecodeDiropRes(d); res.Status != nfsproto.OK {
			t.Fatalf("churn create %d: %v", i, res.Status)
		}
	}
	// Cold replay: the entry is gone, the call re-executes, and the
	// second execution sees the file already removed.
	_, d = callPeer(t, s, "churner", 5000, nfsproto.ProcRemove, rmArgs)
	if res, _ := nfsproto.DecodeStatusRes(d); res.Status != nfsproto.ErrNoEnt {
		t.Fatalf("cold replay status = %v, want ErrNoEnt (re-executed)", res.Status)
	}
	if s.Stats.DupHits.Load() != 1 {
		t.Fatalf("DupHits = %d after cold replay, want still 1", s.Stats.DupHits.Load())
	}
	if s.dupc.len() > opts.DupCacheSize {
		t.Fatalf("dup cache len %d exceeds cap %d", s.dupc.len(), opts.DupCacheSize)
	}
}
