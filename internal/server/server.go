// Package server implements the NFS v2 server over memfs, with the two
// personalities §5 compares:
//
//   - Reno: a VFS name-lookup cache in front of directory scans, directory
//     blocks chained off vnodes (cheap buffer-cache searches), and RPC
//     arguments/results handled directly in mbufs.
//   - Ultrix (Sun-reference-port style): no name cache, linear buffer-cache
//     scans, and a user-library XDR layer that costs an extra copy per call.
//
// Every call charges the server node's CPU through the netsim cost model
// under profile buckets (nfs, buf_copy, dirscan, xdr_layer, ...), the disk
// pays the synchronous writes NFS v2 statelessness demands, and a
// duplicate-request cache ([Juszczak89]) suppresses re-execution of
// retransmitted non-idempotent calls.
package server

import (
	"sync"
	"sync/atomic"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/tcpsim"
	"renonfs/internal/vfs"
	"renonfs/internal/xdr"
)

// Server CPU cost table, µs at 1 MIPS (see DESIGN.md §4).
const (
	costDispatch     = 600.0  // RPC decode + dispatch + reply header
	costVOP          = 180.0  // filesystem operation base cost
	costBufCopyByte  = 1.0    // buffer cache <-> mbuf copy, per byte
	costDirScanBuf   = 35.0   // per buffer examined in a directory search
	costNameCacheHit = 60.0   // name cache probe
	costXDRCall      = 1400.0 // Ultrix user-library RPC/XDR layer, per call
	costXDRByte      = 0.5    // Ultrix XDR layer, per argument/result byte
)

// Options selects a server personality and sizes.
type Options struct {
	Name string
	// NameCache enables the server-side name lookup cache.
	NameCache bool
	// ChainedBufs selects vnode-chained buffer-cache lookups; false means
	// linear scans of the whole cache.
	ChainedBufs bool
	// XDRCopyLayer charges the reference port's user-library XDR costs.
	XDRCopyLayer bool
	// LendPages is the §3 "further work" optimization: buffer-cache pages
	// are lent to the network code as mbuf clusters, skipping the
	// buffer-cache-to-mbuf copy on reads.
	LendPages bool
	// CacheBufs is the buffer cache capacity (block buffers).
	CacheBufs int
	// DupCacheSize bounds the duplicate request cache.
	DupCacheSize int
	// NFSDs is the number of server daemons for the simulated frontends.
	NFSDs int
	// Readers is the number of sharded UDP ingest readers the real-socket
	// frontend (internal/nfsnet) runs: each owns an SO_REUSEPORT socket
	// where the platform supports it and feeds a bounded per-reader ring.
	// 0 means one per GOMAXPROCS; nfsnet clamps the count to NFSDs so
	// every ring has a drainer. The simulator ignores it.
	Readers int
	// NoReusePort forces the real-socket frontend's shared-socket ingest
	// fallback even where SO_REUSEPORT is available. Under reuseport the
	// kernel pins a peer's 4-tuple to one socket, so a client's
	// retransmissions always land on the same reader; on a shared socket
	// they spread across readers — the hostile cross-reader path the
	// fleet rig's herd and storm scenarios exist to exercise.
	NoReusePort bool
	// NoFastPath disables the real-socket frontend's shallow dispatch path
	// (fastpath.go): every datagram takes the generic mbuf/full-decode
	// route. Escape hatch and the "before" leg of the fast-path benchmarks.
	NoFastPath bool
	// Leases enables the NQNFS-style cache lease extension (procedures
	// LEASE/VACATED) from the paper's Future Directions.
	Leases bool
	// ReaddirLook enables the readdir_and_lookup_files extension.
	ReaddirLook bool
	// LeaseDuration bounds granted leases (default 30s).
	LeaseDuration time.Duration
	// WriteGathering batches the metadata (inode/indirect) disk writes of
	// back-to-back WRITE RPCs to the same file, the [Juszczak89] nfsd
	// optimization the paper cites: the data still goes to disk before the
	// reply, but a burst from the client's biods pays the inode update
	// once per gather window instead of once per RPC.
	WriteGathering bool
}

// Reno returns the tuned 4.3BSD Reno server personality.
func Reno() Options {
	return Options{
		Name: "reno", NameCache: true, ChainedBufs: true,
		CacheBufs: 192, DupCacheSize: 64, NFSDs: 4,
	}
}

// Ultrix returns the Sun-reference-port (Ultrix 2.2) personality. The
// buffer cache is configured identically, per the appendix ("identically
// sized buffer caches"); what differs is how it is searched and the RPC
// layering.
func Ultrix() Options {
	return Options{
		Name: "ultrix", NameCache: false, ChainedBufs: false,
		XDRCopyLayer: true, CacheBufs: 192, DupCacheSize: 64, NFSDs: 4,
	}
}

// Stats counts server activity. The fields are atomics so that the
// real-socket frontends (which serve each connection on its own goroutine)
// can record calls without holding the nfsnet kernel lock, and so readers
// like the nfsd stats endpoint can snapshot them concurrently.
type Stats struct {
	Calls     [nfsproto.NumProcsExt]atomic.Int64
	Errors    atomic.Int64
	DupHits   atomic.Int64
	BytesIn   atomic.Int64
	BytesOut  atomic.Int64
	Evictions atomic.Int64 // lease eviction notices sent
}

// Total returns the total call count.
func (s *Stats) Total() int64 {
	var n int64
	for i := range s.Calls {
		n += s.Calls[i].Load()
	}
	return n
}

// Server is an NFS server instance.
//
// Concurrency: HandleCall is safe to call from many goroutines at once —
// the real-socket frontends (internal/nfsnet) run a pool of nfsd workers
// plus one goroutine per TCP connection, all dispatching into one Server.
// The giant per-server lock of earlier revisions is gone; in its place the
// caches shard their own locks (stripes below), memfs carries per-file RW
// locks, and the lease/mount/gather side tables take small leaf mutexes.
// Under the simulator none of this matters (the cooperative scheduler runs
// one proc at a time) and the caches stay at one stripe so eviction order
// is bit-for-bit the single-cache behaviour the golden runs pin down.
type Server struct {
	FS    *memfs.FS
	Opts  Options
	Node  *netsim.Node // nil outside the simulator
	bufc  *vfs.StripedBufCache
	namec *vfs.StripedNameCache
	dupc  *dupCache
	// stripes is the cache lock-stripe count: 1 until a concurrent
	// frontend calls EnableConcurrentDispatch (before serving traffic).
	stripes int
	Stats   Stats

	// Metrics is the server's registry: per-procedure service-time
	// histograms plus call/byte counters, safe to snapshot concurrently
	// (the nfsd stats endpoint and nfsstat read it live).
	Metrics *metrics.Registry
	// Hot-path metric handles, interned once in New: looking a counter up
	// by name costs a map probe plus a string concatenation per call
	// otherwise.
	cCalls, cBytesIn, cBytesOut, cDupHits, cErrors *metrics.Counter
	// Lease protocol counters (lease.*), interned for the piggyback path
	// which runs on every hinted call.
	cLeaseGrants, cLeasePiggy, cLeaseRenewals     *metrics.Counter
	cLeaseTryLater, cLeaseVacates, cLeaseExpiries *metrics.Counter
	cLeaseEvict                                   *metrics.Counter
	procCalls                                     [nfsproto.NumProcsExt]*metrics.Counter
	procSvc                                       [nfsproto.NumProcsExt]*metrics.Histogram
	// Tracer, when set, receives ServerCall and DupCacheHit lifecycle
	// events for every RPC handled.
	Tracer metrics.Tracer
	// epoch anchors wall-clock service-time measurement when the server
	// runs over real sockets (no simulator process to ask for time).
	epoch time.Time

	// Lease extension state (lease.go). leaseMu covers leaseTab and
	// noGrantsUntil; it is never held across a callback-socket send (which
	// parks the sending proc under the simulator).
	leaseMu  sync.Mutex
	leaseTab map[nfsproto.FH]*leaseState
	cbSock   *netsim.UDPSocket
	// noGrantsUntil implements NQNFS crash recovery: after a reboot the
	// server refuses new leases for one lease period, so every lease
	// granted before the crash has expired before a conflicting one can
	// exist.
	noGrantsUntil sim.Time
	// down simulates a crashed (unresponsive) server: frontends drop
	// requests, clients retransmit — the statelessness story of §1. It is
	// atomic because the real-socket frontends (internal/nfsnet) flip it
	// from goroutines other than the ones serving requests.
	down atomic.Bool
	// conns tracks live simulated TCP connections so Crash can reset them
	// the way a reboot kills established connections.
	conns map[*tcpsim.Conn]struct{}
	// MOUNT protocol state (mountd.go).
	mounts *mountState
	// Write-gathering state: per-file end of the current metadata window,
	// under its own leaf mutex.
	gatherMu sync.Mutex
	gather   map[nfsproto.FH]sim.Time
}

// Crash simulates a server reboot: every piece of volatile state a real
// reboot would lose is dropped — the buffer cache, the name cache, the
// duplicate request cache and the lease table — and lease grants are
// refused for one lease period (NQNFS-style recovery). The filesystem
// itself (the disk) survives. Callers typically pair this with
// SetDown(true) ... SetDown(false) around a virtual outage window.
// Callers over real sockets must quiesce the dispatch pool first (the
// nfsnet frontend's Crash does); under the simulator the single-threaded
// scheduler makes that automatic.
func (s *Server) Crash() {
	s.resetCaches()
	s.leaseMu.Lock()
	s.leaseTab = nil
	s.noGrantsUntil = s.now() + s.leaseDuration()
	s.leaseMu.Unlock()
	s.AbortTCPConns()
	metrics.Emit(s.Tracer, metrics.ServerCrash{RecoverFor: time.Duration(s.leaseDuration())})
}

// resetCaches rebuilds the volatile caches at the current stripe count.
func (s *Server) resetCaches() {
	s.bufc = vfs.NewStripedBufCache(s.Opts.CacheBufs, s.Opts.ChainedBufs, s.stripes)
	s.namec = vfs.NewStripedNameCache(s.stripes)
	s.namec.SetEnabled(s.Opts.NameCache)
	s.dupc = newDupCache(s.Opts.DupCacheSize)
	s.dupc.instrument(
		s.Metrics.Counter("server.dupc.shard_hits"),
		s.Metrics.Counter("server.dupc.contended"),
		s.Metrics.Counter("server.dupc.inflight_drops"),
	)
}

// EnableConcurrentDispatch widens the cache lock striping for a pool of
// concurrent frontends. It must be called before any traffic is served
// (internal/nfsnet does, from Serve): the caches are rebuilt empty, which
// is invisible at that point, and swapping them later would race with
// in-flight calls.
func (s *Server) EnableConcurrentDispatch() {
	n := s.Opts.NFSDs * 2
	if n < 4 {
		n = 4
	}
	s.stripes = n
	s.resetCaches()
}

// AbortTCPConns resets every live simulated TCP connection, as a reboot
// would. Clients see the reset (or an RST on their next segment) and
// reconnect, replaying pending calls.
func (s *Server) AbortTCPConns() {
	for c := range s.conns {
		c.Abort()
	}
	s.conns = nil
}

// SetDown makes the frontends silently drop requests (true) or serve
// normally (false).
func (s *Server) SetDown(down bool) { s.down.Store(down) }

// Down reports whether the server is dropping requests.
func (s *Server) Down() bool { return s.down.Load() }

// New creates a server over fs.
func New(fs *memfs.FS, opts Options) *Server {
	if opts.CacheBufs == 0 {
		opts.CacheBufs = 192
	}
	if opts.DupCacheSize == 0 {
		opts.DupCacheSize = 64
	}
	if opts.NFSDs == 0 {
		opts.NFSDs = 4
	}
	s := &Server{
		FS:      fs,
		Opts:    opts,
		stripes: 1,
		Metrics: metrics.NewRegistry(),
		epoch:   time.Now(),
	}
	s.resetCaches()
	// Eager so concurrent first calls never race the lazy allocation.
	s.mounts = newMountState()
	s.cCalls = s.Metrics.Counter("nfs.calls")
	s.cBytesIn = s.Metrics.Counter("nfs.bytes_in")
	s.cBytesOut = s.Metrics.Counter("nfs.bytes_out")
	s.cDupHits = s.Metrics.Counter("nfs.dup_hits")
	s.cErrors = s.Metrics.Counter("nfs.errors")
	s.cLeaseGrants = s.Metrics.Counter("lease.grants")
	s.cLeasePiggy = s.Metrics.Counter("lease.piggy_grants")
	s.cLeaseRenewals = s.Metrics.Counter("lease.renewals")
	s.cLeaseTryLater = s.Metrics.Counter("lease.trylater")
	s.cLeaseVacates = s.Metrics.Counter("lease.vacates")
	s.cLeaseExpiries = s.Metrics.Counter("lease.expiries")
	s.cLeaseEvict = s.Metrics.Counter("lease.evictions")
	for proc := uint32(0); proc < nfsproto.NumProcsExt; proc++ {
		name := nfsproto.ProcName(proc)
		s.procCalls[proc] = s.Metrics.Counter("nfs.calls." + name)
		s.procSvc[proc] = s.Metrics.Histogram("nfs.service_ms." + name)
	}
	return s
}

// PublishMbufStats mirrors the mbuf package's pool/copy counters into the
// server registry so the nfsd -stats endpoint and nfsstat report the copy
// traffic §3 of the paper is about.
func (s *Server) PublishMbufStats() {
	ms := mbuf.Stats.Snapshot()
	s.Metrics.Counter("mbuf.copied_bytes").Store(ms.CopiedBytes)
	s.Metrics.Counter("mbuf.small_allocs").Store(ms.SmallAllocs)
	s.Metrics.Counter("mbuf.cluster_allocs").Store(ms.ClusterAllocs)
	s.Metrics.Counter("mbuf.pool_hits").Store(ms.PoolHits)
	s.Metrics.Counter("mbuf.pool_misses").Store(ms.PoolMisses)
	s.Metrics.Counter("mbuf.loaned_bytes").Store(ms.LoanedBytes)
	s.Metrics.Counter("mbuf.views").Store(ms.Views)
}

// AttachNode binds the server to a simulated host for CPU accounting.
func (s *Server) AttachNode(n *netsim.Node) { s.Node = n }

// SetNameCache toggles the server name cache at run time (the appendix
// experiment).
func (s *Server) SetNameCache(on bool) { s.namec.SetEnabled(on) }

// NameCacheStats exposes server name-cache behaviour.
func (s *Server) NameCacheStats() vfs.NameCacheStats { return s.namec.Stats() }

// BufCacheStats exposes server buffer-cache behaviour.
func (s *Server) BufCacheStats() vfs.CacheStats { return s.bufc.Stats() }

// RootFH returns the exported root file handle.
func (s *Server) RootFH() nfsproto.FH { return s.FS.FH(s.FS.Root()) }

// countErr records one NFS-level failure in both counter surfaces.
func (s *Server) countErr() {
	s.Stats.Errors.Add(1)
	s.cErrors.Add(1)
}

// svcNow reads the clock used for service-time measurement: virtual time
// under the simulator, wall clock when serving real sockets (p == nil).
func (s *Server) svcNow(p *sim.Proc) time.Duration {
	if p != nil {
		return time.Duration(p.Now())
	}
	return time.Since(s.epoch)
}

// charge bills CPU when attached to a simulated node.
func (s *Server) charge(p *sim.Proc, bucket string, us float64) {
	if s.Node == nil || p == nil {
		return
	}
	s.Node.ChargeCPU(p, bucket, s.Node.Model.Cost(us))
}

// nonIdempotent marks the procedures whose repetition corrupts state; their
// replies go through the duplicate request cache.
var nonIdempotent = [nfsproto.NumProcsExt]bool{
	nfsproto.ProcSetattr: true,
	nfsproto.ProcCreate:  true,
	nfsproto.ProcRemove:  true,
	nfsproto.ProcRename:  true,
	nfsproto.ProcLink:    true,
	nfsproto.ProcSymlink: true,
	nfsproto.ProcMkdir:   true,
	nfsproto.ProcRmdir:   true,
}

// errStatus maps memfs errors to NFS status codes.
func errStatus(err error) nfsproto.Status {
	switch err {
	case nil:
		return nfsproto.OK
	case memfs.ErrNoEnt:
		return nfsproto.ErrNoEnt
	case memfs.ErrExist:
		return nfsproto.ErrExist
	case memfs.ErrNotDir:
		return nfsproto.ErrNotDir
	case memfs.ErrIsDir:
		return nfsproto.ErrIsDir
	case memfs.ErrNotEmpty:
		return nfsproto.ErrNotEmpty
	case memfs.ErrStale:
		return nfsproto.ErrStale
	case memfs.ErrNoSpc:
		return nfsproto.ErrNoSpc
	case memfs.ErrNameLen:
		return nfsproto.ErrNameTooLong
	default:
		return nfsproto.ErrIO
	}
}

// HandleCall processes one RPC request message and returns the reply
// message (nil for undecodable garbage, which real servers also drop).
// peer identifies the caller for duplicate-request caching.
func (s *Server) HandleCall(p *sim.Proc, peer string, req *mbuf.Chain) *mbuf.Chain {
	return s.HandleCallSpan(p, peer, req, nil)
}

// HandleCallSpan is HandleCall carrying the request's latency span: the
// concurrent frontends pass their per-worker span so the decode, dupcache
// and service stages — and any lock waits underneath them — are attributed
// to this request. sp may be nil (the simulator and tests pass nil), and
// every stamp below is nil-safe.
func (s *Server) HandleCallSpan(p *sim.Proc, peer string, req *mbuf.Chain, sp *metrics.Span) *mbuf.Chain {
	s.Stats.BytesIn.Add(int64(req.Len()))
	s.cBytesIn.Add(int64(req.Len()))
	reqLen := req.Len()
	d := xdr.NewDecoder(req)
	var call rpc.Call
	if err := rpc.DecodeCallInto(d, &call); err != nil {
		sp.SetErr()
		return nil
	}
	sp.SetCall(call.XID, call.Proc)
	sp.Stamp(metrics.StageDecode)
	if call.Prog == nfsproto.MountProgram && call.Vers == nfsproto.MountVersion &&
		call.Proc <= nfsproto.MountProcExport {
		out := &mbuf.Chain{}
		e := xdr.NewEncoder(out)
		rpc.EncodeReply(out, call.XID, rpc.Success)
		if err := s.dispatchMount(p, call.Proc, peer, d, e); err != nil {
			out.Free()
			out = &mbuf.Chain{}
			rpc.EncodeReply(out, call.XID, rpc.GarbageArgs)
		}
		s.Stats.BytesOut.Add(int64(out.Len()))
		s.cBytesOut.Add(int64(out.Len()))
		return out
	}
	unavailable := call.Proc >= nfsproto.NumProcsExt ||
		(call.Proc >= nfsproto.NumProcs && !s.extensionEnabled(call.Proc))
	if call.Prog != nfsproto.Program || call.Vers != nfsproto.Version || unavailable {
		stat := uint32(rpc.ProcUnavail)
		if call.Prog != nfsproto.Program {
			stat = rpc.ProgUnavail
		} else if call.Vers != nfsproto.Version {
			stat = rpc.ProgMismatch
		}
		out := &mbuf.Chain{}
		rpc.EncodeReply(out, call.XID, stat)
		return out
	}
	s.charge(p, "nfs", costDispatch)
	if s.Opts.XDRCopyLayer {
		s.charge(p, "xdr_layer", costXDRCall+costXDRByte*float64(reqLen))
	}
	// Duplicate request cache for non-idempotent procedures. begin claims
	// the key before execution: a retransmission racing the original call
	// on another nfsd is dropped (the client retransmits again and finds
	// the committed reply) instead of executed a second time.
	dkey := dupKey{peer: peer, xid: call.XID, proc: call.Proc}
	if nonIdempotent[call.Proc] {
		cached, inflight := s.dupc.begin(dkey, sp)
		sp.Stamp(metrics.StageDupcheck)
		if inflight {
			sp.SetErr()
			return nil
		}
		if cached != nil {
			s.Stats.DupHits.Add(1)
			s.cDupHits.Add(1)
			metrics.Emit(s.Tracer, metrics.DupCacheHit{Proc: call.Proc})
			return cached.Clone()
		}
	}
	s.Stats.Calls[call.Proc].Add(1)
	s.cCalls.Add(1)
	s.procCalls[call.Proc].Add(1)
	begin := s.svcNow(p)

	out := &mbuf.Chain{}
	e := xdr.NewEncoder(out)
	rpc.EncodeReply(out, call.XID, rpc.Success)
	err := s.dispatch(p, call.Proc, peer, d, e, sp)
	sp.Stamp(metrics.StageService)
	if err != nil {
		sp.SetErr()
		// Argument decode failure: garbage args.
		out.Free()
		out = &mbuf.Chain{}
		rpc.EncodeReply(out, call.XID, rpc.GarbageArgs)
	}
	// Service time spans decode through dispatch: simulated CPU charges and
	// disk sleeps under the simulator, real elapsed time over sockets.
	svc := s.svcNow(p) - begin
	s.procSvc[call.Proc].ObserveDuration(svc)
	if s.Tracer != nil { // guard: boxing the event allocates even when untraced
		metrics.Emit(s.Tracer, metrics.ServerCall{
			Proc: call.Proc, Peer: peer, XID: call.XID,
			NonIdempotent: nonIdempotent[call.Proc],
			Service:       svc, Error: err != nil,
		})
	}
	if s.Opts.XDRCopyLayer {
		s.charge(p, "xdr_layer", costXDRByte*float64(out.Len()))
	}
	if nonIdempotent[call.Proc] {
		s.dupc.commit(dkey, out.Clone(), sp)
	}
	s.Stats.BytesOut.Add(int64(out.Len()))
	s.cBytesOut.Add(int64(out.Len()))
	return out
}

// dispatch decodes arguments from d and encodes results onto e. A returned
// error means the arguments were garbage; NFS-level failures are encoded as
// statuses.
func (s *Server) dispatch(p *sim.Proc, proc uint32, peer string, d *xdr.Decoder, e *xdr.Encoder, sp *metrics.Span) error {
	switch proc {
	case nfsproto.ProcLease:
		return s.leaseCall(p, peer, d, e)
	case nfsproto.ProcVacated:
		return s.vacatedCall(p, peer, d, e)
	case nfsproto.ProcReaddirLook:
		return s.readdirLook(p, d, e)
	case nfsproto.ProcNull:
		return nil
	case nfsproto.ProcGetattr:
		return s.getattr(p, peer, d, e)
	case nfsproto.ProcSetattr:
		return s.setattr(p, peer, d, e)
	case nfsproto.ProcLookup:
		return s.lookup(p, peer, d, e, sp)
	case nfsproto.ProcReadlink:
		return s.readlink(p, d, e)
	case nfsproto.ProcRead:
		return s.read(p, peer, d, e, sp)
	case nfsproto.ProcWrite:
		return s.write(p, peer, d, e, sp)
	case nfsproto.ProcCreate:
		return s.create(p, peer, d, e, sp)
	case nfsproto.ProcRemove:
		return s.remove(p, peer, d, e)
	case nfsproto.ProcRename:
		return s.rename(p, d, e)
	case nfsproto.ProcLink:
		return s.link(p, d, e)
	case nfsproto.ProcSymlink:
		return s.symlink(p, d, e)
	case nfsproto.ProcMkdir:
		return s.mkdir(p, d, e)
	case nfsproto.ProcRmdir:
		return s.rmdir(p, d, e)
	case nfsproto.ProcReaddir:
		return s.readdir(p, d, e)
	case nfsproto.ProcStatfs:
		return s.statfs(p, d, e)
	default:
		// ROOT and WRITECACHE are obsolete/unused.
		(&nfsproto.StatusRes{Status: nfsproto.ErrIO}).Encode(e)
		return nil
	}
}

func (s *Server) getattr(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeGetattrArgs(d)
	if err != nil {
		return err
	}
	hint := nfsproto.DecodeLeaseHint(d)
	s.charge(p, "nfs", costVOP)
	// Attributes of a write-leased file live on the holder; evict first.
	if s.leaseConflict(p, args.File, false, peer) {
		(&nfsproto.AttrRes{Status: nfsproto.ErrTryLater}).Encode(e)
		return nil
	}
	n, err := s.FS.Resolve(args.File)
	if err != nil {
		(&nfsproto.AttrRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	attr := s.FS.Attr(n)
	(&nfsproto.AttrRes{Status: nfsproto.OK, Attr: &attr}).Encode(e)
	s.piggyback(e, peer, args.File, attr.Type, hint)
	return nil
}

func (s *Server) setattr(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeSetattrArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	if s.leaseConflict(p, args.File, true, peer) {
		(&nfsproto.AttrRes{Status: nfsproto.ErrTryLater}).Encode(e)
		return nil
	}
	n, err := s.FS.Resolve(args.File)
	if err != nil {
		(&nfsproto.AttrRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	s.FS.Setattr(p, n, args.Attr)
	attr := s.FS.Attr(n)
	(&nfsproto.AttrRes{Status: nfsproto.OK, Attr: &attr}).Encode(e)
	return nil
}

// scanDirectory walks the directory's blocks through the buffer cache,
// charging CPU for the buffers examined and the disk for misses. This is
// where the Reno/Ultrix lookup gap of Graphs 8-9 comes from.
func (s *Server) scanDirectory(p *sim.Proc, dir *memfs.Inode, sp *metrics.Span) {
	nblocks := s.FS.DirBlocks(dir)
	for b := 0; b < nblocks; b++ {
		key := vfs.BufKey{Vnode: dir.Ino, Gen: dir.Gen, Block: uint32(b)}
		if p == nil {
			// Concurrent frontends (no CPU/disk model): probe and reserve
			// must be one critical section, or two nfsds scanning the same
			// directory double-insert.
			s.bufc.LookupOrReserve(key, sp)
			continue
		}
		buf, scanned := s.bufc.Lookup(key)
		s.charge(p, "dirscan", costDirScanBuf*float64(scanned+1))
		if buf == nil {
			// Reserve the buffer before sleeping on the disk so another
			// nfsd scanning the same directory does not double-insert.
			s.bufc.Insert(key)
			s.FS.Disk.Read(p, memfs.BlockSize)
		}
	}
}

func (s *Server) lookup(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder, sp *metrics.Span) error {
	args, err := nfsproto.DecodeDiropArgs(d)
	if err != nil {
		return err
	}
	hint := nfsproto.DecodeLeaseHint(d)
	s.charge(p, "nfs", costVOP)
	dir, err := s.FS.Resolve(args.Dir)
	if err != nil {
		(&nfsproto.DiropRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	// Name cache first (when the personality has one).
	if s.namec.Enabled() {
		s.charge(p, "namecache", costNameCacheHit)
		if vn, vgen, neg, found := s.namec.Lookup(dir.Ino, dir.Gen, args.Name, sp); found {
			if neg {
				(&nfsproto.DiropRes{Status: nfsproto.ErrNoEnt}).Encode(e)
				return nil
			}
			if n, err := s.FS.Get(vn, vgen); err == nil {
				if s.leaseConflict(p, s.FS.FH(n), false, peer) {
					(&nfsproto.DiropRes{Status: nfsproto.ErrTryLater}).Encode(e)
					return nil
				}
				attr := s.FS.Attr(n)
				(&nfsproto.DiropRes{Status: nfsproto.OK, File: s.FS.FH(n), Attr: &attr}).Encode(e)
				s.piggyback(e, peer, s.FS.FH(n), attr.Type, hint)
				return nil
			}
			s.namec.Remove(dir.Ino, dir.Gen, args.Name)
		}
	}
	s.scanDirectory(p, dir, sp)
	n, err := s.FS.Lookup(dir, args.Name)
	if err != nil {
		if err == memfs.ErrNoEnt {
			s.namec.EnterNegative(dir.Ino, dir.Gen, args.Name, sp)
		}
		s.countErr()
		(&nfsproto.DiropRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	s.namec.Enter(dir.Ino, dir.Gen, args.Name, n.Ino, n.Gen, sp)
	if s.leaseConflict(p, s.FS.FH(n), false, peer) {
		(&nfsproto.DiropRes{Status: nfsproto.ErrTryLater}).Encode(e)
		return nil
	}
	attr := s.FS.Attr(n)
	(&nfsproto.DiropRes{Status: nfsproto.OK, File: s.FS.FH(n), Attr: &attr}).Encode(e)
	s.piggyback(e, peer, s.FS.FH(n), attr.Type, hint)
	return nil
}

func (s *Server) readlink(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeGetattrArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	n, err := s.FS.Resolve(args.File)
	if err != nil {
		(&nfsproto.ReadlinkRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	target, err := s.FS.Readlink(n)
	if err != nil {
		(&nfsproto.ReadlinkRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	(&nfsproto.ReadlinkRes{Status: nfsproto.OK, Path: target}).Encode(e)
	return nil
}

func (s *Server) read(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder, sp *metrics.Span) error {
	args, err := nfsproto.DecodeReadArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	if s.leaseConflict(p, args.File, false, peer) {
		(&nfsproto.ReadRes{Status: nfsproto.ErrTryLater}).Encode(e)
		return nil
	}
	n, err := s.FS.Resolve(args.File)
	if err != nil {
		(&nfsproto.ReadRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	// Buffer cache residency decides whether the disk pays. An aligned 8K
	// read touches one block; unaligned reads touch two.
	first := args.Offset / memfs.BlockSize
	last := first
	if args.Count > 0 {
		last = (args.Offset + args.Count - 1) / memfs.BlockSize
	}
	cached := true
	for b := first; b <= last; b++ {
		key := vfs.BufKey{Vnode: n.Ino, Gen: n.Gen, Block: b}
		if p == nil {
			if hit, _ := s.bufc.LookupOrReserve(key, sp); !hit {
				cached = false
			}
			continue
		}
		buf, scanned := s.bufc.Lookup(key)
		s.charge(p, "dirscan", costDirScanBuf*float64(scanned+1))
		if buf == nil {
			cached = false
			s.bufc.Insert(key)
		}
	}
	// File blocks are loaned straight into the reply chain — no staging
	// buffer, no copy (the blocks go copy-on-write against later writers).
	// The reference port still *pays* for the buffer-cache-to-mbuf copy —
	// the §3 "third bottleneck" — as a CPU charge; only the Reno LendPages
	// personality skips it.
	data := &mbuf.Chain{}
	got, err := s.FS.ReadLoan(p, n, args.Offset, args.Count, cached, data, sp)
	if err != nil {
		data.Free()
		(&nfsproto.ReadRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	if !s.Opts.LendPages {
		s.charge(p, "buf_copy", costBufCopyByte*float64(got))
	}
	attr := s.FS.Attr(n)
	(&nfsproto.ReadRes{Status: nfsproto.OK, Attr: &attr, Data: data}).Encode(e)
	return nil
}

func (s *Server) write(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder, sp *metrics.Span) error {
	args, err := nfsproto.DecodeWriteArgs(d)
	if err != nil {
		return err
	}
	hint := nfsproto.DecodeLeaseHint(d)
	// Data is a view into the request chain; drop its storage references
	// once the payload has landed in file blocks.
	defer args.Data.Free()
	s.charge(p, "nfs", costVOP)
	if s.leaseConflict(p, args.File, true, peer) {
		(&nfsproto.AttrRes{Status: nfsproto.ErrTryLater}).Encode(e)
		return nil
	}
	n, err := s.FS.Resolve(args.File)
	if err != nil {
		(&nfsproto.AttrRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	// mbuf -> buffer cache copy (charged; the substrate moves the payload
	// segment-by-segment from the request view into file blocks).
	s.charge(p, "buf_copy", costBufCopyByte*float64(args.Data.Len()))
	// Synchronous writes: data + inode, plus an indirect block once the
	// file outgrows its direct blocks (UFS: 12 of them).
	diskWrites := 2
	if args.Offset/memfs.BlockSize >= 12 {
		diskWrites = 3
	}
	if s.Opts.WriteGathering && s.Node != nil {
		// Within the gather window, only the data block is synchronous;
		// the metadata updates ride the window's single commit.
		const gatherWindow = 100 * time.Millisecond
		now := s.now()
		s.gatherMu.Lock()
		if s.gather == nil {
			s.gather = make(map[nfsproto.FH]sim.Time)
		}
		if now < s.gather[args.File] {
			diskWrites = 1
		} else {
			s.gather[args.File] = now + gatherWindow
		}
		s.gatherMu.Unlock()
	}
	if err := s.FS.WriteAtChain(p, n, args.Offset, args.Data, diskWrites, sp); err != nil {
		(&nfsproto.AttrRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	// The written block is now cached.
	key := vfs.BufKey{Vnode: n.Ino, Gen: n.Gen, Block: args.Offset / memfs.BlockSize}
	if p == nil {
		s.bufc.EnsureResident(key, sp)
	} else if b := s.bufc.Peek(key); b == nil {
		s.bufc.Insert(key)
	}
	attr := s.FS.Attr(n)
	(&nfsproto.AttrRes{Status: nfsproto.OK, Attr: &attr}).Encode(e)
	s.piggyback(e, peer, args.File, attr.Type, hint)
	return nil
}

func (s *Server) create(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder, sp *metrics.Span) error {
	args, err := nfsproto.DecodeCreateArgs(d)
	if err != nil {
		return err
	}
	hint := nfsproto.DecodeLeaseHint(d)
	s.charge(p, "nfs", costVOP)
	dir, err := s.FS.Resolve(args.Where.Dir)
	if err != nil {
		(&nfsproto.DiropRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	s.scanDirectory(p, dir, sp)
	mode := args.Attr.Mode
	if mode == nfsproto.NoValue {
		mode = 0644
	}
	n, err := s.FS.Create(p, dir, args.Where.Name, mode)
	if err == memfs.ErrExist {
		// CREATE of an existing file succeeds (truncating per sattr), the
		// way NFS v2 open-for-write works. The truncation is a data write:
		// a foreign lease holder must be evicted first, or its later flush
		// would resurrect the truncated bytes.
		n, err = s.FS.Lookup(dir, args.Where.Name)
		if err == nil && s.leaseConflict(p, s.FS.FH(n), true, peer) {
			(&nfsproto.DiropRes{Status: nfsproto.ErrTryLater}).Encode(e)
			return nil
		}
	}
	if err != nil {
		s.countErr()
		(&nfsproto.DiropRes{Status: errStatus(err)}).Encode(e)
		return nil
	}
	if args.Attr.Size != nfsproto.NoValue {
		trunc := nfsproto.NewSattr()
		trunc.Size = args.Attr.Size
		s.FS.Setattr(p, n, trunc)
	}
	s.namec.Enter(dir.Ino, dir.Gen, args.Where.Name, n.Ino, n.Gen, sp)
	attr := s.FS.Attr(n)
	(&nfsproto.DiropRes{Status: nfsproto.OK, File: s.FS.FH(n), Attr: &attr}).Encode(e)
	// The grant that kills the §5 ladder's explicit LEASE RPC: a hinted
	// CREATE leaves with a write lease, so the writes that follow stay in
	// the client's cache and close pushes nothing.
	s.piggyback(e, peer, s.FS.FH(n), attr.Type, hint)
	return nil
}

func (s *Server) remove(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeDiropArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	dir, rerr := s.FS.Resolve(args.Dir)
	if rerr == nil {
		s.scanDirectory(p, dir, nil)
		if n, lerr := s.FS.Lookup(dir, args.Name); lerr == nil {
			// A foreign holder caching the victim must hear about the
			// unlink (and flush nothing into it) before the name goes.
			if s.leaseConflict(p, s.FS.FH(n), true, peer) {
				(&nfsproto.StatusRes{Status: nfsproto.ErrTryLater}).Encode(e)
				return nil
			}
			s.bufc.InvalidateVnode(n.Ino, n.Gen)
			s.namec.PurgeVnode(n.Ino, n.Gen)
		}
		s.namec.Remove(dir.Ino, dir.Gen, args.Name)
		rerr = s.FS.Remove(p, dir, args.Name)
	}
	if rerr != nil {
		s.countErr()
	}
	(&nfsproto.StatusRes{Status: errStatus(rerr)}).Encode(e)
	return nil
}

func (s *Server) rename(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeRenameArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	from, ferr := s.FS.Resolve(args.From.Dir)
	to, terr := s.FS.Resolve(args.To.Dir)
	var rerr error
	switch {
	case ferr != nil:
		rerr = ferr
	case terr != nil:
		rerr = terr
	default:
		s.scanDirectory(p, from, nil)
		if to != from {
			s.scanDirectory(p, to, nil)
		}
		s.namec.Remove(from.Ino, from.Gen, args.From.Name)
		s.namec.Remove(to.Ino, to.Gen, args.To.Name)
		rerr = s.FS.Rename(p, from, args.From.Name, to, args.To.Name)
	}
	if rerr != nil {
		s.countErr()
	}
	(&nfsproto.StatusRes{Status: errStatus(rerr)}).Encode(e)
	return nil
}

func (s *Server) link(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeLinkArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	n, nerr := s.FS.Resolve(args.From)
	dir, derr := s.FS.Resolve(args.To.Dir)
	var rerr error
	switch {
	case nerr != nil:
		rerr = nerr
	case derr != nil:
		rerr = derr
	default:
		s.scanDirectory(p, dir, nil)
		rerr = s.FS.Link(p, n, dir, args.To.Name)
		if rerr == nil {
			s.namec.Enter(dir.Ino, dir.Gen, args.To.Name, n.Ino, n.Gen, nil)
		}
	}
	if rerr != nil {
		s.countErr()
	}
	(&nfsproto.StatusRes{Status: errStatus(rerr)}).Encode(e)
	return nil
}

func (s *Server) symlink(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeSymlinkArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	dir, rerr := s.FS.Resolve(args.From.Dir)
	if rerr == nil {
		s.scanDirectory(p, dir, nil)
		mode := args.Attr.Mode
		if mode == nfsproto.NoValue {
			mode = 0777
		}
		_, rerr = s.FS.Symlink(p, dir, args.From.Name, args.To, mode)
	}
	if rerr != nil {
		s.countErr()
	}
	(&nfsproto.StatusRes{Status: errStatus(rerr)}).Encode(e)
	return nil
}

func (s *Server) mkdir(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeCreateArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	dir, rerr := s.FS.Resolve(args.Where.Dir)
	if rerr != nil {
		(&nfsproto.DiropRes{Status: errStatus(rerr)}).Encode(e)
		return nil
	}
	s.scanDirectory(p, dir, nil)
	mode := args.Attr.Mode
	if mode == nfsproto.NoValue {
		mode = 0755
	}
	n, rerr := s.FS.Mkdir(p, dir, args.Where.Name, mode)
	if rerr != nil {
		s.countErr()
		(&nfsproto.DiropRes{Status: errStatus(rerr)}).Encode(e)
		return nil
	}
	s.namec.Enter(dir.Ino, dir.Gen, args.Where.Name, n.Ino, n.Gen, nil)
	attr := s.FS.Attr(n)
	(&nfsproto.DiropRes{Status: nfsproto.OK, File: s.FS.FH(n), Attr: &attr}).Encode(e)
	return nil
}

func (s *Server) rmdir(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeDiropArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	dir, rerr := s.FS.Resolve(args.Dir)
	if rerr == nil {
		s.scanDirectory(p, dir, nil)
		if n, lerr := s.FS.Lookup(dir, args.Name); lerr == nil {
			s.namec.PurgeDir(n.Ino, n.Gen)
			s.namec.PurgeVnode(n.Ino, n.Gen)
		}
		s.namec.Remove(dir.Ino, dir.Gen, args.Name)
		rerr = s.FS.Rmdir(p, dir, args.Name)
	}
	if rerr != nil {
		s.countErr()
	}
	(&nfsproto.StatusRes{Status: errStatus(rerr)}).Encode(e)
	return nil
}

func (s *Server) readdir(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeReaddirArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	dir, rerr := s.FS.Resolve(args.Dir)
	if rerr != nil {
		(&nfsproto.ReaddirRes{Status: errStatus(rerr)}).Encode(e)
		return nil
	}
	if dir.Type != nfsproto.TypeDir {
		(&nfsproto.ReaddirRes{Status: nfsproto.ErrNotDir}).Encode(e)
		return nil
	}
	s.scanDirectory(p, dir, nil)
	ents := s.FS.DirEntries(dir)
	res := &nfsproto.ReaddirRes{Status: nfsproto.OK}
	// Cookie 0 starts with "." and ".."; synthetic cookies count entries
	// emitted so far.
	budget := int(args.Count)
	if budget <= 0 || budget > nfsproto.MaxData {
		budget = nfsproto.MaxData
	}
	// Entries are synthesized on the fly — "." and ".." first, then the
	// directory list — rather than materializing the whole directory into a
	// scratch slice per call.
	used := 16 // status + eof + terminator
	total := len(ents) + 2
	if start := int(args.Cookie); start < total {
		res.Entries = make([]nfsproto.DirEntry, 0, total-start)
	}
	for i := int(args.Cookie); i < total; i++ {
		var ent nfsproto.DirEntry
		switch i {
		case 0:
			ent = nfsproto.DirEntry{FileID: dir.Ino, Name: ".", Cookie: 1}
		case 1:
			ent = nfsproto.DirEntry{FileID: dir.Ino, Name: "..", Cookie: 2}
		default:
			de := ents[i-2]
			ent = nfsproto.DirEntry{FileID: de.Ino, Name: de.Name, Cookie: uint32(i + 1)}
		}
		sz := 16 + len(ent.Name)
		if used+sz > budget {
			res.EOF = false
			res.Encode(e)
			return nil
		}
		res.Entries = append(res.Entries, ent)
		used += sz
	}
	res.EOF = true
	res.Encode(e)
	return nil
}

func (s *Server) statfs(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	if _, err := nfsproto.DecodeGetattrArgs(d); err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	res := s.FS.Statfs()
	res.Encode(e)
	return nil
}
