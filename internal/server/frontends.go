package server

import (
	"fmt"

	"renonfs/internal/mbuf"
	"renonfs/internal/netsim"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/tcpsim"
)

// NFSPort is the conventional NFS port.
const NFSPort = 2049

// job is one request handed to the nfsd pool. owned marks request chains the
// frontend built itself (TCP record reassembly) and may therefore free after
// the call; UDP request chains belong to the network layer, whose
// fault-injection machinery can deliver the same payload chain twice, so the
// server must never recycle them.
type job struct {
	peer  string
	req   *mbuf.Chain
	owned bool
	reply func(p *sim.Proc, rep *mbuf.Chain)
}

// ServeUDP starts the UDP frontend on the attached node: a receiver
// process feeding a pool of nfsd daemons, the way rpc.nfsd worked.
func (s *Server) ServeUDP(port int) {
	if s.Node == nil {
		panic("server: ServeUDP without AttachNode")
	}
	env := s.Node.Net().Env
	sock := s.Node.UDPSocket(port)
	s.EnableLeaseCallbacks(sock)
	jobs := sim.NewQueue[job](env, s.Opts.Name+".nfsd-q")
	env.Spawn(s.Opts.Name+".udp-rx", func(p *sim.Proc) {
		// Peer strings are interned per (src, sport): a client keeps one
		// socket for its whole run, so formatting the name once beats a
		// fmt.Sprintf per request.
		type udpPeer struct {
			src   netsim.NodeID
			sport int
		}
		peers := make(map[udpPeer]string)
		for {
			dg, ok := sock.Recv(p)
			if !ok {
				return
			}
			src, sport := dg.Src, dg.SrcPort
			peer, ok := peers[udpPeer{src, sport}]
			if !ok {
				peer = fmt.Sprintf("udp:%d:%d", src, sport)
				peers[udpPeer{src, sport}] = peer
			}
			jobs.Send(job{
				peer: peer,
				req:  dg.Payload,
				reply: func(p *sim.Proc, rep *mbuf.Chain) {
					sock.Send(p, src, sport, rep)
				},
			})
		}
	})
	s.spawnNFSDs(env, jobs, "udp")
}

// ServeTCP starts the TCP frontend: an acceptor spawning one process per
// connection that reassembles record-marked requests and feeds the shared
// nfsd pool; replies are record-marked back onto the connection (the
// concurrency control §2 mentions is free here, one process runs at a
// time).
func (s *Server) ServeTCP(stack *tcpsim.Stack, port int) {
	if s.Node == nil {
		panic("server: ServeTCP without AttachNode")
	}
	env := s.Node.Net().Env
	l := stack.Listen(port)
	jobs := sim.NewQueue[job](env, s.Opts.Name+".nfsd-tcp-q")
	s.spawnNFSDs(env, jobs, "tcp")
	env.Spawn(s.Opts.Name+".tcp-accept", func(p *sim.Proc) {
		for connID := 0; ; connID++ {
			conn, ok := l.Accept(p)
			if !ok {
				return
			}
			peer := fmt.Sprintf("tcp:%d", connID)
			if s.conns == nil {
				s.conns = make(map[*tcpsim.Conn]struct{})
			}
			s.conns[conn] = struct{}{}
			env.Spawn(s.Opts.Name+".tcp-conn", func(p *sim.Proc) {
				// No deferred cleanup: Env.Close unwinds every parked
				// process concurrently, so shared maps may only be touched
				// on the normal (scheduled) return paths below.
				var scan rpc.RecordScanner
				for {
					b, ok := conn.Recv(p)
					if !ok {
						conn.Close()
						delete(s.conns, conn)
						return
					}
					recs, err := scan.Feed(b)
					if err != nil {
						conn.Abort()
						delete(s.conns, conn)
						return
					}
					for _, rec := range recs {
						req := mbuf.FromBytes(rec)
						jobs.Send(job{
							peer:  peer,
							req:   req,
							owned: true,
							reply: func(p *sim.Proc, rep *mbuf.Chain) {
								rpc.AddRecordMark(rep)
								conn.Send(p, rep)
							},
						})
					}
				}
			})
		}
	})
}

// spawnNFSDs starts the server daemon pool.
func (s *Server) spawnNFSDs(env *sim.Env, jobs *sim.Queue[job], tag string) {
	for i := 0; i < s.Opts.NFSDs; i++ {
		env.Spawn(fmt.Sprintf("%s.nfsd-%s%d", s.Opts.Name, tag, i), func(p *sim.Proc) {
			for {
				j, ok := jobs.Recv(p)
				if !ok {
					return
				}
				if s.down.Load() {
					continue // crashed: the request vanishes
				}
				rep := s.HandleCall(p, j.peer, j.req)
				if j.owned {
					j.req.Free()
				}
				if rep != nil {
					j.reply(p, rep)
				}
			}
		})
	}
}
