package server

import (
	"testing"
	"time"

	"renonfs/internal/check"
	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

// TestLeaseWorkloadCleanUnderAuditor runs a legal lease workload —
// grant, renewal, shared reads, vacate, expiry, crash and recovery —
// with the invariant auditor wired to the server's tracer, and demands
// zero violations: the auditor must not cry wolf on correct behavior,
// or every chaos-sweep failure report drowns in noise.
func TestLeaseWorkloadCleanUnderAuditor(t *testing.T) {
	env := sim.New(3)
	defer env.Close()
	nt := netsim.New(env)
	node := nt.AddNode(netsim.NodeConfig{Name: "srv"})
	fs := memfs.New(1, nil, nil)
	opts := Reno()
	opts.Leases = true
	opts.LeaseDuration = 10 * time.Second
	s := New(fs, opts)
	s.AttachNode(node)
	aud := check.New(func() time.Duration { return time.Duration(env.Now()) })
	s.Tracer = aud.Tracer("server")
	f, _ := fs.Create(nil, fs.Root(), "f", 0644)
	fh := fs.FH(f)

	var xid uint32 = 20000
	lease := func(p *sim.Proc, peer string, mode uint32) nfsproto.Status {
		xid++
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcLease})
		(&nfsproto.LeaseArgs{File: fh, Mode: mode, Duration: 10, CallbackPort: 9999}).Encode(xdr.NewEncoder(req))
		d := xdr.NewDecoder(s.HandleCall(p, peer, req))
		if _, err := rpc.DecodeReply(d); err != nil {
			t.Fatalf("decode reply: %v", err)
		}
		res, err := nfsproto.DecodeLeaseRes(d)
		if err != nil {
			t.Fatalf("decode lease res: %v", err)
		}
		return res.Status
	}
	vacate := func(p *sim.Proc, peer string) {
		xid++
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcVacated})
		(&nfsproto.VacatedArgs{File: fh}).Encode(xdr.NewEncoder(req))
		s.HandleCall(p, peer, req)
	}

	env.Spawn("workload", func(p *sim.Proc) {
		// A writer takes a lease, renews it mid-term, then vacates.
		if st := lease(p, "udp:1:9001", nfsproto.LeaseWrite); st != nfsproto.OK {
			t.Errorf("initial write grant = %v", st)
		}
		p.Sleep(3 * time.Second)
		if st := lease(p, "udp:1:9001", nfsproto.LeaseWrite); st != nfsproto.OK {
			t.Errorf("renewal = %v", st)
		}
		vacate(p, "udp:1:9001")
		// Two readers share the file.
		if st := lease(p, "udp:1:9002", nfsproto.LeaseRead); st != nfsproto.OK {
			t.Errorf("read grant = %v", st)
		}
		if st := lease(p, "udp:1:9003", nfsproto.LeaseRead); st != nfsproto.OK {
			t.Errorf("shared read grant = %v", st)
		}
		// Let both read leases expire, then a new writer is legal.
		p.Sleep(11 * time.Second)
		if st := lease(p, "udp:1:9004", nfsproto.LeaseWrite); st != nfsproto.OK {
			t.Errorf("post-expiry write grant = %v", st)
		}
		// Reboot: the server must refuse grants for one lease term.
		s.Crash()
		if st := lease(p, "udp:1:9005", nfsproto.LeaseWrite); st != nfsproto.ErrTryLater {
			t.Errorf("grant during recovery = %v, want ErrTryLater", st)
		}
		p.Sleep(11 * time.Second)
		if st := lease(p, "udp:1:9005", nfsproto.LeaseWrite); st != nfsproto.OK {
			t.Errorf("grant after recovery window = %v", st)
		}
	})
	env.RunAll()

	if vs := aud.Finish(); len(vs) != 0 {
		t.Fatalf("legal lease workload produced violations: %v", vs)
	}
	counts := aud.Counts()
	if counts["event.lease_grant"] != 6 {
		t.Errorf("lease_grant events = %d, want 6", counts["event.lease_grant"])
	}
	if counts["event.lease_vacate"] != 1 {
		t.Errorf("lease_vacate events = %d, want 1", counts["event.lease_vacate"])
	}
	if counts["event.server_crash"] != 1 {
		t.Errorf("server_crash events = %d, want 1", counts["event.server_crash"])
	}
}

// TestLeaseAuditorCatchesServerBug plants a real violation — a conflicting
// grant injected straight into the event stream — and checks the auditor
// reports it (the sensor works end to end, not just on synthetic feeds).
func TestLeaseAuditorCatchesServerBug(t *testing.T) {
	env := sim.New(4)
	defer env.Close()
	nt := netsim.New(env)
	node := nt.AddNode(netsim.NodeConfig{Name: "srv"})
	fs := memfs.New(1, nil, nil)
	opts := Reno()
	opts.Leases = true
	opts.LeaseDuration = 10 * time.Second
	s := New(fs, opts)
	s.AttachNode(node)
	aud := check.New(func() time.Duration { return time.Duration(env.Now()) })
	tr := aud.Tracer("server")
	s.Tracer = tr
	f, _ := fs.Create(nil, fs.Root(), "f", 0644)
	fh := fs.FH(f)

	env.Spawn("workload", func(p *sim.Proc) {
		xid := uint32(30000)
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcLease})
		(&nfsproto.LeaseArgs{File: fh, Mode: nfsproto.LeaseWrite, Duration: 10, CallbackPort: 9999}).Encode(xdr.NewEncoder(req))
		s.HandleCall(p, "udp:1:9001", req)
		// A buggy server would grant a second writer without evicting the
		// first; emit what such a grant would trace.
		tr.Event(metrics.LeaseGrant{
			Peer: "udp:1:9002", File: fh.String(), Write: true, Term: 10 * time.Second,
		})
	})
	env.RunAll()

	found := false
	for _, v := range aud.Finish() {
		if v.Rule == "lease-conflict" {
			found = true
		}
	}
	if !found {
		t.Fatal("auditor missed a conflicting write grant")
	}
	_ = node
}
