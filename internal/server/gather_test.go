package server

import (
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
	"renonfs/internal/xdr"
)

// TestWriteGatheringSavesDiskOps: a biod-style burst of sequential writes
// pays the metadata disk writes once per gather window instead of once per
// RPC ([Juszczak89]).
func TestWriteGatheringSavesDiskOps(t *testing.T) {
	run := func(gather bool) (diskOps int, elapsed sim.Time) {
		env := sim.New(5)
		defer env.Close()
		tb := netsim.Build(env, netsim.TopoLAN, netsim.NodeConfig{}, netsim.NodeConfig{})
		disk := memfs.NewRD53(env, "rd53")
		fs := memfs.New(1, disk, nil)
		opts := Reno()
		opts.WriteGathering = gather
		s := New(fs, opts)
		s.AttachNode(tb.Server)
		s.ServeUDP(NFSPort)
		done := false
		env.Spawn("writer", func(p *sim.Proc) {
			tr := transport.NewUDP(tb.Client, 3001, tb.Server.ID, NFSPort, transport.DynamicUDP())
			attr := nfsproto.NewSattr()
			attr.Mode = 0644
			d, err := tr.Call(p, nfsproto.ProcCreate, func(e *xdr.Encoder) {
				(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "f"}, Attr: attr}).Encode(e)
			})
			if err != nil {
				return
			}
			res, _ := nfsproto.DecodeDiropRes(d)
			base := disk.WriteOps
			start := p.Now()
			// 12 x 8K writes from 4 concurrent "biods": they queue up at
			// the nfsds back to back, which is the pattern gathering wins
			// on.
			finished := sim.NewEvent(env)
			left := 4
			for b := 0; b < 4; b++ {
				b := b
				env.Spawn("biod", func(bp *sim.Proc) {
					for i := 0; i < 3; i++ {
						off := uint32((b*3 + i) * 8192)
						tr.Call(bp, nfsproto.ProcWrite, func(e *xdr.Encoder) {
							(&nfsproto.WriteArgs{File: res.File, Offset: off,
								Data: mbuf.FromBytes(make([]byte, 8192))}).Encode(e)
						})
					}
					left--
					if left == 0 {
						finished.Set()
					}
				})
			}
			finished.Wait(p)
			diskOps = disk.WriteOps - base
			elapsed = p.Now() - start
			done = true
		})
		env.Run(10 * time.Minute)
		if !done {
			t.Fatal("writer did not finish")
		}
		return diskOps, elapsed
	}
	opsOff, elOff := run(false)
	opsOn, elOn := run(true)
	// 12 x (data + inode), plus possibly a duplicate from a UDP
	// retransmission (idempotent, so the server re-executes it).
	if opsOff < 24 || opsOff > 28 {
		t.Fatalf("ungathered disk ops = %d, want ~24", opsOff)
	}
	if opsOn > opsOff-6 {
		t.Fatalf("gathering saved too little: %d vs %d ops", opsOn, opsOff)
	}
	if elOn >= elOff {
		t.Fatalf("gathering did not speed the burst: %v vs %v", elOn, elOff)
	}
}
