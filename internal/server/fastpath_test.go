package server

import (
	"bytes"
	"fmt"
	"testing"

	"renonfs/internal/mbuf"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/xdr"
)

// encodeWire flattens one RPC call to the raw datagram bytes the UDP
// readers would peek at.
func encodeWire(xid, prog, vers, proc uint32, args func(e *xdr.Encoder)) []byte {
	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: prog, Vers: vers, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(req))
	}
	wire := append([]byte(nil), req.Bytes()...)
	req.Free()
	return wire
}

// fastReply runs wire through the shallow path. ok=false means it punted
// to the generic path.
func fastReply(t *testing.T, s *Server, peer string, wire []byte) ([]byte, bool) {
	t.Helper()
	var h rpc.PeekedCall
	argOff, okPeek := rpc.PeekCallHeader(wire, &h)
	if !okPeek {
		t.Fatalf("PeekCallHeader refused a well-formed call")
	}
	if !FastEligible(&h) {
		t.Fatalf("proc %d/%d/%d not fast-eligible", h.Prog, h.Vers, h.Proc)
	}
	out := make([]byte, 0, FastReplyMax)
	return s.HandleCallFast(peer, wire, &h, argOff, out, nil)
}

// genericReply runs wire through the full dispatch path.
func genericReply(t *testing.T, s *Server, peer string, wire []byte) []byte {
	t.Helper()
	rep := s.HandleCall(nil, peer, mbuf.FromBytes(wire))
	if rep == nil {
		t.Fatal("generic path returned nil reply")
	}
	b := append([]byte(nil), rep.Bytes()...)
	rep.Free()
	return b
}

// assertEquiv services wire on both paths — shallow first, so it sees the
// same cache state — and pins the replies byte-for-byte.
func assertEquiv(t *testing.T, s *Server, peer, label string, wire []byte) {
	t.Helper()
	fb, okFast := fastReply(t, s, peer, wire)
	if !okFast {
		t.Fatalf("%s: fast path refused an eligible call", label)
	}
	gb := genericReply(t, s, peer, wire)
	if !bytes.Equal(fb, gb) {
		t.Errorf("%s: replies diverge\n fast    %x\n generic %x", label, fb, gb)
	}
}

// TestFastPathReplyEquivalence pins the shallow path's replies
// byte-for-byte against the generic dispatcher for every fast-eligible
// procedure, including the error paths.
func TestFastPathReplyEquivalence(t *testing.T) {
	s := newServer()
	root := s.RootFH()
	fileFH := mustCreate(t, s, root, "f")
	for i := 0; i < 40; i++ {
		mustCreate(t, s, root, fmt.Sprintf("bulk-%02d", i))
	}
	const peer = "udp:127.0.0.1:9999"
	var stale nfsproto.FH
	stale[0] = 0xde
	stale[31] = 0xad

	nfs := func(xid, proc uint32, args func(e *xdr.Encoder)) []byte {
		return encodeWire(xid, nfsproto.Program, nfsproto.Version, proc, args)
	}

	assertEquiv(t, s, peer, "null", nfs(101, nfsproto.ProcNull, nil))
	assertEquiv(t, s, peer, "getattr ok", nfs(102, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: fileFH}).Encode(e)
	}))
	assertEquiv(t, s, peer, "getattr stale", nfs(103, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: stale}).Encode(e)
	}))
	assertEquiv(t, s, peer, "lookup ok", nfs(104, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: root, Name: "f"}).Encode(e)
	}))
	// Twice: the second pass answers from the name cache on both paths.
	assertEquiv(t, s, peer, "lookup cached", nfs(105, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: root, Name: "f"}).Encode(e)
	}))
	// ENOENT twice: the second pass hits the negative name cache.
	for i, label := range []string{"lookup enoent", "lookup negcache"} {
		assertEquiv(t, s, peer, label, nfs(uint32(106+i), nfsproto.ProcLookup, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: root, Name: "missing"}).Encode(e)
		}))
	}
	assertEquiv(t, s, peer, "lookup notdir", nfs(108, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: fileFH, Name: "x"}).Encode(e)
	}))
	assertEquiv(t, s, peer, "lookup stale dir", nfs(109, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: stale, Name: "f"}).Encode(e)
	}))
	assertEquiv(t, s, peer, "readdir full", nfs(110, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: root, Count: 2048}).Encode(e)
	}))
	// A small budget truncates the listing (eof=false) identically.
	assertEquiv(t, s, peer, "readdir truncated", nfs(111, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: root, Count: 256}).Encode(e)
	}))
	// Resume from a mid-listing cookie.
	assertEquiv(t, s, peer, "readdir cookie", nfs(112, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: root, Cookie: 7, Count: 512}).Encode(e)
	}))
	assertEquiv(t, s, peer, "readdir notdir", nfs(113, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: fileFH, Count: 512}).Encode(e)
	}))
	assertEquiv(t, s, peer, "readdir stale", nfs(114, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: stale, Count: 512}).Encode(e)
	}))
	assertEquiv(t, s, peer, "statfs", nfs(115, nfsproto.ProcStatfs, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: root}).Encode(e)
	}))

	// SETATTR is non-idempotent: the fast path commits its reply to the
	// dupcache, so assertEquiv's generic pass (same peer, same xid) is a
	// retransmission and must replay the fast reply verbatim. That replay
	// IS the equivalence being pinned — a fresh execution would advance
	// ctime and legitimately differ.
	assertEquiv(t, s, peer, "setattr ok", nfs(116, nfsproto.ProcSetattr, func(e *xdr.Encoder) {
		sa := nfsproto.NewSattr()
		sa.Mode = 0600
		(&nfsproto.SetattrArgs{File: fileFH, Attr: sa}).Encode(e)
	}))
	assertEquiv(t, s, peer, "setattr stale", nfs(117, nfsproto.ProcSetattr, func(e *xdr.Encoder) {
		(&nfsproto.SetattrArgs{File: stale, Attr: nfsproto.NewSattr()}).Encode(e)
	}))

	// READLINK needs a symlink in the fixture; plant it via the generic path.
	genericReply(t, s, peer, nfs(130, nfsproto.ProcSymlink, func(e *xdr.Encoder) {
		(&nfsproto.SymlinkArgs{From: nfsproto.DiropArgs{Dir: root, Name: "ln"},
			To: "f", Attr: nfsproto.NewSattr()}).Encode(e)
	}))
	linkFH := mustLookup(t, s, root, "ln").File
	assertEquiv(t, s, peer, "readlink ok", nfs(118, nfsproto.ProcReadlink, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: linkFH}).Encode(e)
	}))
	assertEquiv(t, s, peer, "readlink notlink", nfs(119, nfsproto.ProcReadlink, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: fileFH}).Encode(e)
	}))
	assertEquiv(t, s, peer, "readlink stale", nfs(131, nfsproto.ProcReadlink, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: stale}).Encode(e)
	}))

	mnt := func(xid, proc uint32, args func(e *xdr.Encoder)) []byte {
		return encodeWire(xid, nfsproto.MountProgram, nfsproto.MountVersion, proc, args)
	}
	assertEquiv(t, s, peer, "mount null", mnt(120, nfsproto.MountProcNull, nil))
	assertEquiv(t, s, peer, "mnt ok", mnt(121, nfsproto.MountProcMnt, func(e *xdr.Encoder) {
		(&nfsproto.MntArgs{DirPath: "/"}).Encode(e)
	}))
	assertEquiv(t, s, peer, "mnt enoent", mnt(122, nfsproto.MountProcMnt, func(e *xdr.Encoder) {
		(&nfsproto.MntArgs{DirPath: "/no-such-export"}).Encode(e)
	}))
}

// TestFastPathDupcacheIndependence pins that the shallow path — which only
// carries idempotent procedures — neither reads nor pollutes the sharded
// dupcache: a fast GETATTR reusing a CREATE's xid must still be serviced
// fresh and byte-identically on both paths, and the cached CREATE reply
// must survive for a real retransmit.
func TestFastPathDupcacheIndependence(t *testing.T) {
	s := newServer()
	root := s.RootFH()
	const peer = "udp:10.0.0.1:700"
	const xid = 777

	createWire := encodeWire(xid, nfsproto.Program, nfsproto.Version, nfsproto.ProcCreate,
		func(e *xdr.Encoder) {
			(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: root, Name: "dup-f"},
				Attr: nfsproto.NewSattr()}).Encode(e)
		})
	createRep := genericReply(t, s, peer, createWire)

	// Same xid, same peer, idempotent proc: both paths must run it fresh
	// (never replay the CREATE reply) and agree byte-for-byte.
	fileFH := mustLookup(t, s, root, "dup-f").File
	gaWire := encodeWire(xid, nfsproto.Program, nfsproto.Version, nfsproto.ProcGetattr,
		func(e *xdr.Encoder) { (&nfsproto.GetattrArgs{File: fileFH}).Encode(e) })
	fb, ok := fastReply(t, s, peer, gaWire)
	if !ok {
		t.Fatal("fast path refused GETATTR with a dupcache-resident xid")
	}
	gb := genericReply(t, s, peer, gaWire)
	if !bytes.Equal(fb, gb) {
		t.Errorf("xid-colliding GETATTR diverges:\n fast    %x\n generic %x", fb, gb)
	}
	if bytes.Equal(fb, createRep) {
		t.Error("fast GETATTR replayed the cached CREATE reply")
	}

	// The CREATE's cache entry must be intact: a true retransmit replays it.
	if replay := genericReply(t, s, peer, createWire); !bytes.Equal(replay, createRep) {
		t.Errorf("CREATE retransmit not replayed verbatim after fast-path traffic:\n got  %x\n want %x", replay, createRep)
	}
	if hits := s.Stats.DupHits.Load(); hits == 0 {
		t.Error("CREATE retransmit produced no dupcache hit")
	}
}

// TestFastPathFallbacks pins the no-side-effects punt contract: calls the
// classifier admits but HandleCallFast cannot finish return ok=false with
// zero counter movement, and payload procedures never classify as fast.
func TestFastPathFallbacks(t *testing.T) {
	s := newServer()
	root := s.RootFH()

	for _, proc := range []uint32{nfsproto.ProcRead, nfsproto.ProcWrite,
		nfsproto.ProcCreate, nfsproto.ProcRemove} {
		h := rpc.PeekedCall{Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: proc}
		if FastEligible(&h) {
			t.Errorf("payload proc %d classified fast-eligible", proc)
		}
	}
	h := rpc.PeekedCall{Prog: nfsproto.Program, Vers: nfsproto.Version + 1, Proc: nfsproto.ProcNull}
	if FastEligible(&h) {
		t.Error("wrong-version NULL classified fast-eligible")
	}

	punt := func(label string, wire []byte) {
		t.Helper()
		var h rpc.PeekedCall
		argOff, okPeek := rpc.PeekCallHeader(wire, &h)
		if !okPeek || !FastEligible(&h) {
			t.Fatalf("%s: call did not reach HandleCallFast", label)
		}
		before := s.cCalls.Value()
		bytesIn := s.Stats.BytesIn.Load()
		rep, ok := s.HandleCallFast("p", wire, &h, argOff, make([]byte, 0, FastReplyMax), nil)
		if ok || rep != nil {
			t.Errorf("%s: fast path serviced a call that must punt", label)
		}
		if s.cCalls.Value() != before || s.Stats.BytesIn.Load() != bytesIn {
			t.Errorf("%s: punted call moved counters", label)
		}
	}

	full := encodeWire(300, nfsproto.Program, nfsproto.Version, nfsproto.ProcLookup,
		func(e *xdr.Encoder) { (&nfsproto.DiropArgs{Dir: root, Name: "f"}).Encode(e) })
	punt("truncated lookup", full[:len(full)-6])
	punt("readdir zero count", encodeWire(301, nfsproto.Program, nfsproto.Version,
		nfsproto.ProcReaddir, func(e *xdr.Encoder) {
			(&nfsproto.ReaddirArgs{Dir: root, Count: 0}).Encode(e)
		}))
	punt("readdir oversized window", encodeWire(302, nfsproto.Program, nfsproto.Version,
		nfsproto.ProcReaddir, func(e *xdr.Encoder) {
			(&nfsproto.ReaddirArgs{Dir: root, Count: nfsproto.MaxData}).Encode(e)
		}))

	// The punted datagrams must still be serviceable by the generic path.
	if rep := genericReply(t, s, "p", full); len(rep) == 0 {
		t.Error("generic path failed the fallback datagram")
	}
}
