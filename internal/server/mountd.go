package server

import (
	"sort"
	"strings"
	"sync"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

// The MOUNT protocol server (mountd). Real deployments ran it as a
// separate daemon; here it shares the server's dispatch loop — the same
// frontends serve both RPC programs, and HandleCall routes by program
// number.

// Unix errno values the mount protocol uses.
const (
	mntOK      = 0
	mntENOENT  = 2
	mntEACCES  = 13
	mntENOTDIR = 20
)

// mountState tracks exports and active mounts (soft state, like rmtab),
// behind one leaf mutex — mountd traffic is rare enough that striping it
// would be noise.
type mountState struct {
	mu sync.Mutex
	// exports maps export path -> restriction groups (empty = everyone).
	exports map[string][]string
	// mounts maps "host dir" -> entry, for DUMP.
	mounts map[string]nfsproto.MountEntry
}

func newMountState() *mountState {
	return &mountState{
		exports: map[string][]string{"/": nil},
		mounts:  make(map[string]nfsproto.MountEntry),
	}
}

// mountState returns the mount table; New allocates it eagerly, the lazy
// path only serves zero-value Servers built directly in tests.
func (s *Server) mountState() *mountState {
	if s.mounts == nil {
		s.mounts = newMountState()
	}
	return s.mounts
}

// Export adds path to the export list (the root "/" is exported by
// default). Groups restrict which peers may mount; empty allows everyone.
func (s *Server) Export(path string, groups ...string) {
	st := s.mountState()
	st.mu.Lock()
	st.exports[path] = groups
	st.mu.Unlock()
}

// MountsFor returns the active mount entries (DUMP's view).
func (s *Server) MountsFor() []nfsproto.MountEntry {
	st := s.mountState()
	st.mu.Lock()
	out := make([]nfsproto.MountEntry, 0, len(st.mounts))
	for _, e := range st.mounts {
		out = append(out, e)
	}
	st.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Host != out[j].Host {
			return out[i].Host < out[j].Host
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// lookupExportPath walks an exported path through the filesystem.
func (s *Server) lookupExportPath(path string) (*memfs.Inode, uint32) {
	st := s.mountState()
	st.mu.Lock()
	_, exported := st.exports[path]
	st.mu.Unlock()
	if !exported {
		return nil, mntEACCES
	}
	n := s.FS.Root()
	for _, comp := range strings.Split(path, "/") {
		if comp == "" {
			continue
		}
		child, err := s.FS.Lookup(n, comp)
		if err != nil {
			return nil, mntENOENT
		}
		n = child
	}
	if n.Type != nfsproto.TypeDir {
		return nil, mntENOTDIR
	}
	return n, mntOK
}

// dispatchMount serves one MOUNT-program procedure.
func (s *Server) dispatchMount(p *sim.Proc, proc uint32, peer string, d *xdr.Decoder, e *xdr.Encoder) error {
	s.charge(p, "nfs", costDispatch)
	st := s.mountState()
	switch proc {
	case nfsproto.MountProcNull:
		return nil
	case nfsproto.MountProcMnt:
		args, err := nfsproto.DecodeMntArgs(d)
		if err != nil {
			return err
		}
		n, status := s.lookupExportPath(args.DirPath)
		if status != mntOK {
			(&nfsproto.MntRes{Status: status}).Encode(e)
			return nil
		}
		st.mu.Lock()
		st.mounts[peer+" "+args.DirPath] = nfsproto.MountEntry{Host: peer, Dir: args.DirPath}
		st.mu.Unlock()
		(&nfsproto.MntRes{Status: mntOK, File: s.FS.FH(n)}).Encode(e)
		return nil
	case nfsproto.MountProcDump:
		nfsproto.EncodeMountList(e, s.MountsFor())
		return nil
	case nfsproto.MountProcUmnt:
		args, err := nfsproto.DecodeMntArgs(d)
		if err != nil {
			return err
		}
		st.mu.Lock()
		delete(st.mounts, peer+" "+args.DirPath)
		st.mu.Unlock()
		return nil
	case nfsproto.MountProcUmntAll:
		st.mu.Lock()
		for k, ent := range st.mounts {
			if ent.Host == peer {
				delete(st.mounts, k)
			}
		}
		st.mu.Unlock()
		return nil
	case nfsproto.MountProcExport:
		var list []nfsproto.ExportEntry
		st.mu.Lock()
		for dir, groups := range st.exports {
			list = append(list, nfsproto.ExportEntry{Dir: dir, Groups: groups})
		}
		st.mu.Unlock()
		sort.Slice(list, func(i, j int) bool { return list[i].Dir < list[j].Dir })
		nfsproto.EncodeExportList(e, list)
		return nil
	default:
		(&nfsproto.StatusRes{Status: nfsproto.ErrIO}).Encode(e)
		return nil
	}
}
