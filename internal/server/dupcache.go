package server

import (
	"container/list"
	"sync"

	"renonfs/internal/lockstat"
	"renonfs/internal/mbuf"
	"renonfs/internal/metrics"
)

// dupcSite attributes shard-lock waits to the "server.dupc" lockstat site
// (and to the caller's span). The legacy server.dupc.contended counter is
// kept alongside for the existing churn tests and dashboards.
var dupcSite = lockstat.NewSite("server.dupc")

// dupKey identifies one RPC for duplicate detection: who sent it, its
// transaction id, and the procedure (a retransmission reuses all three). A
// struct key avoids the per-call string formatting a concatenated key costs
// on the hot path.
type dupKey struct {
	peer string
	xid  uint32
	proc uint32
}

// dupCache is the duplicate request cache of [Juszczak89]: recent replies
// to non-idempotent calls, keyed by caller and transaction id, so that a
// retransmitted REMOVE or CREATE is answered from cache instead of being
// re-executed (the "at least once" hazard the conclusions call out).
//
// The cache is split into dupKey-hashed shards, each with its own mutex and
// LRU list, so the nfsd pool of concurrent frontends does not serialize on
// one cache lock. Entries carry an in-progress state: begin claims a key
// before execution, and a retransmission that arrives while the original is
// still executing is dropped rather than executed a second time — the only
// answer that preserves exactly-once for non-idempotent procedures when two
// workers can hold the same call concurrently (the client retransmits again
// and finds the committed reply). Small caches collapse to one shard so the
// eviction order stays the exact global LRU the churn tests pin down.
type dupCache struct {
	shards []dupShard
	mask   uint32

	// Aggregate observability, wired by the server (nil in bare tests):
	// shard hits, lock contention seen by begin/commit, and retransmissions
	// dropped because the original call was still in flight.
	cHits, cContended, cDrops *metrics.Counter
}

type dupShard struct {
	mu      sync.Mutex
	cap     int
	entries map[dupKey]*list.Element
	order   *list.List // front = newest; values are *dupEntry
}

type dupEntry struct {
	key   dupKey
	reply *mbuf.Chain
	done  bool // false while the original call is still executing
}

func newDupCache(capacity int) *dupCache {
	if capacity < 1 {
		capacity = 1
	}
	// Shard only when every shard keeps a meaningful LRU depth (≥16); up to
	// 16 shards. A 64-entry default gets 4 shards; test-sized caches (8, 16)
	// keep the exact single-LRU behaviour.
	n := 1
	for n*2 <= 16 && capacity/(n*2) >= 16 {
		n *= 2
	}
	c := &dupCache{shards: make([]dupShard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = dupShard{
			cap:     capacity / n,
			entries: make(map[dupKey]*list.Element),
			order:   list.New(),
		}
	}
	return c
}

// instrument attaches the server's counters (safe to leave nil).
func (c *dupCache) instrument(hits, contended, drops *metrics.Counter) {
	c.cHits, c.cContended, c.cDrops = hits, contended, drops
}

func (c *dupCache) shard(key dupKey) *dupShard {
	h := key.xid*0x9e3779b1 ^ key.proc*0x85ebca77
	for i := 0; i < len(key.peer); i++ {
		h = h*16777619 ^ uint32(key.peer[i])
	}
	return &c.shards[(h>>16^h)&c.mask]
}

// lock takes the shard lock, counting contention when it has to wait and
// charging the wait to the lockstat site and the request's span.
func (c *dupCache) lock(sh *dupShard, sp *metrics.Span) {
	if sh.mu.TryLock() {
		return
	}
	if c.cContended != nil {
		c.cContended.Add(1)
	}
	dupcSite.Lock(&sh.mu, sp)
}

// begin claims key before executing its call. Exactly one case holds:
//
//   - cached != nil: a completed reply is on file — a duplicate hit; the
//     caller clones it and answers without executing.
//   - inflight: another worker is executing this very call right now — the
//     caller drops the request (the client's next retransmission finds the
//     committed reply).
//   - neither: the key is now marked in progress and the caller must
//     execute the call and commit the reply.
func (c *dupCache) begin(key dupKey, sp *metrics.Span) (cached *mbuf.Chain, inflight bool) {
	sh := c.shard(key)
	c.lock(sh, sp)
	if e := sh.entries[key]; e != nil {
		ent := e.Value.(*dupEntry)
		if !ent.done {
			sh.mu.Unlock()
			if c.cDrops != nil {
				c.cDrops.Add(1)
			}
			return nil, true
		}
		sh.order.MoveToFront(e)
		sh.mu.Unlock()
		if c.cHits != nil {
			c.cHits.Add(1)
		}
		return ent.reply, false
	}
	sh.insertLocked(&dupEntry{key: key})
	sh.mu.Unlock()
	return nil, false
}

// commit stores the reply for a key claimed by begin.
func (c *dupCache) commit(key dupKey, reply *mbuf.Chain, sp *metrics.Span) {
	sh := c.shard(key)
	c.lock(sh, sp)
	if e := sh.entries[key]; e != nil {
		ent := e.Value.(*dupEntry)
		ent.reply = reply
		ent.done = true
	} else {
		// The in-progress marker was evicted (overfull shard): file the
		// reply as a fresh completed entry.
		sh.insertLocked(&dupEntry{key: key, reply: reply, done: true})
	}
	sh.mu.Unlock()
}

// insertLocked files a new entry, evicting the oldest completed entry when
// the shard is full. In-progress markers are never evicted unless nothing
// else remains — losing one mid-execution would forfeit the exactly-once
// guarantee the marker exists to provide.
func (sh *dupShard) insertLocked(ent *dupEntry) {
	if sh.order.Len() >= sh.cap {
		for e := sh.order.Back(); e != nil; e = e.Prev() {
			old := e.Value.(*dupEntry)
			if old.done || sh.order.Len() > 2*sh.cap {
				sh.order.Remove(e)
				delete(sh.entries, old.key)
				break
			}
		}
	}
	sh.entries[ent.key] = sh.order.PushFront(ent)
}

// len returns the number of cached replies (including in-progress markers).
func (c *dupCache) len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}

// get returns the cached reply for key, or nil. Retained for tests; the
// serving path uses begin/commit.
func (c *dupCache) get(key dupKey) *mbuf.Chain {
	sh := c.shard(key)
	c.lock(sh, nil)
	defer sh.mu.Unlock()
	e := sh.entries[key]
	if e == nil {
		return nil
	}
	ent := e.Value.(*dupEntry)
	if !ent.done {
		return nil
	}
	sh.order.MoveToFront(e)
	return ent.reply
}

// put stores a completed reply directly (tests; the serving path commits).
func (c *dupCache) put(key dupKey, reply *mbuf.Chain) {
	sh := c.shard(key)
	c.lock(sh, nil)
	if e := sh.entries[key]; e != nil {
		ent := e.Value.(*dupEntry)
		ent.reply = reply
		ent.done = true
		sh.order.MoveToFront(e)
		sh.mu.Unlock()
		return
	}
	sh.insertLocked(&dupEntry{key: key, reply: reply, done: true})
	sh.mu.Unlock()
}
