package server

import (
	"container/list"

	"renonfs/internal/mbuf"
)

// dupKey identifies one RPC for duplicate detection: who sent it, its
// transaction id, and the procedure (a retransmission reuses all three). A
// struct key avoids the per-call string formatting a concatenated key costs
// on the hot path.
type dupKey struct {
	peer string
	xid  uint32
	proc uint32
}

// dupCache is the duplicate request cache of [Juszczak89]: recent replies
// to non-idempotent calls, keyed by caller and transaction id, so that a
// retransmitted REMOVE or CREATE is answered from cache instead of being
// re-executed (the "at least once" hazard the conclusions call out).
type dupCache struct {
	cap     int
	entries map[dupKey]*list.Element
	order   *list.List // front = newest; values are *dupEntry
}

type dupEntry struct {
	key   dupKey
	reply *mbuf.Chain
}

func newDupCache(capacity int) *dupCache {
	return &dupCache{
		cap:     capacity,
		entries: make(map[dupKey]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached reply for key, or nil.
func (c *dupCache) get(key dupKey) *mbuf.Chain {
	e := c.entries[key]
	if e == nil {
		return nil
	}
	c.order.MoveToFront(e)
	return e.Value.(*dupEntry).reply
}

// put stores a reply, evicting the oldest entry beyond capacity.
func (c *dupCache) put(key dupKey, reply *mbuf.Chain) {
	if e := c.entries[key]; e != nil {
		e.Value.(*dupEntry).reply = reply
		c.order.MoveToFront(e)
		return
	}
	if c.order.Len() >= c.cap {
		back := c.order.Back()
		old := back.Value.(*dupEntry)
		c.order.Remove(back)
		delete(c.entries, old.key)
	}
	c.entries[key] = c.order.PushFront(&dupEntry{key: key, reply: reply})
}

// len returns the number of cached replies.
func (c *dupCache) len() int { return c.order.Len() }
