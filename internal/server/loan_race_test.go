package server

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/xdr"
)

// TestLoanedBlockCopyOnWriteUnderConcurrency drives concurrent READ and
// WRITE RPCs at the same file the way the real-socket frontend does (each
// call under the kernel lock, reply payload consumed after the lock drops)
// and checks that block loaning stays safe: a reader's loaned payload must
// be a consistent snapshot — some whole former file state, never a torn
// block mixing a loaned page with the writer's update — because writers
// replace loaned blocks instead of mutating them. Run with -race: any
// write-under-loan shows up as a data race on the block storage.
func TestLoanedBlockCopyOnWriteUnderConcurrency(t *testing.T) {
	const blockSize = memfs.BlockSize
	const fileSize = 8192 // one 8K READ, one block per RPC

	s := New(memfs.New(1, nil, nil), Reno())
	fh := mustCreate(t, s, s.RootFH(), "shared")

	// The nfsnet frontend serializes HandleCall under a lock; replies are
	// read after it is released.
	var kernel sync.Mutex
	doCall := func(xid, proc uint32, args func(e *xdr.Encoder)) *mbuf.Chain {
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: proc})
		args(xdr.NewEncoder(req))
		kernel.Lock()
		rep := s.HandleCall(nil, "race-peer", req)
		kernel.Unlock()
		req.Free()
		return rep
	}

	// Seed the file with generation 0.
	seed := make([]byte, fileSize)
	rep := doCall(1, nfsproto.ProcWrite, func(e *xdr.Encoder) {
		(&nfsproto.WriteArgs{File: fh, Data: mbuf.FromBytes(seed)}).Encode(e)
	})
	if rep == nil {
		t.Fatal("seed write dropped")
	}

	const writers = 2
	const readers = 4
	const rounds = 120
	var wg sync.WaitGroup

	// Writers overwrite the whole file with a uniform generation byte, one
	// block per WRITE RPC (the NFS v2 transfer size).
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			buf := make([]byte, blockSize)
			for r := 0; r < rounds; r++ {
				gen := byte(1 + (id*rounds+r)%200)
				for i := range buf {
					buf[i] = gen
				}
				for off := uint32(0); off < fileSize; off += blockSize {
					rep := doCall(uint32(1000+id*100000+r*100+int(off/blockSize)),
						nfsproto.ProcWrite, func(e *xdr.Encoder) {
							(&nfsproto.WriteArgs{File: fh, Offset: off, Data: mbuf.FromBytes(buf)}).Encode(e)
						})
					if rep != nil {
						rep.Free()
					}
				}
			}
		}(w)
	}

	// Readers pull 8K and verify every block is uniform: a torn block means
	// a writer scribbled on storage that was out on loan.
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			page := make([]byte, fileSize)
			for r := 0; r < rounds; r++ {
				rep := doCall(uint32(5_000_000+id*100000+r), nfsproto.ProcRead, func(e *xdr.Encoder) {
					(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: fileSize}).Encode(e)
				})
				if rep == nil {
					t.Error("read dropped")
					return
				}
				// Decode outside the kernel lock, like nfsnet's client side:
				// the loaned bytes must stay stable even while writers run.
				d := xdr.NewDecoder(rep)
				if _, err := rpc.DecodeReply(d); err != nil {
					t.Errorf("reader %d: %v", id, err)
					return
				}
				res, err := nfsproto.DecodeReadRes(d)
				if err != nil || res.Status != nfsproto.OK {
					t.Errorf("reader %d: read status %v err %v", id, res.Status, err)
					return
				}
				n := res.Data.CopyTo(page)
				for b := 0; b+blockSize <= n; b += blockSize {
					first := page[b]
					for i := b + 1; i < b+blockSize; i++ {
						if page[i] != first {
							t.Errorf("reader %d round %d: torn block at %d: %#x then %#x",
								id, r, b, first, page[i])
							return
						}
					}
				}
				// Loaned reply bytes are immutable: give the writers time to
				// overwrite the file, then re-read the same view — it must
				// not have moved underneath us (COW replaces, never mutates).
				if r%8 == 0 {
					time.Sleep(200 * time.Microsecond)
					again := make([]byte, n)
					res.Data.CopyTo(again)
					if !bytes.Equal(page[:n], again) {
						t.Errorf("reader %d round %d: loaned bytes mutated under the reply", id, r)
						return
					}
				}
				res.Data.Free()
			}
		}(rd)
	}
	wg.Wait()
}
