package server

import (
	"bytes"
	"fmt"
	"testing"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

var xidCounter uint32

// call invokes one NFS procedure directly against the server.
func call(t *testing.T, s *Server, proc uint32, args func(e *xdr.Encoder)) (*rpc.Reply, *xdr.Decoder) {
	t.Helper()
	return callPeer(t, s, "test-peer", 0, proc, args)
}

func callPeer(t *testing.T, s *Server, peer string, xid uint32, proc uint32, args func(e *xdr.Encoder)) (*rpc.Reply, *xdr.Decoder) {
	t.Helper()
	if xid == 0 {
		xidCounter++
		xid = xidCounter
	}
	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(req))
	}
	rep := s.HandleCall(nil, peer, req)
	if rep == nil {
		t.Fatal("nil reply")
	}
	d := xdr.NewDecoder(rep)
	r, err := rpc.DecodeReply(d)
	if err != nil {
		t.Fatalf("bad reply: %v", err)
	}
	if r.XID != xid {
		t.Fatalf("xid = %d, want %d", r.XID, xid)
	}
	return r, d
}

func newServer() *Server {
	return New(memfs.New(1, nil, nil), Reno())
}

func mustLookup(t *testing.T, s *Server, dir nfsproto.FH, name string) *nfsproto.DiropRes {
	t.Helper()
	_, d := call(t, s, nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: dir, Name: name}).Encode(e)
	})
	res, err := nfsproto.DecodeDiropRes(d)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustCreate(t *testing.T, s *Server, dir nfsproto.FH, name string) nfsproto.FH {
	t.Helper()
	_, d := call(t, s, nfsproto.ProcCreate, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: dir, Name: name}, Attr: nfsproto.NewSattr()}).Encode(e)
	})
	res, err := nfsproto.DecodeDiropRes(d)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("create: %v / %v", res.Status, err)
	}
	return res.File
}

func TestNullProc(t *testing.T) {
	s := newServer()
	r, _ := call(t, s, nfsproto.ProcNull, nil)
	if r.AcceptStat != rpc.Success {
		t.Fatalf("stat = %d", r.AcceptStat)
	}
}

func TestGetattrRoot(t *testing.T) {
	s := newServer()
	_, d := call(t, s, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: s.RootFH()}).Encode(e)
	})
	res, err := nfsproto.DecodeAttrRes(d)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("getattr: %v %v", res, err)
	}
	if res.Attr.Type != nfsproto.TypeDir {
		t.Fatalf("root type = %v", res.Attr.Type)
	}
}

func TestLookupCreateReadWrite(t *testing.T) {
	s := newServer()
	fh := mustCreate(t, s, s.RootFH(), "file.c")

	payload := bytes.Repeat([]byte{0xab}, 8192)
	_, d := call(t, s, nfsproto.ProcWrite, func(e *xdr.Encoder) {
		(&nfsproto.WriteArgs{File: fh, Offset: 0, Data: mbuf.FromBytes(payload)}).Encode(e)
	})
	wres, err := nfsproto.DecodeAttrRes(d)
	if err != nil || wres.Status != nfsproto.OK || wres.Attr.Size != 8192 {
		t.Fatalf("write: %+v %v", wres, err)
	}

	_, d = call(t, s, nfsproto.ProcRead, func(e *xdr.Encoder) {
		(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: 8192}).Encode(e)
	})
	rres, err := nfsproto.DecodeReadRes(d)
	if err != nil || rres.Status != nfsproto.OK {
		t.Fatalf("read: %+v %v", rres, err)
	}
	if !bytes.Equal(rres.Data.Bytes(), payload) {
		t.Fatal("read data mismatch")
	}

	lres := mustLookup(t, s, s.RootFH(), "file.c")
	if lres.Status != nfsproto.OK || lres.File != fh {
		t.Fatalf("lookup: %+v", lres)
	}
}

func TestLookupNoEnt(t *testing.T) {
	s := newServer()
	res := mustLookup(t, s, s.RootFH(), "missing")
	if res.Status != nfsproto.ErrNoEnt {
		t.Fatalf("status = %v", res.Status)
	}
	// Second miss is served by the negative name cache.
	before := s.NameCacheStats().NegHits
	res = mustLookup(t, s, s.RootFH(), "missing")
	if res.Status != nfsproto.ErrNoEnt {
		t.Fatalf("status = %v", res.Status)
	}
	if s.NameCacheStats().NegHits != before+1 {
		t.Fatal("negative cache not used")
	}
}

func TestStaleHandle(t *testing.T) {
	s := newServer()
	fh := mustCreate(t, s, s.RootFH(), "gone")
	call(t, s, nfsproto.ProcRemove, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: s.RootFH(), Name: "gone"}).Encode(e)
	})
	_, d := call(t, s, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: fh}).Encode(e)
	})
	res, _ := nfsproto.DecodeAttrRes(d)
	if res.Status != nfsproto.ErrStale {
		t.Fatalf("status = %v, want NFSERR_STALE", res.Status)
	}
}

func TestDupCacheSuppressesReplay(t *testing.T) {
	s := newServer()
	mkArgs := func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "once"}, Attr: nfsproto.NewSattr()}).Encode(e)
	}
	_, d := callPeer(t, s, "client-a", 777, nfsproto.ProcCreate, mkArgs)
	res1, _ := nfsproto.DecodeDiropRes(d)
	// Retransmission: same xid, same peer.
	_, d = callPeer(t, s, "client-a", 777, nfsproto.ProcCreate, mkArgs)
	res2, _ := nfsproto.DecodeDiropRes(d)
	if res1.Status != nfsproto.OK || res2.Status != nfsproto.OK {
		t.Fatalf("statuses: %v %v", res1.Status, res2.Status)
	}
	if res1.File != res2.File {
		t.Fatal("replayed create returned a different file")
	}
	if s.Stats.DupHits.Load() != 1 {
		t.Fatalf("DupHits = %d", s.Stats.DupHits.Load())
	}
	if s.Stats.Calls[nfsproto.ProcCreate].Load() != 1 {
		t.Fatalf("create executed %d times", s.Stats.Calls[nfsproto.ProcCreate].Load())
	}
	// A different peer with the same xid is NOT a duplicate.
	_, d = callPeer(t, s, "client-b", 777, nfsproto.ProcCreate, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "twice"}, Attr: nfsproto.NewSattr()}).Encode(e)
	})
	res3, _ := nfsproto.DecodeDiropRes(d)
	if res3.Status != nfsproto.OK {
		t.Fatalf("other peer create: %v", res3.Status)
	}
	if s.Stats.Calls[nfsproto.ProcCreate].Load() != 2 {
		t.Fatalf("create count = %d", s.Stats.Calls[nfsproto.ProcCreate].Load())
	}
}

func TestRenameAndRemove(t *testing.T) {
	s := newServer()
	mustCreate(t, s, s.RootFH(), "a")
	_, d := call(t, s, nfsproto.ProcRename, func(e *xdr.Encoder) {
		(&nfsproto.RenameArgs{
			From: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "a"},
			To:   nfsproto.DiropArgs{Dir: s.RootFH(), Name: "b"},
		}).Encode(e)
	})
	res, _ := nfsproto.DecodeStatusRes(d)
	if res.Status != nfsproto.OK {
		t.Fatalf("rename: %v", res.Status)
	}
	if mustLookup(t, s, s.RootFH(), "a").Status != nfsproto.ErrNoEnt {
		t.Fatal("old name still resolves")
	}
	if mustLookup(t, s, s.RootFH(), "b").Status != nfsproto.OK {
		t.Fatal("new name does not resolve")
	}
}

func TestMkdirReaddirRmdir(t *testing.T) {
	s := newServer()
	_, d := call(t, s, nfsproto.ProcMkdir, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "sub"}, Attr: nfsproto.NewSattr()}).Encode(e)
	})
	mres, err := nfsproto.DecodeDiropRes(d)
	if err != nil || mres.Status != nfsproto.OK {
		t.Fatalf("mkdir: %v %v", mres, err)
	}
	for i := 0; i < 5; i++ {
		mustCreate(t, s, mres.File, fmt.Sprintf("f%d", i))
	}
	_, d = call(t, s, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: mres.File, Cookie: 0, Count: 4096}).Encode(e)
	})
	rd, err := nfsproto.DecodeReaddirRes(d)
	if err != nil || rd.Status != nfsproto.OK || !rd.EOF {
		t.Fatalf("readdir: %+v %v", rd, err)
	}
	// ".", ".." and 5 files.
	if len(rd.Entries) != 7 {
		t.Fatalf("entries = %d", len(rd.Entries))
	}
	// Rmdir refuses a populated directory.
	_, d = call(t, s, nfsproto.ProcRmdir, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: s.RootFH(), Name: "sub"}).Encode(e)
	})
	rm, _ := nfsproto.DecodeStatusRes(d)
	if rm.Status != nfsproto.ErrNotEmpty {
		t.Fatalf("rmdir: %v", rm.Status)
	}
}

func TestReaddirPaging(t *testing.T) {
	s := newServer()
	for i := 0; i < 60; i++ {
		mustCreate(t, s, s.RootFH(), fmt.Sprintf("file-%02d", i))
	}
	var names []string
	cookie := uint32(0)
	for rounds := 0; rounds < 20; rounds++ {
		_, d := call(t, s, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
			(&nfsproto.ReaddirArgs{Dir: s.RootFH(), Cookie: cookie, Count: 512}).Encode(e)
		})
		rd, err := nfsproto.DecodeReaddirRes(d)
		if err != nil || rd.Status != nfsproto.OK {
			t.Fatalf("readdir: %v %v", rd.Status, err)
		}
		if len(rd.Entries) == 0 {
			t.Fatal("empty page without EOF progress")
		}
		for _, ent := range rd.Entries {
			names = append(names, ent.Name)
			cookie = ent.Cookie
		}
		if rd.EOF {
			break
		}
	}
	if len(names) != 62 { // ".", "..", 60 files
		t.Fatalf("total entries = %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate entry %q", n)
		}
		seen[n] = true
	}
}

func TestSymlinkReadlinkViaRPC(t *testing.T) {
	s := newServer()
	_, d := call(t, s, nfsproto.ProcSymlink, func(e *xdr.Encoder) {
		(&nfsproto.SymlinkArgs{
			From: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "ln"},
			To:   "/etc/passwd", Attr: nfsproto.NewSattr(),
		}).Encode(e)
	})
	sres, _ := nfsproto.DecodeStatusRes(d)
	if sres.Status != nfsproto.OK {
		t.Fatalf("symlink: %v", sres.Status)
	}
	lres := mustLookup(t, s, s.RootFH(), "ln")
	_, d = call(t, s, nfsproto.ProcReadlink, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: lres.File}).Encode(e)
	})
	rl, err := nfsproto.DecodeReadlinkRes(d)
	if err != nil || rl.Status != nfsproto.OK || rl.Path != "/etc/passwd" {
		t.Fatalf("readlink: %+v %v", rl, err)
	}
}

func TestStatfs(t *testing.T) {
	s := newServer()
	_, d := call(t, s, nfsproto.ProcStatfs, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: s.RootFH()}).Encode(e)
	})
	res, err := nfsproto.DecodeStatfsRes(d)
	if err != nil || res.Status != nfsproto.OK || res.TSize != nfsproto.MaxData {
		t.Fatalf("statfs: %+v %v", res, err)
	}
}

func TestBadProgramRejected(t *testing.T) {
	s := newServer()
	req := &mbuf.Chain{}
	// 100005 is now served (the MOUNT protocol); 100099 is nobody.
	rpc.EncodeCall(req, &rpc.Call{XID: 1, Prog: 100099, Vers: 1, Proc: 0})
	rep := s.HandleCall(nil, "x", req)
	d := xdr.NewDecoder(rep)
	r, err := rpc.DecodeReply(d)
	if err != nil || r.AcceptStat != rpc.ProgUnavail {
		t.Fatalf("reply: %+v %v", r, err)
	}
}

func TestGarbageDropped(t *testing.T) {
	s := newServer()
	if rep := s.HandleCall(nil, "x", mbuf.FromBytes([]byte("not rpc"))); rep != nil {
		t.Fatal("garbage produced a reply")
	}
}

// TestUltrixLookupCostsMoreCPU reproduces the mechanism behind Graphs 8-9:
// with identical warm caches, the Reno server's vnode-chained buffer lists
// plus name cache make lookups far cheaper than the Ultrix linear scan.
func TestUltrixLookupCostsMoreCPU(t *testing.T) {
	cpuFor := func(opts Options) sim.Time {
		env := sim.New(42)
		defer env.Close()
		nt := netsim.New(env)
		node := nt.AddNode(netsim.NodeConfig{Name: "srv"})
		fs := memfs.New(1, nil, nil)
		s := New(fs, opts)
		s.AttachNode(node)
		// Populate a directory tree so scans have work to do.
		for i := 0; i < 40; i++ {
			fs.Create(nil, fs.Root(), fmt.Sprintf("file-%02d", i), 0644)
		}
		env.Spawn("load", func(p *sim.Proc) {
			for round := 0; round < 3; round++ {
				for i := 0; i < 40; i++ {
					req := &mbuf.Chain{}
					rpc.EncodeCall(req, &rpc.Call{XID: uint32(round*100 + i + 1), Prog: nfsproto.Program, Vers: 2, Proc: nfsproto.ProcLookup})
					(&nfsproto.DiropArgs{Dir: s.RootFH(), Name: fmt.Sprintf("file-%02d", i)}).Encode(xdr.NewEncoder(req))
					s.HandleCall(p, "c", req)
				}
				// Touch other files so the Ultrix cache has plenty of
				// buffers to scan through.
				for i := 0; i < 30; i++ {
					req := &mbuf.Chain{}
					rpc.EncodeCall(req, &rpc.Call{XID: uint32(10000 + round*100 + i), Prog: nfsproto.Program, Vers: 2, Proc: nfsproto.ProcReaddir})
					(&nfsproto.ReaddirArgs{Dir: s.RootFH(), Count: 4096}).Encode(xdr.NewEncoder(req))
					s.HandleCall(p, "c", req)
				}
			}
		})
		env.RunAll()
		return node.CPU.BusyTime()
	}
	reno := cpuFor(Reno())
	ultrix := cpuFor(Ultrix())
	if ultrix <= reno {
		t.Fatalf("ultrix CPU %v <= reno %v; lookup-path costs inverted", ultrix, reno)
	}
	if float64(ultrix) < 1.3*float64(reno) {
		t.Fatalf("ultrix/reno CPU ratio = %.2f, want a clear gap", float64(ultrix)/float64(reno))
	}
}

func TestCreateExistingTruncates(t *testing.T) {
	s := newServer()
	fh := mustCreate(t, s, s.RootFH(), "file")
	call(t, s, nfsproto.ProcWrite, func(e *xdr.Encoder) {
		(&nfsproto.WriteArgs{File: fh, Offset: 0, Data: mbuf.FromBytes(bytes.Repeat([]byte{1}, 100))}).Encode(e)
	})
	// CREATE again with size 0 (open O_CREAT|O_TRUNC).
	_, d := call(t, s, nfsproto.ProcCreate, func(e *xdr.Encoder) {
		attr := nfsproto.NewSattr()
		attr.Size = 0
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "file"}, Attr: attr}).Encode(e)
	})
	res, _ := nfsproto.DecodeDiropRes(d)
	if res.Status != nfsproto.OK || res.File != fh {
		t.Fatalf("re-create: %+v", res)
	}
	if res.Attr.Size != 0 {
		t.Fatalf("size after truncating create = %d", res.Attr.Size)
	}
}

func TestDupCacheEviction(t *testing.T) {
	fs := memfs.New(1, nil, nil)
	opts := Reno()
	opts.DupCacheSize = 4
	s := New(fs, opts)
	for i := 0; i < 10; i++ {
		callPeer(t, s, "c", uint32(1000+i), nfsproto.ProcCreate, func(e *xdr.Encoder) {
			(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: s.RootFH(), Name: fmt.Sprintf("f%d", i)}, Attr: nfsproto.NewSattr()}).Encode(e)
		})
	}
	if s.dupc.len() != 4 {
		t.Fatalf("dup cache len = %d, want 4", s.dupc.len())
	}
}

func TestSetattrViaRPC(t *testing.T) {
	s := newServer()
	fh := mustCreate(t, s, s.RootFH(), "tunable")
	call(t, s, nfsproto.ProcWrite, func(e *xdr.Encoder) {
		(&nfsproto.WriteArgs{File: fh, Offset: 0, Data: mbuf.FromBytes(bytes.Repeat([]byte{1}, 1000))}).Encode(e)
	})
	// Change the mode and truncate in one call.
	attr := nfsproto.NewSattr()
	attr.Mode = 0600
	attr.Size = 100
	_, d := call(t, s, nfsproto.ProcSetattr, func(e *xdr.Encoder) {
		(&nfsproto.SetattrArgs{File: fh, Attr: attr}).Encode(e)
	})
	res, err := nfsproto.DecodeAttrRes(d)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("setattr: %v %v", res, err)
	}
	if res.Attr.Mode != 0600 || res.Attr.Size != 100 {
		t.Fatalf("attrs after setattr: mode=%o size=%d", res.Attr.Mode, res.Attr.Size)
	}
	// Stale handle path.
	_, d = call(t, s, nfsproto.ProcSetattr, func(e *xdr.Encoder) {
		(&nfsproto.SetattrArgs{File: nfsproto.MakeFH(1, 9999, 1), Attr: nfsproto.NewSattr()}).Encode(e)
	})
	res, _ = nfsproto.DecodeAttrRes(d)
	if res.Status != nfsproto.ErrStale {
		t.Fatalf("setattr stale = %v", res.Status)
	}
}

func TestLinkViaRPC(t *testing.T) {
	s := newServer()
	fh := mustCreate(t, s, s.RootFH(), "orig")
	_, d := call(t, s, nfsproto.ProcLink, func(e *xdr.Encoder) {
		(&nfsproto.LinkArgs{From: fh, To: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "alias"}}).Encode(e)
	})
	res, err := nfsproto.DecodeStatusRes(d)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("link: %v %v", res, err)
	}
	al := mustLookup(t, s, s.RootFH(), "alias")
	if al.Status != nfsproto.OK || al.File != fh {
		t.Fatalf("alias lookup: %+v", al)
	}
	if al.Attr.Nlink != 2 {
		t.Fatalf("nlink = %d, want 2", al.Attr.Nlink)
	}
	// Hard link to a directory is refused.
	_, d = call(t, s, nfsproto.ProcLink, func(e *xdr.Encoder) {
		(&nfsproto.LinkArgs{From: s.RootFH(), To: nfsproto.DiropArgs{Dir: s.RootFH(), Name: "dirlink"}}).Encode(e)
	})
	res, _ = nfsproto.DecodeStatusRes(d)
	if res.Status != nfsproto.ErrIsDir {
		t.Fatalf("link to dir = %v", res.Status)
	}
}

func TestMountdDirect(t *testing.T) {
	s := newServer()
	s.Export("/data")
	mustCreate(t, s, s.RootFH(), "ignore") // populate root a bit
	_, d := call2(t, s, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcExport, nil)
	exports, err := nfsproto.DecodeExportList(d)
	if err != nil || len(exports) != 2 {
		t.Fatalf("exports: %+v %v", exports, err)
	}
	// MNT of the (nonexistent) /data export: errno ENOENT.
	_, d = call2(t, s, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcMnt, func(e *xdr.Encoder) {
		(&nfsproto.MntArgs{DirPath: "/data"}).Encode(e)
	})
	res, err := nfsproto.DecodeMntRes(d)
	if err != nil || res.Status != 2 {
		t.Fatalf("mnt missing export: %+v %v", res, err)
	}
	// DUMP after a successful mount of "/".
	call2(t, s, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcMnt, func(e *xdr.Encoder) {
		(&nfsproto.MntArgs{DirPath: "/"}).Encode(e)
	})
	_, d = call2(t, s, nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcDump, nil)
	mounts, err := nfsproto.DecodeMountList(d)
	if err != nil || len(mounts) != 1 || mounts[0].Dir != "/" {
		t.Fatalf("dump: %+v %v", mounts, err)
	}
}

// call2 invokes an arbitrary RPC program against the server.
func call2(t *testing.T, s *Server, prog, vers, proc uint32, args func(e *xdr.Encoder)) (*rpc.Reply, *xdr.Decoder) {
	t.Helper()
	xidCounter++
	req := &mbuf.Chain{}
	rpc.EncodeCall(req, &rpc.Call{XID: xidCounter, Prog: prog, Vers: vers, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(req))
	}
	rep := s.HandleCall(nil, "test-peer", req)
	if rep == nil {
		t.Fatal("nil reply")
	}
	d := xdr.NewDecoder(rep)
	r, err := rpc.DecodeReply(d)
	if err != nil {
		t.Fatalf("bad reply: %v", err)
	}
	return r, d
}
