package server

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/xdr"
)

// TestLeaseCallbackStormRace hammers the lease table from many peers at
// once, the way a real-socket frontend's dispatcher pool does: every
// goroutine fights over one shared file's write lease (grant, TRYLATER,
// eviction collection, vacate) while also renewing a private lease through
// the piggyback path on its WRITE traffic. Run with -race: the point is
// that leaseMu covers every touch of the table and that eviction
// collection under the lock composes with the lock-free send (a nil
// callback socket makes sendEviction a no-op, which is exactly the
// frontend's state before ServeUDP wires one).
func TestLeaseCallbackStormRace(t *testing.T) {
	fs := memfs.New(1, nil, nil)
	opts := Reno()
	opts.Leases = true
	opts.LeaseDuration = 10 * time.Second
	s := New(fs, opts)
	s.EnableConcurrentDispatch()
	shared := mustCreate(t, s, s.RootFH(), "storm-shared")

	const peers = 8
	const rounds = 200
	var granted, refused atomic.Int64
	var xids atomic.Uint32
	xids.Store(50000)

	call := func(peer string, proc uint32, args func(e *xdr.Encoder)) *xdr.Decoder {
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{
			XID: xids.Add(1), Prog: nfsproto.Program,
			Vers: nfsproto.Version, Proc: proc,
		})
		args(xdr.NewEncoder(req))
		rep := s.HandleCall(nil, peer, req)
		req.Free()
		if rep == nil {
			return nil
		}
		d := xdr.NewDecoder(rep)
		if _, err := rpc.DecodeReply(d); err != nil {
			return nil
		}
		return d
	}

	privates := make([]nfsproto.FH, peers)
	for i := range privates {
		privates[i] = mustCreate(t, s, s.RootFH(), "storm-private-"+string(rune('a'+i)))
	}

	var wg sync.WaitGroup
	for i := 0; i < peers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			peer := "udp:" + string(rune('1'+id)) + ":9001"
			private := privates[id]
			data := make([]byte, 512)
			for r := 0; r < rounds; r++ {
				// Contend for the shared file's write lease.
				d := call(peer, nfsproto.ProcLease, func(e *xdr.Encoder) {
					(&nfsproto.LeaseArgs{
						File: shared, Mode: nfsproto.LeaseWrite,
						Duration: 10, CallbackPort: 9001,
					}).Encode(e)
				})
				if d == nil {
					t.Error("lease call dropped")
					return
				}
				res, err := nfsproto.DecodeLeaseRes(d)
				if err != nil {
					t.Errorf("peer %s: %v", peer, err)
					return
				}
				switch res.Status {
				case nfsproto.OK:
					granted.Add(1)
					call(peer, nfsproto.ProcVacated, func(e *xdr.Encoder) {
						(&nfsproto.VacatedArgs{File: shared}).Encode(e)
					})
				case nfsproto.ErrTryLater:
					refused.Add(1)
				default:
					t.Errorf("peer %s: lease status %v", peer, res.Status)
					return
				}
				// Keep the private file's write lease alive via the
				// piggyback path, racing piggyGrant against leaseCall.
				call(peer, nfsproto.ProcWrite, func(e *xdr.Encoder) {
					(&nfsproto.WriteArgs{File: private, Data: mbuf.FromBytes(data)}).Encode(e)
					(&nfsproto.LeaseHint{
						Mode: nfsproto.LeaseWrite, Duration: 10, CallbackPort: 9001,
					}).Encode(e)
				})
			}
		}(i)
	}
	wg.Wait()

	if granted.Load() == 0 {
		t.Error("no write lease was ever granted under the storm")
	}
	// How much the goroutines actually overlapped is the scheduler's
	// business; the conflict path itself is checked deterministically below.
	t.Logf("storm: %d grants, %d TRYLATER refusals", granted.Load(), refused.Load())

	// With the storm drained, one holder and one challenger must produce
	// exactly the grant-then-refuse sequence.
	d := call("udp:1:9001", nfsproto.ProcLease, func(e *xdr.Encoder) {
		(&nfsproto.LeaseArgs{
			File: shared, Mode: nfsproto.LeaseWrite,
			Duration: 10, CallbackPort: 9001,
		}).Encode(e)
	})
	if res, err := nfsproto.DecodeLeaseRes(d); err != nil || res.Status != nfsproto.OK {
		t.Fatalf("post-storm grant = %v / %v", res.Status, err)
	}
	d = call("udp:2:9001", nfsproto.ProcLease, func(e *xdr.Encoder) {
		(&nfsproto.LeaseArgs{
			File: shared, Mode: nfsproto.LeaseWrite,
			Duration: 10, CallbackPort: 9001,
		}).Encode(e)
	})
	if res, err := nfsproto.DecodeLeaseRes(d); err != nil || res.Status != nfsproto.ErrTryLater {
		t.Fatalf("conflicting request = %v / %v, want ErrTryLater", res.Status, err)
	}
}
