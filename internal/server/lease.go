package server

import (
	"sort"
	"strconv"
	"strings"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

// NQNFS-style cache leases (the paper's Future Directions: "a mechanism
// for doing a delayed write without push on close policy safely").
//
// A lease is short-lived soft state: the server grants a read lease to any
// number of clients or a write lease to one, for at most LeaseDuration.
// While a client holds a write lease its delayed writes need no
// push-on-close — nobody else may cache the file. A conflicting request
// triggers an eviction notice to the holders and a TRYLATER refusal; the
// holders flush, answer VACATED, and the requester's retry succeeds. If a
// holder has crashed, the lease simply expires. A crashed server waits one
// lease period before answering, and statelessness — the property §1
// prizes for trivial crash recovery — is preserved in spirit: no lease
// outlives LeaseDuration.

// DefaultLeaseDuration is the granted lease length when unspecified.
const DefaultLeaseDuration = 30 * time.Second

// leaseState tracks one file's lease.
type leaseState struct {
	mode     uint32
	holders  map[string]holderAddr // peer id -> callback address
	expiry   sim.Time
	vacating bool
}

type holderAddr struct {
	node netsim.NodeID
	port int
}

// leases lazily allocates the lease table.
func (s *Server) leaseTable() map[nfsproto.FH]*leaseState {
	if s.leaseTab == nil {
		s.leaseTab = make(map[nfsproto.FH]*leaseState)
	}
	return s.leaseTab
}

func (s *Server) leaseDuration() sim.Time {
	if s.Opts.LeaseDuration > 0 {
		return s.Opts.LeaseDuration
	}
	return DefaultLeaseDuration
}

// extensionEnabled reports whether the extension procedure is served.
func (s *Server) extensionEnabled(proc uint32) bool {
	switch proc {
	case nfsproto.ProcLease, nfsproto.ProcVacated:
		return s.Opts.Leases
	case nfsproto.ProcReaddirLook:
		return s.Opts.ReaddirLook
	default:
		return false
	}
}

// parsePeerNode recovers the caller's node id from the frontend peer tag
// ("udp:<node>:<port>"). Leases need a callback path, so they are only
// granted to UDP peers.
func parsePeerNode(peer string) (netsim.NodeID, bool) {
	parts := strings.Split(peer, ":")
	if len(parts) != 3 || parts[0] != "udp" {
		return 0, false
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, false
	}
	return netsim.NodeID(n), true
}

// sendEviction fires the one-way eviction notice at a holder's callback
// port.
func (s *Server) sendEviction(p *sim.Proc, to holderAddr, fh nfsproto.FH) {
	if s.cbSock == nil || p == nil {
		return
	}
	c := &mbuf.Chain{}
	e := xdr.NewEncoder(c)
	e.PutUint32(nfsproto.EvictionMagic)
	e.PutFixedOpaque(fh[:])
	s.cbSock.Send(p, to.node, to.port, c)
	s.Stats.Evictions.Add(1)
	s.cLeaseEvict.Inc()
	s.Metrics.Counter("nfs.lease_evictions").Add(1)
}

// collectEvictions marks the lease as being vacated and returns the
// callback addresses to notify, in deterministic peer order. It runs under
// leaseMu; the sends happen after the lock is dropped, because the callback
// socket parks the sending proc under the simulator (holding a real mutex
// across a park deadlocks the cooperative scheduler).
func collectEvictions(st *leaseState, except string) []holderAddr {
	if st.vacating {
		return nil
	}
	st.vacating = true
	peers := make([]string, 0, len(st.holders))
	for peer := range st.holders {
		peers = append(peers, peer)
	}
	sort.Strings(peers)
	addrs := make([]holderAddr, 0, len(peers))
	for _, peer := range peers {
		if peer == except {
			continue
		}
		addrs = append(addrs, st.holders[peer])
	}
	return addrs
}

// sendEvictions fires the collected notices (outside leaseMu).
func (s *Server) sendEvictions(p *sim.Proc, fh nfsproto.FH, to []holderAddr) {
	for _, addr := range to {
		s.sendEviction(p, addr, fh)
	}
}

// leaseConflict checks a data operation against the lease table; if the
// caller is not entitled, holders are evicted and the op must answer
// TRYLATER. Called from read/write/setattr when leases are enabled.
func (s *Server) leaseConflict(p *sim.Proc, fh nfsproto.FH, write bool, peer string) bool {
	if !s.Opts.Leases {
		return false
	}
	s.leaseMu.Lock()
	st := s.leaseTable()[fh]
	if st == nil {
		s.leaseMu.Unlock()
		return false
	}
	now := s.now()
	if now >= st.expiry {
		delete(s.leaseTab, fh)
		s.cLeaseExpiries.Inc()
		s.leaseMu.Unlock()
		return false
	}
	if _, holder := st.holders[peer]; holder {
		// The holder's own reads are always covered; its writes are covered
		// by a write lease, and also when it is the sole holder — nobody
		// else caches the file, so a read-leased caller truncating or
		// rewriting its own file needs no eviction round.
		if !write || st.mode == nfsproto.LeaseWrite || len(st.holders) == 1 {
			s.leaseMu.Unlock()
			return false
		}
	}
	if !write && st.mode == nfsproto.LeaseRead {
		s.leaseMu.Unlock()
		return false // reads coexist with read leases
	}
	evict := collectEvictions(st, peer)
	s.leaseMu.Unlock()
	s.cLeaseTryLater.Inc()
	s.sendEvictions(p, fh, evict)
	return true
}

// piggyGrant decides a piggybacked lease hint: issue, extend or ignore.
// Unlike leaseCall it never evicts — a conflicting hint simply goes
// unanswered, leaving eviction to the explicit LEASE path — and it only
// covers regular files (a LOOKUP hint would otherwise scatter leases over
// directories, whose mutations bypass leaseConflict). It does no sends, so
// it is safe to run from both dispatch paths; callers hold no locks.
func (s *Server) piggyGrant(peer string, fh nfsproto.FH, ftype nfsproto.FileType, hint *nfsproto.LeaseHint) (nfsproto.LeasePiggy, bool) {
	var g nfsproto.LeasePiggy
	if hint == nil || !s.Opts.Leases || ftype != nfsproto.TypeReg {
		return g, false
	}
	node, ok := parsePeerNode(peer)
	if !ok {
		return g, false
	}
	addr := holderAddr{node: node, port: int(hint.CallbackPort)}
	now := s.now()
	dur := s.leaseDuration()
	if req := time.Duration(hint.Duration) * time.Second; req > 0 && req < dur {
		dur = req
	}
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	if now < s.noGrantsUntil {
		return g, false // crash recovery: pre-crash leases must expire first
	}
	tab := s.leaseTable()
	st := tab[fh]
	if st != nil && now >= st.expiry {
		delete(tab, fh)
		s.cLeaseExpiries.Inc()
		st = nil
	}
	var isHolder bool
	if st != nil {
		_, isHolder = st.holders[peer]
	}
	mode := hint.Mode
	renewal := false
	switch {
	case st == nil:
		tab[fh] = &leaseState{
			mode:    mode,
			holders: map[string]holderAddr{peer: addr},
			expiry:  now + dur,
		}
	case st.vacating:
		return g, false // an eviction is in flight; stay out of its way
	case isHolder && (st.mode == mode || st.mode == nfsproto.LeaseWrite):
		// Renewal; a write-lease holder hinting for read keeps write.
		mode = st.mode
		st.expiry = now + dur
		renewal = true
	case isHolder && len(st.holders) == 1 && mode == nfsproto.LeaseWrite:
		// Sole holder upgrading read to write.
		st.mode = nfsproto.LeaseWrite
		st.expiry = now + dur
		renewal = true
	case st.mode == nfsproto.LeaseRead && mode == nfsproto.LeaseRead:
		st.holders[peer] = addr
		if exp := now + dur; exp > st.expiry {
			st.expiry = exp
		}
	default:
		return g, false // conflict: no grant, no eviction
	}
	s.cLeaseGrants.Inc()
	s.cLeasePiggy.Inc()
	if renewal {
		s.cLeaseRenewals.Inc()
	}
	metrics.Emit(s.Tracer, metrics.LeaseGrant{
		Peer: peer, File: fh.String(),
		Write: mode == nfsproto.LeaseWrite,
		Term:  time.Duration(dur),
		Piggy: true,
	})
	g.Mode = mode
	g.Duration = uint32(dur / time.Second)
	return g, true
}

// piggyback appends a grant to a successful generic reply when the call
// carried a hint the server can honor.
func (s *Server) piggyback(e *xdr.Encoder, peer string, fh nfsproto.FH, ftype nfsproto.FileType, hint *nfsproto.LeaseHint) {
	if g, ok := s.piggyGrant(peer, fh, ftype, hint); ok {
		g.Encode(e)
	}
}

// piggybackBytes is piggyback's flat-buffer twin for the shallow path.
func (s *Server) piggybackBytes(w *xdr.ByteWriter, peer string, fh nfsproto.FH, ftype nfsproto.FileType, hint *nfsproto.LeaseHint) {
	if g, ok := s.piggyGrant(peer, fh, ftype, hint); ok {
		g.EncodeBytes(w)
	}
}

func (s *Server) now() sim.Time {
	if s.Node == nil {
		return 0
	}
	return s.Node.Net().Env.Now()
}

// leaseCall serves the LEASE procedure: grant, share, renew or refuse.
func (s *Server) leaseCall(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeLeaseArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	n, rerr := s.FS.Resolve(args.File)
	if rerr != nil {
		(&nfsproto.LeaseRes{Status: errStatus(rerr)}).Encode(e)
		return nil
	}
	node, ok := parsePeerNode(peer)
	if !ok {
		(&nfsproto.LeaseRes{Status: nfsproto.ErrAcces}).Encode(e)
		return nil
	}
	addr := holderAddr{node: node, port: int(args.CallbackPort)}
	now := s.now()
	dur := s.leaseDuration()
	if req := time.Duration(args.Duration) * time.Second; req > 0 && req < dur {
		dur = req
	}
	s.leaseMu.Lock()
	// NQNFS crash recovery: no grants until pre-crash leases have expired.
	if now < s.noGrantsUntil {
		s.leaseMu.Unlock()
		s.cLeaseTryLater.Inc()
		(&nfsproto.LeaseRes{Status: nfsproto.ErrTryLater}).Encode(e)
		return nil
	}
	tab := s.leaseTable()
	st := tab[args.File]
	if st != nil && now >= st.expiry {
		delete(tab, args.File)
		s.cLeaseExpiries.Inc()
		st = nil
	}
	grant := func() {
		attr := s.FS.Attr(n)
		(&nfsproto.LeaseRes{
			Status:   nfsproto.OK,
			Duration: uint32(dur / time.Second),
			Attr:     &attr,
		}).Encode(e)
		s.cLeaseGrants.Inc()
		metrics.Emit(s.Tracer, metrics.LeaseGrant{
			Peer: peer, File: args.File.String(),
			Write: args.Mode == nfsproto.LeaseWrite,
			Term:  time.Duration(dur),
		})
	}
	var isHolder bool
	if st != nil {
		_, isHolder = st.holders[peer]
	}
	var evict []holderAddr
	switch {
	case st == nil:
		tab[args.File] = &leaseState{
			mode:    args.Mode,
			holders: map[string]holderAddr{peer: addr},
			expiry:  now + dur,
		}
		grant()
	case isHolder && (st.mode == args.Mode || st.mode == nfsproto.LeaseWrite):
		// Renewal (a write lease also covers the holder's reads).
		st.expiry = now + dur
		st.vacating = false
		s.cLeaseRenewals.Inc()
		grant()
	case isHolder && len(st.holders) == 1 && args.Mode == nfsproto.LeaseWrite:
		// Sole holder upgrading a read lease to write.
		st.mode = nfsproto.LeaseWrite
		st.expiry = now + dur
		st.vacating = false
		s.cLeaseRenewals.Inc()
		grant()
	case st.mode == nfsproto.LeaseRead && args.Mode == nfsproto.LeaseRead:
		// Read leases are shared.
		st.holders[peer] = addr
		if exp := now + dur; exp > st.expiry {
			st.expiry = exp
		}
		grant()
	default:
		// Conflict: evict and tell the requester to come back.
		evict = collectEvictions(st, "")
		s.cLeaseTryLater.Inc()
		(&nfsproto.LeaseRes{Status: nfsproto.ErrTryLater}).Encode(e)
	}
	s.leaseMu.Unlock()
	s.sendEvictions(p, args.File, evict)
	return nil
}

// vacatedCall serves the VACATED procedure: a holder has flushed and
// released after an eviction notice.
func (s *Server) vacatedCall(p *sim.Proc, peer string, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeVacatedArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	s.leaseMu.Lock()
	if st := s.leaseTable()[args.File]; st != nil {
		if _, held := st.holders[peer]; held {
			delete(st.holders, peer)
			s.cLeaseVacates.Inc()
			metrics.Emit(s.Tracer, metrics.LeaseVacate{Peer: peer, File: args.File.String()})
		}
		if len(st.holders) == 0 {
			delete(s.leaseTab, args.File)
		}
	}
	s.leaseMu.Unlock()
	(&nfsproto.StatusRes{Status: nfsproto.OK}).Encode(e)
	return nil
}

// readdirLook serves the readdir_and_lookup_files extension: READDIR
// entries carrying each file's handle and attributes, so a directory
// listing plus per-file stat costs one RPC instead of dozens (Future
// Directions' proposal; NFSv3 later standardized it as READDIRPLUS).
func (s *Server) readdirLook(p *sim.Proc, d *xdr.Decoder, e *xdr.Encoder) error {
	args, err := nfsproto.DecodeReaddirArgs(d)
	if err != nil {
		return err
	}
	s.charge(p, "nfs", costVOP)
	dir, rerr := s.FS.Resolve(args.Dir)
	if rerr != nil {
		(&nfsproto.ReaddirLookRes{Status: errStatus(rerr)}).Encode(e)
		return nil
	}
	if dir.Type != nfsproto.TypeDir {
		(&nfsproto.ReaddirLookRes{Status: nfsproto.ErrNotDir}).Encode(e)
		return nil
	}
	s.scanDirectory(p, dir, nil)
	ents := s.FS.DirEntries(dir)
	res := &nfsproto.ReaddirLookRes{Status: nfsproto.OK}
	budget := int(args.Count)
	if budget <= 0 || budget > nfsproto.MaxData {
		budget = nfsproto.MaxData
	}
	used := 16
	for i := int(args.Cookie); i < len(ents); i++ {
		de := ents[i]
		n, err := s.FS.Lookup(dir, de.Name)
		if err != nil {
			continue
		}
		// Each embedded lookup still costs attribute work, but no
		// per-entry RPC round trip.
		s.charge(p, "nfs", costVOP/4)
		sz := 16 + len(de.Name) + nfsproto.FHSize + 68
		if used+sz > budget {
			res.EOF = false
			res.Encode(e)
			return nil
		}
		res.Entries = append(res.Entries, nfsproto.LookEntry{
			Entry: nfsproto.DirEntry{FileID: de.Ino, Name: de.Name, Cookie: uint32(i + 1)},
			File:  s.FS.FH(n),
			Attr:  s.FS.Attr(n),
		})
		used += sz
	}
	res.EOF = true
	res.Encode(e)
	return nil
}

// EnableLeaseCallbacks points the server at a UDP socket for eviction
// notices; ServeUDP wires this automatically.
func (s *Server) EnableLeaseCallbacks(sock *netsim.UDPSocket) { s.cbSock = sock }

// Leases returns the number of active leases (tests and monitoring).
func (s *Server) Leases() int {
	n := 0
	now := s.now()
	s.leaseMu.Lock()
	for fh, st := range s.leaseTable() {
		if now < st.expiry {
			n++
		} else {
			delete(s.leaseTab, fh)
			s.cLeaseExpiries.Inc()
		}
	}
	s.leaseMu.Unlock()
	return n
}

// PublishLeaseStats refreshes the lease.active gauge from the live table;
// stats endpoints call it right before snapshotting the registry.
func (s *Server) PublishLeaseStats() {
	s.Metrics.Gauge("lease.active").Set(float64(s.Leases()))
}
