package server

import (
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/xdr"
)

// The shallow dispatch path (DESIGN.md §3.4). Header-only procedures —
// NULL, GETATTR, LOOKUP, small READDIRs, STATFS and the MOUNT herd — carry
// their whole request in one datagram and produce a small bounded reply,
// so the mbuf chain assembly, the full RPC decoder and the chain encoder
// that payload-bearing procedures need are pure overhead for them. The
// ingest readers classify each datagram with rpc.PeekCallHeader and, when
// FastEligible says so, call HandleCallFast to service it in place: flat
// byte-slice argument decode, the same cache/lease/FS internals as the
// generic handlers, and a flat reply encode into a caller-provided scratch
// region.
//
// Fallback discipline: HandleCallFast decodes arguments and validates
// bounds BEFORE touching any counter, cache or table. If anything is off —
// short datagram, oversized name, READDIR window out of the fast range —
// it returns ok=false having had no side effects, and the caller stages
// the datagram onto the generic path, which re-runs the full decode and
// owns the error reply. A datagram is therefore counted and serviced
// exactly once whichever path it ends on, and the equivalence test pins
// the replies byte-for-byte against HandleCall's.

const (
	// FastReplyMax bounds a fast-path reply. The largest producer is a
	// READDIR at fastReaddirMax budget: ≤ ~120 entries × (16 bytes + padded
	// name) stays under 2.5 KB, and every other fast reply is ≤ 128 bytes.
	// Scratch regions sized to this never need a mid-service fallback.
	FastReplyMax = 4096
	// fastReaddirMax is the largest READDIR count argument serviced on the
	// fast path; bigger windows (nfsproto.MaxData-sized sweeps) go generic.
	fastReaddirMax = 2048
)

// FastEligible reports whether a peeked call may take the shallow path.
// Eligibility is by procedure only — argument-dependent limits (the
// READDIR window) are checked after decode and fall back without side
// effects.
func FastEligible(h *rpc.PeekedCall) bool {
	if h.Prog == nfsproto.Program && h.Vers == nfsproto.Version {
		switch h.Proc {
		case nfsproto.ProcNull, nfsproto.ProcGetattr, nfsproto.ProcLookup,
			nfsproto.ProcSetattr, nfsproto.ProcReadlink,
			nfsproto.ProcReaddir, nfsproto.ProcStatfs:
			return true
		}
		return false
	}
	if h.Prog == nfsproto.MountProgram && h.Vers == nfsproto.MountVersion {
		return h.Proc == nfsproto.MountProcNull || h.Proc == nfsproto.MountProcMnt
	}
	return false
}

// HandleCallFast services one fast-eligible datagram in place. req is the
// raw datagram, h/argOff the result of rpc.PeekCallHeader, out a scratch
// slice (len 0, cap ≥ FastReplyMax) the reply is appended to. It returns
// the reply bytes and ok=true; (nil, true) when the call was consumed but
// produces no reply (an in-flight non-idempotent duplicate); or
// (nil, false) — with no side effects — when the call must take the
// generic path. sp may be nil.
func (s *Server) HandleCallFast(peer string, req []byte, h *rpc.PeekedCall, argOff int, out []byte, sp *metrics.Span) ([]byte, bool) {
	if argOff > len(req) {
		return nil, false
	}
	var r xdr.ByteReader
	r.ResetBytes(req[argOff:])
	var w xdr.ByteWriter
	w.ResetBytes(out)

	// MOUNT program: mirrors HandleCallSpan's mount branch — bytes counters
	// only, no per-proc stats, no service histogram, no tracer emit.
	if h.Prog == nfsproto.MountProgram {
		switch h.Proc {
		case nfsproto.MountProcNull:
			rpc.AppendReplyHeader(&w, h.XID, rpc.Success)
		case nfsproto.MountProcMnt:
			b := r.Opaque(nfsproto.MountMaxPath)
			if !r.OK() {
				return nil, false
			}
			path := string(b)
			rpc.AppendReplyHeader(&w, h.XID, rpc.Success)
			n, status := s.lookupExportPath(path)
			if status != mntOK {
				(&nfsproto.MntRes{Status: uint32(status)}).EncodeBytes(&w)
				break
			}
			st := s.mountState()
			st.mu.Lock()
			st.mounts[peer+" "+path] = nfsproto.MountEntry{Host: peer, Dir: path}
			st.mu.Unlock()
			(&nfsproto.MntRes{Status: mntOK, File: s.FS.FH(n)}).EncodeBytes(&w)
		default:
			return nil, false
		}
		sp.Stamp(metrics.StageService)
		sp.Stamp(metrics.StageEncode)
		s.Stats.BytesIn.Add(int64(len(req)))
		s.cBytesIn.Add(int64(len(req)))
		s.Stats.BytesOut.Add(int64(w.Len() - len(out)))
		s.cBytesOut.Add(int64(w.Len() - len(out)))
		return w.Bytes(), true
	}

	// NFS program: decode arguments first (pure — a fallback from here has
	// executed nothing), then mirror HandleCallSpan's counter ordering.
	var (
		fh     nfsproto.FH
		name   string
		cookie uint32
		count  uint32
		sattr  nfsproto.Sattr
		hint   *nfsproto.LeaseHint
	)
	switch h.Proc {
	case nfsproto.ProcNull:
	case nfsproto.ProcGetattr, nfsproto.ProcStatfs, nfsproto.ProcReadlink:
		copy(fh[:], r.FixedOpaque(nfsproto.FHSize))
		if !r.OK() {
			return nil, false
		}
	case nfsproto.ProcSetattr:
		copy(fh[:], r.FixedOpaque(nfsproto.FHSize))
		sattr.Mode = r.Uint32()
		sattr.UID = r.Uint32()
		sattr.GID = r.Uint32()
		sattr.Size = r.Uint32()
		sattr.Atime = nfsproto.Time{Sec: r.Uint32(), USec: r.Uint32()}
		sattr.Mtime = nfsproto.Time{Sec: r.Uint32(), USec: r.Uint32()}
		if !r.OK() {
			return nil, false
		}
	case nfsproto.ProcLookup:
		copy(fh[:], r.FixedOpaque(nfsproto.FHSize))
		b := r.Opaque(nfsproto.MaxNameLen)
		if !r.OK() {
			return nil, false
		}
		name = string(b)
	case nfsproto.ProcReaddir:
		copy(fh[:], r.FixedOpaque(nfsproto.FHSize))
		cookie = r.Uint32()
		count = r.Uint32()
		if !r.OK() || count == 0 || count > fastReaddirMax {
			return nil, false
		}
	default:
		return nil, false
	}
	if g, ok := nfsproto.DecodeLeaseHintBytes(&r); ok {
		hint = &g
	}

	s.Stats.BytesIn.Add(int64(len(req)))
	s.cBytesIn.Add(int64(len(req)))

	// SETATTR is non-idempotent: mirror the generic path's dupcache
	// discipline exactly — claim before execution, replay the committed
	// bytes on a retransmission (Calls/BytesOut untouched, like the generic
	// dup hit), and consume in-flight duplicates without a reply.
	var dkey dupKey
	if nonIdempotent[h.Proc] {
		dkey = dupKey{peer: peer, xid: h.XID, proc: h.Proc}
		cached, inflight := s.dupc.begin(dkey, sp)
		sp.Stamp(metrics.StageDupcheck)
		if inflight {
			sp.SetErr()
			return nil, true
		}
		if cached != nil {
			s.Stats.DupHits.Add(1)
			s.cDupHits.Add(1)
			metrics.Emit(s.Tracer, metrics.DupCacheHit{Proc: h.Proc})
			w.PutFixedOpaque(cached.Bytes())
			return w.Bytes(), true
		}
	}

	s.Stats.Calls[h.Proc].Add(1)
	s.cCalls.Add(1)
	s.procCalls[h.Proc].Add(1)
	begin := time.Since(s.epoch)

	rpc.AppendReplyHeader(&w, h.XID, rpc.Success)
	switch h.Proc {
	case nfsproto.ProcNull:
	case nfsproto.ProcGetattr:
		s.fastGetattr(peer, fh, hint, &w)
	case nfsproto.ProcSetattr:
		s.fastSetattr(peer, fh, sattr, &w)
	case nfsproto.ProcReadlink:
		s.fastReadlink(fh, &w)
	case nfsproto.ProcLookup:
		s.fastLookup(peer, fh, name, hint, &w, sp)
	case nfsproto.ProcReaddir:
		s.fastReaddir(fh, cookie, count, &w, sp)
	case nfsproto.ProcStatfs:
		res := s.FS.Statfs()
		res.EncodeBytes(&w)
	}
	sp.Stamp(metrics.StageService)
	sp.Stamp(metrics.StageEncode)

	svc := time.Since(s.epoch) - begin
	s.procSvc[h.Proc].ObserveDuration(svc)
	if s.Tracer != nil { // guard: boxing the event allocates even when untraced
		metrics.Emit(s.Tracer, metrics.ServerCall{
			Proc: h.Proc, Peer: peer, XID: h.XID,
			NonIdempotent: nonIdempotent[h.Proc],
			Service:       svc,
		})
	}
	if nonIdempotent[h.Proc] {
		// The scratch region is the reader's reusable arena; the cached
		// reply needs its own storage (mbuf.FromBytes aliases its argument).
		rep := append([]byte(nil), w.Bytes()...)
		s.dupc.commit(dkey, mbuf.FromBytes(rep), sp)
	}
	s.Stats.BytesOut.Add(int64(w.Len() - len(out)))
	s.cBytesOut.Add(int64(w.Len() - len(out)))
	return w.Bytes(), true
}

func (s *Server) fastGetattr(peer string, fh nfsproto.FH, hint *nfsproto.LeaseHint, w *xdr.ByteWriter) {
	if s.leaseConflict(nil, fh, false, peer) {
		(&nfsproto.AttrRes{Status: nfsproto.ErrTryLater}).EncodeBytes(w)
		return
	}
	n, err := s.FS.Resolve(fh)
	if err != nil {
		(&nfsproto.AttrRes{Status: errStatus(err)}).EncodeBytes(w)
		return
	}
	attr := s.FS.Attr(n)
	(&nfsproto.AttrRes{Status: nfsproto.OK, Attr: &attr}).EncodeBytes(w)
	s.piggybackBytes(w, peer, fh, attr.Type, hint)
}

// fastSetattr mirrors the generic setattr handler (its caller has already
// run the dupcache discipline the generic path applies around dispatch).
func (s *Server) fastSetattr(peer string, fh nfsproto.FH, sa nfsproto.Sattr, w *xdr.ByteWriter) {
	if s.leaseConflict(nil, fh, true, peer) {
		(&nfsproto.AttrRes{Status: nfsproto.ErrTryLater}).EncodeBytes(w)
		return
	}
	n, err := s.FS.Resolve(fh)
	if err != nil {
		(&nfsproto.AttrRes{Status: errStatus(err)}).EncodeBytes(w)
		return
	}
	s.FS.Setattr(nil, n, sa)
	attr := s.FS.Attr(n)
	(&nfsproto.AttrRes{Status: nfsproto.OK, Attr: &attr}).EncodeBytes(w)
}

func (s *Server) fastReadlink(fh nfsproto.FH, w *xdr.ByteWriter) {
	n, err := s.FS.Resolve(fh)
	if err != nil {
		(&nfsproto.ReadlinkRes{Status: errStatus(err)}).EncodeBytes(w)
		return
	}
	target, err := s.FS.Readlink(n)
	if err != nil {
		(&nfsproto.ReadlinkRes{Status: errStatus(err)}).EncodeBytes(w)
		return
	}
	(&nfsproto.ReadlinkRes{Status: nfsproto.OK, Path: target}).EncodeBytes(w)
}

func (s *Server) fastLookup(peer string, dirFH nfsproto.FH, name string, hint *nfsproto.LeaseHint, w *xdr.ByteWriter, sp *metrics.Span) {
	dir, err := s.FS.Resolve(dirFH)
	if err != nil {
		(&nfsproto.DiropRes{Status: errStatus(err)}).EncodeBytes(w)
		return
	}
	if s.namec.Enabled() {
		if vn, vgen, neg, found := s.namec.Lookup(dir.Ino, dir.Gen, name, sp); found {
			if neg {
				(&nfsproto.DiropRes{Status: nfsproto.ErrNoEnt}).EncodeBytes(w)
				return
			}
			if n, err := s.FS.Get(vn, vgen); err == nil {
				if s.leaseConflict(nil, s.FS.FH(n), false, peer) {
					(&nfsproto.DiropRes{Status: nfsproto.ErrTryLater}).EncodeBytes(w)
					return
				}
				attr := s.FS.Attr(n)
				(&nfsproto.DiropRes{Status: nfsproto.OK, File: s.FS.FH(n), Attr: &attr}).EncodeBytes(w)
				s.piggybackBytes(w, peer, s.FS.FH(n), attr.Type, hint)
				return
			}
			s.namec.Remove(dir.Ino, dir.Gen, name)
		}
	}
	s.scanDirectory(nil, dir, sp)
	n, err := s.FS.Lookup(dir, name)
	if err != nil {
		if err == memfs.ErrNoEnt {
			s.namec.EnterNegative(dir.Ino, dir.Gen, name, sp)
		}
		s.countErr()
		(&nfsproto.DiropRes{Status: errStatus(err)}).EncodeBytes(w)
		return
	}
	s.namec.Enter(dir.Ino, dir.Gen, name, n.Ino, n.Gen, sp)
	if s.leaseConflict(nil, s.FS.FH(n), false, peer) {
		(&nfsproto.DiropRes{Status: nfsproto.ErrTryLater}).EncodeBytes(w)
		return
	}
	attr := s.FS.Attr(n)
	(&nfsproto.DiropRes{Status: nfsproto.OK, File: s.FS.FH(n), Attr: &attr}).EncodeBytes(w)
	s.piggybackBytes(w, peer, s.FS.FH(n), attr.Type, hint)
}

// fastReaddir streams the entry list straight into w — same walk, same
// budget arithmetic and same wire bytes as the generic readdir, minus its
// scratch entry slice.
func (s *Server) fastReaddir(dirFH nfsproto.FH, cookie, count uint32, w *xdr.ByteWriter, sp *metrics.Span) {
	dir, err := s.FS.Resolve(dirFH)
	if err != nil {
		(&nfsproto.ReaddirRes{Status: errStatus(err)}).EncodeBytes(w)
		return
	}
	if dir.Type != nfsproto.TypeDir {
		(&nfsproto.ReaddirRes{Status: nfsproto.ErrNotDir}).EncodeBytes(w)
		return
	}
	s.scanDirectory(nil, dir, sp)
	ents := s.FS.DirEntries(dir)
	w.PutUint32(uint32(nfsproto.OK))
	budget := int(count) // caller bounds it to (0, fastReaddirMax]
	used := 16           // status + eof + terminator
	eof := true
	total := len(ents) + 2
	for i := int(cookie); i < total; i++ {
		var fileID, next uint32
		var name string
		switch i {
		case 0:
			fileID, name, next = dir.Ino, ".", 1
		case 1:
			fileID, name, next = dir.Ino, "..", 2
		default:
			de := ents[i-2]
			fileID, name, next = de.Ino, de.Name, uint32(i+1)
		}
		sz := 16 + len(name)
		if used+sz > budget {
			eof = false
			break
		}
		w.PutBool(true) // entry follows
		w.PutUint32(fileID)
		w.PutString(name)
		w.PutUint32(next)
		used += sz
	}
	w.PutBool(false) // no more entries
	w.PutBool(eof)
}
