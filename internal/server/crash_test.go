package server

import (
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
	"renonfs/internal/xdr"
)

// TestStatelessRecovery demonstrates §1's claim: because the server is
// stateless, a reboot needs no recovery protocol — a retransmitted
// idempotent request simply succeeds against the recovered server.
func TestStatelessRecovery(t *testing.T) {
	s := newServer()
	fh := mustCreate(t, s, s.RootFH(), "survivor")
	call(t, s, nfsproto.ProcWrite, func(e *xdr.Encoder) {
		(&nfsproto.WriteArgs{File: fh, Offset: 0, Data: mbuf.FromBytes([]byte("durable data"))}).Encode(e)
	})
	s.Crash()
	// The old file handle still resolves (fsid/inode/generation on disk)
	// and the data is there: nothing was lost but caches.
	_, d := call(t, s, nfsproto.ProcRead, func(e *xdr.Encoder) {
		(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: 100}).Encode(e)
	})
	res, err := nfsproto.DecodeReadRes(d)
	if err != nil || res.Status != nfsproto.OK {
		t.Fatalf("read after crash: %v %v", res, err)
	}
	if string(res.Data.Bytes()) != "durable data" {
		t.Fatalf("data after crash = %q", res.Data.Bytes())
	}
}

// TestNonIdempotentReplayAfterCrash demonstrates the conclusions' warning:
// "the at least once semantics of these RPCs can result in faulty
// behaviour" — the duplicate request cache protects against replays, but
// it is volatile, so a retransmission that straddles a reboot re-executes
// the operation.
func TestNonIdempotentReplayAfterCrash(t *testing.T) {
	s := newServer()
	mustCreate(t, s, s.RootFH(), "victim")
	rmArgs := func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: s.RootFH(), Name: "victim"}).Encode(e)
	}
	// First transmission: REMOVE succeeds (reply lost, say).
	_, d := callPeer(t, s, "client-a", 4242, nfsproto.ProcRemove, rmArgs)
	res, _ := nfsproto.DecodeStatusRes(d)
	if res.Status != nfsproto.OK {
		t.Fatalf("remove: %v", res.Status)
	}
	// Retransmission before any crash: absorbed by the duplicate cache.
	_, d = callPeer(t, s, "client-a", 4242, nfsproto.ProcRemove, rmArgs)
	res, _ = nfsproto.DecodeStatusRes(d)
	if res.Status != nfsproto.OK {
		t.Fatalf("replay absorbed wrongly: %v", res.Status)
	}
	// Crash loses the duplicate cache; the same retransmission now
	// re-executes and the client sees a spurious failure.
	s.Crash()
	_, d = callPeer(t, s, "client-a", 4242, nfsproto.ProcRemove, rmArgs)
	res, _ = nfsproto.DecodeStatusRes(d)
	if res.Status != nfsproto.ErrNoEnt {
		t.Fatalf("replay across crash = %v, want NFSERR_NOENT (the §1 wart)", res.Status)
	}
}

// TestLeaseGrantRefusedAfterCrash: NQNFS recovery — the rebooted server
// must not grant leases until every pre-crash lease has expired.
func TestLeaseGrantRefusedAfterCrash(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	nt := netsim.New(env)
	node := nt.AddNode(netsim.NodeConfig{Name: "srv"})
	_ = nt.AddNode(netsim.NodeConfig{Name: "cl"})
	fs := memfs.New(1, nil, nil)
	opts := Reno()
	opts.Leases = true
	opts.LeaseDuration = 10 * time.Second
	s := New(fs, opts)
	s.AttachNode(node)
	f, _ := fs.Create(nil, fs.Root(), "f", 0644)
	fh := fs.FH(f)

	var leaseXID uint32 = 10000
	leaseStatus := func(p *sim.Proc) nfsproto.Status {
		leaseXID++
		req := &mbuf.Chain{}
		rpc.EncodeCall(req, &rpc.Call{XID: leaseXID, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcLease})
		(&nfsproto.LeaseArgs{File: fh, Mode: nfsproto.LeaseWrite, Duration: 10, CallbackPort: 9999}).Encode(xdr.NewEncoder(req))
		rep := s.HandleCall(p, "udp:1:9999", req)
		d := xdr.NewDecoder(rep)
		if _, err := rpc.DecodeReply(d); err != nil {
			t.Errorf("decode reply: %v", err)
			return nfsproto.ErrIO
		}
		res, err := nfsproto.DecodeLeaseRes(d)
		if err != nil {
			t.Errorf("decode lease: %v", err)
			return nfsproto.ErrIO
		}
		return res.Status
	}
	env.Spawn("test", func(p *sim.Proc) {
		if st := leaseStatus(p); st != nfsproto.OK {
			t.Errorf("pre-crash grant = %v", st)
		}
		s.Crash()
		if st := leaseStatus(p); st != nfsproto.ErrTryLater {
			t.Errorf("grant right after crash = %v, want NFSERR_TRYLATER", st)
		}
		p.Sleep(11 * time.Second) // one lease period
		if st := leaseStatus(p); st != nfsproto.OK {
			t.Errorf("grant after recovery window = %v, want OK", st)
		}
	})
	env.RunAll()
}

// TestHardMountSurvivesOutage drives a live client through a mid-workload
// server outage: the transport retransmits until the server returns.
func TestHardMountSurvivesOutage(t *testing.T) {
	env := sim.New(2)
	defer env.Close()
	tb := netsim.Build(env, netsim.TopoLAN, netsim.NodeConfig{}, netsim.NodeConfig{})
	fs := memfs.New(1, nil, nil)
	s := New(fs, Reno())
	s.AttachNode(tb.Server)
	s.ServeUDP(NFSPort)
	fs.Create(nil, fs.Root(), "f", 0644)

	// Crash window: down from t=2s to t=10s.
	env.After(2*time.Second, func() { s.SetDown(true) })
	env.After(10*time.Second, func() { s.SetDown(false); s.Crash() })

	okCalls := 0
	env.Spawn("client", func(p *sim.Proc) {
		cfg := transport.FixedUDP()
		cfg.Retrans = 100 // hard mount: retry forever
		tr := transport.NewUDP(tb.Client, 3001, tb.Server.ID, NFSPort, cfg)
		root := s.RootFH()
		for i := 0; i < 20; i++ {
			d, err := tr.Call(p, nfsproto.ProcLookup, func(e *xdr.Encoder) {
				(&nfsproto.DiropArgs{Dir: root, Name: "f"}).Encode(e)
			})
			if err != nil {
				t.Errorf("call %d: %v", i, err)
				return
			}
			if res, _ := nfsproto.DecodeDiropRes(d); res != nil && res.Status == nfsproto.OK {
				okCalls++
			}
			p.Sleep(time.Second)
		}
	})
	env.Run(10 * time.Minute)
	if okCalls != 20 {
		t.Fatalf("okCalls = %d, want 20 (hard mount rides out the outage)", okCalls)
	}
}
