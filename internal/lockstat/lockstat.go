// Package lockstat instruments the server's known lock-contention suspects
// — dupcache shards, striped buffer/name caches, memfs tree and inode
// locks, the nfsnet crash gate — with per-site wait telemetry, the way the
// paper's tuning started from kernel profiles rather than guesses.
//
// The discipline is "pay only when contended": every acquisition first
// TryLocks, and only the slow path (the lock was held) reads the clock and
// touches the site's atomics. An uncontended acquisition costs exactly what
// the bare mutex costs, so instrumenting a site never creates the
// contention it is there to measure, and single-threaded (simulator) runs
// record nothing at all.
//
// When the caller has the request's latency span in scope it passes it in,
// and the wait is also credited to that span (surfacing in the
// rpc.stage.lockwait.us histogram and the slow-span trace dumps); deep call
// sites without a span pass nil. Go's runtime mutex/block profiles
// (nfsbench -mutexprofile/-blockprofile) complement this with call-stack
// attribution; lockstat's value is that it is always on and per-site.
package lockstat

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"renonfs/internal/metrics"
)

// Site is one named lock population (all shards/stripes of a cache share a
// site). Zero value is unusable; get one from NewSite.
type Site struct {
	name      string
	contended atomic.Int64
	waitNS    atomic.Int64
}

var (
	sitesMu sync.Mutex
	sites   []*Site
)

// NewSite registers a named site. Call once per population, at init or
// construction time.
func NewSite(name string) *Site {
	s := &Site{name: name}
	sitesMu.Lock()
	sites = append(sites, s)
	sitesMu.Unlock()
	return s
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Contended returns how many acquisitions had to wait.
func (s *Site) Contended() int64 { return s.contended.Load() }

// WaitNS returns the cumulative wait, in nanoseconds.
func (s *Site) WaitNS() int64 { return s.waitNS.Load() }

// waited records one contended acquisition of d on the site and the span.
func (s *Site) waited(d time.Duration, sp *metrics.Span) {
	s.contended.Add(1)
	s.waitNS.Add(int64(d))
	sp.AddLockWait(int64(d))
}

// Lock acquires mu, charging any wait to the site (and to sp when non-nil).
func (s *Site) Lock(mu *sync.Mutex, sp *metrics.Span) {
	if mu.TryLock() {
		return
	}
	t0 := time.Now()
	mu.Lock()
	s.waited(time.Since(t0), sp)
}

// RLock acquires mu for reading, charging any wait.
func (s *Site) RLock(mu *sync.RWMutex, sp *metrics.Span) {
	if mu.TryRLock() {
		return
	}
	t0 := time.Now()
	mu.RLock()
	s.waited(time.Since(t0), sp)
}

// WLock acquires mu for writing, charging any wait.
func (s *Site) WLock(mu *sync.RWMutex, sp *metrics.Span) {
	if mu.TryLock() {
		return
	}
	t0 := time.Now()
	mu.Lock()
	s.waited(time.Since(t0), sp)
}

// Stat is one site's snapshot, for renderers.
type Stat struct {
	Name      string
	Contended int64
	WaitNS    int64
}

// Stats snapshots every registered site, sorted by cumulative wait
// (descending) — the order a contention hunt reads them in.
func Stats() []Stat {
	sitesMu.Lock()
	out := make([]Stat, 0, len(sites))
	for _, s := range sites {
		out = append(out, Stat{Name: s.name, Contended: s.Contended(), WaitNS: s.WaitNS()})
	}
	sitesMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].WaitNS > out[j].WaitNS })
	return out
}

// Publish mirrors every site into reg as lock.<site>.contended and
// lock.<site>.wait_us counters (the nfsd stats endpoint calls this before
// each snapshot, like PublishMbufStats).
func Publish(reg *metrics.Registry) {
	for _, st := range Stats() {
		reg.Counter("lock." + st.Name + ".contended").Store(st.Contended)
		reg.Counter("lock." + st.Name + ".wait_us").Store(st.WaitNS / 1000)
	}
}
