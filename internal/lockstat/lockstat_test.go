package lockstat

import (
	"sync"
	"testing"
	"time"

	"renonfs/internal/metrics"
)

// Uncontended acquisitions must record nothing: the TryLock fast path is
// the whole point of the discipline.
func TestUncontendedRecordsNothing(t *testing.T) {
	site := NewSite("test.uncontended")
	var mu sync.Mutex
	var rw sync.RWMutex
	for i := 0; i < 100; i++ {
		site.Lock(&mu, nil)
		mu.Unlock()
		site.RLock(&rw, nil)
		rw.RUnlock()
		site.WLock(&rw, nil)
		rw.Unlock()
	}
	if site.Contended() != 0 || site.WaitNS() != 0 {
		t.Errorf("uncontended site recorded contended=%d wait=%dns", site.Contended(), site.WaitNS())
	}
}

// A held lock must charge the waiter's site and span.
func TestContendedChargesSiteAndSpan(t *testing.T) {
	site := NewSite("test.contended")
	var mu sync.Mutex
	mu.Lock()
	released := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		mu.Unlock()
		close(released)
	}()
	var sp metrics.Span
	sp.Reset(time.Now())
	site.Lock(&mu, &sp)
	mu.Unlock()
	<-released
	if site.Contended() != 1 {
		t.Errorf("contended = %d, want 1", site.Contended())
	}
	if site.WaitNS() <= 0 {
		t.Errorf("wait = %dns, want > 0", site.WaitNS())
	}
	if sp.LockWaitNS != site.WaitNS() {
		t.Errorf("span credited %dns, site %dns", sp.LockWaitNS, site.WaitNS())
	}
}

func TestStatsAndPublish(t *testing.T) {
	site := NewSite("test.publish")
	site.contended.Store(3)
	site.waitNS.Store(42_000)
	found := false
	for _, st := range Stats() {
		if st.Name == "test.publish" {
			found = true
			if st.Contended != 3 || st.WaitNS != 42_000 {
				t.Errorf("stat = %+v", st)
			}
		}
	}
	if !found {
		t.Fatal("site missing from Stats()")
	}
	reg := metrics.NewRegistry()
	Publish(reg)
	snap := reg.Snapshot()
	if got := snap.Counters["lock.test.publish.contended"]; got != 3 {
		t.Errorf("published contended = %d, want 3", got)
	}
	if got := snap.Counters["lock.test.publish.wait_us"]; got != 42 {
		t.Errorf("published wait_us = %d, want 42", got)
	}
}

// Concurrent hammering under -race: many goroutines through one site.
func TestSiteConcurrent(t *testing.T) {
	site := NewSite("test.hammer")
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sp metrics.Span
			sp.Reset(time.Now())
			for i := 0; i < 2000; i++ {
				site.Lock(&mu, &sp)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if site.WaitNS() < 0 {
		t.Error("negative cumulative wait")
	}
}
