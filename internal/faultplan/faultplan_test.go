package faultplan

import (
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
)

func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, Options{})
		b := Generate(seed, Options{})
		if a.String() != b.String() {
			t.Fatalf("seed %d: schedules differ:\n%s\n%s", seed, a, b)
		}
	}
	if Generate(1, Options{}).String() == Generate(2, Options{}).String() {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestGenerateBounds(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		s := Generate(seed, Options{})
		span := s.Horizon * 6 / 10
		if len(s.Bursts) == 0 {
			t.Fatalf("seed %d: no bursts", seed)
		}
		for _, b := range s.Bursts {
			if b.Start < 0 || b.End > span || b.End <= b.Start {
				t.Fatalf("seed %d: burst window [%v,%v) outside [0,%v)", seed, b.Start, b.End, span)
			}
			if b.Loss > 0.15 || b.Dup > 0.10 || b.Corrupt > 0.05 || b.Reorder > 0.20 {
				t.Fatalf("seed %d: burst rates out of bounds: %+v", seed, b)
			}
			if b.ReorderDelay > 30*time.Millisecond {
				t.Fatalf("seed %d: reorder delay %v too large", seed, b.ReorderDelay)
			}
		}
		for _, f := range s.Flaps {
			if f.Start < 0 || f.End > span || f.End <= f.Start {
				t.Fatalf("seed %d: flap window [%v,%v) out of bounds", seed, f.Start, f.End)
			}
		}
		for _, c := range s.Crashes {
			if c.Start < 0 || c.End > span || c.End <= c.Start {
				t.Fatalf("seed %d: crash window [%v,%v) out of bounds", seed, c.Start, c.End)
			}
			if c.End-c.Start > 10*time.Second {
				t.Fatalf("seed %d: crash outage %v too long", seed, c.End-c.Start)
			}
		}
	}
}

// pump sends n spaced datagrams client->server and returns how many arrive.
func pump(t *testing.T, tb *netsim.Testbed, env *sim.Env, n int) int {
	t.Helper()
	got := 0
	rx := tb.Server.UDPSocket(7000)
	env.Spawn("rx", func(p *sim.Proc) {
		for {
			if _, ok := rx.Recv(p); !ok {
				return
			}
			got++
		}
	})
	tx := tb.Client.UDPSocket(7001)
	env.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			tx.Send(p, tb.Server.ID, 7000, mbuf.FromBytes(make([]byte, 100)))
			p.Sleep(10 * time.Millisecond)
		}
	})
	env.Run(env.Now() + time.Second)
	return got
}

func TestApplyLossBurst(t *testing.T) {
	env := sim.New(1)
	tb := netsim.Build(env, netsim.TopoLAN,
		netsim.NodeConfig{Name: "client"}, netsim.NodeConfig{Name: "server"})
	s := &Schedule{Horizon: time.Hour, Bursts: []Burst{{Start: 0, End: time.Hour, Loss: 1}}}
	s.Apply(tb, nil)
	if got := pump(t, tb, env, 20); got != 0 {
		t.Fatalf("total loss burst delivered %d datagrams", got)
	}
	drops := 0
	for _, l := range tb.Net.Links() {
		drops += l.Stat.FaultDrops
	}
	if drops == 0 {
		t.Fatal("no FaultDrops counted")
	}
}

func TestApplyDuplication(t *testing.T) {
	env := sim.New(1)
	tb := netsim.Build(env, netsim.TopoLAN,
		netsim.NodeConfig{Name: "client"}, netsim.NodeConfig{Name: "server"})
	s := &Schedule{Horizon: time.Hour, Bursts: []Burst{{Start: 0, End: time.Hour, Dup: 1}}}
	s.Apply(tb, nil)
	if got := pump(t, tb, env, 20); got < 30 {
		t.Fatalf("duplication burst delivered only %d datagrams for 20 sent", got)
	}
}

func TestApplyCorruption(t *testing.T) {
	env := sim.New(1)
	tb := netsim.Build(env, netsim.TopoLAN,
		netsim.NodeConfig{Name: "client"}, netsim.NodeConfig{Name: "server"})
	s := &Schedule{Horizon: time.Hour, Bursts: []Burst{{Start: 0, End: time.Hour, Corrupt: 1}}}
	s.Apply(tb, nil)
	if got := pump(t, tb, env, 20); got != 0 {
		t.Fatalf("corrupted datagrams passed the checksum: %d delivered", got)
	}
	if tb.Server.Stats.ChecksumDrops == 0 {
		t.Fatal("no checksum drops counted at the receiving host")
	}
}

func TestApplyFlap(t *testing.T) {
	env := sim.New(1)
	tb := netsim.Build(env, netsim.TopoLAN,
		netsim.NodeConfig{Name: "client"}, netsim.NodeConfig{Name: "server"})
	// TopoLAN has one link group (eth0); any flap index hits it.
	s := &Schedule{Horizon: time.Hour, Flaps: []Flap{{Start: 0, End: time.Hour, Link: 3}}}
	s.Apply(tb, nil)
	if got := pump(t, tb, env, 20); got != 0 {
		t.Fatalf("flapped link delivered %d datagrams", got)
	}
}

func TestApplyCrashWindow(t *testing.T) {
	env := sim.New(1)
	tb := netsim.Build(env, netsim.TopoLAN,
		netsim.NodeConfig{Name: "client"}, netsim.NodeConfig{Name: "server"})
	fs := memfs.New(1, nil, func() nfsproto.Time { return nfsproto.Time{} })
	srv := server.New(fs, server.Reno())
	srv.AttachNode(tb.Server)
	crashes := 0
	srv.Tracer = metrics.FuncTracer(func(ev metrics.Event) {
		if _, ok := ev.(metrics.ServerCrash); ok {
			crashes++
		}
	})
	s := &Schedule{
		Horizon: time.Minute,
		Crashes: []Crash{{Start: 2 * time.Second, End: 5 * time.Second}},
	}
	s.Apply(tb, srv)
	env.Run(3 * time.Second)
	if !srv.Down() {
		t.Fatal("server not down inside the crash window")
	}
	env.Run(6 * time.Second)
	if srv.Down() {
		t.Fatal("server still down after the crash window")
	}
	if crashes != 1 {
		t.Fatalf("expected 1 ServerCrash event, got %d", crashes)
	}
}

func TestApplyDeterministicCounters(t *testing.T) {
	run := func() (frames, drops int) {
		env := sim.New(42)
		tb := netsim.Build(env, netsim.TopoLAN,
			netsim.NodeConfig{Name: "client"}, netsim.NodeConfig{Name: "server"})
		s := &Schedule{Horizon: time.Hour, Bursts: []Burst{
			{Start: 0, End: time.Hour, Loss: 0.3, Dup: 0.2, Reorder: 0.5, ReorderDelay: 5 * time.Millisecond},
		}}
		s.Apply(tb, nil)
		pump(t, tb, env, 50)
		for _, l := range tb.Net.Links() {
			frames += l.Stat.Frames
			drops += l.Stat.FaultDrops
		}
		return
	}
	f1, d1 := run()
	f2, d2 := run()
	if f1 != f2 || d1 != d2 {
		t.Fatalf("identical (seed, schedule) diverged: frames %d/%d drops %d/%d", f1, f2, d1, d2)
	}
	if d1 == 0 {
		t.Fatal("lossy schedule dropped nothing")
	}
}
