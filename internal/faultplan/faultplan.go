// Package faultplan generates and applies deterministic fault schedules
// for chaos testing the NFS stack. A Schedule is a pure value derived from
// a seed: time-windowed loss bursts, packet duplication, corruption and
// reordering on the simulated links, link flaps (total outages of one
// interconnect segment), and server crash/reboot windows. Applying the
// same schedule to the same testbed always produces the same run — the
// link fault hooks draw from the simulation's own seeded RNG — so any
// failure a seed sweep finds is reproducible from (seed, schedule) alone.
package faultplan

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"renonfs/internal/netsim"
	"renonfs/internal/server"
	"renonfs/internal/sim"
)

// Burst is a window of degraded link quality on every link: random loss,
// duplication, corruption and reordering at the given rates.
type Burst struct {
	Start, End sim.Time
	// Loss, Dup, Corrupt, Reorder are per-frame probabilities in [0,1].
	Loss    float64
	Dup     float64
	Corrupt float64
	Reorder float64
	// ReorderDelay bounds the extra propagation delay a reordered frame
	// suffers (uniform in (0, ReorderDelay]).
	ReorderDelay sim.Time
}

// Flap is a total outage of one link group (both directions of a segment,
// identified by position in the sorted list of link names).
type Flap struct {
	Start, End sim.Time
	Link       int // index into the name-sorted link groups, modulo count
}

// Crash is a server outage window: at Start the server host goes silent
// (frontends drop requests, its links drop traffic, established TCP
// connections die); at End it reboots — volatile state is gone and lease
// grants are refused for one lease period.
type Crash struct {
	Start, End sim.Time
}

// Schedule is one complete fault plan.
type Schedule struct {
	Seed    int64
	Horizon sim.Time
	Bursts  []Burst
	Flaps   []Flap
	Crashes []Crash
}

// Options bounds schedule generation.
type Options struct {
	// Horizon is the run length faults are placed within (default 10 min).
	// Fault windows are confined to the first 60% of it, so even a run
	// that hits every fault has slack to drain its retransmission queues.
	Horizon sim.Time
	// MaxBursts, MaxFlaps and MaxCrashes bound the number of each fault
	// kind (the generator draws 1..MaxBursts bursts, 0..MaxFlaps flaps and
	// 0..MaxCrashes crashes). Defaults: 3, 2, 1.
	MaxBursts  int
	MaxFlaps   int
	MaxCrashes int
}

// Generate derives a schedule from a seed. The generator has its own RNG,
// so a schedule depends only on (seed, opts) — never on what else the
// simulation's RNG has been used for.
func Generate(seed int64, opts Options) *Schedule {
	if opts.Horizon == 0 {
		opts.Horizon = 10 * time.Minute
	}
	if opts.MaxBursts == 0 {
		opts.MaxBursts = 3
	}
	if opts.MaxFlaps == 0 {
		opts.MaxFlaps = 2
	}
	if opts.MaxCrashes == 0 {
		opts.MaxCrashes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Schedule{Seed: seed, Horizon: opts.Horizon}
	// Confine fault windows to the first 60% of the horizon: bounded
	// outages plus guaranteed calm, so hard mounts always drain.
	span := opts.Horizon * 6 / 10
	window := func(maxLen sim.Time) (sim.Time, sim.Time) {
		length := sim.Time(rng.Int63n(int64(maxLen))) + maxLen/8
		start := sim.Time(rng.Int63n(int64(span)))
		end := start + length
		if end > span {
			end = span
		}
		return start, end
	}
	for i, n := 0, 1+rng.Intn(opts.MaxBursts); i < n; i++ {
		start, end := window(30 * time.Second)
		s.Bursts = append(s.Bursts, Burst{
			Start: start, End: end,
			Loss:         rng.Float64() * 0.15,
			Dup:          rng.Float64() * 0.10,
			Corrupt:      rng.Float64() * 0.05,
			Reorder:      rng.Float64() * 0.20,
			ReorderDelay: sim.Time(rng.Int63n(int64(30 * time.Millisecond))),
		})
	}
	for i, n := 0, rng.Intn(opts.MaxFlaps+1); i < n; i++ {
		start, end := window(4 * time.Second)
		s.Flaps = append(s.Flaps, Flap{Start: start, End: end, Link: rng.Intn(8)})
	}
	for i, n := 0, rng.Intn(opts.MaxCrashes+1); i < n; i++ {
		start, end := window(8 * time.Second)
		s.Crashes = append(s.Crashes, Crash{Start: start, End: end})
	}
	sort.Slice(s.Bursts, func(i, j int) bool { return s.Bursts[i].Start < s.Bursts[j].Start })
	sort.Slice(s.Flaps, func(i, j int) bool { return s.Flaps[i].Start < s.Flaps[j].Start })
	sort.Slice(s.Crashes, func(i, j int) bool { return s.Crashes[i].Start < s.Crashes[j].Start })
	return s
}

// String renders the schedule compactly, for failure reports.
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d horizon=%v", s.Seed, time.Duration(s.Horizon))
	for _, bu := range s.Bursts {
		fmt.Fprintf(&b, " burst[%v-%v loss=%.2f dup=%.2f corrupt=%.2f reorder=%.2f/%v]",
			time.Duration(bu.Start), time.Duration(bu.End),
			bu.Loss, bu.Dup, bu.Corrupt, bu.Reorder, time.Duration(bu.ReorderDelay))
	}
	for _, f := range s.Flaps {
		fmt.Fprintf(&b, " flap[%v-%v link=%d]", time.Duration(f.Start), time.Duration(f.End), f.Link)
	}
	for _, c := range s.Crashes {
		fmt.Fprintf(&b, " crash[%v-%v]", time.Duration(c.Start), time.Duration(c.End))
	}
	return b.String()
}

// linkGroups returns the testbed's links bucketed by segment name, in
// sorted name order. Both directions of a Connect share a name, so a flap
// takes out a whole segment. The order is deterministic: Net.Links walks
// nodes and interfaces in creation order, and the names are sorted.
func linkGroups(net *netsim.Net) (names []string, byName map[string][]*netsim.Link) {
	byName = make(map[string][]*netsim.Link)
	for _, l := range net.Links() {
		name := l.Config().Name
		if _, seen := byName[name]; !seen {
			names = append(names, name)
		}
		byName[name] = append(byName[name], l)
	}
	sort.Strings(names)
	return names, byName
}

// Apply installs the schedule on a testbed: a fault hook on every link and
// crash-window timers driving the server. srv may be nil when the schedule
// has no crashes (or the caller drives crashes itself).
func (s *Schedule) Apply(tb *netsim.Testbed, srv *server.Server) {
	if len(s.Crashes) > 0 && srv == nil {
		panic("faultplan: schedule has crashes but no server to crash")
	}
	names, byName := linkGroups(tb.Net)
	serverID := tb.Server.ID
	for gi, name := range names {
		flapped := false
		for _, f := range s.Flaps {
			if f.Link%len(names) == gi {
				flapped = true
			}
		}
		for _, l := range byName[name] {
			touchesServer := l.From().ID == serverID || l.To().ID == serverID
			groupIdx := gi
			doFlap := flapped
			l.SetFault(func(now sim.Time, rng *rand.Rand) netsim.FaultVerdict {
				var v netsim.FaultVerdict
				// A crashed host neither sends nor receives: drop
				// everything touching the server during its outage.
				if touchesServer {
					for _, c := range s.Crashes {
						if now >= c.Start && now < c.End {
							v.Drop = true
							return v
						}
					}
				}
				if doFlap {
					for _, f := range s.Flaps {
						if f.Link%len(names) == groupIdx && now >= f.Start && now < f.End {
							v.Drop = true
							return v
						}
					}
				}
				for _, bu := range s.Bursts {
					if now < bu.Start || now >= bu.End {
						continue
					}
					if bu.Loss > 0 && rng.Float64() < bu.Loss {
						v.Drop = true
						return v
					}
					if bu.Dup > 0 && rng.Float64() < bu.Dup {
						v.Duplicate = true
					}
					if bu.Corrupt > 0 && rng.Float64() < bu.Corrupt {
						v.Corrupt = true
					}
					if bu.Reorder > 0 && rng.Float64() < bu.Reorder && bu.ReorderDelay > 0 {
						v.ExtraDelay += sim.Time(1 + rng.Int63n(int64(bu.ReorderDelay)))
					}
				}
				return v
			})
		}
	}
	env := tb.Net.Env
	for _, c := range s.Crashes {
		c := c
		env.At(c.Start, func() {
			// Host goes silent: frontends drop, established connections die.
			srv.SetDown(true)
			srv.AbortTCPConns()
		})
		env.At(c.End, func() {
			// Reboot: volatile state is gone, lease recovery window starts.
			srv.Crash()
			srv.SetDown(false)
		})
	}
}
