// Package ipfrag implements IP-style datagram fragmentation and reassembly.
//
// NFS-over-UDP sends each 8 KB read or write RPC as a single UDP datagram,
// which IP must fragment to the interconnect's MTU (6 fragments on an
// Ethernet). Loss of any single fragment loses the whole datagram — the
// paper's central argument (after [Kent87b]) for why fixed-RTO UDP transport
// collapses on anything but a clean LAN. This package provides the
// fragment-range arithmetic and a reassembly tracker with timeout; the
// network simulator supplies actual delivery and loss.
package ipfrag

import (
	"renonfs/internal/metrics"
	"renonfs/internal/sim"
)

// Frag describes one fragment of a datagram: payload bytes [Off, Off+Len).
type Frag struct {
	Off  int
	Len  int
	More bool // more fragments follow
}

// perFrag returns the payload bytes each fragment carries for an mtu. IP
// requires fragment offsets in 8-byte units; round the per-fragment payload
// down accordingly, as real stacks do.
func perFrag(mtu int) int {
	if mtu <= 0 {
		panic("ipfrag: non-positive MTU")
	}
	per := mtu &^ 7
	if per == 0 {
		per = mtu
	}
	return per
}

// ForEach calls fn for each fragment of a payload of total bytes over a link
// accepting at most mtu payload bytes per fragment, without allocating a
// slice — the form the per-packet transmit path uses. A total of zero yields
// a single empty fragment (a datagram with no payload still needs a packet).
func ForEach(total, mtu int, fn func(f Frag)) {
	if total == 0 {
		fn(Frag{Off: 0, Len: 0, More: false})
		return
	}
	per := perFrag(mtu)
	for off := 0; off < total; off += per {
		n := total - off
		if n > per {
			n = per
		}
		fn(Frag{Off: off, Len: n, More: off+n < total})
	}
}

// Split returns the fragment ranges for a payload of total bytes over a
// link accepting at most mtu payload bytes per fragment.
func Split(total, mtu int) []Frag {
	out := make([]Frag, 0, NumFrags(total, mtu))
	ForEach(total, mtu, func(f Frag) { out = append(out, f) })
	return out
}

// NumFrags returns how many fragments Split would produce, by arithmetic
// rather than by materializing them.
func NumFrags(total, mtu int) int {
	per := perFrag(mtu)
	if total == 0 {
		return 1
	}
	return (total + per - 1) / per
}

// Key identifies a datagram under reassembly: (source, datagram id).
type Key struct {
	Src int
	ID  uint32
}

// span is a half-open covered byte range [off, end).
type span struct {
	off, end int
}

// state tracks one datagram's received coverage. Coverage is kept as a
// sorted list of merged ranges rather than a byte count so that duplicated
// or overlapping fragments (links can replay frames) never make a datagram
// look complete before every byte has actually arrived.
type state struct {
	total    int // known total length, -1 until the last fragment arrives
	spans    []span
	deadline sim.Time
}

// add merges [off, end) into the coverage set.
func (st *state) add(off, end int) {
	if end <= off {
		return
	}
	// Fast path: fragments normally arrive in order, so the new range
	// extends (or repeats) the last span — no rebuild needed.
	if len(st.spans) == 0 {
		st.spans = append(st.spans, span{off, end})
		return
	}
	if n := len(st.spans); n > 0 {
		last := &st.spans[n-1]
		if off >= last.off && off <= last.end {
			if end > last.end {
				last.end = end
			}
			return
		}
		if off > last.end {
			st.spans = append(st.spans, span{off, end})
			return
		}
	}
	merged := make([]span, 0, len(st.spans)+1)
	placed := false
	for _, s := range st.spans {
		if !placed && s.off > off {
			merged = append(merged, span{off, end})
			placed = true
		}
		merged = append(merged, s)
	}
	if !placed {
		merged = append(merged, span{off, end})
	}
	// Coalesce overlapping/adjacent neighbours (in place: the write index
	// never passes the read index).
	out := merged[:1]
	for _, s := range merged[1:] {
		last := &out[len(out)-1]
		if s.off <= last.end {
			if s.end > last.end {
				last.end = s.end
			}
		} else {
			out = append(out, s)
		}
	}
	st.spans = out
}

// complete reports whether [0, total) is fully covered.
func (st *state) complete() bool {
	if st.total < 0 {
		return false
	}
	if st.total == 0 {
		return true
	}
	return len(st.spans) == 1 && st.spans[0].off == 0 && st.spans[0].end >= st.total
}

// Reassembler tracks in-progress datagrams and decides when one completes.
// It is purely logical: callers feed it fragment arrivals and the current
// virtual time; expiry of stale state happens lazily.
type Reassembler struct {
	Timeout sim.Time
	pending map[Key]*state
	// Expired counts datagrams abandoned by timeout (IP "reassembly
	// timeouts" — each one is a silently lost RPC for fixed-RTO UDP).
	Expired int
	// Tracer, when set, receives a FragDrop lifecycle event per abandoned
	// datagram — the observability hook that makes fragmentation-amplified
	// loss visible outside the simulator's own counters.
	Tracer metrics.Tracer
}

// NewReassembler returns a tracker with the given fragment timeout.
func NewReassembler(timeout sim.Time) *Reassembler {
	return &Reassembler{Timeout: timeout, pending: make(map[Key]*state)}
}

// Pending returns the number of datagrams under reassembly.
func (r *Reassembler) Pending() int { return len(r.pending) }

// Add records arrival of fragment f for datagram k at time now and reports
// whether the datagram is now complete. On completion the state is dropped.
func (r *Reassembler) Add(k Key, f Frag, now sim.Time) bool {
	st := r.pending[k]
	if st == nil {
		st = &state{total: -1, deadline: now + r.Timeout}
		r.pending[k] = st
	} else if now > st.deadline {
		// Stale state: the old datagram is abandoned and this fragment
		// starts a fresh attempt (e.g. a retransmitted UDP RPC reusing
		// nothing — IDs are unique, so in practice this is rare).
		r.Expired++
		metrics.Emit(r.Tracer, metrics.FragDrop{Expired: 1})
		st = &state{total: -1, deadline: now + r.Timeout}
		r.pending[k] = st
	}
	st.add(f.Off, f.Off+f.Len)
	if !f.More {
		st.total = f.Off + f.Len
	}
	if st.complete() {
		delete(r.pending, k)
		return true
	}
	return false
}

// Expire drops all reassembly state whose deadline has passed, returning
// the number expired. Call it periodically (the simulator uses the slow
// timeout granularity of the era's IP stacks).
func (r *Reassembler) Expire(now sim.Time) int {
	n := 0
	for k, st := range r.pending {
		if now > st.deadline {
			delete(r.pending, k)
			n++
		}
	}
	r.Expired += n
	if n > 0 {
		metrics.Emit(r.Tracer, metrics.FragDrop{Expired: n})
	}
	return n
}
