package ipfrag

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSplitEthernet8K(t *testing.T) {
	// The paper: an 8 KB RPC is ~6 IP fragments on an Ethernet.
	frags := Split(8192+160, 1480) // payload + RPC/NFS header overhead
	if len(frags) != 6 {
		t.Fatalf("8K RPC on Ethernet = %d fragments, want 6", len(frags))
	}
}

func TestSplitExact(t *testing.T) {
	frags := Split(1480, 1480)
	if len(frags) != 1 || frags[0].More || frags[0].Len != 1480 {
		t.Fatalf("frags = %+v", frags)
	}
}

func TestSplitZero(t *testing.T) {
	frags := Split(0, 1480)
	if len(frags) != 1 || frags[0].Len != 0 || frags[0].More {
		t.Fatalf("frags = %+v", frags)
	}
}

func TestSplitProperty(t *testing.T) {
	f := func(total uint16, mtu uint16) bool {
		m := int(mtu)%4000 + 8
		frags := Split(int(total), m)
		// Coverage is contiguous, in order, complete, and respects MTU.
		off := 0
		for i, fr := range frags {
			if fr.Off != off || fr.Len > m {
				return false
			}
			if fr.Len == 0 && int(total) != 0 {
				return false
			}
			off += fr.Len
			if (i < len(frags)-1) != fr.More {
				return false
			}
		}
		return off == int(total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblyComplete(t *testing.T) {
	r := NewReassembler(15 * time.Second)
	k := Key{Src: 1, ID: 42}
	frags := Split(5000, 1480)
	for i, f := range frags {
		done := r.Add(k, f, 0)
		if done != (i == len(frags)-1) {
			t.Fatalf("fragment %d: done = %v", i, done)
		}
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after completion", r.Pending())
	}
}

func TestReassemblyOutOfOrder(t *testing.T) {
	r := NewReassembler(15 * time.Second)
	k := Key{Src: 1, ID: 1}
	frags := Split(5000, 1480)
	// Deliver last first.
	if r.Add(k, frags[len(frags)-1], 0) {
		t.Fatal("complete after only the last fragment")
	}
	for i := 0; i < len(frags)-2; i++ {
		if r.Add(k, frags[i], 0) {
			t.Fatalf("complete too early at %d", i)
		}
	}
	if !r.Add(k, frags[len(frags)-2], 0) {
		t.Fatal("not complete after all fragments")
	}
}

func TestReassemblyLostFragmentNeverCompletes(t *testing.T) {
	r := NewReassembler(15 * time.Second)
	k := Key{Src: 1, ID: 7}
	frags := Split(8192, 1480)
	for i, f := range frags {
		if i == 2 {
			continue // lost in transit
		}
		if r.Add(k, f, 0) {
			t.Fatal("completed despite lost fragment")
		}
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
	if n := r.Expire(20 * time.Second); n != 1 {
		t.Fatalf("Expire = %d", n)
	}
	if r.Expired != 1 || r.Pending() != 0 {
		t.Fatalf("Expired=%d Pending=%d", r.Expired, r.Pending())
	}
}

func TestReassemblyInterleaved(t *testing.T) {
	r := NewReassembler(15 * time.Second)
	a, b := Key{1, 10}, Key{2, 10}
	fa := Split(3000, 1480)
	fb := Split(2000, 1480)
	r.Add(a, fa[0], 0)
	r.Add(b, fb[0], 0)
	if !r.Add(b, fb[1], 0) {
		t.Fatal("b incomplete")
	}
	if r.Add(a, fa[1], 0) {
		t.Fatal("a complete too early")
	}
	if !r.Add(a, fa[2], 0) {
		t.Fatal("a incomplete")
	}
}

func TestStaleStateRestarts(t *testing.T) {
	r := NewReassembler(time.Second)
	k := Key{1, 5}
	frags := Split(3000, 1480)
	r.Add(k, frags[0], 0)
	// Long after timeout, the "same" datagram id arrives again; old state
	// must not pollute the new attempt.
	if r.Add(k, frags[0], 5*time.Second) {
		t.Fatal("complete from stale state")
	}
	if r.Expired != 1 {
		t.Fatalf("Expired = %d", r.Expired)
	}
	r.Add(k, frags[1], 5*time.Second)
	if !r.Add(k, frags[2], 5*time.Second) {
		t.Fatal("fresh attempt did not complete")
	}
}

// TestReassemblyDuplicateFragments: a duplicated fragment (the network
// copied a frame) must not complete a datagram early or corrupt the
// coverage accounting — span-based coverage absorbs repeats.
func TestReassemblyDuplicateFragments(t *testing.T) {
	r := NewReassembler(15 * time.Second)
	k := Key{Src: 3, ID: 9}
	frags := Split(5000, 1480)
	for i, f := range frags[:len(frags)-1] {
		for rep := 0; rep < 3; rep++ { // every fragment arrives thrice
			if r.Add(k, f, 0) {
				t.Fatalf("completed early at fragment %d repeat %d", i, rep)
			}
		}
	}
	if !r.Add(k, frags[len(frags)-1], 0) {
		t.Fatal("not complete after all fragments")
	}
	if r.Pending() != 0 {
		t.Fatalf("pending = %d after completion", r.Pending())
	}
	// A late straggler duplicate after completion starts fresh state and
	// must never complete on its own.
	if r.Add(k, frags[0], 0) {
		t.Fatal("lone duplicate completed a datagram")
	}
}

// TestReassemblyOverlappingFragments: overlapping spans (retransmitted
// datagram refragmented on a different MTU path) count covered bytes once.
func TestReassemblyOverlappingFragments(t *testing.T) {
	r := NewReassembler(15 * time.Second)
	k := Key{Src: 4, ID: 11}
	// 3000-byte datagram: [0,2000) then an overlapping [1000,3000) tail.
	if r.Add(k, Frag{Off: 0, Len: 2000, More: true}, 0) {
		t.Fatal("complete after first span")
	}
	if !r.Add(k, Frag{Off: 1000, Len: 2000, More: false}, 0) {
		t.Fatal("overlapping tail did not complete the datagram")
	}
	// Overlap alone must not fake completion: [0,2000) + [500,1500) leaves
	// the tail missing.
	k2 := Key{Src: 4, ID: 12}
	r.Add(k2, Frag{Off: 0, Len: 2000, More: true}, 0)
	if r.Add(k2, Frag{Off: 500, Len: 1000, More: true}, 0) {
		t.Fatal("interior overlap completed an uncovered datagram")
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d", r.Pending())
	}
}
