package tcpsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/netsim"
	"renonfs/internal/sim"
)

const ms = time.Millisecond

func testbed(t *testing.T, seed int64, topo netsim.Topology, mutate func(cfg *netsim.LinkConfig)) (*sim.Env, *Stack, *Stack) {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	nt := netsim.New(env)
	a := nt.AddNode(netsim.NodeConfig{Name: "a"})
	b := nt.AddNode(netsim.NodeConfig{Name: "b"})
	cfg := netsim.Ethernet("eth")
	cfg.LossProb = 0
	cfg.BgUtil = 0
	if mutate != nil {
		mutate(&cfg)
	}
	nt.Connect(a, b, cfg)
	nt.ComputeRoutes()
	return env, NewStack(a), NewStack(b)
}

// transfer sends payload a->b and returns what b received.
func transfer(t *testing.T, env *sim.Env, sa, sb *Stack, payload []byte, horizon sim.Time) []byte {
	t.Helper()
	l := sb.Listen(2049)
	var got []byte
	done := false
	env.Spawn("rx", func(p *sim.Proc) {
		c, ok := l.Accept(p)
		if !ok {
			return
		}
		for {
			b, ok := c.Recv(p)
			if !ok {
				break
			}
			got = append(got, b...)
		}
		done = true
	})
	env.Spawn("tx", func(p *sim.Proc) {
		c, err := sa.Dial(p, sb.Node().ID, 2049)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(p, mbuf.FromBytes(payload)); err != nil {
			t.Errorf("send: %v", err)
		}
		c.Close()
	})
	env.Run(horizon)
	if !done {
		t.Fatalf("receiver never saw EOF (got %d/%d bytes)", len(got), len(payload))
	}
	return got
}

func pattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*31 + i/257)
	}
	return b
}

func TestHandshakeAndSmallTransfer(t *testing.T) {
	env, sa, sb := testbed(t, 1, netsim.TopoLAN, nil)
	payload := []byte("NFS over TCP works fine, actually")
	got := transfer(t, env, sa, sb, payload, 10*time.Second)
	if !bytes.Equal(got, payload) {
		t.Fatalf("got %q", got)
	}
}

func TestBulkTransferIntegrity(t *testing.T) {
	env, sa, sb := testbed(t, 2, netsim.TopoLAN, nil)
	payload := pattern(200 * 1024)
	got := transfer(t, env, sa, sb, payload, 5*time.Minute)
	if !bytes.Equal(got, payload) {
		t.Fatalf("corrupted transfer: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestTransferUnderLoss(t *testing.T) {
	env, sa, sb := testbed(t, 3, netsim.TopoLAN, func(cfg *netsim.LinkConfig) {
		cfg.LossProb = 0.05
	})
	payload := pattern(100 * 1024)
	l := sb.Listen(2049)
	var got []byte
	var rxConn *Conn
	env.Spawn("rx", func(p *sim.Proc) {
		c, ok := l.Accept(p)
		if !ok {
			return
		}
		rxConn = c
		for {
			b, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, b...)
		}
	})
	var txConn *Conn
	env.Spawn("tx", func(p *sim.Proc) {
		c, err := sa.Dial(p, sb.Node().ID, 2049)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		txConn = c
		c.Send(p, mbuf.FromBytes(payload))
		c.Close()
	})
	env.Run(10 * time.Minute)
	if !bytes.Equal(got, payload) {
		t.Fatalf("loss recovery failed: got %d bytes, want %d", len(got), len(payload))
	}
	if txConn.Stats.Retransmits == 0 {
		t.Fatal("no retransmissions under 5% loss")
	}
	_ = rxConn
}

func TestFastRetransmitFires(t *testing.T) {
	env, sa, sb := testbed(t, 5, netsim.TopoLAN, func(cfg *netsim.LinkConfig) {
		cfg.LossProb = 0.02
	})
	payload := pattern(300 * 1024)
	l := sb.Listen(2049)
	env.Spawn("rx", func(p *sim.Proc) {
		c, ok := l.Accept(p)
		if !ok {
			return
		}
		for {
			if _, ok := c.Recv(p); !ok {
				return
			}
		}
	})
	var txConn *Conn
	env.Spawn("tx", func(p *sim.Proc) {
		c, err := sa.Dial(p, sb.Node().ID, 2049)
		if err != nil {
			return
		}
		txConn = c
		c.Send(p, mbuf.FromBytes(payload))
		c.Close()
	})
	env.Run(10 * time.Minute)
	if txConn == nil || txConn.Stats.FastRetransmits == 0 {
		t.Fatalf("expected fast retransmits on a 2%% lossy bulk transfer; stats: %+v", txConn.Stats)
	}
}

func TestBidirectional(t *testing.T) {
	env, sa, sb := testbed(t, 7, netsim.TopoLAN, nil)
	l := sb.Listen(2049)
	req := pattern(5000)
	var gotReq, gotResp []byte
	env.Spawn("server", func(p *sim.Proc) {
		c, ok := l.Accept(p)
		if !ok {
			return
		}
		for len(gotReq) < len(req) {
			b, ok := c.Recv(p)
			if !ok {
				return
			}
			gotReq = append(gotReq, b...)
		}
		c.Send(p, mbuf.FromBytes([]byte("response!")))
		c.Close()
	})
	env.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Dial(p, sb.Node().ID, 2049)
		if err != nil {
			return
		}
		c.Send(p, mbuf.FromBytes(req))
		for {
			b, ok := c.Recv(p)
			if !ok {
				break
			}
			gotResp = append(gotResp, b...)
		}
		c.Close()
	})
	env.Run(time.Minute)
	if !bytes.Equal(gotReq, req) {
		t.Fatal("request corrupted")
	}
	if string(gotResp) != "response!" {
		t.Fatalf("response = %q", gotResp)
	}
}

func TestThroughputRespectsBandwidth(t *testing.T) {
	// 100 KB over a 56 Kbit/s line takes at least 100e3*8/56e3 ~ 14.6 s.
	env := sim.New(11)
	defer env.Close()
	tb := netsim.Build(env, netsim.TopoSlow, netsim.NodeConfig{}, netsim.NodeConfig{})
	sa, sb := NewStack(tb.Client), NewStack(tb.Server)
	payload := pattern(100 * 1024)
	start := env.Now()
	var end sim.Time
	l := sb.Listen(2049)
	env.Spawn("rx", func(p *sim.Proc) {
		c, ok := l.Accept(p)
		if !ok {
			return
		}
		n := 0
		for {
			b, ok := c.Recv(p)
			if !ok {
				break
			}
			n += len(b)
		}
		if n == len(payload) {
			end = p.Now()
		}
	})
	env.Spawn("tx", func(p *sim.Proc) {
		c, err := sa.Dial(p, tb.Server.ID, 2049)
		if err != nil {
			return
		}
		c.Send(p, mbuf.FromBytes(payload))
		c.Close()
	})
	env.Run(30 * time.Minute)
	if end == 0 {
		t.Fatal("transfer never completed")
	}
	elapsed := end - start
	if elapsed < 14*time.Second {
		t.Fatalf("transfer finished in %v, faster than the line rate allows", elapsed)
	}
	if elapsed > 10*time.Minute {
		t.Fatalf("transfer took %v, absurdly slow", elapsed)
	}
}

func TestRTTEstimator(t *testing.T) {
	c := &Conn{rto: 3 * time.Second}
	c.updateRTT(100 * ms)
	if c.srtt != 100*ms || c.rttvar != 50*ms {
		t.Fatalf("first sample: srtt=%v rttvar=%v", c.srtt, c.rttvar)
	}
	if c.rto != 100*ms+4*50*ms {
		t.Fatalf("rto = %v, want A+4D = 300ms", c.rto)
	}
	// Repeated identical samples shrink the variance toward zero.
	for i := 0; i < 50; i++ {
		c.updateRTT(100 * ms)
	}
	if c.srtt < 95*ms || c.srtt > 105*ms {
		t.Fatalf("srtt drifted: %v", c.srtt)
	}
	if c.rttvar > 5*ms {
		t.Fatalf("rttvar did not converge: %v", c.rttvar)
	}
	// A spike raises both the mean and the deviation.
	before := c.curRTOForTest()
	c.updateRTT(2 * time.Second)
	if c.rto <= before {
		t.Fatal("RTO did not react to an RTT spike")
	}
}

// curRTOForTest exposes the clamped RTO without a live connection.
func (c *Conn) curRTOForTest() sim.Time {
	if c.backoff == 0 {
		c.backoff = 1
	}
	return c.curRTO()
}

func TestDialTimeout(t *testing.T) {
	env := sim.New(13)
	defer env.Close()
	nt := netsim.New(env)
	a := nt.AddNode(netsim.NodeConfig{Name: "a"})
	b := nt.AddNode(netsim.NodeConfig{Name: "b"})
	cfg := netsim.Ethernet("eth")
	cfg.LossProb = 1.0 // black hole
	nt.Connect(a, b, cfg)
	nt.ComputeRoutes()
	sa := NewStack(a)
	var dialErr error
	env.Spawn("tx", func(p *sim.Proc) {
		_, dialErr = sa.Dial(p, b.ID, 2049)
	})
	env.Run(3 * time.Minute)
	if dialErr != ErrTimeout {
		t.Fatalf("dial err = %v, want ErrTimeout", dialErr)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	env, sa, sb := testbed(t, 17, netsim.TopoLAN, nil)
	l := sb.Listen(2049)
	env.Spawn("rx", func(p *sim.Proc) {
		c, ok := l.Accept(p)
		if !ok {
			return
		}
		for {
			if _, ok := c.Recv(p); !ok {
				return
			}
		}
	})
	var sendErr error
	env.Spawn("tx", func(p *sim.Proc) {
		c, err := sa.Dial(p, sb.Node().ID, 2049)
		if err != nil {
			return
		}
		c.Close()
		sendErr = c.Send(p, mbuf.FromBytes([]byte("late")))
	})
	env.Run(time.Minute)
	if sendErr != ErrClosed {
		t.Fatalf("send after close = %v, want ErrClosed", sendErr)
	}
}

func TestMSSFromPathMTU(t *testing.T) {
	env := sim.New(19)
	defer env.Close()
	tb := netsim.Build(env, netsim.TopoSlow, netsim.NodeConfig{}, netsim.NodeConfig{})
	sa := NewStack(tb.Client)
	sb := NewStack(tb.Server)
	l := sb.Listen(2049)
	var mss int
	env.Spawn("rx", func(p *sim.Proc) {
		if c, ok := l.Accept(p); ok {
			_ = c
		}
	})
	env.Spawn("tx", func(p *sim.Proc) {
		c, err := sa.Dial(p, tb.Server.ID, 2049)
		if err != nil {
			return
		}
		mss = c.MSS()
	})
	env.Run(time.Minute)
	if mss != 1006-20 {
		t.Fatalf("MSS = %d, want %d (serial line MTU minus TCP header)", mss, 1006-20)
	}
}

func TestDeterministicTransfers(t *testing.T) {
	run := func() (int, int) {
		env := sim.New(99)
		defer env.Close()
		nt := netsim.New(env)
		a := nt.AddNode(netsim.NodeConfig{Name: "a"})
		b := nt.AddNode(netsim.NodeConfig{Name: "b"})
		cfg := netsim.Ethernet("eth")
		cfg.LossProb = 0.03
		nt.Connect(a, b, cfg)
		nt.ComputeRoutes()
		sa, sb := NewStack(a), NewStack(b)
		l := sb.Listen(2049)
		rx := 0
		env.Spawn("rx", func(p *sim.Proc) {
			c, ok := l.Accept(p)
			if !ok {
				return
			}
			for {
				b, ok := c.Recv(p)
				if !ok {
					return
				}
				rx += len(b)
			}
		})
		var rtx int
		env.Spawn("tx", func(p *sim.Proc) {
			c, err := sa.Dial(p, b.ID, 2049)
			if err != nil {
				return
			}
			c.Send(p, mbuf.FromBytes(pattern(64*1024)))
			c.Close()
			rtx = c.Stats.Retransmits
		})
		env.Run(5 * time.Minute)
		return rx, rtx
	}
	rx1, rtx1 := run()
	rx2, rtx2 := run()
	if rx1 != rx2 || rtx1 != rtx2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", rx1, rtx1, rx2, rtx2)
	}
	if rx1 != 64*1024 {
		t.Fatalf("rx = %d", rx1)
	}
}

// TestStreamPropertyUnderRandomConditions: for arbitrary payload sizes and
// loss rates, the byte stream is delivered exactly once, in order,
// unmodified.
func TestStreamPropertyUnderRandomConditions(t *testing.T) {
	f := func(seed int64, sizeSel, lossSel uint8) bool {
		size := 1 + int(sizeSel)*977       // up to ~250 KB
		loss := float64(lossSel%8) * 0.012 // 0 .. 8.4%
		env := sim.New(seed)
		defer env.Close()
		nt := netsim.New(env)
		a := nt.AddNode(netsim.NodeConfig{Name: "a"})
		b := nt.AddNode(netsim.NodeConfig{Name: "b"})
		cfg := netsim.Ethernet("eth")
		cfg.LossProb = loss
		cfg.BgUtil = 0
		nt.Connect(a, b, cfg)
		nt.ComputeRoutes()
		sa, sb := NewStack(a), NewStack(b)
		payload := pattern(size)
		l := sb.Listen(2049)
		var got []byte
		eof := false
		env.Spawn("rx", func(p *sim.Proc) {
			c, ok := l.Accept(p)
			if !ok {
				return
			}
			for {
				bb, ok := c.Recv(p)
				if !ok {
					eof = true
					return
				}
				got = append(got, bb...)
			}
		})
		env.Spawn("tx", func(p *sim.Proc) {
			c, err := sa.Dial(p, b.ID, 2049)
			if err != nil {
				return
			}
			c.Send(p, mbuf.FromBytes(payload))
			c.Close()
		})
		env.Run(30 * time.Minute)
		return eof && bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestResetOnForgottenConnection: when the peer silently loses its
// connection state (Abort sends nothing — the model of a server reboot),
// our next transmission hits its listener as a segment for an unknown
// connection. The listener must answer RST and that RST must tear our
// endpoint down, so a caller blocked on Recv wakes instead of hanging
// forever.
func TestResetOnForgottenConnection(t *testing.T) {
	env, sa, sb := testbed(t, 7, 0, nil)
	l := sb.Listen(2049)
	var srv *Conn
	env.Spawn("accept", func(p *sim.Proc) {
		srv, _ = l.Accept(p)
	})
	var recvOK, sawReset bool
	env.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Dial(p, sb.Node().ID, 2049)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(p, mbuf.FromBytes([]byte("ping"))); err != nil {
			t.Errorf("send: %v", err)
			return
		}
		p.Sleep(time.Second)
		// The server forgets the connection without telling us.
		srv.Abort()
		// Our next transmission draws an RST from the listener.
		_ = c.Send(p, mbuf.FromBytes([]byte("hello?")))
		p.Sleep(5 * time.Second)
		sawReset = c.state == stateClosed
		_, recvOK = c.Recv(p)
	})
	env.Run(30 * time.Second)
	if !sawReset {
		t.Fatal("client connection not reset after peer forgot it")
	}
	if recvOK {
		t.Fatal("Recv returned data on a reset connection")
	}
}

// TestNoRSTStorm: an RST must never be answered with another RST (the
// classic reflection loop). Two stacks that both forgot a connection
// exchange at most one reset.
func TestNoRSTStorm(t *testing.T) {
	env, sa, sb := testbed(t, 9, 0, nil)
	l := sb.Listen(2049)
	env.Spawn("accept", func(p *sim.Proc) {
		for {
			if _, ok := l.Accept(p); !ok {
				return
			}
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		c, err := sa.Dial(p, sb.Node().ID, 2049)
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		if err := c.Send(p, mbuf.FromBytes([]byte("x"))); err != nil {
			t.Errorf("send: %v", err)
		}
	})
	env.Run(2 * time.Second)
	before := sa.Node().Stats.PktsOut + sb.Node().Stats.PktsOut
	env.Run(60 * time.Second)
	after := sa.Node().Stats.PktsOut + sb.Node().Stats.PktsOut
	// An idle established connection exchanges nothing; if RSTs reflected
	// we would see unbounded traffic here.
	if after-before > 4 {
		t.Fatalf("idle connection produced %d frames in a minute", after-before)
	}
}
