// Package tcpsim implements a simplified but mechanically faithful TCP on
// top of the network simulator: three-way handshake, cumulative ACKs with
// out-of-order reassembly, Jacobson/Karels RTT estimation (RTO = A + 4D)
// with Karn's rule, slow start, congestion avoidance, fast retransmit, and
// exponential RTO backoff driven by the classic 500 ms slow timeout.
//
// It is the "reliable virtual circuit with dynamic RTO estimation and
// congestion control [Jacobson88a]" the paper evaluates as an NFS transport
// in §4. Per-segment and per-ACK CPU costs are charged through the netsim
// cost model, which is where TCP's ≈20% server CPU premium over UDP comes
// from (Graph 6).
//
// Deliberate simplifications, none of which affect the §4 comparisons:
// delayed ACKs piggyback or flush on the slow timeout (not a dedicated
// 200 ms timer), the receive window is a fixed advertisement, and there is
// no TIME_WAIT state.
package tcpsim

import (
	"errors"
	"fmt"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/netsim"
	"renonfs/internal/sim"
)

// Protocol parameters.
const (
	// Tick is the classic BSD slow-timeout granularity.
	Tick = 500 * time.Millisecond
	// MinRTO and MaxRTO bound the retransmit timer (2 ticks .. 64 s).
	MinRTO = 1 * time.Second
	MaxRTO = 64 * time.Second
	// RcvWindow is the fixed advertised receive window.
	RcvWindow = 24576
	// SndBufMax bounds the send buffer; Send blocks beyond it.
	SndBufMax = 32768
	// ConnectTimeout bounds Dial.
	ConnectTimeout = 75 * time.Second
)

// ErrTimeout is returned by Dial when the handshake never completes.
var ErrTimeout = errors.New("tcpsim: connection timed out")

// ErrClosed is returned for operations on a closed connection.
var ErrClosed = errors.New("tcpsim: connection closed")

// seg is the TCP header carried in Datagram.Meta.
type seg struct {
	SYN, ACK, FIN, RST bool
	Seq                uint64
	Ack                uint64
	Win                int
}

func (s *seg) String() string {
	fl := ""
	if s.SYN {
		fl += "S"
	}
	if s.RST {
		fl += "R"
	}
	if s.ACK {
		fl += "."
	}
	if s.FIN {
		fl += "F"
	}
	return fmt.Sprintf("[%s seq=%d ack=%d win=%d]", fl, s.Seq, s.Ack, s.Win)
}

// ConnStats are per-connection counters.
type ConnStats struct {
	SegsOut, SegsIn   int
	BytesOut, BytesIn int
	Retransmits       int // segments resent for any reason
	FastRetransmits   int // 3-dupack retransmissions
	Timeouts          int // RTO expirations
}

// Stack is a host's TCP instance.
type Stack struct {
	node      *netsim.Node
	env       *sim.Env
	nextPort  int
	listeners map[int]*Listener
}

// NewStack returns a TCP stack bound to the node.
func NewStack(n *netsim.Node) *Stack {
	return &Stack{node: n, env: n.Net().Env, nextPort: 1024, listeners: make(map[int]*Listener)}
}

// Node returns the owning node.
func (st *Stack) Node() *netsim.Node { return st.node }

type connKey struct {
	remote netsim.NodeID
	rport  int
}

// Listener accepts incoming connections on a port.
type Listener struct {
	stack   *Stack
	port    int
	q       *sim.Queue[*netsim.Datagram]
	conns   map[connKey]*Conn
	acceptQ *sim.Queue[*Conn]
}

// Listen starts accepting connections on port.
func (st *Stack) Listen(port int) *Listener {
	l := &Listener{
		stack:   st,
		port:    port,
		q:       st.node.Bind(netsim.ProtoTCP, port),
		conns:   make(map[connKey]*Conn),
		acceptQ: sim.NewQueue[*Conn](st.env, fmt.Sprintf("%s.tcp%d.accept", st.node.Name, port)),
	}
	st.listeners[port] = l
	st.env.Spawn(fmt.Sprintf("%s.tcp%d.listen", st.node.Name, port), l.run)
	return l
}

// Accept blocks until a connection completes its handshake.
func (l *Listener) Accept(p *sim.Proc) (*Conn, bool) {
	return l.acceptQ.Recv(p)
}

// run demultiplexes arriving segments to per-connection queues, creating
// connections for new SYNs.
func (l *Listener) run(p *sim.Proc) {
	for {
		dg, ok := l.q.Recv(p)
		if !ok {
			return
		}
		m, ok := dg.Meta.(*seg)
		if !ok {
			continue
		}
		key := connKey{dg.Src, dg.SrcPort}
		c := l.conns[key]
		if c == nil {
			if !m.SYN || m.ACK {
				// A segment for a connection we no longer know (e.g. the
				// peer kept talking across our crash): answer with RST so
				// it aborts and reconnects, instead of retransmitting into
				// a void forever.
				if !m.RST {
					l.stack.node.SendDatagram(p, &netsim.Datagram{
						Src: l.stack.node.ID, Dst: dg.Src, Proto: netsim.ProtoTCP,
						SrcPort: l.port, DstPort: dg.SrcPort,
						HeaderBytes: 20,
						Meta:        &seg{RST: true, ACK: true, Seq: m.Ack, Ack: m.Seq + uint64(dg.Len())},
					})
				}
				continue
			}
			c = newConn(l.stack, l.port, dg.Src, dg.SrcPort)
			c.listener = l
			c.state = stateSynRcvd
			c.irs = m.Seq
			c.rcvNxt = m.Seq + 1
			c.rwnd = m.Win
			c.needAck = true
			l.conns[key] = c
			l.stack.env.Spawn(c.name, c.run)
		}
		c.q.Send(dg)
	}
}

// Connection states.
const (
	stateSynSent = iota
	stateSynRcvd
	stateEstab
	stateClosed
)

// Conn is one TCP endpoint.
type Conn struct {
	stack      *Stack
	node       *netsim.Node
	env        *sim.Env
	name       string
	localPort  int
	remote     netsim.NodeID
	remotePort int
	listener   *Listener // non-nil on passive conns
	ownsPort   bool      // active conns bind their ephemeral port

	q           *sim.Queue[*netsim.Datagram]
	kicked      bool
	established *sim.Event
	state       int

	mss int

	// Send state. sndBuf holds unacknowledged and unsent data starting at
	// sequence sndUna.
	iss       uint64
	sndBuf    *mbuf.Chain
	sndUna    uint64
	sndNxt    uint64
	sndMax    uint64 // highest sequence ever sent; survives RTO rollback
	synSent   bool
	finQueued bool
	finSent   bool
	finAcked  bool
	cwnd      int
	ssthresh  int
	rwnd      int
	dupAcks   int
	inRecov   bool
	sendCond  *sim.Cond
	// NoSlowStart disables slow start (for the §4 ablation of what the
	// paper removed from its UDP congestion window).
	NoSlowStart bool

	// RTT estimation (A = srtt, D = rttvar).
	srtt, rttvar sim.Time
	rto          sim.Time
	backoff      int
	timing       bool
	timedSeq     uint64
	timedAt      sim.Time
	rtxDeadline  sim.Time // zero when unarmed

	// Receive state.
	irs      uint64
	rcvNxt   uint64
	ooo      map[uint64][]byte
	rcvQ     *sim.Queue[[]byte]
	finRcvd  bool
	needAck  bool
	delayAck bool // a data segment awaits acknowledgment (delayed-ACK)

	Stats ConnStats
}

func newConn(st *Stack, localPort int, remote netsim.NodeID, remotePort int) *Conn {
	mtu := st.node.PathMTUTo(remote)
	c := &Conn{
		stack:       st,
		node:        st.node,
		env:         st.env,
		name:        fmt.Sprintf("%s.tcp:%d-%d:%d", st.node.Name, localPort, remote, remotePort),
		localPort:   localPort,
		remote:      remote,
		remotePort:  remotePort,
		q:           sim.NewQueue[*netsim.Datagram](st.env, "connq"),
		established: sim.NewEvent(st.env),
		mss:         mtu - 34 - 20, // framing/IP + TCP headers
		iss:         uint64(st.env.Rand().Intn(1 << 20)),
		rto:         3 * time.Second, // pre-sample default, per BSD
		backoff:     1,
		rwnd:        RcvWindow,
		ooo:         make(map[uint64][]byte),
		rcvQ:        sim.NewQueue[[]byte](st.env, "rcvq"),
		sendCond:    sim.NewCond(st.env),
		sndBuf:      &mbuf.Chain{},
	}
	c.cwnd = c.mss
	c.ssthresh = 64 * 1024
	c.sndUna = c.iss + 1
	c.sndNxt = c.iss + 1
	c.sndMax = c.iss + 1
	c.rcvNxt = 0
	return c
}

// Dial opens a connection to (remote, rport), blocking until the handshake
// completes or times out.
func (st *Stack) Dial(p *sim.Proc, remote netsim.NodeID, rport int) (*Conn, error) {
	port := st.nextPort
	st.nextPort++
	c := newConn(st, port, remote, rport)
	c.ownsPort = true
	c.state = stateSynSent
	// The connection's own queue is the bound port queue, so segments and
	// kicks share one channel.
	c.q = st.node.Bind(netsim.ProtoTCP, port)
	st.env.Spawn(c.name, c.run)
	c.kick()
	if !c.established.WaitTimeout(p, ConnectTimeout) || c.state == stateClosed {
		c.Abort()
		return nil, ErrTimeout
	}
	return c, nil
}

// MSS returns the negotiated (path-MTU derived) maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// LocalPort returns the local port number.
func (c *Conn) LocalPort() int { return c.localPort }

// kick wakes the connection process; multiple kicks coalesce.
func (c *Conn) kick() {
	if !c.kicked {
		c.kicked = true
		c.q.Send(nil)
	}
}

// Send appends data to the send buffer, blocking while the buffer is full.
// The chain is consumed.
func (c *Conn) Send(p *sim.Proc, data *mbuf.Chain) error {
	for c.state != stateClosed && c.sndBuf.Len() >= SndBufMax {
		c.sendCond.Wait(p)
	}
	if c.state == stateClosed || c.finQueued {
		return ErrClosed
	}
	c.sndBuf.AppendChain(data)
	c.kick()
	return nil
}

// Recv returns the next chunk of in-order stream data; ok is false at EOF
// (peer closed) or after Abort.
func (c *Conn) Recv(p *sim.Proc) ([]byte, bool) {
	return c.rcvQ.Recv(p)
}

// RecvTimeout is Recv with a deadline.
func (c *Conn) RecvTimeout(p *sim.Proc, d sim.Time) ([]byte, bool) {
	return c.rcvQ.RecvTimeout(p, d)
}

// Close queues a FIN after any buffered data and returns immediately; the
// connection process finishes delivery and tears down when both directions
// close.
func (c *Conn) Close() {
	if c.state == stateClosed || c.finQueued {
		return
	}
	c.finQueued = true
	c.kick()
}

// Abort tears the connection down immediately (no FIN exchange).
func (c *Conn) Abort() {
	if c.state == stateClosed {
		return
	}
	c.teardown()
	c.kick() // let the conn process observe the closed state and exit
}

func (c *Conn) teardown() {
	c.state = stateClosed
	c.rcvQ.Close()
	c.sendCond.Broadcast()
	// Wake any Dial blocked on the handshake; it re-checks the state.
	c.established.Set()
	if c.ownsPort {
		c.node.Unbind(netsim.ProtoTCP, c.localPort)
	}
	if c.listener != nil {
		delete(c.listener.conns, connKey{c.remote, c.remotePort})
	}
}

// run is the connection process: it handles arriving segments, the 500 ms
// slow timeout, and output.
func (c *Conn) run(p *sim.Proc) {
	nextTick := p.Now() + Tick
	for c.state != stateClosed {
		c.output(p)
		if c.state == stateClosed {
			break
		}
		wait := nextTick - p.Now()
		if wait <= 0 {
			c.tick(p)
			nextTick += Tick
			continue
		}
		dg, ok := c.q.RecvTimeout(p, wait)
		if !ok {
			c.tick(p)
			nextTick = p.Now() + Tick
			continue
		}
		if dg == nil {
			c.kicked = false
			continue
		}
		c.input(p, dg)
	}
	// Drain any leftover kick so the queue does not wake a dead process.
	c.rcvQ.Close()
}

// sendSeg transmits one segment.
func (c *Conn) sendSeg(p *sim.Proc, m *seg, payload *mbuf.Chain) {
	m.Win = RcvWindow
	n := 0
	if payload != nil {
		n = payload.Len()
	}
	c.Stats.SegsOut++
	c.Stats.BytesOut += n
	c.node.SendDatagram(p, &netsim.Datagram{
		Src: c.node.ID, Dst: c.remote, Proto: netsim.ProtoTCP,
		SrcPort: c.localPort, DstPort: c.remotePort,
		HeaderBytes: 20, Payload: payload, Meta: m,
	})
}

// armTimer starts the retransmit timer if it is not running.
func (c *Conn) armTimer(now sim.Time) {
	if c.rtxDeadline == 0 {
		c.rtxDeadline = now + c.curRTO()
	}
}

func (c *Conn) curRTO() sim.Time {
	r := c.rto * sim.Time(c.backoff)
	if r < MinRTO {
		r = MinRTO
	}
	if r > MaxRTO {
		r = MaxRTO
	}
	return r
}

// flight returns the number of unacknowledged bytes in transit.
func (c *Conn) flight() int { return int(c.sndNxt - c.sndUna) }

// output transmits whatever the connection state allows: handshake
// segments, new data within the send window, a queued FIN, or a pure ACK.
func (c *Conn) output(p *sim.Proc) {
	now := p.Now()
	switch c.state {
	case stateSynSent:
		if !c.synSent {
			c.synSent = true
			c.sendSeg(p, &seg{SYN: true, Seq: c.iss}, nil)
			c.armTimer(now)
		}
		return
	case stateSynRcvd:
		if !c.synSent {
			c.synSent = true
			c.sendSeg(p, &seg{SYN: true, ACK: true, Seq: c.iss, Ack: c.rcvNxt}, nil)
			c.armTimer(now)
		}
		if c.needAck {
			c.needAck = false // SYN|ACK carried it
		}
		return
	case stateClosed:
		return
	}
	// Established (or closing): send data within min(cwnd, rwnd).
	wnd := c.cwnd
	if c.rwnd < wnd {
		wnd = c.rwnd
	}
	dataEnd := c.sndUna + uint64(c.sndBuf.Len())
	for {
		limit := c.sndUna + uint64(wnd)
		if c.sndNxt >= dataEnd || c.sndNxt >= limit {
			break
		}
		n := int(dataEnd - c.sndNxt)
		if n > c.mss {
			n = c.mss
		}
		if room := int(limit - c.sndNxt); n > room {
			n = room
		}
		if n <= 0 {
			break
		}
		off := int(c.sndNxt - c.sndUna)
		payload := c.sndBuf.Range(off, n)
		c.sendSeg(p, &seg{ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt}, payload)
		c.needAck = false
		c.delayAck = false // the piggybacked ack covers delayed data
		if !c.timing {
			c.timing = true
			c.timedSeq = c.sndNxt
			c.timedAt = now
		}
		c.sndNxt += uint64(n)
		if c.sndNxt > c.sndMax {
			c.sndMax = c.sndNxt
		}
		c.armTimer(now)
	}
	// FIN once all data is out.
	if c.finQueued && !c.finSent && c.sndNxt == dataEnd && c.sndNxt < c.sndUna+uint64(wnd)+1 {
		c.sendSeg(p, &seg{ACK: true, FIN: true, Seq: c.sndNxt, Ack: c.rcvNxt}, nil)
		c.finSent = true
		c.sndNxt++ // FIN consumes a sequence number
		if c.sndNxt > c.sndMax {
			c.sndMax = c.sndNxt
		}
		c.needAck = false
		c.armTimer(now)
	}
	if c.needAck {
		c.sendSeg(p, &seg{ACK: true, Seq: c.sndNxt, Ack: c.rcvNxt}, nil)
		c.needAck = false
		c.delayAck = false
	}
	c.maybeFinish()
}

// maybeFinish closes the connection once both directions have closed.
func (c *Conn) maybeFinish() {
	if c.finSent && c.finAcked && c.finRcvd && c.state != stateClosed {
		c.teardown()
	}
}

// tick is the 500 ms slow timeout: it flushes a pending delayed ACK and
// checks the retransmit timer.
func (c *Conn) tick(p *sim.Proc) {
	if c.delayAck {
		c.delayAck = false
		c.needAck = true
	}
	if c.rtxDeadline == 0 || p.Now() < c.rtxDeadline {
		return
	}
	// Retransmit timeout: Karn's rule, multiplicative backoff, collapse
	// the window and go back to snd_una.
	c.Stats.Timeouts++
	c.Stats.Retransmits++
	c.timing = false
	if c.backoff < 64 {
		c.backoff *= 2
	}
	half := c.flight() / 2
	if half < 2*c.mss {
		half = 2 * c.mss
	}
	c.ssthresh = half
	c.cwnd = c.mss
	if c.NoSlowStart {
		c.cwnd = c.ssthresh
	}
	c.inRecov = false
	c.dupAcks = 0
	switch c.state {
	case stateSynSent, stateSynRcvd:
		c.synSent = false // resend SYN / SYN|ACK
	default:
		c.sndNxt = c.sndUna
		if c.finSent {
			c.finSent = false
		}
	}
	c.rtxDeadline = 0
	// output() will retransmit and re-arm with the backed-off RTO.
}

// updateRTT folds one round-trip sample into the Jacobson estimator.
func (c *Conn) updateRTT(sample sim.Time) {
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		delta := sample - c.srtt
		c.srtt += delta / 8
		if delta < 0 {
			delta = -delta
		}
		c.rttvar += (delta - c.rttvar) / 4
	}
	c.rto = c.srtt + 4*c.rttvar
}

// RTO returns the current retransmit timeout (A + 4D, clamped).
func (c *Conn) RTO() sim.Time { return c.curRTO() }

// SRTT returns the smoothed RTT estimate.
func (c *Conn) SRTT() sim.Time { return c.srtt }

// processAck handles the acknowledgment field of an arriving segment.
func (c *Conn) processAck(p *sim.Proc, m *seg, payloadLen int) {
	c.rwnd = m.Win
	ack := m.Ack
	if ack > c.sndMax {
		return // acks data we never sent; ignore
	}
	if ack > c.sndUna {
		if ack > c.sndNxt {
			// An ACK from before an RTO rollback: the data it covers needs
			// no retransmission.
			c.sndNxt = ack
		}
		// New data acknowledged.
		if c.timing && ack > c.timedSeq {
			c.updateRTT(p.Now() - c.timedAt)
			c.timing = false
		}
		acked := int(ack - c.sndUna)
		dataAcked := acked
		if dataAcked > c.sndBuf.Len() {
			// The ack extends past the data: it covers the FIN.
			dataAcked = c.sndBuf.Len()
			c.finSent = true
			c.finAcked = true
		}
		if dataAcked > 0 {
			c.sndBuf = c.sndBuf.Range(dataAcked, c.sndBuf.Len()-dataAcked)
		}
		c.sndUna = ack
		c.backoff = 1
		c.dupAcks = 0
		if c.inRecov {
			c.cwnd = c.ssthresh
			c.inRecov = false
		} else if c.cwnd < c.ssthresh && !c.NoSlowStart {
			c.cwnd += c.mss // slow start: exponential growth
		} else {
			c.cwnd += c.mss * c.mss / c.cwnd // congestion avoidance
			if c.cwnd > 1<<20 {
				c.cwnd = 1 << 20
			}
		}
		if c.sndUna == c.sndNxt {
			c.rtxDeadline = 0
		} else {
			c.rtxDeadline = p.Now() + c.curRTO()
		}
		c.sendCond.Broadcast()
		c.maybeFinish()
		return
	}
	if ack == c.sndUna && payloadLen == 0 && c.flight() > 0 && !m.SYN && !m.FIN {
		// Duplicate ACK.
		c.dupAcks++
		if c.dupAcks == 3 {
			// Fast retransmit + (simplified Reno) fast recovery.
			c.Stats.FastRetransmits++
			c.Stats.Retransmits++
			half := c.flight() / 2
			if half < 2*c.mss {
				half = 2 * c.mss
			}
			c.ssthresh = half
			n := c.mss
			if avail := c.sndBuf.Len(); avail < n {
				n = avail
			}
			if n > 0 {
				c.sendSeg(p, &seg{ACK: true, Seq: c.sndUna, Ack: c.rcvNxt},
					c.sndBuf.Range(0, n))
			}
			c.timing = false
			c.cwnd = c.ssthresh + 3*c.mss
			c.inRecov = true
			c.rtxDeadline = p.Now() + c.curRTO()
		} else if c.dupAcks > 3 && c.inRecov {
			c.cwnd += c.mss
		}
	}
}

// input handles one arriving segment.
func (c *Conn) input(p *sim.Proc, dg *netsim.Datagram) {
	m, ok := dg.Meta.(*seg)
	if !ok {
		return
	}
	c.Stats.SegsIn++
	payloadLen := dg.Len()
	c.Stats.BytesIn += payloadLen

	if m.RST {
		// Connection reset by peer: tear down immediately. Stale RSTs
		// cannot hit a later incarnation — every active connection binds a
		// fresh ephemeral port.
		c.teardown()
		return
	}

	if m.SYN {
		switch c.state {
		case stateSynSent:
			if m.ACK && m.Ack == c.iss+1 {
				c.irs = m.Seq
				c.rcvNxt = m.Seq + 1
				c.processAck(p, m, 0)
				c.state = stateEstab
				c.rtxDeadline = 0
				c.needAck = true
				c.established.Set()
			}
			return
		default:
			// Duplicate SYN (lost SYN|ACK): re-ack it.
			c.needAck = true
			if c.state == stateSynRcvd {
				c.synSent = false
			}
			return
		}
	}

	if m.ACK {
		if c.state == stateSynRcvd && m.Ack == c.iss+1 {
			c.state = stateEstab
			c.rtxDeadline = 0
			c.established.Set()
			if c.listener != nil {
				c.listener.acceptQ.Send(c)
			}
		}
		c.processAck(p, m, payloadLen)
	}

	if c.state != stateEstab {
		return
	}

	// Data and FIN processing.
	if payloadLen > 0 {
		// Delayed ACK (4.3BSD behaviour): acknowledge every second data
		// segment immediately; a lone segment waits for a piggyback or
		// the slow timeout. Out-of-order data is acked at once so dup
		// acks still drive fast retransmit.
		if c.delayAck || m.Seq != c.rcvNxt {
			c.needAck = true
			c.delayAck = false
		} else {
			c.delayAck = true
		}
		seqEnd := m.Seq + uint64(payloadLen)
		switch {
		case seqEnd <= c.rcvNxt:
			// Entire segment is old: pure duplicate, ack it now.
			c.needAck = true
			c.delayAck = false
		case m.Seq > c.rcvNxt:
			if _, dup := c.ooo[m.Seq]; !dup && len(c.ooo) < 64 {
				c.ooo[m.Seq] = dg.Payload.Bytes()
			}
		default:
			// In order (possibly with an old prefix).
			b := dg.Payload.Bytes()
			b = b[int(c.rcvNxt-m.Seq):]
			c.rcvNxt += uint64(len(b))
			c.rcvQ.Send(b)
			// Drain contiguous out-of-order segments.
			for {
				nb, ok := c.ooo[c.rcvNxt]
				if !ok {
					break
				}
				delete(c.ooo, c.rcvNxt)
				c.rcvNxt += uint64(len(nb))
				c.rcvQ.Send(nb)
			}
		}
	}
	if m.FIN {
		finSeq := m.Seq + uint64(payloadLen)
		if finSeq == c.rcvNxt && !c.finRcvd {
			c.rcvNxt++
			c.finRcvd = true
			c.rcvQ.Close()
			c.needAck = true
			c.maybeFinish()
		} else if finSeq < c.rcvNxt {
			c.needAck = true // duplicate FIN
		}
	}
}
