package check

import (
	"strings"
	"testing"
	"time"

	"renonfs/internal/metrics"
)

// testClock is a manually advanced clock for the auditor.
type testClock struct{ now time.Duration }

func (c *testClock) read() time.Duration { return c.now }

func newAuditor() (*Auditor, *testClock) {
	clk := &testClock{}
	return New(clk.read), clk
}

func rules(vs []Violation) []string {
	var out []string
	for _, v := range vs {
		out = append(out, v.Rule)
	}
	return out
}

func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

func TestCleanRun(t *testing.T) {
	a, clk := newAuditor()
	tr := a.Tracer("client")
	tr.Event(metrics.CallSent{Proc: 1, XID: 1})
	clk.now = 10 * time.Millisecond
	tr.Event(metrics.Reply{Proc: 1, XID: 1, RTT: 10 * time.Millisecond})
	tr.Event(metrics.CallSent{Proc: 4, XID: 2})
	tr.Event(metrics.Retransmit{Proc: 4, XID: 2, Backoff: 1})
	clk.now = 30 * time.Millisecond
	tr.Event(metrics.CallFailed{Proc: 4, XID: 2, Reason: "timeout"})
	if vs := a.Finish(); len(vs) != 0 {
		t.Fatalf("clean run produced violations: %v", vs)
	}
}

func TestStuckCall(t *testing.T) {
	a, _ := newAuditor()
	tr := a.Tracer("client")
	tr.Event(metrics.CallSent{Proc: 6, XID: 7})
	vs := a.Finish()
	if !hasRule(vs, "stuck-call") {
		t.Fatalf("expected stuck-call, got %v", rules(vs))
	}
	if hasRule(vs, "conservation") {
		t.Fatalf("outstanding call must satisfy conservation, got %v", rules(vs))
	}
}

func TestDuplicateCompletion(t *testing.T) {
	a, _ := newAuditor()
	tr := a.Tracer("client")
	tr.Event(metrics.CallSent{Proc: 1, XID: 1})
	tr.Event(metrics.Reply{Proc: 1, XID: 1})
	tr.Event(metrics.Reply{Proc: 1, XID: 1})
	tr.Event(metrics.CallFailed{Proc: 1, XID: 1, Reason: "timeout"})
	vs := a.Finish()
	n := 0
	for _, v := range vs {
		if v.Rule == "duplicate-completion" {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("expected 2 duplicate-completion violations, got %v", rules(vs))
	}
}

func TestReplyWithoutCall(t *testing.T) {
	a, _ := newAuditor()
	a.Tracer("client").Event(metrics.Reply{Proc: 1, XID: 99})
	if vs := a.Finish(); !hasRule(vs, "reply-without-call") {
		t.Fatalf("expected reply-without-call, got %v", rules(vs))
	}
}

func TestRetransmitAfterResolve(t *testing.T) {
	a, _ := newAuditor()
	tr := a.Tracer("client")
	tr.Event(metrics.CallSent{Proc: 1, XID: 1})
	tr.Event(metrics.Reply{Proc: 1, XID: 1})
	tr.Event(metrics.Retransmit{Proc: 1, XID: 1, Backoff: 1})
	if vs := a.Finish(); !hasRule(vs, "retransmit-after-resolve") {
		t.Fatalf("expected retransmit-after-resolve, got %v", rules(vs))
	}
}

func TestXIDScopedPerSource(t *testing.T) {
	a, _ := newAuditor()
	// Two transports both use xid 1: legal, xids are per-transport.
	a.Tracer("t1").Event(metrics.CallSent{Proc: 1, XID: 1})
	a.Tracer("t2").Event(metrics.CallSent{Proc: 1, XID: 1})
	a.Tracer("t1").Event(metrics.Reply{Proc: 1, XID: 1})
	a.Tracer("t2").Event(metrics.Reply{Proc: 1, XID: 1})
	if vs := a.Finish(); len(vs) != 0 {
		t.Fatalf("per-source xids flagged: %v", vs)
	}
}

func TestLeaseGrantInRecovery(t *testing.T) {
	a, clk := newAuditor()
	srv := a.Tracer("server")
	srv.Event(metrics.ServerCrash{RecoverFor: 30 * time.Second})
	clk.now = 10 * time.Second // still inside the recovery window
	srv.Event(metrics.LeaseGrant{Peer: "udp:1:2049", File: "f1", Write: true, Term: 30 * time.Second})
	if vs := a.Finish(); !hasRule(vs, "lease-grant-in-recovery") {
		t.Fatalf("expected lease-grant-in-recovery, got %v", rules(vs))
	}

	a2, clk2 := newAuditor()
	srv2 := a2.Tracer("server")
	srv2.Event(metrics.ServerCrash{RecoverFor: 30 * time.Second})
	clk2.now = 31 * time.Second // window over
	srv2.Event(metrics.LeaseGrant{Peer: "udp:1:2049", File: "f1", Write: true, Term: 30 * time.Second})
	if vs := a2.Finish(); len(vs) != 0 {
		t.Fatalf("grant after recovery flagged: %v", vs)
	}
}

func TestLeaseConflict(t *testing.T) {
	a, clk := newAuditor()
	srv := a.Tracer("server")
	srv.Event(metrics.LeaseGrant{Peer: "A", File: "f1", Write: true, Term: 30 * time.Second})
	clk.now = time.Second
	srv.Event(metrics.LeaseGrant{Peer: "B", File: "f1", Write: false, Term: 30 * time.Second})
	vs := a.Finish()
	if !hasRule(vs, "lease-conflict") {
		t.Fatalf("expected lease-conflict, got %v", rules(vs))
	}

	// Shared read leases are fine; so is a write grant after a vacate, or
	// after the previous lease expired.
	a2, clk2 := newAuditor()
	srv2 := a2.Tracer("server")
	srv2.Event(metrics.LeaseGrant{Peer: "A", File: "f1", Write: false, Term: 30 * time.Second})
	srv2.Event(metrics.LeaseGrant{Peer: "B", File: "f1", Write: false, Term: 30 * time.Second})
	srv2.Event(metrics.LeaseVacate{Peer: "A", File: "f1"})
	srv2.Event(metrics.LeaseVacate{Peer: "B", File: "f1"})
	srv2.Event(metrics.LeaseGrant{Peer: "C", File: "f1", Write: true, Term: 30 * time.Second})
	clk2.now = 40 * time.Second // C's lease has expired on its own
	srv2.Event(metrics.LeaseGrant{Peer: "D", File: "f1", Write: true, Term: 30 * time.Second})
	if vs := a2.Finish(); len(vs) != 0 {
		t.Fatalf("legal lease sequence flagged: %v", vs)
	}
}

func TestViolationCapAndCounts(t *testing.T) {
	a, _ := newAuditor()
	tr := a.Tracer("client")
	for i := 0; i < maxViolations+50; i++ {
		tr.Event(metrics.Reply{Proc: 1, XID: uint32(i)})
	}
	vs := a.Finish()
	if len(vs) != maxViolations {
		t.Fatalf("violation list not capped: %d", len(vs))
	}
	if got := a.Counts()["violation.reply-without-call"]; got != maxViolations+50 {
		t.Fatalf("counts must keep accumulating past the cap, got %d", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{At: time.Second, Source: "client", Rule: "stuck-call", Detail: "xid 3"}
	s := v.String()
	for _, want := range []string{"client", "stuck-call", "xid 3"} {
		if !strings.Contains(s, want) {
			t.Fatalf("violation string %q missing %q", s, want)
		}
	}
}
