// Package check audits protocol invariants from the RPC lifecycle event
// stream. An Auditor fans in events from every transport and the server
// (each tagged with a source name, since XIDs are only unique per
// transport) and checks, online, the properties chaos runs must preserve:
//
//   - every call resolves exactly once (a reply or a failure, never both,
//     never neither — "no RPC stuck forever");
//   - replies and retransmissions refer to calls that exist and are still
//     outstanding;
//   - round-trip and service times never run backwards;
//   - no lease is granted during the server's crash-recovery window, and
//     no conflicting leases coexist (one writer XOR many readers);
//   - non-idempotent procedures execute at most once per (peer, xid) —
//     the duplicate-request-cache guarantee — strictly enforced when
//     SetExactlyOnce is on, tallied otherwise (a replay after a legitimate
//     cache eviction is at-least-once behaviour, not a bug).
//
// Finish audits the end-of-run state: unresolved calls and the
// sent = replies + failures + outstanding conservation equation.
// Violations carry enough detail to debug from a seed sweep's output.
package check

import (
	"fmt"
	"sync"
	"time"

	"renonfs/internal/metrics"
)

// Violation is one invariant breach.
type Violation struct {
	At     time.Duration
	Source string
	Rule   string
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v %s [%s]: %s", v.At, v.Source, v.Rule, v.Detail)
}

// maxViolations bounds the stored list; counts keep accumulating past it.
const maxViolations = 100

type callState struct {
	proc     uint32
	sentAt   time.Duration
	resolved bool
}

type sourceState struct {
	calls    map[uint32]*callState
	sent     int
	replies  int
	failures int
}

type leaseHolder struct {
	write  bool
	expiry time.Duration
}

// execKey identifies one non-idempotent execution the way the server's
// duplicate request cache does.
type execKey struct {
	source string
	peer   string
	xid    uint32
	proc   uint32
}

// Auditor accumulates events and checks invariants. It is safe for
// concurrent use (the real-socket frontends emit from many goroutines).
type Auditor struct {
	mu      sync.Mutex
	now     func() time.Duration
	sources map[string]*sourceState
	// leases tracks the auditor's view of granted leases: file -> peer.
	leases        map[string]map[string]leaseHolder
	recoveryUntil time.Duration
	inRecovery    bool
	// executed counts non-idempotent executions per call identity; strict
	// turns a repeat into a violation (tests that size the duplicate
	// request cache so nothing should ever evict mid-run).
	executed   map[execKey]int
	strict     bool
	violations []Violation
	counts     map[string]int
}

// New creates an auditor reading time from now (the simulation clock in
// chaos runs, wall clock over real sockets).
func New(now func() time.Duration) *Auditor {
	return &Auditor{
		now:      now,
		sources:  make(map[string]*sourceState),
		leases:   make(map[string]map[string]leaseHolder),
		executed: make(map[execKey]int),
		counts:   make(map[string]int),
	}
}

// SetExactlyOnce makes a repeated execution of a non-idempotent procedure
// a hard violation. Enable it in runs whose duplicate request cache is
// sized so nothing should evict; leave it off where churn past the cache
// capacity makes an at-least-once replay legitimate.
func (a *Auditor) SetExactlyOnce(on bool) {
	a.mu.Lock()
	a.strict = on
	a.mu.Unlock()
}

// Tracer returns a metrics.Tracer that feeds this auditor, tagging every
// event with source. Use one per transport (XIDs are per-transport) and
// one for the server.
func (a *Auditor) Tracer(source string) metrics.Tracer {
	return metrics.FuncTracer(func(ev metrics.Event) { a.observe(source, ev) })
}

func (a *Auditor) violate(source, rule, detail string) {
	a.counts["violation."+rule]++
	if len(a.violations) < maxViolations {
		a.violations = append(a.violations, Violation{
			At: a.now(), Source: source, Rule: rule, Detail: detail,
		})
	}
}

func (a *Auditor) src(source string) *sourceState {
	st := a.sources[source]
	if st == nil {
		st = &sourceState{calls: make(map[uint32]*callState)}
		a.sources[source] = st
	}
	return st
}

func (a *Auditor) observe(source string, ev metrics.Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.counts["event."+ev.Kind()]++
	now := a.now()
	switch e := ev.(type) {
	case metrics.CallSent:
		st := a.src(source)
		if prev := st.calls[e.XID]; prev != nil && !prev.resolved {
			a.violate(source, "xid-reuse",
				fmt.Sprintf("xid %d resent as a new call while still outstanding (proc %d)", e.XID, e.Proc))
		}
		st.calls[e.XID] = &callState{proc: e.Proc, sentAt: now}
		st.sent++
	case metrics.Reply:
		st := a.src(source)
		c := st.calls[e.XID]
		switch {
		case c == nil:
			a.violate(source, "reply-without-call", fmt.Sprintf("xid %d", e.XID))
		case c.resolved:
			a.violate(source, "duplicate-completion",
				fmt.Sprintf("xid %d completed again by a reply", e.XID))
		default:
			if e.RTT < 0 {
				a.violate(source, "negative-rtt", fmt.Sprintf("xid %d rtt %v", e.XID, e.RTT))
			}
			c.resolved = true
			st.replies++
		}
	case metrics.CallFailed:
		st := a.src(source)
		c := st.calls[e.XID]
		switch {
		case c == nil:
			a.violate(source, "failure-without-call",
				fmt.Sprintf("xid %d (%s)", e.XID, e.Reason))
		case c.resolved:
			a.violate(source, "duplicate-completion",
				fmt.Sprintf("xid %d completed again by failure (%s)", e.XID, e.Reason))
		default:
			c.resolved = true
			st.failures++
		}
	case metrics.Retransmit:
		st := a.src(source)
		c := st.calls[e.XID]
		switch {
		case c == nil:
			a.violate(source, "retransmit-without-call", fmt.Sprintf("xid %d", e.XID))
		case c.resolved:
			a.violate(source, "retransmit-after-resolve", fmt.Sprintf("xid %d", e.XID))
		}
	case metrics.ServerCall:
		if e.Service < 0 {
			a.violate(source, "negative-service-time",
				fmt.Sprintf("proc %d service %v", e.Proc, e.Service))
		}
		if e.NonIdempotent && e.Peer != "" {
			k := execKey{source: source, peer: e.Peer, xid: e.XID, proc: e.Proc}
			a.executed[k]++
			if a.executed[k] > 1 {
				a.counts["server.reexecution"]++
				if a.strict {
					a.violate(source, "duplicate-execution",
						fmt.Sprintf("proc %d xid %d peer %s executed %d times",
							e.Proc, e.XID, e.Peer, a.executed[k]))
				}
			}
		}
	case metrics.ServerCrash:
		// Reboot: every lease the server granted is forgotten, and none
		// may be granted until the pre-crash ones have all expired.
		a.recoveryUntil = now + e.RecoverFor
		a.inRecovery = true
		a.leases = make(map[string]map[string]leaseHolder)
	case metrics.LeaseGrant:
		if e.Piggy {
			// Tallied separately so sweeps can assert the piggyback fast
			// path actually carried grants (and determinism checks see any
			// shift between piggybacked and explicit LEASE grants).
			a.counts["lease.piggy_grant"]++
		}
		if a.inRecovery && now < a.recoveryUntil {
			a.violate(source, "lease-grant-in-recovery",
				fmt.Sprintf("file %s peer %s granted %v before recovery ends at %v",
					e.File, e.Peer, now, a.recoveryUntil))
		}
		holders := a.leases[e.File]
		for peer, h := range holders {
			if peer == e.Peer || now >= h.expiry {
				continue
			}
			if e.Write || h.write {
				a.violate(source, "lease-conflict",
					fmt.Sprintf("file %s: grant(write=%v) to %s while %s holds write=%v until %v",
						e.File, e.Write, e.Peer, peer, h.write, h.expiry))
			}
		}
		if holders == nil {
			holders = make(map[string]leaseHolder)
			a.leases[e.File] = holders
		}
		holders[e.Peer] = leaseHolder{write: e.Write, expiry: now + e.Term}
	case metrics.LeaseVacate:
		delete(a.leases[e.File], e.Peer)
	}
}

// Finish runs the end-of-run audits and returns all violations found, in
// order. Call it only after every outstanding call has resolved (or should
// have).
func (a *Auditor) Finish() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	for source, st := range a.sources {
		unresolved := 0
		for xid, c := range st.calls {
			if !c.resolved {
				unresolved++
				a.violate(source, "stuck-call",
					fmt.Sprintf("xid %d (proc %d) sent at %v never resolved", xid, c.proc, c.sentAt))
			}
		}
		if st.sent != st.replies+st.failures+unresolved {
			a.violate(source, "conservation",
				fmt.Sprintf("sent %d != replies %d + failures %d + outstanding %d",
					st.sent, st.replies, st.failures, unresolved))
		}
	}
	return a.violations
}

// Violations returns what has been found so far without the final audits.
func (a *Auditor) Violations() []Violation {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Violation(nil), a.violations...)
}

// Counts returns the per-event and per-rule tallies — a cheap fingerprint
// for determinism checks (two identical runs must produce equal Counts).
func (a *Auditor) Counts() map[string]int {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]int, len(a.counts))
	for k, v := range a.counts {
		out[k] = v
	}
	return out
}
