package fleet

import (
	"testing"
	"time"
)

// TestScenarioFingerprintDeterministic mirrors faultplan's
// TestGenerateDeterministic: the scenario schedule is a pure function of
// (kind, seed, horizon), so the same inputs must render — and hash — to
// the same script, and a different seed must not.
func TestScenarioFingerprintDeterministic(t *testing.T) {
	for _, name := range Kinds() {
		kind, err := ParseKind(name)
		if err != nil {
			t.Fatal(err)
		}
		a := GenerateScenario(kind, 42, 5*time.Second)
		b := GenerateScenario(kind, 42, 5*time.Second)
		if a.String() != b.String() {
			t.Errorf("%s: same seed, different schedules:\n  %s\n  %s", name, a, b)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: same seed, different fingerprints", name)
		}
		c := GenerateScenario(kind, 43, 5*time.Second)
		if a.Fingerprint() == c.Fingerprint() {
			t.Errorf("%s: seeds 42 and 43 collided on %s", name, a.Fingerprint())
		}
	}
}

// TestRunSimDeterministic: the whole run — not just the schedule — must be
// a pure function of the config in the simulator. Two runs must agree on
// every call total and every auditor tally (Result.Fingerprint covers
// both), for a hostile scenario with crashes, remounts and storms.
func TestRunSimDeterministic(t *testing.T) {
	cfg := Config{Seed: 99, Clients: 300, Shards: 4, OfferedRPS: 300,
		Warmup: 300 * time.Millisecond, Horizon: 2 * time.Second,
		Timeout: time.Second, Strict: true,
		Scenario: GenerateScenario(RemountHerd, 99, 2*time.Second)}
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same config, different fingerprints: %s vs %s\n a: sent=%d replies=%d timeouts=%d\n b: sent=%d replies=%d timeouts=%d",
			a.Fingerprint(), b.Fingerprint(), a.Sent, a.Replies, a.Timeouts, b.Sent, b.Replies, b.Timeouts)
	}
	// And a different seed must actually change the run.
	cfg.Seed = 100
	cfg.Scenario = GenerateScenario(RemountHerd, 100, 2*time.Second)
	c, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("seeds 99 and 100 produced identical runs")
	}
}
