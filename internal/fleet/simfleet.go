package fleet

import (
	"fmt"
	"time"

	"renonfs/internal/check"
	"renonfs/internal/faultplan"
	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/xdr"
)

// Sim-engine constants. Client hosts stand in for thousands of mounts, so
// they get generous CPU — the rig measures the server and the network.
// Shard sockets bind fleetBasePort+id on the LAN (or WAN) host.
const (
	fleetBasePort = 20000
	fleetHostMIPS = 2000
)

// RunSim drives the fleet against the simulated server on the fleet
// topology (server—router—LAN host, WAN host behind the 56 Kbit/s serial
// hop). Everything — interarrivals, scenario events, crashes — runs on the
// deterministic event clock, so a (config, seed) pair always produces the
// same Result.Fingerprint.
//
// Locking discipline: the simulator is single-threaded (one process runs
// at a time, synchronized through the scheduler), so shard state is
// accessed without sh.mu here — a process must never hold a mutex across a
// park, and the scheduler already serializes everything. The fleetState
// helpers used by scenario callbacks take the lock, which is merely
// uncontended overhead in this engine.
func RunSim(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	env := sim.New(cfg.Seed)
	defer env.Close()

	ft := netsim.BuildFleet(env,
		netsim.NodeConfig{Name: "lanfleet", MIPS: fleetHostMIPS},
		netsim.NodeConfig{Name: "wanfleet", MIPS: fleetHostMIPS},
		netsim.NodeConfig{Name: "server", MIPS: cfg.ServerMIPS})

	fsys := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = cfg.NFSDs
	opts.DupCacheSize = cfg.DupCacheSize
	srv := server.New(fsys, opts)
	aud := check.New(func() time.Duration { return env.Now() })
	aud.SetExactlyOnce(cfg.Strict)
	srv.Tracer = aud.Tracer("server")
	srv.AttachNode(ft.Server)
	srv.ServeUDP(server.NFSPort)

	pre, err := preloadFS(fsys, cfg.Files)
	if err != nil {
		return nil, err
	}
	fst := newFleetState(cfg, aud, pre)

	stopAt := cfg.Warmup + cfg.Horizon
	// Drain long enough that any reply still in flight at sender stop has
	// arrived or timed out before the final sweep (WAN RTTs are seconds).
	drain := cfg.Timeout
	serverID := ft.Server.ID

	for _, sh := range fst.shards {
		sh := sh
		node := ft.LAN
		if sh.wan {
			node = ft.WAN
		}
		sock := node.UDPSocket(fleetBasePort + sh.id)

		// Sender: advances the wheel one tick per wheelGran of sim time,
		// fires every due client, reschedules it. CPU charges from Send
		// may push the process past a tick boundary; next is absolute, so
		// the wheel never drifts from the clock.
		env.Spawn(shardName("fleet-send", sh.id), func(p *sim.Proc) {
			next := sim.Time(wheelGran)
			var wires []op
			for {
				if now := p.Now(); now < next {
					p.Sleep(next - now)
				}
				if next > sim.Time(stopAt) {
					return
				}
				// Phase 1 — book without parking: advance the wheel, build
				// and record every due call, reschedule each client. No
				// sim park happens in here, so a scenario callback (e.g. a
				// remount herd clearing the wheel) can never interleave
				// and see a client half-scheduled.
				sh.due = sh.wheel.advance(sh.due[:0])
				wires = wires[:0]
				for _, ci := range sh.due {
					wires = fst.buildOps(sh, int(ci), wires)
					sh.wheel.schedule(ci, sh.delayTicks(&sh.clients[ci]))
				}
				// Latency is measured from the scheduled tick, not the
				// (possibly CPU-delayed) actual send — the
				// coordinated-omission-safe origin.
				at := time.Duration(next)
				for _, o := range wires {
					sh.recordSend(o, at)
				}
				// Periodic expiry keeps the pending table bounded.
				if sh.wheel.tick%1024 == 0 {
					sh.sweep(time.Duration(next) - cfg.Timeout)
				}
				// Phase 2 — transmit (Send charges CPU and may park).
				for _, o := range wires {
					for d := 1; d < o.dups; d++ {
						sock.Send(p, serverID, server.NFSPort, o.wire.Clone())
					}
					sock.Send(p, serverID, server.NFSPort, o.wire)
				}
				next += sim.Time(wheelGran)
			}
		})

		// Receiver: demux replies by xid. Never blocks the send schedule.
		env.Spawn(shardName("fleet-recv", sh.id), func(p *sim.Proc) {
			var rep rpc.Reply
			for {
				dg, ok := sock.Recv(p)
				if !ok {
					return
				}
				d := xdr.NewDecoder(dg.Payload)
				rpcErr := true
				if err := rpc.DecodeReplyInto(d, &rep); err == nil {
					rpcErr = rep.Denied || rep.AcceptStat != rpc.Success
					sh.recordReply(rep.XID, p.Now(), rpcErr)
				}
				dg.Payload.Free()
			}
		})
	}

	// Scenario events, offset by warmup onto the run clock.
	sc := cfg.Scenario
	for _, rs := range sc.RateSteps {
		rs := rs
		env.At(sim.Time(cfg.Warmup+rs.At), func() { fst.setRate(rs.Mult) })
	}
	for _, st := range sc.Storms {
		st := st
		env.At(sim.Time(cfg.Warmup+st.Start), func() { fst.setStorm(st.Dups) })
		env.At(sim.Time(cfg.Warmup+st.End), func() { fst.setStorm(0) })
	}
	for _, rm := range sc.Remounts {
		rm := rm
		env.At(sim.Time(cfg.Warmup+rm.At), func() { fst.remountAll(rm.Jitter) })
	}
	if len(sc.Crashes) > 0 {
		shifted := &faultplan.Schedule{Seed: sc.Seed, Horizon: sim.Time(stopAt)}
		for _, c := range sc.Crashes {
			shifted.Crashes = append(shifted.Crashes, faultplan.Crash{
				Start: c.Start + sim.Time(cfg.Warmup),
				End:   c.End + sim.Time(cfg.Warmup),
			})
		}
		shifted.Apply(ft.Testbed(), srv)
	}

	env.Run(sim.Time(stopAt + drain))

	// Final sweep: anything still pending is a timeout (the drain outlived
	// both the RTT ceiling and the expiry window), then the audit closes.
	for _, sh := range fst.shards {
		sh.sweep(time.Duration(1 << 62))
	}
	res := fst.finish("sim", aud)
	res.NfsdCalls = srv.Stats.Total()
	return res, nil
}

func shardName(prefix string, id int) string {
	return fmt.Sprintf("%s%d", prefix, id)
}
