// Package fleet is the open-loop load rig: thousands of compact client
// state machines driven at a configured offered RPS against the simulated
// server (RunSim) or the real-socket frontend (RunSock), producing
// latency-vs-offered-load curves with p50/p99/p999 and SLO verdicts.
//
// Open loop means the send schedule never waits for replies: each client's
// next send is drawn from an exponential interarrival at the offered rate,
// fired by a per-shard timing wheel, and a late reply is recorded when it
// arrives (or the call is swept as a timeout) rather than blocking the
// schedule. Latency is measured from the *scheduled* send time, so a
// server that stalls accumulates the queueing delay in the tail instead of
// silently shedding offered load — the coordinated-omission correction the
// nanoPU paper argues closed-loop rigs get wrong (DESIGN.md §10).
//
// There is no goroutine or sim process per client. A shard owns one
// socket, one timing wheel, one pending-call table and a few thousand
// 16-byte client states; the whole 10k-mount fleet is a dozen shards. XIDs
// encode (client id << xidSeqBits | seq), so every call in flight is
// attributable to its client and unique fleet-wide.
package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"renonfs/internal/check"
	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/workload"
	"renonfs/internal/xdr"
)

// Config parameterizes one fleet run (one point of a load curve).
type Config struct {
	Seed    int64
	Clients int // simulated mounts (>= 10k supported; default 1000)
	Shards  int // sockets/wheels the clients are split across (default 8)
	// OfferedRPS is the aggregate open-loop send rate across the fleet.
	OfferedRPS float64
	Warmup     time.Duration // excluded from every reported number
	Horizon    time.Duration // measured window
	Timeout    time.Duration // pending call expiry (default 5s)
	Scenario   *Scenario     // nil means steady load
	Files      int           // preloaded shared files (default 64)
	// Strict turns on the auditor's exactly-once rule (duplicate sends
	// must never execute a non-idempotent procedure twice).
	Strict bool

	// Server shape.
	NFSDs        int     // worker pool size (default 16)
	DupCacheSize int     // default 4096 (strict runs must not evict mid-run)
	ServerMIPS   float64 // sim engine server CPU (default 40 — a late-era server)

	// Real-socket engine only.
	Readers     int  // sharded ingest readers (0: GOMAXPROCS)
	NoReusePort bool // force shared-socket ingest so retransmits cross readers
	NoFastPath  bool // disable the shallow dispatch path (before/after benchmarks)
}

func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1000
	}
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > c.Clients {
		c.Shards = c.Clients
	}
	if c.OfferedRPS <= 0 {
		c.OfferedRPS = 500
	}
	if c.Horizon <= 0 {
		c.Horizon = 10 * time.Second
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 5 * time.Second
	}
	if c.Files <= 0 {
		c.Files = 64
	}
	if c.NFSDs <= 0 {
		c.NFSDs = 16
	}
	if c.DupCacheSize <= 0 {
		c.DupCacheSize = 4096
	}
	if c.ServerMIPS <= 0 {
		c.ServerMIPS = 40
	}
	if c.Scenario == nil {
		c.Scenario = GenerateScenario(Steady, c.Seed, c.Horizon)
	}
	return c
}

// Timing-wheel shape: 1 ms ticks, 4096 slots (~4 s per revolution).
const (
	wheelGran  = time.Millisecond
	wheelSlots = 1 << 12
)

// XID layout: client id in the high bits, per-client sequence below. 18 id
// bits carry 256k clients; 14 sequence bits wrap at 16k calls per client,
// far beyond what can be in flight at once.
const xidSeqBits = 14

// Tenant indexes into the mix table (and Scenario.TenantWeights).
const (
	tenantNhfsstone = iota
	tenantAndrew
	tenantCreateDelete
	numTenants
)

// clientState is one simulated mount: 16 bytes, no pointers, so 10k mounts
// are 160 KB in one slice — the per-client compaction the ROADMAP calls
// out as the prerequisite for fleet scale.
type clientState struct {
	rng    uint64 // xorshift64 state (never zero)
	seq    uint32 // next call sequence (xid low bits)
	file   uint16 // index into the preloaded shared files
	tenant uint8
	flags  uint8
}

const (
	flagWAN     = 1 << iota // behind the serial hop: header-only ops
	flagTemp                // this client's temp file exists (create/remove churn)
	flagRemount             // next fire re-issues MNT+LOOKUP (thundering herd)
)

// splitmix64 seeds per-client xorshift states from (seed, id) — every
// client's stream is independent and reproducible.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func xorshift64(s *uint64) uint64 {
	x := *s
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	*s = x
	return x
}

// randF returns a uniform float64 in [0,1).
func randF(s *uint64) float64 { return float64(xorshift64(s)>>11) / (1 << 53) }

// pendingCall tracks one in-flight RPC: when its send was *scheduled*
// (time since run start — the coordinated-omission-safe latency origin)
// and the procedure, for the auditor's failure events.
type pendingCall struct {
	at   time.Duration
	proc uint32
}

// compiledMix is a cumulative-probability table over sorted procedures, so
// one uniform draw picks an operation deterministically.
type compiledMix struct {
	procs []uint32
	cum   []float64
}

func compileMix(m map[uint32]float64) compiledMix {
	procs := make([]uint32, 0, len(m))
	for p := range m {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	cum := make([]float64, len(procs))
	total := 0.0
	for i, p := range procs {
		total += m[p]
		cum[i] = total
	}
	// Normalize so the last bucket always catches the draw.
	for i := range cum {
		cum[i] /= total
	}
	return compiledMix{procs: procs, cum: cum}
}

func (cm compiledMix) pick(u float64) uint32 {
	for i, c := range cm.cum {
		if u < c {
			return cm.procs[i]
		}
	}
	return cm.procs[len(cm.procs)-1]
}

// procMount is the out-of-band "procedure" for MOUNT MNT calls in pending
// tables and auditor events (real NFS procs stop at NumProcsExt).
const procMount = uint32(0xff)

// shard owns one socket's worth of clients: their states, the timing
// wheel that fires them, the pending-call table that demuxes replies by
// xid, and the counters/histogram for its slice of the fleet. mu guards
// everything below it in the real-socket engine (sender and receiver
// goroutines); the simulator is single-threaded and pays only uncontended
// locks.
type shard struct {
	id   int
	base int // global client id of clients[0]
	wan  bool

	mu      sync.Mutex
	clients []clientState
	wheel   *wheel
	pending map[uint32]pendingCall
	due     []uint32 // advance() scratch

	rate      float64 // per-client sends/sec (scenario rate steps scale it)
	baseRate  float64
	stormDups int // >0: non-idempotent sends are duplicated this many times

	// Measured window in run time: a call belongs to the window iff its
	// *scheduled* send time falls inside it, so warmup traffic never
	// pollutes the reported numbers even when its replies land later.
	winStart, winEnd time.Duration

	hist   *metrics.Histogram // reply latency, measured window only (ms)
	tracer metrics.Tracer     // auditor source "fleet<id>"

	// Counters: whole-run totals (conservation) and measured-window slices
	// (rates and verdicts). "late" are replies that arrived after their
	// call was swept as a timeout — recorded, never waited on.
	sent, replies, timeouts, errors, late int64
	wSent, wReplies, wTimeouts, wErrors   int64
	mounts                                int64
}

// fleetState is everything the engines share: shards, preloaded handles,
// compiled mixes, and the measurement window.
type fleetState struct {
	cfg    Config
	shards []*shard
	mixes  [numTenants]compiledMix
	wanMix compiledMix
	pre    *preload

	winStart, winEnd time.Duration // measured window in run time
}

// newFleetState builds the shard/client structures deterministically from
// the config: tenants drawn from the scenario's weights per client,
// trailing shards placed on the WAN per WANPerMille.
func newFleetState(cfg Config, aud *check.Auditor, pre *preload) *fleetState {
	fs := &fleetState{
		cfg: cfg, pre: pre,
		winStart: cfg.Warmup, winEnd: cfg.Warmup + cfg.Horizon,
	}
	fs.mixes[tenantNhfsstone] = compileMix(workload.FullMix())
	fs.mixes[tenantAndrew] = compileMix(workload.AndrewMix())
	fs.mixes[tenantCreateDelete] = compileMix(workload.CreateDeleteMix())
	fs.wanMix = compileMix(map[uint32]float64{
		nfsproto.ProcLookup: 0.6, nfsproto.ProcGetattr: 0.4,
	})
	sc := cfg.Scenario
	wsum := sc.TenantWeights[0] + sc.TenantWeights[1] + sc.TenantWeights[2]
	if wsum <= 0 {
		wsum = 1
		sc = &Scenario{TenantWeights: [3]int{1, 0, 0}}
	}
	wanShards := cfg.Shards * cfg.Scenario.WANPerMille / 1000
	perClientRate := cfg.OfferedRPS / float64(cfg.Clients)
	per := cfg.Clients / cfg.Shards
	extra := cfg.Clients % cfg.Shards
	base := 0
	for i := 0; i < cfg.Shards; i++ {
		n := per
		if i < extra {
			n++
		}
		sh := &shard{
			id: i, base: base,
			wan:     i >= cfg.Shards-wanShards,
			clients: make([]clientState, n),
			wheel:   newWheel(wheelSlots),
			pending: make(map[uint32]pendingCall),
			rate:    perClientRate, baseRate: perClientRate,
			hist:     metrics.NewHistogram(),
			winStart: fs.winStart, winEnd: fs.winEnd,
		}
		if aud != nil {
			sh.tracer = aud.Tracer(fmt.Sprintf("fleet%d", i))
		}
		for c := range sh.clients {
			id := base + c
			st := &sh.clients[c]
			st.rng = splitmix64(uint64(cfg.Seed) ^ (uint64(id)+1)*0x9e3779b97f4a7c15)
			if st.rng == 0 {
				st.rng = 1
			}
			w := int(xorshift64(&st.rng) % uint64(wsum))
			switch {
			case w < sc.TenantWeights[0]:
				st.tenant = tenantNhfsstone
			case w < sc.TenantWeights[0]+sc.TenantWeights[1]:
				st.tenant = tenantAndrew
			default:
				st.tenant = tenantCreateDelete
			}
			st.file = uint16(xorshift64(&st.rng) % uint64(cfg.Files))
			if sh.wan {
				st.flags |= flagWAN
			}
			// Stagger initial sends across one mean interarrival.
			sh.wheel.schedule(uint32(c), sh.delayTicks(st))
		}
		fs.shards = append(fs.shards, sh)
		base += n
	}
	return fs
}

// delayTicks draws the client's next exponential interarrival in wheel
// ticks, clamped so the wheel never sees a zero or absurd delay.
func (sh *shard) delayTicks(st *clientState) uint32 {
	mean := 1.0 / sh.rate // seconds
	d := -math.Log(1-randF(&st.rng)) * mean
	ticks := d * float64(time.Second/wheelGran)
	if ticks < 1 {
		ticks = 1
	}
	// An entry more than ~30 revolutions out costs 30 rescans — fine; cap
	// only to keep uint32 arithmetic comfortable (~73 min at 1 ms ticks).
	if ticks > float64(1<<22) {
		ticks = float64(1 << 22)
	}
	return uint32(ticks)
}

// xidOf allocates the next xid for client (shard-local index ci).
func (sh *shard) xidOf(ci int) uint32 {
	st := &sh.clients[ci]
	xid := uint32(sh.base+ci)<<xidSeqBits | (st.seq & (1<<xidSeqBits - 1))
	st.seq++
	return xid
}

// op is one wire call ready to send: dups > 1 means the client fires that
// many identical datagrams back-to-back (retransmission storm).
type op struct {
	proc uint32
	xid  uint32
	wire *mbuf.Chain
	dups int
}

// preload is the server-side fixture the fleet operates on: shared files,
// symlink handles and the root, created directly in the FS before traffic
// starts (no RPCs, so warmup measures the server, not the setup).
type preload struct {
	root   nfsproto.FH
	files  []nfsproto.FH
	links  []nfsproto.FH
	names  []string // file names, index-aligned with files
	buf512 []byte   // shared write payload
}

// preloadFS populates fs for a fleet run. It goes through the FS directly
// (nil proc — the frontends do the same for real-socket traffic), so it
// works identically for both engines.
func preloadFS(fsys *memfs.FS, files int) (*preload, error) {
	root := fsys.Root()
	p := &preload{root: fsys.FH(root), buf512: make([]byte, 2048)}
	for i := range p.buf512 {
		p.buf512[i] = byte(i)
	}
	content := make([]byte, nfsproto.MaxData)
	for i := range content {
		content[i] = byte(i * 7)
	}
	for i := 0; i < files; i++ {
		name := fmt.Sprintf("fl%04d", i)
		n, err := fsys.Create(nil, root, name, 0644)
		if err != nil {
			return nil, fmt.Errorf("preload create %s: %w", name, err)
		}
		if err := fsys.WriteAt(nil, n, 0, content, 0); err != nil {
			return nil, fmt.Errorf("preload write %s: %w", name, err)
		}
		p.files = append(p.files, fsys.FH(n))
		p.names = append(p.names, name)
	}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("ln%d", i)
		n, err := fsys.Symlink(nil, root, name, "fl0000", 0777)
		if err != nil {
			return nil, fmt.Errorf("preload symlink %s: %w", name, err)
		}
		p.links = append(p.links, fsys.FH(n))
	}
	return p, nil
}

// tempName is the per-client temp file for create/remove churn: unique per
// client, so 10k mounts never collide on a name.
func tempName(id int) string { return fmt.Sprintf("flt%05d", id) }

// encodeNFS builds the wire chain of one NFS call.
func encodeNFS(xid, proc uint32, enc func(e *xdr.Encoder)) *mbuf.Chain {
	msg := &mbuf.Chain{}
	rpc.EncodeCall(msg, &rpc.Call{XID: xid, Prog: nfsproto.Program,
		Vers: nfsproto.Version, Proc: proc})
	enc(xdr.NewEncoder(msg))
	return msg
}

// encodeMount builds the wire chain of one MOUNT MNT call.
func encodeMount(xid uint32) *mbuf.Chain {
	msg := &mbuf.Chain{}
	rpc.EncodeCall(msg, &rpc.Call{XID: xid, Prog: nfsproto.MountProgram,
		Vers: nfsproto.MountVersion, Proc: nfsproto.MountProcMnt})
	(&nfsproto.MntArgs{DirPath: "/"}).Encode(xdr.NewEncoder(msg))
	return msg
}

// buildOps appends the client's next wire calls to ops (usually one; a
// remounting client issues MNT+LOOKUP). Caller holds sh.mu.
func (fs *fleetState) buildOps(sh *shard, ci int, ops []op) []op {
	st := &sh.clients[ci]
	pre := fs.pre
	id := sh.base + ci

	if st.flags&flagRemount != 0 {
		st.flags &^= flagRemount
		st.flags &^= flagTemp // volatile state died with the server
		mx, lx := sh.xidOf(ci), sh.xidOf(ci)
		dups := 1
		if sh.stormDups > 1 {
			dups = sh.stormDups
		}
		ops = append(ops,
			op{proc: procMount, xid: mx, wire: encodeMount(mx), dups: dups},
			op{proc: nfsproto.ProcLookup, xid: lx, dups: 1,
				wire: encodeNFS(lx, nfsproto.ProcLookup, func(e *xdr.Encoder) {
					(&nfsproto.DiropArgs{Dir: pre.root, Name: pre.names[st.file]}).Encode(e)
				})})
		return ops
	}

	var proc uint32
	u := randF(&st.rng)
	if st.flags&flagWAN != 0 {
		proc = fs.wanMix.pick(u)
	} else {
		proc = fs.mixes[st.tenant].pick(u)
	}
	// Create/remove churn must alternate against the client's own temp
	// file: remove-before-create is rewritten so the steady state is a
	// create/remove cycle rather than a stream of ErrNoEnt.
	if proc == nfsproto.ProcRemove && st.flags&flagTemp == 0 {
		proc = nfsproto.ProcCreate
	}
	if proc == nfsproto.ProcCreate && st.flags&flagTemp != 0 {
		proc = nfsproto.ProcRemove
	}

	xid := sh.xidOf(ci)
	o := op{proc: proc, xid: xid, dups: 1}
	if sh.stormDups > 1 && nonIdempotentProc(proc) {
		o.dups = sh.stormDups
	}
	fh := pre.files[st.file]
	switch proc {
	case nfsproto.ProcGetattr:
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: fh}).Encode(e)
		})
	case nfsproto.ProcSetattr:
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			a := nfsproto.NewSattr()
			a.Mode = 0644
			(&nfsproto.SetattrArgs{File: fh, Attr: a}).Encode(e)
		})
	case nfsproto.ProcLookup:
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: pre.root, Name: pre.names[st.file]}).Encode(e)
		})
	case nfsproto.ProcReadlink:
		lfh := pre.links[int(xorshift64(&st.rng)%uint64(len(pre.links)))]
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: lfh}).Encode(e) // readlink args: bare FH
		})
	case nfsproto.ProcRead:
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.ReadArgs{File: fh, Offset: 0, Count: nfsproto.MaxData}).Encode(e)
		})
	case nfsproto.ProcWrite:
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.WriteArgs{File: fh, Offset: 0,
				Data: mbuf.FromBytes(pre.buf512)}).Encode(e)
		})
	case nfsproto.ProcCreate:
		st.flags |= flagTemp
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			a := nfsproto.NewSattr()
			a.Mode = 0644
			(&nfsproto.CreateArgs{
				Where: nfsproto.DiropArgs{Dir: pre.root, Name: tempName(id)},
				Attr:  a}).Encode(e)
		})
	case nfsproto.ProcRemove:
		st.flags &^= flagTemp
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: pre.root, Name: tempName(id)}).Encode(e)
		})
	case nfsproto.ProcReaddir:
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.ReaddirArgs{Dir: pre.root, Count: 1024}).Encode(e)
		})
	case nfsproto.ProcStatfs:
		o.wire = encodeNFS(xid, proc, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: pre.root}).Encode(e) // statfs args: bare FH
		})
	default:
		// Mix procedures are all handled above; guard against drift.
		o.proc = nfsproto.ProcGetattr
		o.wire = encodeNFS(xid, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: fh}).Encode(e)
		})
	}
	return append(ops, o)
}

// nonIdempotentProc mirrors the server's dupcache admission set.
func nonIdempotentProc(p uint32) bool {
	switch p {
	case nfsproto.ProcSetattr, nfsproto.ProcCreate, nfsproto.ProcRemove,
		nfsproto.ProcRename, nfsproto.ProcLink, nfsproto.ProcSymlink,
		nfsproto.ProcMkdir, nfsproto.ProcRmdir:
		return true
	}
	return false
}

// recordSend books one call (and its storm duplicates) before any datagram
// leaves: the pending entry and the auditor's CallSent/Retransmit events
// must exist before a reply can race in on the receiver. at is the
// *scheduled* fire time. Caller holds sh.mu.
func (sh *shard) recordSend(o op, at time.Duration) {
	sh.pending[o.xid] = pendingCall{at: at, proc: o.proc}
	sh.sent++
	if at >= sh.winStart && at < sh.winEnd {
		sh.wSent++
	}
	if o.proc == procMount {
		sh.mounts++
	}
	metrics.Emit(sh.tracer, metrics.CallSent{Proc: o.proc, XID: o.xid})
	for d := 1; d < o.dups; d++ {
		metrics.Emit(sh.tracer, metrics.Retransmit{Proc: o.proc, XID: o.xid, Backoff: d})
	}
}

// recordReply resolves a reply against the pending table. Window
// membership is decided by when the call was scheduled. Caller holds
// sh.mu.
func (sh *shard) recordReply(xid uint32, now time.Duration, rpcErr bool) {
	pc, ok := sh.pending[xid]
	if !ok {
		// Resolved already (timeout sweep) or never ours: a late reply is
		// recorded, not waited on — the open-loop contract.
		sh.late++
		return
	}
	delete(sh.pending, xid)
	sh.replies++
	lat := now - pc.at
	inWin := pc.at >= sh.winStart && pc.at < sh.winEnd
	if inWin {
		sh.wReplies++
		sh.hist.Observe(float64(lat) / float64(time.Millisecond))
	}
	if rpcErr {
		sh.errors++
		if inWin {
			sh.wErrors++
		}
	}
	metrics.Emit(sh.tracer, metrics.Reply{Proc: pc.proc, XID: xid, RTT: lat})
}

// sweep expires pending calls scheduled before cutoff, emitting
// CallFailed so the auditor's conservation rule stays exact. Caller holds
// sh.mu. Returns how many were expired.
func (sh *shard) sweep(cutoff time.Duration) int {
	n := 0
	for xid, pc := range sh.pending {
		if pc.at >= cutoff {
			continue
		}
		delete(sh.pending, xid)
		sh.timeouts++
		if pc.at >= sh.winStart && pc.at < sh.winEnd {
			sh.wTimeouts++
		}
		metrics.Emit(sh.tracer, metrics.CallFailed{Proc: pc.proc, XID: xid,
			Reason: "fleet-timeout"})
		n++
	}
	return n
}

// setRate applies a scenario rate multiplier to every shard.
func (fs *fleetState) setRate(mult float64) {
	for _, sh := range fs.shards {
		sh.mu.Lock()
		sh.rate = sh.baseRate * mult
		sh.mu.Unlock()
	}
}

// setStorm toggles duplicate-send mode on every shard.
func (fs *fleetState) setStorm(dups int) {
	for _, sh := range fs.shards {
		sh.mu.Lock()
		sh.stormDups = dups
		sh.mu.Unlock()
	}
}

// remountAll scripts the thundering herd: every client's wheel entry is
// torn up and replaced with a remount fire inside the jitter window.
func (fs *fleetState) remountAll(jitter time.Duration) {
	jt := uint32(jitter / wheelGran)
	if jt < 1 {
		jt = 1
	}
	for _, sh := range fs.shards {
		sh.mu.Lock()
		sh.wheel.clear()
		for c := range sh.clients {
			st := &sh.clients[c]
			st.flags |= flagRemount
			sh.wheel.schedule(uint32(c), 1+uint32(xorshift64(&st.rng))%jt)
		}
		sh.mu.Unlock()
	}
}

// Result is one fleet run's outcome: totals for conservation, the
// measured-window rates and percentiles, and the audit verdict.
type Result struct {
	Engine   string
	Offered  float64
	Clients  int
	Shards   int
	Scenario *Scenario

	// Whole-run totals (sent == replies + timeouts after the final sweep).
	Sent, Replies, Timeouts, Errors, Late, Mounts int64
	// Measured window only (scheduled inside [Warmup, Warmup+Horizon)).
	WSent, WReplies, WTimeouts, WErrors int64

	AchievedRPS    float64 // window sends / horizon — offered load actually generated
	GoodputRPS     float64 // window replies / horizon
	P50, P99, P999 float64 // ms, window latencies from scheduled send time
	Hist           metrics.HistogramSnapshot

	Violations  []check.Violation
	AuditCounts map[string]int

	// Real-socket drain counters: every datagram read was either serviced
	// inline on its reader or dispatched to a worker (Σ reader reads ==
	// Σ nfsd calls + Σ reader fast after Close).
	ReaderReads, ReaderFast, NfsdCalls int64
	// PerReaderReads breaks ReaderReads down by ingest shard (the herd
	// test's cross-reader spread assertion).
	PerReaderReads []int64
	// Shallow-path accounting: inline-serviced calls, eligible calls that
	// punted to the generic path, and the batched writer's syscall/reply
	// split (SendBatches send syscalls carried SendMsgs replies).
	FastCalls, FastFallbacks, SendBatches, SendMsgs int64
}

// finish folds the shards into a Result (engines call it after their final
// sweep and auditor Finish).
func (fs *fleetState) finish(engine string, aud *check.Auditor) *Result {
	r := &Result{
		Engine: engine, Offered: fs.cfg.OfferedRPS,
		Clients: fs.cfg.Clients, Shards: fs.cfg.Shards,
		Scenario: fs.cfg.Scenario,
	}
	var hist metrics.HistogramSnapshot
	for i, sh := range fs.shards {
		sh.mu.Lock()
		r.Sent += sh.sent
		r.Replies += sh.replies
		r.Timeouts += sh.timeouts
		r.Errors += sh.errors
		r.Late += sh.late
		r.Mounts += sh.mounts
		r.WSent += sh.wSent
		r.WReplies += sh.wReplies
		r.WTimeouts += sh.wTimeouts
		r.WErrors += sh.wErrors
		if i == 0 {
			hist = sh.hist.Snapshot()
		} else {
			hist = hist.Add(sh.hist.Snapshot())
		}
		sh.mu.Unlock()
	}
	r.Hist = hist
	secs := fs.cfg.Horizon.Seconds()
	r.AchievedRPS = float64(r.WSent) / secs
	r.GoodputRPS = float64(r.WReplies) / secs
	if hist.Count > 0 {
		r.P50 = hist.Quantile(50)
		r.P99 = hist.Quantile(99)
		r.P999 = hist.Quantile(99.9)
	}
	if aud != nil {
		r.Violations = aud.Finish()
		r.AuditCounts = aud.Counts()
	}
	return r
}

// TimeoutFrac is the fraction of window sends that expired unanswered.
func (r *Result) TimeoutFrac() float64 {
	if r.WSent == 0 {
		return 0
	}
	return float64(r.WTimeouts) / float64(r.WSent)
}

// Fingerprint hashes everything a deterministic engine must reproduce for
// a seed: the scenario schedule, the call totals and the audit counts.
// Two RunSim calls with the same config must agree (the determinism test).
func (r *Result) Fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sched:%s;", r.Scenario)
	fmt.Fprintf(&b, "sent:%d;replies:%d;timeouts:%d;errors:%d;late:%d;mounts:%d;",
		r.Sent, r.Replies, r.Timeouts, r.Errors, r.Late, r.Mounts)
	fmt.Fprintf(&b, "wsent:%d;wreplies:%d;wtimeouts:%d;hist:%d;",
		r.WSent, r.WReplies, r.WTimeouts, r.Hist.Count)
	keys := make([]string, 0, len(r.AuditCounts))
	for k := range r.AuditCounts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, r.AuditCounts[k])
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:8])
}

// SLO is the latency/loss contract a load point is judged against.
type SLO struct {
	P50, P99, P999 time.Duration
	// MaxTimeoutFrac bounds window timeouts / window sends.
	MaxTimeoutFrac float64
}

// DefaultSLO is deliberately loose — a knee-finding default, not a claim.
func DefaultSLO() SLO {
	return SLO{P50: 50 * time.Millisecond, P99: 500 * time.Millisecond,
		P999: 2 * time.Second, MaxTimeoutFrac: 0.01}
}

// ParseSLO parses "p50=5ms,p99=50ms,p999=250ms,timeouts=0.01". Omitted
// fields keep the default; unknown keys are errors.
func ParseSLO(s string) (SLO, error) {
	slo := DefaultSLO()
	if s == "" {
		return slo, nil
	}
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return slo, fmt.Errorf("slo: %q is not key=value", part)
		}
		switch kv[0] {
		case "p50", "p99", "p999":
			d, err := time.ParseDuration(kv[1])
			if err != nil {
				return slo, fmt.Errorf("slo: %s: %w", kv[0], err)
			}
			switch kv[0] {
			case "p50":
				slo.P50 = d
			case "p99":
				slo.P99 = d
			case "p999":
				slo.P999 = d
			}
		case "timeouts":
			var f float64
			if _, err := fmt.Sscanf(kv[1], "%g", &f); err != nil {
				return slo, fmt.Errorf("slo: timeouts: %w", err)
			}
			slo.MaxTimeoutFrac = f
		default:
			return slo, fmt.Errorf("slo: unknown key %q (want p50/p99/p999/timeouts)", kv[0])
		}
	}
	return slo, nil
}

// Check returns the SLO clauses the result violates (empty means pass).
func (slo SLO) Check(r *Result) []string {
	var fails []string
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if slo.P50 > 0 && r.P50 > ms(slo.P50) {
		fails = append(fails, fmt.Sprintf("p50 %.1fms > %v", r.P50, slo.P50))
	}
	if slo.P99 > 0 && r.P99 > ms(slo.P99) {
		fails = append(fails, fmt.Sprintf("p99 %.1fms > %v", r.P99, slo.P99))
	}
	if slo.P999 > 0 && r.P999 > ms(slo.P999) {
		fails = append(fails, fmt.Sprintf("p999 %.1fms > %v", r.P999, slo.P999))
	}
	if f := r.TimeoutFrac(); f > slo.MaxTimeoutFrac {
		fails = append(fails, fmt.Sprintf("timeouts %.3f > %.3f", f, slo.MaxTimeoutFrac))
	}
	return fails
}
