package fleet

import (
	"runtime"
	"testing"
	"time"
)

// TestRemountHerdExactlyOnce extends the nfsnet storm tests to fleet
// scale: a real-socket run through the remountherd script — server crash,
// reboot, every client re-issuing MNT+LOOKUP inside the jitter window with
// its first ops retransmitted x3 — under the strict exactly-once auditor.
// NoReusePort forces shared-socket ingest, so the herd's duplicate sends
// land on whichever of the 4 readers wins the race: the dupcache must
// suppress cross-reader re-execution, and the spread assertion proves the
// duplicates really did cross readers (a single-reader run would pass the
// exactly-once check vacuously).
func TestRemountHerdExactlyOnce(t *testing.T) {
	horizon := 2 * time.Second
	cfg := Config{Seed: 31, Clients: 600, Shards: 8, OfferedRPS: 900,
		Warmup: 300 * time.Millisecond, Horizon: horizon,
		Timeout: time.Second, Strict: true,
		Readers: 4, NoReusePort: true,
		Scenario: GenerateScenario(RemountHerd, 31, horizon)}
	r, err := RunSock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sent=%d replies=%d timeouts=%d late=%d mounts=%d retrans=%d duphits=%d readers=%v",
		r.Sent, r.Replies, r.Timeouts, r.Late, r.Mounts,
		r.AuditCounts["event.retransmit"], r.AuditCounts["event.dup_hit"], r.PerReaderReads)

	if len(r.Violations) != 0 {
		t.Errorf("exactly-once violated %d times; first: %v", len(r.Violations), r.Violations[0])
	}
	if r.Sent != r.Replies+r.Timeouts {
		t.Errorf("conservation: sent=%d replies=%d timeouts=%d", r.Sent, r.Replies, r.Timeouts)
	}
	if r.Mounts != int64(cfg.Clients) {
		t.Errorf("herd produced %d MNT calls, want one per client (%d)", r.Mounts, cfg.Clients)
	}
	if r.AuditCounts["event.retransmit"] == 0 {
		t.Error("herd produced no retransmissions — the storm window did not fire")
	}
	if r.AuditCounts["event.server_crash"] == 0 {
		t.Error("no server crash recorded — the reboot script did not run")
	}

	// Per-reader spread: the herd must have landed on >= 2 readers for the
	// cross-reader dupcache path to have been exercised at all.
	active := 0
	for _, n := range r.PerReaderReads {
		if n > 0 {
			active++
		}
	}
	if len(r.PerReaderReads) != 4 {
		t.Fatalf("frontend ran %d readers, want 4", len(r.PerReaderReads))
	}
	if active < 2 {
		t.Errorf("herd traffic landed on %d reader(s) %v; want spread across >= 2",
			active, r.PerReaderReads)
	}
}

// TestRemountHerdFastPathBatching is the shallow-dispatch counterpart of the
// herd test above: same crash/reboot/re-mount script, but with reuseport
// ingest (the default), where each reader owns its socket and so the
// header-only fast path is enabled. The herd's MNT+LOOKUP burst is exactly
// the traffic the fast path exists for, and its back-to-back arrivals are
// what the coalescing reply writers exist for — so beyond the exactly-once
// audit this run must show (a) inline fast-path service actually firing and
// (b) replies leaving in fewer send syscalls than replies: the < 1.0
// syscalls/reply acceptance number recorded in BENCH_fastpath.json.
func TestRemountHerdFastPathBatching(t *testing.T) {
	horizon := 2 * time.Second
	cfg := Config{Seed: 47, Clients: 600, Shards: 8, OfferedRPS: 900,
		Warmup: 300 * time.Millisecond, Horizon: horizon,
		Timeout: time.Second, Strict: true,
		Readers:  4,
		Scenario: GenerateScenario(RemountHerd, 47, horizon)}
	r, err := RunSock(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := 0.0
	if r.SendMsgs > 0 {
		ratio = float64(r.SendBatches) / float64(r.SendMsgs)
	}
	t.Logf("sent=%d replies=%d timeouts=%d fast=%d fallbacks=%d batches=%d msgs=%d (%.3f syscalls/reply)",
		r.Sent, r.Replies, r.Timeouts, r.FastCalls, r.FastFallbacks,
		r.SendBatches, r.SendMsgs, ratio)

	if len(r.Violations) != 0 {
		t.Errorf("exactly-once violated %d times; first: %v", len(r.Violations), r.Violations[0])
	}
	if r.Sent != r.Replies+r.Timeouts {
		t.Errorf("conservation: sent=%d replies=%d timeouts=%d", r.Sent, r.Replies, r.Timeouts)
	}
	if r.ReaderReads != r.NfsdCalls+r.ReaderFast {
		t.Errorf("drain counters diverge: readers read %d, nfsds dispatched %d, fast-serviced %d",
			r.ReaderReads, r.NfsdCalls, r.ReaderFast)
	}
	if r.FastCalls == 0 {
		// Without reuseport (or a single reader) the gate in nfsnet.Serve
		// turns the fast path off; that is the correct behavior there, but
		// it means this test only bites on platforms that can bind several
		// sockets to the port.
		if runtime.GOOS != "linux" {
			t.Skipf("fast path disabled (no reuseport on %s); nothing to assert", runtime.GOOS)
		}
		t.Error("herd produced no fast-path calls under reuseport ingest")
	}
	if r.SendMsgs == 0 {
		t.Fatal("no replies left through the coalescing writers")
	}
	if ratio >= 1.0 {
		t.Errorf("batched sends: %d syscalls for %d replies (%.3f/reply); want < 1.0",
			r.SendBatches, r.SendMsgs, ratio)
	}
}
