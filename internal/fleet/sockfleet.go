package fleet

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"renonfs/internal/check"
	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsnet"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/xdr"
)

// RunSock drives the fleet over real UDP sockets against internal/nfsnet:
// one connection per shard (hundreds of clients multiplexed per socket by
// xid), a sender goroutine pacing the shard's timing wheel on the wall
// clock, and a receiver goroutine demuxing replies. Scenario events run on
// wall-clock timers — crash windows through the frontend's SetDown/Crash,
// so reboot quiesce and TCP aborts behave exactly as production would.
//
// Unlike RunSim this engine is not bit-deterministic (the wall clock
// isn't), but the scenario schedule itself still is — a failing run prints
// a seed whose script replays exactly.
func RunSock(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	fsys := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = cfg.NFSDs
	opts.Readers = cfg.Readers
	opts.DupCacheSize = cfg.DupCacheSize
	opts.NoReusePort = cfg.NoReusePort
	opts.NoFastPath = cfg.NoFastPath
	srv := server.New(fsys, opts)
	epoch := time.Now()
	aud := check.New(func() time.Duration { return time.Since(epoch) })
	aud.SetExactlyOnce(cfg.Strict)
	srv.Tracer = aud.Tracer("server")

	pre, err := preloadFS(fsys, cfg.Files)
	if err != nil {
		return nil, err
	}
	s, err := nfsnet.Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fst := newFleetState(cfg, aud, pre)

	conns := make([]*net.UDPConn, len(fst.shards))
	for i := range fst.shards {
		c, err := net.Dial("udp", s.UDPAddr())
		if err != nil {
			for _, pc := range conns[:i] {
				pc.Close()
			}
			s.Close()
			return nil, fmt.Errorf("fleet: dial shard %d: %w", i, err)
		}
		conns[i] = c.(*net.UDPConn)
	}

	start := time.Now()
	now := func() time.Duration { return time.Since(start) }
	stopAt := cfg.Warmup + cfg.Horizon
	var closing atomic.Bool
	var sendWG, recvWG, drvWG sync.WaitGroup
	drvStop := make(chan struct{})

	for i, sh := range fst.shards {
		sh, conn := sh, conns[i]

		sendWG.Add(1)
		go func() {
			defer sendWG.Done()
			var ops []op
			var wires []op
			tick := time.Duration(wheelGran)
			for {
				if d := tick - now(); d > 0 {
					time.Sleep(d)
				}
				if tick > stopAt {
					return
				}
				// Book everything under the lock (pending entry + auditor
				// events precede the datagram, so a reply can never race
				// its own CallSent), then write outside it.
				sh.mu.Lock()
				sh.due = sh.wheel.advance(sh.due[:0])
				wires = wires[:0]
				for _, ci := range sh.due {
					ops = fst.buildOps(sh, int(ci), ops[:0])
					for _, o := range ops {
						sh.recordSend(o, tick)
						wires = append(wires, o)
					}
					sh.wheel.schedule(ci, sh.delayTicks(&sh.clients[ci]))
				}
				if sh.wheel.tick%1024 == 0 {
					sh.sweep(now() - cfg.Timeout)
				}
				sh.mu.Unlock()
				for _, o := range wires {
					b := o.wire.Bytes()
					o.wire.Free()
					for d := 0; d < o.dups; d++ {
						conn.Write(b)
					}
				}
				tick += wheelGran
			}
		}()

		recvWG.Add(1)
		go func() {
			defer recvWG.Done()
			buf := make([]byte, 65536)
			var rep rpc.Reply
			for {
				n, err := conn.Read(buf)
				if err != nil {
					if closing.Load() {
						return
					}
					continue
				}
				ch := mbuf.FromBytes(buf[:n])
				if err := rpc.DecodeReplyInto(xdr.NewDecoder(ch), &rep); err == nil {
					rpcErr := rep.Denied || rep.AcceptStat != rpc.Success
					sh.mu.Lock()
					sh.recordReply(rep.XID, now(), rpcErr)
					sh.mu.Unlock()
				}
				ch.Free()
			}
		}()
	}

	// Scenario driver: the same script the simulator interprets, on
	// wall-clock timers relative to the end of warmup.
	drvWG.Add(1)
	go func() {
		defer drvWG.Done()
		type event struct {
			at time.Duration
			fn func()
		}
		var evs []event
		sc := cfg.Scenario
		for _, rs := range sc.RateSteps {
			rs := rs
			evs = append(evs, event{cfg.Warmup + rs.At, func() { fst.setRate(rs.Mult) }})
		}
		for _, st := range sc.Storms {
			st := st
			evs = append(evs, event{cfg.Warmup + st.Start, func() { fst.setStorm(st.Dups) }})
			evs = append(evs, event{cfg.Warmup + st.End, func() { fst.setStorm(0) }})
		}
		for _, rm := range sc.Remounts {
			rm := rm
			evs = append(evs, event{cfg.Warmup + rm.At, func() { fst.remountAll(rm.Jitter) }})
		}
		for _, c := range sc.Crashes {
			c := c
			evs = append(evs, event{cfg.Warmup + time.Duration(c.Start), func() { s.SetDown(true) }})
			evs = append(evs, event{cfg.Warmup + time.Duration(c.End), func() {
				s.Crash()
				s.SetDown(false)
			}})
		}
		sort.Slice(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		for _, ev := range evs {
			d := ev.at - now()
			if d > 0 {
				select {
				case <-drvStop:
					return
				case <-time.After(d):
				}
			}
			ev.fn()
		}
	}()

	sendWG.Wait()
	// Short drain: loopback RTTs are microseconds, so anything unanswered
	// after this is genuinely lost (dropped by a crash window or shed by a
	// saturated server) and is swept as a timeout.
	time.Sleep(300 * time.Millisecond)
	close(drvStop)
	drvWG.Wait()
	closing.Store(true)
	for _, c := range conns {
		c.Close()
	}
	recvWG.Wait()
	for _, sh := range fst.shards {
		sh.mu.Lock()
		sh.sweep(time.Duration(1 << 62))
		sh.mu.Unlock()
	}
	s.Close()

	res := fst.finish("sock", aud)
	snap := srv.Metrics.Snapshot()
	for name, v := range snap.Counters {
		switch {
		case strings.HasPrefix(name, "rpc.reader.") && strings.HasSuffix(name, ".reads"):
			res.ReaderReads += v
		case strings.HasPrefix(name, "rpc.reader.") && strings.HasSuffix(name, ".fast"):
			res.ReaderFast += v
		case strings.HasPrefix(name, "rpc.nfsd.") && strings.HasSuffix(name, ".calls"):
			res.NfsdCalls += v
		}
	}
	res.FastCalls = snap.Counters["rpc.fastpath.calls"]
	res.FastFallbacks = snap.Counters["rpc.fastpath.fallbacks"]
	res.SendBatches = snap.Counters["rpc.send.batches"]
	res.SendMsgs = snap.Counters["rpc.send.batched_msgs"]
	res.PerReaderReads = make([]int64, s.Readers())
	for i := range res.PerReaderReads {
		res.PerReaderReads[i] = snap.Counters[fmt.Sprintf("rpc.reader.%d.reads", i)]
	}
	return res, nil
}
