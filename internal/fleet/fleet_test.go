package fleet

import (
	"fmt"
	"runtime"
	"testing"
	"time"
	"unsafe"

	"renonfs/internal/nfsproto"
)

// TestWheel pins the timing-wheel contract: entries fire exactly at their
// tick, delays longer than one revolution survive the intermediate
// rescans, and clear really empties everything.
func TestWheel(t *testing.T) {
	w := newWheel(8)
	w.schedule(1, 1)
	w.schedule(2, 3)
	w.schedule(3, 8+1) // one full revolution out: same slot as client 1
	var fired []uint32
	var due []uint32
	for tick := 0; tick < 12; tick++ {
		due = w.advance(due[:0])
		for _, ci := range due {
			fired = append(fired, uint32(tick)<<8|ci)
		}
	}
	want := []uint32{1<<8 | 1, 3<<8 | 2, 9<<8 | 3}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
	if w.pendingCount() != 0 {
		t.Errorf("wheel not drained: %d pending", w.pendingCount())
	}

	w.schedule(7, 2)
	w.schedule(8, 200) // stays resident across revolutions
	if w.pendingCount() != 2 {
		t.Errorf("pendingCount = %d, want 2", w.pendingCount())
	}
	w.clear()
	if w.pendingCount() != 0 {
		t.Errorf("clear left %d entries", w.pendingCount())
	}

	// Zero delay must not fire in the past (schedule clamps to 1 tick): the
	// current tick passes empty, the next one fires it.
	w.schedule(9, 0)
	if due = w.advance(due[:0]); len(due) != 0 {
		t.Errorf("zero-delay entry fired on the current tick: %v", due)
	}
	if due = w.advance(due[:0]); len(due) != 1 || due[0] != 9 {
		t.Errorf("zero-delay entry fired %v, want [9] on the next tick", due)
	}
}

// TestXIDRoundTrip: xids must be unique fleet-wide and attribute back to
// their client.
func TestXIDRoundTrip(t *testing.T) {
	sh := &shard{base: 137, clients: make([]clientState, 3)}
	seen := map[uint32]bool{}
	for ci := 0; ci < 3; ci++ {
		for k := 0; k < 4; k++ {
			xid := sh.xidOf(ci)
			if seen[xid] {
				t.Fatalf("duplicate xid %#x", xid)
			}
			seen[xid] = true
			if got := int(xid >> xidSeqBits); got != 137+ci {
				t.Errorf("xid %#x attributes to client %d, want %d", xid, got, 137+ci)
			}
		}
	}
}

// TestCompiledMix: the cumulative table must cover every procedure and
// respect rough proportions.
func TestCompiledMix(t *testing.T) {
	cm := compileMix(map[uint32]float64{
		nfsproto.ProcGetattr: 0.7, nfsproto.ProcLookup: 0.3,
	})
	counts := map[uint32]int{}
	rng := uint64(42)
	for i := 0; i < 10000; i++ {
		counts[cm.pick(randF(&rng))]++
	}
	if counts[nfsproto.ProcGetattr] < 6500 || counts[nfsproto.ProcGetattr] > 7500 {
		t.Errorf("getattr drawn %d/10000, want ~7000", counts[nfsproto.ProcGetattr])
	}
	if counts[nfsproto.ProcGetattr]+counts[nfsproto.ProcLookup] != 10000 {
		t.Errorf("draws escaped the mix: %v", counts)
	}
}

// TestSLOParse covers the flag syntax and its error cases (satellite: flag
// validation with clear errors).
func TestSLOParse(t *testing.T) {
	slo, err := ParseSLO("p50=5ms,p99=50ms,p999=250ms,timeouts=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if slo.P50 != 5*time.Millisecond || slo.P99 != 50*time.Millisecond ||
		slo.P999 != 250*time.Millisecond || slo.MaxTimeoutFrac != 0.02 {
		t.Errorf("parsed %+v", slo)
	}
	// Omitted fields keep defaults.
	slo, err = ParseSLO("p99=100ms")
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultSLO()
	if slo.P99 != 100*time.Millisecond || slo.P50 != def.P50 || slo.MaxTimeoutFrac != def.MaxTimeoutFrac {
		t.Errorf("parsed %+v, want defaults elsewhere", slo)
	}
	for _, bad := range []string{"p42=1ms", "p50", "p50=notaduration", "timeouts=x"} {
		if _, err := ParseSLO(bad); err == nil {
			t.Errorf("ParseSLO(%q) accepted", bad)
		}
	}

	r := &Result{P50: 10, P99: 600, P999: 900, WSent: 1000, WTimeouts: 50}
	fails := DefaultSLO().Check(r)
	if len(fails) != 2 { // p99 600ms > 500ms, timeouts 0.05 > 0.01
		t.Errorf("Check = %v, want p99 + timeout clauses", fails)
	}
}

// TestParseKind: every generated name round-trips; junk is rejected.
func TestParseKind(t *testing.T) {
	for _, name := range Kinds() {
		k, err := ParseKind(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Errorf("round trip %q -> %v", name, k)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("ParseKind accepted junk")
	}
}

// TestClientStateFootprint pins the compact-state claim: 10k mounts must
// cost well under 1 KB each (the states themselves are 16 bytes; the rest
// is shard fixtures — wheel slots, pending maps, histograms).
func TestClientStateFootprint(t *testing.T) {
	if s := unsafe.Sizeof(clientState{}); s != 16 {
		t.Errorf("clientState is %d bytes, want 16", s)
	}
	const clients = 10000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	fst := newFleetState(Config{Seed: 1, Clients: clients, Shards: 8,
		OfferedRPS: 1000, Horizon: 10 * time.Second}.withDefaults(), nil, &preload{})
	runtime.GC()
	runtime.ReadMemStats(&after)
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	perClient := grew / clients
	t.Logf("fleet state: %d KB total, %d B/client", grew/1024, perClient)
	if perClient > 1024 {
		t.Errorf("fleet state costs %d B/client, want < 1 KB", perClient)
	}
	total := 0
	for _, sh := range fst.shards {
		total += len(sh.clients)
		if sh.wheel.pendingCount() != len(sh.clients) {
			t.Errorf("shard %d: %d armed, want %d", sh.id, sh.wheel.pendingCount(), len(sh.clients))
		}
	}
	if total != clients {
		t.Errorf("shards hold %d clients, want %d", total, clients)
	}
	runtime.KeepAlive(fst)
}

// TestSimSteady is the smoke run: conservation exact, no auditor
// violations, sane percentiles, achieved rate near offered.
func TestSimSteady(t *testing.T) {
	r, err := RunSim(Config{Seed: 1, Clients: 500, Shards: 4, OfferedRPS: 400,
		Warmup: 500 * time.Millisecond, Horizon: 2 * time.Second,
		Timeout: 2 * time.Second, Strict: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sent=%d replies=%d timeouts=%d late=%d p50=%.2fms p99=%.2fms achieved=%.0f goodput=%.0f",
		r.Sent, r.Replies, r.Timeouts, r.Late, r.P50, r.P99, r.AchievedRPS, r.GoodputRPS)
	if r.Sent != r.Replies+r.Timeouts {
		t.Errorf("conservation: sent=%d != replies=%d + timeouts=%d", r.Sent, r.Replies, r.Timeouts)
	}
	if len(r.Violations) != 0 {
		t.Errorf("%d auditor violations; first: %v", len(r.Violations), r.Violations[0])
	}
	// Open loop: the rig must generate the offered load regardless of the
	// server (within sampling noise of the exponential draws).
	if r.AchievedRPS < 0.85*r.Offered || r.AchievedRPS > 1.15*r.Offered {
		t.Errorf("achieved %.0f rps, offered %.0f — open-loop pacing broken", r.AchievedRPS, r.Offered)
	}
	if r.P50 <= 0 || r.P99 < r.P50 || r.P999 < r.P99 {
		t.Errorf("percentiles not monotone: p50=%.2f p99=%.2f p999=%.2f", r.P50, r.P99, r.P999)
	}
	if r.AuditCounts["event.call_sent"] == 0 || r.AuditCounts["event.server_call"] == 0 {
		t.Errorf("auditor saw no traffic: %v", r.AuditCounts)
	}
}

// TestSimWarmupExcluded: window counters must only cover calls *scheduled*
// inside [Warmup, Warmup+Horizon).
func TestSimWarmupExcluded(t *testing.T) {
	r, err := RunSim(Config{Seed: 5, Clients: 200, Shards: 2, OfferedRPS: 300,
		Warmup: time.Second, Horizon: time.Second, Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if r.WSent >= r.Sent {
		t.Errorf("window sends %d not a strict subset of total %d (warmup leaked in)", r.WSent, r.Sent)
	}
	// ~Half the run is warmup at constant rate; the window share should be
	// near half, never all.
	frac := float64(r.WSent) / float64(r.Sent)
	if frac < 0.3 || frac > 0.7 {
		t.Errorf("window holds %.0f%% of sends, want ~50%%", 100*frac)
	}
	if int64(r.Hist.Count) > r.WReplies {
		t.Errorf("histogram %d observations > %d window replies", r.Hist.Count, r.WReplies)
	}
}

// TestSimScenarios runs every hostile script end-to-end in the simulator
// under the strict exactly-once auditor.
func TestSimScenarios(t *testing.T) {
	for _, kind := range []Kind{FlashCrowd, RemountHerd, RetransmitStorm, MixedTenants, Stragglers} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			sc := GenerateScenario(kind, 7, 3*time.Second)
			r, err := RunSim(Config{Seed: 7, Clients: 400, Shards: 4, OfferedRPS: 400,
				Warmup: 500 * time.Millisecond, Horizon: 3 * time.Second,
				Timeout: 2 * time.Second, Scenario: sc, Strict: true})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("sent=%d replies=%d timeouts=%d late=%d mounts=%d p50=%.1f p99=%.1f fp=%s",
				r.Sent, r.Replies, r.Timeouts, r.Late, r.Mounts, r.P50, r.P99, r.Fingerprint())
			if r.Sent != r.Replies+r.Timeouts {
				t.Errorf("conservation: sent=%d replies=%d timeouts=%d", r.Sent, r.Replies, r.Timeouts)
			}
			if len(r.Violations) != 0 {
				t.Errorf("%d violations; first: %v", len(r.Violations), r.Violations[0])
			}
			switch kind {
			case RemountHerd:
				if r.Mounts != 400 {
					t.Errorf("herd produced %d MNT calls, want one per client (400)", r.Mounts)
				}
				if r.AuditCounts["event.server_crash"] == 0 {
					t.Error("no server crash recorded — the reboot script did not run")
				}
			case RetransmitStorm:
				if r.AuditCounts["event.retransmit"] == 0 {
					t.Error("storm produced no retransmissions")
				}
				if r.AuditCounts["event.dup_hit"] == 0 {
					t.Error("storm retransmits never hit the dupcache")
				}
			case Stragglers:
				if r.P999 < 500 {
					t.Errorf("p999 %.1fms too fast for 56 Kbit/s stragglers", r.P999)
				}
			}
		})
	}
}

// TestFlashCrowdRaisesLoad: the rate steps must visibly raise the achieved
// send rate over the steady baseline. Per-client rate is kept high (3/s)
// so the rate change — which takes effect on each client's next
// interarrival draw — propagates quickly relative to the horizon.
func TestFlashCrowdRaisesLoad(t *testing.T) {
	base, err := RunSim(Config{Seed: 11, Clients: 200, Shards: 4, OfferedRPS: 600,
		Horizon: 3 * time.Second, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := RunSim(Config{Seed: 11, Clients: 200, Shards: 4, OfferedRPS: 600,
		Horizon: 3 * time.Second, Timeout: 2 * time.Second,
		Scenario: GenerateScenario(FlashCrowd, 11, 3*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if crowd.AchievedRPS < 1.5*base.AchievedRPS {
		t.Errorf("flash crowd achieved %.0f rps vs steady %.0f — rate steps had no effect",
			crowd.AchievedRPS, base.AchievedRPS)
	}
}

func BenchmarkWheelAdvance(b *testing.B) {
	w := newWheel(wheelSlots)
	for i := 0; i < 10000; i++ {
		w.schedule(uint32(i), uint32(1+i%4096))
	}
	var due []uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		due = w.advance(due[:0])
		for _, ci := range due {
			w.schedule(ci, uint32(1+int(ci)%4096))
		}
	}
}

func ExampleParseSLO() {
	slo, _ := ParseSLO("p99=100ms")
	fmt.Println(slo.P99)
	// Output: 100ms
}
