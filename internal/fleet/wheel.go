package fleet

// A hashed timing wheel schedules every client of one shard with O(1)
// insert and no goroutine or heap node per client — the structure that
// lets 10k mounts fit in a handful of slot slices. Each slot holds the
// clients whose next send lands on that tick modulo the wheel size;
// entries carry their absolute due tick, so delays longer than one
// revolution just stay in the slot until their tick comes around (they are
// rescanned once per revolution, which at 4096 x 1 ms slots means once
// every ~4 s — noise).
type wheelEntry struct {
	idx  uint32 // shard-local client index
	tick uint32 // absolute due tick
}

type wheel struct {
	slots [][]wheelEntry
	tick  uint32 // next tick to fire
}

func newWheel(slots int) *wheel {
	return &wheel{slots: make([][]wheelEntry, slots)}
}

// schedule arms client idx to fire delayTicks from the current tick (at
// least one tick out, so a zero delay cannot fire in the past).
func (w *wheel) schedule(idx uint32, delayTicks uint32) {
	if delayTicks == 0 {
		delayTicks = 1
	}
	due := w.tick + delayTicks
	s := int(due) % len(w.slots)
	w.slots[s] = append(w.slots[s], wheelEntry{idx: idx, tick: due})
}

// advance collects the clients due at the current tick into due (reused
// across calls to stay allocation-free) and moves the wheel forward one
// tick. Entries from later revolutions are compacted in place.
func (w *wheel) advance(due []uint32) []uint32 {
	s := int(w.tick) % len(w.slots)
	slot := w.slots[s]
	keep := slot[:0]
	for _, e := range slot {
		if e.tick == w.tick {
			due = append(due, e.idx)
		} else {
			keep = append(keep, e)
		}
	}
	w.slots[s] = keep
	w.tick++
	return due
}

// clear empties every slot (the remount herd reschedules the whole shard).
func (w *wheel) clear() {
	for i := range w.slots {
		w.slots[i] = w.slots[i][:0]
	}
}

// pendingCount reports how many clients are armed (tests).
func (w *wheel) pendingCount() int {
	n := 0
	for _, s := range w.slots {
		n += len(s)
	}
	return n
}
