package fleet

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"renonfs/internal/faultplan"
	"renonfs/internal/sim"
)

// A Scenario is a deterministic script of hostile events laid over the
// steady open-loop load: rate multipliers (flash crowds), server crash
// windows, remount herds, retransmit-storm windows, tenant blends and WAN
// straggler placement. Like a faultplan.Schedule it is pure data derived
// from (kind, seed, horizon) — the engines interpret it, so the same
// scenario replays identically in the simulator and describes the same
// wall-clock script over real sockets. All times are relative to the start
// of the measurement window (the engines add their warmup offset).
type Scenario struct {
	Kind    Kind
	Seed    int64
	Horizon time.Duration

	// RateSteps multiply the configured offered load from At onward.
	RateSteps []RateStep
	// Crashes are server outage windows (applied via internal/faultplan in
	// the simulator, SetDown/Crash over real sockets).
	Crashes []faultplan.Crash
	// Remounts: at At, every client forgets its mount and re-issues
	// MNT+LOOKUP within Jitter — the thundering herd after a reboot.
	Remounts []Remount
	// Storms: within each window every non-idempotent send is duplicated
	// Dups times back-to-back (aggressive retransmission against the
	// dupcache) and the mix is biased toward CREATE/REMOVE churn.
	Storms []Storm
	// WANPerMille is the fraction of shards (in 1/1000) placed behind the
	// 56 Kbit/s serial hop; those clients run a header-only LOOKUP/GETATTR
	// mix at the configured rate, contending for the shared router.
	WANPerMille int
	// TenantWeights blends client populations: nhfsstone FullMix, Andrew,
	// create-delete. Zero value means all-nhfsstone.
	TenantWeights [3]int
}

// RateStep multiplies the offered load from At onward.
type RateStep struct {
	At   time.Duration
	Mult float64
}

// Remount is a thundering-herd remount event.
type Remount struct {
	At     time.Duration
	Jitter time.Duration
}

// Storm is a retransmission-storm window.
type Storm struct {
	Start, End time.Duration
	Dups       int
}

// Kind names a scenario script.
type Kind int

const (
	Steady Kind = iota
	FlashCrowd
	RemountHerd
	RetransmitStorm
	MixedTenants
	Stragglers
)

var kindNames = map[Kind]string{
	Steady:          "steady",
	FlashCrowd:      "flashcrowd",
	RemountHerd:     "remountherd",
	RetransmitStorm: "retransmitstorm",
	MixedTenants:    "mixedtenants",
	Stragglers:      "stragglers",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a scenario name from the command line.
func ParseKind(name string) (Kind, error) {
	for k, n := range kindNames {
		if n == name {
			return k, nil
		}
	}
	known := Kinds()
	return 0, fmt.Errorf("unknown scenario %q (known: %s)", name, strings.Join(known, ", "))
}

// Kinds lists the scenario names, sorted.
func Kinds() []string {
	out := make([]string, 0, len(kindNames))
	for _, n := range kindNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GenerateScenario derives a scenario from (kind, seed, horizon). It has
// its own RNG, so the script depends on nothing but its inputs — the
// determinism contract the fingerprint test pins (mirroring
// faultplan.Generate).
func GenerateScenario(kind Kind, seed int64, horizon time.Duration) *Scenario {
	if horizon <= 0 {
		horizon = 10 * time.Second
	}
	rng := rand.New(rand.NewSource(seed))
	s := &Scenario{Kind: kind, Seed: seed, Horizon: horizon,
		TenantWeights: [3]int{1, 0, 0}}
	frac := func(num, den int64) time.Duration {
		return horizon * time.Duration(num) / time.Duration(den)
	}
	switch kind {
	case Steady:
	case FlashCrowd:
		// The crowd arrives in steps to peakx the base load, then leaves.
		peak := float64(4 + rng.Intn(4)) // 4..7x
		s.RateSteps = []RateStep{
			{At: frac(20, 100), Mult: 2},
			{At: frac(35, 100), Mult: peak / 2},
			{At: frac(50, 100), Mult: peak},
			{At: frac(75, 100), Mult: 1},
		}
	case RemountHerd:
		// Crash, reboot, then every mount comes back at once. The herd's
		// first ops are retransmitted x3 (clients that just timed out
		// through a dead server retransmit aggressively), which is the
		// dupcache's cross-reader worst case.
		down := frac(20, 100)
		up := down + frac(10, 100)
		jitter := 200*time.Millisecond + time.Duration(rng.Int63n(int64(300*time.Millisecond)))
		if jitter > horizon/10 {
			jitter = horizon / 10
		}
		s.Crashes = []faultplan.Crash{{Start: sim.Time(down), End: sim.Time(up)}}
		s.Remounts = []Remount{{At: up + 50*time.Millisecond, Jitter: jitter}}
		s.Storms = []Storm{{Start: up, End: up + jitter + frac(10, 100), Dups: 3}}
	case RetransmitStorm:
		// A sustained window where non-idempotent ops are fired in
		// duplicate bursts and the mix tilts to CREATE/REMOVE churn.
		s.Storms = []Storm{{
			Start: frac(30, 100), End: frac(70, 100),
			Dups: 2 + rng.Intn(3), // 2..4 copies
		}}
		s.TenantWeights = [3]int{2, 1, 7}
	case MixedTenants:
		s.TenantWeights = [3]int{5, 3, 2}
	case Stragglers:
		s.WANPerMille = 250
	default:
		panic("fleet: unknown scenario kind")
	}
	return s
}

// String renders the scenario compactly — the replay key a failing SLO run
// prints, and the input to Fingerprint.
func (s *Scenario) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fleet seed=%d kind=%s horizon=%s", s.Seed, s.Kind, s.Horizon)
	for _, r := range s.RateSteps {
		fmt.Fprintf(&b, " rate@%s=%.2fx", r.At, r.Mult)
	}
	for _, c := range s.Crashes {
		fmt.Fprintf(&b, " crash[%s,%s]", time.Duration(c.Start), time.Duration(c.End))
	}
	for _, r := range s.Remounts {
		fmt.Fprintf(&b, " remount@%s±%s", r.At, r.Jitter)
	}
	for _, st := range s.Storms {
		fmt.Fprintf(&b, " storm[%s,%s]x%d", st.Start, st.End, st.Dups)
	}
	if s.WANPerMille > 0 {
		fmt.Fprintf(&b, " wan=%d/1000", s.WANPerMille)
	}
	fmt.Fprintf(&b, " tenants=%d/%d/%d",
		s.TenantWeights[0], s.TenantWeights[1], s.TenantWeights[2])
	return b.String()
}

// Fingerprint hashes the rendered schedule; two runs with the same seed
// must produce the same value (the determinism test's contract), so a
// failing run can be replayed exactly from its printed seed.
func (s *Scenario) Fingerprint() string {
	sum := sha256.Sum256([]byte(s.String()))
	return hex.EncodeToString(sum[:8])
}
