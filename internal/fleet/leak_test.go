package fleet

import (
	"os"
	"runtime"
	"testing"
	"time"
)

func countFDs(t *testing.T) (int, bool) {
	t.Helper()
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false // not Linux; goroutine check still runs
	}
	return len(ents), true
}

// TestFleetShutdownNoLeaks runs the two engines concurrently — a
// 10k-simulated-client fleet and a 4-reader real-socket fleet whose
// scenario crashes and reboots the server mid-run — then checks that
// teardown returned the process to its baseline: no leaked goroutines, no
// leaked file descriptors, and the frontend's drain counters equal (every
// datagram read was dispatched). Run under -race in CI.
func TestFleetShutdownNoLeaks(t *testing.T) {
	baseGo := runtime.NumGoroutine()
	baseFD, haveFD := countFDs(t)

	horizon := 2 * time.Second
	simCfg := Config{Seed: 21, Clients: 10000, Shards: 8, OfferedRPS: 1500,
		Warmup: 300 * time.Millisecond, Horizon: horizon, Timeout: time.Second}
	sockCfg := Config{Seed: 22, Clients: 1000, Shards: 8, OfferedRPS: 800,
		Warmup: 300 * time.Millisecond, Horizon: horizon, Timeout: time.Second,
		Readers: 4, Strict: true,
		Scenario: GenerateScenario(RemountHerd, 22, horizon)}

	type out struct {
		r   *Result
		err error
	}
	simCh := make(chan out, 1)
	sockCh := make(chan out, 1)
	go func() {
		r, err := RunSim(simCfg)
		simCh <- out{r, err}
	}()
	go func() {
		r, err := RunSock(sockCfg)
		sockCh <- out{r, err}
	}()
	simOut, sockOut := <-simCh, <-sockCh
	if simOut.err != nil {
		t.Fatalf("sim: %v", simOut.err)
	}
	if sockOut.err != nil {
		t.Fatalf("sock: %v", sockOut.err)
	}

	for name, r := range map[string]*Result{"sim": simOut.r, "sock": sockOut.r} {
		t.Logf("%s: sent=%d replies=%d timeouts=%d late=%d p50=%.2fms p99=%.2fms viol=%d",
			name, r.Sent, r.Replies, r.Timeouts, r.Late, r.P50, r.P99, len(r.Violations))
		if r.Sent != r.Replies+r.Timeouts {
			t.Errorf("%s: conservation broken: sent=%d replies=%d timeouts=%d",
				name, r.Sent, r.Replies, r.Timeouts)
		}
		if len(r.Violations) != 0 {
			t.Errorf("%s: %d auditor violations; first: %v", name, len(r.Violations), r.Violations[0])
		}
	}
	if simOut.r.Clients != 10000 {
		t.Errorf("sim fleet held %d clients, want 10000", simOut.r.Clients)
	}
	// Drain equality: everything read was either serviced inline on its
	// reader (shallow path) or dispatched to a worker before Close returned
	// (the crash window drops datagrams *after* the read counter, where the
	// fast counter also books them, so the equality survives the reboot).
	if sockOut.r.ReaderReads != sockOut.r.NfsdCalls+sockOut.r.ReaderFast {
		t.Errorf("drain counters diverge: readers read %d, nfsds dispatched %d, fast-serviced %d",
			sockOut.r.ReaderReads, sockOut.r.NfsdCalls, sockOut.r.ReaderFast)
	}
	if sockOut.r.ReaderReads == 0 {
		t.Error("reader counters never advanced")
	}

	// Both engines tear everything down synchronously, but GC finalizers
	// and netpoller bookkeeping lag; poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		goN := runtime.NumGoroutine()
		fdN, _ := countFDs(t)
		if goN <= baseGo && (!haveFD || fdN <= baseFD) {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("leak: goroutines %d -> %d, fds %d -> %d\n%s",
				baseGo, goN, baseFD, fdN, buf[:n])
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}
