package netsim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/sim"
)

func TestTracerSeesLookupExchange(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	nt := New(env)
	a := nt.AddNode(NodeConfig{Name: "a"})
	b := nt.AddNode(NodeConfig{Name: "b"})
	nt.Connect(a, b, quietEthernet("eth"))
	nt.ComputeRoutes()
	var tr CollectTracer
	nt.SetTracer(&tr)

	sa := a.UDPSocket(1001)
	sb := b.UDPSocket(2049)
	env.Spawn("server", func(p *sim.Proc) {
		if dg, ok := sb.Recv(p); ok {
			sb.Send(p, dg.Src, dg.SrcPort, mbuf.FromBytes([]byte("reply")))
		}
	})
	env.Spawn("client", func(p *sim.Proc) {
		sa.Send(p, b.ID, 2049, mbuf.FromBytes([]byte("request")))
		sa.Recv(p)
	})
	env.RunAll()

	// Expect send(a), recv(b), send(b), recv(a) in order.
	var kinds []string
	for _, ev := range tr.Events {
		kinds = append(kinds, ev.Where+":"+ev.Kind.String())
	}
	want := []string{"a:send", "b:recv", "b:send", "a:recv"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
	// Timestamps are nondecreasing.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].At < tr.Events[i-1].At {
			t.Fatal("trace times not monotone")
		}
	}
}

func TestTracerForwardAndFragments(t *testing.T) {
	env := sim.New(2)
	defer env.Close()
	tb := Build(env, TopoRing, NodeConfig{}, NodeConfig{})
	var tr CollectTracer
	tb.Net.SetTracer(&tr)
	sc := tb.Client.UDPSocket(1001)
	ss := tb.Server.UDPSocket(2049)
	env.Spawn("rx", func(p *sim.Proc) { ss.Recv(p) })
	env.Spawn("tx", func(p *sim.Proc) {
		sc.Send(p, tb.Server.ID, 2049, mbuf.FromBytes(make([]byte, 8192)))
	})
	env.Run(10 * time.Second)

	sends, fwds, recvs, frags := 0, 0, 0, 0
	for _, ev := range tr.Events {
		switch ev.Kind {
		case TraceSend:
			sends++
		case TraceFwd:
			fwds++
		case TraceRecv:
			recvs++
		}
		if ev.FragOff > 0 {
			frags++
		}
	}
	if sends != 6 { // 8K datagram = 6 fragments on the Ethernet
		t.Fatalf("sends = %d, want 6", sends)
	}
	if fwds < 12 { // two routers forward each fragment
		t.Fatalf("forwards = %d, want >= 12", fwds)
	}
	if recvs != 6 || frags == 0 {
		t.Fatalf("recvs=%d frags=%d", recvs, frags)
	}
}

func TestWriterTracerFormat(t *testing.T) {
	var buf bytes.Buffer
	wt := WriterTracer{W: &buf}
	wt.Packet(TraceEvent{
		At: 1500 * time.Millisecond, Where: "eth0", Kind: TraceLoss,
		Proto: ProtoUDP, Src: 0, SPort: 1001, Dst: 1, DPort: 2049,
		FragOff: 2960, FragLen: 1480, More: true, DgramID: 42,
	})
	line := buf.String()
	for _, want := range []string{"1.500000", "eth0", "loss", "udp", "0:1001 > 1:2049", "frag@2960+"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}
