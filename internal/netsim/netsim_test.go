package netsim

import (
	"bytes"
	"testing"
	"time"

	"renonfs/internal/mbuf"
	"renonfs/internal/sim"
)

const (
	ms = time.Millisecond
	us = time.Microsecond
)

func quietEthernet(name string) LinkConfig {
	cfg := Ethernet(name)
	cfg.LossProb = 0
	cfg.BgUtil = 0
	return cfg
}

// pair builds a clean two-node Ethernet for deterministic tests.
func pair(t *testing.T, seed int64) (*sim.Env, *Node, *Node) {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	nt := New(env)
	a := nt.AddNode(NodeConfig{Name: "a"})
	b := nt.AddNode(NodeConfig{Name: "b"})
	nt.Connect(a, b, quietEthernet("eth"))
	nt.ComputeRoutes()
	return env, a, b
}

func TestUDPRoundTrip(t *testing.T) {
	env, a, b := pair(t, 1)
	sa := a.UDPSocket(1001)
	sb := b.UDPSocket(2049)
	msg := []byte("lookup request")
	var echoed []byte
	env.Spawn("server", func(p *sim.Proc) {
		dg, ok := sb.Recv(p)
		if !ok {
			return
		}
		sb.Send(p, dg.Src, dg.SrcPort, mbuf.FromBytes(append(dg.Payload.Bytes(), '!')))
	})
	env.Spawn("client", func(p *sim.Proc) {
		sa.Send(p, b.ID, 2049, mbuf.FromBytes(msg))
		dg, ok := sa.Recv(p)
		if ok {
			echoed = dg.Payload.Bytes()
		}
	})
	env.RunAll()
	if string(echoed) != "lookup request!" {
		t.Fatalf("echoed = %q", echoed)
	}
	if a.Stats.DgramsOut != 1 || a.Stats.DgramsIn != 1 {
		t.Fatalf("client stats: %+v", a.Stats)
	}
}

func TestFragmentationCounts(t *testing.T) {
	env, a, b := pair(t, 1)
	sa := a.UDPSocket(1001)
	sb := b.UDPSocket(2049)
	payload := bytes.Repeat([]byte{7}, 8192)
	var got []byte
	env.Spawn("rx", func(p *sim.Proc) {
		if dg, ok := sb.Recv(p); ok {
			got = dg.Payload.Bytes()
		}
	})
	env.Spawn("tx", func(p *sim.Proc) {
		sa.Send(p, b.ID, 2049, mbuf.FromBytes(payload))
	})
	env.RunAll()
	if !bytes.Equal(got, payload) {
		t.Fatal("8K payload corrupted")
	}
	// 8192 bytes at 1500-byte MTU: 6 fragments, like the paper says.
	if a.Stats.PktsOut != 6 {
		t.Fatalf("PktsOut = %d, want 6", a.Stats.PktsOut)
	}
}

func TestLostFragmentLosesDatagram(t *testing.T) {
	env := sim.New(3)
	defer env.Close()
	nt := New(env)
	a := nt.AddNode(NodeConfig{Name: "a"})
	b := nt.AddNode(NodeConfig{Name: "b"})
	cfg := quietEthernet("lossy")
	cfg.LossProb = 0.3 // with 6 fragments, most datagrams lose at least one
	nt.Connect(a, b, cfg)
	nt.ComputeRoutes()
	sa := a.UDPSocket(1001)
	sb := b.UDPSocket(2049)
	delivered := 0
	env.Spawn("rx", func(p *sim.Proc) {
		for {
			if _, ok := sb.Recv(p); !ok {
				return
			}
			delivered++
		}
	})
	const sent = 50
	env.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < sent; i++ {
			sa.Send(p, b.ID, 2049, mbuf.FromBytes(bytes.Repeat([]byte{1}, 8192)))
			p.Sleep(50 * ms)
		}
	})
	env.Run(5 * time.Second)
	// P(all 6 fragments survive) = 0.7^6 ~ 12%; allow slack but require
	// substantial datagram-level loss amplification.
	if delivered >= sent/2 {
		t.Fatalf("delivered %d/%d; fragmentation should amplify loss", delivered, sent)
	}
	if delivered == 0 {
		t.Fatal("nothing delivered at all")
	}
}

func TestRoutingAcrossTopologies(t *testing.T) {
	for _, topo := range []Topology{TopoLAN, TopoRing, TopoSlow} {
		env := sim.New(7)
		tb := Build(env, topo, NodeConfig{}, NodeConfig{})
		sc := tb.Client.UDPSocket(1001)
		ss := tb.Server.UDPSocket(2049)
		var got []byte
		env.Spawn("rx", func(p *sim.Proc) {
			if dg, ok := ss.Recv(p); ok {
				got = dg.Payload.Bytes()
			}
		})
		env.Spawn("tx", func(p *sim.Proc) {
			sc.Send(p, tb.Server.ID, 2049, mbuf.FromBytes([]byte("ping")))
		})
		env.Run(30 * time.Second)
		if string(got) != "ping" {
			t.Fatalf("%v: got %q", topo, got)
		}
		if topo != TopoLAN {
			fwd := 0
			for _, r := range tb.Routers {
				fwd += r.Stats.Forwarded
			}
			if fwd == 0 {
				t.Fatalf("%v: no router forwarded anything", topo)
			}
		}
		env.Close()
	}
}

func TestPathMTU(t *testing.T) {
	env := sim.New(1)
	defer env.Close()
	tb := Build(env, TopoSlow, NodeConfig{}, NodeConfig{})
	mtu := tb.Net.PathMTU(tb.Client.ID, tb.Server.ID)
	want := 1006 + etherIPHeader
	if mtu != want {
		t.Fatalf("PathMTU = %d, want %d (the serial line)", mtu, want)
	}
	env2 := sim.New(1)
	defer env2.Close()
	tb2 := Build(env2, TopoLAN, NodeConfig{}, NodeConfig{})
	if got := tb2.Net.PathMTU(tb2.Client.ID, tb2.Server.ID); got != 1500+etherIPHeader {
		t.Fatalf("LAN PathMTU = %d", got)
	}
}

func TestSerialLineSlowness(t *testing.T) {
	// A 1006-byte frame at 56 Kbit/s takes ~150 ms to serialize; verify the
	// end-to-end latency over TopoSlow reflects the slow hop.
	env := sim.New(1)
	defer env.Close()
	tb := Build(env, TopoSlow, NodeConfig{}, NodeConfig{})
	sc := tb.Client.UDPSocket(1001)
	ss := tb.Server.UDPSocket(2049)
	var arrival sim.Time
	env.Spawn("rx", func(p *sim.Proc) {
		if _, ok := ss.Recv(p); ok {
			arrival = p.Now()
		}
	})
	env.Spawn("tx", func(p *sim.Proc) {
		sc.Send(p, tb.Server.ID, 2049, mbuf.FromBytes(bytes.Repeat([]byte{1}, 900)))
	})
	env.Run(30 * time.Second)
	if arrival == 0 {
		t.Fatal("never arrived")
	}
	if arrival < 120*ms {
		t.Fatalf("arrival at %v; 56K serialization should dominate", arrival)
	}
}

func TestCPUChargingAndProfile(t *testing.T) {
	env, a, b := pair(t, 1)
	sa := a.UDPSocket(1001)
	_ = b.UDPSocket(2049)
	env.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			sa.Send(p, b.ID, 2049, mbuf.FromBytes(bytes.Repeat([]byte{1}, 8192)))
		}
	})
	env.RunAll()
	prof := a.Profile()
	if len(prof) == 0 {
		t.Fatal("no profile buckets")
	}
	buckets := map[string]sim.Time{}
	for _, pb := range prof {
		buckets[pb.Name] = pb.Time
	}
	for _, want := range []string{"nic_copy", "nic_drv", "checksum", "ip", "udp", "tx_intr"} {
		if buckets[want] == 0 {
			t.Errorf("bucket %q empty (profile: %v)", want, prof)
		}
	}
	// nic_copy should be the largest single bucket pre-tuning (§3).
	if prof[0].Name != "nic_copy" {
		t.Errorf("top bucket = %s, want nic_copy", prof[0].Name)
	}
	if a.CPU.BusyTime() == 0 {
		t.Fatal("CPU busy time not accounted")
	}
}

func TestPageRemapReducesCopyCost(t *testing.T) {
	run := func(remap, noIntr bool) sim.Time {
		env := sim.New(5)
		defer env.Close()
		nt := New(env)
		a := nt.AddNode(NodeConfig{Name: "a", PageRemapTx: remap, NoTxInterrupts: noIntr})
		b := nt.AddNode(NodeConfig{Name: "b"})
		nt.Connect(a, b, quietEthernet("eth"))
		nt.ComputeRoutes()
		sa := a.UDPSocket(1001)
		_ = b.UDPSocket(2049)
		env.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				sa.Send(p, b.ID, 2049, mbuf.FromBytes(bytes.Repeat([]byte{1}, 8192)))
			}
		})
		env.RunAll()
		return a.CPU.BusyTime()
	}
	base := run(false, false)
	tuned := run(true, true)
	if tuned >= base {
		t.Fatalf("tuned CPU %v >= baseline %v", tuned, base)
	}
	saving := float64(base-tuned) / float64(base)
	// §3 reports ~12% total CPU saving under a read mix; the pure-send path
	// here should save at least that much.
	if saving < 0.10 {
		t.Fatalf("saving = %.1f%%, want >= 10%%", saving*100)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	env := sim.New(9)
	defer env.Close()
	nt := New(env)
	a := nt.AddNode(NodeConfig{Name: "a"})
	b := nt.AddNode(NodeConfig{Name: "b"})
	cfg := quietEthernet("eth")
	cfg.QueueLen = 2
	cfg.BitsPerSec = 56_000 // slow drain
	nt.Connect(a, b, cfg)
	nt.ComputeRoutes()
	sa := a.UDPSocket(1001)
	_ = b.UDPSocket(2049)
	env.Spawn("tx", func(p *sim.Proc) {
		// One 8K datagram = 6 fragments into a 2-deep queue.
		sa.Send(p, b.ID, 2049, mbuf.FromBytes(bytes.Repeat([]byte{1}, 8192)))
	})
	env.RunAll()
	if a.peer[b.ID].Stat.QueueDrops == 0 {
		t.Fatal("expected drop-tail losses")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() (int, sim.Time) {
		env := sim.New(123)
		defer env.Close()
		tb := Build(env, TopoRing, NodeConfig{}, NodeConfig{})
		sc := tb.Client.UDPSocket(1001)
		ss := tb.Server.UDPSocket(2049)
		delivered := 0
		env.Spawn("rx", func(p *sim.Proc) {
			for {
				if _, ok := ss.Recv(p); !ok {
					return
				}
				delivered++
			}
		})
		env.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 40; i++ {
				sc.Send(p, tb.Server.ID, 2049, mbuf.FromBytes(bytes.Repeat([]byte{1}, 4096)))
				p.Sleep(20 * ms)
			}
		})
		end := env.Run(5 * time.Second)
		return delivered, end
	}
	d1, e1 := run()
	d2, e2 := run()
	if d1 != d2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%d,%v) vs (%d,%v)", d1, e1, d2, e2)
	}
	if d1 == 0 {
		t.Fatal("nothing delivered")
	}
}

func TestBindCollisionPanics(t *testing.T) {
	env, a, _ := pair(t, 1)
	_ = env
	a.UDPSocket(2049)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate bind")
		}
	}()
	a.UDPSocket(2049)
}

func TestCostScalesWithMIPS(t *testing.T) {
	slow := DefaultModel(MIPSMicroVAXII)
	fast := DefaultModel(MIPSDS3100)
	if slow.Cost(1000) <= fast.Cost(1000) {
		t.Fatal("faster CPU should have lower cost")
	}
	ratio := float64(slow.Cost(1000)) / float64(fast.Cost(1000))
	want := MIPSDS3100 / MIPSMicroVAXII
	if ratio < want*0.99 || ratio > want*1.01 {
		t.Fatalf("ratio = %v, want %v", ratio, want)
	}
	got := slow.CostBytes(1.0, 8192)
	usPerByte := float64(time.Microsecond) / 0.9
	wantd := sim.Time(8192 * usPerByte)
	if got != wantd {
		t.Fatalf("CostBytes = %v, want %v", got, wantd)
	}
}
