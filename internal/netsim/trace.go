package netsim

import (
	"fmt"
	"io"

	"renonfs/internal/metrics"
	"renonfs/internal/sim"
)

// TraceKind classifies a packet trace event.
type TraceKind int

// Trace event kinds.
const (
	TraceSend  TraceKind = iota // host transmitted a fragment
	TraceRecv                   // host received a fragment for itself
	TraceFwd                    // router forwarded a fragment
	TraceLoss                   // link dropped the frame (random loss)
	TraceQDrop                  // link queue overflowed (drop tail)
)

func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceRecv:
		return "recv"
	case TraceFwd:
		return "fwd"
	case TraceLoss:
		return "loss"
	case TraceQDrop:
		return "qdrop"
	default:
		return "?"
	}
}

// TraceEvent describes one packet-level occurrence, tcpdump-style.
type TraceEvent struct {
	At    sim.Time
	Where string // node or link name
	Kind  TraceKind
	Proto uint8
	Src   NodeID
	SPort int
	Dst   NodeID
	DPort int
	// Fragment geometry within the datagram.
	FragOff, FragLen int
	More             bool
	DgramID          uint32
}

// String renders the event as one tcpdump-like line.
func (ev TraceEvent) String() string {
	proto := "udp"
	if ev.Proto == ProtoTCP {
		proto = "tcp"
	}
	frag := ""
	if ev.FragOff > 0 || ev.More {
		frag = fmt.Sprintf(" frag@%d%s", ev.FragOff, map[bool]string{true: "+", false: ""}[ev.More])
	}
	return fmt.Sprintf("%12.6f %-8s %-5s %s %d:%d > %d:%d len %d id %d%s",
		float64(ev.At)/1e9, ev.Where, ev.Kind, proto,
		ev.Src, ev.SPort, ev.Dst, ev.DPort, ev.FragLen, ev.DgramID, frag)
}

// Tracer receives packet events. Implementations must not block on
// simulation primitives.
type Tracer interface {
	Packet(ev TraceEvent)
}

// WriterTracer prints each event as a line to W.
type WriterTracer struct{ W io.Writer }

// Packet implements Tracer.
func (t WriterTracer) Packet(ev TraceEvent) { fmt.Fprintln(t.W, ev.String()) }

// CollectTracer accumulates events in memory (tests).
type CollectTracer struct{ Events []TraceEvent }

// Packet implements Tracer.
func (t *CollectTracer) Packet(ev TraceEvent) { t.Events = append(t.Events, ev) }

// SetTracer installs a packet tracer on every node and link of the
// network (nil uninstalls). Install before traffic starts.
func (nt *Net) SetTracer(tr Tracer) { nt.tracer = tr }

// SetFragTracer installs an RPC lifecycle tracer on every node's IP
// reassembler (existing and future), surfacing reassembly-timeout drops
// as FragDrop events. Nil uninstalls.
func (nt *Net) SetFragTracer(tr metrics.Tracer) {
	nt.fragTracer = tr
	for _, n := range nt.nodes {
		n.reasm.Tracer = tr
	}
}

// trace emits an event if a tracer is installed.
func (nt *Net) trace(at sim.Time, where string, kind TraceKind, pk *packet) {
	if nt.tracer == nil {
		return
	}
	nt.tracer.Packet(TraceEvent{
		At: at, Where: where, Kind: kind,
		Proto: pk.dg.Proto,
		Src:   pk.dg.Src, SPort: pk.dg.SrcPort,
		Dst: pk.dg.Dst, DPort: pk.dg.DstPort,
		FragOff: pk.frag.Off, FragLen: pk.frag.Len, More: pk.frag.More,
		DgramID: pk.dg.ID,
	})
}
