package netsim

import (
	"time"

	"renonfs/internal/sim"
)

// CPUModel is the calibrated per-operation CPU cost table for a simulated
// host. Costs are expressed in microseconds on a 1.0 MIPS machine and
// scaled by the node's MIPS rating, so the same table describes both a
// MicroVAXII (0.9 MIPS) and a DECstation 3100 (~12 MIPS).
//
// Calibration anchors (see DESIGN.md §4): on a MicroVAXII the server-side
// cost of a UDP lookup RPC is ≈5 ms and of an 8 KB UDP read RPC ≈35 ms;
// TCP adds ≈1 ms to a lookup and ≈7 ms to a read (Graphs 1-2, Graph 6);
// the NIC copy path is the largest single consumer before the §3 tuning,
// and page-remap TX plus transmit-interrupt elimination recover ≈12% of
// total CPU under a read-heavy load.
type CPUModel struct {
	// MIPS scales every cost; 1.0 means the table values apply directly.
	MIPS float64

	// EtherTxPkt / EtherRxPkt: network-interface driver cost per packet
	// (the DEQNA was "real slow").
	EtherTxPkt float64
	EtherRxPkt float64
	// TxInterrupt: transmit-completion interrupt service, charged per
	// transmitted packet when the node takes TX interrupts (§3 removes it).
	TxInterrupt float64
	// NICCopyPerByte: copying mbuf data into NIC transmit buffers. With
	// page-remap TX, cluster bytes are mapped by page-table swaps and only
	// non-cluster bytes pay this cost (§3).
	NICCopyPerByte float64
	// PageRemap: fixed cost of swapping one cluster's page table entry.
	PageRemap float64
	// RemapCoverage is the fraction of cluster payload bytes the TX
	// page-remap actually avoids copying. IP fragments are carved at MTU
	// boundaries that do not align with 2 KB clusters, so partial clusters
	// at fragment edges still go through the copy path; the paper's
	// overall ~12% CPU recovery implies partial coverage.
	RemapCoverage float64
	// ChecksumPerByte: the Internet checksum, charged over each datagram's
	// transport payload on both send and receive.
	ChecksumPerByte float64
	// IPPkt: IP input/output processing per packet (fragment).
	IPPkt float64
	// UDPPkt / TCPPkt: transport processing per datagram/segment. TCP pays
	// more per packet and also processes pure ACK packets, which is where
	// its ≈20% CPU premium comes from.
	UDPPkt float64
	TCPPkt float64
	// ForwardPkt: store-and-forward routing cost per packet on IP routers.
	ForwardPkt float64
}

// DefaultModel returns the calibrated cost table at the given MIPS rating.
func DefaultModel(mips float64) CPUModel {
	return CPUModel{
		MIPS:            mips,
		EtherTxPkt:      420,
		EtherRxPkt:      420,
		TxInterrupt:     180,
		NICCopyPerByte:  1.0,
		PageRemap:       40,
		RemapCoverage:   0.4,
		ChecksumPerByte: 0.55,
		IPPkt:           130,
		UDPPkt:          350,
		TCPPkt:          550,
		ForwardPkt:      1300,
	}
}

// Cost converts a table value (µs at 1 MIPS) to virtual time on this CPU.
func (m *CPUModel) Cost(us float64) sim.Time {
	return sim.Time(us / m.MIPS * float64(time.Microsecond))
}

// CostBytes converts a per-byte table value applied to n bytes.
func (m *CPUModel) CostBytes(perByte float64, n int) sim.Time {
	return m.Cost(perByte * float64(n))
}

// Standard MIPS ratings used by the experiments.
const (
	MIPSMicroVAXII = 0.9  // client and server testbed machines
	MIPSDS3100     = 12.0 // the "fast client" for Table 4
	MIPSRouter     = 2.0  // campus IP routers of the era
)
