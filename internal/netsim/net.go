// Package netsim models hosts, network interfaces, links and IP routers on
// top of the discrete-event kernel in internal/sim.
//
// A Node owns a CPU (a FIFO sim.Resource) and a calibrated CPUModel; every
// protocol action — driver work, copies, checksums, IP/UDP/TCP processing,
// forwarding — is charged to the CPU in virtual time under a named profile
// bucket, so experiments can report both utilization (Graph 6) and a §3
// style profile breakdown. Links have finite drop-tail queues, bandwidth,
// propagation delay, random loss and background cross-traffic, which is
// where the fragmentation-amplified loss driving §4's results comes from.
package netsim

import (
	"fmt"
	"sort"

	"renonfs/internal/ipfrag"
	"renonfs/internal/mbuf"
	"renonfs/internal/metrics"
	"renonfs/internal/sim"
)

// NodeID identifies a node within a Net.
type NodeID int

// Protocol numbers for datagram demultiplexing.
const (
	ProtoUDP = 17
	ProtoTCP = 6
)

// Wire overheads in bytes.
const (
	etherIPHeader = 34 // Ethernet framing + IP header per fragment
	udpHeader     = 8
	tcpHeader     = 20
)

// Datagram is a transport-layer datagram or segment in flight. Payload is
// never copied by the network: fragments carry views and the receiver gets
// the original chain when all fragments arrive.
type Datagram struct {
	Src, Dst         NodeID
	Proto            uint8
	SrcPort, DstPort int
	// HeaderBytes is the transport header size counted on the wire (and in
	// checksum cost) but not present in Payload.
	HeaderBytes int
	Payload     *mbuf.Chain
	// Meta carries transport-private state (the TCP segment header).
	Meta any
	ID   uint32
	// Corrupted marks a datagram damaged in flight by fault injection; the
	// receiving host's transport checksum drops it on reassembly.
	Corrupted bool
}

// Len returns the transport payload length in bytes.
func (dg *Datagram) Len() int {
	if dg.Payload == nil {
		return 0
	}
	return dg.Payload.Len()
}

// packet is one link-layer frame: a fragment of a datagram.
type packet struct {
	dg   *Datagram
	frag ipfrag.Frag
}

// wireBytes is the frame size on the wire.
func (p *packet) wireBytes() int {
	n := etherIPHeader + p.frag.Len
	if p.frag.Off == 0 {
		n += p.dg.HeaderBytes
	}
	return n
}

// NodeConfig describes a host or router.
type NodeConfig struct {
	Name string
	// MIPS sets the CPU speed; zero defaults to MIPSMicroVAXII.
	MIPS float64
	// Forward makes the node an IP router: packets not addressed to it are
	// forwarded rather than dropped.
	Forward bool
	// PageRemapTx enables the §3 optimization: cluster mbufs are mapped
	// into NIC buffers by page-table swaps instead of copied.
	PageRemapTx bool
	// NoTxInterrupts enables the §3 optimization that disables transmit
	// interrupts and does buffer release in the start routine.
	NoTxInterrupts bool
}

// NodeStats are cumulative per-node counters.
type NodeStats struct {
	PktsOut, PktsIn   int
	BytesOut, BytesIn int
	DgramsOut         int
	DgramsIn          int
	Forwarded         int
	ReasmExpired      int
	NoPortDrops       int
	// ChecksumDrops counts reassembled datagrams rejected because fault
	// injection corrupted a fragment in flight (UDP and TCP checksums both
	// catch this; 4.3BSD-Reno ran with UDP checksums enabled).
	ChecksumDrops int
}

// Node is a simulated host or router.
type Node struct {
	ID    NodeID
	Name  string
	CPU   *sim.Resource
	Model CPUModel
	cfg   NodeConfig
	net   *Net

	ifaces  []*Link          // outgoing links
	peer    map[NodeID]*Link // outgoing link by neighbour
	routes  map[NodeID]*Link // outgoing link by final destination
	rxq     *sim.Queue[*packet]
	reasm   *ipfrag.Reassembler
	ports   map[portKey]*sim.Queue[*Datagram]
	dgramID uint32
	ephPort int

	Stats   NodeStats
	profile map[string]sim.Time
}

type portKey struct {
	proto uint8
	port  int
}

// Net is a collection of nodes and links sharing one simulation
// environment.
type Net struct {
	Env        *sim.Env
	nodes      []*Node
	tracer     Tracer
	fragTracer metrics.Tracer
}

// New returns an empty network bound to env.
func New(env *sim.Env) *Net { return &Net{Env: env} }

// Nodes returns all nodes in creation order.
func (nt *Net) Nodes() []*Node { return nt.nodes }

// Links returns every unidirectional link in the network, grouped by node
// creation order (each node's outgoing links in attachment order). The
// fault-injection layer uses this to install hooks.
func (nt *Net) Links() []*Link {
	var out []*Link
	for _, n := range nt.nodes {
		out = append(out, n.ifaces...)
	}
	return out
}

// Links returns the node's outgoing links in attachment order.
func (n *Node) Links() []*Link { return n.ifaces }

// AddNode creates a node and starts its receive process.
func (nt *Net) AddNode(cfg NodeConfig) *Node {
	if cfg.MIPS == 0 {
		cfg.MIPS = MIPSMicroVAXII
	}
	n := &Node{
		ID:      NodeID(len(nt.nodes)),
		Name:    cfg.Name,
		CPU:     sim.NewResource(nt.Env, cfg.Name+".cpu", 1),
		Model:   DefaultModel(cfg.MIPS),
		cfg:     cfg,
		net:     nt,
		peer:    make(map[NodeID]*Link),
		routes:  make(map[NodeID]*Link),
		rxq:     sim.NewQueue[*packet](nt.Env, cfg.Name+".rxq"),
		reasm:   ipfrag.NewReassembler(15 * 1e9), // 15s, classic BSD value
		ports:   make(map[portKey]*sim.Queue[*Datagram]),
		profile: make(map[string]sim.Time),
	}
	n.reasm.Tracer = nt.fragTracer
	nt.nodes = append(nt.nodes, n)
	nt.Env.Spawn(cfg.Name+".softnet", n.softnet)
	return n
}

// Config returns the node's configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// Net returns the network the node belongs to.
func (n *Node) Net() *Net { return n.net }

// PathMTUTo returns the smallest MTU on the route to dst.
func (n *Node) PathMTUTo(dst NodeID) int { return n.net.PathMTU(n.ID, dst) }

// ChargeCPU charges d of CPU time under a profile bucket, blocking the
// calling process while the CPU is busy with earlier work.
func (n *Node) ChargeCPU(p *sim.Proc, bucket string, d sim.Time) {
	if d <= 0 {
		return
	}
	n.profile[bucket] += d
	n.CPU.Use(p, d)
}

// ProfileBucket is one row of a CPU profile report.
type ProfileBucket struct {
	Name string
	Time sim.Time
}

// Profile returns the accumulated CPU profile, largest bucket first — the
// simulator's version of the kernel profiling in §3.
func (n *Node) Profile() []ProfileBucket {
	out := make([]ProfileBucket, 0, len(n.profile))
	for k, v := range n.profile {
		out = append(out, ProfileBucket{k, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ResetProfile clears profile buckets and restarts CPU utilization
// accounting (used to exclude warm-up from measurements).
func (n *Node) ResetProfile() {
	n.profile = make(map[string]sim.Time)
	n.CPU.ResetStats()
}

// Connect joins a and b with a bidirectional link (two unidirectional
// halves sharing one configuration).
func (nt *Net) Connect(a, b *Node, cfg LinkConfig) {
	ab := newLink(nt.Env, cfg, a, b)
	ba := newLink(nt.Env, cfg, b, a)
	a.ifaces = append(a.ifaces, ab)
	b.ifaces = append(b.ifaces, ba)
	a.peer[b.ID] = ab
	b.peer[a.ID] = ba
}

// ComputeRoutes fills every node's route table by BFS over the link graph
// (all links weigh 1, like the static routes of the era).
func (nt *Net) ComputeRoutes() {
	for _, src := range nt.nodes {
		// BFS from src.
		prev := make(map[NodeID]NodeID)
		visited := map[NodeID]bool{src.ID: true}
		queue := []NodeID{src.ID}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for nb := range nt.nodes[cur].peer {
				if !visited[nb] {
					visited[nb] = true
					prev[nb] = cur
					queue = append(queue, nb)
				}
			}
		}
		for _, dst := range nt.nodes {
			if dst.ID == src.ID || !visited[dst.ID] {
				continue
			}
			// Walk back from dst to find the first hop.
			hop := dst.ID
			for prev[hop] != src.ID {
				hop = prev[hop]
			}
			src.routes[dst.ID] = src.peer[hop]
		}
	}
}

// PathMTU returns the smallest MTU along the route from a to b, which TCP
// uses to size segments (the era's equivalent of knowing your interconnect).
func (nt *Net) PathMTU(a, b NodeID) int {
	mtu := 1 << 30
	cur := a
	for cur != b {
		lk := nt.nodes[cur].routes[b]
		if lk == nil {
			panic(fmt.Sprintf("netsim: no route %v -> %v", a, b))
		}
		if lk.cfg.MTU < mtu {
			mtu = lk.cfg.MTU
		}
		cur = lk.to.ID
	}
	return mtu
}

// nextDgramID returns a fresh datagram id for this node.
func (n *Node) nextDgramID() uint32 {
	n.dgramID++
	return n.dgramID
}

// Bind registers a receive queue for (proto, port) and returns it. Binding
// a taken port panics: port allocation is static in the experiments.
func (n *Node) Bind(proto uint8, port int) *sim.Queue[*Datagram] {
	k := portKey{proto, port}
	if _, dup := n.ports[k]; dup {
		panic(fmt.Sprintf("netsim: %s: port %d/%d already bound", n.Name, proto, port))
	}
	q := sim.NewQueue[*Datagram](n.net.Env, fmt.Sprintf("%s.port%d", n.Name, port))
	n.ports[k] = q
	return q
}

// Unbind releases a bound port.
func (n *Node) Unbind(proto uint8, port int) {
	delete(n.ports, portKey{proto, port})
}

// EphemeralPort hands out the next unused UDP port from the node's
// ephemeral range. The cursor is per-node state, so allocation is
// deterministic per simulation however many rigs share the process —
// unlike a package-global counter, which two concurrently-built
// environments would interleave nondeterministically.
const ephemeralBase = 49152

func (n *Node) EphemeralPort() int {
	if n.ephPort == 0 {
		n.ephPort = ephemeralBase
	}
	for {
		p := n.ephPort
		n.ephPort++
		if _, taken := n.ports[portKey{ProtoUDP, p}]; !taken {
			return p
		}
	}
}

// SendDatagram fragments and transmits dg toward its destination, charging
// the sending node's CPU for transport, IP, copy and driver work. It runs
// in the calling process.
func (n *Node) SendDatagram(p *sim.Proc, dg *Datagram) {
	if dg.ID == 0 {
		dg.ID = n.nextDgramID()
	}
	m := &n.Model
	// Transport-level processing + checksum over the payload.
	switch dg.Proto {
	case ProtoUDP:
		n.ChargeCPU(p, "udp", m.Cost(m.UDPPkt))
	case ProtoTCP:
		n.ChargeCPU(p, "tcp", m.Cost(m.TCPPkt))
	}
	n.ChargeCPU(p, "checksum", m.CostBytes(m.ChecksumPerByte, dg.Len()+dg.HeaderBytes))

	lk := n.routes[dg.Dst]
	if lk == nil {
		panic(fmt.Sprintf("netsim: %s: no route to node %d", n.Name, dg.Dst))
	}
	ipfrag.ForEach(dg.Len(), lk.cfg.MTU-etherIPHeader, func(f ipfrag.Frag) {
		n.transmit(p, lk, &packet{dg: dg, frag: f})
	})
	n.Stats.DgramsOut++
}

// transmit charges per-packet TX costs and enqueues the frame on the link.
func (n *Node) transmit(p *sim.Proc, lk *Link, pk *packet) {
	m := &n.Model
	n.ChargeCPU(p, "ip", m.Cost(m.IPPkt))
	// NIC copy: with page-remap TX only non-cluster bytes are copied and
	// each cluster pays a page-table swap instead.
	copyBytes := pk.wireBytes()
	if n.cfg.PageRemapTx && pk.dg.Payload != nil && pk.frag.Len > 0 {
		// ClusterRange walks the fragment's extent in place — no view chain
		// materialized per packet.
		nclusters, clBytes := pk.dg.Payload.ClusterRange(pk.frag.Off, pk.frag.Len)
		copyBytes -= int(float64(clBytes) * m.RemapCoverage)
		n.ChargeCPU(p, "nic_remap", m.Cost(float64(nclusters)*m.PageRemap))
	}
	n.ChargeCPU(p, "nic_copy", m.CostBytes(m.NICCopyPerByte, copyBytes))
	n.ChargeCPU(p, "nic_drv", m.Cost(m.EtherTxPkt))
	if !n.cfg.NoTxInterrupts {
		n.ChargeCPU(p, "tx_intr", m.Cost(m.TxInterrupt))
	}
	n.Stats.PktsOut++
	n.Stats.BytesOut += pk.wireBytes()
	n.net.trace(n.net.Env.Now(), n.Name, TraceSend, pk)
	lk.enqueue(pk)
}

// softnet is the node's receive process: it drains arriving frames,
// charges receive-path CPU, forwards (routers) or reassembles and
// demultiplexes (hosts).
func (n *Node) softnet(p *sim.Proc) {
	m := &n.Model
	for {
		pk, ok := n.rxq.Recv(p)
		if !ok {
			return
		}
		n.Stats.PktsIn++
		n.Stats.BytesIn += pk.wireBytes()
		if pk.dg.Dst != n.ID {
			if !n.cfg.Forward {
				continue // not for us and we are no router: drop
			}
			n.ChargeCPU(p, "forward", m.Cost(m.ForwardPkt))
			lk := n.routes[pk.dg.Dst]
			if lk == nil {
				continue
			}
			// Fragment further if the next link's MTU is smaller.
			maxPayload := lk.cfg.MTU - etherIPHeader
			if pk.frag.Len > maxPayload {
				ipfrag.ForEach(pk.frag.Len, maxPayload, func(sub ipfrag.Frag) {
					n.Stats.PktsOut++
					spk := &packet{dg: pk.dg, frag: ipfrag.Frag{
						Off:  pk.frag.Off + sub.Off,
						Len:  sub.Len,
						More: sub.More || pk.frag.More,
					}}
					n.Stats.BytesOut += spk.wireBytes()
					lk.enqueue(spk)
				})
			} else {
				n.Stats.PktsOut++
				n.Stats.BytesOut += pk.wireBytes()
				lk.enqueue(pk)
			}
			n.Stats.Forwarded++
			n.net.trace(p.Now(), n.Name, TraceFwd, pk)
			continue
		}
		// Host receive path.
		n.net.trace(p.Now(), n.Name, TraceRecv, pk)
		n.ChargeCPU(p, "nic_drv", m.Cost(m.EtherRxPkt))
		n.ChargeCPU(p, "ip", m.Cost(m.IPPkt))
		key := ipfrag.Key{Src: int(pk.dg.Src), ID: pk.dg.ID}
		if !n.reasm.Add(key, pk.frag, p.Now()) {
			n.Stats.ReasmExpired += n.reasm.Expire(p.Now())
			continue
		}
		// Datagram complete: transport processing, checksum, demux.
		switch pk.dg.Proto {
		case ProtoUDP:
			n.ChargeCPU(p, "udp", m.Cost(m.UDPPkt))
		case ProtoTCP:
			n.ChargeCPU(p, "tcp", m.Cost(m.TCPPkt))
		}
		n.ChargeCPU(p, "checksum", m.CostBytes(m.ChecksumPerByte, pk.dg.Len()+pk.dg.HeaderBytes))
		if pk.dg.Corrupted {
			// The checksum was computed (and paid for) before it failed.
			n.Stats.ChecksumDrops++
			continue
		}
		q := n.ports[portKey{pk.dg.Proto, pk.dg.DstPort}]
		if q == nil {
			n.Stats.NoPortDrops++
			continue
		}
		n.Stats.DgramsIn++
		q.Send(pk.dg)
	}
}
