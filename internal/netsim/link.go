package netsim

import (
	"math/rand"
	"time"

	"renonfs/internal/sim"
)

// LinkConfig describes one network segment.
type LinkConfig struct {
	Name string
	// BitsPerSec is the raw bandwidth.
	BitsPerSec int64
	// MTU is the largest frame (including the 34-byte framing/IP overhead)
	// the link carries.
	MTU int
	// PropDelay is the one-way propagation delay.
	PropDelay sim.Time
	// QueueLen bounds the transmit queue (drop-tail). Zero means 32.
	QueueLen int
	// LossProb is the per-frame random loss probability, modelling cross
	// traffic, collisions and noisy serial lines.
	LossProb float64
	// BgUtil in [0,1) models background cross-traffic: each frame may wait
	// behind an exponentially distributed burst of foreign traffic.
	BgUtil float64
}

// LinkStats are cumulative per-direction counters.
type LinkStats struct {
	Frames     int
	Bytes      int
	Lost       int // random loss
	QueueDrops int // drop-tail overflow
	// Fault-injection counters (frames affected by an installed FaultHook).
	FaultDrops  int
	FaultDups   int
	FaultCorrup int
}

// FaultVerdict is a fault-injection decision for one frame about to leave
// a link. The zero value means "deliver normally".
type FaultVerdict struct {
	// Drop discards the frame (loss bursts, flaps, partitions).
	Drop bool
	// Duplicate delivers a second copy of the frame.
	Duplicate bool
	// Corrupt flips bytes somewhere in the frame's datagram: the receiving
	// host's transport checksum will reject the whole datagram on arrival.
	Corrupt bool
	// ExtraDelay is added to the propagation delay, reordering the frame
	// past later traffic.
	ExtraDelay sim.Time
}

// FaultHook decides the fate of each frame a link transmits. It runs on
// the link's transmitter process with the simulation's seeded RNG, so a
// schedule of faults is exactly reproducible from the run's seed. now is
// the virtual time at end of serialization.
type FaultHook func(now sim.Time, rng *rand.Rand) FaultVerdict

// Link is one direction of a connection. Frames wait in a finite drop-tail
// queue, serialize at link bandwidth (plus background-traffic waiting) and
// arrive at the far node after the propagation delay.
type Link struct {
	cfg   LinkConfig
	env   *sim.Env
	net   *Net
	from  *Node
	to    *Node
	q     *sim.Queue[*packet]
	fault FaultHook
	Stat  LinkStats
}

func newLink(env *sim.Env, cfg LinkConfig, from, to *Node) *Link {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 32
	}
	l := &Link{cfg: cfg, env: env, net: from.net, from: from, to: to}
	l.q = sim.NewQueue[*packet](env, cfg.Name+".q")
	l.q.MaxLen = cfg.QueueLen
	env.Spawn(cfg.Name+"("+from.Name+"->"+to.Name+")", l.run)
	return l
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// From and To identify the link's endpoints (it is one direction of a
// connection).
func (l *Link) From() *Node { return l.from }
func (l *Link) To() *Node   { return l.to }

// SetFault installs (or, with nil, removes) a fault-injection hook on this
// link direction. The fault layer in internal/faultplan drives this.
func (l *Link) SetFault(h FaultHook) { l.fault = h }

// enqueue offers a frame to the transmit queue; overflow is dropped.
func (l *Link) enqueue(pk *packet) {
	if !l.q.Send(pk) {
		l.Stat.QueueDrops++
		l.net.trace(l.env.Now(), l.cfg.Name, TraceQDrop, pk)
	}
}

// txTime returns the serialization time for n wire bytes.
func (l *Link) txTime(n int) sim.Time {
	return sim.Time(float64(n*8) / float64(l.cfg.BitsPerSec) * float64(time.Second))
}

// run is the transmitter process for this direction.
func (l *Link) run(p *sim.Proc) {
	rng := p.Rand()
	for {
		pk, ok := l.q.Recv(p)
		if !ok {
			return
		}
		// Background cross-traffic: with probability BgUtil the medium is
		// busy and we wait behind an exponential burst of foreign frames.
		if u := l.cfg.BgUtil; u > 0 && rng.Float64() < u {
			mean := float64(l.txTime(600)) / (1 - u)
			p.Sleep(sim.Time(rng.ExpFloat64() * mean))
		}
		p.Sleep(l.txTime(pk.wireBytes()))
		l.Stat.Frames++
		l.Stat.Bytes += pk.wireBytes()
		if l.cfg.LossProb > 0 && rng.Float64() < l.cfg.LossProb {
			l.Stat.Lost++
			l.net.trace(p.Now(), l.cfg.Name, TraceLoss, pk)
			continue
		}
		// Fault injection: the hook (if any) may drop, duplicate, corrupt
		// or delay the frame. It runs here — after serialization, before
		// propagation — so faulted frames still consumed link bandwidth.
		delay := l.cfg.PropDelay
		if l.fault != nil {
			v := l.fault(p.Now(), rng)
			if v.Drop {
				l.Stat.FaultDrops++
				l.net.trace(p.Now(), l.cfg.Name, TraceLoss, pk)
				continue
			}
			if v.Corrupt {
				l.Stat.FaultCorrup++
				pk.dg.Corrupted = true
			}
			delay += v.ExtraDelay
			if v.Duplicate {
				l.Stat.FaultDups++
				dst, frame := l.to, pk
				p.Env().After(l.cfg.PropDelay, func() { dst.rxq.Send(frame) })
			}
		}
		// Propagation happens off the transmitter's clock so back-to-back
		// frames pipeline.
		dst := l.to
		frame := pk
		p.Env().After(delay, func() { dst.rxq.Send(frame) })
	}
}

// LongFatPipe returns a T1-class link with transcontinental propagation
// delay: high bandwidth-delay product, the regime where read-ahead depth
// and request pipelining decide throughput (Future Directions,
// [Jacobson88b]).
func LongFatPipe(name string) LinkConfig {
	return LinkConfig{
		Name:       name,
		BitsPerSec: 1_544_000,
		MTU:        1500 + etherIPHeader,
		PropDelay:  150 * time.Millisecond,
		QueueLen:   40,
		LossProb:   0.0005,
		BgUtil:     0.05,
	}
}

// Standard link configurations for the paper's three interconnects.

// Ethernet returns a lightly loaded 10 Mbit/s Ethernet segment.
func Ethernet(name string) LinkConfig {
	return LinkConfig{
		Name:       name,
		BitsPerSec: 10_000_000,
		MTU:        1500 + etherIPHeader,
		PropDelay:  50 * time.Microsecond,
		QueueLen:   30,
		LossProb:   0.0002,
		BgUtil:     0.03,
	}
}

// TokenRing returns the 80 Mbit/s campus backbone ring with realistic
// off-peak cross traffic.
func TokenRing(name string) LinkConfig {
	return LinkConfig{
		Name:       name,
		BitsPerSec: 80_000_000,
		MTU:        4464 + etherIPHeader,
		PropDelay:  400 * time.Microsecond,
		QueueLen:   24,
		LossProb:   0.002,
		BgUtil:     0.15,
	}
}

// SerialLine returns the 56 Kbit/s point-to-point link. After hours it
// carries almost no other load, but its tiny bandwidth makes its queue the
// system bottleneck.
func SerialLine(name string) LinkConfig {
	return LinkConfig{
		Name:       name,
		BitsPerSec: 56_000,
		MTU:        1006 + etherIPHeader,
		PropDelay:  8 * time.Millisecond,
		// A short queue, as serial interfaces of the era had: one 8 KB
		// datagram is 9 fragments, so a single burst fits but two
		// concurrent ones overflow it and drop fragments — each of which
		// loses a whole datagram.
		QueueLen: 12,
		LossProb: 0.002,
		BgUtil:   0.02,
	}
}
