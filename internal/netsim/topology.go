package netsim

import (
	"fmt"

	"renonfs/internal/sim"
)

// Testbed is a built experiment network with the client and server
// identified.
type Testbed struct {
	Net     *Net
	Client  *Node
	Server  *Node
	Routers []*Node
}

// Topology selects one of the paper's three internetwork configurations
// (§4): same LAN; two Ethernets joined by the 80 Mbit token ring and two IP
// routers; and the same with a 56 Kbit/s point-to-point link and a third
// router in the path.
type Topology int

const (
	// TopoLAN: client and server on the same uncongested Ethernet.
	TopoLAN Topology = iota + 1
	// TopoRing: Ethernets bridged by the 80 Mbit/s token ring, 2 routers.
	TopoRing
	// TopoSlow: token ring plus a 56 Kbit/s serial hop, 3 routers.
	TopoSlow
	// TopoLFN: a "long fat pipe" — T1 bandwidth with transcontinental
	// delay, the experimental testbed the paper's Future Directions asks
	// for ("performance issues related to many gateway hops and long fat
	// pipes [Jacobson88b]").
	TopoLFN
)

func (t Topology) String() string {
	switch t {
	case TopoLAN:
		return "same-LAN"
	case TopoRing:
		return "token-ring"
	case TopoSlow:
		return "56kbps-link"
	case TopoLFN:
		return "long-fat-pipe"
	default:
		return "unknown-topology"
	}
}

// BuildMulti constructs a same-LAN testbed with n client hosts (each on
// its own Ethernet segment to the server, approximating a shared cable),
// for server-characterization experiments in the style of [Keith90].
func BuildMulti(env *sim.Env, n int, client, server NodeConfig) *MultiTestbed {
	nt := New(env)
	if server.Name == "" {
		server.Name = "server"
	}
	s := nt.AddNode(server)
	mt := &MultiTestbed{Net: nt, Server: s}
	for i := 0; i < n; i++ {
		cfg := client
		cfg.Name = fmt.Sprintf("client%d", i)
		c := nt.AddNode(cfg)
		nt.Connect(c, s, Ethernet(fmt.Sprintf("eth%d", i)))
		mt.Clients = append(mt.Clients, c)
	}
	nt.ComputeRoutes()
	return mt
}

// MultiTestbed is a built multi-client testbed.
type MultiTestbed struct {
	Net     *Net
	Server  *Node
	Clients []*Node
}

// FleetTestbed is the open-loop fleet rig's network (internal/fleet): the
// server and a LAN client host on Ethernets joined by one router, plus a
// WAN client host behind the paper's 56 Kbit/s serial line sharing that
// same router — so slow-WAN stragglers and LAN traffic contend for the
// router's CPU and the server-side Ethernet, the §4 congestion setup.
type FleetTestbed struct {
	Net    *Net
	Server *Node
	Router *Node
	LAN    *Node // fleet shards bind their sockets here
	WAN    *Node // straggler shards bind here, behind the serial hop
}

// BuildFleet constructs the fleet topology. The client hosts stand in for
// thousands of mounts each, so callers give them generous MIPS (the rig
// measures the server and the network, not client CPUs).
func BuildFleet(env *sim.Env, lan, wan, server NodeConfig) *FleetTestbed {
	nt := New(env)
	if lan.Name == "" {
		lan.Name = "lanfleet"
	}
	if wan.Name == "" {
		wan.Name = "wanfleet"
	}
	if server.Name == "" {
		server.Name = "server"
	}
	ft := &FleetTestbed{Net: nt}
	ft.Server = nt.AddNode(server)
	ft.Router = nt.AddNode(NodeConfig{Name: "router", MIPS: MIPSRouter, Forward: true})
	ft.LAN = nt.AddNode(lan)
	ft.WAN = nt.AddNode(wan)
	nt.Connect(ft.Server, ft.Router, Ethernet("eth0"))
	nt.Connect(ft.LAN, ft.Router, Ethernet("eth1"))
	nt.Connect(ft.WAN, ft.Router, SerialLine("serial"))
	nt.ComputeRoutes()
	return ft
}

// Testbed adapts the fleet network to the faultplan.Apply shape (it wants
// a Testbed to install link fault hooks and find the server's links).
func (ft *FleetTestbed) Testbed() *Testbed {
	return &Testbed{Net: ft.Net, Client: ft.LAN, Server: ft.Server,
		Routers: []*Node{ft.Router}}
}

// Build constructs the topology with the given client and server host
// configurations, computes routes and returns the testbed.
func Build(env *sim.Env, topo Topology, client, server NodeConfig) *Testbed {
	nt := New(env)
	if client.Name == "" {
		client.Name = "client"
	}
	if server.Name == "" {
		server.Name = "server"
	}
	c := nt.AddNode(client)
	s := nt.AddNode(server)
	tb := &Testbed{Net: nt, Client: c, Server: s}
	router := func(name string) *Node {
		r := nt.AddNode(NodeConfig{Name: name, MIPS: MIPSRouter, Forward: true})
		tb.Routers = append(tb.Routers, r)
		return r
	}
	switch topo {
	case TopoLAN:
		nt.Connect(c, s, Ethernet("eth0"))
	case TopoRing:
		r1, r2 := router("r1"), router("r2")
		nt.Connect(c, r1, Ethernet("eth1"))
		nt.Connect(r1, r2, TokenRing("ring"))
		nt.Connect(r2, s, Ethernet("eth2"))
	case TopoSlow:
		r1, r2, r3 := router("r1"), router("r2"), router("r3")
		nt.Connect(c, r1, Ethernet("eth1"))
		nt.Connect(r1, r2, TokenRing("ring"))
		nt.Connect(r2, r3, SerialLine("serial"))
		nt.Connect(r3, s, Ethernet("eth2"))
	case TopoLFN:
		r1, r2 := router("r1"), router("r2")
		nt.Connect(c, r1, Ethernet("eth1"))
		nt.Connect(r1, r2, LongFatPipe("lfn"))
		nt.Connect(r2, s, Ethernet("eth2"))
	default:
		panic("netsim: unknown topology")
	}
	nt.ComputeRoutes()
	return tb
}
