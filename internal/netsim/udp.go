package netsim

import (
	"renonfs/internal/mbuf"
	"renonfs/internal/sim"
)

// UDPSocket is a bound UDP endpoint.
type UDPSocket struct {
	node *Node
	port int
	rq   *sim.Queue[*Datagram]
}

// UDPSocket binds a UDP port on the node.
func (n *Node) UDPSocket(port int) *UDPSocket {
	return &UDPSocket{node: n, port: port, rq: n.Bind(ProtoUDP, port)}
}

// Node returns the owning node.
func (s *UDPSocket) Node() *Node { return s.node }

// Port returns the bound port.
func (s *UDPSocket) Port() int { return s.port }

// Send transmits payload to (dst, dport). It runs in the calling process
// and consumes CPU time on the sending node.
func (s *UDPSocket) Send(p *sim.Proc, dst NodeID, dport int, payload *mbuf.Chain) {
	s.node.SendDatagram(p, &Datagram{
		Src: s.node.ID, Dst: dst, Proto: ProtoUDP,
		SrcPort: s.port, DstPort: dport,
		HeaderBytes: udpHeader, Payload: payload,
	})
}

// Recv blocks until a datagram arrives.
func (s *UDPSocket) Recv(p *sim.Proc) (*Datagram, bool) {
	return s.rq.Recv(p)
}

// RecvTimeout blocks until a datagram arrives or d elapses.
func (s *UDPSocket) RecvTimeout(p *sim.Proc, d sim.Time) (*Datagram, bool) {
	return s.rq.RecvTimeout(p, d)
}

// Queue exposes the receive queue for select-style servers.
func (s *UDPSocket) Queue() *sim.Queue[*Datagram] { return s.rq }

// Close unbinds the port.
func (s *UDPSocket) Close() {
	s.node.Unbind(ProtoUDP, s.port)
	s.rq.Close()
}
