package workload

import (
	"fmt"
	"math/rand"

	"renonfs/internal/client"
	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/sim"
)

// chainOf wraps a byte slice in an mbuf chain (fresh each call, so encode
// closures stay repeatable for retransmission).
func chainOf(b []byte) *mbuf.Chain { return mbuf.FromBytes(b) }

// Client CPU costs for the benchmark's "real work", µs at 1 MIPS.
const (
	// scanCPUPerByte models phase IV's grep+wc passes over every byte.
	scanCPUPerByte = 35.0
	// compileCPUPerByte models phase V's C compilation per source byte
	// (pcc on a MicroVAXII was about this slow).
	compileCPUPerByte = 950.0
	// linkCPUPerByte models the final ld pass over the objects.
	linkCPUPerByte = 300.0
	// execCPU models one fork+exec+loader pass: the benchmark phases run
	// a command per file (cp, grep, wc, cc, as). Together with the I/O it
	// stretches the phases over real minutes, which is what ages the
	// 5-second attribute caches between file touches, as in the original
	// 23-minute runs.
	execCPU = 50_000.0
)

// TreeFile is one file of the benchmark source tree.
type TreeFile struct {
	Dir  string
	Name string
	Size int
	C    bool // compiled in phase V
	H    bool // header, re-read by every compile
}

// AndrewTree returns the deterministic source tree: 6 subdirectories,
// 280 files, ~800 KB, 68 C files and 48 headers — sized so the benchmark
// issues RPC volumes comparable to the paper's Table 3 (a few thousand per
// run).
func AndrewTree() []TreeFile {
	rng := rand.New(rand.NewSource(1991))
	var files []TreeFile
	srcDirs := []string{"cmds", "lib", "util", "sys"}
	nC, nH := 68, 48
	for i := 0; i < nC; i++ {
		files = append(files, TreeFile{
			Dir: srcDirs[i%3], Name: fmt.Sprintf("src%02d.c", i),
			Size: 3000 + rng.Intn(9000), C: true,
		})
	}
	for i := 0; i < nH; i++ {
		files = append(files, TreeFile{
			Dir: "lib", Name: fmt.Sprintf("hdr%02d.h", i),
			Size: 800 + rng.Intn(2200), H: true,
		})
	}
	for i := 0; i < 100; i++ {
		files = append(files, TreeFile{
			Dir: srcDirs[3-i%2], Name: fmt.Sprintf("misc%03d", i),
			Size: 500 + rng.Intn(4000),
		})
	}
	for i := 0; i < 64; i++ {
		files = append(files, TreeFile{
			Dir: "doc", Name: fmt.Sprintf("doc%02d.ms", i),
			Size: 1000 + rng.Intn(6000),
		})
	}
	return files
}

// TreeBytes returns the total size of the tree.
func TreeBytes(files []TreeFile) int {
	n := 0
	for _, f := range files {
		n += f.Size
	}
	return n
}

// PreloadServerTree installs the source tree directly into the server's
// filesystem (no RPCs), under /src.
func PreloadServerTree(fs *memfs.FS, files []TreeFile) error {
	root := fs.Root()
	src, err := fs.Mkdir(nil, root, "src", 0755)
	if err != nil {
		return err
	}
	dirs := map[string]*memfs.Inode{"": src}
	content := make([]byte, 16384)
	for i := range content {
		content[i] = byte('a' + i%26)
	}
	for _, f := range files {
		dir := dirs[f.Dir]
		if dir == nil {
			dir, err = fs.Mkdir(nil, src, f.Dir, 0755)
			if err != nil {
				return err
			}
			dirs[f.Dir] = dir
		}
		ino, err := fs.Create(nil, dir, f.Name, 0644)
		if err != nil {
			return err
		}
		for off := 0; off < f.Size; off += len(content) {
			n := f.Size - off
			if n > len(content) {
				n = len(content)
			}
			if err := fs.WriteAt(nil, ino, uint32(off), content[:n], 0); err != nil {
				return err
			}
		}
	}
	return nil
}

// AndrewResult holds the benchmark outcome.
type AndrewResult struct {
	// PhaseTimes are the elapsed virtual times of phases I..V.
	PhaseTimes [5]sim.Time
	// RPC counts snapshot (delta over the run).
	RPC client.Stats
}

// PhaseI_IV returns the combined time of phases I-IV (the paper's Tables
// 2 and 4 report I-IV and V separately).
func (r *AndrewResult) PhaseI_IV() sim.Time {
	return r.PhaseTimes[0] + r.PhaseTimes[1] + r.PhaseTimes[2] + r.PhaseTimes[3]
}

// RunAndrew executes the five phases through the client mount: the source
// tree is read from /src and the working copy built under /work.
//
//	I   create the target directory tree
//	II  copy the source tree
//	III stat every file (recursive ls -l)
//	IV  read every byte of every file (grep + wc)
//	V   compile: every .c re-reads headers, burns compile CPU, writes a .o;
//	    a final link reads all objects and writes the binary
func RunAndrew(p *sim.Proc, m *client.Mount, files []TreeFile) (*AndrewResult, error) {
	res := &AndrewResult{}
	base := m.Stats
	node := m.Node

	// exec charges one command spawn (fork+exec+loader).
	exec := func() {
		node.ChargeCPU(p, "exec", node.Model.Cost(execCPU))
	}

	phase := func(i int, fn func() error) error {
		start := p.Now()
		if err := fn(); err != nil {
			return fmt.Errorf("phase %d: %w", i+1, err)
		}
		res.PhaseTimes[i] = p.Now() - start
		return nil
	}

	dirs := map[string]bool{}
	for _, f := range files {
		dirs[f.Dir] = true
	}

	// Phase I: make directories.
	if err := phase(0, func() error {
		if err := m.Mkdir(p, "work", 0755); err != nil {
			return err
		}
		for _, d := range sortedKeyList(dirs) {
			if d == "" {
				continue
			}
			if err := m.Mkdir(p, "work/"+d, 0755); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	srcPath := func(f TreeFile) string {
		if f.Dir == "" {
			return "src/" + f.Name
		}
		return "src/" + f.Dir + "/" + f.Name
	}
	workPath := func(f TreeFile) string {
		if f.Dir == "" {
			return "work/" + f.Name
		}
		return "work/" + f.Dir + "/" + f.Name
	}

	// Phase II: copy every file in 4 KB chunks (cp's buffer of the era).
	if err := phase(1, func() error {
		buf := make([]byte, 4096)
		for _, f := range files {
			exec() // one cp per file
			in, err := m.Open(p, srcPath(f))
			if err != nil {
				return err
			}
			out, err := m.Create(p, workPath(f), 0644)
			if err != nil {
				return err
			}
			for {
				n, err := in.Read(p, buf)
				if err != nil {
					return err
				}
				if n == 0 {
					break
				}
				if _, err := out.Write(p, buf[:n]); err != nil {
					return err
				}
			}
			in.Close(p)
			if err := out.Close(p); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase III: stat everything (ls -lR).
	if err := phase(2, func() error {
		exec() // the recursive ls
		if _, err := m.ReadDir(p, "work"); err != nil {
			return err
		}
		for _, d := range sortedKeyList(dirs) {
			if d == "" {
				continue
			}
			if _, err := m.ReadDir(p, "work/"+d); err != nil {
				return err
			}
		}
		for _, f := range files {
			if _, err := m.Getattr(p, workPath(f)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase IV: read every byte twice — the benchmark runs grep and then
	// wc as separate commands, each opening (and walking to) every file.
	if err := phase(3, func() error {
		buf := make([]byte, 4096)
		for pass := 0; pass < 2; pass++ {
			for _, f := range files {
				exec() // one spawn per file per command
				in, err := m.Open(p, workPath(f))
				if err != nil {
					return err
				}
				total := 0
				for {
					n, err := in.Read(p, buf)
					if err != nil {
						return err
					}
					if n == 0 {
						break
					}
					total += n
				}
				in.Close(p)
				node.ChargeCPU(p, "userwork", node.Model.CostBytes(scanCPUPerByte, total/2))
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Phase V: compile and link.
	if err := phase(4, func() error {
		var headers []TreeFile
		var objects []TreeFile
		for _, f := range files {
			if f.H {
				headers = append(headers, f)
			}
		}
		buf := make([]byte, 4096)
		readAll := func(path string) (int, error) {
			in, err := m.Open(p, path)
			if err != nil {
				return 0, err
			}
			total := 0
			for {
				n, err := in.Read(p, buf)
				if err != nil {
					return total, err
				}
				if n == 0 {
					break
				}
				total += n
			}
			in.Close(p)
			return total, nil
		}
		for _, f := range files {
			if !f.C {
				continue
			}
			exec() // cc driver
			exec() // assembler pass
			// make re-scans the directory for dependency timestamps; .o
			// writes keep changing its mtime, so the listing re-fetches.
			dir := "work"
			if f.Dir != "" {
				dir = "work/" + f.Dir
			}
			if _, err := m.ReadDir(p, dir); err != nil {
				return err
			}
			n, err := readAll(workPath(f))
			if err != nil {
				return err
			}
			// Each compile re-reads a third of the headers; header bytes
			// compile cheaply (mostly declarations).
			hdrBytes := 0
			for i, h := range headers {
				if i%3 != 0 {
					continue
				}
				hn, err := readAll(workPath(h))
				if err != nil {
					return err
				}
				hdrBytes += hn
			}
			node.ChargeCPU(p, "compile", node.Model.CostBytes(compileCPUPerByte, n+hdrBytes/4))
			// Object file ≈ 60% of the source size.
			obj := TreeFile{Dir: f.Dir, Name: f.Name[:len(f.Name)-2] + ".o", Size: f.Size * 6 / 10}
			out, err := m.Create(p, workPath(obj), 0644)
			if err != nil {
				return err
			}
			data := make([]byte, obj.Size)
			if _, err := out.Write(p, data); err != nil {
				return err
			}
			if err := out.Close(p); err != nil {
				return err
			}
			objects = append(objects, obj)
		}
		// Link: read every object, write the binary.
		exec()
		total := 0
		for _, o := range objects {
			n, err := readAll(workPath(o))
			if err != nil {
				return err
			}
			total += n
		}
		node.ChargeCPU(p, "link", node.Model.CostBytes(linkCPUPerByte, total))
		bin, err := m.Create(p, "work/a.out", 0755)
		if err != nil {
			return err
		}
		if _, err := bin.Write(p, make([]byte, total)); err != nil {
			return err
		}
		if err := bin.Close(p); err != nil {
			return err
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// RPC deltas.
	res.RPC = m.Stats
	for i := range res.RPC.Calls {
		res.RPC.Calls[i] -= base.Calls[i]
	}
	return res, nil
}

// sortedKeyList returns map keys in sorted order for determinism.
func sortedKeyList(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
