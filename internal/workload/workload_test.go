package workload

import (
	"testing"
	"time"

	"renonfs/internal/client"
	"renonfs/internal/memfs"
	"renonfs/internal/netsim"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
	"renonfs/internal/sim"
	"renonfs/internal/transport"
)

type rig struct {
	env *sim.Env
	tb  *netsim.Testbed
	srv *server.Server
	fs  *memfs.FS
}

func newRig(t *testing.T, seed int64, topo netsim.Topology, withDisk bool) *rig {
	t.Helper()
	env := sim.New(seed)
	t.Cleanup(env.Close)
	tb := netsim.Build(env, topo, netsim.NodeConfig{}, netsim.NodeConfig{})
	var disk *memfs.Disk
	if withDisk {
		disk = memfs.NewRD53(env, "server.rd53")
	}
	fs := memfs.New(1, disk, func() nfsproto.Time {
		now := env.Now()
		return nfsproto.Time{Sec: uint32(now / time.Second), USec: uint32(now % time.Second / time.Microsecond)}
	})
	srv := server.New(fs, server.Reno())
	srv.AttachNode(tb.Server)
	srv.ServeUDP(server.NFSPort)
	return &rig{env: env, tb: tb, srv: srv, fs: fs}
}

var nextPort = 5000

func (r *rig) udpTransport(cfg transport.UDPConfig) *transport.UDP {
	nextPort++
	return transport.NewUDP(r.tb.Client, nextPort, r.tb.Server.ID, server.NFSPort, cfg)
}

func (r *rig) mount(opts client.Options) *client.Mount {
	tr := r.udpTransport(transport.DynamicUDP())
	return client.NewMount(r.tb.Client, tr, r.srv.RootFH(), opts)
}

func TestNhfsstoneLookupLoad(t *testing.T) {
	r := newRig(t, 1, netsim.TopoLAN, false)
	var res *NhfsstoneResult
	r.env.Spawn("bench", func(p *sim.Proc) {
		nh := &Nhfsstone{
			Cfg: NhfsstoneConfig{
				Mix: DefaultLookupMix(), Rate: 20, Procs: 4,
				Duration: 30 * time.Second, Warmup: 5 * time.Second,
				NumFiles: 30, FileSize: 8192,
			},
			Tr:   r.udpTransport(transport.DynamicUDP()),
			Root: r.srv.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		res = nh.Run(p)
	})
	r.env.Run(5 * time.Minute)
	if res == nil {
		t.Fatal("benchmark never finished")
	}
	if res.Achieved < 15 || res.Achieved > 25 {
		t.Fatalf("achieved = %.1f rpc/s, want ~20", res.Achieved)
	}
	rtt := res.RTT[nfsproto.ProcLookup]
	if rtt.Count < 300 {
		t.Fatalf("lookup samples = %d", rtt.Count)
	}
	if rtt.Mean() <= 0 || rtt.Mean() > 100 {
		t.Fatalf("LAN lookup mean RTT = %.2f ms", rtt.Mean())
	}
}

func TestNhfsstoneReadMixMovesData(t *testing.T) {
	r := newRig(t, 2, netsim.TopoLAN, false)
	var res *NhfsstoneResult
	r.env.Spawn("bench", func(p *sim.Proc) {
		nh := &Nhfsstone{
			Cfg: NhfsstoneConfig{
				Mix: ReadLookupMix(), Rate: 10, Procs: 4,
				Duration: 30 * time.Second, Warmup: 2 * time.Second,
				NumFiles: 20, FileSize: 8192,
			},
			Tr:   r.udpTransport(transport.DynamicUDP()),
			Root: r.srv.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		res = nh.Run(p)
	})
	r.env.Run(5 * time.Minute)
	if res == nil {
		t.Fatal("benchmark never finished")
	}
	if res.ReadRate() <= 1 {
		t.Fatalf("read rate = %.2f", res.ReadRate())
	}
	// Reads (6 fragments of data) must be slower than lookups.
	if res.RTT[nfsproto.ProcRead].Mean() <= res.RTT[nfsproto.ProcLookup].Mean() {
		t.Fatalf("read RTT %.2f <= lookup RTT %.2f",
			res.RTT[nfsproto.ProcRead].Mean(), res.RTT[nfsproto.ProcLookup].Mean())
	}
}

func TestAndrewBenchmarkRuns(t *testing.T) {
	r := newRig(t, 3, netsim.TopoLAN, true)
	files := AndrewTree()
	if len(files) != 280 {
		t.Fatalf("tree = %d files", len(files))
	}
	if tb := TreeBytes(files); tb < 600_000 || tb > 1_200_000 {
		t.Fatalf("tree bytes = %d", tb)
	}
	if err := PreloadServerTree(r.fs, files); err != nil {
		t.Fatal(err)
	}
	m := r.mount(client.Reno())
	var res *AndrewResult
	var runErr error
	r.env.Spawn("mab", func(p *sim.Proc) {
		res, runErr = RunAndrew(p, m, files)
	})
	r.env.Run(4 * time.Hour)
	if runErr != nil {
		t.Fatal(runErr)
	}
	if res == nil {
		t.Fatal("benchmark never finished")
	}
	for i, pt := range res.PhaseTimes {
		if pt <= 0 {
			t.Fatalf("phase %d time = %v", i+1, pt)
		}
	}
	// Phase V (compiles) dominates on a 0.9 MIPS client.
	if res.PhaseTimes[4] < res.PhaseI_IV() {
		t.Fatalf("phase V (%v) should dominate I-IV (%v) on a MicroVAXII", res.PhaseTimes[4], res.PhaseI_IV())
	}
	if res.RPC.Calls[nfsproto.ProcLookup] == 0 || res.RPC.Calls[nfsproto.ProcWrite] == 0 ||
		res.RPC.Calls[nfsproto.ProcRead] == 0 || res.RPC.Calls[nfsproto.ProcGetattr] == 0 {
		t.Fatalf("RPC counts: %v", res.RPC.Calls)
	}
}

// TestAndrewTable3Shape reproduces the orderings of Table 3 at test scale:
// Reno does fewest lookups (name cache), most reads (flush-before-read);
// Ultrix does most lookups and writes; noconsist does fewest writes.
func TestAndrewTable3Shape(t *testing.T) {
	files := AndrewTree()
	counts := func(opts client.Options, seed int64) client.Stats {
		r := newRig(t, seed, netsim.TopoLAN, true)
		if err := PreloadServerTree(r.fs, files); err != nil {
			t.Fatal(err)
		}
		m := r.mount(opts)
		var res *AndrewResult
		var runErr error
		r.env.Spawn("mab", func(p *sim.Proc) {
			res, runErr = RunAndrew(p, m, files)
		})
		r.env.Run(4 * time.Hour)
		if runErr != nil || res == nil {
			t.Fatalf("%s: %v", opts.Name, runErr)
		}
		return res.RPC
	}
	reno := counts(client.Reno(), 10)
	noc := counts(client.RenoNoConsist(), 11)
	ultrix := counts(client.Ultrix(), 12)

	lk := nfsproto.ProcLookup
	rd := nfsproto.ProcRead
	wr := nfsproto.ProcWrite
	if !(ultrix.Calls[lk] > 3*reno.Calls[lk]/2) {
		t.Errorf("lookups: ultrix=%d reno=%d; want ultrix >> reno", ultrix.Calls[lk], reno.Calls[lk])
	}
	if !(reno.Calls[rd] > ultrix.Calls[rd]) {
		t.Errorf("reads: reno=%d ultrix=%d; want reno > ultrix", reno.Calls[rd], ultrix.Calls[rd])
	}
	if !(noc.Calls[rd] <= ultrix.Calls[rd]) {
		t.Errorf("reads: noconsist=%d ultrix=%d; want noconsist <= ultrix", noc.Calls[rd], ultrix.Calls[rd])
	}
	if !(ultrix.Calls[wr] > reno.Calls[wr]) {
		t.Errorf("writes: ultrix=%d reno=%d; want ultrix > reno", ultrix.Calls[wr], reno.Calls[wr])
	}
	if !(noc.Calls[wr] < reno.Calls[wr]) {
		t.Errorf("writes: noconsist=%d reno=%d; want noconsist < reno", noc.Calls[wr], reno.Calls[wr])
	}
}

func TestCreateDeleteLocalVsNFS(t *testing.T) {
	r := newRig(t, 4, netsim.TopoLAN, true)
	// Local filesystem on the client's own disk.
	localDisk := memfs.NewRD53(r.env, "client.rd53")
	localMemfs := memfs.New(2, localDisk, nil)
	local := NewLocalFS(r.env, localMemfs)

	wtOpts := client.Reno()
	wtOpts.Policy = client.WriteThrough
	wtOpts.Name = "write-thru"
	wt := r.mount(wtOpts)
	noc := r.mount(client.RenoNoConsist())

	var localRes, wtRes, nocRes *CreateDeleteResult
	var err error
	r.env.Spawn("cd", func(p *sim.Proc) {
		localRes, err = RunCreateDelete(p, local, "local", 102400, 5)
		if err != nil {
			t.Errorf("local: %v", err)
			return
		}
		local.WaitIdle(p)
		wtRes, err = RunCreateDelete(p, MountFS{wt}, "wt", 102400, 5)
		if err != nil {
			t.Errorf("wt: %v", err)
			return
		}
		nocRes, err = RunCreateDelete(p, MountFS{noc}, "noc", 102400, 5)
		if err != nil {
			t.Errorf("noc: %v", err)
		}
	})
	r.env.Run(4 * time.Hour)
	if localRes == nil || wtRes == nil || nocRes == nil {
		t.Fatal("benchmarks incomplete")
	}
	// Table 5 shape: local < write-through; noconsist << write-through.
	if !(localRes.MeanMS < wtRes.MeanMS) {
		t.Errorf("local %.0fms >= write-through %.0fms", localRes.MeanMS, wtRes.MeanMS)
	}
	if !(nocRes.MeanMS*3 < wtRes.MeanMS) {
		t.Errorf("noconsist %.0fms not dramatically faster than write-through %.0fms", nocRes.MeanMS, wtRes.MeanMS)
	}
}

func TestCreateDeleteZeroData(t *testing.T) {
	r := newRig(t, 5, netsim.TopoLAN, true)
	m := r.mount(client.Reno())
	var res *CreateDeleteResult
	var err error
	r.env.Spawn("cd", func(p *sim.Proc) {
		res, err = RunCreateDelete(p, MountFS{m}, "zero", 0, 5)
	})
	r.env.Run(time.Hour)
	if err != nil || res == nil {
		t.Fatalf("err=%v res=%v", err, res)
	}
	if res.MeanMS <= 0 || res.MeanMS > 2000 {
		t.Fatalf("no-data iteration = %.0f ms", res.MeanMS)
	}
}

func TestNhfsstoneFullMix(t *testing.T) {
	r := newRig(t, 8, netsim.TopoLAN, true)
	var res *NhfsstoneResult
	r.env.Spawn("bench", func(p *sim.Proc) {
		nh := &Nhfsstone{
			Cfg: NhfsstoneConfig{
				Mix: FullMix(), Rate: 15, Procs: 4,
				Duration: 40 * time.Second, Warmup: 5 * time.Second,
				NumFiles: 20, FileSize: 8192,
			},
			Tr:   r.udpTransport(transport.DynamicUDP()),
			Root: r.srv.RootFH(),
		}
		if err := nh.Preload(p); err != nil {
			t.Errorf("preload: %v", err)
			return
		}
		res = nh.Run(p)
	})
	r.env.Run(10 * time.Minute)
	if res == nil {
		t.Fatal("run did not finish")
	}
	if res.Failures != 0 {
		t.Fatalf("failures = %d", res.Failures)
	}
	// Every op class in the mix must actually have been exercised.
	for _, proc := range []uint32{
		nfsproto.ProcGetattr, nfsproto.ProcLookup, nfsproto.ProcRead,
		nfsproto.ProcWrite, nfsproto.ProcReadlink, nfsproto.ProcReaddir,
		nfsproto.ProcStatfs, nfsproto.ProcCreate,
	} {
		if res.RTT[proc] == nil || res.RTT[proc].Count == 0 {
			t.Errorf("proc %s never issued", nfsproto.ProcName(proc))
		}
	}
	// Writes hit the server's disk synchronously, so they are the slowest
	// frequent op.
	if res.RTT[nfsproto.ProcWrite].Mean() <= res.RTT[nfsproto.ProcLookup].Mean() {
		t.Errorf("write RTT %.1f <= lookup RTT %.1f",
			res.RTT[nfsproto.ProcWrite].Mean(), res.RTT[nfsproto.ProcLookup].Mean())
	}
	if res.Achieved < 10 || res.Achieved > 20 {
		t.Errorf("achieved = %.1f, offered 15", res.Achieved)
	}
}

func TestLongNamesDefeatServerNameCache(t *testing.T) {
	// Appendix caveat 1: Nhfsstone's long names defeat a 31-char name
	// cache, biasing against servers with good caches.
	hitsFor := func(long bool) int {
		r := newRig(t, 6, netsim.TopoLAN, false)
		var done bool
		r.env.Spawn("bench", func(p *sim.Proc) {
			nh := &Nhfsstone{
				Cfg: NhfsstoneConfig{
					Mix: DefaultLookupMix(), Rate: 20, Procs: 2,
					Duration: 20 * time.Second, Warmup: time.Second,
					NumFiles: 20, FileSize: 1024, LongNames: long,
				},
				Tr:   r.udpTransport(transport.DynamicUDP()),
				Root: r.srv.RootFH(),
			}
			if err := nh.Preload(p); err != nil {
				t.Errorf("preload: %v", err)
				return
			}
			nh.Run(p)
			done = true
		})
		r.env.Run(5 * time.Minute)
		if !done {
			t.Fatal("did not finish")
		}
		return r.srv.NameCacheStats().Hits
	}
	short := hitsFor(false)
	long := hitsFor(true)
	if long >= short/4 {
		t.Fatalf("name cache hits: short=%d long=%d; long names should defeat the cache", short, long)
	}
}
