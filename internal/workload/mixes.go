package workload

import "renonfs/internal/nfsproto"

// Tenant mixes for the open-loop fleet rig (internal/fleet). Each is the
// same shape as FullMix: procedure → probability, summing to 1. The fleet
// assigns one mix per simulated mount, so a run can blend Andrew-style
// software builds, nhfsstone steady state and create-delete churn the way
// a real departmental server saw all three at once (paper §4).

// AndrewMix approximates the per-phase RPC profile of the Andrew benchmark
// (MakeDir/Copy/ScanDir/ReadAll/Make averaged): attribute- and
// lookup-dominant with a build's read/write tail and a trickle of
// directory mutation. Derived from the phase operation counts in
// internal/workload/andrew.go rather than measured traces.
func AndrewMix() map[uint32]float64 {
	return map[uint32]float64{
		nfsproto.ProcGetattr: 0.26,
		nfsproto.ProcLookup:  0.36,
		nfsproto.ProcRead:    0.17,
		nfsproto.ProcWrite:   0.10,
		nfsproto.ProcCreate:  0.04,
		nfsproto.ProcRemove:  0.02,
		nfsproto.ProcReaddir: 0.04,
		nfsproto.ProcStatfs:  0.01,
	}
}

// CreateDeleteMix is the §5 Create-Delete churn as a steady-state mix:
// dominated by CREATE/REMOVE pairs (the dupcache's worst customers, since
// both are non-idempotent) with the writes that populate each created
// file. Fleet clients running this mix alternate create/remove of a
// per-client temp file so the churn never collides across mounts.
func CreateDeleteMix() map[uint32]float64 {
	return map[uint32]float64{
		nfsproto.ProcCreate: 0.40,
		nfsproto.ProcRemove: 0.40,
		nfsproto.ProcWrite:  0.12,
		nfsproto.ProcLookup: 0.08,
	}
}
