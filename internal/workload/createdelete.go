package workload

import (
	"fmt"

	"renonfs/internal/client"
	"renonfs/internal/memfs"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
)

// Bench filesystem abstraction: the Create-Delete benchmark runs both
// against NFS mounts and against a local filesystem with its own disk
// (Table 5's "Local" row).

// BenchFS is the minimal filesystem surface Create-Delete needs.
type BenchFS interface {
	CreateFile(p *sim.Proc, name string) (BenchFile, error)
	RemoveFile(p *sim.Proc, name string) error
}

// BenchFile is an open benchmark file.
type BenchFile interface {
	Write(p *sim.Proc, data []byte) (int, error)
	Close(p *sim.Proc) error
}

// MountFS adapts a client mount to BenchFS.
type MountFS struct{ M *client.Mount }

// CreateFile implements BenchFS.
func (m MountFS) CreateFile(p *sim.Proc, name string) (BenchFile, error) {
	return m.M.Create(p, name, 0644)
}

// RemoveFile implements BenchFS.
func (m MountFS) RemoveFile(p *sim.Proc, name string) error { return m.M.Remove(p, name) }

// LocalFS adapts memfs with a local disk to BenchFS, with the local UNIX
// semantics of the era: synchronous metadata (create/remove wait for the
// directory and inode writes), write-behind data (write system calls queue
// disk writes that drain FIFO behind the metadata ones).
type LocalFS struct {
	FS     *memfs.FS
	env    *sim.Env
	jobs   *sim.Queue[int] // async data writes, bytes each
	drain  *sim.Cond
	queued int
}

// NewLocalFS builds a local filesystem over an RD53 and starts its
// write-behind process.
func NewLocalFS(env *sim.Env, fs *memfs.FS) *LocalFS {
	l := &LocalFS{FS: fs, env: env, jobs: sim.NewQueue[int](env, "localfs.writes"), drain: sim.NewCond(env)}
	env.Spawn("localfs.writer", func(p *sim.Proc) {
		for {
			n, ok := l.jobs.Recv(p)
			if !ok {
				return
			}
			l.FS.Disk.Write(p, n)
			l.queued--
			if l.queued == 0 {
				l.drain.Broadcast()
			}
		}
	})
	return l
}

type localFile struct {
	l   *LocalFS
	ino *memfs.Inode
	off uint32
}

// CreateFile implements BenchFS: synchronous metadata writes via memfs.
func (l *LocalFS) CreateFile(p *sim.Proc, name string) (BenchFile, error) {
	ino, err := l.FS.Create(p, l.FS.Root(), name, 0644)
	if err != nil {
		return nil, err
	}
	return &localFile{l: l, ino: ino}, nil
}

// RemoveFile implements BenchFS. Unlink waits for the file's in-flight
// write-behind I/O first (as the kernel must before freeing the blocks),
// which is what makes Create-Delete of large files cost real disk time
// even locally (Table 5's Local row).
func (l *LocalFS) RemoveFile(p *sim.Proc, name string) error {
	l.WaitIdle(p)
	return l.FS.Remove(p, l.FS.Root(), name)
}

// Write implements BenchFile: data lands in memory now, disk writes are
// queued (data block + inode update per 8K block, write-behind).
func (f *localFile) Write(p *sim.Proc, data []byte) (int, error) {
	if err := f.l.FS.WriteAt(p, f.ino, f.off, data, 0); err != nil {
		return 0, err
	}
	f.off += uint32(len(data))
	for off := 0; off < len(data); off += memfs.BlockSize {
		n := len(data) - off
		if n > memfs.BlockSize {
			n = memfs.BlockSize
		}
		f.l.queued += 2
		f.l.jobs.Send(n)
		f.l.jobs.Send(512)
	}
	return len(data), nil
}

// Close implements BenchFile (nothing to do locally).
func (f *localFile) Close(p *sim.Proc) error { return nil }

// WaitIdle blocks until write-behind drains (between configurations).
func (l *LocalFS) WaitIdle(p *sim.Proc) {
	for l.queued > 0 {
		l.drain.Wait(p)
	}
}

// CreateDeleteResult is the mean iteration time for one configuration and
// size.
type CreateDeleteResult struct {
	Config  string
	Size    int
	MeanMS  float64
	Summary *stats.Summary
}

// RunCreateDelete measures the Ousterhout Create-Delete benchmark: each
// iteration creates a file, writes size bytes in 4 KB chunks, closes it and
// deletes it.
func RunCreateDelete(p *sim.Proc, fs BenchFS, config string, size, iters int) (*CreateDeleteResult, error) {
	sum := stats.NewSummary(0)
	chunk := make([]byte, 4096)
	for i := range chunk {
		chunk[i] = byte(i)
	}
	for it := 0; it < iters; it++ {
		name := fmt.Sprintf("cd-%s-%d", config, it)
		start := p.Now()
		f, err := fs.CreateFile(p, name)
		if err != nil {
			return nil, fmt.Errorf("create: %w", err)
		}
		for off := 0; off < size; off += len(chunk) {
			n := size - off
			if n > len(chunk) {
				n = len(chunk)
			}
			if _, err := f.Write(p, chunk[:n]); err != nil {
				return nil, fmt.Errorf("write: %w", err)
			}
		}
		if err := f.Close(p); err != nil {
			return nil, fmt.Errorf("close: %w", err)
		}
		if err := fs.RemoveFile(p, name); err != nil {
			return nil, fmt.Errorf("remove: %w", err)
		}
		sum.AddDuration(p.Now() - start)
	}
	return &CreateDeleteResult{Config: config, Size: size, MeanMS: sum.Mean(), Summary: sum}, nil
}
