// Package workload re-creates the three benchmarks the paper measures
// with: an Nhfsstone-style NFS load generator (§4, Graphs 1-6, Table 1),
// a Modified-Andrew-style client workload (§5, Tables 2-4), and the
// Ousterhout Create-Delete benchmark (§5, Table 5).
package workload

import (
	"fmt"
	"math/rand"

	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/sim"
	"renonfs/internal/stats"
	"renonfs/internal/transport"
	"renonfs/internal/xdr"
)

// NhfsstoneConfig parameterizes the load generator. Like the original, it
// issues NFS RPCs directly over a transport (bypassing the client cache) at
// a target aggregate rate, against a preloaded subtree.
type NhfsstoneConfig struct {
	// Mix maps procedure → fraction of the load (fractions should sum
	// to 1).
	Mix map[uint32]float64
	// Rate is the target aggregate RPC rate (calls/second).
	Rate float64
	// Procs is the number of load-generating processes.
	Procs int
	// Duration measures after Warmup.
	Duration sim.Time
	Warmup   sim.Time
	// NumFiles and FileSize shape the preloaded subtree. The appendix
	// warns that empty files bias read results, so files are preloaded
	// with FileSize bytes before each run.
	NumFiles int
	FileSize int
	// LongNames uses >31-character names, which defeats the Reno server's
	// name cache (the appendix's first caveat).
	LongNames bool
	// OnMeasure, when set, is invoked at the instant warmup ends and
	// measurement begins (used to reset server CPU accounting).
	OnMeasure func()
}

// DefaultLookupMix is the 100% lookup load.
func DefaultLookupMix() map[uint32]float64 {
	return map[uint32]float64{nfsproto.ProcLookup: 1.0}
}

// ReadLookupMix is the 50/50 read/lookup load.
func ReadLookupMix() map[uint32]float64 {
	return map[uint32]float64{nfsproto.ProcLookup: 0.5, nfsproto.ProcRead: 0.5}
}

// FullMix is the nhfsstone default operation mix (lookup-dominant with 8%
// writes and a trickle of everything else, per [Legato89]). The paper's
// transport graphs avoid the mutating operations so the subtree stays
// stable; this mix exercises the full server the way the original tool's
// default did.
func FullMix() map[uint32]float64 {
	return map[uint32]float64{
		nfsproto.ProcGetattr:  0.13,
		nfsproto.ProcSetattr:  0.01,
		nfsproto.ProcLookup:   0.34,
		nfsproto.ProcReadlink: 0.08,
		nfsproto.ProcRead:     0.22,
		nfsproto.ProcWrite:    0.15,
		nfsproto.ProcCreate:   0.02,
		nfsproto.ProcRemove:   0.01,
		nfsproto.ProcReaddir:  0.03,
		nfsproto.ProcStatfs:   0.01,
	}
}

// NhfsstoneResult reports what the generator measured.
type NhfsstoneResult struct {
	// RTT per procedure, milliseconds.
	RTT map[uint32]*stats.Summary
	// Hist per procedure: the same RTTs in log-bucket histograms, whose
	// interpolated tail quantiles (p99) do not depend on reservoir luck
	// the way the Summary's sampled percentiles do.
	Hist map[uint32]*metrics.Histogram
	// Achieved is the measured aggregate call rate.
	Achieved float64
	// Rate per procedure (the paper's Table 1 reports read rates).
	ProcRate map[uint32]float64
	// Retries and Failures from the transport.
	Retries  int
	Failures int
	// Elapsed is the measurement window.
	Elapsed sim.Time
}

// ReadRate returns the measured read RPCs per second.
func (r *NhfsstoneResult) ReadRate() float64 { return r.ProcRate[nfsproto.ProcRead] }

// LookupRate returns the measured lookup RPCs per second.
func (r *NhfsstoneResult) LookupRate() float64 { return r.ProcRate[nfsproto.ProcLookup] }

// Nhfsstone drives the load. The caller provides the environment, the
// transport to exercise, and the exported root handle; Preload must have
// been run first (it returns the target file handles).
type Nhfsstone struct {
	Cfg    NhfsstoneConfig
	Tr     transport.Transport
	Root   nfsproto.FH
	files  []nhFile
	links  []string // preloaded symlink names for readlink ops
	temp   nhTemp
	result *NhfsstoneResult
}

type nhFile struct {
	name string
	fh   nfsproto.FH
}

// temp files created and removed by the mutating mix.
type nhTemp struct {
	name string
	next int
}

// fileName derives the i-th test file name, optionally long enough to
// defeat 31-character name caches.
func (c *NhfsstoneConfig) fileName(i int) string {
	if c.LongNames {
		return fmt.Sprintf("nhfsstone-test-file-with-a-very-long-name-%06d", i)
	}
	return fmt.Sprintf("nh%04d", i)
}

// Preload creates the subtree over the transport: NumFiles files of
// FileSize bytes, so reads have real data to move (the appendix's second
// caveat). It runs in the calling process.
func (n *Nhfsstone) Preload(p *sim.Proc) error {
	if n.Cfg.NumFiles == 0 {
		n.Cfg.NumFiles = 50
	}
	if n.Cfg.FileSize == 0 {
		n.Cfg.FileSize = nfsproto.MaxData
	}
	if n.Cfg.Procs == 0 {
		n.Cfg.Procs = 4
	}
	content := make([]byte, n.Cfg.FileSize)
	for i := range content {
		content[i] = byte(i)
	}
	for i := 0; i < n.Cfg.NumFiles; i++ {
		name := n.Cfg.fileName(i)
		attr := nfsproto.NewSattr()
		attr.Mode = 0644
		d, err := n.Tr.Call(p, nfsproto.ProcCreate, func(e *xdr.Encoder) {
			(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: n.Root, Name: name}, Attr: attr}).Encode(e)
		})
		if err != nil {
			return fmt.Errorf("preload create %s: %w", name, err)
		}
		res, err := nfsproto.DecodeDiropRes(d)
		if err != nil || res.Status != nfsproto.OK {
			return fmt.Errorf("preload create %s: %v %v", name, res, err)
		}
		fh := res.File
		for off := 0; off < n.Cfg.FileSize; off += nfsproto.MaxData {
			end := off + nfsproto.MaxData
			if end > n.Cfg.FileSize {
				end = n.Cfg.FileSize
			}
			chunk := content[off:end]
			off32 := uint32(off)
			d, err := n.Tr.Call(p, nfsproto.ProcWrite, func(e *xdr.Encoder) {
				(&nfsproto.WriteArgs{File: fh, Offset: off32, Data: chainOf(chunk)}).Encode(e)
			})
			if err != nil {
				return fmt.Errorf("preload write: %w", err)
			}
			if wres, err := nfsproto.DecodeAttrRes(d); err != nil || wres.Status != nfsproto.OK {
				return fmt.Errorf("preload write: %v %v", wres, err)
			}
		}
		n.files = append(n.files, nhFile{name, fh})
	}
	if n.Cfg.Mix[nfsproto.ProcReadlink] > 0 {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("nhlink%d", i)
			attr := nfsproto.NewSattr()
			d, err := n.Tr.Call(p, nfsproto.ProcSymlink, func(e *xdr.Encoder) {
				(&nfsproto.SymlinkArgs{
					From: nfsproto.DiropArgs{Dir: n.Root, Name: name},
					To:   "/export/target", Attr: attr,
				}).Encode(e)
			})
			if err != nil {
				return fmt.Errorf("preload symlink: %w", err)
			}
			res, err := nfsproto.DecodeStatusRes(d)
			if err != nil || (res.Status != nfsproto.OK && res.Status != nfsproto.ErrExist) {
				// EXIST is fine: another client of a shared subtree made it.
				return fmt.Errorf("preload symlink: %v %v", res, err)
			}
			n.links = append(n.links, name)
		}
	}
	return nil
}

// Run launches the load processes and blocks the calling process until the
// measurement window completes, returning the results.
func (n *Nhfsstone) Run(p *sim.Proc) *NhfsstoneResult {
	env := p.Env()
	res := &NhfsstoneResult{
		RTT:      make(map[uint32]*stats.Summary),
		Hist:     make(map[uint32]*metrics.Histogram),
		ProcRate: make(map[uint32]float64),
	}
	n.result = res
	var procs []uint32
	var cum []float64
	acc := 0.0
	for proc := range n.Cfg.Mix {
		procs = append(procs, proc)
	}
	// Deterministic ordering of the mix regardless of map iteration.
	for i := 0; i < len(procs); i++ {
		for j := i + 1; j < len(procs); j++ {
			if procs[j] < procs[i] {
				procs[i], procs[j] = procs[j], procs[i]
			}
		}
	}
	for _, proc := range procs {
		acc += n.Cfg.Mix[proc]
		cum = append(cum, acc)
		res.RTT[proc] = stats.NewSummary(4096)
		res.Hist[proc] = metrics.NewHistogram()
	}
	measuring := false
	counts := make(map[uint32]int)
	retriesBase := n.Tr.Stats().Retries
	failuresBase := n.Tr.Stats().Failures

	done := sim.NewEvent(env)
	finished := 0
	perProcRate := n.Cfg.Rate / float64(n.Cfg.Procs)
	for w := 0; w < n.Cfg.Procs; w++ {
		env.Spawn(fmt.Sprintf("nhfsstone-%d", w), func(lp *sim.Proc) {
			defer func() {
				finished++
				if finished == n.Cfg.Procs {
					done.Set()
				}
			}()
			rng := lp.Rand()
			end := lp.Now() + n.Cfg.Warmup + n.Cfg.Duration
			for lp.Now() < end {
				// Poisson pacing toward the target rate.
				lp.Sleep(sim.Time(rng.ExpFloat64() / perProcRate * 1e9))
				if lp.Now() >= end {
					return
				}
				proc := pickProc(rng, procs, cum)
				start := lp.Now()
				err := n.issue(lp, rng, proc)
				if err != nil {
					continue
				}
				if measuring {
					rtt := lp.Now() - start
					res.RTT[proc].AddDuration(rtt)
					res.Hist[proc].ObserveDuration(rtt)
					counts[proc]++
				}
			}
		})
	}
	// Warmup gate.
	if n.Cfg.Warmup > 0 {
		p.Sleep(n.Cfg.Warmup)
	}
	measuring = true
	if n.Cfg.OnMeasure != nil {
		n.Cfg.OnMeasure()
	}
	measureStart := p.Now()
	done.Wait(p)
	res.Elapsed = p.Now() - measureStart
	if res.Elapsed > 0 {
		total := 0
		secs := float64(res.Elapsed) / 1e9
		for proc, c := range counts {
			res.ProcRate[proc] = float64(c) / secs
			total += c
		}
		res.Achieved = float64(total) / secs
	}
	res.Retries = n.Tr.Stats().Retries - retriesBase
	res.Failures = n.Tr.Stats().Failures - failuresBase
	return res
}

func pickProc(rng *rand.Rand, procs []uint32, cum []float64) uint32 {
	r := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if r <= c {
			return procs[i]
		}
	}
	return procs[len(procs)-1]
}

// issue sends one RPC of the given kind at a random file.
func (n *Nhfsstone) issue(lp *sim.Proc, rng *rand.Rand, proc uint32) error {
	f := n.files[rng.Intn(len(n.files))]
	var err error
	switch proc {
	case nfsproto.ProcLookup:
		_, err = n.Tr.Call(lp, nfsproto.ProcLookup, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: n.Root, Name: f.name}).Encode(e)
		})
	case nfsproto.ProcGetattr:
		_, err = n.Tr.Call(lp, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: f.fh}).Encode(e)
		})
	case nfsproto.ProcRead:
		count := uint32(nfsproto.MaxData)
		if n.Cfg.FileSize < nfsproto.MaxData {
			count = uint32(n.Cfg.FileSize)
		}
		var d *xdr.Decoder
		d, err = n.Tr.Call(lp, nfsproto.ProcRead, func(e *xdr.Encoder) {
			(&nfsproto.ReadArgs{File: f.fh, Offset: 0, Count: count}).Encode(e)
		})
		if err == nil {
			_, err = nfsproto.DecodeReadRes(d)
		}
	case nfsproto.ProcReaddir:
		_, err = n.Tr.Call(lp, nfsproto.ProcReaddir, func(e *xdr.Encoder) {
			(&nfsproto.ReaddirArgs{Dir: n.Root, Cookie: 0, Count: 4096}).Encode(e)
		})
	case nfsproto.ProcWrite:
		count := nfsproto.MaxData
		if n.Cfg.FileSize < count {
			count = n.Cfg.FileSize
		}
		if count == 0 {
			count = 512
		}
		data := make([]byte, count)
		var d *xdr.Decoder
		d, err = n.Tr.Call(lp, nfsproto.ProcWrite, func(e *xdr.Encoder) {
			(&nfsproto.WriteArgs{File: f.fh, Offset: 0, Data: chainOf(data)}).Encode(e)
		})
		if err == nil {
			_, err = nfsproto.DecodeAttrRes(d)
		}
	case nfsproto.ProcSetattr:
		attr := nfsproto.NewSattr()
		attr.Mode = 0644
		_, err = n.Tr.Call(lp, nfsproto.ProcSetattr, func(e *xdr.Encoder) {
			(&nfsproto.SetattrArgs{File: f.fh, Attr: attr}).Encode(e)
		})
	case nfsproto.ProcReadlink:
		if len(n.links) == 0 {
			return nil
		}
		link := n.links[rng.Intn(len(n.links))]
		var d *xdr.Decoder
		d, err = n.Tr.Call(lp, nfsproto.ProcLookup, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: n.Root, Name: link}).Encode(e)
		})
		if err == nil {
			if res, derr := nfsproto.DecodeDiropRes(d); derr == nil && res.Status == nfsproto.OK {
				_, err = n.Tr.Call(lp, nfsproto.ProcReadlink, func(e *xdr.Encoder) {
					(&nfsproto.GetattrArgs{File: res.File}).Encode(e)
				})
			}
		}
	case nfsproto.ProcCreate:
		n.temp.next++
		name := fmt.Sprintf("nhtmp%05d", n.temp.next)
		attr := nfsproto.NewSattr()
		attr.Mode = 0644
		_, err = n.Tr.Call(lp, nfsproto.ProcCreate, func(e *xdr.Encoder) {
			(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: n.Root, Name: name}, Attr: attr}).Encode(e)
		})
		if err == nil {
			n.temp.name = name
		}
	case nfsproto.ProcRemove:
		if n.temp.name == "" {
			return nil
		}
		name := n.temp.name
		n.temp.name = ""
		_, err = n.Tr.Call(lp, nfsproto.ProcRemove, func(e *xdr.Encoder) {
			(&nfsproto.DiropArgs{Dir: n.Root, Name: name}).Encode(e)
		})
	case nfsproto.ProcStatfs:
		_, err = n.Tr.Call(lp, nfsproto.ProcStatfs, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: n.Root}).Encode(e)
		})
	default:
		_, err = n.Tr.Call(lp, nfsproto.ProcGetattr, func(e *xdr.Encoder) {
			(&nfsproto.GetattrArgs{File: f.fh}).Encode(e)
		})
	}
	return err
}
