// Package rpc implements the Sun RPC version 2 message layer (RFC 1057
// subset) used by NFS: CALL and REPLY headers with AUTH_NULL / AUTH_UNIX
// credentials, marshalled directly in mbuf chains, plus the record-marking
// standard used to delimit RPC messages on stream transports such as TCP.
package rpc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"renonfs/internal/mbuf"
	"renonfs/internal/xdr"
)

// Version is the Sun RPC protocol version implemented.
const Version = 2

// Message types.
const (
	MsgCall  = 0
	MsgReply = 1
)

// Reply status.
const (
	MsgAccepted = 0
	MsgDenied   = 1
)

// Accept status for accepted replies.
const (
	Success      = 0
	ProgUnavail  = 1
	ProgMismatch = 2
	ProcUnavail  = 3
	GarbageArgs  = 4
	SystemErr    = 5
)

// Auth flavors.
const (
	AuthNone = 0
	AuthUnix = 1
)

// ErrBadMessage reports a structurally invalid RPC message.
var ErrBadMessage = errors.New("rpc: bad message")

// Auth is an opaque authenticator.
type Auth struct {
	Flavor uint32
	Body   []byte
}

// UnixCred is the AUTH_UNIX credential body.
type UnixCred struct {
	Stamp   uint32
	Machine string
	UID     uint32
	GID     uint32
	GIDs    []uint32
}

// Encode marshals the credential into an Auth.
func (u *UnixCred) Encode() Auth {
	c := &mbuf.Chain{}
	e := xdr.NewEncoder(c)
	e.PutUint32(u.Stamp)
	e.PutString(u.Machine)
	e.PutUint32(u.UID)
	e.PutUint32(u.GID)
	e.PutUint32(uint32(len(u.GIDs)))
	for _, g := range u.GIDs {
		e.PutUint32(g)
	}
	return Auth{Flavor: AuthUnix, Body: c.Bytes()}
}

// DecodeUnixCred unmarshals an AUTH_UNIX body.
func DecodeUnixCred(body []byte) (*UnixCred, error) {
	d := xdr.NewDecoder(mbuf.FromBytes(body))
	u := &UnixCred{}
	var err error
	if u.Stamp, err = d.Uint32(); err != nil {
		return nil, err
	}
	if u.Machine, err = d.String(); err != nil {
		return nil, err
	}
	if u.UID, err = d.Uint32(); err != nil {
		return nil, err
	}
	if u.GID, err = d.Uint32(); err != nil {
		return nil, err
	}
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if n > 16 {
		return nil, fmt.Errorf("%w: %d gids", ErrBadMessage, n)
	}
	for i := uint32(0); i < n; i++ {
		g, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		u.GIDs = append(u.GIDs, g)
	}
	return u, nil
}

func putAuth(e *xdr.Encoder, a Auth) {
	e.PutUint32(a.Flavor)
	e.PutOpaque(a.Body)
}

func getAuth(d *xdr.Decoder) (Auth, error) {
	var a Auth
	f, err := d.Uint32()
	if err != nil {
		return a, err
	}
	body, err := d.Opaque()
	if err != nil {
		return a, err
	}
	if len(body) > 400 {
		return a, fmt.Errorf("%w: auth body %d bytes", ErrBadMessage, len(body))
	}
	a.Flavor = f
	// The copy must stay: Opaque may return the dissector's straddle
	// scratch, which the second getAuth of a header would overwrite. For
	// the hot path (AUTH_NULL, empty body) append allocates nothing.
	a.Body = append([]byte(nil), body...)
	return a, nil
}

// Call is a parsed RPC CALL header. The procedure arguments follow it in
// the same chain.
type Call struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred Auth
	Verf Auth
}

// EncodeCall writes the CALL header onto c; the caller appends the
// procedure arguments afterwards.
func EncodeCall(c *mbuf.Chain, call *Call) {
	e := xdr.NewEncoder(c)
	e.PutUint32(call.XID)
	e.PutUint32(MsgCall)
	e.PutUint32(Version)
	e.PutUint32(call.Prog)
	e.PutUint32(call.Vers)
	e.PutUint32(call.Proc)
	putAuth(e, call.Cred)
	putAuth(e, call.Verf)
}

// DecodeCall parses a CALL header from d, leaving the cursor at the start
// of the procedure arguments.
func DecodeCall(d *xdr.Decoder) (*Call, error) {
	call := &Call{}
	if err := DecodeCallInto(d, call); err != nil {
		return nil, err
	}
	return call, nil
}

// DecodeCallInto parses a CALL header into a caller-provided struct, letting
// per-request dispatch loops keep the header off the heap.
func DecodeCallInto(d *xdr.Decoder, call *Call) error {
	var err error
	if call.XID, err = d.Uint32(); err != nil {
		return err
	}
	mt, err := d.Uint32()
	if err != nil {
		return err
	}
	if mt != MsgCall {
		return fmt.Errorf("%w: type %d, want CALL", ErrBadMessage, mt)
	}
	v, err := d.Uint32()
	if err != nil {
		return err
	}
	if v != Version {
		return fmt.Errorf("%w: rpc version %d", ErrBadMessage, v)
	}
	if call.Prog, err = d.Uint32(); err != nil {
		return err
	}
	if call.Vers, err = d.Uint32(); err != nil {
		return err
	}
	if call.Proc, err = d.Uint32(); err != nil {
		return err
	}
	if call.Cred, err = getAuth(d); err != nil {
		return err
	}
	if call.Verf, err = getAuth(d); err != nil {
		return err
	}
	return nil
}

// Reply is a parsed RPC REPLY header. For accepted/success replies the
// procedure results follow in the chain.
type Reply struct {
	XID        uint32
	Denied     bool
	AcceptStat uint32
	Verf       Auth
}

// EncodeReply writes an accepted REPLY header with the given accept status;
// the caller appends results for Success.
func EncodeReply(c *mbuf.Chain, xid, acceptStat uint32) {
	e := xdr.NewEncoder(c)
	e.PutUint32(xid)
	e.PutUint32(MsgReply)
	e.PutUint32(MsgAccepted)
	putAuth(e, Auth{}) // verifier
	e.PutUint32(acceptStat)
}

// DecodeReply parses a REPLY header, leaving the cursor at the results.
func DecodeReply(d *xdr.Decoder) (*Reply, error) {
	r := &Reply{}
	if err := DecodeReplyInto(d, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeReplyInto parses a REPLY header into a caller-provided struct, the
// allocation-free counterpart of DecodeReply for per-reply hot loops.
func DecodeReplyInto(d *xdr.Decoder, r *Reply) error {
	var err error
	if r.XID, err = d.Uint32(); err != nil {
		return err
	}
	mt, err := d.Uint32()
	if err != nil {
		return err
	}
	if mt != MsgReply {
		return fmt.Errorf("%w: type %d, want REPLY", ErrBadMessage, mt)
	}
	stat, err := d.Uint32()
	if err != nil {
		return err
	}
	switch stat {
	case MsgAccepted:
		if r.Verf, err = getAuth(d); err != nil {
			return err
		}
		if r.AcceptStat, err = d.Uint32(); err != nil {
			return err
		}
	case MsgDenied:
		r.Denied = true
	default:
		return fmt.Errorf("%w: reply stat %d", ErrBadMessage, stat)
	}
	return nil
}

// PeekXID extracts the transaction id from a message chain without
// disturbing it, used by transports to match replies to requests.
func PeekXID(c *mbuf.Chain) (uint32, error) {
	d := xdr.NewDecoder(c.Range(0, min(4, c.Len())))
	return d.Uint32()
}

// --- Record marking (RFC 1057 §10) -------------------------------------

// lastFrag is the high bit of a record mark, set on the final fragment.
const lastFrag = 0x80000000

// MaxRecord bounds a record-marked message; larger records indicate stream
// desynchronization.
const MaxRecord = 1 << 20

// AddRecordMark prepends a single-fragment record mark to the message.
func AddRecordMark(c *mbuf.Chain) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], lastFrag|uint32(c.Len()))
	c.Prepend(hdr[:])
}

// RecordScanner incrementally reassembles record-marked messages from a
// byte stream. Feed it stream data as it arrives; it returns any complete
// records. It tolerates arbitrary segmentation, including marks split
// across reads and multi-fragment records.
type RecordScanner struct {
	buf []byte // unconsumed stream bytes
	rec []byte // fragments of the record under assembly
}

// ErrRecordTooBig reports a record mark exceeding MaxRecord.
var ErrRecordTooBig = errors.New("rpc: record exceeds maximum size")

// Feed appends stream data and returns the complete records now available.
func (s *RecordScanner) Feed(p []byte) ([][]byte, error) {
	s.buf = append(s.buf, p...)
	var out [][]byte
	for {
		if len(s.buf) < 4 {
			return out, nil
		}
		mark := binary.BigEndian.Uint32(s.buf[:4])
		n := int(mark &^ lastFrag)
		if n > MaxRecord {
			return out, ErrRecordTooBig
		}
		if len(s.buf) < 4+n {
			return out, nil
		}
		frag := s.buf[4 : 4+n]
		s.buf = append([]byte(nil), s.buf[4+n:]...)
		s.rec = append(s.rec, frag...)
		if mark&lastFrag != 0 {
			out = append(out, s.rec)
			s.rec = nil
		}
	}
}

// Buffered returns the number of unconsumed stream bytes held.
func (s *RecordScanner) Buffered() int { return len(s.buf) + len(s.rec) }
