package rpc

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"renonfs/internal/mbuf"
	"renonfs/internal/xdr"
)

func TestCallRoundTrip(t *testing.T) {
	cred := (&UnixCred{Stamp: 99, Machine: "uvax2", UID: 100, GID: 10, GIDs: []uint32{10, 20}}).Encode()
	call := &Call{XID: 0xabc123, Prog: 100003, Vers: 2, Proc: 4, Cred: cred}
	c := &mbuf.Chain{}
	EncodeCall(c, call)
	// Args follow the header.
	xdr.NewEncoder(c).PutUint32(777)

	d := xdr.NewDecoder(c)
	got, err := DecodeCall(d)
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != call.XID || got.Prog != call.Prog || got.Vers != call.Vers || got.Proc != call.Proc {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Cred.Flavor != AuthUnix {
		t.Fatalf("cred flavor = %d", got.Cred.Flavor)
	}
	u, err := DecodeUnixCred(got.Cred.Body)
	if err != nil {
		t.Fatal(err)
	}
	if u.Machine != "uvax2" || u.UID != 100 || len(u.GIDs) != 2 {
		t.Fatalf("cred = %+v", u)
	}
	if arg, err := d.Uint32(); err != nil || arg != 777 {
		t.Fatalf("args after header = %d, %v", arg, err)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	c := &mbuf.Chain{}
	EncodeReply(c, 55, Success)
	xdr.NewEncoder(c).PutUint32(1234)
	d := xdr.NewDecoder(c)
	r, err := DecodeReply(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.XID != 55 || r.Denied || r.AcceptStat != Success {
		t.Fatalf("reply = %+v", r)
	}
	if v, err := d.Uint32(); err != nil || v != 1234 {
		t.Fatalf("results = %d, %v", v, err)
	}
}

func TestReplyErrorStatuses(t *testing.T) {
	for _, stat := range []uint32{ProgUnavail, ProcUnavail, GarbageArgs, SystemErr} {
		c := &mbuf.Chain{}
		EncodeReply(c, 1, stat)
		r, err := DecodeReply(xdr.NewDecoder(c))
		if err != nil {
			t.Fatal(err)
		}
		if r.AcceptStat != stat {
			t.Fatalf("stat = %d, want %d", r.AcceptStat, stat)
		}
	}
}

func TestDecodeCallRejectsReply(t *testing.T) {
	c := &mbuf.Chain{}
	EncodeReply(c, 9, Success)
	if _, err := DecodeCall(xdr.NewDecoder(c)); err == nil {
		t.Fatal("DecodeCall accepted a REPLY")
	}
}

func TestDecodeTruncated(t *testing.T) {
	c := &mbuf.Chain{}
	call := &Call{XID: 1, Prog: 100003, Vers: 2, Proc: 6}
	EncodeCall(c, call)
	full := c.Bytes()
	for cut := 0; cut < len(full); cut += 5 {
		part := mbuf.FromBytes(full[:cut])
		if _, err := DecodeCall(xdr.NewDecoder(part)); err == nil {
			t.Fatalf("truncated call at %d decoded without error", cut)
		}
	}
}

func TestPeekXID(t *testing.T) {
	c := &mbuf.Chain{}
	EncodeCall(c, &Call{XID: 0xfeedface, Prog: 100003, Vers: 2, Proc: 1})
	xid, err := PeekXID(c)
	if err != nil || xid != 0xfeedface {
		t.Fatalf("PeekXID = %x, %v", xid, err)
	}
	// Peeking must not consume the chain.
	if _, err := DecodeCall(xdr.NewDecoder(c)); err != nil {
		t.Fatalf("decode after peek: %v", err)
	}
}

func TestRecordMarkSingle(t *testing.T) {
	c := mbuf.FromBytes([]byte("hello rpc"))
	AddRecordMark(c)
	var s RecordScanner
	recs, err := s.Feed(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0]) != "hello rpc" {
		t.Fatalf("recs = %q", recs)
	}
	if s.Buffered() != 0 {
		t.Fatalf("buffered = %d", s.Buffered())
	}
}

func TestRecordScannerArbitrarySegmentation(t *testing.T) {
	f := func(msgs [][]byte, seed int64) bool {
		// Build a stream of record-marked messages.
		var stream []byte
		var want [][]byte
		for _, m := range msgs {
			if len(m) > 5000 {
				m = m[:5000]
			}
			c := mbuf.FromBytes(m)
			AddRecordMark(c)
			stream = append(stream, c.Bytes()...)
			want = append(want, append([]byte(nil), m...))
		}
		// Feed in random-size pieces.
		rng := rand.New(rand.NewSource(seed))
		var s RecordScanner
		var got [][]byte
		for len(stream) > 0 {
			n := 1 + rng.Intn(len(stream))
			recs, err := s.Feed(stream[:n])
			if err != nil {
				return false
			}
			got = append(got, recs...)
			stream = stream[n:]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRecordScannerMultiFragment(t *testing.T) {
	// A record split into 3 fragments: only the last carries the flag.
	var stream []byte
	frag := func(p []byte, last bool) {
		var hdr [4]byte
		mark := uint32(len(p))
		if last {
			mark |= 0x80000000
		}
		binary.BigEndian.PutUint32(hdr[:], mark)
		stream = append(stream, hdr[:]...)
		stream = append(stream, p...)
	}
	frag([]byte("one-"), false)
	frag([]byte("two-"), false)
	frag([]byte("three"), true)
	frag([]byte("next"), true)

	var s RecordScanner
	recs, err := s.Feed(stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0]) != "one-two-three" || string(recs[1]) != "next" {
		t.Fatalf("recs = %q", recs)
	}
}

func TestRecordTooBig(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0x80000000|uint32(MaxRecord+1))
	var s RecordScanner
	if _, err := s.Feed(hdr[:]); err != ErrRecordTooBig {
		t.Fatalf("err = %v, want ErrRecordTooBig", err)
	}
}

func TestUnixCredGidBound(t *testing.T) {
	c := &mbuf.Chain{}
	e := xdr.NewEncoder(c)
	e.PutUint32(1)
	e.PutString("m")
	e.PutUint32(0)
	e.PutUint32(0)
	e.PutUint32(1000) // absurd gid count
	if _, err := DecodeUnixCred(c.Bytes()); err == nil {
		t.Fatal("expected error for absurd gid count")
	}
}
