package rpc

import (
	"testing"

	"renonfs/internal/mbuf"
	"renonfs/internal/xdr"
)

// FuzzRPCDecode feeds arbitrary bytes to every parser that faces the
// network: call and reply headers, the xid peek, and the record-mark
// scanner. Garbage must come back as an error, never a panic, and the
// scanner must respect MaxRecord so a hostile mark cannot balloon memory.
func FuzzRPCDecode(f *testing.F) {
	call := &mbuf.Chain{}
	EncodeCall(call, &Call{XID: 7, Prog: 100003, Vers: 2, Proc: 4,
		Cred: (&UnixCred{Machine: "fuzz", UID: 1, GID: 1}).Encode()})
	f.Add(call.Bytes())
	reply := &mbuf.Chain{}
	EncodeReply(reply, 7, Success)
	f.Add(reply.Bytes())
	marked := &mbuf.Chain{}
	EncodeCall(marked, &Call{XID: 9, Prog: 100003, Vers: 2, Proc: 1})
	AddRecordMark(marked)
	f.Add(marked.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x80, 0x00, 0x00, 0x04, 1, 2, 3, 4})       // tiny record
	f.Add([]byte{0x80, 0xff, 0xff, 0xff})                   // record mark over MaxRecord
	f.Fuzz(func(t *testing.T, data []byte) {
		c := mbuf.FromBytes(data)
		_, _ = PeekXID(c)
		_, _ = DecodeCall(xdr.NewDecoder(mbuf.FromBytes(data)))
		_, _ = DecodeReply(xdr.NewDecoder(mbuf.FromBytes(data)))

		var scan RecordScanner
		recs, err := scan.Feed(data)
		total := 0
		for _, r := range recs {
			total += len(r)
		}
		if err == nil && total+scan.Buffered() > len(data) {
			t.Fatalf("scanner produced %d bytes from %d input bytes",
				total+scan.Buffered(), len(data))
		}
		// A record the scanner emits must decode or error — not panic.
		for _, r := range recs {
			_, _ = DecodeCall(xdr.NewDecoder(mbuf.FromBytes(r)))
		}
	})
}

// FuzzRPCCallRoundTrip: any call header the encoder writes, the decoder
// reads back unchanged.
func FuzzRPCCallRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint32(100003), uint32(2), uint32(6))
	f.Fuzz(func(t *testing.T, xid, prog, vers, proc uint32) {
		c := &mbuf.Chain{}
		EncodeCall(c, &Call{XID: xid, Prog: prog, Vers: vers, Proc: proc})
		got, err := DecodeCall(xdr.NewDecoder(c))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.XID != xid || got.Prog != prog || got.Vers != vers || got.Proc != proc {
			t.Fatalf("round trip changed the header: %+v", got)
		}
	})
}
