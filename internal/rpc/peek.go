package rpc

import "renonfs/internal/xdr"

// PeekedCall is the part of a CALL header a dispatcher needs to classify a
// datagram: enough to route it, nothing that allocates. The credential and
// verifier bodies are skipped, not captured — the procedures eligible for
// shallow dispatch never consult them (the full DecodeCallInto path still
// does for everything else).
type PeekedCall struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
}

// maxAuthBody mirrors getAuth's RFC 1057 opaque-auth bound.
const maxAuthBody = 400

// PeekCallHeader classifies a raw datagram: it parses the fixed CALL
// header fields into h and skips both authenticators, returning the offset
// of the procedure arguments. ok is false when b is not a structurally
// valid RPC CALL — undecodable datagrams take the generic path, whose full
// decoder owns the error handling. No allocation, no mbuf staging.
func PeekCallHeader(b []byte, h *PeekedCall) (argOff int, ok bool) {
	var r xdr.ByteReader
	r.ResetBytes(b)
	h.XID = r.Uint32()
	mt := r.Uint32()
	rv := r.Uint32()
	h.Prog = r.Uint32()
	h.Vers = r.Uint32()
	h.Proc = r.Uint32()
	if !r.OK() || mt != MsgCall || rv != Version {
		return 0, false
	}
	for i := 0; i < 2; i++ { // cred, then verf
		r.Uint32() // flavor
		if r.Opaque(maxAuthBody); !r.OK() {
			return 0, false
		}
	}
	return r.Offset(), true
}

// AppendReplyHeader writes an accepted REPLY header to w, byte-for-byte
// what EncodeReply produces on a chain (the fast path's equivalence test
// pins this).
func AppendReplyHeader(w *xdr.ByteWriter, xid, acceptStat uint32) {
	w.PutUint32(xid)
	w.PutUint32(MsgReply)
	w.PutUint32(MsgAccepted)
	w.PutUint32(0) // verifier flavor (AUTH_NULL)
	w.PutUint32(0) // verifier body length
	w.PutUint32(acceptStat)
}
