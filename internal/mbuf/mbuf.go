// Package mbuf implements BSD-style network buffer chains.
//
// The 4.3BSD Reno NFS implementation builds and decomposes RPC requests and
// replies directly in mbuf data areas (via the nfsm_build and nfsm_disect
// macros) to avoid intermediate XDR buffers and the copies they imply. This
// package reproduces that discipline: a Chain is a singly linked list of
// small mbufs and page clusters, a Builder appends fields contiguously the
// way nfsm_build does, and a Dissector walks a chain the way nfsm_disect
// does, copying only when a field straddles an mbuf boundary.
//
// The package keeps global counters of memory-to-memory copy traffic so the
// experiments in §3 of the paper (copy avoidance) can be observed directly.
package mbuf

import "sync/atomic"

const (
	// MLen is the data capacity of a small mbuf (BSD: MSIZE minus header).
	MLen = 108
	// ClBytes is the data capacity of an mbuf page cluster.
	ClBytes = 2048
)

// Counters aggregates package-wide copy and allocation statistics.
type Counters struct {
	// CopiedBytes counts bytes moved by memory-to-memory copies performed
	// by this package (linearization, boundary-straddling reads, FromBytes).
	CopiedBytes atomic.Int64
	// SmallAllocs and ClusterAllocs count mbuf allocations by kind.
	SmallAllocs   atomic.Int64
	ClusterAllocs atomic.Int64
	// Views counts zero-copy range references created by Chain.Range.
	Views atomic.Int64
}

// Stats is the package-wide counter instance.
var Stats Counters

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.CopiedBytes.Store(0)
	c.SmallAllocs.Store(0)
	c.ClusterAllocs.Store(0)
	c.Views.Store(0)
}

// Mbuf is one buffer in a chain. Data occupies buf[off : off+len].
type Mbuf struct {
	buf     []byte
	off     int
	dlen    int
	cluster bool
	next    *Mbuf
}

// newSmall allocates a small mbuf.
func newSmall() *Mbuf {
	Stats.SmallAllocs.Add(1)
	return &Mbuf{buf: make([]byte, MLen)}
}

// newCluster allocates a cluster mbuf.
func newCluster() *Mbuf {
	Stats.ClusterAllocs.Add(1)
	return &Mbuf{buf: make([]byte, ClBytes), cluster: true}
}

// Len returns the number of valid data bytes in the mbuf.
func (m *Mbuf) Len() int { return m.dlen }

// Cluster reports whether the mbuf is a page cluster.
func (m *Mbuf) Cluster() bool { return m.cluster }

// Data returns the valid data bytes. The slice aliases the mbuf storage.
func (m *Mbuf) Data() []byte { return m.buf[m.off : m.off+m.dlen] }

// Chain is a list of mbufs holding a logical byte sequence.
type Chain struct {
	head, tail *Mbuf
	length     int
}

// Len returns the total data length of the chain.
func (c *Chain) Len() int { return c.length }

// Empty reports whether the chain holds no data.
func (c *Chain) Empty() bool { return c.length == 0 }

// Segments returns the number of mbufs in the chain.
func (c *Chain) Segments() int {
	n := 0
	for m := c.head; m != nil; m = m.next {
		n++
	}
	return n
}

// Clusters returns the number of cluster mbufs in the chain; the NIC model
// uses this to decide how much data page-remapping can avoid copying.
func (c *Chain) Clusters() (count, bytes int) {
	for m := c.head; m != nil; m = m.next {
		if m.cluster {
			count++
			bytes += m.dlen
		}
	}
	return count, bytes
}

func (c *Chain) appendMbuf(m *Mbuf) {
	if c.head == nil {
		c.head, c.tail = m, m
	} else {
		c.tail.next = m
		c.tail = m
	}
	c.length += m.dlen
}

// Append copies b onto the end of the chain, allocating clusters for bulk
// data and small mbufs for short tails, the way sosend does.
func (c *Chain) Append(b []byte) {
	Stats.CopiedBytes.Add(int64(len(b)))
	for len(b) > 0 {
		var m *Mbuf
		if len(b) > MLen {
			m = newCluster()
		} else {
			m = newSmall()
		}
		n := copy(m.buf, b)
		m.dlen = n
		b = b[n:]
		c.appendMbuf(m)
	}
}

// AppendCluster grafts an externally produced, cluster-sized buffer onto the
// chain without copying — the analogue of lending a buffer-cache page to the
// network code. The caller must not modify b afterwards.
func (c *Chain) AppendCluster(b []byte) {
	m := &Mbuf{buf: b, dlen: len(b), cluster: true}
	Stats.ClusterAllocs.Add(1)
	c.appendMbuf(m)
}

// AppendChain moves all mbufs of other onto the end of c (other is emptied).
func (c *Chain) AppendChain(other *Chain) {
	if other.head == nil {
		return
	}
	if c.head == nil {
		c.head, c.tail = other.head, other.tail
	} else {
		c.tail.next = other.head
		c.tail = other.tail
	}
	c.length += other.length
	other.head, other.tail, other.length = nil, nil, 0
}

// Prepend inserts b before the existing data (m_prepend): used for RPC
// record marks and lower-layer headers.
func (c *Chain) Prepend(b []byte) {
	Stats.CopiedBytes.Add(int64(len(b)))
	var m *Mbuf
	if len(b) <= MLen {
		m = newSmall()
		// Leave leading space the way MH_ALIGN does, in case of another
		// prepend; put data at the end of the buffer.
		m.off = MLen - len(b)
	} else {
		m = newCluster()
	}
	copy(m.buf[m.off:], b)
	m.dlen = len(b)
	m.next = c.head
	c.head = m
	if c.tail == nil {
		c.tail = m
	}
	c.length += len(b)
}

// FromBytes builds a chain holding a copy of b.
func FromBytes(b []byte) *Chain {
	c := &Chain{}
	c.Append(b)
	return c
}

// Bytes linearizes the chain into a fresh slice (a full copy).
func (c *Chain) Bytes() []byte {
	out := make([]byte, 0, c.length)
	for m := c.head; m != nil; m = m.next {
		out = append(out, m.Data()...)
	}
	Stats.CopiedBytes.Add(int64(c.length))
	return out
}

// CopyTo copies the chain's bytes into dst, which must be at least Len()
// long, and returns the number of bytes copied.
func (c *Chain) CopyTo(dst []byte) int {
	n := 0
	for m := c.head; m != nil; m = m.next {
		n += copy(dst[n:], m.Data())
	}
	Stats.CopiedBytes.Add(int64(n))
	return n
}

// Range returns a zero-copy view chain referencing bytes [off, off+n) of c.
// The returned chain shares storage with c; neither side may be modified
// afterwards. It is how IP fragmentation and TCP segmentation reference
// payload without copying.
func (c *Chain) Range(off, n int) *Chain {
	if off < 0 || n < 0 || off+n > c.length {
		panic("mbuf: Range out of bounds")
	}
	Stats.Views.Add(1)
	out := &Chain{}
	m := c.head
	// Skip to the mbuf containing off.
	for m != nil && off >= m.dlen {
		off -= m.dlen
		m = m.next
	}
	for n > 0 && m != nil {
		take := m.dlen - off
		if take > n {
			take = n
		}
		view := &Mbuf{buf: m.buf, off: m.off + off, dlen: take, cluster: m.cluster}
		out.appendMbuf(view)
		n -= take
		off = 0
		m = m.next
	}
	if n > 0 {
		panic("mbuf: Range ran off chain")
	}
	return out
}

// Clone returns a deep copy of the chain.
func (c *Chain) Clone() *Chain {
	return FromBytes(c.Bytes())
}
