// Package mbuf implements BSD-style network buffer chains.
//
// The 4.3BSD Reno NFS implementation builds and decomposes RPC requests and
// replies directly in mbuf data areas (via the nfsm_build and nfsm_disect
// macros) to avoid intermediate XDR buffers and the copies they imply. This
// package reproduces that discipline: a Chain is a singly linked list of
// small mbufs and page clusters, a Builder appends fields contiguously the
// way nfsm_build does, and a Dissector walks a chain the way nfsm_disect
// does, copying only when a field straddles an mbuf boundary.
//
// Beyond the seed implementation the package now also reproduces the two
// allocation disciplines §3 of the paper leans on: mbuf storage is pooled on
// per-kind free lists with explicit Chain.Free and reference-counted views
// (pool.go), and external storage — a buffer-cache page, in our case a memfs
// file block — can be loaned into a chain without copying via AppendExt, the
// analogue of BSD cluster loaning.
//
// The package keeps global counters of memory-to-memory copy traffic, pool
// behaviour and loaned bytes so the experiments in §3 of the paper (copy
// avoidance) can be observed directly.
package mbuf

import "sync/atomic"

const (
	// MLen is the data capacity of a small mbuf (BSD: MSIZE minus header).
	MLen = 108
	// ClBytes is the data capacity of an mbuf page cluster.
	ClBytes = 2048
)

// Counters aggregates package-wide copy and allocation statistics.
type Counters struct {
	// CopiedBytes counts bytes moved by memory-to-memory copies performed
	// by this package (linearization, boundary-straddling reads, FromBytes).
	CopiedBytes atomic.Int64
	// SmallAllocs and ClusterAllocs count mbuf allocations by kind
	// (including pool hits; PoolMisses counts the ones that reached the Go
	// allocator).
	SmallAllocs   atomic.Int64
	ClusterAllocs atomic.Int64
	// PoolHits and PoolMisses count free-list behaviour of the small and
	// cluster allocators.
	PoolHits   atomic.Int64
	PoolMisses atomic.Int64
	// LoanedBytes counts bytes of external storage grafted into chains by
	// AppendExt without copying (the cluster-loaning path).
	LoanedBytes atomic.Int64
	// Views counts zero-copy range references created by Chain.Range and
	// Dissector.NextChain.
	Views atomic.Int64
}

// Stats is the package-wide counter instance.
var Stats Counters

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.CopiedBytes.Store(0)
	c.SmallAllocs.Store(0)
	c.ClusterAllocs.Store(0)
	c.PoolHits.Store(0)
	c.PoolMisses.Store(0)
	c.LoanedBytes.Store(0)
	c.Views.Store(0)
}

// StatsSnapshot is a plain-value copy of the package counters, for metrics
// export (nfsd -stats, nfsstat) and test assertions.
type StatsSnapshot struct {
	CopiedBytes   int64
	SmallAllocs   int64
	ClusterAllocs int64
	PoolHits      int64
	PoolMisses    int64
	LoanedBytes   int64
	Views         int64
}

// Snapshot reads every counter atomically (each value individually, the
// nfsstat guarantee).
func (c *Counters) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		CopiedBytes:   c.CopiedBytes.Load(),
		SmallAllocs:   c.SmallAllocs.Load(),
		ClusterAllocs: c.ClusterAllocs.Load(),
		PoolHits:      c.PoolHits.Load(),
		PoolMisses:    c.PoolMisses.Load(),
		LoanedBytes:   c.LoanedBytes.Load(),
		Views:         c.Views.Load(),
	}
}

// Mbuf is one buffer in a chain. Data occupies buf[off : off+len].
type Mbuf struct {
	buf     []byte
	off     int
	dlen    int
	cluster bool
	next    *Mbuf

	// Storage ownership (see pool.go). refs counts the chains and views
	// referencing this mbuf's storage when it is the owner; owner points at
	// the storage-owning mbuf for views; pooled marks storage that returns
	// to a free list on the last release; ext marks loaned, caller-owned
	// storage that a Builder must never extend into; hdr marks a bare
	// header struct (view or loan, no storage of its own) that recycles
	// through the header free list.
	refs   atomic.Int32
	owner  *Mbuf
	pooled bool
	ext    bool
	hdr    bool
}

// Len returns the number of valid data bytes in the mbuf.
func (m *Mbuf) Len() int { return m.dlen }

// Cluster reports whether the mbuf is a page cluster.
func (m *Mbuf) Cluster() bool { return m.cluster }

// Data returns the valid data bytes. The slice aliases the mbuf storage.
func (m *Mbuf) Data() []byte { return m.buf[m.off : m.off+m.dlen] }

// extern reports whether the mbuf's data area must not be extended by a
// Builder: views and loaned storage both share bytes beyond dlen with
// someone else.
func (m *Mbuf) extern() bool { return m.ext || m.owner != nil }

// viewOf returns a view mbuf referencing n bytes of m's data starting at
// data offset off, taking a storage reference on m's owner.
func viewOf(m *Mbuf, off, n int) *Mbuf {
	o := m
	if m.owner != nil {
		o = m.owner
	}
	o.refs.Add(1)
	v := newHdr()
	v.buf, v.off, v.dlen, v.cluster, v.owner = m.buf, m.off+off, n, m.cluster, o
	return v
}

// Chain is a list of mbufs holding a logical byte sequence.
type Chain struct {
	head, tail *Mbuf
	length     int
}

// Len returns the total data length of the chain.
func (c *Chain) Len() int { return c.length }

// Empty reports whether the chain holds no data.
func (c *Chain) Empty() bool { return c.length == 0 }

// Segments returns the number of mbufs in the chain.
func (c *Chain) Segments() int {
	n := 0
	for m := c.head; m != nil; m = m.next {
		n++
	}
	return n
}

// ForEach calls fn once per mbuf with its data slice, in order. The slices
// alias chain storage and are valid only while the chain is.
func (c *Chain) ForEach(fn func(b []byte)) {
	for m := c.head; m != nil; m = m.next {
		if m.dlen > 0 {
			fn(m.Data())
		}
	}
}

// Clusters returns the number of cluster mbufs in the chain; the NIC model
// uses this to decide how much data page-remapping can avoid copying.
func (c *Chain) Clusters() (count, bytes int) {
	return c.ClusterRange(0, c.length)
}

// ClusterRange reports how many cluster mbufs (and how many of their bytes)
// fall inside chain range [off, off+n) without materializing a view — the
// allocation-free form of Range(off, n).Clusters() the NIC transmit path
// uses per fragment.
func (c *Chain) ClusterRange(off, n int) (count, bytes int) {
	if off < 0 || n < 0 || off+n > c.length {
		panic("mbuf: ClusterRange out of bounds")
	}
	m := c.head
	for m != nil && off >= m.dlen {
		off -= m.dlen
		m = m.next
	}
	for n > 0 && m != nil {
		take := m.dlen - off
		if take > n {
			take = n
		}
		if m.cluster {
			count++
			bytes += take
		}
		n -= take
		off = 0
		m = m.next
	}
	return count, bytes
}

func (c *Chain) appendMbuf(m *Mbuf) {
	if c.head == nil {
		c.head, c.tail = m, m
	} else {
		c.tail.next = m
		c.tail = m
	}
	c.length += m.dlen
}

// Append copies b onto the end of the chain, allocating clusters for bulk
// data and small mbufs for short tails, the way sosend does.
func (c *Chain) Append(b []byte) {
	Stats.CopiedBytes.Add(int64(len(b)))
	for len(b) > 0 {
		var m *Mbuf
		if len(b) > MLen {
			m = newCluster()
		} else {
			m = newSmall()
		}
		n := copy(m.buf, b)
		m.dlen = n
		b = b[n:]
		c.appendMbuf(m)
	}
}

// AppendCluster grafts an externally produced, cluster-sized buffer onto the
// chain without copying — the analogue of lending a buffer-cache page to the
// network code. The caller must not modify b afterwards.
func (c *Chain) AppendCluster(b []byte) {
	m := newHdr()
	m.buf, m.dlen, m.cluster, m.ext = b, len(b), true, true
	m.refs.Store(1)
	Stats.ClusterAllocs.Add(1)
	c.appendMbuf(m)
}

// AppendExt loans caller-owned storage into the chain without copying: the
// Go analogue of BSD external-storage mbufs (cluster loaning). The chain
// references b directly, so the lender must keep b stable until every chain
// and view referencing it is dead — the memfs block-replace (copy-on-write)
// discipline is what guarantees that for loaned file blocks. Loaned pages
// count as clusters for the NIC page-remap model.
func (c *Chain) AppendExt(b []byte) {
	if len(b) == 0 {
		return
	}
	m := newHdr()
	m.buf, m.dlen, m.cluster, m.ext = b, len(b), true, true
	m.refs.Store(1)
	Stats.LoanedBytes.Add(int64(len(b)))
	c.appendMbuf(m)
}

// AppendChain moves all mbufs of other onto the end of c (other is emptied).
func (c *Chain) AppendChain(other *Chain) {
	if other.head == nil {
		return
	}
	if c.head == nil {
		c.head, c.tail = other.head, other.tail
	} else {
		c.tail.next = other.head
		c.tail = other.tail
	}
	c.length += other.length
	other.head, other.tail, other.length = nil, nil, 0
}

// Prepend inserts b before the existing data (m_prepend): used for RPC
// record marks and lower-layer headers.
func (c *Chain) Prepend(b []byte) {
	Stats.CopiedBytes.Add(int64(len(b)))
	var m *Mbuf
	if len(b) <= MLen {
		m = newSmall()
		// Leave leading space the way MH_ALIGN does, in case of another
		// prepend; put data at the end of the buffer.
		m.off = MLen - len(b)
	} else {
		m = newCluster()
	}
	copy(m.buf[m.off:], b)
	m.dlen = len(b)
	m.next = c.head
	c.head = m
	if c.tail == nil {
		c.tail = m
	}
	c.length += len(b)
}

// FromBytes builds a chain holding a copy of b.
func FromBytes(b []byte) *Chain {
	c := &Chain{}
	c.Append(b)
	return c
}

// Bytes linearizes the chain into a fresh slice (a full copy).
func (c *Chain) Bytes() []byte {
	out := make([]byte, 0, c.length)
	for m := c.head; m != nil; m = m.next {
		out = append(out, m.Data()...)
	}
	Stats.CopiedBytes.Add(int64(c.length))
	return out
}

// CopyTo copies the chain's bytes into dst, which must be at least Len()
// long, and returns the number of bytes copied.
func (c *Chain) CopyTo(dst []byte) int {
	n := 0
	for m := c.head; m != nil; m = m.next {
		n += copy(dst[n:], m.Data())
	}
	Stats.CopiedBytes.Add(int64(n))
	return n
}

// Range returns a zero-copy view chain referencing bytes [off, off+n) of c.
// The returned chain shares storage with c (holding references that keep
// pooled storage alive); neither side's data may be modified afterwards. It
// is how IP fragmentation and TCP segmentation reference payload without
// copying.
func (c *Chain) Range(off, n int) *Chain {
	if off < 0 || n < 0 || off+n > c.length {
		panic("mbuf: Range out of bounds")
	}
	Stats.Views.Add(1)
	out := &Chain{}
	m := c.head
	// Skip to the mbuf containing off.
	for m != nil && off >= m.dlen {
		off -= m.dlen
		m = m.next
	}
	for n > 0 && m != nil {
		take := m.dlen - off
		if take > n {
			take = n
		}
		out.appendMbuf(viewOf(m, off, take))
		n -= take
		off = 0
		m = m.next
	}
	if n > 0 {
		panic("mbuf: Range ran off chain")
	}
	return out
}

// Clone returns a deep copy of the chain (one copy pass, unlike the
// Bytes+FromBytes detour, so the duplicate-request cache pays N rather than
// 2N copied bytes per entry).
func (c *Chain) Clone() *Chain {
	out := &Chain{}
	b := NewBuilder(out)
	for m := c.head; m != nil; m = m.next {
		b.WriteBytes(m.Data())
	}
	return out
}
