package mbuf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromBytesRoundTrip(t *testing.T) {
	sizes := []int{0, 1, MLen, MLen + 1, ClBytes, ClBytes + 1, 3*ClBytes + 17, 8192}
	for _, n := range sizes {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i * 7)
		}
		c := FromBytes(b)
		if c.Len() != n {
			t.Fatalf("size %d: Len = %d", n, c.Len())
		}
		if !bytes.Equal(c.Bytes(), b) {
			t.Fatalf("size %d: roundtrip mismatch", n)
		}
	}
}

func TestAppendChainMovesAll(t *testing.T) {
	a := FromBytes([]byte("hello "))
	b := FromBytes([]byte("world"))
	a.AppendChain(b)
	if got := string(a.Bytes()); got != "hello world" {
		t.Fatalf("got %q", got)
	}
	if b.Len() != 0 || !b.Empty() {
		t.Fatal("source chain not emptied")
	}
	// Appending an empty chain is a no-op.
	a.AppendChain(&Chain{})
	if got := string(a.Bytes()); got != "hello world" {
		t.Fatalf("after empty append: %q", got)
	}
}

func TestPrepend(t *testing.T) {
	c := FromBytes([]byte("payload"))
	c.Prepend([]byte("hdr:"))
	if got := string(c.Bytes()); got != "hdr:payload" {
		t.Fatalf("got %q", got)
	}
	c.Prepend([]byte("h2:"))
	if got := string(c.Bytes()); got != "h2:hdr:payload" {
		t.Fatalf("got %q", got)
	}
	// Prepend onto an empty chain.
	e := &Chain{}
	e.Prepend([]byte("x"))
	if got := string(e.Bytes()); got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestAppendClusterZeroCopy(t *testing.T) {
	Stats.Reset()
	page := make([]byte, ClBytes)
	for i := range page {
		page[i] = byte(i)
	}
	c := &Chain{}
	c.AppendCluster(page)
	if Stats.CopiedBytes.Load() != 0 {
		t.Fatalf("AppendCluster copied %d bytes", Stats.CopiedBytes.Load())
	}
	if n, bts := c.Clusters(); n != 1 || bts != ClBytes {
		t.Fatalf("Clusters = %d,%d", n, bts)
	}
}

func TestRangeMatchesSlice(t *testing.T) {
	f := func(data []byte, a, b uint16) bool {
		if len(data) == 0 {
			return true
		}
		off := int(a) % len(data)
		n := int(b) % (len(data) - off + 1)
		c := FromBytes(data)
		v := c.Range(off, n)
		return bytes.Equal(v.Bytes(), data[off:off+n]) && v.Len() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromBytes([]byte("abc")).Range(1, 5)
}

func TestBuilderContiguity(t *testing.T) {
	c := &Chain{}
	b := NewBuilder(c)
	// Fill most of a small mbuf, then request a field that cannot fit
	// contiguously: it must land in a fresh mbuf.
	first := b.Next(100)
	for i := range first {
		first[i] = 1
	}
	second := b.Next(20)
	for i := range second {
		second[i] = 2
	}
	if c.Segments() != 2 {
		t.Fatalf("segments = %d, want 2", c.Segments())
	}
	out := c.Bytes()
	if len(out) != 120 {
		t.Fatalf("len = %d", len(out))
	}
	for i := 0; i < 100; i++ {
		if out[i] != 1 {
			t.Fatal("first field corrupted")
		}
	}
	for i := 100; i < 120; i++ {
		if out[i] != 2 {
			t.Fatal("second field corrupted")
		}
	}
}

func TestBuilderDissectorRoundTrip(t *testing.T) {
	f := func(fields [][]byte) bool {
		c := &Chain{}
		b := NewBuilder(c)
		var want []byte
		for _, fld := range fields {
			if len(fld) > ClBytes {
				fld = fld[:ClBytes]
			}
			b.WriteBytes(fld)
			want = append(want, fld...)
		}
		d := NewDissector(c)
		var got []byte
		for _, fld := range fields {
			n := len(fld)
			if n > ClBytes {
				n = ClBytes
			}
			p, err := d.Next(n)
			if err != nil {
				return false
			}
			got = append(got, p...)
		}
		return bytes.Equal(got, want) && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDissectorStraddle(t *testing.T) {
	// Build a chain of two mbufs and read a field across the boundary.
	c := &Chain{}
	b := NewBuilder(c)
	copy(b.Next(100), bytes.Repeat([]byte{0xaa}, 100))
	copy(b.Next(50), bytes.Repeat([]byte{0xbb}, 50))
	if c.Segments() != 2 {
		t.Fatalf("segments = %d", c.Segments())
	}
	d := NewDissector(c)
	if _, err := d.Next(90); err != nil {
		t.Fatal(err)
	}
	p, err := d.Next(30) // 10 from first mbuf, 20 from second
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if p[i] != 0xaa {
			t.Fatalf("byte %d = %x", i, p[i])
		}
	}
	for i := 10; i < 30; i++ {
		if p[i] != 0xbb {
			t.Fatalf("byte %d = %x", i, p[i])
		}
	}
	if d.Remaining() != 30 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestDissectorShort(t *testing.T) {
	c := FromBytes([]byte("abcd"))
	d := NewDissector(c)
	if _, err := d.Next(5); err != ErrShort {
		t.Fatalf("err = %v, want ErrShort", err)
	}
	if _, err := d.Next(4); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Next(1); err != ErrShort {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestSkip(t *testing.T) {
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i)
	}
	c := FromBytes(data)
	d := NewDissector(c)
	if err := d.Skip(3000); err != nil {
		t.Fatal(err)
	}
	p, err := d.Next(4)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != byte(3000%256) || p[3] != byte(3003%256) {
		t.Fatalf("skip landed wrong: %v", p[:4])
	}
	if err := d.Skip(5000); err != ErrShort {
		t.Fatalf("err = %v, want ErrShort", err)
	}
}

func TestCopyTo(t *testing.T) {
	data := []byte("some test data that spans things")
	c := FromBytes(data)
	dst := make([]byte, len(data))
	if n := c.CopyTo(dst); n != len(data) {
		t.Fatalf("n = %d", n)
	}
	if !bytes.Equal(dst, data) {
		t.Fatal("CopyTo mismatch")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := FromBytes([]byte("original"))
	cl := c.Clone()
	// Mutate the original through a builder; clone must not change.
	NewBuilder(c).WriteBytes([]byte("-more"))
	if got := string(cl.Bytes()); got != "original" {
		t.Fatalf("clone changed: %q", got)
	}
}

func TestRandomizedBulkOps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var want []byte
		c := &Chain{}
		for op := 0; op < 20; op++ {
			chunk := make([]byte, rng.Intn(4000))
			rng.Read(chunk)
			switch rng.Intn(3) {
			case 0:
				c.Append(chunk)
				want = append(want, chunk...)
			case 1:
				c.Prepend(chunk[:min(len(chunk), 64)])
				want = append(chunk[:min(len(chunk), 64)], want...)
			case 2:
				other := FromBytes(chunk)
				c.AppendChain(other)
				want = append(want, chunk...)
			}
		}
		if !bytes.Equal(c.Bytes(), want) {
			t.Fatalf("trial %d: bulk ops mismatch (len %d vs %d)", trial, c.Len(), len(want))
		}
	}
}
