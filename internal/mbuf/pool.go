package mbuf

import "sync"

// Mbuf storage is pooled the way the BSD kernel keeps mbufs on free lists
// (MGET / MCLGET): Chain.Free returns an mbuf's storage to a per-kind pool
// once the last reference drops, and the allocators below satisfy requests
// from the pool before asking the Go allocator. Under the RPC hot path this
// turns the per-message mbuf churn into pointer recycling, which is the Go
// analogue of the paper's "never allocate in the common case" discipline.
//
// Storage ownership is reference counted: Range and Dissector.NextChain
// create views that share an owner's storage, and the owner is recycled only
// when the owning chain and every view have been freed. Chains that are
// never freed are simply collected by the GC (the pool misses next time);
// freeing is an optimization, never a requirement.

var smallPool = sync.Pool{}
var clusterPool = sync.Pool{}

// hdrPool recycles bare mbuf header structs — views and external-storage
// (loaned) mbufs carry no storage of their own, only the ~100-byte header,
// and the RPC hot path mints one per READ reply and per WRITE payload view.
// The BSD analogue is MGET of a header with M_EXT set.
var hdrPool = sync.Pool{}

// newHdr allocates a bare header for a view or loan, preferring the free
// list. Callers fill in buf/off/dlen/cluster/ext/owner and refs.
func newHdr() *Mbuf {
	if v := hdrPool.Get(); v != nil {
		return v.(*Mbuf)
	}
	return &Mbuf{hdr: true}
}

// putHdr scrubs a dead header and returns it to the free list.
func putHdr(m *Mbuf) {
	m.buf, m.off, m.dlen, m.next, m.owner = nil, 0, 0, nil, nil
	m.cluster, m.ext = false, false
	m.refs.Store(0)
	hdrPool.Put(m)
}

// newSmall allocates a small mbuf, preferring the free list.
func newSmall() *Mbuf {
	Stats.SmallAllocs.Add(1)
	if v := smallPool.Get(); v != nil {
		Stats.PoolHits.Add(1)
		m := v.(*Mbuf)
		m.refs.Store(1)
		return m
	}
	Stats.PoolMisses.Add(1)
	m := &Mbuf{buf: make([]byte, MLen), pooled: true}
	m.refs.Store(1)
	return m
}

// newCluster allocates a cluster mbuf, preferring the free list.
func newCluster() *Mbuf {
	Stats.ClusterAllocs.Add(1)
	if v := clusterPool.Get(); v != nil {
		Stats.PoolHits.Add(1)
		m := v.(*Mbuf)
		m.refs.Store(1)
		return m
	}
	Stats.PoolMisses.Add(1)
	m := &Mbuf{buf: make([]byte, ClBytes), cluster: true, pooled: true}
	m.refs.Store(1)
	return m
}

// CacheBatch is how many mbufs a Cache pulls from the shared pools per
// refill (and the most it keeps per kind when idle).
const CacheBatch = 16

// Cache is a private, single-goroutine allocation cache in front of the
// shared pools: the analogue of the per-CPU mbuf caches BSD descendants put
// in front of the global free list. A hot ingest loop (one socket reader
// staging every datagram of a batch into chains) refills it CacheBatch
// mbufs at a time, so the shared sync.Pool — and its per-P bookkeeping — is
// touched once per batch instead of once per mbuf. Freeing is unchanged:
// chains built from a Cache release their storage to the shared pools via
// Chain.Free like any other, from any goroutine.
//
// The zero value is ready to use. A Cache must not be shared between
// goroutines.
type Cache struct {
	small, cluster []*Mbuf
}

// getSmall pops a small mbuf, refilling the cache from the shared pool in
// one batch when empty.
func (c *Cache) getSmall() *Mbuf {
	if n := len(c.small); n > 0 {
		m := c.small[n-1]
		c.small[n-1] = nil
		c.small = c.small[:n-1]
		return m
	}
	if c.small == nil {
		c.small = make([]*Mbuf, 0, CacheBatch)
	}
	for i := 0; i < CacheBatch-1; i++ {
		c.small = append(c.small, newSmall())
	}
	return newSmall()
}

// getCluster pops a cluster mbuf, batch-refilling when empty.
func (c *Cache) getCluster() *Mbuf {
	if n := len(c.cluster); n > 0 {
		m := c.cluster[n-1]
		c.cluster[n-1] = nil
		c.cluster = c.cluster[:n-1]
		return m
	}
	if c.cluster == nil {
		c.cluster = make([]*Mbuf, 0, CacheBatch)
	}
	for i := 0; i < CacheBatch-1; i++ {
		c.cluster = append(c.cluster, newCluster())
	}
	return newCluster()
}

// AppendTo copies b onto the end of ch like Chain.Append, drawing storage
// from the cache.
func (c *Cache) AppendTo(ch *Chain, b []byte) {
	Stats.CopiedBytes.Add(int64(len(b)))
	for len(b) > 0 {
		var m *Mbuf
		if len(b) > MLen {
			m = c.getCluster()
		} else {
			m = c.getSmall()
		}
		n := copy(m.buf, b)
		m.dlen = n
		b = b[n:]
		ch.appendMbuf(m)
	}
}

// FromBytes builds a chain holding a copy of b from cached storage; the
// batch-allocating equivalent of the package-level FromBytes.
func (c *Cache) FromBytes(b []byte) *Chain {
	ch := &Chain{}
	c.AppendTo(ch, b)
	return ch
}

// Drain returns every cached mbuf to the shared pools (a reader calls it on
// shutdown so parked storage isn't stranded with a dead goroutine).
func (c *Cache) Drain() {
	for _, m := range c.small {
		m.release()
	}
	for _, m := range c.cluster {
		m.release()
	}
	c.small, c.cluster = nil, nil
}

// release drops one reference to the mbuf's storage owner, recycling the
// owner onto its free list when the last reference is gone. A view's own
// header recycles immediately (no other mbuf ever points at it: views
// reference the root storage owner, never an intermediate view); an
// external-storage owner recycles its header once the refs drain, leaving
// the loaned bytes with the lender.
func (m *Mbuf) release() {
	o := m
	if m.owner != nil {
		o = m.owner
	}
	n := o.refs.Add(-1)
	if n < 0 {
		panic("mbuf: release of already-freed mbuf (double Free?)")
	}
	if m != o && m.hdr {
		putHdr(m)
	}
	if n != 0 {
		return
	}
	if o.pooled {
		o.off, o.dlen, o.next, o.owner = 0, 0, nil, nil
		if o.cluster {
			clusterPool.Put(o)
		} else {
			smallPool.Put(o)
		}
	} else if o.hdr {
		putHdr(o)
	}
}

// Free releases every mbuf in the chain back to the free lists (subject to
// outstanding view references) and empties the chain. The caller must not
// touch data previously obtained from the chain afterwards. Freeing an
// already-emptied chain is a no-op; freeing the same mbufs through two
// chains is a bug (and panics under test).
func (c *Chain) Free() {
	for m := c.head; m != nil; {
		next := m.next
		m.release()
		m = next
	}
	c.head, c.tail, c.length = nil, nil, 0
}
