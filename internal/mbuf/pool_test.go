package mbuf

import (
	"bytes"
	"sync"
	"testing"
)

// TestPoolRecyclesStorage: a build/free cycle returns mbufs to the free
// lists, so a warm second pass hits the pool instead of the allocator.
func TestPoolRecyclesStorage(t *testing.T) {
	payload := bytes.Repeat([]byte{0xab}, 3*ClBytes+17)
	c := FromBytes(payload)
	if got := c.Bytes(); !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch before free")
	}
	c.Free()
	if c.Len() != 0 || c.Segments() != 0 {
		t.Fatalf("freed chain not empty: len=%d segs=%d", c.Len(), c.Segments())
	}

	Stats.Reset()
	c2 := FromBytes(payload)
	defer c2.Free()
	snap := Stats.Snapshot()
	if snap.PoolHits == 0 {
		t.Fatalf("second pass had no pool hits (misses=%d)", snap.PoolMisses)
	}
	if got := c2.Bytes(); !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch on recycled storage")
	}
}

// TestDoubleFreePanics: freeing the same storage twice is a bug and must be
// loud about it.
func TestDoubleFreePanics(t *testing.T) {
	c := FromBytes([]byte("once"))
	m := c.head
	c.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.release()
}

// TestViewKeepsOwnerAlive: freeing the owning chain while a view exists must
// not recycle the storage out from under the view; the storage is recycled
// only after the view is freed too.
func TestViewKeepsOwnerAlive(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 2*ClBytes)
	c := FromBytes(payload)
	view := c.Range(100, ClBytes)
	want := payload[100 : 100+ClBytes]
	c.Free() // view still holds references

	// Churn the pool: if the view's storage had been recycled, these
	// builds would scribble over it.
	for i := 0; i < 8; i++ {
		scratch := FromBytes(bytes.Repeat([]byte{byte(i)}, 2*ClBytes))
		scratch.Free()
	}
	if got := view.Bytes(); !bytes.Equal(got, want) {
		t.Fatal("view data corrupted after owner free + pool churn")
	}
	view.Free()
}

// TestViewOfViewChasesRootOwner: a range of a range must reference the root
// storage owner, not the intermediate view.
func TestViewOfViewChasesRootOwner(t *testing.T) {
	payload := bytes.Repeat([]byte{0xc3}, ClBytes)
	c := FromBytes(payload)
	v1 := c.Range(8, ClBytes-8)
	v2 := v1.Range(8, ClBytes-16)
	c.Free()
	v1.Free()
	// v2 alone keeps the cluster alive.
	for i := 0; i < 4; i++ {
		scratch := FromBytes(bytes.Repeat([]byte{byte(0x10 + i)}, ClBytes))
		scratch.Free()
	}
	if got := v2.Bytes(); !bytes.Equal(got, payload[16:ClBytes]) {
		t.Fatal("second-level view corrupted after owner and first view freed")
	}
	v2.Free()
}

// TestAppendExtLoansWithoutCopy: loaned storage is referenced, not copied,
// and never returns to the pools.
func TestAppendExtLoansWithoutCopy(t *testing.T) {
	Stats.Reset()
	page := bytes.Repeat([]byte{0x77}, 8192)
	c := &Chain{}
	c.AppendExt(page[:4096])
	c.AppendExt(page[4096:])
	snap := Stats.Snapshot()
	if snap.CopiedBytes != 0 {
		t.Fatalf("AppendExt copied %d bytes, want 0", snap.CopiedBytes)
	}
	if snap.LoanedBytes != 8192 {
		t.Fatalf("LoanedBytes = %d, want 8192", snap.LoanedBytes)
	}
	// The chain aliases the page.
	page[0] = 0x11
	if c.head.Data()[0] != 0x11 {
		t.Fatal("chain does not alias loaned page")
	}
	if n, b := c.Clusters(); n != 2 || b != 8192 {
		t.Fatalf("Clusters() = %d, %d; want 2, 8192 (loans count as clusters)", n, b)
	}
	c.Free() // must not panic or pool the caller's page
}

// TestDissectorNextChainZeroCopy: carving a payload out of a message as a
// chain view moves no bytes even when the range spans mbufs.
func TestDissectorNextChainZeroCopy(t *testing.T) {
	payload := bytes.Repeat([]byte{0x42}, 3*ClBytes)
	c := FromBytes(payload)
	Stats.Reset()
	d := NewDissector(c)
	if err := d.Skip(10); err != nil {
		t.Fatal(err)
	}
	view, err := d.NextChain(2 * ClBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got := Stats.CopiedBytes.Load(); got != 0 {
		t.Fatalf("NextChain copied %d bytes, want 0", got)
	}
	if view.Len() != 2*ClBytes {
		t.Fatalf("view len = %d, want %d", view.Len(), 2*ClBytes)
	}
	if !bytes.Equal(view.Bytes(), payload[10:10+2*ClBytes]) {
		t.Fatal("view content mismatch")
	}
	view.Free()
	c.Free()
}

// TestBuilderNeverExtendsLoanedTail: after grafting loaned storage onto a
// chain, a Builder must start a fresh mbuf rather than write into the
// lender's page (XDR padding after PutOpaqueChain would corrupt it).
func TestBuilderNeverExtendsLoanedTail(t *testing.T) {
	page := bytes.Repeat([]byte{0xee}, 100)
	c := &Chain{}
	c.AppendExt(page[:60]) // spare capacity beyond dlen belongs to the lender
	b := NewBuilder(c)
	pad := b.Next(4)
	copy(pad, []byte{0, 0, 0, 0})
	for i, v := range page {
		if v != 0xee {
			t.Fatalf("builder scribbled on loaned page at %d (now %#x)", i, v)
		}
	}
}

// TestPoolConcurrentChurn hammers allocate/range/free from many goroutines
// (run under -race): refcounts, pool recycling and data integrity must hold.
func TestPoolConcurrentChurn(t *testing.T) {
	const workers = 8
	const rounds = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			fill := byte(id + 1)
			payload := bytes.Repeat([]byte{fill}, ClBytes+MLen+7)
			for i := 0; i < rounds; i++ {
				c := FromBytes(payload)
				v := c.Range(3, ClBytes)
				c.Free()
				for _, got := range v.Bytes() {
					if got != fill {
						t.Errorf("worker %d: view corrupted (got %#x)", id, got)
						return
					}
				}
				v.Free()
			}
		}(w)
	}
	wg.Wait()
}

// TestCacheFromBytesRoundTrip checks that chains built from a Cache carry
// the same bytes as ones built by the package-level FromBytes, across the
// small/cluster boundary and multi-segment sizes, and that freed storage
// is safely reused on the next build.
func TestCacheFromBytesRoundTrip(t *testing.T) {
	var cache Cache
	defer cache.Drain()
	sizes := []int{1, MLen - 1, MLen, MLen + 1, ClBytes, ClBytes + MLen + 7}
	for round := 0; round < 3; round++ {
		fill := byte(0x30 + round)
		for _, n := range sizes {
			payload := bytes.Repeat([]byte{fill}, n)
			c := cache.FromBytes(payload)
			if c.Len() != n {
				t.Fatalf("size %d round %d: chain length %d", n, round, c.Len())
			}
			if !bytes.Equal(c.Bytes(), payload) {
				t.Fatalf("size %d round %d: chain bytes differ from payload", n, round)
			}
			c.Free() // next round must see intact data from recycled storage
		}
	}
}

// TestCacheBatchRefill verifies the point of the Cache: the shared pools
// are touched once per CacheBatch allocations, not once per mbuf.
func TestCacheBatchRefill(t *testing.T) {
	Stats.Reset()
	var cache Cache
	defer cache.Drain()
	one := []byte{0xaa}
	chains := []*Chain{cache.FromBytes(one)}
	if got := Stats.SmallAllocs.Load(); got != CacheBatch {
		t.Fatalf("first allocation pulled %d smalls from the pools, want one batch of %d",
			got, CacheBatch)
	}
	// The rest of the batch must come from the cache without pool traffic.
	for i := 1; i < CacheBatch; i++ {
		chains = append(chains, cache.FromBytes(one))
	}
	if got := Stats.SmallAllocs.Load(); got != CacheBatch {
		t.Fatalf("draining the cached batch still hit the pools: %d allocs, want %d",
			got, CacheBatch)
	}
	// Allocation CacheBatch+1 triggers the next refill.
	chains = append(chains, cache.FromBytes(one))
	if got := Stats.SmallAllocs.Load(); got != 2*CacheBatch {
		t.Fatalf("refill pulled %d smalls total, want %d", got, 2*CacheBatch)
	}
	// Clusters batch independently.
	big := make([]byte, MLen+1)
	chains = append(chains, cache.FromBytes(big))
	if got := Stats.ClusterAllocs.Load(); got != CacheBatch {
		t.Fatalf("first cluster allocation pulled %d from the pools, want %d",
			got, CacheBatch)
	}
	for _, c := range chains {
		c.Free()
	}
}

// TestCacheDrainRecyclesParkedStorage checks Drain hands cached-but-unused
// mbufs back to the shared pools instead of stranding them: a post-Drain
// allocation must be a pool hit, and a drained Cache must still work.
func TestCacheDrainRecyclesParkedStorage(t *testing.T) {
	var cache Cache
	c := cache.FromBytes([]byte{1}) // parks CacheBatch-1 smalls in the cache
	c.Free()
	cache.Drain()
	Stats.Reset()
	c2 := FromBytes([]byte{2}) // package-level: straight from the shared pool
	if hits := Stats.PoolHits.Load(); hits != 1 {
		t.Fatalf("allocation after Drain missed the pool (hits=%d): drained storage was stranded", hits)
	}
	c2.Free()
	// The drained cache is still usable (zero-value semantics all over again).
	c3 := cache.FromBytes([]byte{3, 4, 5})
	if !bytes.Equal(c3.Bytes(), []byte{3, 4, 5}) {
		t.Fatalf("cache unusable after Drain: got % x", c3.Bytes())
	}
	c3.Free()
	cache.Drain()
}
