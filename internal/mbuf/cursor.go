package mbuf

import (
	"errors"
	"fmt"
)

// ErrShort is returned by Dissector operations that run past the end of the
// chain — the analogue of a truncated RPC message.
var ErrShort = errors.New("mbuf: chain too short")

// Builder appends data to a chain field by field, keeping fields contiguous
// within an mbuf the way the nfsm_build macro does: if the current mbuf
// cannot hold the next field contiguously, a new mbuf is started.
//
// Builders embed no state beyond the chain pointer, so they can live inside
// a larger struct (xdr.Encoder does this) and be re-pointed with Reset
// without allocating.
type Builder struct {
	c *Chain
}

// NewBuilder returns a Builder appending to c.
func NewBuilder(c *Chain) *Builder { return &Builder{c: c} }

// Reset re-points the builder at c, allowing a value-embedded Builder to be
// reused without allocation.
func (b *Builder) Reset(c *Chain) { b.c = c }

// Chain returns the chain under construction.
func (b *Builder) Chain() *Chain { return b.c }

// Next reserves n contiguous bytes at the end of the chain and returns the
// slice to fill in — the nfsm_build contract. Fields larger than a cluster
// are rejected; callers append bulk data with Chain.Append/AppendCluster.
func (b *Builder) Next(n int) []byte {
	if n > ClBytes {
		panic(fmt.Sprintf("mbuf: Builder.Next(%d) exceeds cluster size", n))
	}
	t := b.c.tail
	// A view or loaned-storage tail shares the bytes past dlen with its
	// storage owner (a memfs block, another chain): never extend into them —
	// start a fresh mbuf instead.
	if t == nil || t.extern() || t.off+t.dlen+n > len(t.buf) {
		var m *Mbuf
		if n > MLen {
			m = newCluster()
		} else {
			m = newSmall()
		}
		b.c.appendMbuf(m)
		t = m
	}
	start := t.off + t.dlen
	t.dlen += n
	b.c.length += n
	return t.buf[start : start+n]
}

// WriteBytes appends b, using contiguous reservation for short fields and
// bulk append for long ones.
func (b *Builder) WriteBytes(p []byte) {
	if len(p) <= MLen {
		copy(b.Next(len(p)), p)
		Stats.CopiedBytes.Add(int64(len(p)))
		return
	}
	b.c.Append(p)
}

// Dissector reads a chain sequentially field by field, the nfsm_disect
// analogue. Reads within one mbuf return aliasing slices with no copy; reads
// straddling a boundary copy into a scratch buffer (and are counted). Small
// straddles land in an inline array so steady-state dissection allocates
// nothing.
type Dissector struct {
	m       *Mbuf // current mbuf
	off     int   // offset into current mbuf's data
	remain  int   // bytes left in the chain from the cursor
	inline  [64]byte
	scratch []byte
}

// NewDissector returns a Dissector positioned at the start of c.
func NewDissector(c *Chain) *Dissector {
	return &Dissector{m: c.head, remain: c.length}
}

// Reset re-points the dissector at the start of c, allowing a value-embedded
// Dissector to be reused without allocation.
func (d *Dissector) Reset(c *Chain) {
	d.m = c.head
	d.off = 0
	d.remain = c.length
}

// Remaining returns the number of unread bytes.
func (d *Dissector) Remaining() int { return d.remain }

// Next returns the next n bytes. The returned slice is valid until the next
// call and must not be modified.
func (d *Dissector) Next(n int) ([]byte, error) {
	if n > d.remain {
		return nil, ErrShort
	}
	if n == 0 {
		return nil, nil
	}
	// Skip exhausted mbufs.
	for d.m != nil && d.off >= d.m.dlen {
		d.m = d.m.next
		d.off = 0
	}
	if d.m == nil {
		return nil, ErrShort
	}
	if d.off+n <= d.m.dlen {
		out := d.m.buf[d.m.off+d.off : d.m.off+d.off+n]
		d.off += n
		d.remain -= n
		return out, nil
	}
	// Field straddles mbufs: gather into scratch (counted copy). XDR fields
	// are almost always small, so the inline buffer covers the steady state.
	var out []byte
	if n <= len(d.inline) {
		out = d.inline[:n]
	} else {
		if cap(d.scratch) < n {
			d.scratch = make([]byte, n)
		}
		out = d.scratch[:n]
	}
	got := 0
	for got < n {
		if d.m == nil {
			return nil, ErrShort
		}
		avail := d.m.dlen - d.off
		if avail == 0 {
			d.m = d.m.next
			d.off = 0
			continue
		}
		take := n - got
		if take > avail {
			take = avail
		}
		copy(out[got:], d.m.buf[d.m.off+d.off:d.m.off+d.off+take])
		got += take
		d.off += take
	}
	Stats.CopiedBytes.Add(int64(n))
	d.remain -= n
	return out, nil
}

// NextChain carves the next n bytes out of the chain as a zero-copy view —
// the bulk-data counterpart of Next. The returned chain references the
// underlying storage (keeping pooled mbufs alive until it is freed), so no
// bytes move regardless of how many mbufs the range spans. Used for opaque
// payloads (WRITE data, READ replies) where the caller wants the bytes as a
// chain, not a contiguous slice.
func (d *Dissector) NextChain(n int) (*Chain, error) {
	if n > d.remain {
		return nil, ErrShort
	}
	Stats.Views.Add(1)
	out := &Chain{}
	for n > 0 {
		for d.m != nil && d.off >= d.m.dlen {
			d.m = d.m.next
			d.off = 0
		}
		if d.m == nil {
			return nil, ErrShort
		}
		take := d.m.dlen - d.off
		if take > n {
			take = n
		}
		out.appendMbuf(viewOf(d.m, d.off, take))
		d.off += take
		d.remain -= take
		n -= take
	}
	return out, nil
}

// Skip advances the cursor n bytes without returning data.
func (d *Dissector) Skip(n int) error {
	if n > d.remain {
		return ErrShort
	}
	for n > 0 {
		for d.m != nil && d.off >= d.m.dlen {
			d.m = d.m.next
			d.off = 0
		}
		if d.m == nil {
			return ErrShort
		}
		take := d.m.dlen - d.off
		if take > n {
			take = n
		}
		d.off += take
		d.remain -= take
		n -= take
	}
	return nil
}
