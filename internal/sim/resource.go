package sim

// Resource is a FIFO-served resource with a fixed number of slots, used to
// model CPUs, disks and other serially shared hardware. It accounts busy
// time so experiments can report utilization the way the paper's patched
// idle-loop counter did.
type Resource struct {
	env     *Env
	name    string
	slots   int
	inUse   int
	waiters []*waiter

	busy       Time // cumulative slot-busy time
	busySince  Time // when inUse last went 0 -> >0 (single-slot fast path)
	resetAt    Time // start of the current accounting window
	lastUpdate Time
}

// NewResource returns a resource with the given number of slots (>=1).
func NewResource(e *Env, name string, slots int) *Resource {
	if slots < 1 {
		slots = 1
	}
	return &Resource{env: e, name: name, slots: slots}
}

// Name returns the resource name.
func (r *Resource) Name() string { return r.name }

func (r *Resource) account() {
	now := r.env.now
	r.busy += Time(r.inUse) * (now - r.lastUpdate) / Time(r.slots)
	r.lastUpdate = now
}

// Acquire blocks until a slot is free and claims it.
func (r *Resource) Acquire(p *Proc) {
	for r.inUse >= r.slots {
		w := &waiter{p: p}
		r.waiters = append(r.waiters, w)
		p.park()
	}
	r.account()
	r.inUse++
}

// TryAcquire claims a slot without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse >= r.slots {
		return false
	}
	r.account()
	r.inUse++
	return true
}

// Release frees a slot claimed by Acquire.
func (r *Resource) Release() {
	if r.inUse == 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	r.account()
	r.inUse--
	for len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		if w.fire(r.env) {
			break
		}
	}
}

// Use acquires a slot, holds it for d of virtual time, then releases it.
// This is the workhorse for charging CPU and disk costs.
func (r *Resource) Use(p *Proc, d Time) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// QueueLen returns the number of processes waiting for a slot.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// InUse returns the number of busy slots.
func (r *Resource) InUse() int { return r.inUse }

// ResetStats starts a new utilization accounting window at the current time.
func (r *Resource) ResetStats() {
	r.account()
	r.busy = 0
	r.resetAt = r.env.now
}

// BusyTime returns cumulative slot-busy time since the last ResetStats,
// normalized so that all slots busy for t accumulates t.
func (r *Resource) BusyTime() Time {
	r.account()
	return r.busy
}

// Utilization returns the fraction of the accounting window the resource was
// busy, in [0,1].
func (r *Resource) Utilization() float64 {
	r.account()
	window := r.env.now - r.resetAt
	if window <= 0 {
		return 0
	}
	return float64(r.busy) / float64(window)
}
