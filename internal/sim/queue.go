package sim

// waiter represents one parked process waiting for a wakeup that may race
// with a timeout. Exactly one of fire/expire wins.
type waiter struct {
	p     *Proc
	fired bool
	timer *Timer // timeout resume, nil if none
}

// fire resumes the waiter if it has not already been resumed. It reports
// whether this call won the race.
func (w *waiter) fire(e *Env) bool {
	if w.fired {
		return false
	}
	w.fired = true
	if w.timer != nil {
		w.timer.Stop()
	}
	e.resumeAt(e.now, w.p)
	return true
}

// Queue is an unbounded FIFO of items passed between processes. Send never
// blocks; Recv blocks until an item is available. A Queue may also be
// closed, after which Recv returns immediately with ok=false once drained.
type Queue[T any] struct {
	env     *Env
	name    string
	items   []T
	waiters []*waiter
	closed  bool
	// MaxLen, when > 0, bounds the queue; Send drops the item and returns
	// false when the bound is reached (drop-tail, used for router queues).
	MaxLen int
	// Dropped counts items discarded by the MaxLen bound.
	Dropped int
}

// NewQueue returns an empty unbounded queue.
func NewQueue[T any](e *Env, name string) *Queue[T] {
	return &Queue[T]{env: e, name: name}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Send enqueues v, waking one waiter if any. It reports false if the item
// was dropped by the MaxLen bound or the queue is closed.
func (q *Queue[T]) Send(v T) bool {
	if q.closed {
		return false
	}
	if q.MaxLen > 0 && len(q.items) >= q.MaxLen {
		q.Dropped++
		return false
	}
	q.items = append(q.items, v)
	q.wakeOne()
	return true
}

// Close marks the queue closed and wakes all waiters. Items already queued
// may still be drained by Recv.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	for _, w := range q.waiters {
		w.fire(q.env)
	}
	q.waiters = nil
}

func (q *Queue[T]) wakeOne() {
	for len(q.waiters) > 0 {
		w := q.waiters[0]
		q.waiters = q.waiters[1:]
		if w.fire(q.env) {
			return
		}
	}
}

// Recv dequeues the next item, blocking until one is available. ok is false
// if the queue was closed and drained.
func (q *Queue[T]) Recv(p *Proc) (v T, ok bool) {
	for {
		if len(q.items) > 0 {
			v = q.items[0]
			var zero T
			q.items[0] = zero
			q.items = q.items[1:]
			return v, true
		}
		if q.closed {
			return v, false
		}
		w := &waiter{p: p}
		q.waiters = append(q.waiters, w)
		p.park()
	}
}

// RecvTimeout is Recv with a deadline d from now. ok is false on timeout or
// close with no item.
func (q *Queue[T]) RecvTimeout(p *Proc, d Time) (v T, ok bool) {
	deadline := q.env.now + d
	for {
		if len(q.items) > 0 {
			v = q.items[0]
			var zero T
			q.items[0] = zero
			q.items = q.items[1:]
			return v, true
		}
		if q.closed || q.env.now >= deadline {
			return v, false
		}
		w := &waiter{p: p}
		w.timer = q.env.At(deadline, func() { w.fire(q.env) })
		q.waiters = append(q.waiters, w)
		p.park()
		w.fired = true // consume whichever wakeup parked us
	}
}

// Event is a one-shot level-triggered signal: processes Wait until Set is
// called; Waits after Set return immediately.
type Event struct {
	env     *Env
	set     bool
	waiters []*waiter
}

// NewEvent returns an unset event.
func NewEvent(e *Env) *Event { return &Event{env: e} }

// IsSet reports whether Set has been called.
func (ev *Event) IsSet() bool { return ev.set }

// Set marks the event and wakes all waiters. Setting twice is a no-op.
func (ev *Event) Set() {
	if ev.set {
		return
	}
	ev.set = true
	for _, w := range ev.waiters {
		w.fire(ev.env)
	}
	ev.waiters = nil
}

// Wait blocks until the event is set.
func (ev *Event) Wait(p *Proc) {
	if ev.set {
		return
	}
	w := &waiter{p: p}
	ev.waiters = append(ev.waiters, w)
	p.park()
}

// WaitTimeout blocks until the event is set or d elapses; it reports whether
// the event was set.
func (ev *Event) WaitTimeout(p *Proc, d Time) bool {
	if ev.set {
		return true
	}
	deadline := ev.env.now + d
	for !ev.set && ev.env.now < deadline {
		w := &waiter{p: p}
		w.timer = ev.env.At(deadline, func() { w.fire(ev.env) })
		ev.waiters = append(ev.waiters, w)
		p.park()
		w.fired = true
	}
	return ev.set
}

// Cond is a broadcast-only condition variable for simulated processes.
type Cond struct {
	env     *Env
	waiters []*waiter
}

// NewCond returns a condition variable bound to e.
func NewCond(e *Env) *Cond { return &Cond{env: e} }

// Wait parks the process until the next Broadcast. As with sync.Cond the
// caller must re-check its predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	w := &waiter{p: p}
	c.waiters = append(c.waiters, w)
	p.park()
}

// Broadcast wakes every waiting process.
func (c *Cond) Broadcast() {
	ws := c.waiters
	c.waiters = nil
	for _, w := range ws {
		w.fire(c.env)
	}
}
