// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and executes events in (time, sequence)
// order. Simulated activities run as ordinary goroutines ("processes") that
// hand control back to the scheduler whenever they block on a simulated
// primitive (Sleep, Queue.Recv, Resource.Acquire, ...). Exactly one process
// runs at a time, so simulated code needs no locking and every run with the
// same seed is bit-for-bit reproducible.
//
// The kernel is the substrate for the network and host models in
// internal/netsim; nothing in it is NFS-specific.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is virtual time since the start of the simulation.
type Time = time.Duration

// event is a scheduled callback. Events with equal when fire in seq order.
type event struct {
	when Time
	seq  uint64
	fn   func()
	idx  int // heap index, -1 when cancelled or popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx, h[j].idx = i, j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a clock, an event queue and a set of
// processes. Create one with New, populate it with Spawn, then call Run.
type Env struct {
	now     Time
	seq     uint64
	events  eventHeap
	rng     *rand.Rand
	parked  chan struct{} // signalled when the running process parks or exits
	stop    chan struct{} // closed by Close to unwind parked processes
	closed  bool
	current *Proc
}

// New returns an empty environment whose random source is seeded with seed.
func New(seed int64) *Env {
	return &Env{
		rng:    rand.New(rand.NewSource(seed)),
		parked: make(chan struct{}),
		stop:   make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source. It must only
// be used from simulation context (process bodies and event callbacks).
func (e *Env) Rand() *rand.Rand { return e.rng }

// Timer is a handle to a scheduled callback.
type Timer struct {
	ev *event
}

// Stop cancels the timer if it has not fired. It reports whether the timer
// was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.idx < 0 || t.ev.fn == nil {
		return false
	}
	t.ev.fn = nil
	return true
}

// Pending reports whether the timer is still scheduled and uncancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && t.ev.idx >= 0 && t.ev.fn != nil
}

// At schedules fn to run at virtual time when (clamped to now). The callback
// runs in scheduler context and must not block on simulation primitives;
// use Spawn for blocking activities.
func (e *Env) At(when Time, fn func()) *Timer {
	if when < e.now {
		when = e.now
	}
	ev := &event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from now.
func (e *Env) After(d Time, fn func()) *Timer { return e.At(e.now+d, fn) }

// Proc is a simulated process. The pointer is passed to the process body and
// is the handle through which the body blocks on simulated primitives.
type Proc struct {
	env  *Env
	name string
	wake chan struct{}
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Rand returns the environment's random source.
func (p *Proc) Rand() *rand.Rand { return p.env.rng }

// stopSim unwinds a process when the environment is shut down. It is caught
// by the Spawn wrapper; process bodies must not recover from it.
type stopSim struct{}

// park hands control back to the scheduler until the process is resumed.
func (p *Proc) park() {
	e := p.env
	e.current = nil
	e.parked <- struct{}{}
	select {
	case <-p.wake:
		e.current = p
	case <-e.stop:
		panic(stopSim{})
	}
}

// resumeAt schedules the process to resume at time when.
func (e *Env) resumeAt(when Time, p *Proc) *Timer {
	return e.At(when, func() { e.runProc(p) })
}

// runProc wakes p and waits until it parks again or exits. Must be called
// from scheduler context only.
func (e *Env) runProc(p *Proc) {
	p.wake <- struct{}{}
	<-e.parked
}

// Spawn starts fn as a new process at the current virtual time. fn begins
// executing when the scheduler reaches the spawn event.
func (e *Env) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, wake: make(chan struct{})}
	e.At(e.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(stopSim); ok {
						// Unwound by Close: the scheduler is not waiting,
						// and shared state must not be touched — every
						// parked goroutine unwinds concurrently.
						return
					}
					panic(r)
				}
				e.current = nil
				e.parked <- struct{}{}
			}()
			// Wait for the scheduler's first handoff.
			select {
			case <-p.wake:
				e.current = p
			case <-e.stop:
				panic(stopSim{})
			}
			fn(p)
		}()
		e.runProc(p)
	})
	return p
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.env.resumeAt(p.env.now+d, p)
	p.park()
}

// Yield reschedules the process at the current time, letting every other
// event already scheduled for this instant run first.
func (p *Proc) Yield() {
	p.env.resumeAt(p.env.now, p)
	p.park()
}

// Run executes events until the queue empties or the clock would pass until.
// It returns the virtual time at which it stopped. Run may be called
// repeatedly with increasing horizons.
func (e *Env) Run(until Time) Time {
	if e.closed {
		panic("sim: Run after Close")
	}
	for len(e.events) > 0 {
		ev := e.events[0]
		if ev.when > until {
			e.now = until
			return e.now
		}
		heap.Pop(&e.events)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.when
		fn := ev.fn
		ev.fn = nil
		fn()
	}
	if e.now < until {
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue empties, leaving the clock at the
// time of the last event (unlike Run, which advances to its horizon).
func (e *Env) RunAll() Time {
	if e.closed {
		panic("sim: RunAll after Close")
	}
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.fn == nil {
			continue
		}
		e.now = ev.when
		fn := ev.fn
		ev.fn = nil
		fn()
	}
	return e.now
}

// Close unwinds all parked processes so their goroutines exit. The
// environment must not be used afterwards. It is safe to call more than once.
func (e *Env) Close() {
	if e.closed {
		return
	}
	e.closed = true
	close(e.stop)
}

// String implements fmt.Stringer for debugging.
func (e *Env) String() string {
	return fmt.Sprintf("sim.Env{now=%v pending=%d}", e.now, len(e.events))
}
