package sim

import (
	"testing"
	"testing/quick"
	"time"
)

const ms = time.Millisecond

func TestEventOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(10*ms, func() { got = append(got, 2) })
	e.At(5*ms, func() { got = append(got, 1) })
	e.At(10*ms, func() { got = append(got, 3) }) // same time: insertion order
	e.At(20*ms, func() { got = append(got, 4) })
	e.RunAll()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 20*ms {
		t.Fatalf("Now = %v, want 20ms", e.Now())
	}
}

func TestRunHorizon(t *testing.T) {
	e := New(1)
	fired := false
	e.At(100*ms, func() { fired = true })
	e.Run(50 * ms)
	if fired {
		t.Fatal("event beyond horizon fired")
	}
	if e.Now() != 50*ms {
		t.Fatalf("Now = %v, want 50ms", e.Now())
	}
	e.Run(200 * ms)
	if !fired {
		t.Fatal("event within horizon did not fire")
	}
}

func TestTimerStop(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(10*ms, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("new timer not pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.RunAll()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestSleepAndSequencing(t *testing.T) {
	e := New(1)
	defer e.Close()
	var trace []string
	e.Spawn("a", func(p *Proc) {
		trace = append(trace, "a0")
		p.Sleep(10 * ms)
		trace = append(trace, "a1")
		p.Sleep(20 * ms)
		trace = append(trace, "a2")
	})
	e.Spawn("b", func(p *Proc) {
		trace = append(trace, "b0")
		p.Sleep(15 * ms)
		trace = append(trace, "b1")
	})
	e.RunAll()
	want := []string{"a0", "b0", "a1", "b1", "a2"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
	if e.Now() != 30*ms {
		t.Fatalf("Now = %v, want 30ms", e.Now())
	}
}

func TestQueueSendRecv(t *testing.T) {
	e := New(1)
	defer e.Close()
	q := NewQueue[int](e, "q")
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			v, ok := q.Recv(p)
			if !ok {
				t.Error("queue closed unexpectedly")
				return
			}
			got = append(got, v)
		}
	})
	e.Spawn("send", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Sleep(5 * ms)
			q.Send(i * 10)
		}
	})
	e.RunAll()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueRecvTimeout(t *testing.T) {
	e := New(1)
	defer e.Close()
	q := NewQueue[int](e, "q")
	var timedOut, received bool
	e.Spawn("recv", func(p *Proc) {
		if _, ok := q.RecvTimeout(p, 10*ms); ok {
			t.Error("expected timeout")
		}
		timedOut = true
		if v, ok := q.RecvTimeout(p, 100*ms); !ok || v != 7 {
			t.Errorf("RecvTimeout = %v,%v", v, ok)
		}
		received = true
	})
	e.Spawn("send", func(p *Proc) {
		p.Sleep(30 * ms)
		q.Send(7)
	})
	e.RunAll()
	if !timedOut || !received {
		t.Fatalf("timedOut=%v received=%v", timedOut, received)
	}
}

func TestQueueDropTail(t *testing.T) {
	e := New(1)
	defer e.Close()
	q := NewQueue[int](e, "q")
	q.MaxLen = 2
	if !q.Send(1) || !q.Send(2) {
		t.Fatal("sends within bound failed")
	}
	if q.Send(3) {
		t.Fatal("send over bound succeeded")
	}
	if q.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Dropped)
	}
}

func TestQueueClose(t *testing.T) {
	e := New(1)
	defer e.Close()
	q := NewQueue[int](e, "q")
	q.Send(1)
	q.Close()
	var vals []int
	var closedSeen bool
	e.Spawn("r", func(p *Proc) {
		for {
			v, ok := q.Recv(p)
			if !ok {
				closedSeen = true
				return
			}
			vals = append(vals, v)
		}
	})
	e.RunAll()
	if len(vals) != 1 || vals[0] != 1 || !closedSeen {
		t.Fatalf("vals=%v closedSeen=%v", vals, closedSeen)
	}
}

func TestEventSignal(t *testing.T) {
	e := New(1)
	defer e.Close()
	ev := NewEvent(e)
	var woke Time
	e.Spawn("w", func(p *Proc) {
		ev.Wait(p)
		woke = p.Now()
	})
	e.Spawn("s", func(p *Proc) {
		p.Sleep(25 * ms)
		ev.Set()
	})
	e.RunAll()
	if woke != 25*ms {
		t.Fatalf("woke at %v, want 25ms", woke)
	}
	// Wait after set returns immediately.
	var instant bool
	e2 := New(2)
	defer e2.Close()
	ev2 := NewEvent(e2)
	ev2.Set()
	e2.Spawn("w", func(p *Proc) {
		ev2.Wait(p)
		instant = p.Now() == 0
	})
	e2.RunAll()
	if !instant {
		t.Fatal("Wait after Set did not return immediately")
	}
}

func TestEventWaitTimeout(t *testing.T) {
	e := New(1)
	defer e.Close()
	ev := NewEvent(e)
	var ok1, ok2 bool
	e.Spawn("w", func(p *Proc) {
		ok1 = ev.WaitTimeout(p, 10*ms)
		ok2 = ev.WaitTimeout(p, 100*ms)
	})
	e.Spawn("s", func(p *Proc) {
		p.Sleep(50 * ms)
		ev.Set()
	})
	e.RunAll()
	if ok1 || !ok2 {
		t.Fatalf("ok1=%v ok2=%v, want false,true", ok1, ok2)
	}
}

func TestResourceFIFOAndUtilization(t *testing.T) {
	e := New(1)
	defer e.Close()
	r := NewResource(e, "cpu", 1)
	var order []string
	worker := func(name string, start, hold Time) {
		e.Spawn(name, func(p *Proc) {
			p.Sleep(start)
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(hold)
			r.Release()
		})
	}
	worker("a", 0, 30*ms)
	worker("b", 5*ms, 10*ms)
	worker("c", 10*ms, 10*ms)
	e.RunAll()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 50*ms {
		t.Fatalf("end at %v, want 50ms", e.Now())
	}
	if u := r.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
}

func TestResourceMultiSlot(t *testing.T) {
	e := New(1)
	defer e.Close()
	r := NewResource(e, "disks", 2)
	done := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Proc) {
			r.Use(p, 10*ms)
			done++
		})
	}
	e.RunAll()
	if done != 4 {
		t.Fatalf("done = %d", done)
	}
	if e.Now() != 20*ms {
		t.Fatalf("end at %v, want 20ms (2 slots, 4 jobs of 10ms)", e.Now())
	}
	if u := r.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := New(1)
	defer e.Close()
	r := NewResource(e, "r", 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on free resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestCondBroadcast(t *testing.T) {
	e := New(1)
	defer e.Close()
	c := NewCond(e)
	ready := false
	n := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			for !ready {
				c.Wait(p)
			}
			n++
		})
	}
	e.Spawn("b", func(p *Proc) {
		p.Sleep(10 * ms)
		ready = true
		c.Broadcast()
	})
	e.RunAll()
	if n != 3 {
		t.Fatalf("n = %d, want 3", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := New(42)
		defer e.Close()
		var stamps []Time
		q := NewQueue[int](e, "q")
		for i := 0; i < 5; i++ {
			e.Spawn("p", func(p *Proc) {
				for j := 0; j < 10; j++ {
					d := Time(p.Rand().Intn(1000)) * time.Microsecond
					p.Sleep(d)
					q.Send(j)
				}
			})
		}
		e.Spawn("c", func(p *Proc) {
			for i := 0; i < 50; i++ {
				q.Recv(p)
				stamps = append(stamps, p.Now())
			}
		})
		e.RunAll()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 50 {
		t.Fatalf("lengths %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCloseUnwindsProcesses(t *testing.T) {
	e := New(1)
	q := NewQueue[int](e, "q")
	e.Spawn("stuck", func(p *Proc) {
		q.Recv(p) // blocks forever
	})
	e.Run(10 * ms)
	e.Close()
	e.Close() // idempotent
}

// Property: for any set of delays, events fire in nondecreasing time order
// and same-time events fire in insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := New(1)
		type rec struct {
			when Time
			seq  int
		}
		var fired []rec
		for i, d := range delays {
			when := Time(d%997) * time.Microsecond
			i := i
			e.At(when, func() { fired = append(fired, rec{when, i}) })
		}
		e.RunAll()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].when < fired[i-1].when {
				return false
			}
			if fired[i].when == fired[i-1].when && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
