//go:build linux

package nfsnet

import (
	"context"
	"net"
	"syscall"
)

// soReusePort is Linux's SO_REUSEPORT (not exported by the syscall
// package). With it set before bind, N UDP sockets share one port and the
// kernel demultiplexes incoming datagrams across them by a hash of the
// source/destination 4-tuple — the per-socket analogue of per-CPU NIC
// receive queues, and the mechanism that lets each ingest reader own a
// socket instead of contending on one descriptor's read lock.
const soReusePort = 0xf

// reusePortSupported reports that this platform can bind multiple sockets
// to one UDP port.
func reusePortSupported() bool { return true }

// listenReusePort binds n UDP sockets to the same address (addr may carry
// port 0: the port the first socket gets is reused for the rest). On error
// every already-bound socket is closed.
func listenReusePort(addr string, n int) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
	conns := make([]*net.UDPConn, 0, n)
	bind := addr
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", bind)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		uc := pc.(*net.UDPConn)
		conns = append(conns, uc)
		if i == 0 {
			bind = uc.LocalAddr().String()
		}
	}
	return conns, nil
}
