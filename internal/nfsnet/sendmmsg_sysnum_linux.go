//go:build linux && (amd64 || arm64 || riscv64 || loong64 || 386 || arm)

package nfsnet

import "runtime"

// sysSendmmsg is the sendmmsg(2) syscall number — the frozen stdlib
// syscall tables predate it, so it is spelled out per arch here. Arches
// not listed in the build tag fall back to the one-send-per-reply loop
// (sendmmsg_sysnum_other.go).
var sysSendmmsg = map[string]uintptr{
	"amd64":   307,
	"arm64":   269, // generic syscall table (also riscv64, loong64)
	"riscv64": 269,
	"loong64": 269,
	"386":     345,
	"arm":     374,
}[runtime.GOARCH]
