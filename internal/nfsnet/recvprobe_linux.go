//go:build linux

package nfsnet

import (
	"net"
	"net/netip"
	"runtime"
	"syscall"
	"unsafe"

	"renonfs/internal/metrics"
)

// The non-blocking drain probe: recvmmsg(MSG_DONTWAIT) through a cached
// raw connection. The drain loop's contract is recvmmsg's — take the
// datagrams the kernel has already queued behind a wakeup, never wait for
// more — and a positive read deadline cannot express it: the read parks
// for the whole window when the queue is empty, holding any fast-path
// replies staged in the send batch (an expired deadline is no better: the
// runtime fails the read without issuing the syscall, so queued data is
// unreachable). The probe fills a small batch of datagrams per syscall and
// serves them one at a time, so a deep backlog costs one kernel crossing
// per recvBatch datagrams instead of one each, and a lone reply still
// flushes the instant the backlog is dry.

// sysRecvmmsg is the recvmmsg(2) syscall number per arch (the same frozen
// stdlib-table situation as sysSendmmsg). 0 degrades to the portable
// flush-then-deadline drain.
var sysRecvmmsg = map[string]uintptr{
	"amd64":   299,
	"arm64":   243, // generic syscall table (also riscv64, loong64)
	"riscv64": 243,
	"loong64": 243,
	"386":     337,
	"arm":     365,
}[runtime.GOARCH]

// recvBatch is how many datagrams one recvmmsg fill may return. Small on
// purpose: the buffers are sized for a worst-case datagram, so the batch
// is recvBatch*64K of reader-resident memory.
const recvBatch = 8

// recvProbe is one reader's reusable probe state. The raw connection,
// callback, buffers and header arrays are built once (SyscallConn and a
// fresh closure would each allocate per fill; the headers are rebuilt by
// the kernel's value-result fields, not reallocated). got/next window the
// current fill: bufs[next:got] hold datagrams already received but not yet
// served to the drain loop.
type recvProbe struct {
	rc    syscall.RawConn
	rcErr bool
	fn    func(fd uintptr) bool
	bufs  [][]byte
	hdrs  []mmsghdr
	iovs  []syscall.Iovec
	rsas  []syscall.RawSockaddrAny
	got   int
	next  int
	// fallback is the portable drain's buffer, allocated only when raw
	// access is unavailable.
	fallback []byte
	// batched counts datagrams beyond the first in each multi-datagram
	// fill — the reads the batching saved a syscall for
	// (rpc.reader.<id>.batched_reads).
	batched *metrics.Counter
}

// init readies the cached raw connection, buffers and callback. false
// means raw access is unavailable and the caller must use the portable
// drain.
func (p *recvProbe) init(conn *net.UDPConn) bool {
	if sysRecvmmsg == 0 {
		return false
	}
	if p.rc != nil {
		return true
	}
	if p.rcErr {
		return false
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		p.rcErr = true
		return false
	}
	p.bufs = make([][]byte, recvBatch)
	p.hdrs = make([]mmsghdr, recvBatch)
	p.iovs = make([]syscall.Iovec, recvBatch)
	p.rsas = make([]syscall.RawSockaddrAny, recvBatch)
	for i := range p.bufs {
		p.bufs[i] = make([]byte, 65536)
		p.iovs[i].Base = &p.bufs[i][0]
		p.iovs[i].SetLen(len(p.bufs[i]))
		h := &p.hdrs[i].hdr
		h.Iov = &p.iovs[i]
		h.Iovlen = 1
		h.Name = (*byte)(unsafe.Pointer(&p.rsas[i]))
	}
	p.rc = rc
	p.fn = func(fd uintptr) bool {
		p.got, p.next = 0, 0
		for {
			// msg_namelen is value-result: the kernel overwrites it with
			// each sender's sockaddr size, so every fill must restore it.
			for i := range p.hdrs {
				p.hdrs[i].hdr.Namelen = uint32(unsafe.Sizeof(p.rsas[i]))
			}
			n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
				uintptr(unsafe.Pointer(&p.hdrs[0])), uintptr(len(p.hdrs)),
				syscall.MSG_DONTWAIT, 0, 0)
			if errno == syscall.EINTR {
				continue
			}
			// Always true: a probe never parks the goroutine. EAGAIN (empty
			// queue) and real errors both read as "no more queued here" —
			// the reader falls back to its blocking read, which surfaces any
			// persistent socket error the normal way.
			if errno != 0 {
				return true
			}
			p.got = int(n)
			return true
		}
	}
	return true
}

// getPort reads a network-byte-order port whatever the host endianness
// (putPort's inverse).
func getPort(src *uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(src))
	return uint16(b[0])<<8 | uint16(b[1])
}

// sourceAt decodes the i-th probed datagram's sender. The kernel's bytes
// are mirrored exactly (no 4-in-6 unmapping) so the address matches what
// ReadFromUDPAddrPort reports for the same peer on the same socket — one
// peerCache key per peer, and a reply address the socket family accepts.
func (p *recvProbe) sourceAt(i int) netip.AddrPort {
	switch p.rsas[i].Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&p.rsas[i]))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), getPort(&sa.Port))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&p.rsas[i]))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), getPort(&sa.Port))
	}
	return netip.AddrPort{}
}

// drainRead serves the next datagram the kernel already queued, without
// waiting: (packet, source, true), or ok=false the instant the queue is
// empty. The packet slice aliases a probe-owned buffer that stays intact
// until the current fill is exhausted — callers consume or copy it before
// the next empty-handed drainRead.
func drainRead(conn *net.UDPConn, p *recvProbe, b *sendBatch) ([]byte, netip.AddrPort, bool) {
	if !p.init(conn) {
		if p.fallback == nil {
			p.fallback = make([]byte, 65536)
		}
		n, addr, ok := drainReadDeadline(conn, b, p.fallback)
		if !ok {
			return nil, netip.AddrPort{}, false
		}
		return p.fallback[:n], addr, true
	}
	if p.next >= p.got {
		err := p.rc.Read(p.fn)
		runtime.KeepAlive(p)
		if err != nil || p.got == 0 {
			return nil, netip.AddrPort{}, false
		}
		if p.got > 1 && p.batched != nil {
			p.batched.Add(int64(p.got - 1))
		}
	}
	i := p.next
	p.next++
	return p.bufs[i][:p.hdrs[i].n], p.sourceAt(i), true
}
