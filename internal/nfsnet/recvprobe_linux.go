//go:build linux

package nfsnet

import (
	"net"
	"net/netip"
	"runtime"
	"syscall"
	"unsafe"
)

// The non-blocking drain probe: recvfrom(MSG_DONTWAIT) through a cached
// raw connection. The drain loop's contract is recvmmsg's — take the
// datagrams the kernel has already queued behind a wakeup, never wait for
// more — and a positive read deadline cannot express it: the read parks
// for the whole window when the queue is empty, holding any fast-path
// replies staged in the send batch (an expired deadline is no better: the
// runtime fails the read without issuing the syscall, so queued data is
// unreachable). The probe returns queued data or EAGAIN immediately, so a
// lone reply flushes as soon as the backlog is drained.

// sysRecvfrom is the recvfrom(2) syscall number per arch (the same frozen
// stdlib-table situation as sysSendmmsg). 0 degrades to the portable
// flush-then-deadline drain.
var sysRecvfrom = map[string]uintptr{
	"amd64":   45,
	"arm64":   207, // generic syscall table (also riscv64, loong64)
	"riscv64": 207,
	"loong64": 207,
	"386":     371,
	"arm":     292,
}[runtime.GOARCH]

// recvProbe is one reader's reusable probe state. The raw connection and
// callback are built once (SyscallConn and a fresh closure would each
// allocate per datagram); buf/rsa/n/ok carry arguments and results across
// fn invocations.
type recvProbe struct {
	rc     syscall.RawConn
	rcErr  bool
	fn     func(fd uintptr) bool
	buf    []byte
	rsa    syscall.RawSockaddrAny
	rsaLen uint32
	n      int
	ok     bool
}

// init readies the cached raw connection and callback. false means raw
// access is unavailable and the caller must use the portable drain.
func (p *recvProbe) init(conn *net.UDPConn) bool {
	if sysRecvfrom == 0 {
		return false
	}
	if p.rc != nil {
		return true
	}
	if p.rcErr {
		return false
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		p.rcErr = true
		return false
	}
	p.rc = rc
	p.fn = func(fd uintptr) bool {
		p.ok = false
		for {
			p.rsaLen = uint32(unsafe.Sizeof(p.rsa))
			n, _, errno := syscall.Syscall6(sysRecvfrom, fd,
				uintptr(unsafe.Pointer(&p.buf[0])), uintptr(len(p.buf)),
				syscall.MSG_DONTWAIT,
				uintptr(unsafe.Pointer(&p.rsa)), uintptr(unsafe.Pointer(&p.rsaLen)))
			if errno == syscall.EINTR {
				continue
			}
			// Always true: a probe never parks the goroutine. EAGAIN (empty
			// queue) and real errors both read as "no more queued here" —
			// the reader falls back to its blocking read, which surfaces any
			// persistent socket error the normal way.
			if errno != 0 {
				return true
			}
			p.n = int(n)
			p.ok = true
			return true
		}
	}
	return true
}

// getPort reads a network-byte-order port whatever the host endianness
// (putPort's inverse).
func getPort(src *uint16) uint16 {
	b := (*[2]byte)(unsafe.Pointer(src))
	return uint16(b[0])<<8 | uint16(b[1])
}

// source decodes the probed datagram's sender. The kernel's bytes are
// mirrored exactly (no 4-in-6 unmapping) so the address matches what
// ReadFromUDPAddrPort reports for the same peer on the same socket — one
// peerCache key per peer, and a reply address the socket family accepts.
func (p *recvProbe) source() netip.AddrPort {
	switch p.rsa.Addr.Family {
	case syscall.AF_INET:
		sa := (*syscall.RawSockaddrInet4)(unsafe.Pointer(&p.rsa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa.Addr), getPort(&sa.Port))
	case syscall.AF_INET6:
		sa := (*syscall.RawSockaddrInet6)(unsafe.Pointer(&p.rsa))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), getPort(&sa.Port))
	}
	return netip.AddrPort{}
}

// drainRead takes the next datagram the kernel already queued, without
// waiting: (n, source, true), or ok=false the instant the queue is empty.
func drainRead(conn *net.UDPConn, p *recvProbe, b *sendBatch, buf []byte) (int, netip.AddrPort, bool) {
	if !p.init(conn) {
		return drainReadDeadline(conn, b, buf)
	}
	p.buf = buf
	err := p.rc.Read(p.fn)
	runtime.KeepAlive(p)
	if err != nil || !p.ok {
		return 0, netip.AddrPort{}, false
	}
	return p.n, p.source(), true
}
