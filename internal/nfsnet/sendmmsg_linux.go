//go:build linux

package nfsnet

import (
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// The sendmmsg(2) batch writer: one syscall delivers a whole sendBatch.
// Linux has had it since 3.0; it is to sendto what the ingest path's
// batched drain is to recvfrom. The headers, iovecs and raw sockaddrs are
// kept in reusable per-batch scratch (mmsgState) so a steady stream of
// flushes allocates nothing.

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel's bytes-sent
// out-parameter. Go's alignment rules reproduce the C layout on every
// linux arch (msghdr carries pointer alignment; the trailing pad matches).
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// mmsgState is the reusable scratch behind sendMulti. The raw connection
// and the write callback are built once and reused — SyscallConn and a
// fresh closure would each allocate per flush, and the flush path is pinned
// to zero steady-state allocations.
type mmsgState struct {
	hdrs []mmsghdr
	iovs []syscall.Iovec
	sa4  []syscall.RawSockaddrInet4
	sa6  []syscall.RawSockaddrInet6

	rc    syscall.RawConn
	rcErr bool
	fn    func(fd uintptr) bool
	// want/sent/syscalls carry arguments and results across fn invocations.
	want, sent, syscalls int
}

// init readies the cached raw connection and callback. false means raw
// access is unavailable and the caller must use the portable loop.
func (st *mmsgState) init(conn *net.UDPConn) bool {
	if st.rc != nil {
		return true
	}
	if st.rcErr {
		return false
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		st.rcErr = true
		return false
	}
	st.rc = rc
	st.fn = func(fd uintptr) bool {
		for st.sent < st.want {
			n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&st.hdrs[st.sent])), uintptr(st.want-st.sent), 0, 0, 0)
			st.syscalls++
			switch {
			case errno == syscall.EINTR:
				continue
			case errno == syscall.EAGAIN:
				return false // wait for the socket to drain, then retry
			case errno != 0:
				return true // give up on the batch; the caller's loop mops up
			default:
				st.sent += int(n)
			}
		}
		return true
	}
	return true
}

func (st *mmsgState) grow(n int) {
	if cap(st.hdrs) < n {
		st.hdrs = make([]mmsghdr, n)
		st.iovs = make([]syscall.Iovec, n)
		st.sa4 = make([]syscall.RawSockaddrInet4, n)
		st.sa6 = make([]syscall.RawSockaddrInet6, n)
	}
	st.hdrs = st.hdrs[:n]
	st.iovs = st.iovs[:n]
	st.sa4 = st.sa4[:n]
	st.sa6 = st.sa6[:n]
}

// putPort stores p in network byte order whatever the host endianness.
func putPort(dst *uint16, p uint16) {
	*(*[2]byte)(unsafe.Pointer(dst)) = [2]byte{byte(p >> 8), byte(p)}
}

// sendMulti sends every staged reply and returns the number of send
// syscalls it took. Singleton batches skip straight to the plain writer;
// failures degrade to the portable loop for whatever remains unsent.
func sendMulti(conn *net.UDPConn, msgs []batchMsg, st *mmsgState) int {
	if len(msgs) == 1 || sysSendmmsg == 0 || !st.init(conn) {
		return sendLoop(conn, msgs)
	}
	st.grow(len(msgs))
	for i := range msgs {
		m := &msgs[i]
		st.iovs[i] = syscall.Iovec{Base: &m.buf[0]}
		st.iovs[i].SetLen(len(m.buf))
		h := &st.hdrs[i]
		*h = mmsghdr{}
		h.hdr.Iov = &st.iovs[i]
		h.hdr.Iovlen = 1
		if a := m.addr.Addr(); a.Is4() {
			sa := &st.sa4[i]
			sa.Family = syscall.AF_INET
			putPort(&sa.Port, m.addr.Port())
			sa.Addr = a.As4()
			h.hdr.Name = (*byte)(unsafe.Pointer(sa))
			h.hdr.Namelen = syscall.SizeofSockaddrInet4
		} else {
			sa := &st.sa6[i]
			sa.Family = syscall.AF_INET6
			putPort(&sa.Port, m.addr.Port())
			sa.Addr = a.As16()
			h.hdr.Name = (*byte)(unsafe.Pointer(sa))
			h.hdr.Namelen = syscall.SizeofSockaddrInet6
		}
	}
	st.want, st.sent, st.syscalls = len(msgs), 0, 0
	werr := st.rc.Write(st.fn)
	runtime.KeepAlive(st)
	if st.sent < len(msgs) || werr != nil {
		st.syscalls += sendLoop(conn, msgs[st.sent:])
	}
	return st.syscalls
}
