package nfsnet

import (
	"sync"
	"testing"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
)

// TestSpanPipelineConcurrent drives many concurrent clients through the
// UDP pool and the TCP path and checks the stage telemetry end to end:
// every request must land in every pipeline histogram exactly once, and
// the slow-span ring must hold real spans with sane stage ordering. Run
// under -race this is also the span-lifecycle safety test: per-worker span
// reuse, ring admission and histogram recording all race against each
// other here.
func TestSpanPipelineConcurrent(t *testing.T) {
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	// Pin the generic pipeline: with the shallow path on, UDP LOOKUPs are
	// serviced inline and never ride the job queue, so the queue-stage
	// assertions below would see nothing. Fast-path span accounting has its
	// own test (TestFastPathSpans).
	opts.NoFastPath = true
	core := server.New(fs, opts)
	if _, err := fs.Create(nil, fs.Root(), "f", 0644); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(core, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const clients = 4
	const callsPerClient = 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(tcp bool) {
			defer wg.Done()
			var cl *Client
			var err error
			if tcp {
				cl, err = DialTCP(s.TCPAddr())
			} else {
				cl, err = DialUDP(s.UDPAddr())
			}
			if err != nil {
				t.Error(err)
				return
			}
			defer cl.Close()
			root := core.RootFH()
			for i := 0; i < callsPerClient; i++ {
				if _, err := cl.Lookup(root, "f"); err != nil {
					t.Error(err)
					return
				}
			}
		}(c%2 == 0)
	}
	wg.Wait()

	s.PublishStats()
	snap := core.Metrics.Snapshot()
	const want = clients * callsPerClient
	for _, st := range []string{"read", "queue", "decode", "service", "encode", "send", "total"} {
		name := "rpc.stage." + st + ".us"
		h, ok := snap.Histograms[name]
		if st == "queue" {
			// Only the UDP half rides the job queue; TCP spans skip it.
			if !ok || h.Count < want/2 {
				t.Errorf("%s count = %d, want >= %d", name, h.Count, want/2)
			}
			continue
		}
		if !ok || h.Count < want {
			t.Errorf("%s count = %d, want >= %d", name, h.Count, want)
		}
	}
	// LOOKUP is idempotent: the dupcheck stage must never be entered.
	if h := snap.Histograms["rpc.stage.dupcheck.us"]; h.Count != 0 {
		t.Errorf("dupcheck recorded %d observations for idempotent calls", h.Count)
	}
	ring := s.Stages().Ring()
	if ring.Len() == 0 {
		t.Fatal("slow-span ring is empty after traffic")
	}
	for _, sp := range ring.Slowest() {
		if sp.Proc != nfsproto.ProcLookup {
			t.Errorf("ring span proc = %d, want LOOKUP", sp.Proc)
		}
		if sp.TotalNS() <= 0 {
			t.Error("ring span with non-positive total")
		}
		if sp.Peer == "" {
			t.Error("ring span with empty peer")
		}
	}
	// The busy gauge publishes lazily and the pool is idle now.
	if busy := snap.Gauges["rpc.nfsd.busy"]; busy != 0 {
		t.Errorf("idle pool publishes busy = %v", busy)
	}
}
