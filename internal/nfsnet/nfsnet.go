// Package nfsnet serves the same NFS server core — identical mbuf/XDR/RPC
// codec, dispatch, caches and duplicate-request cache — over real UDP and
// TCP sockets from the net package, and provides a small synchronous
// client. It demonstrates the transport-layer independence that §2 of the
// paper claims for the implementation: nothing in the protocol code knows
// whether its bytes ride a simulated internetwork or a real socket.
//
// Dispatch is genuinely parallel: a pool of Opts.NFSDs worker goroutines
// drains per-reader UDP ingest rings, and every TCP connection is served
// on its own goroutine, all calling the core's concurrent-safe HandleCall.
// The giant "kernel lock" of earlier revisions survives only as a read/write
// quiesce gate: every dispatch holds the read side (concurrently with all
// others), and Crash takes the write side to swap the volatile state with
// no call in flight.
//
// Ingest is sharded too (DESIGN.md §3.3): Opts.Readers reader goroutines
// stage datagrams into bounded per-reader rings. On Linux each reader owns
// its own SO_REUSEPORT socket bound to the one service port, so the kernel
// spreads flows across sockets and readers never contend on a descriptor;
// elsewhere (or when reuseport binding fails) the readers share one socket
// and merely pipeline staging against the descriptor's read lock. Each
// wakeup drains a batch of queued datagrams (recvmmsg-style) into pooled
// mbufs drawn from a per-reader mbuf.Cache.
//
// Dispatch itself is split in two (DESIGN.md §3.4). Before staging a
// datagram, the reader peeks its CALL header: header-only procedures
// (NULL, GETATTR, LOOKUP, small READDIRs, STATFS, the MOUNT herd) are
// serviced inline on the reader via server.HandleCallFast — no mbuf chain,
// no ring hop, replies encoded into a per-reader arena and flushed in
// coalesced sendmmsg batches — while everything else (and any fast-path
// fallback) takes the generic mbuf/ring/nfsd route unchanged. Workers
// coalesce their reply sends the same way when a burst is in the ring.
package nfsnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"renonfs/internal/lockstat"
	"renonfs/internal/mbuf"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/xdr"
)

// Server serves an NFS server core over real sockets.
type Server struct {
	srv *server.Server

	// readers are the sharded UDP ingest lanes; socks the distinct sockets
	// behind them (len(socks) == len(readers) under reuseport, 1 in the
	// shared-socket fallback). reuse records which strategy bound.
	readers []*udpReader
	socks   []*net.UDPConn
	reuse   bool

	tcp net.Listener

	// crashMu is the quiesce gate described in the package comment. It is
	// not a serializer: dispatches share the read side.
	crashMu sync.RWMutex

	closed    chan struct{}
	closeOnce sync.Once

	// Shutdown drains in order: readers, then the worker pool (so every
	// ring-resident request still gets its reply), then the acceptor, then
	// the per-connection servers.
	readerWG, workerWG, acceptWG, connWG sync.WaitGroup

	// Live TCP connections, so Close can kick their readers.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// nfsd utilization: how many dispatchers are inside HandleCall right
	// now. The rpc.nfsd.busy gauge is published lazily by PublishStats —
	// the earlier per-dispatch gauge writes were two extra stores on one
	// shared cache line per RPC, a serialization point the mutex/stage
	// telemetry this package now carries exists to catch.
	busyCount atomic.Int64
	busy      *metrics.Gauge

	// stages aggregates every request's span into the rpc.stage.*
	// histograms and keeps the slowest spans for trace dumps.
	stages *metrics.StageStats

	// fastOff disables the shallow dispatch path (Opts.NoFastPath); the
	// counters account it: fastCalls datagrams serviced inline on a reader,
	// fastFallbacks datagrams classified eligible but punted to the generic
	// path, sendBatches send syscalls issued by the coalescing writers and
	// sendMsgs replies sent through them.
	fastOff                  bool
	fastCalls, fastFallbacks *metrics.Counter
	sendBatches, sendMsgs    *metrics.Counter
}

// crashSite attributes waits on the quiesce gate: nonzero numbers mean
// dispatch stalled behind a Crash (or the gate itself became a bottleneck).
var crashSite = lockstat.NewSite("nfsnet.crashgate")

// udpJob is one datagram awaiting an nfsd: the request already lives in
// (pooled) mbufs, so the reader's socket buffer is immediately reusable.
type udpJob struct {
	addr netip.AddrPort
	req  *mbuf.Chain
	// t0 is the datagram's arrival (span begin); readNS how long the
	// socket-to-mbuf staging took (the span's read stage).
	t0     time.Time
	readNS int64
}

// udpReader is one ingest shard: a reader goroutine staging datagrams from
// conn into ring, and the subset of nfsds that drain the ring (worker i
// serves ring i%len(readers)). Replies go back out on the shard's conn —
// under reuseport every socket is bound to the same local port, so the
// reply's source address is identical whichever socket sends it.
type udpReader struct {
	id   int
	conn *net.UDPConn
	ring chan udpJob
	// reads counts every datagram the reader pulled off its socket
	// (rpc.reader.<id>.reads), fast-path and staged alike; fast counts the
	// subset consumed inline on the shallow path (rpc.reader.<id>.fast) —
	// so Σreads == Σnfsd calls + Σfast is the drain invariant. wakeups
	// counts blocking-read returns that yielded at least one datagram
	// (rpc.reader.<id>.wakeups) — reads/wakeups is the mean drain batch.
	// batched counts the datagrams the recvmmsg probe delivered beyond the
	// first of each fill (rpc.reader.<id>.batched_reads) — reads the
	// batching saved a receive syscall for.
	reads, fast, wakeups, batched *metrics.Counter
}

// Reader deadlines. A reader that owns its socket re-arms a bounded
// blocking deadline each loop, so a Close kick can never be erased by a
// racing re-arm for longer than readerPoll; after a wakeup it drains the
// already-queued backlog non-blocking (drainRead; the recvmmsg-style
// amortization). batchPoll bounds the portable fallback drain where no
// non-blocking probe exists. Readers sharing one socket never touch its
// deadline: a short per-reader deadline on a shared descriptor would wake
// every blocked sibling.
const (
	readerPoll   = 250 * time.Millisecond
	batchPoll    = time.Millisecond
	maxBatch     = 64 // datagrams staged per wakeup before re-blocking
	ringPerNfsd  = 4  // ring slots per worker draining the ring
	ringMinSlots = 16
)

// disableReusePort forces the shared-socket fallback; tests set it to make
// same-peer retransmissions spread across readers (reuseport pins a 4-tuple
// to one socket, the fallback does not).
var disableReusePort bool

// Serve starts UDP and TCP listeners on the given addresses (use
// "127.0.0.1:0" to pick free ports), a pool of srv.Opts.NFSDs worker
// goroutines, and srv.Opts.Readers sharded UDP ingest readers (0 picks
// GOMAXPROCS, clamped to the worker count so no ring can be left without a
// drainer). It widens the core's cache lock striping for concurrent
// dispatch, so the server should not also be serving simulator traffic.
func Serve(srv *server.Server, udpAddr, tcpAddr string) (*Server, error) {
	srv.EnableConcurrentDispatch()
	nfsds := srv.Opts.NFSDs
	if nfsds < 1 {
		nfsds = 1
	}
	nreaders := srv.Opts.Readers
	if nreaders <= 0 {
		nreaders = runtime.GOMAXPROCS(0)
	}
	if nreaders > nfsds {
		nreaders = nfsds
	}

	// Socket strategy: one owned socket per reader where the platform can
	// bind several to the port, otherwise one socket shared by every reader.
	var socks []*net.UDPConn
	reuse := false
	if nreaders > 1 && reusePortSupported() && !disableReusePort && !srv.Opts.NoReusePort {
		if cs, err := listenReusePort(udpAddr, nreaders); err == nil {
			socks, reuse = cs, true
		}
	}
	if socks == nil {
		ua, err := net.ResolveUDPAddr("udp", udpAddr)
		if err != nil {
			return nil, err
		}
		uc, err := net.ListenUDP("udp", ua)
		if err != nil {
			return nil, err
		}
		socks = []*net.UDPConn{uc}
	}
	tl, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		for _, c := range socks {
			c.Close()
		}
		return nil, err
	}
	s := &Server{
		srv:    srv,
		socks:  socks,
		reuse:  reuse,
		tcp:    tl,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		busy:   srv.Metrics.Gauge("rpc.nfsd.busy"),
		stages: metrics.NewStageStats(srv.Metrics, metrics.DefaultSlowSpans),
		// The shallow path services requests inline on the reader, which
		// is only sound when readers cannot contend for datagrams: a
		// fast-serving reader on a multi-reader *shared* socket never
		// blocks on its ring, so it would hog the descriptor's read lock
		// (starving its siblings) and serialize all header-only service on
		// one goroutine. Reuseport sockets (each reader owns one) and the
		// single-reader fallback have no such contention.
		fastOff: srv.Opts.NoFastPath || (!reuse && nreaders > 1),
	}
	s.fastCalls = srv.Metrics.Counter("rpc.fastpath.calls")
	s.fastFallbacks = srv.Metrics.Counter("rpc.fastpath.fallbacks")
	s.sendBatches = srv.Metrics.Counter("rpc.send.batches")
	s.sendMsgs = srv.Metrics.Counter("rpc.send.batched_msgs")
	srv.Metrics.Counter("rpc.readers").Store(int64(nreaders))
	if reuse {
		srv.Metrics.Counter("rpc.reader.reuseport").Store(1)
	}
	for i := 0; i < nreaders; i++ {
		conn := socks[0]
		if reuse {
			conn = socks[i]
		}
		// Ring sizing (DESIGN.md §3.3): a few slots per draining worker —
		// enough to ride out dispatch jitter, small enough that queueing
		// delay stays visible in the queue-stage histogram instead of
		// hiding requests in deep buffers.
		drainers := nfsds / nreaders
		if i < nfsds%nreaders {
			drainers++
		}
		slots := ringPerNfsd * drainers
		if slots < ringMinSlots {
			slots = ringMinSlots
		}
		s.readers = append(s.readers, &udpReader{
			id:      i,
			conn:    conn,
			ring:    make(chan udpJob, slots),
			reads:   srv.Metrics.Counter(fmt.Sprintf("rpc.reader.%d.reads", i)),
			fast:    srv.Metrics.Counter(fmt.Sprintf("rpc.reader.%d.fast", i)),
			wakeups: srv.Metrics.Counter(fmt.Sprintf("rpc.reader.%d.wakeups", i)),
			batched: srv.Metrics.Counter(fmt.Sprintf("rpc.reader.%d.batched_reads", i)),
		})
	}
	for i := 0; i < nfsds; i++ {
		s.workerWG.Add(1)
		go s.nfsd(i)
	}
	for _, r := range s.readers {
		s.readerWG.Add(1)
		go s.readUDP(r)
	}
	s.acceptWG.Add(1)
	go s.serveTCP()
	return s, nil
}

// Stages exposes the stage-level span aggregator (trace dumps read its
// slow-span ring).
func (s *Server) Stages() *metrics.StageStats { return s.stages }

// PublishStats refreshes the lazily maintained metric surfaces: the
// rpc.nfsd.busy gauge and the lock.<site>.* contention counters. Stats
// endpoints call this right before snapshotting the registry.
func (s *Server) PublishStats() {
	s.busy.Set(float64(s.busyCount.Load()))
	lockstat.Publish(s.srv.Metrics)
}

// Core returns the server core behind the sockets. Its Stats and Metrics
// are atomic, so callers (the nfsd stats endpoint, tests) may read them
// concurrently with request handling, without the kernel lock.
func (s *Server) Core() *server.Server { return s.srv }

// UDPAddr returns the bound UDP address (under reuseport every ingest
// socket is bound to the same one).
func (s *Server) UDPAddr() string { return s.socks[0].LocalAddr().String() }

// Readers returns the ingest shard count.
func (s *Server) Readers() int { return len(s.readers) }

// ReusePort reports whether each reader owns a SO_REUSEPORT socket (false:
// all readers share one socket).
func (s *Server) ReusePort() bool { return s.reuse }

// TCPAddr returns the bound TCP address.
func (s *Server) TCPAddr() string { return s.tcp.Addr().String() }

// Close shuts the frontends down gracefully: no ring-resident request
// loses its reply, and no serving goroutine is leaked. The drain order is
// readers first (each is kicked out of its blocking read by a deadline and
// closes its ring on exit; the sockets stay open so the worker pool can
// still send replies), then the pool (which drains every ring to the
// close), then the acceptor and each TCP connection, and only then are the
// UDP sockets closed. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		now := time.Now()
		for _, c := range s.socks {
			c.SetReadDeadline(now)
		}
		s.readerWG.Wait() // readers exit, closing their rings
		s.workerWG.Wait() // pool drains ring-resident requests, replies sent
		s.tcp.Close()
		s.acceptWG.Wait()
		s.connMu.Lock()
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		for _, c := range s.socks {
			c.Close()
		}
	})
}

// closing reports whether Close has begun (readers poll it when a read
// errors out).
func (s *Server) closing() bool {
	select {
	case <-s.closed:
		return true
	default:
		return false
	}
}

// dispatch runs one request (which the callee consumes) through the core
// under the crash gate and returns the linearized reply bytes, or nil when
// the call produced no reply (garbage, crash window, in-flight duplicate).
func (s *Server) dispatch(peer string, req *mbuf.Chain, sp *metrics.Span) []byte {
	crashSite.RLock(&s.crashMu, sp)
	defer s.crashMu.RUnlock()
	if s.srv.Down() {
		req.Free()
		sp.SetErr()
		return nil // crashed: the request vanishes, like the sim frontends
	}
	s.busyCount.Add(1)
	rep := s.srv.HandleCallSpan(nil, peer, req, sp)
	s.busyCount.Add(-1)
	// The request chain is ours (built from the socket read buffer) and the
	// call is finished with it; recycle its mbufs. The reply is linearized
	// for the socket, so its mbufs can go back too.
	req.Free()
	if rep == nil {
		return nil
	}
	out := rep.Bytes()
	rep.Free()
	sp.Stamp(metrics.StageEncode)
	return out
}

// SetDown makes the frontends silently drop requests (true) or serve
// normally (false). Safe to call concurrently with request handling.
func (s *Server) SetDown(down bool) { s.srv.SetDown(down) }

// Crash simulates a server reboot, dropping all volatile core state. It
// takes the quiesce gate exclusively, so it is safe to call while requests
// are being served — unlike calling Core().Crash() directly.
func (s *Server) Crash() {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	s.srv.Crash()
}

// readUDP is one sharded socket reader. Each datagram is first offered to
// the shallow dispatch path (tryFast): header-only procedures are serviced
// right here, their replies coalescing in the reader's send batch. Every
// other datagram moves into pooled mbufs (drawn from a per-reader batch
// cache) and queues on the ring for the nfsd pool, the way the BSD network
// interrupt handed mbuf chains to sleeping nfsds. A reader that owns its
// socket (reuseport) drains the kernel backlog per wakeup through the
// non-blocking drainRead probe — take what's queued, never wait for more —
// so the batch flushes the instant the backlog is dry and coalescing never
// holds a reply while the socket idles. Readers sharing one socket take
// plain blocking reads — they pipeline staging against the descriptor's
// read lock but must leave the shared deadline alone.
func (s *Server) readUDP(r *udpReader) {
	defer s.readerWG.Done()
	defer close(r.ring)
	owned := s.reuse
	var cache mbuf.Cache
	defer cache.Drain()
	batch := newSendBatch(r.conn, true, s.sendBatches, s.sendMsgs, s.stages)
	defer batch.flush()
	var peers peerCache
	var probe recvProbe
	probe.batched = r.batched
	// One span, reused per fast-path datagram (add copies it by value);
	// a per-datagram span would escape through the call chain.
	var sp metrics.Span
	buf := make([]byte, 65536)
	for {
		// Checked on the success path too: under a continuous flood reads
		// never fail, and a reader that only noticed Close through read
		// errors would stage forever while Close waits on it.
		if s.closing() {
			return
		}
		if owned {
			r.conn.SetReadDeadline(time.Now().Add(readerPoll))
		}
		n, addr, err := r.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if s.closing() {
				return
			}
			continue
		}
		r.wakeups.Inc()
		// pkt aliases either buf or a probe-owned batch buffer; both stay
		// intact until the next drainRead, and both consumers below finish
		// with the bytes synchronously (inline service or mbuf copy).
		pkt := buf[:n]
		for nread := 0; ; {
			t0 := time.Now()
			r.reads.Inc()
			if !s.tryFast(r, batch, &peers, pkt, addr, t0, &sp) {
				req := cache.FromBytes(pkt)
				r.ring <- udpJob{addr: addr, req: req, t0: t0, readNS: int64(time.Since(t0))}
			}
			nread++
			if !owned || nread >= maxBatch {
				break
			}
			var more bool
			if pkt, addr, more = drainRead(r.conn, &probe, batch); !more {
				break
			}
		}
		batch.flush()
	}
}

// drainReadDeadline is the portable drain used where no non-blocking probe
// exists: the read can park for the whole batch window on an empty queue,
// so staged replies flush first — the window still amortizes wakeups but
// must never hold a reply. A datagram arriving inside it is taken early.
func drainReadDeadline(conn *net.UDPConn, b *sendBatch, buf []byte) (int, netip.AddrPort, bool) {
	b.flush()
	conn.SetReadDeadline(time.Now().Add(batchPoll))
	n, addr, err := conn.ReadFromUDPAddrPort(buf)
	return n, addr, err == nil
}

// tryFast offers one datagram to the shallow dispatch path. True means the
// datagram was consumed here — serviced inline (reply staged in b) or
// dropped by the crash window, exactly as the generic path would have
// dropped it. False means the caller must stage it for the generic pool;
// when the datagram had been classified fast-eligible that punt is counted
// as a fallback.
func (s *Server) tryFast(r *udpReader, b *sendBatch, peers *peerCache, pkt []byte, addr netip.AddrPort, t0 time.Time, sp *metrics.Span) bool {
	if s.fastOff {
		return false
	}
	var h rpc.PeekedCall
	argOff, ok := rpc.PeekCallHeader(pkt, &h)
	if !ok || !server.FastEligible(&h) {
		return false
	}
	sp.Reset(t0)
	sp.Stamp(metrics.StageRead)
	sp.SetCall(h.XID, h.Proc)
	sp.Stamp(metrics.StageDecode)
	crashSite.RLock(&s.crashMu, sp)
	if s.srv.Down() {
		s.crashMu.RUnlock()
		r.fast.Inc()
		sp.SetErr()
		s.stages.Record(sp)
		return true // crashed: the request vanishes, like the generic drop
	}
	peer := peers.get(addr)
	sp.Peer = peer
	rep, ok := s.srv.HandleCallFast(peer, pkt, &h, argOff, b.scratch(), sp)
	s.crashMu.RUnlock()
	if !ok {
		s.fastFallbacks.Inc()
		return false
	}
	r.fast.Inc()
	s.fastCalls.Inc()
	if rep == nil {
		// Consumed with no reply: a non-idempotent call's in-flight
		// duplicate, dropped exactly as the generic path drops it.
		s.stages.Record(sp)
		return true
	}
	b.add(rep, addr, sp)
	return true
}

// nfsd is one worker of the dispatch pool, permanently attached to the
// ingest ring of reader id%len(readers) (replies leave on that shard's
// socket). Its per-worker counters (rpc.nfsd.<id>.calls,
// rpc.nfsd.<id>.busy_us) expose how evenly the rings spread load, and the
// shared rpc.nfsd.busy gauge the pool's utilization.
func (s *Server) nfsd(id int) {
	defer s.workerWG.Done()
	r := s.readers[id%len(s.readers)]
	calls := s.srv.Metrics.Counter(fmt.Sprintf("rpc.nfsd.%d.calls", id))
	busyUS := s.srv.Metrics.Counter(fmt.Sprintf("rpc.nfsd.%d.busy_us", id))
	// Replies coalesce per burst: as long as the ring has more jobs queued
	// the batch keeps accumulating, and it flushes the moment the ring runs
	// momentarily dry (or the batch fills), so a storm of small replies
	// leaves in a handful of send syscalls without delaying a lone reply.
	batch := newSendBatch(r.conn, false, s.sendBatches, s.sendMsgs, s.stages)
	defer batch.flush()
	// Peer tracing/dupcache labels are interned per source address — the
	// per-request "udp:"+addr.String() formatting was one alloc/op.
	var peers peerCache
	// One span per worker, reused for every request: a per-iteration span
	// would escape to the heap through the cross-package call chain and
	// cost an allocation per RPC (Record and add copy by value, never
	// retain).
	var sp metrics.Span
	for job, ok := <-r.ring; ok; {
		start := time.Now()
		sp.Reset(job.t0)
		sp.Worker = int32(id)
		peer := peers.get(job.addr)
		sp.Peer = peer
		sp.SetStageEnd(metrics.StageRead, job.readNS)
		sp.Stamp(metrics.StageQueue)
		rep := s.dispatch(peer, job.req, &sp)
		busyUS.Add(time.Since(start).Microseconds())
		calls.Inc()
		if rep != nil {
			batch.add(rep, job.addr, &sp)
		} else {
			s.stages.Record(&sp)
		}
		// Take the next job without blocking if the burst continues; flush
		// the staged replies before blocking on an empty ring. (A closed
		// ring falls through with ok=false and the deferred flush sends the
		// tail.)
		select {
		case job, ok = <-r.ring:
		default:
			batch.flush()
			job, ok = <-r.ring
		}
	}
}

func (s *Server) serveTCP() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn serves one TCP connection: requests on a connection execute in
// order (as the record stream demands), but connections run concurrently
// with each other and with the UDP pool.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	peer := "tcp:" + conn.RemoteAddr().String()
	// Per-connection span, reused across records (Worker stays -1: TCP
	// serving has no pool slot; trace dumps put it on a shared track).
	var sp metrics.Span
	var scan rpc.RecordScanner
	buf := make([]byte, 65536)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		recs, err := scan.Feed(buf[:n])
		if err != nil {
			return
		}
		for _, rec := range recs {
			sp.Reset(time.Now())
			sp.Peer = peer
			req := mbuf.FromBytes(rec)
			sp.Stamp(metrics.StageRead)
			rep := s.dispatch(peer, req, &sp)
			if rep == nil {
				s.stages.Record(&sp)
				continue
			}
			var mark [4]byte
			binary.BigEndian.PutUint32(mark[:], 0x80000000|uint32(len(rep)))
			if _, err := conn.Write(append(mark[:], rep...)); err != nil {
				s.stages.Record(&sp)
				return
			}
			sp.Stamp(metrics.StageSend)
			s.stages.Record(&sp)
		}
	}
}

// --- Client ---------------------------------------------------------------

// ErrTimeout is returned when a UDP call exhausts its retries.
var ErrTimeout = errors.New("nfsnet: call timed out")

// Client is a synchronous NFS client over a real socket.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	tcp  bool
	xid  uint32
	// Timeout and Retries govern UDP retransmission.
	Timeout time.Duration
	Retries int
	scan    rpc.RecordScanner
}

// DialUDP connects a UDP client.
func DialUDP(addr string) (*Client, error) {
	c, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: c, Timeout: time.Second, Retries: 5, xid: uint32(time.Now().UnixNano())}, nil
}

// DialTCP connects a TCP client.
func DialTCP(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: c, tcp: true, Timeout: 10 * time.Second, Retries: 1, xid: uint32(time.Now().UnixNano())}, nil
}

// Close closes the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Call issues one NFS RPC and returns a decoder at the results.
func (c *Client) Call(proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	return c.CallProgram(nfsproto.Program, nfsproto.Version, proc, args)
}

// CallProgram issues an RPC against any program (the MOUNT protocol in
// particular) and returns a decoder at the results.
func (c *Client) CallProgram(prog, vers, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.xid++
	xid := c.xid
	msg := &mbuf.Chain{}
	rpc.EncodeCall(msg, &rpc.Call{XID: xid, Prog: prog, Vers: vers, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(msg))
	}
	if c.tcp {
		rpc.AddRecordMark(msg)
	}
	wire := msg.Bytes()
	buf := make([]byte, 65536)
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if _, err := c.conn.Write(wire); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.Timeout)
		for {
			c.conn.SetReadDeadline(deadline)
			var rec []byte
			if c.tcp {
				n, err := c.conn.Read(buf)
				if err != nil {
					if isTimeout(err) {
						break
					}
					return nil, err
				}
				recs, err := c.scan.Feed(buf[:n])
				if err != nil {
					return nil, err
				}
				if len(recs) == 0 {
					continue
				}
				rec = recs[0]
			} else {
				n, err := c.conn.Read(buf)
				if err != nil {
					if isTimeout(err) {
						break
					}
					return nil, err
				}
				rec = buf[:n]
			}
			chain := mbuf.FromBytes(rec)
			got, err := rpc.PeekXID(chain)
			if err != nil || got != xid {
				continue // stale reply from an earlier retry
			}
			d := xdr.NewDecoder(chain)
			r, err := rpc.DecodeReply(d)
			if err != nil {
				return nil, err
			}
			if r.Denied || r.AcceptStat != rpc.Success {
				return nil, fmt.Errorf("nfsnet: rpc failed (stat %d)", r.AcceptStat)
			}
			return d, nil
		}
	}
	return nil, ErrTimeout
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// --- Convenience file operations -----------------------------------------

// Lookup resolves name under dir.
func (c *Client) Lookup(dir nfsproto.FH, name string) (*nfsproto.DiropRes, error) {
	d, err := c.Call(nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: dir, Name: name}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeDiropRes(d)
}

// Getattr stats a handle.
func (c *Client) Getattr(fh nfsproto.FH) (*nfsproto.AttrRes, error) {
	d, err := c.Call(nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: fh}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeAttrRes(d)
}

// Create makes a file.
func (c *Client) Create(dir nfsproto.FH, name string, mode uint32) (*nfsproto.DiropRes, error) {
	attr := nfsproto.NewSattr()
	attr.Mode = mode
	d, err := c.Call(nfsproto.ProcCreate, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: dir, Name: name}, Attr: attr}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeDiropRes(d)
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir nfsproto.FH, name string, mode uint32) (*nfsproto.DiropRes, error) {
	attr := nfsproto.NewSattr()
	attr.Mode = mode
	d, err := c.Call(nfsproto.ProcMkdir, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: dir, Name: name}, Attr: attr}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeDiropRes(d)
}

// Write writes data at offset.
func (c *Client) Write(fh nfsproto.FH, offset uint32, data []byte) (*nfsproto.AttrRes, error) {
	d, err := c.Call(nfsproto.ProcWrite, func(e *xdr.Encoder) {
		(&nfsproto.WriteArgs{File: fh, Offset: offset, Data: mbuf.FromBytes(data)}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeAttrRes(d)
}

// Read reads count bytes at offset.
func (c *Client) Read(fh nfsproto.FH, offset, count uint32) (*nfsproto.ReadRes, error) {
	d, err := c.Call(nfsproto.ProcRead, func(e *xdr.Encoder) {
		(&nfsproto.ReadArgs{File: fh, Offset: offset, Count: count}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeReadRes(d)
}

// Remove unlinks a file.
func (c *Client) Remove(dir nfsproto.FH, name string) (*nfsproto.StatusRes, error) {
	d, err := c.Call(nfsproto.ProcRemove, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: dir, Name: name}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeStatusRes(d)
}

// Mnt obtains the root handle of an exported path via the MOUNT protocol.
func (c *Client) Mnt(path string) (*nfsproto.MntRes, error) {
	d, err := c.CallProgram(nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcMnt,
		func(e *xdr.Encoder) { (&nfsproto.MntArgs{DirPath: path}).Encode(e) })
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeMntRes(d)
}

// Exports lists the server's export table.
func (c *Client) Exports() ([]nfsproto.ExportEntry, error) {
	d, err := c.CallProgram(nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcExport, nil)
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeExportList(d)
}

// Readdir lists a directory page.
func (c *Client) Readdir(dir nfsproto.FH, cookie, count uint32) (*nfsproto.ReaddirRes, error) {
	d, err := c.Call(nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: dir, Cookie: cookie, Count: count}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeReaddirRes(d)
}
