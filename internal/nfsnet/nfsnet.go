// Package nfsnet serves the same NFS server core — identical mbuf/XDR/RPC
// codec, dispatch, caches and duplicate-request cache — over real UDP and
// TCP sockets from the net package, and provides a small synchronous
// client. It demonstrates the transport-layer independence that §2 of the
// paper claims for the implementation: nothing in the protocol code knows
// whether its bytes ride a simulated internetwork or a real socket.
//
// Dispatch is genuinely parallel: a pool of Opts.NFSDs worker goroutines
// drains a UDP request queue, and every TCP connection is served on its
// own goroutine, all calling the core's concurrent-safe HandleCall. The
// giant "kernel lock" of earlier revisions survives only as a read/write
// quiesce gate: every dispatch holds the read side (concurrently with all
// others), and Crash takes the write side to swap the volatile state with
// no call in flight.
package nfsnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"renonfs/internal/lockstat"
	"renonfs/internal/mbuf"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/xdr"
)

// Server serves an NFS server core over real sockets.
type Server struct {
	srv *server.Server

	udp *net.UDPConn
	tcp net.Listener

	// crashMu is the quiesce gate described in the package comment. It is
	// not a serializer: dispatches share the read side.
	crashMu sync.RWMutex

	// jobs carries decoded UDP datagrams from the reader to the nfsd pool.
	// The reader closes it on shutdown; the workers drain what is queued.
	jobs chan udpJob

	closed    chan struct{}
	closeOnce sync.Once

	// Shutdown drains in order: reader, then the worker pool (so every
	// queued request still gets its reply), then the acceptor, then the
	// per-connection servers.
	readerWG, workerWG, acceptWG, connWG sync.WaitGroup

	// Live TCP connections, so Close can kick their readers.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	// nfsd utilization: how many dispatchers are inside HandleCall right
	// now. The rpc.nfsd.busy gauge is published lazily by PublishStats —
	// the earlier per-dispatch gauge writes were two extra stores on one
	// shared cache line per RPC, a serialization point the mutex/stage
	// telemetry this package now carries exists to catch.
	busyCount atomic.Int64
	busy      *metrics.Gauge

	// stages aggregates every request's span into the rpc.stage.*
	// histograms and keeps the slowest spans for trace dumps.
	stages *metrics.StageStats
}

// crashSite attributes waits on the quiesce gate: nonzero numbers mean
// dispatch stalled behind a Crash (or the gate itself became a bottleneck).
var crashSite = lockstat.NewSite("nfsnet.crashgate")

// udpJob is one datagram awaiting an nfsd: the request already lives in
// (pooled) mbufs, so the reader's socket buffer is immediately reusable.
type udpJob struct {
	addr *net.UDPAddr
	req  *mbuf.Chain
	// t0 is the datagram's arrival (span begin); readNS how long the
	// socket-to-mbuf staging took (the span's read stage).
	t0     time.Time
	readNS int64
}

// Serve starts UDP and TCP listeners on the given addresses (use
// "127.0.0.1:0" to pick free ports) and a pool of srv.Opts.NFSDs worker
// goroutines. It widens the core's cache lock striping for concurrent
// dispatch, so the server should not also be serving simulator traffic.
func Serve(srv *server.Server, udpAddr, tcpAddr string) (*Server, error) {
	ua, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	uc, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	tl, err := net.Listen("tcp", tcpAddr)
	if err != nil {
		uc.Close()
		return nil, err
	}
	srv.EnableConcurrentDispatch()
	nfsds := srv.Opts.NFSDs
	if nfsds < 1 {
		nfsds = 1
	}
	s := &Server{
		srv:    srv,
		udp:    uc,
		tcp:    tl,
		jobs:   make(chan udpJob, 4*nfsds),
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
		busy:   srv.Metrics.Gauge("rpc.nfsd.busy"),
		stages: metrics.NewStageStats(srv.Metrics, metrics.DefaultSlowSpans),
	}
	for i := 0; i < nfsds; i++ {
		s.workerWG.Add(1)
		go s.nfsd(i)
	}
	s.readerWG.Add(1)
	go s.serveUDP()
	s.acceptWG.Add(1)
	go s.serveTCP()
	return s, nil
}

// Stages exposes the stage-level span aggregator (trace dumps read its
// slow-span ring).
func (s *Server) Stages() *metrics.StageStats { return s.stages }

// PublishStats refreshes the lazily maintained metric surfaces: the
// rpc.nfsd.busy gauge and the lock.<site>.* contention counters. Stats
// endpoints call this right before snapshotting the registry.
func (s *Server) PublishStats() {
	s.busy.Set(float64(s.busyCount.Load()))
	lockstat.Publish(s.srv.Metrics)
}

// Core returns the server core behind the sockets. Its Stats and Metrics
// are atomic, so callers (the nfsd stats endpoint, tests) may read them
// concurrently with request handling, without the kernel lock.
func (s *Server) Core() *server.Server { return s.srv }

// UDPAddr returns the bound UDP address.
func (s *Server) UDPAddr() string { return s.udp.LocalAddr().String() }

// TCPAddr returns the bound TCP address.
func (s *Server) TCPAddr() string { return s.tcp.Addr().String() }

// Close shuts the frontends down gracefully: no queued request loses its
// reply, and no serving goroutine is leaked. The UDP reader is kicked out
// of its blocking read by a deadline (the socket stays open so the worker
// pool can still send replies), the pool drains the queue, and each TCP
// connection finishes the record it is serving before its reader is kicked
// the same way. Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.udp.SetReadDeadline(time.Now())
		s.readerWG.Wait() // reader exits, closing the jobs channel
		s.workerWG.Wait() // pool drains queued requests, replies sent
		s.tcp.Close()
		s.acceptWG.Wait()
		s.connMu.Lock()
		for c := range s.conns {
			c.SetReadDeadline(time.Now())
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		s.udp.Close()
	})
}

// dispatch runs one request (which the callee consumes) through the core
// under the crash gate and returns the linearized reply bytes, or nil when
// the call produced no reply (garbage, crash window, in-flight duplicate).
func (s *Server) dispatch(peer string, req *mbuf.Chain, sp *metrics.Span) []byte {
	crashSite.RLock(&s.crashMu, sp)
	defer s.crashMu.RUnlock()
	if s.srv.Down() {
		req.Free()
		sp.SetErr()
		return nil // crashed: the request vanishes, like the sim frontends
	}
	s.busyCount.Add(1)
	rep := s.srv.HandleCallSpan(nil, peer, req, sp)
	s.busyCount.Add(-1)
	// The request chain is ours (built from the socket read buffer) and the
	// call is finished with it; recycle its mbufs. The reply is linearized
	// for the socket, so its mbufs can go back too.
	req.Free()
	if rep == nil {
		return nil
	}
	out := rep.Bytes()
	rep.Free()
	sp.Stamp(metrics.StageEncode)
	return out
}

// SetDown makes the frontends silently drop requests (true) or serve
// normally (false). Safe to call concurrently with request handling.
func (s *Server) SetDown(down bool) { s.srv.SetDown(down) }

// Crash simulates a server reboot, dropping all volatile core state. It
// takes the quiesce gate exclusively, so it is safe to call while requests
// are being served — unlike calling Core().Crash() directly.
func (s *Server) Crash() {
	s.crashMu.Lock()
	defer s.crashMu.Unlock()
	s.srv.Crash()
}

// serveUDP is the single socket reader: it moves each datagram into pooled
// mbufs and queues it for the nfsd pool, the way the BSD network interrupt
// handed mbuf chains to sleeping nfsds.
func (s *Server) serveUDP() {
	defer s.readerWG.Done()
	defer close(s.jobs)
	buf := make([]byte, 65536)
	for {
		n, addr, err := s.udp.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		t0 := time.Now()
		req := mbuf.FromBytes(buf[:n])
		s.jobs <- udpJob{addr: addr, req: req, t0: t0, readNS: int64(time.Since(t0))}
	}
}

// nfsd is one worker of the dispatch pool. Its per-worker counters
// (rpc.nfsd.<id>.calls, rpc.nfsd.<id>.busy_us) expose how evenly the queue
// spreads load, and the shared rpc.nfsd.busy gauge the pool's utilization.
func (s *Server) nfsd(id int) {
	defer s.workerWG.Done()
	calls := s.srv.Metrics.Counter(fmt.Sprintf("rpc.nfsd.%d.calls", id))
	busyUS := s.srv.Metrics.Counter(fmt.Sprintf("rpc.nfsd.%d.busy_us", id))
	// One span per worker, reused for every request: a per-iteration span
	// would escape to the heap through the cross-package call chain and
	// cost an allocation per RPC (Record copies by value, never retains).
	var sp metrics.Span
	for job := range s.jobs {
		start := time.Now()
		sp.Reset(job.t0)
		sp.Worker = int32(id)
		peer := "udp:" + job.addr.String()
		sp.Peer = peer
		sp.SetStageEnd(metrics.StageRead, job.readNS)
		sp.Stamp(metrics.StageQueue)
		rep := s.dispatch(peer, job.req, &sp)
		busyUS.Add(time.Since(start).Microseconds())
		calls.Inc()
		if rep != nil {
			s.udp.WriteToUDP(rep, job.addr)
			sp.Stamp(metrics.StageSend)
		}
		s.stages.Record(&sp)
	}
}

func (s *Server) serveTCP() {
	defer s.acceptWG.Done()
	for {
		conn, err := s.tcp.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.connMu.Lock()
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.connWG.Add(1)
		go s.serveConn(conn)
	}
}

// serveConn serves one TCP connection: requests on a connection execute in
// order (as the record stream demands), but connections run concurrently
// with each other and with the UDP pool.
func (s *Server) serveConn(conn net.Conn) {
	defer s.connWG.Done()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	peer := "tcp:" + conn.RemoteAddr().String()
	// Per-connection span, reused across records (Worker stays -1: TCP
	// serving has no pool slot; trace dumps put it on a shared track).
	var sp metrics.Span
	var scan rpc.RecordScanner
	buf := make([]byte, 65536)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		recs, err := scan.Feed(buf[:n])
		if err != nil {
			return
		}
		for _, rec := range recs {
			sp.Reset(time.Now())
			sp.Peer = peer
			req := mbuf.FromBytes(rec)
			sp.Stamp(metrics.StageRead)
			rep := s.dispatch(peer, req, &sp)
			if rep == nil {
				s.stages.Record(&sp)
				continue
			}
			var mark [4]byte
			binary.BigEndian.PutUint32(mark[:], 0x80000000|uint32(len(rep)))
			if _, err := conn.Write(append(mark[:], rep...)); err != nil {
				s.stages.Record(&sp)
				return
			}
			sp.Stamp(metrics.StageSend)
			s.stages.Record(&sp)
		}
	}
}

// --- Client ---------------------------------------------------------------

// ErrTimeout is returned when a UDP call exhausts its retries.
var ErrTimeout = errors.New("nfsnet: call timed out")

// Client is a synchronous NFS client over a real socket.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	tcp  bool
	xid  uint32
	// Timeout and Retries govern UDP retransmission.
	Timeout time.Duration
	Retries int
	scan    rpc.RecordScanner
}

// DialUDP connects a UDP client.
func DialUDP(addr string) (*Client, error) {
	c, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: c, Timeout: time.Second, Retries: 5, xid: uint32(time.Now().UnixNano())}, nil
}

// DialTCP connects a TCP client.
func DialTCP(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: c, tcp: true, Timeout: 10 * time.Second, Retries: 1, xid: uint32(time.Now().UnixNano())}, nil
}

// Close closes the socket.
func (c *Client) Close() error { return c.conn.Close() }

// Call issues one NFS RPC and returns a decoder at the results.
func (c *Client) Call(proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	return c.CallProgram(nfsproto.Program, nfsproto.Version, proc, args)
}

// CallProgram issues an RPC against any program (the MOUNT protocol in
// particular) and returns a decoder at the results.
func (c *Client) CallProgram(prog, vers, proc uint32, args func(e *xdr.Encoder)) (*xdr.Decoder, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.xid++
	xid := c.xid
	msg := &mbuf.Chain{}
	rpc.EncodeCall(msg, &rpc.Call{XID: xid, Prog: prog, Vers: vers, Proc: proc})
	if args != nil {
		args(xdr.NewEncoder(msg))
	}
	if c.tcp {
		rpc.AddRecordMark(msg)
	}
	wire := msg.Bytes()
	buf := make([]byte, 65536)
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if _, err := c.conn.Write(wire); err != nil {
			return nil, err
		}
		deadline := time.Now().Add(c.Timeout)
		for {
			c.conn.SetReadDeadline(deadline)
			var rec []byte
			if c.tcp {
				n, err := c.conn.Read(buf)
				if err != nil {
					if isTimeout(err) {
						break
					}
					return nil, err
				}
				recs, err := c.scan.Feed(buf[:n])
				if err != nil {
					return nil, err
				}
				if len(recs) == 0 {
					continue
				}
				rec = recs[0]
			} else {
				n, err := c.conn.Read(buf)
				if err != nil {
					if isTimeout(err) {
						break
					}
					return nil, err
				}
				rec = buf[:n]
			}
			chain := mbuf.FromBytes(rec)
			got, err := rpc.PeekXID(chain)
			if err != nil || got != xid {
				continue // stale reply from an earlier retry
			}
			d := xdr.NewDecoder(chain)
			r, err := rpc.DecodeReply(d)
			if err != nil {
				return nil, err
			}
			if r.Denied || r.AcceptStat != rpc.Success {
				return nil, fmt.Errorf("nfsnet: rpc failed (stat %d)", r.AcceptStat)
			}
			return d, nil
		}
	}
	return nil, ErrTimeout
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// --- Convenience file operations -----------------------------------------

// Lookup resolves name under dir.
func (c *Client) Lookup(dir nfsproto.FH, name string) (*nfsproto.DiropRes, error) {
	d, err := c.Call(nfsproto.ProcLookup, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: dir, Name: name}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeDiropRes(d)
}

// Getattr stats a handle.
func (c *Client) Getattr(fh nfsproto.FH) (*nfsproto.AttrRes, error) {
	d, err := c.Call(nfsproto.ProcGetattr, func(e *xdr.Encoder) {
		(&nfsproto.GetattrArgs{File: fh}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeAttrRes(d)
}

// Create makes a file.
func (c *Client) Create(dir nfsproto.FH, name string, mode uint32) (*nfsproto.DiropRes, error) {
	attr := nfsproto.NewSattr()
	attr.Mode = mode
	d, err := c.Call(nfsproto.ProcCreate, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: dir, Name: name}, Attr: attr}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeDiropRes(d)
}

// Mkdir makes a directory.
func (c *Client) Mkdir(dir nfsproto.FH, name string, mode uint32) (*nfsproto.DiropRes, error) {
	attr := nfsproto.NewSattr()
	attr.Mode = mode
	d, err := c.Call(nfsproto.ProcMkdir, func(e *xdr.Encoder) {
		(&nfsproto.CreateArgs{Where: nfsproto.DiropArgs{Dir: dir, Name: name}, Attr: attr}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeDiropRes(d)
}

// Write writes data at offset.
func (c *Client) Write(fh nfsproto.FH, offset uint32, data []byte) (*nfsproto.AttrRes, error) {
	d, err := c.Call(nfsproto.ProcWrite, func(e *xdr.Encoder) {
		(&nfsproto.WriteArgs{File: fh, Offset: offset, Data: mbuf.FromBytes(data)}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeAttrRes(d)
}

// Read reads count bytes at offset.
func (c *Client) Read(fh nfsproto.FH, offset, count uint32) (*nfsproto.ReadRes, error) {
	d, err := c.Call(nfsproto.ProcRead, func(e *xdr.Encoder) {
		(&nfsproto.ReadArgs{File: fh, Offset: offset, Count: count}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeReadRes(d)
}

// Remove unlinks a file.
func (c *Client) Remove(dir nfsproto.FH, name string) (*nfsproto.StatusRes, error) {
	d, err := c.Call(nfsproto.ProcRemove, func(e *xdr.Encoder) {
		(&nfsproto.DiropArgs{Dir: dir, Name: name}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeStatusRes(d)
}

// Mnt obtains the root handle of an exported path via the MOUNT protocol.
func (c *Client) Mnt(path string) (*nfsproto.MntRes, error) {
	d, err := c.CallProgram(nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcMnt,
		func(e *xdr.Encoder) { (&nfsproto.MntArgs{DirPath: path}).Encode(e) })
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeMntRes(d)
}

// Exports lists the server's export table.
func (c *Client) Exports() ([]nfsproto.ExportEntry, error) {
	d, err := c.CallProgram(nfsproto.MountProgram, nfsproto.MountVersion, nfsproto.MountProcExport, nil)
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeExportList(d)
}

// Readdir lists a directory page.
func (c *Client) Readdir(dir nfsproto.FH, cookie, count uint32) (*nfsproto.ReaddirRes, error) {
	d, err := c.Call(nfsproto.ProcReaddir, func(e *xdr.Encoder) {
		(&nfsproto.ReaddirArgs{Dir: dir, Cookie: cookie, Count: count}).Encode(e)
	})
	if err != nil {
		return nil, err
	}
	return nfsproto.DecodeReaddirRes(d)
}
