package nfsnet

import (
	"fmt"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"renonfs/internal/check"
	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/metrics"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/xdr"
)

// encodeRemove builds the wire bytes of one REMOVE call.
func encodeRemove(xid uint32, dir nfsproto.FH, name string) []byte {
	msg := &mbuf.Chain{}
	rpc.EncodeCall(msg, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcRemove})
	(&nfsproto.DiropArgs{Dir: dir, Name: name}).Encode(xdr.NewEncoder(msg))
	out := msg.Bytes()
	msg.Free()
	return out
}

// encodeGetattr builds the wire bytes of one GETATTR call.
func encodeGetattr(xid uint32, fh nfsproto.FH) []byte {
	msg := &mbuf.Chain{}
	rpc.EncodeCall(msg, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcGetattr})
	(&nfsproto.GetattrArgs{File: fh}).Encode(xdr.NewEncoder(msg))
	out := msg.Bytes()
	msg.Free()
	return out
}

// TestRetransmitStormExactlyOnce hammers the sharded duplicate request
// cache: UDP clients fire every non-idempotent REMOVE several times
// back-to-back (simulating aggressive retransmission), while TCP clients
// churn ordinary traffic, all against the parallel nfsd pool. Exactly-once
// must hold: every reply to a duplicated REMOVE is the one cached from the
// single execution (status OK), never the ErrNoEnt a re-execution would
// produce — and the strict auditor confirms no non-idempotent procedure
// ran twice. Run with -race.
//
// Ingest is deliberately run in the shared-socket fallback with four
// readers: under reuseport the kernel pins a 4-tuple to one socket, but on
// a shared socket a peer's retransmissions land on whichever reader wins
// the descriptor next — the hostile case for the dupcache, since the same
// xid races through different rings concurrently. The test asserts the
// storm really did spread across readers, so the cross-reader path is what
// was proven.
func TestRetransmitStormExactlyOnce(t *testing.T) {
	disableReusePort = true
	defer func() { disableReusePort = false }()
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = 8
	opts.Readers = 4
	// Size the cache so nothing evicts mid-run: with no eviction, any
	// re-execution is a hard exactly-once violation.
	opts.DupCacheSize = 4096
	srv := server.New(fs, opts)
	epoch := time.Now()
	aud := check.New(func() time.Duration { return time.Since(epoch) })
	aud.SetExactlyOnce(true)
	srv.Tracer = aud.Tracer("server")
	s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	root := srv.RootFH()

	const workers = 4
	const filesPerWorker = 8

	// Set up the victim files through an ordinary client.
	setup, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < filesPerWorker; i++ {
			name := fmt.Sprintf("victim-%d-%d", w, i)
			if res, err := setup.Create(root, name, 0644); err != nil || res.Status != nfsproto.OK {
				t.Fatalf("create %s: %v %v", name, res, err)
			}
		}
	}
	setup.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers+2)

	// A blind idempotent GETATTR flood alongside the storm: it keeps the
	// ingest rings full so readers block handing off and the descriptor's
	// read lock actually rotates between them — on a lightly loaded shared
	// socket one reader can win every read, and the cross-reader
	// retransmission path this test exists for would never be exercised.
	// GETATTR never enters the dupcache, so the flood cannot evict the
	// REMOVE entries whose cached replies the assertions depend on.
	floodStop := make(chan struct{})
	var floodWG sync.WaitGroup
	for f := 0; f < 2; f++ {
		floodWG.Add(1)
		go func(id int) {
			defer floodWG.Done()
			conn, err := net.Dial("udp", s.UDPAddr())
			if err != nil {
				return
			}
			defer conn.Close()
			// Bursts larger than a ring (so readers block handing off and
			// rotate), throttled so the REMOVE storm still gets served on a
			// small host.
			for i := 0; ; {
				select {
				case <-floodStop:
					return
				default:
				}
				for burst := 0; burst < 24; burst++ {
					wire := encodeGetattr(uint32(1_000_000*(id+1)+i), root)
					i++
					if _, err := conn.Write(wire); err != nil {
						return
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(f)
	}

	// TCP churn in parallel with the storm.
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := DialTCP(s.TCPAddr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("churn-%d-%d", id, i)
				res, err := cl.Create(root, name, 0644)
				if err != nil || res.Status != nfsproto.OK {
					errs <- fmt.Errorf("tcp create %s: %v %v", name, res, err)
					return
				}
				if _, err := cl.Write(res.File, 0, []byte("tcp churn payload")); err != nil {
					errs <- err
					return
				}
				if _, err := cl.Read(res.File, 0, 17); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}

	// UDP retransmit storm: each worker REMOVEs its files, sending every
	// datagram three times without waiting, then collects the replies.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("udp", s.UDPAddr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 65536)
			for i := 0; i < filesPerWorker; i++ {
				name := fmt.Sprintf("victim-%d-%d", id, i)
				xid := uint32(1000*id + i + 1)
				wire := encodeRemove(xid, root, name)
				for burst := 0; burst < 3; burst++ {
					if _, err := conn.Write(wire); err != nil {
						errs <- err
						return
					}
				}
				// Collect every reply to this xid; the first may take a
				// moment (execution), later ones come from the cache, and
				// in-flight duplicates legitimately produce none at all.
				got := 0
				deadline := time.Now().Add(2 * time.Second)
				for time.Now().Before(deadline) {
					wait := 150 * time.Millisecond
					if got == 0 {
						wait = time.Second
					}
					conn.SetReadDeadline(time.Now().Add(wait))
					n, err := conn.Read(buf)
					if err != nil {
						if got > 0 {
							break
						}
						continue
					}
					chain := mbuf.FromBytes(buf[:n])
					rxid, err := rpc.PeekXID(chain)
					if err != nil || rxid != xid {
						chain.Free()
						continue // stale reply from an earlier xid
					}
					d := xdr.NewDecoder(chain)
					if _, err := rpc.DecodeReply(d); err != nil {
						errs <- fmt.Errorf("xid %d: bad reply: %v", xid, err)
						return
					}
					res, err := nfsproto.DecodeStatusRes(d)
					if err != nil {
						errs <- fmt.Errorf("xid %d: bad status: %v", xid, err)
						return
					}
					if res.Status != nfsproto.OK {
						errs <- fmt.Errorf("xid %d (%s): reply %d after %d OKs — non-idempotent REMOVE re-executed",
							xid, name, res.Status, got)
						return
					}
					got++
				}
				if got == 0 {
					errs <- fmt.Errorf("xid %d (%s): no reply at all", xid, name)
					return
				}
				// A late retransmission, after the reply was committed, must
				// be answered from the cache with the same OK.
				if _, err := conn.Write(wire); err != nil {
					errs <- err
					return
				}
				conn.SetReadDeadline(time.Now().Add(time.Second))
				if n, err := conn.Read(buf); err == nil {
					chain := mbuf.FromBytes(buf[:n])
					if rxid, err := rpc.PeekXID(chain); err == nil && rxid == xid {
						d := xdr.NewDecoder(chain)
						if _, err := rpc.DecodeReply(d); err == nil {
							if res, err := nfsproto.DecodeStatusRes(d); err == nil && res.Status != nfsproto.OK {
								errs <- fmt.Errorf("xid %d: late retransmit got %d, want cached OK", xid, res.Status)
								return
							}
						}
					}
				}
			}
		}(w)
	}

	wg.Wait()
	close(floodStop)
	floodWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if hits := srv.Stats.DupHits.Load(); hits == 0 {
		t.Error("retransmit storm produced zero duplicate cache hits")
	}
	if v := aud.Finish(); len(v) != 0 {
		t.Errorf("auditor found %d violations, first: %v", len(v), v[0])
	}
	// The storm must actually have exercised sharded ingest: several
	// readers staged traffic (so same-peer retransmissions crossed reader
	// boundaries on their way to the dupcache).
	if got := s.Readers(); got != 4 {
		t.Fatalf("server runs %d readers, want 4", got)
	}
	snap := srv.Metrics.Snapshot()
	active, total := 0, int64(0)
	for i := 0; i < s.Readers(); i++ {
		n := snap.Counters[fmt.Sprintf("rpc.reader.%d.reads", i)]
		t.Logf("reader %d staged %d datagrams", i, n)
		total += n
		if n > 0 {
			active++
		}
	}
	if total == 0 {
		t.Error("rpc.reader.*.reads never advanced")
	}
	if active < 2 {
		t.Errorf("storm traffic landed on %d reader(s); want spread across >= 2", active)
	}
	// Every file must actually be gone — each REMOVE executed (once).
	for w := 0; w < workers; w++ {
		for i := 0; i < filesPerWorker; i++ {
			name := fmt.Sprintf("victim-%d-%d", w, i)
			if _, err := fs.Lookup(fs.Root(), name); err != memfs.ErrNoEnt {
				t.Errorf("%s still present after REMOVE (err %v)", name, err)
			}
		}
	}
}

// TestCloseDrainsWithoutLeaks checks the graceful-shutdown contract: after
// Close returns, every frontend goroutine (reader, nfsd pool, acceptor,
// per-connection servers) has exited.
func TestCloseDrainsWithoutLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = 8
	srv := server.New(fs, opts)
	s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root := srv.RootFH()

	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			ucl, err := DialUDP(s.UDPAddr())
			if err != nil {
				t.Error(err)
				return
			}
			defer ucl.Close()
			tcl, err := DialTCP(s.TCPAddr())
			if err != nil {
				t.Error(err)
				return
			}
			defer tcl.Close()
			for i := 0; i < 25; i++ {
				if _, err := ucl.Getattr(root); err != nil {
					t.Errorf("udp getattr: %v", err)
					return
				}
				if _, err := tcl.Getattr(root); err != nil {
					t.Errorf("tcp getattr: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	s.Close()
	s.Close() // idempotent

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Errorf("goroutine leak after Close: %d running, %d at baseline", g, base)
	}
}

// TestScalingSmoke verifies that the parallel dispatch layer actually
// scales: 4 concurrent clients must push at least 2.5x the throughput of
// one (the ROADMAP multicore target). Real parallelism needs real cores,
// so the test is opt-in (RENONFS_SCALING=1), and on fewer than 4 CPUs it
// skips — unless RENONFS_SCALING_REQUIRE=1, which makes a small machine a
// loud failure instead of a silent skip (the CI multicore gate sets it so
// a mis-sized runner can never quietly pass).
//
// It measures two ingest configurations — readers=1 (the legacy
// single-reader baseline) and readers=GOMAXPROCS (sharded ingest) — and
// prints the per-stage p99 table for both, so a run shows the queue stage
// flattening (or names whichever stage refuses to scale). The 2.5x gate is
// enforced on the sharded configuration.
func TestScalingSmoke(t *testing.T) {
	if os.Getenv("RENONFS_SCALING") == "" {
		t.Skip("set RENONFS_SCALING=1 to run the scaling smoke test")
	}
	if runtime.NumCPU() < 4 {
		if os.Getenv("RENONFS_SCALING_REQUIRE") != "" {
			t.Fatalf("RENONFS_SCALING_REQUIRE set but only %d CPUs: the multicore gate needs >= 4", runtime.NumCPU())
		}
		t.Skipf("needs >= 4 CPUs, have %d", runtime.NumCPU())
	}
	var lastSnap *metrics.Snapshot
	tput := func(clients, readers int) float64 {
		fs := memfs.New(1, nil, nil)
		opts := server.Reno()
		opts.NFSDs = 8
		opts.Readers = readers
		srv := server.New(fs, opts)
		s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		root := srv.RootFH()
		setup, err := DialUDP(s.UDPAddr())
		if err != nil {
			t.Fatal(err)
		}
		cr, err := setup.Create(root, "bench.dat", 0644)
		if err != nil || cr.Status != nfsproto.OK {
			t.Fatalf("create: %v %v", cr, err)
		}
		payload := make([]byte, nfsproto.MaxData)
		if _, err := setup.Write(cr.File, 0, payload); err != nil {
			t.Fatal(err)
		}
		setup.Close()

		const dur = 1500 * time.Millisecond
		var ops int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		stop := time.Now().Add(dur)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cl, err := DialUDP(s.UDPAddr())
				if err != nil {
					t.Error(err)
					return
				}
				defer cl.Close()
				n := int64(0)
				for time.Now().Before(stop) {
					if _, err := cl.Read(cr.File, 0, nfsproto.MaxData); err != nil {
						t.Errorf("read: %v", err)
						return
					}
					if _, err := cl.Lookup(root, "bench.dat"); err != nil {
						t.Errorf("lookup: %v", err)
						return
					}
					n += 2
				}
				mu.Lock()
				ops += n
				mu.Unlock()
			}()
		}
		wg.Wait()
		lastSnap = srv.Metrics.Snapshot()
		return float64(ops) / dur.Seconds()
	}

	stageTable := func(snap *metrics.Snapshot) {
		names := metrics.StageNames()
		for _, st := range append(names[:], "lockwait", "total") {
			if h, ok := snap.Histograms["rpc.stage."+st+".us"]; ok && h.Count > 0 {
				t.Logf("  stage %-8s p50 %8.1fµs  p99 %8.1fµs  max %8.1fµs (%d obs)",
					st, h.Quantile(50), h.Quantile(99), h.Max, h.Count)
			}
		}
		if n, ok := snap.Counters["metrics.registry.contended"]; ok {
			t.Logf("  metrics registry contended %d times (%.3f ms waiting)",
				n, float64(snap.Counters["metrics.registry.wait_us"])/1000)
		}
	}

	// Legacy baseline: one ingest reader, as before issue 7. Reported for
	// the before/after comparison but not gated — the whole point of the
	// sharded path is that one reader eventually becomes the ceiling.
	b1 := tput(1, 1)
	b4 := tput(4, 1)
	t.Logf("readers=1: 1 client %.0f ops/s, 4 clients %.0f ops/s (%.2fx); 4-client stage tail:",
		b1, b4, b4/b1)
	stageTable(lastSnap)

	// Sharded ingest: one reader per core. This is the gated configuration.
	procs := runtime.GOMAXPROCS(0)
	t1 := tput(1, procs)
	t4 := tput(4, procs)
	t.Logf("readers=%d: 1 client %.0f ops/s, 4 clients %.0f ops/s (%.2fx); 4-client stage tail:",
		procs, t1, t4, t4/t1)
	stageTable(lastSnap)
	if t4 < 2.5*t1 {
		t.Errorf("sharded (readers=%d) 4-client throughput %.0f ops/s < 2.5x 1-client %.0f ops/s",
			procs, t4, t1)
	}
}
