package nfsnet

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"renonfs/internal/check"
	"renonfs/internal/mbuf"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/rpc"
	"renonfs/internal/server"
	"renonfs/internal/xdr"
)

// encodeLookup builds the wire bytes of one LOOKUP call.
func encodeLookup(xid uint32, dir nfsproto.FH, name string) []byte {
	msg := &mbuf.Chain{}
	rpc.EncodeCall(msg, &rpc.Call{XID: xid, Prog: nfsproto.Program, Vers: nfsproto.Version, Proc: nfsproto.ProcLookup})
	(&nfsproto.DiropArgs{Dir: dir, Name: name}).Encode(xdr.NewEncoder(msg))
	out := msg.Bytes()
	msg.Free()
	return out
}

// TestFastPathRetransmitExactlyOnce proves the shallow path and the sharded
// dupcache compose: with fast dispatch enabled (reuseport ingest), clients
// retransmit non-idempotent REMOVEs — which must punt to the generic path
// and hit the dupcache exactly-once — interleaved with retransmitted
// LOOKUPs that the readers service inline. Every REMOVE executes once
// (cached OK on every duplicate, strict auditor clean) while the LOOKUP
// traffic demonstrably rode the fast path. Run with -race.
func TestFastPathRetransmitExactlyOnce(t *testing.T) {
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = 8
	opts.Readers = 4
	// Size the cache so nothing evicts mid-run: with no eviction, any
	// re-execution is a hard exactly-once violation.
	opts.DupCacheSize = 4096
	srv := server.New(fs, opts)
	epoch := time.Now()
	aud := check.New(func() time.Duration { return time.Since(epoch) })
	aud.SetExactlyOnce(true)
	srv.Tracer = aud.Tracer("server")
	s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.ReusePort() {
		t.Skip("no reuseport: the shallow path is disabled on multi-reader shared sockets")
	}
	root := srv.RootFH()

	const workers = 4
	const filesPerWorker = 8

	setup, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < filesPerWorker; i++ {
			name := fmt.Sprintf("fpv-%d-%d", w, i)
			if res, err := setup.Create(root, name, 0644); err != nil || res.Status != nfsproto.OK {
				t.Fatalf("create %s: %v %v", name, res, err)
			}
		}
	}
	setup.Close()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("udp", s.UDPAddr())
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			buf := make([]byte, 65536)
			for i := 0; i < filesPerWorker; i++ {
				name := fmt.Sprintf("fpv-%d-%d", id, i)
				rmXID := uint32(1000*id + i + 1)
				luXID := uint32(500_000 + 1000*id + i + 1)
				rmWire := encodeRemove(rmXID, root, name)
				luWire := encodeLookup(luXID, root, name)
				// Retransmit both: the LOOKUP triples are absorbed inline by
				// the fast path (idempotent — re-execution is legal), the
				// REMOVE triples race through the rings into the dupcache.
				for burst := 0; burst < 3; burst++ {
					if _, err := conn.Write(luWire); err != nil {
						errs <- err
						return
					}
					if _, err := conn.Write(rmWire); err != nil {
						errs <- err
						return
					}
				}
				// Every reply to the REMOVE xid must be the cached OK; a
				// non-OK reply means the REMOVE re-executed.
				gotRemove := 0
				deadline := time.Now().Add(2 * time.Second)
				for time.Now().Before(deadline) {
					wait := 150 * time.Millisecond
					if gotRemove == 0 {
						wait = time.Second
					}
					conn.SetReadDeadline(time.Now().Add(wait))
					n, err := conn.Read(buf)
					if err != nil {
						if gotRemove > 0 {
							break
						}
						continue
					}
					chain := mbuf.FromBytes(buf[:n])
					rxid, err := rpc.PeekXID(chain)
					if err != nil || rxid != rmXID {
						chain.Free()
						continue // LOOKUP replies and stale xids
					}
					d := xdr.NewDecoder(chain)
					if _, err := rpc.DecodeReply(d); err != nil {
						errs <- fmt.Errorf("xid %d: bad reply: %v", rmXID, err)
						return
					}
					res, err := nfsproto.DecodeStatusRes(d)
					if err != nil {
						errs <- fmt.Errorf("xid %d: bad status: %v", rmXID, err)
						return
					}
					if res.Status != nfsproto.OK {
						errs <- fmt.Errorf("xid %d (%s): reply %d after %d OKs — REMOVE re-executed behind the fast path",
							rmXID, name, res.Status, gotRemove)
						return
					}
					gotRemove++
				}
				if gotRemove == 0 {
					errs <- fmt.Errorf("xid %d (%s): no REMOVE reply at all", rmXID, name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if hits := srv.Stats.DupHits.Load(); hits == 0 {
		t.Error("retransmitted REMOVEs produced zero duplicate cache hits")
	}
	if v := aud.Finish(); len(v) != 0 {
		t.Errorf("auditor found %d violations, first: %v", len(v), v[0])
	}
	snap := srv.Metrics.Snapshot()
	if fc := snap.Counters["rpc.fastpath.calls"]; fc == 0 {
		t.Error("rpc.fastpath.calls never advanced: LOOKUP storm did not ride the shallow path")
	}
	var reads, fast, dispatched int64
	for i := 0; i < s.Readers(); i++ {
		reads += snap.Counters[fmt.Sprintf("rpc.reader.%d.reads", i)]
		fast += snap.Counters[fmt.Sprintf("rpc.reader.%d.fast", i)]
	}
	for i := 0; i < opts.NFSDs; i++ {
		dispatched += snap.Counters[fmt.Sprintf("rpc.nfsd.%d.calls", i)]
	}
	if reads != dispatched+fast {
		t.Errorf("drain counters diverge: reads %d, dispatched %d, fast %d", reads, dispatched, fast)
	}
	// Every file must actually be gone — each REMOVE executed (once).
	for w := 0; w < workers; w++ {
		for i := 0; i < filesPerWorker; i++ {
			name := fmt.Sprintf("fpv-%d-%d", w, i)
			if _, err := fs.Lookup(fs.Root(), name); err != memfs.ErrNoEnt {
				t.Errorf("%s still present after REMOVE (err %v)", name, err)
			}
		}
	}
}

// TestFastPathSpans holds the telemetry contract of the shallow path: every
// inline-serviced request lands in the read/decode/service/encode/send/total
// histograms exactly once, skips the queue stage (it never rode a ring),
// and moves the fast-path and batched-send counters coherently.
func TestFastPathSpans(t *testing.T) {
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	// One reader: the shallow path is active even where reuseport is not,
	// so the test is platform-independent.
	opts.Readers = 1
	core := server.New(fs, opts)
	if _, err := fs.Create(nil, fs.Root(), "f", 0644); err != nil {
		t.Fatal(err)
	}
	s, err := Serve(core, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cl, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	root := core.RootFH()
	const want = 120
	for i := 0; i < want; i++ {
		if _, err := cl.Lookup(root, "f"); err != nil {
			t.Fatal(err)
		}
	}

	s.PublishStats()
	snap := core.Metrics.Snapshot()
	for _, st := range []string{"read", "decode", "service", "encode", "send", "total"} {
		name := "rpc.stage." + st + ".us"
		if h := snap.Histograms[name]; h.Count < want {
			t.Errorf("%s count = %d, want >= %d", name, h.Count, want)
		}
	}
	if h := snap.Histograms["rpc.stage.queue.us"]; h.Count != 0 {
		t.Errorf("queue stage recorded %d observations for inline-serviced calls", h.Count)
	}
	if fc := snap.Counters["rpc.fastpath.calls"]; fc < want {
		t.Errorf("rpc.fastpath.calls = %d, want >= %d", fc, want)
	}
	if rf := snap.Counters["rpc.reader.0.fast"]; rf < want {
		t.Errorf("rpc.reader.0.fast = %d, want >= %d", rf, want)
	}
	msgs := snap.Counters["rpc.send.batched_msgs"]
	batches := snap.Counters["rpc.send.batches"]
	if msgs < want {
		t.Errorf("rpc.send.batched_msgs = %d, want >= %d", msgs, want)
	}
	if batches == 0 || batches > msgs {
		t.Errorf("rpc.send.batches = %d incoherent against %d batched msgs", batches, msgs)
	}
	ring := s.Stages().Ring()
	if ring.Len() == 0 {
		t.Fatal("slow-span ring is empty after fast-path traffic")
	}
	for _, sp := range ring.Slowest() {
		if sp.Proc != nfsproto.ProcLookup {
			t.Errorf("ring span proc = %d, want LOOKUP", sp.Proc)
		}
		if sp.TotalNS() <= 0 {
			t.Error("ring span with non-positive total")
		}
	}
}
