package nfsnet

import (
	"net"
	"net/netip"

	"renonfs/internal/metrics"
	"renonfs/internal/server"
)

// Reply coalescing (DESIGN.md §3.4). A remount herd or retransmit storm
// delivers datagram bursts; answering each small reply with its own
// WriteToUDP pays one syscall per RPC — the per-packet overhead the paper's
// §3 profile complains about, relocated to the send side. Fast-path
// readers and nfsd workers instead stage small replies bound for their
// shard socket in a sendBatch and flush it with one sendmmsg on Linux
// (sendmmsg_linux.go; a loop of WriteToUDPAddrPort elsewhere) whenever the
// burst is drained, the batch fills, or the fast-path arena runs low.
// Nothing is held across an idle socket: a flush always happens before the
// owner blocks again, so coalescing adds microseconds of queueing inside a
// burst and zero latency outside one.

// maxPeerCache bounds a peer-label interning table; past it the table is
// reset so a peer-churn storm cannot pin unbounded label memory.
const maxPeerCache = 16384

// peerCache interns the "udp:<addr>" tracing/dupcache label per source
// address — the hot path stops paying a formatting allocation per request.
// One per goroutine (reader or worker), so no locking.
type peerCache map[netip.AddrPort]string

func (pc *peerCache) get(addr netip.AddrPort) string {
	if s, ok := (*pc)[addr]; ok {
		return s
	}
	if *pc == nil || len(*pc) >= maxPeerCache {
		*pc = make(peerCache, 64)
	}
	s := "udp:" + addr.String()
	(*pc)[addr] = s
	return s
}

// batchMsg is one reply staged for a coalesced send.
type batchMsg struct {
	buf  []byte
	addr netip.AddrPort
}

// sendBatch accumulates replies leaving on one socket. Readers carry one
// with an arena (fast-path replies are encoded straight into it); workers
// carry one without (generic replies already own their buffers). The spans
// ride along so StageSend is stamped at the actual send.
type sendBatch struct {
	conn  *net.UDPConn
	msgs  []batchMsg
	spans []metrics.Span
	// arena backs fast-path reply encoding; off is the high-water mark of
	// the staged replies within it.
	arena []byte
	off   int
	// mm is reusable platform scratch for the sendmmsg writer.
	mm mmsgState
	// batches counts send syscalls issued; batched the replies sent through
	// the writer — batches/batched is the syscalls-per-reply ratio.
	batches, batched *metrics.Counter
	stages           *metrics.StageStats
}

func newSendBatch(conn *net.UDPConn, withArena bool, batches, batched *metrics.Counter, stages *metrics.StageStats) *sendBatch {
	b := &sendBatch{
		conn:    conn,
		msgs:    make([]batchMsg, 0, maxBatch),
		spans:   make([]metrics.Span, 0, maxBatch),
		batches: batches,
		batched: batched,
		stages:  stages,
	}
	if withArena {
		b.arena = make([]byte, maxBatch*server.FastReplyMax)
	}
	return b
}

// scratch returns a zero-length slice at the arena tail with at least
// FastReplyMax spare capacity, flushing staged replies first when the
// batch or the arena is full. Fast-path replies append into it without
// ever reallocating, so the arena slice handed to add aliases the arena.
func (b *sendBatch) scratch() []byte {
	if len(b.msgs) == cap(b.msgs) || len(b.arena)-b.off < server.FastReplyMax {
		b.flush()
	}
	return b.arena[b.off:b.off]
}

// add stages one reply and a copy of its span. buf must be the slice
// returned by the service call: for arena batches it extends the scratch
// region, and off advances past it.
func (b *sendBatch) add(buf []byte, addr netip.AddrPort, sp *metrics.Span) {
	if b.arena != nil {
		b.off += len(buf)
	} else if len(b.msgs) == cap(b.msgs) {
		b.flush()
	}
	b.msgs = append(b.msgs, batchMsg{buf: buf, addr: addr})
	b.spans = append(b.spans, *sp)
}

// flush sends every staged reply, then stamps and records their spans.
func (b *sendBatch) flush() {
	if len(b.msgs) > 0 {
		sys := sendMulti(b.conn, b.msgs, &b.mm)
		b.batches.Add(int64(sys))
		b.batched.Add(int64(len(b.msgs)))
		for i := range b.spans {
			b.spans[i].Stamp(metrics.StageSend)
			b.stages.Record(&b.spans[i])
		}
		b.msgs = b.msgs[:0]
		b.spans = b.spans[:0]
	}
	b.off = 0
}

// sendLoop is the portable writer: one syscall per reply. Send errors are
// ignored, as they are for unbatched replies — UDP owes nobody delivery.
func sendLoop(conn *net.UDPConn, msgs []batchMsg) int {
	for i := range msgs {
		conn.WriteToUDPAddrPort(msgs[i].buf, msgs[i].addr)
	}
	return len(msgs)
}
