//go:build !linux

package nfsnet

import "net"

// mmsgState is empty where there is no batch send syscall.
type mmsgState struct{}

// sendMulti degrades to one send syscall per reply off Linux.
func sendMulti(conn *net.UDPConn, msgs []batchMsg, _ *mmsgState) int {
	return sendLoop(conn, msgs)
}
