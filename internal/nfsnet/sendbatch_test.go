package nfsnet

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"renonfs/internal/metrics"
)

// TestAllocBudgetBatchedSend pins the batched reply writer to zero
// steady-state allocations: staging a burst into the arena, stamping the
// spans and flushing through sendMulti must reuse every piece of scratch
// (msgs, spans, arena, the sendmmsg header/iovec/sockaddr arrays).
func TestAllocBudgetBatchedSend(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dst := sink.LocalAddr().(*net.UDPAddr).AddrPort()
	// Map into the 4-byte family: netip keeps 127.0.0.1 as v4, but be
	// explicit so the test exercises the same sockaddr shape the readers do.
	dst = netip.AddrPortFrom(dst.Addr().Unmap(), dst.Port())

	reg := metrics.NewRegistry()
	stats := metrics.NewStageStats(reg, metrics.DefaultSlowSpans)
	b := newSendBatch(conn, true, reg.Counter("b"), reg.Counter("m"), stats)
	defer b.flush()

	payload := make([]byte, 96)
	for i := range payload {
		payload[i] = byte(i)
	}
	var sp metrics.Span
	burst := func() {
		for j := 0; j < 16; j++ {
			out := b.scratch()
			out = append(out, payload...)
			sp.Reset(time.Now())
			sp.Stamp(metrics.StageRead)
			sp.Stamp(metrics.StageEncode)
			b.add(out, dst, &sp)
		}
		b.flush()
	}
	for i := 0; i < 8; i++ { // fill scratch arrays to steady state
		burst()
	}
	got := testing.AllocsPerRun(100, burst)
	t.Logf("batched send, 16-reply burst: %.1f allocs (budget 0)", got)
	if got > 0 {
		t.Errorf("batched send allocates %.1f per 16-reply burst, want 0", got)
	}
	if v := reg.Counter("m").Value(); v == 0 {
		t.Fatal("batched writer recorded no messages")
	}
	if bt, mt := reg.Counter("b").Value(), reg.Counter("m").Value(); bt >= mt {
		t.Errorf("batches %d >= msgs %d: coalescing never engaged", bt, mt)
	}
}
