//go:build linux

package nfsnet

import (
	"bytes"
	"net"
	"net/netip"
	"testing"
	"time"

	"renonfs/internal/metrics"
)

// TestRecvProbe pins the drain probe's contract: queued datagrams come
// back with their payload and true source, an empty queue answers
// immediately (never parking for the batch window), and the whole probe
// path allocates nothing after the first call.
func TestRecvProbe(t *testing.T) {
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dst := srv.LocalAddr().(*net.UDPAddr)

	var probe recvProbe
	reg := metrics.NewRegistry()
	stats := metrics.NewStageStats(reg, metrics.DefaultSlowSpans)
	b := newSendBatch(srv, true, reg.Counter("b"), reg.Counter("m"), stats)
	buf := make([]byte, 65536)

	// The future deadline a real reader would have armed before its
	// blocking read; the probe must not be confused by it.
	srv.SetReadDeadline(time.Now().Add(readerPoll))

	payload := []byte("probe-me")
	if _, err := cl.WriteToUDP(payload, dst); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	var n int
	var ok bool
	for {
		var src netip.AddrPort
		if n, src, ok = drainRead(srv, &probe, b, buf); ok {
			if !bytes.Equal(buf[:n], payload) {
				t.Fatalf("probe read %q, want %q", buf[:n], payload)
			}
			want := cl.LocalAddr().(*net.UDPAddr)
			if int(src.Port()) != want.Port || !src.Addr().Is4() {
				t.Fatalf("probe source = %v, want %v", src, want)
			}
			break
		}
		// The datagram may not have landed in the socket queue yet.
		if time.Now().After(deadline) {
			t.Fatal("queued datagram never became probe-readable")
		}
		time.Sleep(time.Millisecond)
	}

	// Empty queue: the probe must answer false without parking. Allow a
	// generous bound — the failure mode being excluded is a batchPoll (or
	// readerPoll) park, orders of magnitude larger.
	start := time.Now()
	if _, _, ok = drainRead(srv, &probe, b, buf); ok {
		t.Fatal("probe read a datagram from an empty queue")
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("empty-queue probe took %v; want immediate return", el)
	}

	if sysRecvfrom != 0 {
		avg := testing.AllocsPerRun(100, func() { drainRead(srv, &probe, b, buf) })
		if avg != 0 {
			t.Fatalf("empty-queue probe allocates %.1f/op, want 0", avg)
		}
	}
}
