//go:build linux

package nfsnet

import (
	"bytes"
	"fmt"
	"net"
	"net/netip"
	"testing"
	"time"

	"renonfs/internal/metrics"
)

// TestRecvProbe pins the drain probe's contract: queued datagrams come
// back with their payload and true source, an empty queue answers
// immediately (never parking for the batch window), and the whole probe
// path allocates nothing after the first call.
func TestRecvProbe(t *testing.T) {
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dst := srv.LocalAddr().(*net.UDPAddr)

	var probe recvProbe
	reg := metrics.NewRegistry()
	stats := metrics.NewStageStats(reg, metrics.DefaultSlowSpans)
	b := newSendBatch(srv, true, reg.Counter("b"), reg.Counter("m"), stats)

	// The future deadline a real reader would have armed before its
	// blocking read; the probe must not be confused by it.
	srv.SetReadDeadline(time.Now().Add(readerPoll))

	payload := []byte("probe-me")
	if _, err := cl.WriteToUDP(payload, dst); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	var pkt []byte
	var ok bool
	for {
		var src netip.AddrPort
		if pkt, src, ok = drainRead(srv, &probe, b); ok {
			if !bytes.Equal(pkt, payload) {
				t.Fatalf("probe read %q, want %q", pkt, payload)
			}
			want := cl.LocalAddr().(*net.UDPAddr)
			if int(src.Port()) != want.Port || !src.Addr().Is4() {
				t.Fatalf("probe source = %v, want %v", src, want)
			}
			break
		}
		// The datagram may not have landed in the socket queue yet.
		if time.Now().After(deadline) {
			t.Fatal("queued datagram never became probe-readable")
		}
		time.Sleep(time.Millisecond)
	}

	// Empty queue: the probe must answer false without parking. Allow a
	// generous bound — the failure mode being excluded is a batchPoll (or
	// readerPoll) park, orders of magnitude larger.
	start := time.Now()
	if _, _, ok = drainRead(srv, &probe, b); ok {
		t.Fatal("probe read a datagram from an empty queue")
	}
	if el := time.Since(start); el > 100*time.Millisecond {
		t.Fatalf("empty-queue probe took %v; want immediate return", el)
	}

	if sysRecvmmsg != 0 {
		avg := testing.AllocsPerRun(100, func() { drainRead(srv, &probe, b) })
		if avg != 0 {
			t.Fatalf("empty-queue probe allocates %.1f/op, want 0", avg)
		}
	}
}

// TestRecvProbeBatch pins the recvmmsg amortization: a backlog queued
// before the first fill comes back in order, in fewer kernel crossings
// than datagrams, with the surplus counted on the batched counter.
func TestRecvProbeBatch(t *testing.T) {
	if sysRecvmmsg == 0 {
		t.Skip("no recvmmsg on this arch")
	}
	srv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dst := srv.LocalAddr().(*net.UDPAddr)

	var probe recvProbe
	reg := metrics.NewRegistry()
	probe.batched = reg.Counter("batched")
	stats := metrics.NewStageStats(reg, metrics.DefaultSlowSpans)
	b := newSendBatch(srv, true, reg.Counter("b"), reg.Counter("m"), stats)

	const msgs = 5
	for i := 0; i < msgs; i++ {
		if _, err := cl.WriteToUDP([]byte(fmt.Sprintf("dgram-%d", i)), dst); err != nil {
			t.Fatal(err)
		}
	}
	// Let the backlog settle into the socket queue so the first fill sees
	// it whole.
	time.Sleep(100 * time.Millisecond)

	got := 0
	deadline := time.Now().Add(2 * time.Second)
	for got < msgs {
		pkt, _, ok := drainRead(srv, &probe, b)
		if !ok {
			if time.Now().After(deadline) {
				t.Fatalf("drained %d/%d queued datagrams", got, msgs)
			}
			time.Sleep(time.Millisecond)
			continue
		}
		if want := fmt.Sprintf("dgram-%d", got); string(pkt) != want {
			t.Fatalf("datagram %d = %q, want %q (UDP socket queues are FIFO)", got, pkt, want)
		}
		got++
	}
	if n := probe.batched.Value(); n < 1 {
		t.Errorf("batched_reads = %d after a %d-datagram backlog, want >= 1", n, msgs)
	}
}
