//go:build !linux

package nfsnet

import (
	"errors"
	"net"
)

// reusePortSupported reports that this platform cannot (portably) bind
// multiple sockets to one UDP port, so sharded ingest falls back to
// multiple reader goroutines sharing a single socket.
func reusePortSupported() bool { return false }

// listenReusePort is unavailable off Linux.
func listenReusePort(addr string, n int) ([]*net.UDPConn, error) {
	return nil, errors.New("nfsnet: SO_REUSEPORT sharding unsupported on this platform")
}
