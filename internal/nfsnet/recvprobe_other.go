//go:build !linux

package nfsnet

import (
	"net"
	"net/netip"

	"renonfs/internal/metrics"
)

// recvProbe carries only the drain buffer where there is no raw
// non-blocking receive; batched stays nil-safe and unused.
type recvProbe struct {
	buf     []byte
	batched *metrics.Counter
}

// drainRead degrades to the portable flush-then-deadline drain off Linux.
func drainRead(conn *net.UDPConn, p *recvProbe, b *sendBatch) ([]byte, netip.AddrPort, bool) {
	if p.buf == nil {
		p.buf = make([]byte, 65536)
	}
	n, addr, ok := drainReadDeadline(conn, b, p.buf)
	if !ok {
		return nil, netip.AddrPort{}, false
	}
	return p.buf[:n], addr, true
}
