//go:build !linux

package nfsnet

import (
	"net"
	"net/netip"
)

// recvProbe is empty where there is no raw non-blocking receive.
type recvProbe struct{}

// drainRead degrades to the portable flush-then-deadline drain off Linux.
func drainRead(conn *net.UDPConn, _ *recvProbe, b *sendBatch, buf []byte) (int, netip.AddrPort, bool) {
	return drainReadDeadline(conn, b, buf)
}
