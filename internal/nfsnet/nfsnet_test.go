package nfsnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
)

func startServer(t *testing.T) (*Server, *server.Server) {
	t.Helper()
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, srv
}

func exercise(t *testing.T, c *Client, root nfsproto.FH, tag string) {
	t.Helper()
	// Create, write, read back, list, remove.
	cr, err := c.Create(root, "hello-"+tag+".txt", 0644)
	if err != nil || cr.Status != nfsproto.OK {
		t.Fatalf("create: %v %v", cr, err)
	}
	payload := bytes.Repeat([]byte("the quick brown fox "), 500) // 10 KB
	for off := 0; off < len(payload); off += nfsproto.MaxData {
		end := off + nfsproto.MaxData
		if end > len(payload) {
			end = len(payload)
		}
		wr, err := c.Write(cr.File, uint32(off), payload[off:end])
		if err != nil || wr.Status != nfsproto.OK {
			t.Fatalf("write: %v %v", wr, err)
		}
	}
	var got []byte
	for off := 0; off < len(payload); off += nfsproto.MaxData {
		rr, err := c.Read(cr.File, uint32(off), nfsproto.MaxData)
		if err != nil || rr.Status != nfsproto.OK {
			t.Fatalf("read: %v %v", rr, err)
		}
		got = append(got, rr.Data.Bytes()...)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatal("payload corrupted over real sockets")
	}
	lk, err := c.Lookup(root, "hello-"+tag+".txt")
	if err != nil || lk.Status != nfsproto.OK || lk.File != cr.File {
		t.Fatalf("lookup: %v %v", lk, err)
	}
	rd, err := c.Readdir(root, 0, 4096)
	if err != nil || rd.Status != nfsproto.OK {
		t.Fatalf("readdir: %v %v", rd, err)
	}
	found := false
	for _, e := range rd.Entries {
		if e.Name == "hello-"+tag+".txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("created file missing from readdir")
	}
	rm, err := c.Remove(root, "hello-"+tag+".txt")
	if err != nil || rm.Status != nfsproto.OK {
		t.Fatalf("remove: %v %v", rm, err)
	}
	if ga, err := c.Getattr(cr.File); err != nil || ga.Status != nfsproto.ErrStale {
		t.Fatalf("getattr after remove: %v %v", ga, err)
	}
}

func TestRealUDP(t *testing.T) {
	s, srv := startServer(t)
	c, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exercise(t, c, srv.RootFH(), "udp")
}

func TestRealTCP(t *testing.T) {
	s, srv := startServer(t)
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exercise(t, c, srv.RootFH(), "tcp")
}

func TestMixedTransportsShareState(t *testing.T) {
	// A file created over UDP is visible over TCP: same server state,
	// different transports — the §2 independence claim.
	s, srv := startServer(t)
	cu, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cu.Close()
	ct, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	cr, err := cu.Create(srv.RootFH(), "shared", 0644)
	if err != nil || cr.Status != nfsproto.OK {
		t.Fatalf("create over udp: %v %v", cr, err)
	}
	if _, err := cu.Write(cr.File, 0, []byte("via-udp")); err != nil {
		t.Fatal(err)
	}
	rr, err := ct.Read(cr.File, 0, 100)
	if err != nil || rr.Status != nfsproto.OK {
		t.Fatalf("read over tcp: %v %v", rr, err)
	}
	if string(rr.Data.Bytes()) != "via-udp" {
		t.Fatalf("tcp read = %q", rr.Data.Bytes())
	}
}

func TestRealMountProtocol(t *testing.T) {
	s, srv := startServer(t)
	srv.Export("/pub")
	c, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Build /pub, then mount it by path.
	mk, err := c.Mkdir(srv.RootFH(), "pub", 0755)
	if err != nil || mk.Status != nfsproto.OK {
		t.Fatalf("mkdir: %v %v", mk, err)
	}
	exports, err := c.Exports()
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) < 2 {
		t.Fatalf("exports = %+v", exports)
	}
	mnt, err := c.Mnt("/pub")
	if err != nil || mnt.Status != 0 {
		t.Fatalf("mnt: %+v %v", mnt, err)
	}
	if mnt.File != mk.File {
		t.Fatal("MNT returned a different handle than MKDIR")
	}
	// Unexported path refused.
	bad, err := c.Mnt("/secret")
	if err != nil || bad.Status == 0 {
		t.Fatalf("mnt /secret: %+v %v", bad, err)
	}
	// The mount works over TCP too, for the same state.
	ct, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	mnt2, err := ct.Mnt("/pub")
	if err != nil || mnt2.Status != 0 || mnt2.File != mk.File {
		t.Fatalf("mnt over tcp: %+v %v", mnt2, err)
	}
}

func TestConcurrentRealClients(t *testing.T) {
	s, srv := startServer(t)
	root := srv.RootFH()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c *Client
			var err error
			if i%2 == 0 {
				c, err = DialUDP(s.UDPAddr())
			} else {
				c, err = DialTCP(s.TCPAddr())
			}
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			name := fmt.Sprintf("f-%d", i)
			cr, err := c.Create(root, name, 0644)
			if err != nil || cr.Status != nfsproto.OK {
				errs <- fmt.Errorf("create %s: %v %v", name, cr, err)
				return
			}
			data := bytes.Repeat([]byte{byte(i)}, 4096)
			if _, err := c.Write(cr.File, 0, data); err != nil {
				errs <- err
				return
			}
			rr, err := c.Read(cr.File, 0, 4096)
			if err != nil || rr.Status != nfsproto.OK || !bytes.Equal(rr.Data.Bytes(), data) {
				errs <- fmt.Errorf("readback %s failed", name)
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
