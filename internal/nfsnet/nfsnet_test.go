package nfsnet

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
)

func startServer(t *testing.T) (*Server, *server.Server) {
	t.Helper()
	fs := memfs.New(1, nil, nil)
	srv := server.New(fs, server.Reno())
	s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, srv
}

func exercise(t *testing.T, c *Client, root nfsproto.FH, tag string) {
	t.Helper()
	// Create, write, read back, list, remove.
	cr, err := c.Create(root, "hello-"+tag+".txt", 0644)
	if err != nil || cr.Status != nfsproto.OK {
		t.Fatalf("create: %v %v", cr, err)
	}
	payload := bytes.Repeat([]byte("the quick brown fox "), 500) // 10 KB
	for off := 0; off < len(payload); off += nfsproto.MaxData {
		end := off + nfsproto.MaxData
		if end > len(payload) {
			end = len(payload)
		}
		wr, err := c.Write(cr.File, uint32(off), payload[off:end])
		if err != nil || wr.Status != nfsproto.OK {
			t.Fatalf("write: %v %v", wr, err)
		}
	}
	var got []byte
	for off := 0; off < len(payload); off += nfsproto.MaxData {
		rr, err := c.Read(cr.File, uint32(off), nfsproto.MaxData)
		if err != nil || rr.Status != nfsproto.OK {
			t.Fatalf("read: %v %v", rr, err)
		}
		got = append(got, rr.Data.Bytes()...)
	}
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Fatal("payload corrupted over real sockets")
	}
	lk, err := c.Lookup(root, "hello-"+tag+".txt")
	if err != nil || lk.Status != nfsproto.OK || lk.File != cr.File {
		t.Fatalf("lookup: %v %v", lk, err)
	}
	rd, err := c.Readdir(root, 0, 4096)
	if err != nil || rd.Status != nfsproto.OK {
		t.Fatalf("readdir: %v %v", rd, err)
	}
	found := false
	for _, e := range rd.Entries {
		if e.Name == "hello-"+tag+".txt" {
			found = true
		}
	}
	if !found {
		t.Fatal("created file missing from readdir")
	}
	rm, err := c.Remove(root, "hello-"+tag+".txt")
	if err != nil || rm.Status != nfsproto.OK {
		t.Fatalf("remove: %v %v", rm, err)
	}
	if ga, err := c.Getattr(cr.File); err != nil || ga.Status != nfsproto.ErrStale {
		t.Fatalf("getattr after remove: %v %v", ga, err)
	}
}

func TestRealUDP(t *testing.T) {
	s, srv := startServer(t)
	c, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exercise(t, c, srv.RootFH(), "udp")
}

func TestRealTCP(t *testing.T) {
	s, srv := startServer(t)
	c, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	exercise(t, c, srv.RootFH(), "tcp")
}

func TestMixedTransportsShareState(t *testing.T) {
	// A file created over UDP is visible over TCP: same server state,
	// different transports — the §2 independence claim.
	s, srv := startServer(t)
	cu, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer cu.Close()
	ct, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()

	cr, err := cu.Create(srv.RootFH(), "shared", 0644)
	if err != nil || cr.Status != nfsproto.OK {
		t.Fatalf("create over udp: %v %v", cr, err)
	}
	if _, err := cu.Write(cr.File, 0, []byte("via-udp")); err != nil {
		t.Fatal(err)
	}
	rr, err := ct.Read(cr.File, 0, 100)
	if err != nil || rr.Status != nfsproto.OK {
		t.Fatalf("read over tcp: %v %v", rr, err)
	}
	if string(rr.Data.Bytes()) != "via-udp" {
		t.Fatalf("tcp read = %q", rr.Data.Bytes())
	}
}

func TestRealMountProtocol(t *testing.T) {
	s, srv := startServer(t)
	srv.Export("/pub")
	c, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Build /pub, then mount it by path.
	mk, err := c.Mkdir(srv.RootFH(), "pub", 0755)
	if err != nil || mk.Status != nfsproto.OK {
		t.Fatalf("mkdir: %v %v", mk, err)
	}
	exports, err := c.Exports()
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) < 2 {
		t.Fatalf("exports = %+v", exports)
	}
	mnt, err := c.Mnt("/pub")
	if err != nil || mnt.Status != 0 {
		t.Fatalf("mnt: %+v %v", mnt, err)
	}
	if mnt.File != mk.File {
		t.Fatal("MNT returned a different handle than MKDIR")
	}
	// Unexported path refused.
	bad, err := c.Mnt("/secret")
	if err != nil || bad.Status == 0 {
		t.Fatalf("mnt /secret: %+v %v", bad, err)
	}
	// The mount works over TCP too, for the same state.
	ct, err := DialTCP(s.TCPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer ct.Close()
	mnt2, err := ct.Mnt("/pub")
	if err != nil || mnt2.Status != 0 || mnt2.File != mk.File {
		t.Fatalf("mnt over tcp: %+v %v", mnt2, err)
	}
}

func TestConcurrentRealClients(t *testing.T) {
	s, srv := startServer(t)
	root := srv.RootFH()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c *Client
			var err error
			if i%2 == 0 {
				c, err = DialUDP(s.UDPAddr())
			} else {
				c, err = DialTCP(s.TCPAddr())
			}
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			name := fmt.Sprintf("f-%d", i)
			cr, err := c.Create(root, name, 0644)
			if err != nil || cr.Status != nfsproto.OK {
				errs <- fmt.Errorf("create %s: %v %v", name, cr, err)
				return
			}
			data := bytes.Repeat([]byte{byte(i)}, 4096)
			if _, err := c.Write(cr.File, 0, data); err != nil {
				errs <- err
				return
			}
			rr, err := c.Read(cr.File, 0, 4096)
			if err != nil || rr.Status != nfsproto.OK || !bytes.Equal(rr.Data.Bytes(), data) {
				errs <- fmt.Errorf("readback %s failed", name)
				return
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStressCrashAndSetDownMidCall hammers the real-socket server from
// concurrent UDP and TCP clients while another goroutine keeps crashing it
// and toggling it down mid-call. Run under -race, this is the detector for
// unsynchronized access between the frontends and the crash path; the
// functional assertion is that once the chaos stops, every client
// completes a full create/write/read cycle against the recovered server.
func TestStressCrashAndSetDownMidCall(t *testing.T) {
	s, srv := startServer(t)
	root := srv.RootFH()

	stop := make(chan struct{})
	var chaosWG sync.WaitGroup
	chaosWG.Add(1)
	go func() {
		defer chaosWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				s.SetDown(false)
				return
			default:
			}
			switch i % 3 {
			case 0:
				s.SetDown(true)
				time.Sleep(5 * time.Millisecond)
				s.SetDown(false)
			case 1:
				s.Crash()
			case 2:
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var c *Client
			var err error
			if i%2 == 0 {
				c, err = DialUDP(s.UDPAddr())
			} else {
				c, err = DialTCP(s.TCPAddr())
			}
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			c.Timeout = 100 * time.Millisecond
			c.Retries = 2
			name := fmt.Sprintf("stress-%d", i)
			deadline := time.Now().Add(2 * time.Second)
			for time.Now().Before(deadline) {
				// Failures are expected while the server is down or
				// rebooting; only panics and races are bugs here.
				cr, err := c.Create(root, name, 0644)
				if err != nil || cr.Status != nfsproto.OK {
					continue
				}
				c.Write(cr.File, 0, bytes.Repeat([]byte{byte(i)}, 1024))
				c.Read(cr.File, 0, 1024)
				c.Remove(root, name)
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	chaosWG.Wait()

	// The dust has settled: the server must serve every client again.
	for i := 0; i < workers; i++ {
		var c *Client
		var err error
		if i%2 == 0 {
			c, err = DialUDP(s.UDPAddr())
		} else {
			c, err = DialTCP(s.TCPAddr())
		}
		if err != nil {
			t.Fatalf("post-chaos dial %d: %v", i, err)
		}
		c.Timeout = time.Second
		c.Retries = 5
		name := fmt.Sprintf("settled-%d", i)
		cr, err := c.Create(root, name, 0644)
		if err != nil || cr.Status != nfsproto.OK {
			t.Fatalf("post-chaos create %d: %v %v", i, cr, err)
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, 2048)
		if wr, err := c.Write(cr.File, 0, data); err != nil || wr.Status != nfsproto.OK {
			t.Fatalf("post-chaos write %d: %v %v", i, wr, err)
		}
		rr, err := c.Read(cr.File, 0, 2048)
		if err != nil || rr.Status != nfsproto.OK || !bytes.Equal(rr.Data.Bytes(), data) {
			t.Fatalf("post-chaos readback %d failed: %v %v", i, rr, err)
		}
		c.Close()
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
