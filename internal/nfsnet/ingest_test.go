package nfsnet

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"renonfs/internal/check"
	"renonfs/internal/memfs"
	"renonfs/internal/nfsproto"
	"renonfs/internal/server"
)

// TestCloseMidStormDrainsAndNoLeaks closes the server in the middle of a
// UDP retransmit storm and holds the shutdown contract of the sharded
// ingest path under -race:
//
//   - drain ordering: readers stop before rings drain before workers exit,
//     so every datagram a reader read was either serviced inline (shallow
//     path) or dispatched — after Close, sum(rpc.reader.*.reads) ==
//     sum(rpc.nfsd.*.calls) + sum(rpc.reader.*.fast). A ring-resident
//     request whose reply was already committed is never dropped on the
//     floor (the strict auditor would also flag a re-execution if a client
//     retried one and it ran twice).
//   - no goroutine leaks: every reader, worker, acceptor and connection
//     server has exited once Close returns.
func TestCloseMidStormDrainsAndNoLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = 8
	opts.Readers = 4
	opts.DupCacheSize = 4096
	srv := server.New(fs, opts)
	epoch := time.Now()
	aud := check.New(func() time.Duration { return time.Since(epoch) })
	aud.SetExactlyOnce(true)
	srv.Tracer = aud.Tracer("server")
	s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	root := srv.RootFH()

	// Victims for the non-idempotent side of the storm.
	setup, err := DialUDP(s.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	const stormers = 4
	const filesPerStormer = 16
	for w := 0; w < stormers; w++ {
		for i := 0; i < filesPerStormer; i++ {
			name := fmt.Sprintf("mid-%d-%d", w, i)
			if res, err := setup.Create(root, name, 0644); err != nil || res.Status != nfsproto.OK {
				t.Fatalf("create %s: %v %v", name, res, err)
			}
		}
	}
	setup.Close()

	// The storm: fire REMOVE retransmission bursts blind (no reply waits),
	// as fast as the sockets accept them, until told to stop. Write errors
	// are expected once the server sockets close.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < stormers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			conn, err := net.Dial("udp", s.UDPAddr())
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("mid-%d-%d", id, i%filesPerStormer)
				wire := encodeRemove(uint32(1000*id+i%filesPerStormer+1), root, name)
				for burst := 0; burst < 3; burst++ {
					if _, err := conn.Write(wire); err != nil {
						return // server sockets gone: the storm is over
					}
				}
			}
		}(w)
	}

	time.Sleep(75 * time.Millisecond) // let the storm build a backlog
	s.Close()
	close(stop)
	wg.Wait()

	// Drain guarantee: everything read was fast-serviced or dispatched.
	snap := srv.Metrics.Snapshot()
	var staged, fast, dispatched int64
	for i := 0; i < s.Readers(); i++ {
		staged += snap.Counters[fmt.Sprintf("rpc.reader.%d.reads", i)]
		fast += snap.Counters[fmt.Sprintf("rpc.reader.%d.fast", i)]
	}
	for i := 0; i < opts.NFSDs; i++ {
		dispatched += snap.Counters[fmt.Sprintf("rpc.nfsd.%d.calls", i)]
	}
	if staged == 0 {
		t.Error("storm staged zero datagrams before Close")
	}
	if staged != dispatched+fast {
		t.Errorf("drain lost requests: readers read %d datagrams, nfsds dispatched %d, fast-serviced %d",
			staged, dispatched, fast)
	}
	if v := aud.Finish(); len(v) != 0 {
		t.Errorf("auditor found %d violations, first: %v", len(v), v[0])
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > base {
		t.Errorf("goroutine leak after mid-storm Close: %d running, %d at baseline", g, base)
	}
}

// TestReusePortShardsIngest exercises the owned-socket strategy: with
// SO_REUSEPORT available, every reader binds its own socket to the one
// service port and the kernel spreads client flows across them. Many
// distinct client sockets (distinct source ports, so distinct 4-tuple
// hashes) must land on more than one reader, and every call must still be
// answered correctly whichever socket it arrived on. Skipped where the
// platform cannot bind multiple sockets to one port.
func TestReusePortShardsIngest(t *testing.T) {
	if !reusePortSupported() {
		t.Skip("SO_REUSEPORT sharding unsupported on this platform")
	}
	fs := memfs.New(1, nil, nil)
	opts := server.Reno()
	opts.NFSDs = 4
	opts.Readers = 4
	srv := server.New(fs, opts)
	s, err := Serve(srv, "127.0.0.1:0", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if !s.ReusePort() {
		t.Fatalf("reuseport supported but server fell back to a shared socket")
	}
	if got := s.Readers(); got != 4 {
		t.Fatalf("server runs %d readers, want 4", got)
	}
	root := srv.RootFH()

	// 24 clients × 2^-23 odds that every 4-tuple hashes to one of ≥2
	// sockets' lanes makes the spread assertion deterministic in practice.
	const clients = 24
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := DialUDP(s.UDPAddr())
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			name := fmt.Sprintf("shard-%d", id)
			cr, err := cl.Create(root, name, 0644)
			if err != nil || cr.Status != nfsproto.OK {
				errs <- fmt.Errorf("create %s: %v %v", name, cr, err)
				return
			}
			for i := 0; i < 8; i++ {
				if _, err := cl.Getattr(cr.File); err != nil {
					errs <- fmt.Errorf("getattr %s: %v", name, err)
					return
				}
			}
			if lk, err := cl.Lookup(root, name); err != nil || lk.Status != nfsproto.OK || lk.File != cr.File {
				errs <- fmt.Errorf("lookup %s: %v %v", name, lk, err)
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	snap := srv.Metrics.Snapshot()
	active := 0
	for i := 0; i < s.Readers(); i++ {
		n := snap.Counters[fmt.Sprintf("rpc.reader.%d.reads", i)]
		t.Logf("reader %d staged %d datagrams", i, n)
		if n > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("reuseport delivered all flows to %d reader(s); want spread across >= 2", active)
	}
	if snap.Counters["rpc.reader.reuseport"] != 1 || snap.Counters["rpc.readers"] != 4 {
		t.Errorf("ingest counters wrong: reuseport=%d readers=%d",
			snap.Counters["rpc.reader.reuseport"], snap.Counters["rpc.readers"])
	}
}
