//go:build linux && !amd64 && !arm64 && !riscv64 && !loong64 && !386 && !arm

package nfsnet

// Unlisted arches have no sendmmsg number wired up; sendMulti degrades to
// the portable loop.
const sysSendmmsg uintptr = 0
