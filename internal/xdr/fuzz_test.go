package xdr

import (
	"testing"

	"renonfs/internal/mbuf"
)

// FuzzXDRDecode drives the decoder over arbitrary bytes with a mixed
// sequence of typed reads. Corrupt or truncated input must surface as an
// error from the failing read — never a panic, never an over-long
// allocation (Opaque/String are bounded by MaxItem).
func FuzzXDRDecode(f *testing.F) {
	valid := &mbuf.Chain{}
	e := NewEncoder(valid)
	e.PutUint32(42)
	e.PutUint64(1 << 40)
	e.PutBool(true)
	e.PutOpaque([]byte("file handle bytes"))
	e.PutString("lost+found")
	e.PutFixedOpaque(make([]byte, 32))
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})                      // huge opaque length
	f.Add([]byte{0x7f, 0xff, 0xff, 0xff, 0x00, 0x00, 0x00, 0x01}) // length > remaining
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(mbuf.FromBytes(data))
		for {
			if _, err := d.Uint32(); err != nil {
				return
			}
			if b, err := d.Opaque(); err != nil {
				return
			} else if len(b) > d.maxItem() {
				t.Fatalf("Opaque returned %d bytes, above the %d item bound", len(b), d.maxItem())
			}
			if s, err := d.String(); err != nil {
				return
			} else if len(s) > d.maxItem() {
				t.Fatalf("String returned %d bytes, above the %d item bound", len(s), d.maxItem())
			}
			if _, err := d.Uint64(); err != nil {
				return
			}
			if _, err := d.Bool(); err != nil {
				return
			}
			if _, err := d.FixedOpaque(8); err != nil {
				return
			}
		}
	})
}

// FuzzXDRRoundTrip checks the encoder/decoder pair agree on what they
// exchanged, with the fuzzer choosing the payloads.
func FuzzXDRRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint64(0), []byte(nil), "")
	f.Add(uint32(1<<31), uint64(1)<<63, []byte{1, 2, 3}, "name")
	f.Fuzz(func(t *testing.T, a uint32, b uint64, op []byte, s string) {
		c := &mbuf.Chain{}
		e := NewEncoder(c)
		e.PutUint32(a)
		e.PutUint64(b)
		e.PutOpaque(op)
		e.PutString(s)
		d := NewDecoder(c)
		if got, err := d.Uint32(); err != nil || got != a {
			t.Fatalf("uint32: %v %v", got, err)
		}
		if got, err := d.Uint64(); err != nil || got != b {
			t.Fatalf("uint64: %v %v", got, err)
		}
		got, err := d.OpaqueCopy()
		if err != nil || string(got) != string(op) {
			t.Fatalf("opaque: %q %v", got, err)
		}
		if got, err := d.String(); err != nil || got != s {
			t.Fatalf("string: %q %v", got, err)
		}
	})
}
