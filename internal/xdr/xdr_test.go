package xdr

import (
	"bytes"
	"testing"
	"testing/quick"

	"renonfs/internal/mbuf"
)

func TestPad(t *testing.T) {
	cases := map[int]int{0: 0, 1: 4, 2: 4, 3: 4, 4: 4, 5: 8, 8: 8, 9: 12}
	for in, want := range cases {
		if got := Pad(in); got != want {
			t.Errorf("Pad(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestScalarRoundTrip(t *testing.T) {
	c := &mbuf.Chain{}
	e := NewEncoder(c)
	e.PutUint32(0xdeadbeef)
	e.PutInt32(-42)
	e.PutUint64(1 << 40)
	e.PutBool(true)
	e.PutBool(false)

	d := NewDecoder(c)
	if v, err := d.Uint32(); err != nil || v != 0xdeadbeef {
		t.Fatalf("Uint32 = %x, %v", v, err)
	}
	if v, err := d.Int32(); err != nil || v != -42 {
		t.Fatalf("Int32 = %d, %v", v, err)
	}
	if v, err := d.Uint64(); err != nil || v != 1<<40 {
		t.Fatalf("Uint64 = %d, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("Bool = %v, %v", v, err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("remaining = %d", d.Remaining())
	}
}

func TestBoolBadDiscriminant(t *testing.T) {
	c := &mbuf.Chain{}
	NewEncoder(c).PutUint32(7)
	if _, err := NewDecoder(c).Bool(); err == nil {
		t.Fatal("expected error for bad bool")
	}
}

func TestOpaqueRoundTrip(t *testing.T) {
	f := func(p []byte) bool {
		c := &mbuf.Chain{}
		e := NewEncoder(c)
		e.PutOpaque(p)
		e.PutUint32(0x1234) // sentinel proves alignment was respected
		if c.Len() != 4+Pad(len(p))+4 {
			return false
		}
		d := NewDecoder(c)
		got, err := d.Opaque()
		if err != nil || !bytes.Equal(got, p) {
			return false
		}
		s, err := d.Uint32()
		return err == nil && s == 0x1234 && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		c := &mbuf.Chain{}
		e := NewEncoder(c)
		e.PutString(s)
		e.PutString("after")
		d := NewDecoder(c)
		g1, err1 := d.String()
		g2, err2 := d.String()
		return err1 == nil && err2 == nil && g1 == s && g2 == "after"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedOpaqueAlignment(t *testing.T) {
	c := &mbuf.Chain{}
	e := NewEncoder(c)
	e.PutFixedOpaque([]byte{1, 2, 3}) // pads to 4
	e.PutUint32(9)
	d := NewDecoder(c)
	p, err := d.FixedOpaque(3)
	if err != nil || len(p) != 3 || p[0] != 1 {
		t.Fatalf("FixedOpaque = %v, %v", p, err)
	}
	if v, err := d.Uint32(); err != nil || v != 9 {
		t.Fatalf("Uint32 after fixed opaque = %d, %v", v, err)
	}
}

func TestOpaqueChainZeroCopy(t *testing.T) {
	mbuf.Stats.Reset()
	payload := &mbuf.Chain{}
	page := make([]byte, 2048)
	for i := range page {
		page[i] = byte(i)
	}
	payload.AppendCluster(page)

	c := &mbuf.Chain{}
	e := NewEncoder(c)
	e.PutOpaqueChain(payload)
	// Only the 4-byte length should have been materialized by copying.
	if copied := mbuf.Stats.CopiedBytes.Load(); copied > 16 {
		t.Fatalf("PutOpaqueChain copied %d bytes", copied)
	}
	d := NewDecoder(c)
	d.MaxItem = 4096
	got, err := d.Opaque()
	if err != nil || len(got) != 2048 {
		t.Fatalf("Opaque = len %d, %v", len(got), err)
	}
	if got[0] != 0 || got[100] != 100 {
		t.Fatal("payload corrupted")
	}
}

func TestGarbageLengthRejected(t *testing.T) {
	c := &mbuf.Chain{}
	NewEncoder(c).PutUint32(0xffffffff)
	d := NewDecoder(c)
	if _, err := d.Opaque(); err == nil {
		t.Fatal("expected error for absurd opaque length")
	}
	c2 := &mbuf.Chain{}
	e := NewEncoder(c2)
	e.PutUint32(100) // claims 100 bytes but supplies none
	if _, err := NewDecoder(c2).Opaque(); err == nil {
		t.Fatal("expected error for truncated opaque")
	}
}

func TestOpaqueCopyRetainable(t *testing.T) {
	c := &mbuf.Chain{}
	e := NewEncoder(c)
	e.PutOpaque([]byte("keepme"))
	e.PutOpaque([]byte("second"))
	d := NewDecoder(c)
	first, err := d.OpaqueCopy()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Opaque(); err != nil {
		t.Fatal(err)
	}
	if string(first) != "keepme" {
		t.Fatalf("retained copy corrupted: %q", first)
	}
}
