// Package xdr implements the subset of the External Data Representation
// (RFC 1014) used by Sun RPC and the NFS version 2 protocol, operating
// directly on mbuf chains via the build/dissect cursors so that no
// intermediate serialization buffer exists — the property the 4.3BSD Reno
// implementation relies on to avoid memory-to-memory copies.
//
// All quantities are big-endian and all items are padded to 4-byte
// alignment, per the XDR standard.
package xdr

import (
	"encoding/binary"
	"errors"
	"fmt"

	"renonfs/internal/mbuf"
)

// ErrBadValue reports a malformed XDR item (e.g. an absurd string length).
var ErrBadValue = errors.New("xdr: bad value")

// Pad returns n rounded up to 4-byte alignment.
func Pad(n int) int { return (n + 3) &^ 3 }

// Encoder writes XDR items onto an mbuf chain. The mbuf Builder is embedded
// by value, so one allocation covers both (and Reset allows reuse).
type Encoder struct {
	b mbuf.Builder
}

// NewEncoder returns an Encoder appending to chain c.
func NewEncoder(c *mbuf.Chain) *Encoder {
	e := &Encoder{}
	e.b.Reset(c)
	return e
}

// Reset re-points the encoder at c for reuse without allocation.
func (e *Encoder) Reset(c *mbuf.Chain) { e.b.Reset(c) }

// Chain returns the chain being appended to.
func (e *Encoder) Chain() *mbuf.Chain { return e.b.Chain() }

// PutUint32 encodes a 32-bit unsigned integer.
func (e *Encoder) PutUint32(v uint32) {
	binary.BigEndian.PutUint32(e.b.Next(4), v)
}

// PutInt32 encodes a 32-bit signed integer.
func (e *Encoder) PutInt32(v int32) { e.PutUint32(uint32(v)) }

// PutUint64 encodes a 64-bit unsigned integer (XDR hyper).
func (e *Encoder) PutUint64(v uint64) {
	binary.BigEndian.PutUint64(e.b.Next(8), v)
}

// PutBool encodes an XDR boolean.
func (e *Encoder) PutBool(v bool) {
	if v {
		e.PutUint32(1)
	} else {
		e.PutUint32(0)
	}
}

// PutFixedOpaque encodes opaque data of known, agreed length (no length
// prefix), padded to 4 bytes.
func (e *Encoder) PutFixedOpaque(p []byte) {
	e.b.WriteBytes(p)
	if pad := Pad(len(p)) - len(p); pad > 0 {
		b := e.b.Next(pad)
		for i := range b {
			b[i] = 0
		}
	}
}

// PutOpaque encodes variable-length opaque data: length prefix, data, pad.
func (e *Encoder) PutOpaque(p []byte) {
	e.PutUint32(uint32(len(p)))
	e.PutFixedOpaque(p)
}

// PutOpaqueChain encodes variable-length opaque data whose payload is
// already in an mbuf chain, grafting the chain on without copying (the way
// the Reno server lends buffer-cache pages into the reply). The chain is
// consumed.
func (e *Encoder) PutOpaqueChain(c *mbuf.Chain) {
	n := c.Len()
	e.PutUint32(uint32(n))
	e.Chain().AppendChain(c)
	if pad := Pad(n) - n; pad > 0 {
		b := e.b.Next(pad)
		for i := range b {
			b[i] = 0
		}
	}
}

// PutString encodes an XDR string.
func (e *Encoder) PutString(s string) {
	e.PutUint32(uint32(len(s)))
	e.PutFixedOpaque([]byte(s))
}

// Decoder reads XDR items from an mbuf chain. The mbuf Dissector is embedded
// by value (one allocation, inline straddle scratch included).
type Decoder struct {
	d mbuf.Dissector
	// MaxItem bounds variable-length items to guard against garbage
	// lengths; zero means the package default (1 MiB).
	MaxItem int
}

const defaultMaxItem = 1 << 20

// NewDecoder returns a Decoder reading from the start of c.
func NewDecoder(c *mbuf.Chain) *Decoder {
	d := &Decoder{}
	d.d.Reset(c)
	return d
}

// Reset re-points the decoder at the start of c for reuse without
// allocation.
func (d *Decoder) Reset(c *mbuf.Chain) { d.d.Reset(c) }

// Remaining returns the number of unread bytes.
func (d *Decoder) Remaining() int { return d.d.Remaining() }

// Uint32 decodes a 32-bit unsigned integer.
func (d *Decoder) Uint32() (uint32, error) {
	p, err := d.d.Next(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(p), nil
}

// Int32 decodes a 32-bit signed integer.
func (d *Decoder) Int32() (int32, error) {
	v, err := d.Uint32()
	return int32(v), err
}

// Uint64 decodes a 64-bit unsigned integer.
func (d *Decoder) Uint64() (uint64, error) {
	p, err := d.d.Next(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(p), nil
}

// Bool decodes an XDR boolean.
func (d *Decoder) Bool() (bool, error) {
	v, err := d.Uint32()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bool discriminant %d", ErrBadValue, v)
	}
}

// FixedOpaque decodes opaque data of known length. The returned slice is
// only valid until the next decode call.
func (d *Decoder) FixedOpaque(n int) ([]byte, error) {
	p, err := d.d.Next(n)
	if err != nil {
		return nil, err
	}
	if pad := Pad(n) - n; pad > 0 {
		if err := d.d.Skip(pad); err != nil {
			return nil, err
		}
	}
	return p, nil
}

func (d *Decoder) maxItem() int {
	if d.MaxItem > 0 {
		return d.MaxItem
	}
	return defaultMaxItem
}

// Opaque decodes variable-length opaque data. The returned slice is only
// valid until the next decode call.
func (d *Decoder) Opaque() ([]byte, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.maxItem() {
		return nil, fmt.Errorf("%w: opaque length %d", ErrBadValue, n)
	}
	return d.FixedOpaque(int(n))
}

// OpaqueCopy decodes variable-length opaque data into a fresh slice the
// caller may retain.
func (d *Decoder) OpaqueCopy() ([]byte, error) {
	p, err := d.Opaque()
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(p))
	copy(out, p)
	return out, nil
}

// OpaqueView decodes variable-length opaque data as a zero-copy view into
// the source chain — the bulk counterpart of Opaque. The returned chain
// shares storage with the message being decoded, so it remains valid exactly
// as long as that chain does; callers that outlive the message must Clone.
// No bytes are copied regardless of payload size or mbuf layout.
func (d *Decoder) OpaqueView() (*mbuf.Chain, error) {
	n, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	if int(n) > d.maxItem() {
		return nil, fmt.Errorf("%w: opaque length %d", ErrBadValue, n)
	}
	c, err := d.d.NextChain(int(n))
	if err != nil {
		return nil, err
	}
	if pad := Pad(int(n)) - int(n); pad > 0 {
		if err := d.d.Skip(pad); err != nil {
			c.Free()
			return nil, err
		}
	}
	return c, nil
}

// String decodes an XDR string.
func (d *Decoder) String() (string, error) {
	p, err := d.Opaque()
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// Skip advances past n raw bytes (already-aligned callers only).
func (d *Decoder) Skip(n int) error { return d.d.Skip(n) }
