package xdr

import "encoding/binary"

// Byte-slice XDR cursors for the shallow dispatch path. The Encoder/Decoder
// above operate on mbuf chains — right for payload-bearing procedures,
// where the chain discipline is what makes zero-copy possible — but a
// header-only request (GETATTR, LOOKUP, the MNT herd) fits entirely in the
// reader's receive buffer, and for those the chain machinery is pure
// overhead: pool traffic, cursor state, a copy into mbufs that the reply
// immediately linearizes back out of. ByteReader and ByteWriter are the
// flat-buffer equivalents: the same wire format (big-endian, 4-byte
// alignment), no allocation, no chain.

// ByteReader reads XDR items from a byte slice. Failure is sticky: after
// the first short or malformed item every subsequent call reports !ok, so
// decode sequences can check once at the end.
type ByteReader struct {
	buf []byte
	off int
	bad bool
}

// ResetBytes points the reader at b.
func (r *ByteReader) ResetBytes(b []byte) { r.buf, r.off, r.bad = b, 0, false }

// Offset returns the cursor position (bytes consumed).
func (r *ByteReader) Offset() int { return r.off }

// Remaining returns the number of unread bytes.
func (r *ByteReader) Remaining() int { return len(r.buf) - r.off }

// OK reports whether every read so far succeeded.
func (r *ByteReader) OK() bool { return !r.bad }

// Uint32 decodes a 32-bit unsigned integer.
func (r *ByteReader) Uint32() uint32 {
	if r.bad || r.off+4 > len(r.buf) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Bool decodes an XDR boolean.
func (r *ByteReader) Bool() bool { return r.Uint32() != 0 }

// FixedOpaque returns a view of n opaque bytes (no length prefix), skipping
// the alignment pad. The view aliases the input buffer.
func (r *ByteReader) FixedOpaque(n int) []byte {
	if r.bad || n < 0 || r.off+Pad(n) > len(r.buf) {
		r.bad = true
		return nil
	}
	v := r.buf[r.off : r.off+n]
	r.off += Pad(n)
	return v
}

// Opaque decodes variable-length opaque data bounded by max, returning a
// view into the input buffer.
func (r *ByteReader) Opaque(max int) []byte {
	n := r.Uint32()
	if r.bad || int(n) > max {
		r.bad = true
		return nil
	}
	return r.FixedOpaque(int(n))
}

// ByteWriter appends XDR items to a byte slice, growing it with append
// semantics. Callers on the fast path hand it a slice with enough spare
// capacity that no growth (and so no allocation) occurs.
type ByteWriter struct {
	buf []byte
}

// ResetBytes points the writer at b; items append after len(b).
func (w *ByteWriter) ResetBytes(b []byte) { w.buf = b }

// Bytes returns everything written (including the initial contents of the
// reset slice).
func (w *ByteWriter) Bytes() []byte { return w.buf }

// Len returns the current output length.
func (w *ByteWriter) Len() int { return len(w.buf) }

// PutUint32 encodes a 32-bit unsigned integer.
func (w *ByteWriter) PutUint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// PutBool encodes an XDR boolean.
func (w *ByteWriter) PutBool(v bool) {
	if v {
		w.PutUint32(1)
	} else {
		w.PutUint32(0)
	}
}

// PutFixedOpaque encodes opaque data of agreed length (no prefix), padded.
func (w *ByteWriter) PutFixedOpaque(p []byte) {
	w.buf = append(w.buf, p...)
	for pad := Pad(len(p)) - len(p); pad > 0; pad-- {
		w.buf = append(w.buf, 0)
	}
}

// PutOpaque encodes variable-length opaque data: length, data, pad.
func (w *ByteWriter) PutOpaque(p []byte) {
	w.PutUint32(uint32(len(p)))
	w.PutFixedOpaque(p)
}

// PutString encodes an XDR string.
func (w *ByteWriter) PutString(s string) {
	w.PutUint32(uint32(len(s)))
	w.buf = append(w.buf, s...)
	for pad := Pad(len(s)) - len(s); pad > 0; pad-- {
		w.buf = append(w.buf, 0)
	}
}
