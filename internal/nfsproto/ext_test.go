package nfsproto

import (
	"testing"
	"testing/quick"

	"renonfs/internal/mbuf"
	"renonfs/internal/xdr"
)

func TestLeaseArgsRoundTrip(t *testing.T) {
	f := func(mode bool, dur, port uint16) bool {
		in := &LeaseArgs{
			File: MakeFH(1, 42, 7), Mode: LeaseRead,
			Duration: uint32(dur), CallbackPort: uint32(port),
		}
		if mode {
			in.Mode = LeaseWrite
		}
		c := &mbuf.Chain{}
		in.Encode(xdr.NewEncoder(c))
		out, err := DecodeLeaseArgs(xdr.NewDecoder(c))
		return err == nil && *out == *in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseResRoundTrip(t *testing.T) {
	attr := &Fattr{Type: TypeReg, Size: 999, FileID: 42, BlockSize: 8192}
	in := &LeaseRes{Status: OK, Duration: 30, Attr: attr}
	c := &mbuf.Chain{}
	in.Encode(xdr.NewEncoder(c))
	out, err := DecodeLeaseRes(xdr.NewDecoder(c))
	if err != nil || out.Status != OK || out.Duration != 30 || *out.Attr != *attr {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
	// TRYLATER carries no body.
	c2 := &mbuf.Chain{}
	(&LeaseRes{Status: ErrTryLater}).Encode(xdr.NewEncoder(c2))
	out2, err := DecodeLeaseRes(xdr.NewDecoder(c2))
	if err != nil || out2.Status != ErrTryLater || out2.Attr != nil {
		t.Fatalf("out2 = %+v, err = %v", out2, err)
	}
}

func TestVacatedArgsRoundTrip(t *testing.T) {
	in := &VacatedArgs{File: MakeFH(9, 8, 7)}
	c := &mbuf.Chain{}
	in.Encode(xdr.NewEncoder(c))
	out, err := DecodeVacatedArgs(xdr.NewDecoder(c))
	if err != nil || out.File != in.File {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
}

func TestReaddirLookResRoundTrip(t *testing.T) {
	in := &ReaddirLookRes{
		Status: OK,
		Entries: []LookEntry{
			{Entry: DirEntry{FileID: 3, Name: "a.c", Cookie: 1},
				File: MakeFH(1, 3, 1), Attr: Fattr{Type: TypeReg, Size: 10, BlockSize: 8192}},
			{Entry: DirEntry{FileID: 4, Name: "subdir", Cookie: 2},
				File: MakeFH(1, 4, 1), Attr: Fattr{Type: TypeDir, BlockSize: 8192}},
		},
		EOF: true,
	}
	c := &mbuf.Chain{}
	in.Encode(xdr.NewEncoder(c))
	out, err := DecodeReaddirLookRes(xdr.NewDecoder(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 2 || !out.EOF {
		t.Fatalf("out = %+v", out)
	}
	for i := range in.Entries {
		if out.Entries[i] != in.Entries[i] {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, out.Entries[i], in.Entries[i])
		}
	}
}

func TestMountArgsResRoundTrip(t *testing.T) {
	in := &MntArgs{DirPath: "/export/home"}
	c := &mbuf.Chain{}
	in.Encode(xdr.NewEncoder(c))
	out, err := DecodeMntArgs(xdr.NewDecoder(c))
	if err != nil || out.DirPath != in.DirPath {
		t.Fatalf("out = %+v, err = %v", out, err)
	}

	res := &MntRes{Status: 0, File: MakeFH(1, 2, 3)}
	c2 := &mbuf.Chain{}
	res.Encode(xdr.NewEncoder(c2))
	rout, err := DecodeMntRes(xdr.NewDecoder(c2))
	if err != nil || rout.Status != 0 || rout.File != res.File {
		t.Fatalf("rout = %+v, err = %v", rout, err)
	}
	// Errno result has no handle.
	c3 := &mbuf.Chain{}
	(&MntRes{Status: 13}).Encode(xdr.NewEncoder(c3))
	rout3, err := DecodeMntRes(xdr.NewDecoder(c3))
	if err != nil || rout3.Status != 13 {
		t.Fatalf("rout3 = %+v, err = %v", rout3, err)
	}
}

func TestMountListsRoundTrip(t *testing.T) {
	c := &mbuf.Chain{}
	e := xdr.NewEncoder(c)
	in := []MountEntry{{Host: "udp:0:1001", Dir: "/"}, {Host: "udp:0:1002", Dir: "/src"}}
	EncodeMountList(e, in)
	out, err := DecodeMountList(xdr.NewDecoder(c))
	if err != nil || len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("out = %+v, err = %v", out, err)
	}

	c2 := &mbuf.Chain{}
	e2 := xdr.NewEncoder(c2)
	exp := []ExportEntry{{Dir: "/", Groups: nil}, {Dir: "/src", Groups: []string{"eng", "ops"}}}
	EncodeExportList(e2, exp)
	eout, err := DecodeExportList(xdr.NewDecoder(c2))
	if err != nil || len(eout) != 2 {
		t.Fatalf("eout = %+v, err = %v", eout, err)
	}
	if eout[1].Dir != "/src" || len(eout[1].Groups) != 2 || eout[1].Groups[1] != "ops" {
		t.Fatalf("eout[1] = %+v", eout[1])
	}
}

func TestExtProcNames(t *testing.T) {
	if ProcName(ProcLease) != "lease" || ProcName(ProcReaddirLook) != "readdirlook" {
		t.Fatal("extension proc names wrong")
	}
	if ErrTryLater.String() != "NFSERR_TRYLATER" {
		t.Fatalf("trylater = %q", ErrTryLater.String())
	}
}
