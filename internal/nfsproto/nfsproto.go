// Package nfsproto implements the NFS version 2 protocol (RFC 1094): file
// handles, attributes, and the argument/result bodies of all procedures,
// marshalled directly in mbuf chains per the 4.3BSD Reno approach (no
// intermediate XDR buffers).
package nfsproto

import (
	"encoding/binary"
	"errors"
	"fmt"

	"renonfs/internal/xdr"
)

// Protocol constants (RFC 1094 §2.1, §2.3).
const (
	Program = 100003 // RPC program number
	Version = 2      // protocol version

	MaxData    = 8192 // largest READ/WRITE transfer
	FHSize     = 32   // file handle size, bytes
	MaxNameLen = 255  // largest filename component
	MaxPathLen = 1024 // largest pathname
	CookieSize = 4    // readdir cookie size
)

// Procedure numbers (RFC 1094 §2.2).
const (
	ProcNull       = 0
	ProcGetattr    = 1
	ProcSetattr    = 2
	ProcRoot       = 3 // obsolete
	ProcLookup     = 4
	ProcReadlink   = 5
	ProcRead       = 6
	ProcWritecache = 7 // unused
	ProcWrite      = 8
	ProcCreate     = 9
	ProcRemove     = 10
	ProcRename     = 11
	ProcLink       = 12
	ProcSymlink    = 13
	ProcMkdir      = 14
	ProcRmdir      = 15
	ProcReaddir    = 16
	ProcStatfs     = 17

	NumProcs = 18
)

// ProcName returns the conventional name of an NFS procedure (including
// the NQNFS-style extensions 18-20).
func ProcName(proc uint32) string {
	names := [...]string{
		"null", "getattr", "setattr", "root", "lookup", "readlink",
		"read", "writecache", "write", "create", "remove", "rename",
		"link", "symlink", "mkdir", "rmdir", "readdir", "statfs",
		"lease", "vacated", "readdirlook",
	}
	if proc < uint32(len(names)) {
		return names[proc]
	}
	return fmt.Sprintf("proc%d", proc)
}

// Status codes (RFC 1094 §2.3.1, "stat").
type Status uint32

const (
	OK             Status = 0
	ErrPerm        Status = 1
	ErrNoEnt       Status = 2
	ErrIO          Status = 5
	ErrNXIO        Status = 6
	ErrAcces       Status = 13
	ErrExist       Status = 17
	ErrNoDev       Status = 19
	ErrNotDir      Status = 20
	ErrIsDir       Status = 21
	ErrFBig        Status = 27
	ErrNoSpc       Status = 28
	ErrROFS        Status = 30
	ErrNameTooLong Status = 63
	ErrNotEmpty    Status = 66
	ErrDQuot       Status = 69
	ErrStale       Status = 70
	ErrWFlush      Status = 99
)

// Error converts a non-OK status to a Go error; OK yields nil.
func (s Status) Error() error {
	if s == OK {
		return nil
	}
	return &StatusError{s}
}

// StatusError wraps an NFS error status as a Go error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return fmt.Sprintf("nfs: %s", e.Status) }

// String returns the conventional NFSERR name.
func (s Status) String() string {
	switch s {
	case OK:
		return "NFS_OK"
	case ErrPerm:
		return "NFSERR_PERM"
	case ErrNoEnt:
		return "NFSERR_NOENT"
	case ErrIO:
		return "NFSERR_IO"
	case ErrNXIO:
		return "NFSERR_NXIO"
	case ErrAcces:
		return "NFSERR_ACCES"
	case ErrExist:
		return "NFSERR_EXIST"
	case ErrNoDev:
		return "NFSERR_NODEV"
	case ErrNotDir:
		return "NFSERR_NOTDIR"
	case ErrIsDir:
		return "NFSERR_ISDIR"
	case ErrFBig:
		return "NFSERR_FBIG"
	case ErrNoSpc:
		return "NFSERR_NOSPC"
	case ErrROFS:
		return "NFSERR_ROFS"
	case ErrNameTooLong:
		return "NFSERR_NAMETOOLONG"
	case ErrNotEmpty:
		return "NFSERR_NOTEMPTY"
	case ErrDQuot:
		return "NFSERR_DQUOT"
	case ErrStale:
		return "NFSERR_STALE"
	case ErrWFlush:
		return "NFSERR_WFLUSH"
	case ErrTryLater:
		return "NFSERR_TRYLATER"
	default:
		return fmt.Sprintf("NFSERR_%d", uint32(s))
	}
}

// FileType is the ftype enumeration.
type FileType uint32

const (
	TypeNone FileType = 0
	TypeReg  FileType = 1
	TypeDir  FileType = 2
	TypeBlk  FileType = 3
	TypeChr  FileType = 4
	TypeLnk  FileType = 5
)

// ErrBadProto reports a malformed protocol element.
var ErrBadProto = errors.New("nfsproto: malformed message")

// FH is an NFS file handle: 32 opaque bytes chosen by the server.
type FH [FHSize]byte

// MakeFH packs a filesystem id, file id and generation number into a handle
// the way a BSD server derives handles from (fsid, inode, generation).
func MakeFH(fsid, fileid, gen uint32) FH {
	var fh FH
	binary.BigEndian.PutUint32(fh[0:], fsid)
	binary.BigEndian.PutUint32(fh[4:], fileid)
	binary.BigEndian.PutUint32(fh[8:], gen)
	return fh
}

// Parts unpacks the (fsid, fileid, generation) triple from a handle.
func (fh FH) Parts() (fsid, fileid, gen uint32) {
	return binary.BigEndian.Uint32(fh[0:]),
		binary.BigEndian.Uint32(fh[4:]),
		binary.BigEndian.Uint32(fh[8:])
}

func (fh FH) String() string {
	fsid, fileid, gen := fh.Parts()
	return fmt.Sprintf("fh(%d:%d.%d)", fsid, fileid, gen)
}

func putFH(e *xdr.Encoder, fh FH) { e.PutFixedOpaque(fh[:]) }

func getFH(d *xdr.Decoder) (FH, error) {
	var fh FH
	p, err := d.FixedOpaque(FHSize)
	if err != nil {
		return fh, err
	}
	copy(fh[:], p)
	return fh, nil
}

// Time is the NFS timeval (seconds and microseconds since the epoch).
type Time struct {
	Sec  uint32
	USec uint32
}

// Less reports whether t is strictly earlier than u.
func (t Time) Less(u Time) bool {
	return t.Sec < u.Sec || (t.Sec == u.Sec && t.USec < u.USec)
}

func putTime(e *xdr.Encoder, t Time) {
	e.PutUint32(t.Sec)
	e.PutUint32(t.USec)
}

func getTime(d *xdr.Decoder) (Time, error) {
	var t Time
	var err error
	if t.Sec, err = d.Uint32(); err != nil {
		return t, err
	}
	t.USec, err = d.Uint32()
	return t, err
}

// Fattr is the fattr structure: everything GETATTR returns.
type Fattr struct {
	Type      FileType
	Mode      uint32
	Nlink     uint32
	UID       uint32
	GID       uint32
	Size      uint32
	BlockSize uint32
	Rdev      uint32
	Blocks    uint32
	FSID      uint32
	FileID    uint32
	Atime     Time
	Mtime     Time
	Ctime     Time
}

// Encode marshals the attributes.
func (f *Fattr) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(f.Type))
	e.PutUint32(f.Mode)
	e.PutUint32(f.Nlink)
	e.PutUint32(f.UID)
	e.PutUint32(f.GID)
	e.PutUint32(f.Size)
	e.PutUint32(f.BlockSize)
	e.PutUint32(f.Rdev)
	e.PutUint32(f.Blocks)
	e.PutUint32(f.FSID)
	e.PutUint32(f.FileID)
	putTime(e, f.Atime)
	putTime(e, f.Mtime)
	putTime(e, f.Ctime)
}

// DecodeFattr unmarshals attributes.
func DecodeFattr(d *xdr.Decoder) (*Fattr, error) {
	f := &Fattr{}
	fields := []*uint32{
		(*uint32)(&f.Type), &f.Mode, &f.Nlink, &f.UID, &f.GID,
		&f.Size, &f.BlockSize, &f.Rdev, &f.Blocks, &f.FSID, &f.FileID,
	}
	for _, p := range fields {
		v, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		*p = v
	}
	var err error
	if f.Atime, err = getTime(d); err != nil {
		return nil, err
	}
	if f.Mtime, err = getTime(d); err != nil {
		return nil, err
	}
	if f.Ctime, err = getTime(d); err != nil {
		return nil, err
	}
	return f, nil
}

// NoValue is the sattr "do not set" sentinel.
const NoValue = 0xffffffff

// Sattr carries settable attributes; NoValue fields are left unchanged.
type Sattr struct {
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  uint32
	Atime Time
	Mtime Time
}

// NewSattr returns an Sattr with every field set to NoValue.
func NewSattr() Sattr {
	nv := Time{NoValue, NoValue}
	return Sattr{Mode: NoValue, UID: NoValue, GID: NoValue, Size: NoValue, Atime: nv, Mtime: nv}
}

// Encode marshals the settable attributes.
func (s *Sattr) Encode(e *xdr.Encoder) {
	e.PutUint32(s.Mode)
	e.PutUint32(s.UID)
	e.PutUint32(s.GID)
	e.PutUint32(s.Size)
	putTime(e, s.Atime)
	putTime(e, s.Mtime)
}

// DecodeSattr unmarshals settable attributes.
func DecodeSattr(d *xdr.Decoder) (Sattr, error) {
	var s Sattr
	var err error
	if s.Mode, err = d.Uint32(); err != nil {
		return s, err
	}
	if s.UID, err = d.Uint32(); err != nil {
		return s, err
	}
	if s.GID, err = d.Uint32(); err != nil {
		return s, err
	}
	if s.Size, err = d.Uint32(); err != nil {
		return s, err
	}
	if s.Atime, err = getTime(d); err != nil {
		return s, err
	}
	s.Mtime, err = getTime(d)
	return s, err
}

func getName(d *xdr.Decoder) (string, error) {
	s, err := d.String()
	if err != nil {
		return "", err
	}
	if len(s) > MaxNameLen {
		return "", fmt.Errorf("%w: name %d bytes", ErrBadProto, len(s))
	}
	return s, nil
}
