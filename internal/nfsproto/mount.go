package nfsproto

import (
	"fmt"

	"renonfs/internal/xdr"
)

// The MOUNT protocol (RFC 1094 Appendix A): a separate RPC program through
// which clients obtain the file handle of an exported directory's root.
// NFS itself cannot hand out the first handle — LOOKUP needs a directory
// handle to start from — so every real mount begins here.
const (
	MountProgram = 100005
	MountVersion = 1

	MountProcNull    = 0
	MountProcMnt     = 1
	MountProcDump    = 2
	MountProcUmnt    = 3
	MountProcUmntAll = 4
	MountProcExport  = 5
)

// MountMaxPath bounds directory path arguments.
const MountMaxPath = 1024

// MntArgs is the MNT/UMNT argument: the export path.
type MntArgs struct{ DirPath string }

// Encode marshals the argument.
func (a *MntArgs) Encode(e *xdr.Encoder) { e.PutString(a.DirPath) }

// DecodeMntArgs unmarshals the path argument.
func DecodeMntArgs(d *xdr.Decoder) (*MntArgs, error) {
	s, err := d.String()
	if err != nil {
		return nil, err
	}
	if len(s) > MountMaxPath {
		return nil, fmt.Errorf("%w: mount path %d bytes", ErrBadProto, len(s))
	}
	return &MntArgs{DirPath: s}, nil
}

// MntRes is the MNT result: a unix error status, then the handle.
type MntRes struct {
	Status uint32 // 0 or a unix errno (the mount protocol predates stat)
	File   FH
}

// Encode marshals the result.
func (r *MntRes) Encode(e *xdr.Encoder) {
	e.PutUint32(r.Status)
	if r.Status == 0 {
		e.PutFixedOpaque(r.File[:])
	}
}

// DecodeMntRes unmarshals the MNT result.
func DecodeMntRes(d *xdr.Decoder) (*MntRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &MntRes{Status: s}
	if s != 0 {
		return r, nil
	}
	p, err := d.FixedOpaque(FHSize)
	if err != nil {
		return nil, err
	}
	copy(r.File[:], p)
	return r, nil
}

// MountEntry is one row of the DUMP result (who has what mounted).
type MountEntry struct {
	Host string
	Dir  string
}

// EncodeMountList marshals the DUMP result's entry list.
func EncodeMountList(e *xdr.Encoder, entries []MountEntry) {
	for _, ent := range entries {
		e.PutBool(true)
		e.PutString(ent.Host)
		e.PutString(ent.Dir)
	}
	e.PutBool(false)
}

// DecodeMountList unmarshals the DUMP result.
func DecodeMountList(d *xdr.Decoder) ([]MountEntry, error) {
	var out []MountEntry
	for {
		more, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if !more {
			return out, nil
		}
		var ent MountEntry
		if ent.Host, err = d.String(); err != nil {
			return nil, err
		}
		if ent.Dir, err = d.String(); err != nil {
			return nil, err
		}
		out = append(out, ent)
		if len(out) > 4096 {
			return nil, ErrBadProto
		}
	}
}

// ExportEntry is one row of the EXPORT result: a path and the groups
// allowed to mount it (empty means everyone).
type ExportEntry struct {
	Dir    string
	Groups []string
}

// EncodeExportList marshals the EXPORT result.
func EncodeExportList(e *xdr.Encoder, entries []ExportEntry) {
	for _, ent := range entries {
		e.PutBool(true)
		e.PutString(ent.Dir)
		for _, g := range ent.Groups {
			e.PutBool(true)
			e.PutString(g)
		}
		e.PutBool(false)
	}
	e.PutBool(false)
}

// DecodeExportList unmarshals the EXPORT result.
func DecodeExportList(d *xdr.Decoder) ([]ExportEntry, error) {
	var out []ExportEntry
	for {
		more, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if !more {
			return out, nil
		}
		var ent ExportEntry
		if ent.Dir, err = d.String(); err != nil {
			return nil, err
		}
		for {
			g, err := d.Bool()
			if err != nil {
				return nil, err
			}
			if !g {
				break
			}
			grp, err := d.String()
			if err != nil {
				return nil, err
			}
			ent.Groups = append(ent.Groups, grp)
		}
		out = append(out, ent)
		if len(out) > 1024 {
			return nil, ErrBadProto
		}
	}
}
