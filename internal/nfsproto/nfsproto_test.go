package nfsproto

import (
	"bytes"
	"testing"
	"testing/quick"

	"renonfs/internal/mbuf"
	"renonfs/internal/xdr"
)

func enc() (*mbuf.Chain, *xdr.Encoder) {
	c := &mbuf.Chain{}
	return c, xdr.NewEncoder(c)
}

func TestFHParts(t *testing.T) {
	fh := MakeFH(3, 1234, 7)
	fsid, fileid, gen := fh.Parts()
	if fsid != 3 || fileid != 1234 || gen != 7 {
		t.Fatalf("Parts = %d,%d,%d", fsid, fileid, gen)
	}
}

func TestStatusErrors(t *testing.T) {
	if OK.Error() != nil {
		t.Fatal("OK should map to nil error")
	}
	err := ErrStale.Error()
	if err == nil {
		t.Fatal("ErrStale should map to an error")
	}
	se, ok := err.(*StatusError)
	if !ok || se.Status != ErrStale {
		t.Fatalf("err = %#v", err)
	}
	if ErrNoEnt.String() != "NFSERR_NOENT" {
		t.Fatalf("String = %q", ErrNoEnt.String())
	}
}

func TestTimeLess(t *testing.T) {
	a := Time{10, 500}
	if !a.Less(Time{11, 0}) || !a.Less(Time{10, 501}) {
		t.Fatal("Less failed on later times")
	}
	if a.Less(a) || a.Less(Time{9, 999999}) {
		t.Fatal("Less failed on earlier/equal times")
	}
}

func TestFattrRoundTrip(t *testing.T) {
	f := func(typ, mode, nlink, uid, gid, size, fsid, fileid, asec, msec uint32) bool {
		in := &Fattr{
			Type: FileType(typ % 6), Mode: mode, Nlink: nlink, UID: uid, GID: gid,
			Size: size, BlockSize: 8192, Blocks: (size + 8191) / 8192,
			FSID: fsid, FileID: fileid,
			Atime: Time{asec, 1}, Mtime: Time{msec, 2}, Ctime: Time{msec, 3},
		}
		c, e := enc()
		in.Encode(e)
		out, err := DecodeFattr(xdr.NewDecoder(c))
		return err == nil && *out == *in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSattrRoundTrip(t *testing.T) {
	in := NewSattr()
	in.Size = 0 // truncate
	c, e := enc()
	in.Encode(e)
	out, err := DecodeSattr(xdr.NewDecoder(c))
	if err != nil || out != in {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
	if out.Mode != NoValue || out.Size != 0 {
		t.Fatal("NoValue sentinel lost")
	}
}

func TestDiropArgsRoundTrip(t *testing.T) {
	in := &DiropArgs{Dir: MakeFH(1, 2, 3), Name: "Makefile"}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeDiropArgs(xdr.NewDecoder(c))
	if err != nil || out.Dir != in.Dir || out.Name != in.Name {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
}

func TestDiropArgsNameTooLong(t *testing.T) {
	long := string(bytes.Repeat([]byte{'a'}, MaxNameLen+1))
	in := &DiropArgs{Dir: MakeFH(1, 2, 3), Name: long}
	c, e := enc()
	in.Encode(e)
	if _, err := DecodeDiropArgs(xdr.NewDecoder(c)); err == nil {
		t.Fatal("overlong name accepted")
	}
}

func TestReadArgsRoundTripAndBound(t *testing.T) {
	in := &ReadArgs{File: MakeFH(1, 9, 0), Offset: 8192, Count: 8192}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeReadArgs(xdr.NewDecoder(c))
	if err != nil || *out != *in {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
	bad := &ReadArgs{File: MakeFH(1, 9, 0), Count: MaxData + 1}
	c2, e2 := enc()
	bad.Encode(e2)
	if _, err := DecodeReadArgs(xdr.NewDecoder(c2)); err == nil {
		t.Fatal("oversized read count accepted")
	}
}

func TestWriteArgsRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte{0x5a}, 4096)
	in := &WriteArgs{File: MakeFH(2, 3, 4), Offset: 16384, Data: mbuf.FromBytes(payload)}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeWriteArgs(xdr.NewDecoder(c))
	if err != nil {
		t.Fatal(err)
	}
	if out.File != in.File || out.Offset != 16384 {
		t.Fatalf("header mismatch: %+v", out)
	}
	if !bytes.Equal(out.Data.Bytes(), payload) {
		t.Fatal("payload mismatch")
	}
}

func TestCreateArgsRoundTrip(t *testing.T) {
	attr := NewSattr()
	attr.Mode = 0644
	in := &CreateArgs{Where: DiropArgs{Dir: MakeFH(1, 1, 1), Name: "new.c"}, Attr: attr}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeCreateArgs(xdr.NewDecoder(c))
	if err != nil || out.Where.Name != "new.c" || out.Attr.Mode != 0644 {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
}

func TestRenameLinkSymlinkRoundTrip(t *testing.T) {
	r := &RenameArgs{
		From: DiropArgs{Dir: MakeFH(1, 1, 0), Name: "a"},
		To:   DiropArgs{Dir: MakeFH(1, 2, 0), Name: "b"},
	}
	c, e := enc()
	r.Encode(e)
	gr, err := DecodeRenameArgs(xdr.NewDecoder(c))
	if err != nil || gr.From.Name != "a" || gr.To.Name != "b" {
		t.Fatalf("rename out = %+v, err = %v", gr, err)
	}

	l := &LinkArgs{From: MakeFH(1, 5, 0), To: DiropArgs{Dir: MakeFH(1, 2, 0), Name: "ln"}}
	c2, e2 := enc()
	l.Encode(e2)
	gl, err := DecodeLinkArgs(xdr.NewDecoder(c2))
	if err != nil || gl.From != l.From || gl.To.Name != "ln" {
		t.Fatalf("link out = %+v, err = %v", gl, err)
	}

	s := &SymlinkArgs{From: DiropArgs{Dir: MakeFH(1, 2, 0), Name: "sl"}, To: "/target/path", Attr: NewSattr()}
	c3, e3 := enc()
	s.Encode(e3)
	gs, err := DecodeSymlinkArgs(xdr.NewDecoder(c3))
	if err != nil || gs.To != "/target/path" || gs.From.Name != "sl" {
		t.Fatalf("symlink out = %+v, err = %v", gs, err)
	}
}

func TestAttrResRoundTrip(t *testing.T) {
	attr := &Fattr{Type: TypeReg, Size: 100, FileID: 42, BlockSize: 8192}
	in := &AttrRes{Status: OK, Attr: attr}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeAttrRes(xdr.NewDecoder(c))
	if err != nil || out.Status != OK || *out.Attr != *attr {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
	// Error result carries no attributes.
	c2, e2 := enc()
	(&AttrRes{Status: ErrStale}).Encode(e2)
	out2, err := DecodeAttrRes(xdr.NewDecoder(c2))
	if err != nil || out2.Status != ErrStale || out2.Attr != nil {
		t.Fatalf("out2 = %+v, err = %v", out2, err)
	}
}

func TestDiropResRoundTrip(t *testing.T) {
	attr := &Fattr{Type: TypeDir, FileID: 7, BlockSize: 8192}
	in := &DiropRes{Status: OK, File: MakeFH(1, 7, 0), Attr: attr}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeDiropRes(xdr.NewDecoder(c))
	if err != nil || out.File != in.File || out.Attr.FileID != 7 {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
}

func TestReadResRoundTrip(t *testing.T) {
	data := bytes.Repeat([]byte{9}, MaxData)
	in := &ReadRes{Status: OK, Attr: &Fattr{Type: TypeReg, Size: MaxData}, Data: mbuf.FromBytes(data)}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeReadRes(xdr.NewDecoder(c))
	if err != nil {
		t.Fatal(err)
	}
	if out.Status != OK || !bytes.Equal(out.Data.Bytes(), data) {
		t.Fatal("read result mismatch")
	}
}

func TestReaddirResRoundTrip(t *testing.T) {
	in := &ReaddirRes{
		Status: OK,
		Entries: []DirEntry{
			{FileID: 2, Name: ".", Cookie: 1},
			{FileID: 1, Name: "..", Cookie: 2},
			{FileID: 10, Name: "file-with-a-longer-name.c", Cookie: 3},
		},
		EOF: true,
	}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeReaddirRes(xdr.NewDecoder(c))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 3 || !out.EOF {
		t.Fatalf("out = %+v", out)
	}
	for i := range in.Entries {
		if out.Entries[i] != in.Entries[i] {
			t.Fatalf("entry %d = %+v, want %+v", i, out.Entries[i], in.Entries[i])
		}
	}
}

func TestStatfsResRoundTrip(t *testing.T) {
	in := &StatfsRes{Status: OK, TSize: 8192, BSize: 8192, Blocks: 10000, BFree: 5000, BAvail: 4500}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeStatfsRes(xdr.NewDecoder(c))
	if err != nil || *out != *in {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
}

func TestReadlinkResRoundTrip(t *testing.T) {
	in := &ReadlinkRes{Status: OK, Path: "/usr/share/misc"}
	c, e := enc()
	in.Encode(e)
	out, err := DecodeReadlinkRes(xdr.NewDecoder(c))
	if err != nil || out.Path != in.Path {
		t.Fatalf("out = %+v, err = %v", out, err)
	}
}

func TestProcName(t *testing.T) {
	if ProcName(ProcLookup) != "lookup" || ProcName(ProcWrite) != "write" {
		t.Fatal("wrong proc names")
	}
	if ProcName(99) != "proc99" {
		t.Fatalf("ProcName(99) = %q", ProcName(99))
	}
}
