package nfsproto

import "renonfs/internal/xdr"

// Protocol extensions beyond RFC 1094, implementing two proposals from the
// paper's Future Directions section:
//
//   - LEASE / VACATED (procedures 18-19): short-duration cache leases in
//     the style Macklem later shipped as NQNFS — the "mechanism for doing
//     a delayed write without push on close policy safely" the paper asks
//     for. Leases are soft state: a crashed server simply waits one lease
//     period before granting again, preserving the trivial-crash-recovery
//     property of statelessness.
//
//   - READDIRLOOK (procedure 20): "a way of doing many name lookups per
//     RPC, possibly by adding a readdir_and_lookup_files RPC to the
//     protocol" — READDIR that also returns each entry's file handle and
//     attributes (what NFSv3 later called READDIRPLUS).
//
// Servers that do not implement the extensions return PROC_UNAVAIL and
// clients fall back to the standard procedures.
const (
	ProcLease       = 18
	ProcVacated     = 19
	ProcReaddirLook = 20

	// NumProcsExt is the procedure table size with extensions.
	NumProcsExt = 21
)

// ErrTryLater is the extension status telling a client its lease request
// conflicts with an outstanding lease that is being vacated; retry
// shortly (NQNFS's NQNFS_TRYLATER).
const ErrTryLater Status = 101

// Lease modes.
const (
	LeaseRead  = 0
	LeaseWrite = 1
)

// LeaseArgs requests or renews a cache lease on a file.
type LeaseArgs struct {
	File FH
	Mode uint32
	// Duration is the requested lease length in seconds.
	Duration uint32
	// CallbackPort is where eviction notices reach this client.
	CallbackPort uint32
}

// Encode marshals the arguments.
func (a *LeaseArgs) Encode(e *xdr.Encoder) {
	putFH(e, a.File)
	e.PutUint32(a.Mode)
	e.PutUint32(a.Duration)
	e.PutUint32(a.CallbackPort)
}

// DecodeLeaseArgs unmarshals lease arguments.
func DecodeLeaseArgs(d *xdr.Decoder) (*LeaseArgs, error) {
	a := &LeaseArgs{}
	var err error
	if a.File, err = getFH(d); err != nil {
		return nil, err
	}
	if a.Mode, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Duration, err = d.Uint32(); err != nil {
		return nil, err
	}
	a.CallbackPort, err = d.Uint32()
	return a, err
}

// LeaseRes is the lease grant (or try-later refusal). On success the
// server also returns current attributes so the client can validate its
// cache at grant time.
type LeaseRes struct {
	Status   Status
	Duration uint32 // granted seconds
	Attr     *Fattr
}

// Encode marshals the result.
func (r *LeaseRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status == OK {
		e.PutUint32(r.Duration)
		r.Attr.Encode(e)
	}
}

// DecodeLeaseRes unmarshals the lease result.
func DecodeLeaseRes(d *xdr.Decoder) (*LeaseRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &LeaseRes{Status: Status(s)}
	if r.Status != OK {
		return r, nil
	}
	if r.Duration, err = d.Uint32(); err != nil {
		return nil, err
	}
	r.Attr, err = DecodeFattr(d)
	return r, err
}

// VacatedArgs tells the server the client has flushed and released the
// leased file after an eviction notice.
type VacatedArgs struct{ File FH }

// Encode marshals the arguments.
func (a *VacatedArgs) Encode(e *xdr.Encoder) { putFH(e, a.File) }

// DecodeVacatedArgs unmarshals vacated arguments.
func DecodeVacatedArgs(d *xdr.Decoder) (*VacatedArgs, error) {
	fh, err := getFH(d)
	return &VacatedArgs{File: fh}, err
}

// EvictionMagic tags the server's one-way eviction datagram to a client's
// callback port.
const EvictionMagic = 0x4e514576 // "NQEv"

// --- Lease piggybacking ----------------------------------------------------
//
// An explicit LEASE RPC per file would cost exactly the round trip the
// protocol exists to save, so leases also ride existing calls as trailing
// XDR extension blocks. A client that wants a lease appends a LeaseHint
// after the normal arguments of GETATTR/LOOKUP/WRITE/CREATE; a server that
// grants appends a LeasePiggy after a successful result. Either side not
// speaking the extension just ignores the trailing bytes — every decoder
// reads exactly the fields it knows and neither side insists the buffer be
// fully consumed — so the blocks are invisible to old peers. The magic word
// guards against a coincidental trailer: a block without it is not a hint.

// LeasePiggyMagic tags a piggybacked lease hint or grant.
const LeasePiggyMagic = 0x4e514c50 // "NQLP"

// LeaseHint is the call-side piggyback: "if this file is uncontended, give
// me a lease with the reply". It never evicts anyone — a conflicting hint
// is simply not granted and the client falls back to the explicit LEASE
// path (which drives eviction) or to plain consistency.
type LeaseHint struct {
	Mode         uint32
	Duration     uint32 // requested seconds
	CallbackPort uint32
}

// Encode appends the hint after the normal call arguments.
func (h *LeaseHint) Encode(e *xdr.Encoder) {
	e.PutUint32(LeasePiggyMagic)
	e.PutUint32(h.Mode)
	e.PutUint32(h.Duration)
	e.PutUint32(h.CallbackPort)
}

// DecodeLeaseHint reads a trailing hint if one is present. (nil, nil) means
// no hint; decode errors in a present-looking block are swallowed the same
// way — a malformed trailer from an unknown peer is ignored, not fatal.
func DecodeLeaseHint(d *xdr.Decoder) *LeaseHint {
	if d.Remaining() < 16 {
		return nil
	}
	m, err := d.Uint32()
	if err != nil || m != LeasePiggyMagic {
		return nil
	}
	h := &LeaseHint{}
	if h.Mode, err = d.Uint32(); err != nil {
		return nil
	}
	if h.Duration, err = d.Uint32(); err != nil {
		return nil
	}
	if h.CallbackPort, err = d.Uint32(); err != nil {
		return nil
	}
	return h
}

// DecodeLeaseHintBytes is the flat-buffer twin for the shallow dispatch
// path. ok=false means no hint (absence is not a decode failure, so the
// reader's sticky error state is left untouched).
func DecodeLeaseHintBytes(r *xdr.ByteReader) (LeaseHint, bool) {
	var h LeaseHint
	if r.Remaining() < 16 {
		return h, false
	}
	if r.Uint32() != LeasePiggyMagic {
		return h, false
	}
	h.Mode = r.Uint32()
	h.Duration = r.Uint32()
	h.CallbackPort = r.Uint32()
	return h, r.OK()
}

// LeasePiggy is the reply-side piggyback: the lease the server granted in
// response to a LeaseHint. Mode may exceed the hint (a write-lease holder
// hinting for read is told it still holds write).
type LeasePiggy struct {
	Mode     uint32
	Duration uint32 // granted seconds
}

// Encode appends the grant after a successful result.
func (g *LeasePiggy) Encode(e *xdr.Encoder) {
	e.PutUint32(LeasePiggyMagic)
	e.PutUint32(g.Mode)
	e.PutUint32(g.Duration)
}

// EncodeBytes is the flat-buffer twin of Encode.
func (g *LeasePiggy) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(LeasePiggyMagic)
	w.PutUint32(g.Mode)
	w.PutUint32(g.Duration)
}

// DecodeLeasePiggy reads a trailing grant if one is present; nil means the
// server granted nothing (or does not speak the extension).
func DecodeLeasePiggy(d *xdr.Decoder) *LeasePiggy {
	if d.Remaining() < 12 {
		return nil
	}
	m, err := d.Uint32()
	if err != nil || m != LeasePiggyMagic {
		return nil
	}
	g := &LeasePiggy{}
	if g.Mode, err = d.Uint32(); err != nil {
		return nil
	}
	if g.Duration, err = d.Uint32(); err != nil {
		return nil
	}
	return g
}

// LookEntry is one READDIRLOOK entry: a directory entry plus the handle
// and attributes a separate LOOKUP would have returned.
type LookEntry struct {
	Entry DirEntry
	File  FH
	Attr  Fattr
}

// ReaddirLookRes is the READDIRLOOK result.
type ReaddirLookRes struct {
	Status  Status
	Entries []LookEntry
	EOF     bool
}

// Encode marshals the result.
func (r *ReaddirLookRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status != OK {
		return
	}
	for i := range r.Entries {
		e.PutBool(true)
		ent := &r.Entries[i]
		e.PutUint32(ent.Entry.FileID)
		e.PutString(ent.Entry.Name)
		e.PutUint32(ent.Entry.Cookie)
		putFH(e, ent.File)
		ent.Attr.Encode(e)
	}
	e.PutBool(false)
	e.PutBool(r.EOF)
}

// DecodeReaddirLookRes unmarshals the READDIRLOOK result.
func DecodeReaddirLookRes(d *xdr.Decoder) (*ReaddirLookRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &ReaddirLookRes{Status: Status(s)}
	if r.Status != OK {
		return r, nil
	}
	for {
		more, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		var ent LookEntry
		if ent.Entry.FileID, err = d.Uint32(); err != nil {
			return nil, err
		}
		if ent.Entry.Name, err = getName(d); err != nil {
			return nil, err
		}
		if ent.Entry.Cookie, err = d.Uint32(); err != nil {
			return nil, err
		}
		if ent.File, err = getFH(d); err != nil {
			return nil, err
		}
		attr, err := DecodeFattr(d)
		if err != nil {
			return nil, err
		}
		ent.Attr = *attr
		r.Entries = append(r.Entries, ent)
		if len(r.Entries) > 4096 {
			return nil, ErrBadProto
		}
	}
	if r.EOF, err = d.Bool(); err != nil {
		return nil, err
	}
	return r, nil
}
