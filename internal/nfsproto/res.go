package nfsproto

import (
	"fmt"

	"renonfs/internal/mbuf"
	"renonfs/internal/xdr"
)

// AttrRes is the attrstat result: status, then attributes on success. It is
// the result of GETATTR, SETATTR, WRITE and (with data) READ.
type AttrRes struct {
	Status Status
	Attr   *Fattr // nil unless Status == OK
}

// Encode marshals the result.
func (r *AttrRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.Encode(e)
	}
}

// DecodeAttrRes unmarshals attrstat.
func DecodeAttrRes(d *xdr.Decoder) (*AttrRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &AttrRes{Status: Status(s)}
	if r.Status == OK {
		if r.Attr, err = DecodeFattr(d); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// DiropRes is the diropres result: status, then handle+attributes. It is
// the result of LOOKUP, CREATE and MKDIR.
type DiropRes struct {
	Status Status
	File   FH
	Attr   *Fattr
}

// Encode marshals the result.
func (r *DiropRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status == OK {
		putFH(e, r.File)
		r.Attr.Encode(e)
	}
}

// DecodeDiropRes unmarshals diropres.
func DecodeDiropRes(d *xdr.Decoder) (*DiropRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &DiropRes{Status: Status(s)}
	if r.Status == OK {
		if r.File, err = getFH(d); err != nil {
			return nil, err
		}
		if r.Attr, err = DecodeFattr(d); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// StatusRes is the bare-status result of SETATTR-style procedures: REMOVE,
// RENAME, LINK, SYMLINK, RMDIR.
type StatusRes struct{ Status Status }

// Encode marshals the result.
func (r *StatusRes) Encode(e *xdr.Encoder) { e.PutUint32(uint32(r.Status)) }

// DecodeStatusRes unmarshals a bare status.
func DecodeStatusRes(d *xdr.Decoder) (*StatusRes, error) {
	s, err := d.Uint32()
	return &StatusRes{Status: Status(s)}, err
}

// ReadRes is the READ result. Data rides in an mbuf chain: the Reno server
// grafts buffer-cache pages into the reply without copying.
type ReadRes struct {
	Status Status
	Attr   *Fattr
	Data   *mbuf.Chain
}

// Encode marshals the result, consuming r.Data.
func (r *ReadRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.Encode(e)
		e.PutOpaqueChain(r.Data)
	}
}

// DecodeReadRes unmarshals the READ result; Data is a zero-copy view into
// the reply chain, valid only while that chain is — callers that retain the
// payload must copy it out (CopyTo) or Clone it first.
func DecodeReadRes(d *xdr.Decoder) (*ReadRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &ReadRes{Status: Status(s)}
	if r.Status != OK {
		return r, nil
	}
	if r.Attr, err = DecodeFattr(d); err != nil {
		return nil, err
	}
	data, err := d.OpaqueView()
	if err != nil {
		return nil, err
	}
	if data.Len() > MaxData {
		data.Free()
		return nil, fmt.Errorf("%w: read result %d bytes", ErrBadProto, data.Len())
	}
	r.Data = data
	return r, nil
}

// ReadlinkRes is the READLINK result.
type ReadlinkRes struct {
	Status Status
	Path   string
}

// Encode marshals the result.
func (r *ReadlinkRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status == OK {
		e.PutString(r.Path)
	}
}

// DecodeReadlinkRes unmarshals the READLINK result.
func DecodeReadlinkRes(d *xdr.Decoder) (*ReadlinkRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &ReadlinkRes{Status: Status(s)}
	if r.Status == OK {
		if r.Path, err = d.String(); err != nil {
			return nil, err
		}
		if len(r.Path) > MaxPathLen {
			return nil, fmt.Errorf("%w: readlink %d bytes", ErrBadProto, len(r.Path))
		}
	}
	return r, nil
}

// DirEntry is one READDIR entry.
type DirEntry struct {
	FileID uint32
	Name   string
	Cookie uint32 // cookie of the *next* entry position
}

// ReaddirRes is the READDIR result.
type ReaddirRes struct {
	Status  Status
	Entries []DirEntry
	EOF     bool
}

// Encode marshals the result using the XDR linked-list convention.
func (r *ReaddirRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status != OK {
		return
	}
	for i := range r.Entries {
		e.PutBool(true) // entry follows
		e.PutUint32(r.Entries[i].FileID)
		e.PutString(r.Entries[i].Name)
		e.PutUint32(r.Entries[i].Cookie)
	}
	e.PutBool(false) // no more entries
	e.PutBool(r.EOF)
}

// DecodeReaddirRes unmarshals the READDIR result.
func DecodeReaddirRes(d *xdr.Decoder) (*ReaddirRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &ReaddirRes{Status: Status(s)}
	if r.Status != OK {
		return r, nil
	}
	for {
		more, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if !more {
			break
		}
		var ent DirEntry
		if ent.FileID, err = d.Uint32(); err != nil {
			return nil, err
		}
		if ent.Name, err = getName(d); err != nil {
			return nil, err
		}
		if ent.Cookie, err = d.Uint32(); err != nil {
			return nil, err
		}
		r.Entries = append(r.Entries, ent)
		if len(r.Entries) > 4096 {
			return nil, fmt.Errorf("%w: unbounded readdir reply", ErrBadProto)
		}
	}
	if r.EOF, err = d.Bool(); err != nil {
		return nil, err
	}
	return r, nil
}

// StatfsRes is the STATFS result (fsstat).
type StatfsRes struct {
	Status Status
	TSize  uint32 // optimum transfer size
	BSize  uint32 // block size
	Blocks uint32
	BFree  uint32
	BAvail uint32
}

// Encode marshals the result.
func (r *StatfsRes) Encode(e *xdr.Encoder) {
	e.PutUint32(uint32(r.Status))
	if r.Status != OK {
		return
	}
	e.PutUint32(r.TSize)
	e.PutUint32(r.BSize)
	e.PutUint32(r.Blocks)
	e.PutUint32(r.BFree)
	e.PutUint32(r.BAvail)
}

// DecodeStatfsRes unmarshals the STATFS result.
func DecodeStatfsRes(d *xdr.Decoder) (*StatfsRes, error) {
	s, err := d.Uint32()
	if err != nil {
		return nil, err
	}
	r := &StatfsRes{Status: Status(s)}
	if r.Status != OK {
		return r, nil
	}
	fields := []*uint32{&r.TSize, &r.BSize, &r.Blocks, &r.BFree, &r.BAvail}
	for _, p := range fields {
		if *p, err = d.Uint32(); err != nil {
			return nil, err
		}
	}
	return r, nil
}
