package nfsproto

import "renonfs/internal/xdr"

// Flat-buffer encoders for the shallow dispatch path. Each EncodeBytes
// mirrors its chain-based Encode byte-for-byte — the fast path's golden
// equivalence test pins that — but appends to a caller-provided buffer via
// xdr.ByteWriter instead of assembling an mbuf chain. Only the result
// types a header-only procedure can produce get one; payload-bearing
// results (READ, WRITE) stay on the chain path where loaning lives.

func putTimeBytes(w *xdr.ByteWriter, t Time) {
	w.PutUint32(t.Sec)
	w.PutUint32(t.USec)
}

// EncodeBytes marshals the attributes into w.
func (f *Fattr) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(uint32(f.Type))
	w.PutUint32(f.Mode)
	w.PutUint32(f.Nlink)
	w.PutUint32(f.UID)
	w.PutUint32(f.GID)
	w.PutUint32(f.Size)
	w.PutUint32(f.BlockSize)
	w.PutUint32(f.Rdev)
	w.PutUint32(f.Blocks)
	w.PutUint32(f.FSID)
	w.PutUint32(f.FileID)
	putTimeBytes(w, f.Atime)
	putTimeBytes(w, f.Mtime)
	putTimeBytes(w, f.Ctime)
}

// EncodeBytes marshals the attrstat result into w.
func (r *AttrRes) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.EncodeBytes(w)
	}
}

// EncodeBytes marshals the diropres result into w.
func (r *DiropRes) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(uint32(r.Status))
	if r.Status == OK {
		w.PutFixedOpaque(r.File[:])
		r.Attr.EncodeBytes(w)
	}
}

// EncodeBytes marshals the bare-status result into w.
func (r *StatusRes) EncodeBytes(w *xdr.ByteWriter) { w.PutUint32(uint32(r.Status)) }

// EncodeBytes marshals the READLINK result into w.
func (r *ReadlinkRes) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(uint32(r.Status))
	if r.Status == OK {
		w.PutString(r.Path)
	}
}

// EncodeBytes marshals the READDIR result into w.
func (r *ReaddirRes) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(uint32(r.Status))
	if r.Status != OK {
		return
	}
	for i := range r.Entries {
		w.PutBool(true) // entry follows
		w.PutUint32(r.Entries[i].FileID)
		w.PutString(r.Entries[i].Name)
		w.PutUint32(r.Entries[i].Cookie)
	}
	w.PutBool(false) // no more entries
	w.PutBool(r.EOF)
}

// EncodeBytes marshals the STATFS result into w.
func (r *StatfsRes) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(uint32(r.Status))
	if r.Status != OK {
		return
	}
	w.PutUint32(r.TSize)
	w.PutUint32(r.BSize)
	w.PutUint32(r.Blocks)
	w.PutUint32(r.BFree)
	w.PutUint32(r.BAvail)
}

// EncodeBytes marshals the MNT result into w.
func (r *MntRes) EncodeBytes(w *xdr.ByteWriter) {
	w.PutUint32(r.Status)
	if r.Status == 0 {
		w.PutFixedOpaque(r.File[:])
	}
}
