package nfsproto

import (
	"fmt"

	"renonfs/internal/mbuf"
	"renonfs/internal/xdr"
)

// DiropArgs names a file within a directory (diropargs).
type DiropArgs struct {
	Dir  FH
	Name string
}

// Encode marshals the arguments.
func (a *DiropArgs) Encode(e *xdr.Encoder) {
	putFH(e, a.Dir)
	e.PutString(a.Name)
}

// DecodeDiropArgs unmarshals diropargs.
func DecodeDiropArgs(d *xdr.Decoder) (*DiropArgs, error) {
	a := &DiropArgs{}
	var err error
	if a.Dir, err = getFH(d); err != nil {
		return nil, err
	}
	a.Name, err = getName(d)
	return a, err
}

// GetattrArgs carries the handle for GETATTR (and STATFS).
type GetattrArgs struct{ File FH }

// Encode marshals the arguments.
func (a *GetattrArgs) Encode(e *xdr.Encoder) { putFH(e, a.File) }

// DecodeGetattrArgs unmarshals a bare file handle argument.
func DecodeGetattrArgs(d *xdr.Decoder) (*GetattrArgs, error) {
	fh, err := getFH(d)
	return &GetattrArgs{File: fh}, err
}

// SetattrArgs is the SETATTR argument (sattrargs).
type SetattrArgs struct {
	File FH
	Attr Sattr
}

// Encode marshals the arguments.
func (a *SetattrArgs) Encode(e *xdr.Encoder) {
	putFH(e, a.File)
	a.Attr.Encode(e)
}

// DecodeSetattrArgs unmarshals sattrargs.
func DecodeSetattrArgs(d *xdr.Decoder) (*SetattrArgs, error) {
	a := &SetattrArgs{}
	var err error
	if a.File, err = getFH(d); err != nil {
		return nil, err
	}
	a.Attr, err = DecodeSattr(d)
	return a, err
}

// ReadArgs is the READ argument (readargs).
type ReadArgs struct {
	File       FH
	Offset     uint32
	Count      uint32
	TotalCount uint32 // unused, per RFC 1094
}

// Encode marshals the arguments.
func (a *ReadArgs) Encode(e *xdr.Encoder) {
	putFH(e, a.File)
	e.PutUint32(a.Offset)
	e.PutUint32(a.Count)
	e.PutUint32(a.TotalCount)
}

// DecodeReadArgs unmarshals readargs.
func DecodeReadArgs(d *xdr.Decoder) (*ReadArgs, error) {
	a := &ReadArgs{}
	var err error
	if a.File, err = getFH(d); err != nil {
		return nil, err
	}
	if a.Offset, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Count, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Count > MaxData {
		return nil, fmt.Errorf("%w: read count %d", ErrBadProto, a.Count)
	}
	a.TotalCount, err = d.Uint32()
	return a, err
}

// WriteArgs is the WRITE argument (writeargs). Data rides in an mbuf chain
// so bulk payload is never copied through an intermediate buffer.
type WriteArgs struct {
	File        FH
	BeginOffset uint32 // unused, per RFC 1094
	Offset      uint32
	TotalCount  uint32 // unused
	Data        *mbuf.Chain
}

// Encode marshals the arguments, consuming a.Data.
func (a *WriteArgs) Encode(e *xdr.Encoder) {
	putFH(e, a.File)
	e.PutUint32(a.BeginOffset)
	e.PutUint32(a.Offset)
	e.PutUint32(a.TotalCount)
	e.PutOpaqueChain(a.Data)
}

// DecodeWriteArgs unmarshals writeargs; Data is a zero-copy view into the
// request chain, valid only while that chain is — callers that retain the
// payload past the call must Clone it.
func DecodeWriteArgs(d *xdr.Decoder) (*WriteArgs, error) {
	a := &WriteArgs{}
	var err error
	if a.File, err = getFH(d); err != nil {
		return nil, err
	}
	if a.BeginOffset, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.Offset, err = d.Uint32(); err != nil {
		return nil, err
	}
	if a.TotalCount, err = d.Uint32(); err != nil {
		return nil, err
	}
	data, err := d.OpaqueView()
	if err != nil {
		return nil, err
	}
	if data.Len() > MaxData {
		data.Free()
		return nil, fmt.Errorf("%w: write %d bytes", ErrBadProto, data.Len())
	}
	a.Data = data
	return a, nil
}

// CreateArgs is the CREATE / MKDIR argument (createargs).
type CreateArgs struct {
	Where DiropArgs
	Attr  Sattr
}

// Encode marshals the arguments.
func (a *CreateArgs) Encode(e *xdr.Encoder) {
	a.Where.Encode(e)
	a.Attr.Encode(e)
}

// DecodeCreateArgs unmarshals createargs.
func DecodeCreateArgs(d *xdr.Decoder) (*CreateArgs, error) {
	w, err := DecodeDiropArgs(d)
	if err != nil {
		return nil, err
	}
	attr, err := DecodeSattr(d)
	if err != nil {
		return nil, err
	}
	return &CreateArgs{Where: *w, Attr: attr}, nil
}

// RenameArgs is the RENAME argument (renameargs).
type RenameArgs struct {
	From DiropArgs
	To   DiropArgs
}

// Encode marshals the arguments.
func (a *RenameArgs) Encode(e *xdr.Encoder) {
	a.From.Encode(e)
	a.To.Encode(e)
}

// DecodeRenameArgs unmarshals renameargs.
func DecodeRenameArgs(d *xdr.Decoder) (*RenameArgs, error) {
	from, err := DecodeDiropArgs(d)
	if err != nil {
		return nil, err
	}
	to, err := DecodeDiropArgs(d)
	if err != nil {
		return nil, err
	}
	return &RenameArgs{From: *from, To: *to}, nil
}

// LinkArgs is the LINK argument (linkargs).
type LinkArgs struct {
	From FH
	To   DiropArgs
}

// Encode marshals the arguments.
func (a *LinkArgs) Encode(e *xdr.Encoder) {
	putFH(e, a.From)
	a.To.Encode(e)
}

// DecodeLinkArgs unmarshals linkargs.
func DecodeLinkArgs(d *xdr.Decoder) (*LinkArgs, error) {
	from, err := getFH(d)
	if err != nil {
		return nil, err
	}
	to, err := DecodeDiropArgs(d)
	if err != nil {
		return nil, err
	}
	return &LinkArgs{From: from, To: *to}, nil
}

// SymlinkArgs is the SYMLINK argument (symlinkargs).
type SymlinkArgs struct {
	From DiropArgs
	To   string
	Attr Sattr
}

// Encode marshals the arguments.
func (a *SymlinkArgs) Encode(e *xdr.Encoder) {
	a.From.Encode(e)
	e.PutString(a.To)
	a.Attr.Encode(e)
}

// DecodeSymlinkArgs unmarshals symlinkargs.
func DecodeSymlinkArgs(d *xdr.Decoder) (*SymlinkArgs, error) {
	from, err := DecodeDiropArgs(d)
	if err != nil {
		return nil, err
	}
	to, err := d.String()
	if err != nil {
		return nil, err
	}
	if len(to) > MaxPathLen {
		return nil, fmt.Errorf("%w: symlink target %d bytes", ErrBadProto, len(to))
	}
	attr, err := DecodeSattr(d)
	if err != nil {
		return nil, err
	}
	return &SymlinkArgs{From: *from, To: to, Attr: attr}, nil
}

// ReaddirArgs is the READDIR argument (readdirargs).
type ReaddirArgs struct {
	Dir    FH
	Cookie uint32
	Count  uint32
}

// Encode marshals the arguments.
func (a *ReaddirArgs) Encode(e *xdr.Encoder) {
	putFH(e, a.Dir)
	e.PutUint32(a.Cookie)
	e.PutUint32(a.Count)
}

// DecodeReaddirArgs unmarshals readdirargs.
func DecodeReaddirArgs(d *xdr.Decoder) (*ReaddirArgs, error) {
	a := &ReaddirArgs{}
	var err error
	if a.Dir, err = getFH(d); err != nil {
		return nil, err
	}
	if a.Cookie, err = d.Uint32(); err != nil {
		return nil, err
	}
	a.Count, err = d.Uint32()
	return a, err
}
