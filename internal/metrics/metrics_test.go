package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	s := h.Snapshot()
	if s.Count != 0 || s.Mean() != 0 || s.Quantile(50) != 0 || s.Quantile(100) != 0 {
		t.Fatalf("empty histogram not all-zero: %+v", s)
	}
	if s.Min != 0 || s.Max != 0 {
		t.Fatalf("empty histogram min/max = %v/%v", s.Min, s.Max)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram()
	h.Observe(3.7)
	s := h.Snapshot()
	for _, p := range []float64{1, 50, 99, 100} {
		// With one sample every percentile must clamp to the observation.
		if got := s.Quantile(p); got != 3.7 {
			t.Fatalf("p%v = %v, want 3.7", p, got)
		}
	}
	if s.Mean() != 3.7 || s.Min != 3.7 || s.Max != 3.7 {
		t.Fatalf("single-sample stats wrong: %+v", s)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram()
	// 100 samples spread across buckets: 1ms..100ms.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if got := s.Quantile(100); got != 100 {
		t.Fatalf("p100 = %v, want max 100", got)
	}
	p50 := s.Quantile(50)
	// Log buckets are coarse (factor 2); the interpolated median must land
	// within the surrounding bucket [32, 64].
	if p50 < 32 || p50 > 64 {
		t.Fatalf("p50 = %v, want within (32, 64]", p50)
	}
	p99 := s.Quantile(99)
	if p99 < 64 || p99 > 100 {
		t.Fatalf("p99 = %v, want within (64, 100]", p99)
	}
	if p50 >= p99 {
		t.Fatalf("p50 %v >= p99 %v", p50, p99)
	}
	if math.Abs(s.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", s.Mean())
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Observe(0)    // below the first bound
	h.Observe(1e12) // beyond the last bound: catch-all bucket
	s := h.Snapshot()
	if s.Count != 2 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[len(s.Buckets)-1] != 1 {
		t.Fatalf("extreme values not in edge buckets: %v", s.Buckets)
	}
	if got := s.Quantile(100); got != 1e12 {
		t.Fatalf("p100 = %v, want clamped max 1e12", got)
	}
}

func TestHistogramDelta(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Observe(10)
	first := h.Snapshot()
	h.Observe(20)
	h.Observe(40)
	d := h.Snapshot().Sub(first)
	if d.Count != 2 {
		t.Fatalf("delta count = %d, want 2", d.Count)
	}
	if math.Abs(d.Sum-60) > 1e-9 {
		t.Fatalf("delta sum = %v, want 60", d.Sum)
	}
	total := int64(0)
	for _, c := range d.Buckets {
		total += c
	}
	if total != 2 {
		t.Fatalf("delta buckets sum to %d, want 2", total)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(i%50) + 0.5)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 {
		t.Fatalf("count = %d, want 8000", s.Count)
	}
	var inBuckets int64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != 8000 {
		t.Fatalf("bucket sum = %d, want 8000", inBuckets)
	}
}

func TestRegistrySnapshotDeltaAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("nfs.calls").Add(7)
	r.Gauge("rpc.cwnd").Set(4.5)
	r.Histogram("nfs.service_ms.lookup").Observe(2)
	first := r.Snapshot()
	r.Counter("nfs.calls").Add(3)
	r.Histogram("nfs.service_ms.lookup").Observe(8)
	second := r.Snapshot()

	d := second.Delta(first)
	if d.Counters["nfs.calls"] != 3 {
		t.Fatalf("delta counter = %d, want 3", d.Counters["nfs.calls"])
	}
	if d.Histograms["nfs.service_ms.lookup"].Count != 1 {
		t.Fatalf("delta hist count = %d, want 1", d.Histograms["nfs.service_ms.lookup"].Count)
	}
	if d.Gauges["rpc.cwnd"] != 4.5 {
		t.Fatalf("delta gauge = %v, want current value", d.Gauges["rpc.cwnd"])
	}

	// The JSON round trip is the nfsstat wire format.
	raw, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["nfs.calls"] != 10 {
		t.Fatalf("round-tripped counter = %d", back.Counters["nfs.calls"])
	}
	if got := back.Histograms["nfs.service_ms.lookup"].Quantile(100); got != 8 {
		t.Fatalf("round-tripped p100 = %v, want 8", got)
	}

	var b bytes.Buffer
	second.WriteText(&b)
	out := b.String()
	for _, want := range []string{"nfs.calls", "rpc.cwnd", "nfs.service_ms.lookup", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text encoding missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsTracer(t *testing.T) {
	r := NewRegistry()
	tr := &MetricsTracer{R: r, ProcName: func(p uint32) string { return "lookup" }}
	var m MultiTracer = []Tracer{tr, FuncTracer(func(Event) {})}
	Emit(m, CallSent{Proc: 4, XID: 1})
	Emit(m, Retransmit{Proc: 4, XID: 1, Backoff: 1, RTO: time.Second})
	Emit(m, RTTSample{Proc: 4, Class: "lookup", RTT: 5 * time.Millisecond, SRTT: 4 * time.Millisecond, RTO: 20 * time.Millisecond})
	Emit(m, CwndChange{Cwnd: 3})
	Emit(m, FragDrop{Expired: 2})
	Emit(m, Reply{Proc: 4, XID: 1, RTT: 6 * time.Millisecond})
	Emit(m, DupCacheHit{Proc: 4})
	Emit(m, ServerCall{Proc: 4, Service: time.Millisecond, Error: true})
	Emit(m, ClientCall{Proc: 4, RTT: 7 * time.Millisecond})
	Emit(nil, CallSent{}) // nil tracer must be a no-op, not a panic

	s := r.Snapshot()
	checks := map[string]int64{
		"rpc.calls":        1,
		"rpc.calls.lookup": 1,
		"rpc.retransmits":  1,
		"ip.frag_timeouts": 2,
		"rpc.replies":      1,
		"nfs.dup_hits":     1,
		"nfs.calls.lookup": 1,
		"nfs.errors":       1,
	}
	for name, want := range checks {
		if got := s.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if s.Gauges["rpc.cwnd"] != 3 {
		t.Errorf("cwnd gauge = %v", s.Gauges["rpc.cwnd"])
	}
	if s.Histograms["nfs.service_ms.lookup"].Count != 1 {
		t.Errorf("service histogram not recorded")
	}
	if s.Histograms["client.call_ms.lookup"].Count != 1 {
		t.Errorf("client call histogram not recorded")
	}
}
