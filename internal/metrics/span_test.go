package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// mkSpan builds a deterministic span: begin at base+seq ms, each stage
// ending a fixed offset after the previous one.
func mkSpan(base time.Time, seq int, stageUS [NumStages]int64) Span {
	sp := Span{
		XID:    uint32(100 + seq),
		Proc:   uint32(seq % 4),
		Worker: int32(seq % 2),
		Peer:   "udp:127.0.0.1:1234",
		Begin:  base.Add(time.Duration(seq) * time.Millisecond),
	}
	var off int64
	for st := Stage(0); st < NumStages; st++ {
		if stageUS[st] == 0 {
			continue
		}
		off += stageUS[st] * int64(time.Microsecond)
		sp.SetStageEnd(st, off)
	}
	return sp
}

func TestSpanStageAccounting(t *testing.T) {
	var sp Span
	sp.Reset(time.Now())
	if sp.Worker != -1 {
		t.Errorf("Reset worker = %d, want -1", sp.Worker)
	}
	sp.SetStageEnd(StageRead, 1000)
	sp.SetStageEnd(StageQueue, 3000)
	// Decode skipped (never stamped); dupcheck measured from queue.
	sp.SetStageEnd(StageDupcheck, 7000)
	if got := sp.StageNS(StageRead); got != 1000 {
		t.Errorf("read stage = %d ns, want 1000", got)
	}
	if got := sp.StageNS(StageQueue); got != 2000 {
		t.Errorf("queue stage = %d ns, want 2000", got)
	}
	if got := sp.StageNS(StageDecode); got != 0 {
		t.Errorf("unreached decode stage = %d ns, want 0", got)
	}
	if got := sp.StageNS(StageDupcheck); got != 4000 {
		t.Errorf("dupcheck stage (gap over skipped decode) = %d ns, want 4000", got)
	}
	if got := sp.TotalNS(); got != 7000 {
		t.Errorf("total = %d ns, want 7000", got)
	}
	sp.AddLockWait(250)
	sp.AddLockWait(250)
	if sp.LockWaitNS != 500 {
		t.Errorf("lock wait = %d, want 500", sp.LockWaitNS)
	}
	// All span mutators must be nil-safe: call sites stay unconditional.
	var nilSp *Span
	nilSp.Stamp(StageRead)
	nilSp.SetStageEnd(StageRead, 1)
	nilSp.AddLockWait(1)
	nilSp.SetCall(1, 2)
	nilSp.SetErr()
}

func TestSpanRingKeepsSlowest(t *testing.T) {
	r := NewSpanRing(4)
	base := time.Unix(1000, 0)
	for i := 1; i <= 10; i++ {
		sp := Span{XID: uint32(i), Begin: base}
		sp.SetStageEnd(StageSend, int64(i)*1000)
		r.Offer(&sp)
	}
	if r.Len() != 4 {
		t.Fatalf("ring holds %d spans, want 4", r.Len())
	}
	slow := r.Slowest()
	for i, want := range []uint32{10, 9, 8, 7} {
		if slow[i].XID != want {
			t.Errorf("slowest[%d].XID = %d, want %d", i, slow[i].XID, want)
		}
	}
	// A fast span must be rejected without displacing anything.
	fast := Span{XID: 99, Begin: base}
	fast.SetStageEnd(StageSend, 1)
	r.Offer(&fast)
	for _, sp := range r.Slowest() {
		if sp.XID == 99 {
			t.Error("fast span displaced a slow one")
		}
	}
}

// TestStageStatsConcurrent exercises Record from many goroutines under
// -race: histograms, ring admission and the floor threshold must all be
// safe with per-goroutine span reuse (the nfsd pool's usage pattern).
func TestStageStatsConcurrent(t *testing.T) {
	reg := NewRegistry()
	ss := NewStageStats(reg, 16)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			var sp Span
			for i := 0; i < perWorker; i++ {
				sp.Reset(time.Now())
				sp.Worker = int32(id)
				sp.XID = uint32(id*perWorker + i)
				sp.Stamp(StageRead)
				sp.Stamp(StageQueue)
				sp.Stamp(StageDecode)
				sp.Stamp(StageService)
				sp.Stamp(StageEncode)
				sp.Stamp(StageSend)
				sp.AddLockWait(int64(i))
				ss.Record(&sp)
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	total := snap.Histograms["rpc.stage.total.us"]
	if total.Count != workers*perWorker {
		t.Errorf("total histogram count = %d, want %d", total.Count, workers*perWorker)
	}
	for _, name := range []string{"read", "queue", "decode", "service", "encode", "send"} {
		h := snap.Histograms["rpc.stage."+name+".us"]
		if h.Count != workers*perWorker {
			t.Errorf("stage %s count = %d, want %d", name, h.Count, workers*perWorker)
		}
	}
	if got := snap.Histograms["rpc.stage.dupcheck.us"].Count; got != 0 {
		t.Errorf("unreached dupcheck stage recorded %d observations", got)
	}
	if ss.Ring().Len() != 16 {
		t.Errorf("ring holds %d spans, want 16", ss.Ring().Len())
	}
}

// TestChromeTraceGolden pins the trace-dump wire format: deterministic
// spans must encode byte-for-byte as the checked-in golden file (load it at
// chrome://tracing to eyeball what consumers see).
func TestChromeTraceGolden(t *testing.T) {
	base := time.Unix(1_600_000_000, 0)
	spans := []Span{
		mkSpan(base, 1, [NumStages]int64{5, 120, 3, 2, 840, 4, 9}),
		mkSpan(base, 0, [NumStages]int64{7, 40, 2, 0, 310, 3, 6}),
		mkSpan(base, 2, [NumStages]int64{4, 15, 2, 1, 95, 0, 0}),
	}
	spans[2].Worker = -1 // TCP-style span: shares the 9999 track
	spans[2].Err = true
	spans[1].LockWaitNS = 1500
	procs := map[uint32]string{0: "null", 1: "getattr", 2: "lookup", 3: "read"}
	var buf bytes.Buffer
	err := WriteChromeTrace(&buf, spans, func(p uint32) string { return procs[p] })
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output diverges from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
