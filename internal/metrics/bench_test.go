package metrics

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// casSum is the histogram sum update this package used before the
// fixed-point change: float64 bits in a CAS retry loop. Kept here as a
// measurable baseline so the before/after of the serialization fix stays
// reproducible (see EXPERIMENTS.md) — under writer concurrency every
// failed CAS re-reads a contended cache line and retries.
type casSum struct {
	bits atomic.Uint64
}

func (s *casSum) add(v float64) {
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := 0.125
		for pb.Next() {
			h.Observe(v)
		}
	})
}

func BenchmarkSumFixedPoint(b *testing.B) {
	var sum atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sum.Add(125) // 0.125 in 1/1000 units
		}
	})
}

func BenchmarkSumCASLoop(b *testing.B) {
	var sum casSum
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sum.add(0.125)
		}
	})
}

func BenchmarkStageStatsRecord(b *testing.B) {
	reg := NewRegistry()
	ss := NewStageStats(reg, DefaultSlowSpans)
	b.RunParallel(func(pb *testing.PB) {
		var sp Span
		for pb.Next() {
			sp.Reset(time.Now())
			sp.Stamp(StageRead)
			sp.Stamp(StageQueue)
			sp.Stamp(StageDecode)
			sp.Stamp(StageService)
			sp.Stamp(StageEncode)
			sp.Stamp(StageSend)
			ss.Record(&sp)
		}
	})
}
